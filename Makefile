# Tier-1 verification in one command: build + full test suite (the
# parallel-vs-sequential determinism tests included) with backtraces on.
.PHONY: all build test check bench-par clean

all: build

build:
	dune build

test:
	OCAMLRUNPARAM=b dune runtest

check:
	OCAMLRUNPARAM=b dune build
	OCAMLRUNPARAM=b dune runtest

# Sequential-vs-parallel sweep wall-clock; writes BENCH_par.json.
bench-par:
	dune exec bench/main.exe -- par

clean:
	dune clean
