# Tier-1 verification in one command: build + full test suite (the
# parallel-vs-sequential determinism tests included) with backtraces on.
.PHONY: all build test check smoke report-smoke chaos-smoke scenario-smoke convert-smoke explain-smoke churn-smoke scale-smoke alloc-gate bench-par bench-rawspeed bench-scale clean

all: build

build:
	dune build

test:
	OCAMLRUNPARAM=b dune runtest

check: smoke report-smoke chaos-smoke scenario-smoke convert-smoke explain-smoke churn-smoke scale-smoke alloc-gate
	OCAMLRUNPARAM=b dune build
	OCAMLRUNPARAM=b dune runtest

# End-to-end observability smoke: a tiny observed sweep writes
# trace/metrics JSONL, then inspect re-parses every line (it exits
# nonzero on the first malformed one).
smoke:
	dune build bin/e2ebench.exe
	mkdir -p _smoke
	dune exec bin/e2ebench.exe -- sweep --rates 20,60 \
	  --warmup-ms 5 --duration-ms 20 \
	  --trace-out _smoke/trace.jsonl --metrics-out _smoke/metrics.jsonl
	dune exec bin/e2ebench.exe -- inspect _smoke/trace.jsonl --limit 5
	@test -s _smoke/metrics.jsonl || { echo "smoke: empty metrics file"; exit 1; }
	@echo "smoke: OK"

# Report smoke: trace two short runs (Nagle on/off), build the HTML
# comparison report from them, and validate the result is a complete
# self-contained document (the report command itself also runs a
# tag-balance check and exits nonzero if its output is malformed).
report-smoke:
	dune build bin/e2ebench.exe
	mkdir -p _smoke
	dune exec bin/e2ebench.exe -- run --rate 40 --nagle off \
	  --warmup-ms 5 --duration-ms 20 --trace-out _smoke/report-off.jsonl > /dev/null
	dune exec bin/e2ebench.exe -- run --rate 40 --nagle on \
	  --warmup-ms 5 --duration-ms 20 --trace-out _smoke/report-on.jsonl > /dev/null
	dune exec bin/e2ebench.exe -- report _smoke/report-off.jsonl \
	  --compare _smoke/report-on.jsonl --out _smoke/report.html
	dune exec bin/e2ebench.exe -- report _smoke/report-off.jsonl --ascii
	@test -s _smoke/report.html || { echo "report-smoke: empty report"; exit 1; }
	@grep -q "</html>" _smoke/report.html || { echo "report-smoke: truncated HTML"; exit 1; }
	@grep -q "<svg" _smoke/report.html || { echo "report-smoke: no chart in report"; exit 1; }
	@echo "report-smoke: OK"

# Chaos smoke: a small loss x blackout fault grid with liveness
# invariants checked on every cell (exits nonzero on any violation),
# plus a fault-plan run exercising the --fault-plan path end to end.
chaos-smoke:
	dune build bin/e2ebench.exe
	mkdir -p _smoke
	printf 'loss dir=both prob=0.002\ncorrupt dir=both prob=0.1\n' > _smoke/chaos.fault
	dune exec bin/e2ebench.exe -- run --rate 10 --nagle dynamic \
	  --warmup-ms 5 --duration-ms 40 --fault-plan _smoke/chaos.fault > /dev/null
	dune exec bin/e2ebench.exe -- chaos --losses 0,0.02 --reorders 0 \
	  --blackouts-ms 0,20
	# Zero-window cells: the receive window genuinely closes, and the
	# blackout eats the lone window-update ack — the regime that
	# deadlocked permanently before the persist timer existed.  The
	# bursty-loss column additionally soaks probe recovery under a
	# Gilbert channel (closure/progress invariants).
	dune exec bin/e2ebench.exe -- chaos --losses 0,0.02 --reorders 0 \
	  --blackouts-ms 0,20 --zero-window
	@echo "chaos-smoke: OK"

# Scenario smoke: a two-tenant heterogeneous fleet parsed from the
# declarative grammar, run end to end with a tenant-tagged trace, then
# re-inspected.  Asserts that both tenants appear in the per-tenant
# table and in the trace's tenant breakdown.
scenario-smoke:
	dune build bin/e2ebench.exe
	mkdir -p _smoke
	printf '%s\n' \
	  'fleet seed=11 warmup_ms=10 duration_ms=40 scope=per_conn batching=dynamic' \
	  'tenant name=bare conns=2 rate_rps=4000 batching=dynamic' \
	  'tenant name=vm rate_rps=2000 mix=small cpu_mult=4 batching=dynamic' \
	  > _smoke/fleet.scn
	dune exec bin/e2ebench.exe -- scenario _smoke/fleet.scn --print \
	  --trace-out _smoke/fleet-trace.jsonl --json _smoke/fleet.json \
	  | tee _smoke/fleet.out
	@grep -q '^bare ' _smoke/fleet.out || { echo "scenario-smoke: no bare tenant row"; exit 1; }
	@grep -q '^vm ' _smoke/fleet.out || { echo "scenario-smoke: no vm tenant row"; exit 1; }
	@grep -q 'fairness: goodput' _smoke/fleet.out || { echo "scenario-smoke: no fairness line"; exit 1; }
	@grep -q 'final modes: .*bare/c0=' _smoke/fleet.out || { echo "scenario-smoke: no per-conn modes"; exit 1; }
	dune exec bin/e2ebench.exe -- inspect _smoke/fleet-trace.jsonl --limit 0 \
	  | tee _smoke/fleet-inspect.out
	@grep -q 'tenant bare:' _smoke/fleet-inspect.out || { echo "scenario-smoke: trace lost bare tag"; exit 1; }
	@grep -q 'tenant vm:' _smoke/fleet-inspect.out || { echo "scenario-smoke: trace lost vm tag"; exit 1; }
	@test -s _smoke/fleet.json || { echo "scenario-smoke: empty json"; exit 1; }
	@echo "scenario-smoke: OK"

# Binary trace smoke: the same run traced as .bin and as .jsonl must
# inspect identically, and convert must round-trip the binary file
# through JSONL byte-for-byte.
convert-smoke:
	dune build bin/e2ebench.exe
	mkdir -p _smoke
	dune exec bin/e2ebench.exe -- run --rate 40 --nagle dynamic \
	  --warmup-ms 5 --duration-ms 20 --trace-out _smoke/conv.bin > /dev/null
	dune exec bin/e2ebench.exe -- run --rate 40 --nagle dynamic \
	  --warmup-ms 5 --duration-ms 20 --trace-out _smoke/conv.jsonl > /dev/null
	dune exec bin/e2ebench.exe -- inspect _smoke/conv.bin --limit 5 > _smoke/conv-bin.out
	dune exec bin/e2ebench.exe -- inspect _smoke/conv.jsonl --limit 5 > _smoke/conv-jsonl.out
	@diff -u _smoke/conv-jsonl.out _smoke/conv-bin.out \
	  || { echo "convert-smoke: binary and JSONL traces inspect differently"; exit 1; }
	dune exec bin/e2ebench.exe -- convert _smoke/conv.bin _smoke/conv-rt.jsonl
	dune exec bin/e2ebench.exe -- convert _smoke/conv-rt.jsonl _smoke/conv-rt.bin
	@cmp -s _smoke/conv.bin _smoke/conv-rt.bin \
	  || { echo "convert-smoke: binary did not survive the JSONL round-trip"; exit 1; }
	@echo "convert-smoke: OK"

# Decision-ledger / SLO-observatory smoke: trace a per-conn dynamic
# fleet, rebuild the per-tenant SLO tables and the causal chain of the
# first mode flip from the file alone, render the SLO-panel report,
# and confirm the no-decisions / no-SLO error paths exit nonzero.
explain-smoke:
	dune build bin/e2ebench.exe
	mkdir -p _smoke
	printf '%s\n' \
	  'fleet seed=11 warmup_ms=10 duration_ms=40 scope=per_conn batching=dynamic' \
	  'tenant name=bare conns=2 rate_rps=4000 batching=dynamic' \
	  'tenant name=vm rate_rps=2000 mix=small cpu_mult=4 batching=dynamic' \
	  > _smoke/explain.scn
	dune exec bin/e2ebench.exe -- scenario _smoke/explain.scn \
	  --trace-out _smoke/explain-trace.bin > /dev/null
	dune exec bin/e2ebench.exe -- slo _smoke/explain-trace.bin \
	  | tee _smoke/explain-slo.out
	@grep -q 'bare/client' _smoke/explain-slo.out || { echo "explain-smoke: no bare SLO row"; exit 1; }
	@grep -q 'vm/client' _smoke/explain-slo.out || { echo "explain-smoke: no vm SLO row"; exit 1; }
	dune exec bin/e2ebench.exe -- explain _smoke/explain-trace.bin --flip 0 \
	  | tee _smoke/explain-flip.out
	@grep -q 'estimates :' _smoke/explain-flip.out || { echo "explain-smoke: no estimates in chain"; exit 1; }
	@grep -q 'action    :' _smoke/explain-flip.out || { echo "explain-smoke: no action in chain"; exit 1; }
	dune exec bin/e2ebench.exe -- explain _smoke/explain-trace.bin --tenant vm \
	  > /dev/null
	dune exec bin/e2ebench.exe -- report _smoke/explain-trace.bin \
	  --out _smoke/slo-report.html
	@grep -q 'SLO attainment' _smoke/slo-report.html || { echo "explain-smoke: report lacks SLO panel"; exit 1; }
	# error paths: a decision-free trace must fail explain, and a
	# trace without declared SLOs must fail slo — both with exit 1
	dune exec bin/e2ebench.exe -- run --rate 20 --nagle off \
	  --warmup-ms 5 --duration-ms 10 --trace-out _smoke/explain-static.jsonl > /dev/null
	@if dune exec bin/e2ebench.exe -- explain _smoke/explain-static.jsonl \
	  > /dev/null 2>&1; then echo "explain-smoke: explain accepted a decision-free trace"; exit 1; fi
	@if dune exec bin/e2ebench.exe -- slo /dev/null > /dev/null 2>&1; \
	  then echo "explain-smoke: slo accepted an empty trace"; exit 1; fi
	@echo "explain-smoke: OK"

# Time-varying-load smoke: an envelope + scripted-churn scenario runs
# end to end with a trace, the offline settling table rebuilds from the
# trace's edge breadcrumbs, and the chaos flash-crowd / churn-storm
# cells assert bounded re-convergence (exit nonzero on any violation).
# The ablation run (--ablate-settling) must fail: no settling tracker
# means no re-convergence evidence.
churn-smoke:
	dune build bin/e2ebench.exe
	mkdir -p _smoke
	printf '%s\n' \
	  'fleet seed=11 warmup_ms=10 duration_ms=40 scope=per_conn' \
	  'tenant name=churny conns=4 rate_rps=20000 batching=dynamic slo_us=500 envelope=square env_period_ms=20 env_duty=0.5 env_high=2 churn_script=20:+2,30:-2 churn_max=32' \
	  > _smoke/churn.scn
	dune exec bin/e2ebench.exe -- scenario _smoke/churn.scn \
	  --trace-out _smoke/churn-trace.bin | tee _smoke/churn.out
	@grep -q '^churny ' _smoke/churn.out || { echo "churn-smoke: no tenant row"; exit 1; }
	dune exec bin/e2ebench.exe -- slo _smoke/churn-trace.bin \
	  | tee _smoke/churn-slo.out
	@grep -q 'settling (1 ms ground-truth buckets' _smoke/churn-slo.out \
	  || { echo "churn-smoke: no settling table from trace"; exit 1; }
	@grep -q 'churny/client .*us' _smoke/churn-slo.out \
	  || { echo "churn-smoke: no per-edge settling row"; exit 1; }
	dune exec bin/e2ebench.exe -- chaos --flash-crowd --churn-storm
	@if dune exec bin/e2ebench.exe -- chaos --churn-storm --ablate-settling \
	  > /dev/null 2>&1; then echo "churn-smoke: settling ablation passed the gate"; exit 1; fi
	@echo "churn-smoke: OK"

# Sharded-serving smoke: a 10k-connection 4-shard fleet behind the
# least-loaded front LB runs end to end from the scenario grammar,
# the trace rebuilds per-shard slo and inspect breakdowns, and the
# whole run repeats bit-identically (the LB and steering are hashes
# and counters — no rng, so sharding must not perturb determinism).
scale-smoke:
	dune build bin/e2ebench.exe
	mkdir -p _smoke
	printf '%s\n' \
	  'fleet seed=11 warmup_ms=10 duration_ms=40 scope=per_tenant batching=dynamic' \
	  'server cores=4 lb=least_loaded' \
	  'tenant name=bare conns=6000 rate_rps=40000 batching=dynamic' \
	  'tenant name=vm conns=4000 rate_rps=15000 mix=small cpu_mult=4 batching=dynamic' \
	  > _smoke/scale.scn
	dune exec bin/e2ebench.exe -- scenario _smoke/scale.scn --print \
	  --trace-out _smoke/scale-trace.jsonl | tee _smoke/scale.out
	@grep -q '^server cores=4 lb=least_loaded' _smoke/scale.out \
	  || { echo "scale-smoke: server directive lost in round-trip"; exit 1; }
	@grep -q '^s0 ' _smoke/scale.out || { echo "scale-smoke: no shard 0 row"; exit 1; }
	@grep -q '^s3 ' _smoke/scale.out || { echo "scale-smoke: no shard 3 row"; exit 1; }
	dune exec bin/e2ebench.exe -- slo _smoke/scale-trace.jsonl \
	  | tee _smoke/scale-slo.out
	@grep -q 'shard s0:' _smoke/scale-slo.out || { echo "scale-smoke: no per-shard SLO roll-up"; exit 1; }
	dune exec bin/e2ebench.exe -- inspect _smoke/scale-trace.jsonl --limit 0 \
	  > _smoke/scale-inspect.out
	@grep -q 'shard s0:' _smoke/scale-inspect.out || { echo "scale-smoke: no per-shard inspect section"; exit 1; }
	@grep -q 'shard s3:' _smoke/scale-inspect.out || { echo "scale-smoke: no shard 3 inspect section"; exit 1; }
	# determinism x2: same scenario, byte-identical stdout and trace
	# (the trace-file name appears in stdout, so strip that line)
	dune exec bin/e2ebench.exe -- scenario _smoke/scale.scn --print \
	  --trace-out _smoke/scale-trace2.jsonl > _smoke/scale2.out
	@grep -v '_smoke/scale-trace' _smoke/scale.out > _smoke/scale.out.norm
	@grep -v '_smoke/scale-trace' _smoke/scale2.out > _smoke/scale2.out.norm
	@cmp -s _smoke/scale.out.norm _smoke/scale2.out.norm \
	  || { echo "scale-smoke: sharded run not deterministic (stdout)"; exit 1; }
	@cmp -s _smoke/scale-trace.jsonl _smoke/scale-trace2.jsonl \
	  || { echo "scale-smoke: sharded run not deterministic (trace)"; exit 1; }
	@echo "scale-smoke: OK"

# Zero-allocation gate: every guarded hot-path probe (disabled trace
# emission, event-heap push/take, idle engine polling, delayed-ACK
# bookkeeping) must measure 0.000 minor words per op.  Writes
# BENCH_alloc.json; exits nonzero on any regression.
alloc-gate:
	dune exec bench/main.exe -- alloc

# Sequential-vs-parallel sweep wall-clock; writes BENCH_par.json.
bench-par:
	dune exec bench/main.exe -- par

# Headline raw-speed bench: a 1M-request traced run comparing JSONL vs
# binary trace output and batch vs streaming span memory; writes
# BENCH_rawspeed.json.  Use REQUESTS=n for a quicker shakeout.
REQUESTS ?= 1000000
bench-rawspeed:
	dune exec bench/main.exe -- rawspeed --requests $(REQUESTS)

# Headline scale bench: the 100k-connection 4-shard fleet with per-shard
# accounting closure, per-shard dynamic convergence and the hot-shard
# LB-policy comparison; writes BENCH_scale.json and exits nonzero if
# any of those claims fails.
bench-scale:
	dune exec bench/main.exe -- scale

clean:
	dune clean
	rm -rf _smoke
