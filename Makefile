# Tier-1 verification in one command: build + full test suite (the
# parallel-vs-sequential determinism tests included) with backtraces on.
.PHONY: all build test check smoke bench-par clean

all: build

build:
	dune build

test:
	OCAMLRUNPARAM=b dune runtest

check: smoke
	OCAMLRUNPARAM=b dune build
	OCAMLRUNPARAM=b dune runtest

# End-to-end observability smoke: a tiny observed sweep writes
# trace/metrics JSONL, then inspect re-parses every line (it exits
# nonzero on the first malformed one).
smoke:
	dune build bin/e2ebench.exe
	mkdir -p _smoke
	dune exec bin/e2ebench.exe -- sweep --rates 20,60 \
	  --warmup-ms 5 --duration-ms 20 \
	  --trace-out _smoke/trace.jsonl --metrics-out _smoke/metrics.jsonl
	dune exec bin/e2ebench.exe -- inspect _smoke/trace.jsonl --limit 5
	@test -s _smoke/metrics.jsonl || { echo "smoke: empty metrics file"; exit 1; }
	@echo "smoke: OK"

# Sequential-vs-parallel sweep wall-clock; writes BENCH_par.json.
bench-par:
	dune exec bench/main.exe -- par

clean:
	dune clean
	rm -rf _smoke
