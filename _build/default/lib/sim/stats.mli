(** Streaming statistics.

    Latency summaries for the load generator and accuracy checks for the
    estimator.  All aggregates are single-pass and O(1) per sample
    except the histogram, which is O(buckets) memory. *)

(** {1 Scalar summary (Welford)} *)

module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val variance : t -> float
  (** Sample variance; 0 with fewer than two samples. *)

  val stddev : t -> float
  val min : t -> float
  (** [infinity] when empty. *)

  val max : t -> float
  (** [neg_infinity] when empty. *)

  val total : t -> float
  val merge : t -> t -> t
  (** Combine two summaries as if all samples were added to one. *)

  val pp : Format.formatter -> t -> unit
end

(** {1 Log-bucketed histogram with percentile queries}

    HDR-style: buckets grow geometrically so relative error is bounded
    (~[2^-sub_bits]) across the full value range. *)

module Histogram : sig
  type t

  val create : ?sub_bits:int -> unit -> t
  (** [sub_bits] (default 5) sets precision: each power-of-two range is
      split into [2^sub_bits] linear buckets. *)

  val add : t -> float -> unit
  (** Record one non-negative sample; negative samples clamp to 0. *)

  val count : t -> int
  val mean : t -> float

  val percentile : t -> float -> float
  (** [percentile h p] for [p] in [0, 100]; 0 when empty.  Returns a
      bucket upper bound, so the result over-approximates slightly. *)

  val median : t -> float
  val merge : t -> t -> t
end

(** {1 Streaming quantiles (P-squared)}

    The Jain–Chlamtac P² algorithm estimates a single quantile online
    in O(1) space — how a kernel would track tail latency without
    storing samples.  The paper defers tail metrics to future work;
    this is the building block that future work needs. *)

module P2 : sig
  type t

  val create : q:float -> t
  (** Track the [q]-quantile, [q] strictly between 0 and 1.
      @raise Invalid_argument otherwise. *)

  val add : t -> float -> unit
  val count : t -> int

  val value : t -> float option
  (** [None] until five samples have been seen; exact for the first
      five, the P² estimate afterwards. *)
end

(** {1 Time-weighted average}

    The average value of a step function of time, e.g. instantaneous
    queue length; the ground truth against which Little's-law estimates
    are validated. *)

module Time_avg : sig
  type t

  val create : at:Time.t -> value:float -> t
  val update : t -> at:Time.t -> value:float -> unit
  (** Record that the tracked quantity changed to [value] at [at].
      Out-of-order updates raise [Invalid_argument]. *)

  val average : t -> upto:Time.t -> float
  (** Time-weighted mean over [create-time, upto]. *)
end
