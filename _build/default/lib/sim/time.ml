type t = int
type span = int

let zero = 0

let ns x = x
let us x = x * 1_000
let ms x = x * 1_000_000
let sec x = x * 1_000_000_000

let of_us_float x = int_of_float (Float.round (x *. 1e3))
let of_sec_float x = int_of_float (Float.round (x *. 1e9))

let to_ns t = t
let to_us t = float_of_int t /. 1e3
let to_ms t = float_of_int t /. 1e6
let to_sec t = float_of_int t /. 1e9

let add t d = t + d
let diff a b = a - b

let compare = Int.compare
let min = Stdlib.min
let max = Stdlib.max

let pp ppf t =
  let abs = Stdlib.abs t in
  if abs < 1_000 then Format.fprintf ppf "%dns" t
  else if abs < 1_000_000 then Format.fprintf ppf "%.2fus" (to_us t)
  else if abs < 1_000_000_000 then Format.fprintf ppf "%.2fms" (to_ms t)
  else Format.fprintf ppf "%.3fs" (to_sec t)

let to_string t = Format.asprintf "%a" pp t
