module Summary = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable total : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; total = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    t.total <- t.total +. x

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
  let total t = t.total

  let merge a b =
    if a.n = 0 then { b with n = b.n }
    else if b.n = 0 then { a with n = a.n }
    else begin
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
      in
      {
        n;
        mean;
        m2;
        min = Stdlib.min a.min b.min;
        max = Stdlib.max a.max b.max;
        total = a.total +. b.total;
      }
    end

  let pp ppf t =
    Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.n (mean t)
      (stddev t) t.min t.max
end

module Histogram = struct
  type t = {
    sub_bits : int;
    mutable counts : int array;
    mutable n : int;
    mutable sum : float;
  }

  let create ?(sub_bits = 5) () =
    if sub_bits < 0 || sub_bits > 10 then invalid_arg "Histogram.create: sub_bits";
    { sub_bits; counts = Array.make 1024 0; n = 0; sum = 0.0 }

  (* Bucket index: exponent of the power-of-two range times the number
     of sub-buckets, plus the linear position within that range. *)
  let bucket_of_value t v =
    let v = if v < 1.0 then 1.0 else v in
    let exp = int_of_float (Float.log2 v) in
    let lower = Float.pow 2.0 (float_of_int exp) in
    let frac = (v -. lower) /. lower in
    let sub = int_of_float (frac *. float_of_int (1 lsl t.sub_bits)) in
    let sub = Stdlib.min sub ((1 lsl t.sub_bits) - 1) in
    (exp lsl t.sub_bits) + sub

  let value_of_bucket t i =
    let exp = i lsr t.sub_bits in
    let sub = i land ((1 lsl t.sub_bits) - 1) in
    let lower = Float.pow 2.0 (float_of_int exp) in
    (* Upper bound of the bucket, so percentiles over-approximate. *)
    lower +. (lower *. float_of_int (sub + 1) /. float_of_int (1 lsl t.sub_bits))

  let ensure t i =
    let cap = Array.length t.counts in
    if i >= cap then begin
      let ncap = Stdlib.max (i + 1) (cap * 2) in
      let ncounts = Array.make ncap 0 in
      Array.blit t.counts 0 ncounts 0 cap;
      t.counts <- ncounts
    end

  let add t v =
    let v = if v < 0.0 then 0.0 else v in
    let i = bucket_of_value t v in
    ensure t i;
    t.counts.(i) <- t.counts.(i) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum +. v

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

  let percentile t p =
    if t.n = 0 then 0.0
    else begin
      let p = Float.max 0.0 (Float.min 100.0 p) in
      let target = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
      let target = Stdlib.max target 1 in
      let acc = ref 0 and result = ref 0.0 and found = ref false in
      Array.iteri
        (fun i c ->
          if (not !found) && c > 0 then begin
            acc := !acc + c;
            if !acc >= target then begin
              result := value_of_bucket t i;
              found := true
            end
          end)
        t.counts;
      !result
    end

  let median t = percentile t 50.0

  let merge a b =
    if a.sub_bits <> b.sub_bits then invalid_arg "Histogram.merge: sub_bits differ";
    let len = Stdlib.max (Array.length a.counts) (Array.length b.counts) in
    let counts = Array.make len 0 in
    Array.iteri (fun i c -> counts.(i) <- c) a.counts;
    Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) b.counts;
    { sub_bits = a.sub_bits; counts; n = a.n + b.n; sum = a.sum +. b.sum }
end

module P2 = struct
  (* Jain & Chlamtac, "The P² algorithm for dynamic calculation of
     quantiles and histograms without storing observations" (1985).
     Five markers track the min, the q/2, q, (1+q)/2 quantiles and the
     max; marker heights are adjusted with a piecewise-parabolic fit as
     samples arrive. *)
  type t = {
    q : float;
    heights : float array;  (* marker heights *)
    positions : float array;  (* actual marker positions (1-based) *)
    desired : float array;  (* desired marker positions *)
    increments : float array;
    mutable n : int;
  }

  let create ~q =
    if q <= 0.0 || q >= 1.0 then invalid_arg "P2.create: q must be in (0,1)";
    {
      q;
      heights = Array.make 5 0.0;
      positions = [| 1.0; 2.0; 3.0; 4.0; 5.0 |];
      desired = [| 1.0; 1.0 +. (2.0 *. q); 1.0 +. (4.0 *. q); 3.0 +. (2.0 *. q); 5.0 |];
      increments = [| 0.0; q /. 2.0; q; (1.0 +. q) /. 2.0; 1.0 |];
      n = 0;
    }

  let count t = t.n

  let parabolic t i d =
    let q = t.heights and n = t.positions in
    q.(i)
    +. d
       /. (n.(i + 1) -. n.(i - 1))
       *. (((n.(i) -. n.(i - 1) +. d) *. (q.(i + 1) -. q.(i)) /. (n.(i + 1) -. n.(i)))
          +. ((n.(i + 1) -. n.(i) -. d) *. (q.(i) -. q.(i - 1)) /. (n.(i) -. n.(i - 1))))

  let linear t i d =
    let q = t.heights and n = t.positions in
    q.(i) +. (d *. (q.(i + int_of_float d) -. q.(i)) /. (n.(i + int_of_float d) -. n.(i)))

  let add t x =
    if t.n < 5 then begin
      t.heights.(t.n) <- x;
      t.n <- t.n + 1;
      if t.n = 5 then Array.sort compare t.heights
    end
    else begin
      (* find the cell k in [0,3] containing x, updating extremes *)
      let k =
        if x < t.heights.(0) then begin
          t.heights.(0) <- x;
          0
        end
        else if x >= t.heights.(4) then begin
          t.heights.(4) <- x;
          3
        end
        else begin
          let k = ref 0 in
          for i = 0 to 3 do
            if t.heights.(i) <= x && x < t.heights.(i + 1) then k := i
          done;
          !k
        end
      in
      (* increment positions of markers above the cell *)
      for i = k + 1 to 4 do
        t.positions.(i) <- t.positions.(i) +. 1.0
      done;
      (* update desired positions *)
      for i = 0 to 4 do
        t.desired.(i) <- t.desired.(i) +. t.increments.(i)
      done;
      (* adjust the three middle markers *)
      for i = 1 to 3 do
        let d = t.desired.(i) -. t.positions.(i) in
        if
          (d >= 1.0 && t.positions.(i + 1) -. t.positions.(i) > 1.0)
          || (d <= -1.0 && t.positions.(i - 1) -. t.positions.(i) < -1.0)
        then begin
          let d = if d >= 0.0 then 1.0 else -1.0 in
          let candidate = parabolic t i d in
          let fits = t.heights.(i - 1) < candidate && candidate < t.heights.(i + 1) in
          t.heights.(i) <- (if fits then candidate else linear t i d);
          t.positions.(i) <- t.positions.(i) +. d
        end
      done;
      t.n <- t.n + 1
    end

  let value t =
    if t.n = 0 then None
    else if t.n < 5 then begin
      (* exact quantile over the few samples seen *)
      let sorted = Array.sub t.heights 0 t.n in
      Array.sort compare sorted;
      let idx = int_of_float (Float.round (t.q *. float_of_int (t.n - 1))) in
      Some sorted.(idx)
    end
    else Some t.heights.(2)
end

module Time_avg = struct
  type t = {
    start : Time.t;
    mutable last_time : Time.t;
    mutable last_value : float;
    mutable integral : float;
  }

  let create ~at ~value = { start = at; last_time = at; last_value = value; integral = 0.0 }

  let advance t at =
    if Time.compare at t.last_time < 0 then
      invalid_arg "Time_avg.update: time went backwards";
    let dt = float_of_int (Time.diff at t.last_time) in
    t.integral <- t.integral +. (t.last_value *. dt);
    t.last_time <- at

  let update t ~at ~value =
    advance t at;
    t.last_value <- value

  let average t ~upto =
    let elapsed = Time.diff upto t.start in
    if elapsed <= 0 then t.last_value
    else begin
      let tail =
        if Time.compare upto t.last_time > 0 then
          t.last_value *. float_of_int (Time.diff upto t.last_time)
        else 0.0
      in
      (t.integral +. tail) /. float_of_int elapsed
    end
end
