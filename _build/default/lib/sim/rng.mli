(** Deterministic pseudo-random numbers for workload generation.

    SplitMix64 core: fast, well-distributed, and trivially reproducible
    from a single [int] seed, which keeps every simulation replayable. *)

type t

val create : seed:int -> t

val split : t -> t
(** Derive an independent stream (e.g. one per connection) without
    perturbing the parent. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> bound:int -> int
(** Uniform in [0, bound).  @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean (Poisson
    inter-arrivals).  @raise Invalid_argument if [mean <= 0]. *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian via Box–Muller. *)

val pareto : t -> scale:float -> shape:float -> float
(** Pareto with minimum [scale] and tail index [shape]. *)

val zipf : t -> n:int -> theta:float -> int
(** Zipf-like rank in [0, n) with skew [theta] (0 = uniform), using the
    standard rejection-free inverse-CDF approximation over the
    generalized harmonic number. *)
