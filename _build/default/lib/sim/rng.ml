type t = { mutable state : int64; mutable zipf_cache : (int * float * float array) option }

(* SplitMix64 (Steele, Lea, Flood 2014). *)
let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = Int64.of_int seed; zipf_cache = None }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = mix (bits64 t); zipf_cache = None }

let float t =
  (* 53 high-quality bits into [0,1). *)
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x *. (1.0 /. 9007199254740992.0)

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's native int; modulo bias is
     negligible for bounds far below 2^62. *)
  let x = Int64.to_int (Int64.logand (bits64 t) 0x3FFF_FFFF_FFFF_FFFFL) in
  x mod bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean must be positive";
  let u = 1.0 -. float t in
  -.mean *. log u

let normal t ~mu ~sigma =
  let u1 = 1.0 -. float t and u2 = float t in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let pareto t ~scale ~shape =
  if scale <= 0.0 || shape <= 0.0 then invalid_arg "Rng.pareto: bad parameters";
  let u = 1.0 -. float t in
  scale /. (u ** (1.0 /. shape))

(* Zipf by inverse transform over precomputed cumulative weights.  The
   table is cached per (n, theta) since workloads draw many ranks from a
   fixed distribution. *)
let zipf t ~n ~theta =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  if theta < 0.0 then invalid_arg "Rng.zipf: theta must be non-negative";
  let cdf =
    match t.zipf_cache with
    | Some (n', theta', cdf) when n' = n && theta' = theta -> cdf
    | _ ->
      let w = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** theta)) in
      let acc = ref 0.0 in
      let cdf =
        Array.map
          (fun x ->
            acc := !acc +. x;
            !acc)
          w
      in
      let total = cdf.(n - 1) in
      let cdf = Array.map (fun x -> x /. total) cdf in
      t.zipf_cache <- Some (n, theta, cdf);
      cdf
  in
  let u = float t in
  (* Binary search for the first index with cdf.(i) >= u. *)
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo
