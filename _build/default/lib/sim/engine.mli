(** Discrete-event simulation engine.

    A deterministic single-threaded event loop over simulated time.
    Events scheduled for the same instant fire in schedule order (FIFO),
    which makes every run bit-reproducible for a given seed and
    workload. *)

type t

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : unit -> t
(** Fresh engine with the clock at {!Time.zero}. *)

val now : t -> Time.t
(** Current simulated time. *)

val schedule : t -> after:Time.span -> (unit -> unit) -> handle
(** [schedule t ~after f] runs [f] at [now t + after].  [after] must be
    non-negative.  @raise Invalid_argument on a negative delay. *)

val schedule_at : t -> at:Time.t -> (unit -> unit) -> handle
(** Absolute-time variant.  [at] must not be in the simulated past. *)

val cancel : t -> handle -> unit
(** Cancel a pending event; cancelling an already-fired or already-
    cancelled event is a no-op. *)

val pending : t -> int
(** Number of events scheduled but not yet fired or cancelled. *)

val step : t -> bool
(** Fire the earliest pending event, advancing the clock to its time.
    Returns [false] when no events remain. *)

val run : t -> unit
(** Run until no events remain. *)

val run_until : t -> Time.t -> unit
(** Fire every event scheduled strictly before or at the given time,
    then advance the clock to exactly that time. *)
