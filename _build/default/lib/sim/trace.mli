(** Lightweight structured tracing.

    A bounded ring of (time, tag, detail) records that tests and
    debugging sessions can inspect without the cost of formatting when
    tracing is disabled. *)

type record = { at : Time.t; tag : string; detail : string }

type t

val create : ?capacity:int -> unit -> t
(** Ring buffer of at most [capacity] (default 4096) records; older
    records are overwritten. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val emit : t -> at:Time.t -> tag:string -> detail:string -> unit
(** No-op while disabled. *)

val emitf :
  t -> at:Time.t -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant; the format arguments are only evaluated when
    tracing is enabled. *)

val records : t -> record list
(** Oldest first. *)

val find : t -> tag:string -> record list
val clear : t -> unit
val dump : t -> Format.formatter -> unit
