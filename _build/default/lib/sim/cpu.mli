(** A serially shared CPU resource.

    Models one pinned execution context (the paper pins the application
    thread and the IRQ/softirq context to dedicated cores): work items
    queue FIFO, each occupying the CPU for its stated cost.  Accumulated
    busy time gives the utilization curves of the paper's Figure 2. *)

type t

val create : Engine.t -> t

val run : t -> cost:Time.span -> (unit -> unit) -> unit
(** [run t ~cost k] enqueues a work item taking [cost] of CPU time; [k]
    fires when the item completes (after all previously queued work).
    @raise Invalid_argument on negative cost. *)

val run_after : t -> delay:Time.span -> cost:Time.span -> (unit -> unit) -> unit
(** Convenience: enqueue the work item only after a fixed delay. *)

val busy_until : t -> Time.t
(** When the currently queued work drains; the current time when idle. *)

val is_idle : t -> bool

val busy_ns : t -> Time.span
(** Total CPU time consumed so far (including queued-but-unfinished
    work's share only once it runs). *)

val utilization : t -> over:Time.span -> float
(** [busy_ns / over]. *)

val completed : t -> int
(** Number of work items that have finished. *)
