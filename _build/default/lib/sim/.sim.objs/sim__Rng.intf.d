lib/sim/rng.mli:
