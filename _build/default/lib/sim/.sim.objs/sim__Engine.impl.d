lib/sim/engine.ml: Heap Int Time
