lib/sim/heap.mli:
