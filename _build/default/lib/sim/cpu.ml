type t = {
  engine : Engine.t;
  mutable free_at : Time.t;
  mutable busy : Time.span;
  mutable completed : int;
}

let create engine = { engine; free_at = Time.zero; busy = 0; completed = 0 }

let run t ~cost k =
  if cost < 0 then invalid_arg "Cpu.run: negative cost";
  let now = Engine.now t.engine in
  let start = Time.max now t.free_at in
  let finish = Time.add start cost in
  t.free_at <- finish;
  t.busy <- t.busy + cost;
  ignore
    (Engine.schedule_at t.engine ~at:finish (fun () ->
         t.completed <- t.completed + 1;
         k ()))

let run_after t ~delay ~cost k =
  if delay < 0 then invalid_arg "Cpu.run_after: negative delay";
  ignore (Engine.schedule t.engine ~after:delay (fun () -> run t ~cost k))

let busy_until t = Time.max t.free_at (Engine.now t.engine)

let is_idle t = Time.compare t.free_at (Engine.now t.engine) <= 0

let busy_ns t = t.busy

let utilization t ~over =
  if over <= 0 then 0.0 else float_of_int t.busy /. float_of_int over

let completed t = t.completed
