type record = { at : Time.t; tag : string; detail : string }

type t = {
  capacity : int;
  mutable enabled : bool;
  mutable buf : record option array;
  mutable next : int;
  mutable count : int;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; enabled = false; buf = Array.make capacity None; next = 0; count = 0 }

let enabled t = t.enabled
let set_enabled t v = t.enabled <- v

let emit t ~at ~tag ~detail =
  if t.enabled then begin
    t.buf.(t.next) <- Some { at; tag; detail };
    t.next <- (t.next + 1) mod t.capacity;
    if t.count < t.capacity then t.count <- t.count + 1
  end

let emitf t ~at ~tag fmt =
  Format.kasprintf
    (fun detail -> emit t ~at ~tag ~detail)
    fmt

let records t =
  let out = ref [] in
  let start = if t.count = t.capacity then t.next else 0 in
  for i = t.count - 1 downto 0 do
    match t.buf.((start + i) mod t.capacity) with
    | Some r -> out := r :: !out
    | None -> ()
  done;
  !out

let find t ~tag = List.filter (fun r -> String.equal r.tag tag) (records t)

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.next <- 0;
  t.count <- 0

let dump t ppf =
  List.iter
    (fun r -> Format.fprintf ppf "[%a] %s: %s@." Time.pp r.at r.tag r.detail)
    (records t)
