(** Simulated time.

    All simulation timestamps and durations are integer nanoseconds.
    Using a plain [int] keeps arithmetic allocation-free (OCaml ints are
    63-bit on 64-bit platforms, enough for ~292 years of nanoseconds). *)

type t = int
(** A point in simulated time, in nanoseconds since simulation start. *)

type span = int
(** A duration in nanoseconds.  Durations and timestamps share the same
    representation; the distinct name documents intent in signatures. *)

val zero : t

val ns : int -> span
val us : int -> span
val ms : int -> span
val sec : int -> span

val of_us_float : float -> span
(** [of_us_float x] is [x] microseconds rounded to whole nanoseconds. *)

val of_sec_float : float -> span
(** [of_sec_float x] is [x] seconds rounded to whole nanoseconds. *)

val to_ns : t -> int
val to_us : t -> float
val to_ms : t -> float
val to_sec : t -> float

val add : t -> span -> t
val diff : t -> t -> span
(** [diff a b] is [a - b]. *)

val compare : t -> t -> int
val min : t -> t -> t
val max : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (ns/µs/ms/s). *)

val to_string : t -> string
