type config = { alpha : Sim.Time.span; beta : Sim.Time.span }

let default_config = { alpha = Sim.Time.us 6; beta = Sim.Time.us 4 }

type t = {
  engine : Sim.Engine.t;
  cpu : Sim.Cpu.t;
  socket : Tcp.Socket.t;
  store : Store.t;
  cfg : config;
  parser : Resp.Parser.t;
  mutable busy : bool;
  mutable served : int;
  mutable wakeups : int;
  mutable empty_wakeups : int;
  batch_sizes : Sim.Stats.Summary.t;
}

let drain_requests t =
  let rec go acc =
    match Resp.Parser.next t.parser with
    | Ok (Some value) -> (
      match Command.of_resp value with
      | Ok cmd -> go (cmd :: acc)
      | Error msg -> failwith ("kv server: unparsable command: " ^ msg))
    | Ok None -> List.rev acc
    | Error msg -> failwith ("kv server: protocol error: " ^ msg)
  in
  go []

let rec wake t = if not t.busy then process t

and process t =
  t.busy <- true;
  t.wakeups <- t.wakeups + 1;
  let avail = Tcp.Socket.recv_available t.socket in
  if avail > 0 then Resp.Parser.feed t.parser (Tcp.Socket.recv t.socket avail);
  let requests = drain_requests t in
  let k = List.length requests in
  if k = 0 then t.empty_wakeups <- t.empty_wakeups + 1
  else Sim.Stats.Summary.add t.batch_sizes (float_of_int k);
  let cost = t.cfg.beta + (k * t.cfg.alpha) in
  Sim.Cpu.run t.cpu ~cost (fun () ->
      let now = Sim.Engine.now t.engine in
      List.iter
        (fun cmd ->
          let reply = Command.execute t.store ~now cmd in
          t.served <- t.served + 1;
          Tcp.Socket.send t.socket (Resp.encode reply))
        requests;
      t.busy <- false;
      (* Data may have accumulated while we were processing. *)
      if Tcp.Socket.recv_available t.socket > 0 then process t)

let create engine ~cpu ~socket ?(store = Store.create ()) cfg =
  if cfg.alpha < 0 || cfg.beta < 0 then invalid_arg "Server.create: negative costs";
  let t =
    {
      engine;
      cpu;
      socket;
      store;
      cfg;
      parser = Resp.Parser.create ();
      busy = false;
      served = 0;
      wakeups = 0;
      empty_wakeups = 0;
      batch_sizes = Sim.Stats.Summary.create ();
    }
  in
  Tcp.Socket.on_readable socket (fun () -> wake t);
  t

let store t = t.store
let requests_served t = t.served
let wakeups t = t.wakeups
let empty_wakeups t = t.empty_wakeups
let batch_sizes t = t.batch_sizes
