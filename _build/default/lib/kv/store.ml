type entry = { value : string; expires_at : Sim.Time.t option }

type t = { table : (string, entry) Hashtbl.t }

let create () = { table = Hashtbl.create 1024 }

let alive ~now entry =
  match entry.expires_at with
  | None -> true
  | Some deadline -> Sim.Time.compare now deadline < 0

(* Lazy expiration: reap on access. *)
let lookup t ~now key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some entry ->
    if alive ~now entry then Some entry
    else begin
      Hashtbl.remove t.table key;
      None
    end

let set t ~now ?ttl key value =
  let expires_at = Option.map (fun span -> Sim.Time.add now span) ttl in
  Hashtbl.replace t.table key { value; expires_at }

let get t ~now key = Option.map (fun e -> e.value) (lookup t ~now key)

let delete t ~now keys =
  List.fold_left
    (fun acc key ->
      match lookup t ~now key with
      | Some _ ->
        Hashtbl.remove t.table key;
        acc + 1
      | None -> acc)
    0 keys

let exists t ~now keys =
  List.fold_left
    (fun acc key -> match lookup t ~now key with Some _ -> acc + 1 | None -> acc)
    0 keys

let append t ~now key suffix =
  let current, expires_at =
    match lookup t ~now key with
    | Some e -> (e.value, e.expires_at)
    | None -> ("", None)
  in
  let value = current ^ suffix in
  Hashtbl.replace t.table key { value; expires_at };
  String.length value

let strlen t ~now key =
  match lookup t ~now key with Some e -> String.length e.value | None -> 0

let incr_by t ~now key delta =
  let current =
    match lookup t ~now key with
    | Some e -> int_of_string_opt e.value
    | None -> Some 0
  in
  match current with
  | None -> Result.Error "value is not an integer or out of range"
  | Some v ->
    let v = v + delta in
    let expires_at =
      match lookup t ~now key with Some e -> e.expires_at | None -> None
    in
    Hashtbl.replace t.table key { value = string_of_int v; expires_at };
    Ok v

let setnx t ~now key value =
  match lookup t ~now key with
  | Some _ -> false
  | None ->
    set t ~now key value;
    true

let getset t ~now key value =
  let previous = get t ~now key in
  set t ~now key value;
  previous

let expire t ~now key ~ttl =
  match lookup t ~now key with
  | None -> false
  | Some e ->
    Hashtbl.replace t.table key { e with expires_at = Some (Sim.Time.add now ttl) };
    true

let ttl t ~now key =
  match lookup t ~now key with
  | None -> `Missing
  | Some { expires_at = None; _ } -> `No_ttl
  | Some { expires_at = Some deadline; _ } -> `Ttl (Sim.Time.diff deadline now)

let size t ~now =
  Hashtbl.fold (fun _ e acc -> if alive ~now e then acc + 1 else acc) t.table 0

let flush t = Hashtbl.reset t.table

(* Glob matching with [*] and [?]; classic two-pointer backtracking. *)
let glob_match pattern name =
  let np = String.length pattern and nn = String.length name in
  let rec go pi ni star_pi star_ni =
    if ni = nn then
      if pi = np then true
      else if pi < np && pattern.[pi] = '*' then go (pi + 1) ni star_pi star_ni
      else false
    else if pi < np && (pattern.[pi] = '?' || pattern.[pi] = name.[ni]) then
      go (pi + 1) (ni + 1) star_pi star_ni
    else if pi < np && pattern.[pi] = '*' then go (pi + 1) ni (Some pi) ni
    else begin
      match star_pi with
      | Some spi -> go (spi + 1) (star_ni + 1) star_pi (star_ni + 1)
      | None -> false
    end
  in
  go 0 0 None 0

let keys_matching t ~now ~pattern =
  Hashtbl.fold
    (fun key e acc -> if alive ~now e && glob_match pattern key then key :: acc else acc)
    t.table []
  |> List.sort String.compare
