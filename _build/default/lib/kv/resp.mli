(** RESP2 — the Redis serialization protocol.

    Implemented for wire realism: the simulated Redis server and client
    exchange genuine RESP traffic, so message sizes (and hence what
    Nagle sees) match the paper's workload. *)

type value =
  | Simple of string  (** [+OK\r\n] *)
  | Error of string  (** [-ERR ...\r\n] *)
  | Integer of int  (** [:42\r\n] *)
  | Bulk of string option  (** [$5\r\nhello\r\n]; [None] is the nil bulk *)
  | Array of value list option  (** [*2\r\n...]; [None] is the nil array *)

val equal : value -> value -> bool
val pp : Format.formatter -> value -> unit

val encode : value -> string

val encoded_length : value -> int
(** [String.length (encode v)] without building the string. *)

(** Incremental parser for a TCP byte stream: feed arbitrary chunks,
    pop complete values as they become available. *)
module Parser : sig
  type t

  val create : unit -> t

  val feed : t -> string -> unit

  val next : t -> (value option, string) result
  (** [Ok None] when the buffered bytes do not yet form a complete
      value; [Error _] on protocol violations (parsing cannot continue
      afterwards). *)

  val buffered : t -> int
  (** Bytes fed but not yet consumed by returned values. *)
end

val parse_exactly : string -> (value, string) result
(** Parse a string expected to contain exactly one value. *)
