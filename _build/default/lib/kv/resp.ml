type value =
  | Simple of string
  | Error of string
  | Integer of int
  | Bulk of string option
  | Array of value list option

let rec equal a b =
  match (a, b) with
  | Simple x, Simple y | Error x, Error y -> String.equal x y
  | Integer x, Integer y -> x = y
  | Bulk x, Bulk y -> Option.equal String.equal x y
  | Array x, Array y -> Option.equal (List.equal equal) x y
  | (Simple _ | Error _ | Integer _ | Bulk _ | Array _), _ -> false

let rec pp ppf = function
  | Simple s -> Format.fprintf ppf "+%s" s
  | Error s -> Format.fprintf ppf "-%s" s
  | Integer i -> Format.fprintf ppf ":%d" i
  | Bulk None -> Format.pp_print_string ppf "(nil)"
  | Bulk (Some s) ->
    if String.length s <= 32 then Format.fprintf ppf "%S" s
    else Format.fprintf ppf "<bulk:%d bytes>" (String.length s)
  | Array None -> Format.pp_print_string ppf "(nil array)"
  | Array (Some vs) ->
    Format.fprintf ppf "[@[<h>%a@]]" (Format.pp_print_list ~pp_sep:(fun ppf () ->
        Format.pp_print_string ppf "; ") pp) vs

let rec encode_into buf = function
  | Simple s ->
    Buffer.add_char buf '+';
    Buffer.add_string buf s;
    Buffer.add_string buf "\r\n"
  | Error s ->
    Buffer.add_char buf '-';
    Buffer.add_string buf s;
    Buffer.add_string buf "\r\n"
  | Integer i ->
    Buffer.add_char buf ':';
    Buffer.add_string buf (string_of_int i);
    Buffer.add_string buf "\r\n"
  | Bulk None -> Buffer.add_string buf "$-1\r\n"
  | Bulk (Some s) ->
    Buffer.add_char buf '$';
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_string buf "\r\n";
    Buffer.add_string buf s;
    Buffer.add_string buf "\r\n"
  | Array None -> Buffer.add_string buf "*-1\r\n"
  | Array (Some vs) ->
    Buffer.add_char buf '*';
    Buffer.add_string buf (string_of_int (List.length vs));
    Buffer.add_string buf "\r\n";
    List.iter (encode_into buf) vs

let encode v =
  let buf = Buffer.create 64 in
  encode_into buf v;
  Buffer.contents buf

let digits n = String.length (string_of_int n)

let rec encoded_length = function
  | Simple s | Error s -> 1 + String.length s + 2
  | Integer i -> 1 + digits i + 2
  | Bulk None -> 5
  | Bulk (Some s) ->
    let n = String.length s in
    1 + digits n + 2 + n + 2
  | Array None -> 5
  | Array (Some vs) ->
    List.fold_left (fun acc v -> acc + encoded_length v) (1 + digits (List.length vs) + 2)
      vs

module Parser = struct
  type t = {
    mutable buf : Buffer.t;
    mutable pos : int;  (* consumed prefix of [buf] *)
    mutable failed : string option;
  }

  let create () = { buf = Buffer.create 256; pos = 0; failed = None }

  let feed t s = Buffer.add_string t.buf s

  let buffered t = Buffer.length t.buf - t.pos

  exception Incomplete
  exception Bad of string

  (* All parsing works on the buffer contents snapshot; [Incomplete]
     aborts without consuming, so a later feed can retry. *)
  let find_crlf s pos limit =
    let rec go i =
      if i + 1 >= limit then raise Incomplete
      else if s.[i] = '\r' && s.[i + 1] = '\n' then i
      else go (i + 1)
    in
    go pos

  let parse_int s ~from ~until =
    let negative = until > from && s.[from] = '-' in
    let start = if negative then from + 1 else from in
    if start >= until then raise (Bad "empty integer");
    let acc = ref 0 in
    for i = start to until - 1 do
      match s.[i] with
      | '0' .. '9' -> acc := (!acc * 10) + (Char.code s.[i] - Char.code '0')
      | c -> raise (Bad (Printf.sprintf "bad digit %C in integer" c))
    done;
    if negative then - !acc else !acc

  let rec parse s pos limit =
    if pos >= limit then raise Incomplete;
    let header_end = find_crlf s (pos + 1) limit in
    let after = header_end + 2 in
    match s.[pos] with
    | '+' -> (Simple (String.sub s (pos + 1) (header_end - pos - 1)), after)
    | '-' -> (Error (String.sub s (pos + 1) (header_end - pos - 1)), after)
    | ':' -> (Integer (parse_int s ~from:(pos + 1) ~until:header_end), after)
    | '$' ->
      let n = parse_int s ~from:(pos + 1) ~until:header_end in
      if n = -1 then (Bulk None, after)
      else if n < 0 then raise (Bad "negative bulk length")
      else if after + n + 2 > limit then raise Incomplete
      else if not (s.[after + n] = '\r' && s.[after + n + 1] = '\n') then
        raise (Bad "bulk payload not terminated by CRLF")
      else (Bulk (Some (String.sub s after n)), after + n + 2)
    | '*' ->
      let n = parse_int s ~from:(pos + 1) ~until:header_end in
      if n = -1 then (Array None, after)
      else if n < 0 then raise (Bad "negative array length")
      else begin
        let items = ref [] in
        let cursor = ref after in
        for _ = 1 to n do
          let v, next = parse s !cursor limit in
          items := v :: !items;
          cursor := next
        done;
        (Array (Some (List.rev !items)), !cursor)
      end
    | c -> raise (Bad (Printf.sprintf "unexpected type byte %C" c))

  let compact t =
    (* Reclaim consumed prefix once it dominates the buffer. *)
    if t.pos > 4096 && t.pos * 2 > Buffer.length t.buf then begin
      let rest = Buffer.sub t.buf t.pos (Buffer.length t.buf - t.pos) in
      let fresh = Buffer.create (String.length rest + 256) in
      Buffer.add_string fresh rest;
      t.buf <- fresh;
      t.pos <- 0
    end

  let next t =
    match t.failed with
    | Some msg -> Result.Error msg
    | None -> (
      let s = Buffer.contents t.buf in
      let limit = String.length s in
      match parse s t.pos limit with
      | v, consumed ->
        t.pos <- consumed;
        compact t;
        Ok (Some v)
      | exception Incomplete -> Ok None
      | exception Bad msg ->
        t.failed <- Some msg;
        Result.Error msg)
end

let parse_exactly s =
  let p = Parser.create () in
  Parser.feed p s;
  match Parser.next p with
  | Result.Error e -> Result.Error e
  | Ok None -> Result.Error "incomplete value"
  | Ok (Some v) ->
    if Parser.buffered p <> 0 then Result.Error "trailing bytes after value" else Ok v
