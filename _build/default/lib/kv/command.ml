type t =
  | Ping
  | Echo of string
  | Set of { key : string; value : string; ttl : Sim.Time.span option }
  | Get of string
  | Del of string list
  | Exists of string list
  | Append of { key : string; value : string }
  | Strlen of string
  | Incr of string
  | Decr of string
  | Incrby of { key : string; delta : int }
  | Mset of (string * string) list
  | Mget of string list
  | Setnx of { key : string; value : string }
  | Getset of { key : string; value : string }
  | Expire of { key : string; seconds : int }
  | Ttl of string
  | Dbsize
  | Flushall
  | Keys of string

let name = function
  | Ping -> "PING"
  | Echo _ -> "ECHO"
  | Set _ -> "SET"
  | Get _ -> "GET"
  | Del _ -> "DEL"
  | Exists _ -> "EXISTS"
  | Append _ -> "APPEND"
  | Strlen _ -> "STRLEN"
  | Incr _ -> "INCR"
  | Decr _ -> "DECR"
  | Incrby _ -> "INCRBY"
  | Mset _ -> "MSET"
  | Mget _ -> "MGET"
  | Setnx _ -> "SETNX"
  | Getset _ -> "GETSET"
  | Expire _ -> "EXPIRE"
  | Ttl _ -> "TTL"
  | Dbsize -> "DBSIZE"
  | Flushall -> "FLUSHALL"
  | Keys _ -> "KEYS"

let bulk s = Resp.Bulk (Some s)

let to_resp t =
  let parts =
    match t with
    | Ping -> [ "PING" ]
    | Echo s -> [ "ECHO"; s ]
    | Set { key; value; ttl = None } -> [ "SET"; key; value ]
    | Set { key; value; ttl = Some span } ->
      [ "SET"; key; value; "PX"; string_of_int (Sim.Time.to_ns span / 1_000_000) ]
    | Get key -> [ "GET"; key ]
    | Del keys -> "DEL" :: keys
    | Exists keys -> "EXISTS" :: keys
    | Append { key; value } -> [ "APPEND"; key; value ]
    | Strlen key -> [ "STRLEN"; key ]
    | Incr key -> [ "INCR"; key ]
    | Decr key -> [ "DECR"; key ]
    | Incrby { key; delta } -> [ "INCRBY"; key; string_of_int delta ]
    | Mset pairs -> "MSET" :: List.concat_map (fun (k, v) -> [ k; v ]) pairs
    | Mget keys -> "MGET" :: keys
    | Setnx { key; value } -> [ "SETNX"; key; value ]
    | Getset { key; value } -> [ "GETSET"; key; value ]
    | Expire { key; seconds } -> [ "EXPIRE"; key; string_of_int seconds ]
    | Ttl key -> [ "TTL"; key ]
    | Dbsize -> [ "DBSIZE" ]
    | Flushall -> [ "FLUSHALL" ]
    | Keys pattern -> [ "KEYS"; pattern ]
  in
  Resp.Array (Some (List.map bulk parts))

let request_bytes t = Resp.encoded_length (to_resp t)

let strings_of_resp = function
  | Resp.Array (Some items) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | Resp.Bulk (Some s) :: rest -> go (s :: acc) rest
      | _ -> Result.Error "command arguments must be bulk strings"
    in
    go [] items
  | _ -> Result.Error "command must be an array of bulk strings"

let wrong_args cmd = Result.Error (Printf.sprintf "wrong number of arguments for '%s'" cmd)

let parse_int_arg s ~what =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Result.Error (Printf.sprintf "%s is not an integer" what)

let rec pairs_of = function
  | [] -> Ok []
  | k :: v :: rest -> Result.map (fun tail -> (k, v) :: tail) (pairs_of rest)
  | [ _ ] -> Result.Error "wrong number of arguments for 'MSET'"

let of_resp value =
  match strings_of_resp value with
  | Result.Error _ as e -> e
  | Ok [] -> Result.Error "empty command"
  | Ok (cmd :: args) -> (
    match (String.uppercase_ascii cmd, args) with
    | "PING", [] -> Ok Ping
    | "PING", _ -> wrong_args "PING"
    | "ECHO", [ s ] -> Ok (Echo s)
    | "ECHO", _ -> wrong_args "ECHO"
    | "SET", [ key; value ] -> Ok (Set { key; value; ttl = None })
    | "SET", [ key; value; px; ms ] when String.uppercase_ascii px = "PX" ->
      Result.map
        (fun ms -> Set { key; value; ttl = Some (Sim.Time.ms ms) })
        (parse_int_arg ms ~what:"PX value")
    | "SET", [ key; value; ex; seconds ] when String.uppercase_ascii ex = "EX" ->
      Result.map
        (fun s -> Set { key; value; ttl = Some (Sim.Time.sec s) })
        (parse_int_arg seconds ~what:"EX value")
    | "SET", _ -> wrong_args "SET"
    | "GET", [ key ] -> Ok (Get key)
    | "GET", _ -> wrong_args "GET"
    | "DEL", (_ :: _ as keys) -> Ok (Del keys)
    | "DEL", [] -> wrong_args "DEL"
    | "EXISTS", (_ :: _ as keys) -> Ok (Exists keys)
    | "EXISTS", [] -> wrong_args "EXISTS"
    | "APPEND", [ key; value ] -> Ok (Append { key; value })
    | "APPEND", _ -> wrong_args "APPEND"
    | "STRLEN", [ key ] -> Ok (Strlen key)
    | "STRLEN", _ -> wrong_args "STRLEN"
    | "INCR", [ key ] -> Ok (Incr key)
    | "INCR", _ -> wrong_args "INCR"
    | "DECR", [ key ] -> Ok (Decr key)
    | "DECR", _ -> wrong_args "DECR"
    | "INCRBY", [ key; delta ] ->
      Result.map (fun delta -> Incrby { key; delta }) (parse_int_arg delta ~what:"delta")
    | "INCRBY", _ -> wrong_args "INCRBY"
    | "MSET", (_ :: _ as rest) -> Result.map (fun pairs -> Mset pairs) (pairs_of rest)
    | "MSET", [] -> wrong_args "MSET"
    | "MGET", (_ :: _ as keys) -> Ok (Mget keys)
    | "MGET", [] -> wrong_args "MGET"
    | "SETNX", [ key; value ] -> Ok (Setnx { key; value })
    | "SETNX", _ -> wrong_args "SETNX"
    | "GETSET", [ key; value ] -> Ok (Getset { key; value })
    | "GETSET", _ -> wrong_args "GETSET"
    | "EXPIRE", [ key; seconds ] ->
      Result.map
        (fun seconds -> Expire { key; seconds })
        (parse_int_arg seconds ~what:"seconds")
    | "EXPIRE", _ -> wrong_args "EXPIRE"
    | "TTL", [ key ] -> Ok (Ttl key)
    | "TTL", _ -> wrong_args "TTL"
    | "DBSIZE", [] -> Ok Dbsize
    | "DBSIZE", _ -> wrong_args "DBSIZE"
    | "FLUSHALL", [] -> Ok Flushall
    | "FLUSHALL", _ -> wrong_args "FLUSHALL"
    | "KEYS", [ pattern ] -> Ok (Keys pattern)
    | "KEYS", _ -> wrong_args "KEYS"
    | other, _ -> Result.Error (Printf.sprintf "unknown command '%s'" other))

let ok = Resp.Simple "OK"

let execute store ~now t =
  match t with
  | Ping -> Resp.Simple "PONG"
  | Echo s -> Resp.Bulk (Some s)
  | Set { key; value; ttl } ->
    Store.set store ~now ?ttl key value;
    ok
  | Get key -> Resp.Bulk (Store.get store ~now key)
  | Del keys -> Resp.Integer (Store.delete store ~now keys)
  | Exists keys -> Resp.Integer (Store.exists store ~now keys)
  | Append { key; value } -> Resp.Integer (Store.append store ~now key value)
  | Strlen key -> Resp.Integer (Store.strlen store ~now key)
  | Incr key -> (
    match Store.incr_by store ~now key 1 with
    | Ok v -> Resp.Integer v
    | Result.Error e -> Resp.Error ("ERR " ^ e))
  | Decr key -> (
    match Store.incr_by store ~now key (-1) with
    | Ok v -> Resp.Integer v
    | Result.Error e -> Resp.Error ("ERR " ^ e))
  | Incrby { key; delta } -> (
    match Store.incr_by store ~now key delta with
    | Ok v -> Resp.Integer v
    | Result.Error e -> Resp.Error ("ERR " ^ e))
  | Mset pairs ->
    List.iter (fun (k, v) -> Store.set store ~now k v) pairs;
    ok
  | Mget keys -> Resp.Array (Some (List.map (fun k -> Resp.Bulk (Store.get store ~now k)) keys))
  | Setnx { key; value } -> Resp.Integer (if Store.setnx store ~now key value then 1 else 0)
  | Getset { key; value } -> Resp.Bulk (Store.getset store ~now key value)
  | Expire { key; seconds } ->
    Resp.Integer (if Store.expire store ~now key ~ttl:(Sim.Time.sec seconds) then 1 else 0)
  | Ttl key -> (
    match Store.ttl store ~now key with
    | `Missing -> Resp.Integer (-2)
    | `No_ttl -> Resp.Integer (-1)
    | `Ttl span -> Resp.Integer (Sim.Time.to_ns span / 1_000_000_000))
  | Dbsize -> Resp.Integer (Store.size store ~now)
  | Flushall ->
    Store.flush store;
    ok
  | Keys pattern ->
    Resp.Array
      (Some
         (List.map (fun k -> Resp.Bulk (Some k)) (Store.keys_matching store ~now ~pattern)))
