(** The simulated Redis client (the load generator's endpoint).

    Single-threaded like the paper's pinned Lancet thread: issuing a
    request costs [send_cost] CPU, and each response costs
    [response_cost] ([c] in Figure 1), processed strictly in order.
    Request latency is measured from the {!request} call to the moment
    the application gets around to reading the complete response off
    the socket — so a response's own [c] is excluded, while head-of-
    line delays behind earlier responses are included, matching the
    paper's Figure-3 event definitions (events 1 to 10).

    [cpu_multiplier] scales both costs, modeling the virtual-machine
    client of Figure 2 whose processing is uniformly more expensive.

    The client also maintains the §3.3 hint tracker ([create] on issue,
    [complete] on response) and installs it as the socket's hint
    provider. *)

type config = {
  send_cost : Sim.Time.span;
  response_cost : Sim.Time.span;  (** [c] *)
  cpu_multiplier : float;  (** 1.0 bare metal; >1 models a VM *)
}

val default_config : config
(** 1 µs send, 2 µs response, multiplier 1. *)

type t

val create : Sim.Engine.t -> cpu:Sim.Cpu.t -> socket:Tcp.Socket.t -> config -> t

val request :
  t ->
  Command.t ->
  on_complete:(latency:Sim.Time.span -> Resp.value -> unit) ->
  unit
(** Issue one command; the callback fires when its response has been
    read (before the response's own processing cost is charged). *)

val outstanding : t -> int
val issued : t -> int
val completed : t -> int

val hint_tracker : t -> E2e.Hints.t

val p99_estimate_ns : t -> float option
(** Online p99 latency tracked by a P² estimator in O(1) space — the
    building block for the tail metrics the paper defers to future
    work.  [None] before the fifth response. *)
