(** In-memory key-value store with optional per-key expiry.

    The data plane behind the simulated Redis server.  Expiry is lazy:
    a key whose deadline has passed is treated as absent and reaped on
    access, like Redis's passive expiration. *)

type t

val create : unit -> t

val set : t -> now:Sim.Time.t -> ?ttl:Sim.Time.span -> string -> string -> unit
val get : t -> now:Sim.Time.t -> string -> string option

val delete : t -> now:Sim.Time.t -> string list -> int
(** Number of keys actually removed. *)

val exists : t -> now:Sim.Time.t -> string list -> int

val append : t -> now:Sim.Time.t -> string -> string -> int
(** Append to the (possibly absent) value; returns the new length. *)

val strlen : t -> now:Sim.Time.t -> string -> int

val incr_by : t -> now:Sim.Time.t -> string -> int -> (int, string) result
(** [Error _] when the current value is not an integer. *)

val setnx : t -> now:Sim.Time.t -> string -> string -> bool
val getset : t -> now:Sim.Time.t -> string -> string -> string option

val expire : t -> now:Sim.Time.t -> string -> ttl:Sim.Time.span -> bool
(** [false] when the key does not exist. *)

val ttl : t -> now:Sim.Time.t -> string -> [ `Missing | `No_ttl | `Ttl of Sim.Time.span ]

val size : t -> now:Sim.Time.t -> int
(** Live keys (expired keys are not counted). *)

val flush : t -> unit

val keys_matching : t -> now:Sim.Time.t -> pattern:string -> string list
(** Glob match with [*] and [?], like Redis [KEYS]; results sorted. *)
