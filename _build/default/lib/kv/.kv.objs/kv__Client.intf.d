lib/kv/client.mli: Command E2e Resp Sim Tcp
