lib/kv/store.mli: Sim
