lib/kv/client.ml: Command E2e Float Queue Resp Sim Tcp
