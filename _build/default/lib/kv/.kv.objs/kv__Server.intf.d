lib/kv/server.mli: Sim Store Tcp
