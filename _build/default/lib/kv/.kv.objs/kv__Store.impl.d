lib/kv/store.ml: Hashtbl List Option Result Sim String
