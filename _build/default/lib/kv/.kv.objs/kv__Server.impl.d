lib/kv/server.ml: Command List Resp Sim Store Tcp
