lib/kv/resp.ml: Buffer Char Format List Option Printf Result String
