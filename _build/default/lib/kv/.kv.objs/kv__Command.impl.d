lib/kv/command.ml: List Printf Resp Result Sim Store String
