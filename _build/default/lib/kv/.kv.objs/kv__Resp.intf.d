lib/kv/resp.mli: Format
