lib/kv/command.mli: Resp Sim Store
