(** Redis command parsing, encoding, and execution. *)

type t =
  | Ping
  | Echo of string
  | Set of { key : string; value : string; ttl : Sim.Time.span option }
  | Get of string
  | Del of string list
  | Exists of string list
  | Append of { key : string; value : string }
  | Strlen of string
  | Incr of string
  | Decr of string
  | Incrby of { key : string; delta : int }
  | Mset of (string * string) list
  | Mget of string list
  | Setnx of { key : string; value : string }
  | Getset of { key : string; value : string }
  | Expire of { key : string; seconds : int }
  | Ttl of string
  | Dbsize
  | Flushall
  | Keys of string

val to_resp : t -> Resp.value
(** Client-side encoding: the command as a RESP array of bulk strings,
    exactly as redis-cli would send it. *)

val of_resp : Resp.value -> (t, string) result
(** Server-side decoding.  Command names are case-insensitive. *)

val execute : Store.t -> now:Sim.Time.t -> t -> Resp.value
(** Run against the store, producing the RESP reply. *)

val name : t -> string

val request_bytes : t -> int
(** Wire size of the encoded request. *)
