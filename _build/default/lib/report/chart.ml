type series = { label : string; marker : char; points : (float * float) list }

type axis = Linear | Log10

type config = {
  width : int;
  height : int;
  y_axis : axis;
  x_label : string;
  y_label : string;
  y_line : (float * char) option;
}

let default_config =
  { width = 64; height = 16; y_axis = Log10; x_label = "x"; y_label = "y"; y_line = None }

let finite (_, y) = Float.is_finite y

let render ?(config = default_config) series =
  let cfg = config in
  if cfg.width < 8 || cfg.height < 4 then invalid_arg "Chart.render: grid too small";
  let all_points = List.concat_map (fun s -> List.filter finite s.points) series in
  if all_points = [] then "(no data to plot)\n"
  else begin
    let xs = List.map fst all_points in
    let ys = List.map snd all_points in
    let x_min = List.fold_left Float.min infinity xs in
    let x_max = List.fold_left Float.max neg_infinity xs in
    let y_min0 = List.fold_left Float.min infinity ys in
    let y_max0 = List.fold_left Float.max neg_infinity ys in
    (* include the reference line in the y-range *)
    let y_min0, y_max0 =
      match cfg.y_line with
      | Some (y, _) -> (Float.min y_min0 y, Float.max y_max0 y)
      | None -> (y_min0, y_max0)
    in
    let transform y =
      match cfg.y_axis with
      | Linear -> y
      | Log10 -> Float.log10 (Float.max y 1e-9)
    in
    let y_min = transform y_min0 and y_max = transform y_max0 in
    let x_span = if x_max > x_min then x_max -. x_min else 1.0 in
    let y_span = if y_max > y_min then y_max -. y_min else 1.0 in
    let col_of x =
      int_of_float
        (Float.round ((x -. x_min) /. x_span *. float_of_int (cfg.width - 1)))
    in
    let row_of y =
      (* row 0 is the top of the plot *)
      let frac = (transform y -. y_min) /. y_span in
      cfg.height - 1
      - int_of_float (Float.round (frac *. float_of_int (cfg.height - 1)))
    in
    let grid = Array.make_matrix cfg.height cfg.width ' ' in
    (* reference line first so data overwrites it *)
    (match cfg.y_line with
    | Some (y, ch) ->
      let r = row_of y in
      if r >= 0 && r < cfg.height then
        for c = 0 to cfg.width - 1 do
          grid.(r).(c) <- ch
        done
    | None -> ());
    List.iter
      (fun s ->
        (* draw point markers, connecting consecutive points vertically
           when they land in the same column region *)
        List.iter
          (fun (x, y) ->
            let c = col_of x and r = row_of y in
            if r >= 0 && r < cfg.height && c >= 0 && c < cfg.width then
              grid.(r).(c) <- s.marker)
          (List.filter finite s.points))
      series;
    let buf = Buffer.create ((cfg.width + 16) * (cfg.height + 4)) in
    let y_tick row =
      (* value whose transform lands on this row *)
      let frac = float_of_int (cfg.height - 1 - row) /. float_of_int (cfg.height - 1) in
      let v = y_min +. (frac *. y_span) in
      match cfg.y_axis with Linear -> v | Log10 -> Float.pow 10.0 v
    in
    Buffer.add_string buf (Printf.sprintf "%s\n" cfg.y_label);
    Array.iteri
      (fun row line ->
        let label =
          if row = 0 || row = cfg.height - 1 || row = cfg.height / 2 then
            Printf.sprintf "%9.4g" (y_tick row)
          else String.make 9 ' '
        in
        Buffer.add_string buf label;
        Buffer.add_string buf " |";
        Buffer.add_string buf (String.init cfg.width (fun c -> line.(c)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (String.make 10 ' ');
    Buffer.add_char buf '+';
    Buffer.add_string buf (String.make cfg.width '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "%10s%-10.4g%*s%10.4g   (%s)\n" "" x_min (cfg.width - 18) ""
         x_max cfg.x_label);
    List.iter
      (fun s ->
        if s.points <> [] then
          Buffer.add_string buf (Printf.sprintf "          %c = %s\n" s.marker s.label))
      series;
    (match cfg.y_line with
    | Some (y, ch) -> Buffer.add_string buf (Printf.sprintf "          %c = %.4g\n" ch y)
    | None -> ());
    Buffer.contents buf
  end
