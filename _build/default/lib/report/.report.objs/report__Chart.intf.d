lib/report/chart.mli:
