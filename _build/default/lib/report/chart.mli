(** ASCII line charts for benchmark output.

    Renders multiple (x, y) series on a character grid with a
    logarithmic or linear y-axis — enough to eyeball the paper's
    latency-vs-load curves and their crossovers directly in a
    terminal. *)

type series = {
  label : string;
  marker : char;
  points : (float * float) list;  (** (x, y); non-finite y are skipped *)
}

type axis = Linear | Log10

type config = {
  width : int;  (** plot area columns (default 64) *)
  height : int;  (** plot area rows (default 16) *)
  y_axis : axis;
  x_label : string;
  y_label : string;
  y_line : (float * char) option;
      (** horizontal reference rule, e.g. the 500 µs SLO *)
}

val default_config : config
(** 64x16, log-scale y, no reference line. *)

val render : ?config:config -> series list -> string
(** Multi-line string: the grid with axes, tick labels, and a legend.
    Series are drawn in order; later series overwrite earlier ones
    where they collide.  Empty input yields a message rather than
    raising. *)
