type t = {
  warmup_until : Sim.Time.t;
  summary : Sim.Stats.Summary.t;
  histogram : Sim.Stats.Histogram.t;
  mutable samples_us : float list;  (* reversed; for exact SLO fractions *)
}

let create ~warmup_until () =
  {
    warmup_until;
    summary = Sim.Stats.Summary.create ();
    histogram = Sim.Stats.Histogram.create ();
    samples_us = [];
  }

let record t ~at ~latency =
  if Sim.Time.compare at t.warmup_until > 0 then begin
    let us = Sim.Time.to_us latency in
    Sim.Stats.Summary.add t.summary us;
    Sim.Stats.Histogram.add t.histogram us;
    t.samples_us <- us :: t.samples_us
  end

let count t = Sim.Stats.Summary.count t.summary
let mean_us t = Sim.Stats.Summary.mean t.summary
let p50_us t = Sim.Stats.Histogram.percentile t.histogram 50.0
let p99_us t = Sim.Stats.Histogram.percentile t.histogram 99.0
let max_us t = if count t = 0 then 0.0 else Sim.Stats.Summary.max t.summary
let stddev_us t = Sim.Stats.Summary.stddev t.summary

let under_slo_fraction t ~slo_us =
  let n = count t in
  if n = 0 then 1.0
  else begin
    let under = List.length (List.filter (fun us -> us <= slo_us) t.samples_us) in
    float_of_int under /. float_of_int n
  end

let summary t = t.summary
let histogram t = t.histogram
