lib/loadgen/workload.ml: Hashtbl Kv Printf Sim String
