lib/loadgen/sweep.ml: Float List Runner
