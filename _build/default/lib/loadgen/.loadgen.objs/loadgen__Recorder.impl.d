lib/loadgen/recorder.ml: List Sim
