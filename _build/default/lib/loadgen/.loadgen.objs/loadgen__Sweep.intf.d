lib/loadgen/sweep.mli: Runner
