lib/loadgen/recorder.mli: Sim
