lib/loadgen/arrival.mli: Sim
