lib/loadgen/runner.mli: E2e Kv Sim Tcp Trace Workload
