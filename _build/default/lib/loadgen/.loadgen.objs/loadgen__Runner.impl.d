lib/loadgen/runner.ml: Array Arrival E2e Float Kv List Option Recorder Sim Tcp Trace Workload
