lib/loadgen/arrival.ml: Sim
