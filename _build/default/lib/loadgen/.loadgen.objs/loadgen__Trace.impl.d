lib/loadgen/trace.ml: Arrival Buffer Fun Hashtbl In_channel Kv List Printf Sim String Workload
