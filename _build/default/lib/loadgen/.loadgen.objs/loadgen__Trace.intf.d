lib/loadgen/trace.mli: Kv Sim Workload
