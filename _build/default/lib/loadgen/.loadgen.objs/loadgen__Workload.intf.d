lib/loadgen/workload.mli: Kv Sim
