type kind =
  | Poisson of Sim.Rng.t
  | Uniform
  | Bursty of { rng : Sim.Rng.t; burst : int; mutable left : int }

type t = { kind : kind; rate_rps : float; gap_ns : float }

let check_rate rate_rps =
  if rate_rps <= 0.0 then invalid_arg "Arrival: rate must be positive"

let poisson ~rng ~rate_rps =
  check_rate rate_rps;
  { kind = Poisson rng; rate_rps; gap_ns = 1e9 /. rate_rps }

let uniform ~rate_rps =
  check_rate rate_rps;
  { kind = Uniform; rate_rps; gap_ns = 1e9 /. rate_rps }

let bursty ~rng ~rate_rps ~burst =
  check_rate rate_rps;
  if burst < 1 then invalid_arg "Arrival.bursty: burst must be >= 1";
  { kind = Bursty { rng; burst; left = 0 }; rate_rps; gap_ns = 1e9 /. rate_rps }

let next_gap t =
  match t.kind with
  | Uniform -> int_of_float t.gap_ns
  | Poisson rng -> int_of_float (Sim.Rng.exponential rng ~mean:t.gap_ns)
  | Bursty b ->
    if b.left > 0 then begin
      b.left <- b.left - 1;
      0
    end
    else begin
      b.left <- b.burst - 1;
      (* Bursts arrive at rate/burst, so the per-request rate holds. *)
      int_of_float (Sim.Rng.exponential b.rng ~mean:(t.gap_ns *. float_of_int b.burst))
    end

let rate t = t.rate_rps
