(** Per-request latency recording with warmup exclusion. *)

type t

val create : warmup_until:Sim.Time.t -> unit -> t
(** Samples completed at or before [warmup_until] are discarded. *)

val record : t -> at:Sim.Time.t -> latency:Sim.Time.span -> unit

val count : t -> int
val mean_us : t -> float
val p50_us : t -> float
val p99_us : t -> float
val max_us : t -> float
val stddev_us : t -> float

val under_slo_fraction : t -> slo_us:float -> float
(** Fraction of recorded requests completing within the SLO. *)

val summary : t -> Sim.Stats.Summary.t
val histogram : t -> Sim.Stats.Histogram.t
