(** Workload specifications — the paper's Redis benchmarks.

    The evaluation's main workload sets 16 KiB values to 16 B keys
    (SET-only, Figure 4a); the heterogeneous variant mixes in 5% GETs
    whose 16 KiB responses break byte-unit estimation (Figure 4b). *)

type t = {
  set_ratio : float;  (** fraction of SETs; the rest are GETs *)
  key_size : int;
  value_size : int;
  n_keys : int;
  zipf_theta : float;  (** key popularity skew; 0 = uniform *)
}

val paper_set_only : t
(** Figure 4a: 100% SET, 16 B keys, 16 KiB values. *)

val paper_mixed : t
(** Figure 4b: 95% SET / 5% GET. *)

val small_requests : t
(** Sub-MSS requests (64 B values): the regime where Nagle coalesces
    whole requests and the Figure-1 batch economics are starkest. *)

val validate : t -> (t, string) result

val next_command : t -> rng:Sim.Rng.t -> Kv.Command.t
(** Draw one request.  Values are materialized at [value_size]; keys
    are fixed-width and drawn Zipf([zipf_theta]) over [n_keys]. *)

val prepopulate : t -> Kv.Store.t -> now:Sim.Time.t -> unit
(** Insert every key so GETs always hit, as a benchmark loader would. *)

val request_bytes : t -> [ `Set | `Get ] -> int
(** Wire size of an encoded request of the given kind. *)

val response_bytes : t -> [ `Set | `Get ] -> int
(** Wire size of the corresponding response (GET assumed hit). *)

val describe : t -> string
