(** Request arrival processes.

    Open-loop generation as in Lancet: inter-arrival gaps are drawn
    independently of completions, so the offered load is fixed and
    queueing delay shows up as latency rather than as a reduced request
    rate. *)

type t

val poisson : rng:Sim.Rng.t -> rate_rps:float -> t
(** Exponential gaps with mean [1/rate] — a memoryless open-loop
    client.  @raise Invalid_argument when the rate is not positive. *)

val uniform : rate_rps:float -> t
(** Fixed gaps of exactly [1/rate]. *)

val bursty : rng:Sim.Rng.t -> rate_rps:float -> burst:int -> t
(** Poisson arrivals of bursts of [burst] back-to-back requests, with
    the gap mean scaled so the long-run rate stays [rate_rps]. *)

val next_gap : t -> Sim.Time.span
(** The gap before the next request (0 within a burst). *)

val rate : t -> float
