lib/rpc/frame.ml: Buffer Char Format Int64 Printf String
