lib/rpc/client.ml: E2e Frame Hashtbl Int64 Printf Sim Tcp
