lib/rpc/service.ml: Frame Hashtbl List Option Sim String Tcp
