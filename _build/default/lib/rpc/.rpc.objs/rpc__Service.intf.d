lib/rpc/service.mli: Sim Tcp
