lib/rpc/frame.mli: Format
