lib/rpc/client.mli: E2e Sim Tcp
