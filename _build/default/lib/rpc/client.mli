(** RPC client with framework-integrated hints (§3.3).

    This is the paper's adoption story made concrete: because the
    framework owns message boundaries, it calls the hint API itself —
    [create] when a call is issued, [complete] when its response frame
    arrives — and installs the tracker as the socket's hint provider.
    Applications get accurate end-to-end estimation (at both ends of
    the connection) without writing a single instrumentation line. *)

type config = {
  send_cost : Sim.Time.span;  (** CPU cost of issuing a call *)
  response_cost : Sim.Time.span;  (** CPU cost of handling a reply *)
}

val default_config : config
(** 1 µs / 1 µs. *)

type t

val create : Sim.Engine.t -> cpu:Sim.Cpu.t -> socket:Tcp.Socket.t -> config -> t

val call :
  t ->
  meth:string ->
  payload:string ->
  on_reply:(latency:Sim.Time.span -> (string, string) result -> unit) ->
  unit
(** Issue one call; the callback receives the response payload or the
    server's error message, plus the end-to-end latency. *)

val outstanding : t -> int
val issued : t -> int
val completed : t -> int

val hint_tracker : t -> E2e.Hints.t
(** The tracker the framework maintains — ready for Little's law. *)

val perceived :
  t ->
  prev:E2e.Queue_state.share ->
  at:Sim.Time.t ->
  E2e.Queue_state.avgs option
(** Client-perceived mean latency/throughput since [prev] (a share
    previously obtained from {!hint_share}). *)

val hint_share : t -> at:Sim.Time.t -> E2e.Queue_state.share
