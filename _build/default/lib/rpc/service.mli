(** RPC server: method dispatch over a simulated socket.

    Event-driven and single-threaded like {!Kv.Server}, with the same
    amortizable cost model ([beta] per wakeup, a per-call cost per
    method), so batching economics apply to RPC traffic exactly as they
    do to Redis traffic. *)

type handler = string -> (string, string) result
(** Request payload to response payload; [Error] becomes an
    [Error_response] frame carrying the message. *)

type config = {
  beta : Sim.Time.span;  (** per-wakeup cost *)
  default_call_cost : Sim.Time.span;
      (** per-call cost for methods registered without an explicit one *)
}

val default_config : config
(** beta = 4 µs, call cost = 5 µs. *)

type t

val create :
  Sim.Engine.t -> cpu:Sim.Cpu.t -> socket:Tcp.Socket.t -> config -> t

val register : t -> ?cost:Sim.Time.span -> string -> handler -> unit
(** Register a method.  Re-registering replaces the handler.
    Calls to unregistered methods produce an [Error_response]. *)

val methods : t -> string list
val calls_served : t -> int
val errors_returned : t -> int
val wakeups : t -> int
val batch_sizes : t -> Sim.Stats.Summary.t
