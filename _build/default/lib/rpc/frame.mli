(** RPC wire framing.

    A minimal length-prefixed request/response format in the spirit of
    gRPC-over-HTTP2's data frames or Thrift's framed transport — just
    enough structure for a framework to own message boundaries, which
    is exactly what the paper's §3.3 hint API needs from a framework:
    the runtime knows where requests begin and complete, so it can call
    create/complete without any application involvement.

    Layout (big-endian):
    {v u32 length | u8 kind | u64 id | [u16 mlen | method] | payload v}
    where the method field is present only in requests. *)

type t =
  | Request of { id : int64; meth : string; payload : string }
  | Response of { id : int64; payload : string }
  | Error_response of { id : int64; message : string }

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val id : t -> int64

val encode : t -> string
(** @raise Invalid_argument when a request's method name exceeds
    65535 bytes. *)

val encoded_length : t -> int

(** Incremental decoder over a TCP byte stream. *)
module Decoder : sig
  type frame := t
  type t

  val create : unit -> t
  val feed : t -> string -> unit

  val next : t -> (frame option, string) result
  (** [Ok None] until a whole frame is buffered; [Error _] on a
      malformed frame (the decoder stays failed). *)

  val buffered : t -> int
end

val decode_exactly : string -> (t, string) result
