type handler = string -> (string, string) result

type config = { beta : Sim.Time.span; default_call_cost : Sim.Time.span }

let default_config = { beta = Sim.Time.us 4; default_call_cost = Sim.Time.us 5 }

type registration = { handler : handler; cost : Sim.Time.span }

type t = {
  engine : Sim.Engine.t;
  cpu : Sim.Cpu.t;
  socket : Tcp.Socket.t;
  cfg : config;
  table : (string, registration) Hashtbl.t;
  decoder : Frame.Decoder.t;
  mutable busy : bool;
  mutable served : int;
  mutable errors : int;
  mutable wakeups : int;
  batch_sizes : Sim.Stats.Summary.t;
}

let drain_requests t =
  let rec go acc =
    match Frame.Decoder.next t.decoder with
    | Ok (Some (Frame.Request r)) -> go ((r.id, r.meth, r.payload) :: acc)
    | Ok (Some (Frame.Response _ | Frame.Error_response _)) ->
      failwith "rpc service: received a response frame"
    | Ok None -> List.rev acc
    | Error msg -> failwith ("rpc service: framing error: " ^ msg)
  in
  go []

let lookup t meth = Hashtbl.find_opt t.table meth

let rec wake t = if not t.busy then process t

and process t =
  t.busy <- true;
  t.wakeups <- t.wakeups + 1;
  let avail = Tcp.Socket.recv_available t.socket in
  if avail > 0 then Frame.Decoder.feed t.decoder (Tcp.Socket.recv t.socket avail);
  let requests = drain_requests t in
  let k = List.length requests in
  if k > 0 then Sim.Stats.Summary.add t.batch_sizes (float_of_int k);
  let cost =
    List.fold_left
      (fun acc (_, meth, _) ->
        acc
        +
        match lookup t meth with
        | Some { cost; _ } -> cost
        | None -> t.cfg.default_call_cost)
      t.cfg.beta requests
  in
  Sim.Cpu.run t.cpu ~cost (fun () ->
      List.iter
        (fun (id, meth, payload) ->
          let reply =
            match lookup t meth with
            | None ->
              t.errors <- t.errors + 1;
              Frame.Error_response { id; message = "unknown method " ^ meth }
            | Some { handler; _ } -> (
              match handler payload with
              | Ok payload ->
                t.served <- t.served + 1;
                Frame.Response { id; payload }
              | Error message ->
                t.errors <- t.errors + 1;
                Frame.Error_response { id; message })
          in
          Tcp.Socket.send t.socket (Frame.encode reply))
        requests;
      t.busy <- false;
      if Tcp.Socket.recv_available t.socket > 0 then process t)

let create engine ~cpu ~socket cfg =
  if cfg.beta < 0 || cfg.default_call_cost < 0 then
    invalid_arg "Service.create: negative costs";
  let t =
    {
      engine;
      cpu;
      socket;
      cfg;
      table = Hashtbl.create 16;
      decoder = Frame.Decoder.create ();
      busy = false;
      served = 0;
      errors = 0;
      wakeups = 0;
      batch_sizes = Sim.Stats.Summary.create ();
    }
  in
  Tcp.Socket.on_readable socket (fun () -> wake t);
  t

let register t ?cost meth handler =
  let cost = Option.value cost ~default:t.cfg.default_call_cost in
  if cost < 0 then invalid_arg "Service.register: negative cost";
  Hashtbl.replace t.table meth { handler; cost }

let methods t = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.table [])
let calls_served t = t.served
let errors_returned t = t.errors
let wakeups t = t.wakeups
let batch_sizes t = t.batch_sizes
