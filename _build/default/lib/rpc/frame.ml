type t =
  | Request of { id : int64; meth : string; payload : string }
  | Response of { id : int64; payload : string }
  | Error_response of { id : int64; message : string }

let equal a b =
  match (a, b) with
  | Request x, Request y ->
    Int64.equal x.id y.id && String.equal x.meth y.meth
    && String.equal x.payload y.payload
  | Response x, Response y -> Int64.equal x.id y.id && String.equal x.payload y.payload
  | Error_response x, Error_response y ->
    Int64.equal x.id y.id && String.equal x.message y.message
  | (Request _ | Response _ | Error_response _), _ -> false

let pp ppf = function
  | Request { id; meth; payload } ->
    Format.fprintf ppf "Request#%Ld %s (%d bytes)" id meth (String.length payload)
  | Response { id; payload } ->
    Format.fprintf ppf "Response#%Ld (%d bytes)" id (String.length payload)
  | Error_response { id; message } -> Format.fprintf ppf "Error#%Ld %s" id message

let id = function
  | Request { id; _ } | Response { id; _ } | Error_response { id; _ } -> id

let kind_request = 0
let kind_response = 1
let kind_error = 2

let put_u16 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let put_u32 buf v =
  put_u16 buf ((v lsr 16) land 0xFFFF);
  put_u16 buf (v land 0xFFFF)

let put_u64 buf v =
  put_u32 buf (Int64.to_int (Int64.shift_right_logical v 32) land 0xFFFF_FFFF);
  put_u32 buf (Int64.to_int (Int64.logand v 0xFFFF_FFFFL))

let get_u16 s off = (Char.code s.[off] lsl 8) lor Char.code s.[off + 1]
let get_u32 s off = (get_u16 s off lsl 16) lor get_u16 s (off + 2)

let get_u64 s off =
  Int64.logor
    (Int64.shift_left (Int64.of_int (get_u32 s off)) 32)
    (Int64.of_int (get_u32 s (off + 4)))

let body_length = function
  | Request { meth; payload; _ } ->
    if String.length meth > 0xFFFF then
      invalid_arg "Frame.encode: method name exceeds 65535 bytes";
    1 + 8 + 2 + String.length meth + String.length payload
  | Response { payload; _ } -> 1 + 8 + String.length payload
  | Error_response { message; _ } -> 1 + 8 + String.length message

let encoded_length t = 4 + body_length t

let encode t =
  let body = body_length t in
  let buf = Buffer.create (4 + body) in
  put_u32 buf body;
  (match t with
  | Request { id; meth; payload } ->
    Buffer.add_char buf (Char.chr kind_request);
    put_u64 buf id;
    put_u16 buf (String.length meth);
    Buffer.add_string buf meth;
    Buffer.add_string buf payload
  | Response { id; payload } ->
    Buffer.add_char buf (Char.chr kind_response);
    put_u64 buf id;
    Buffer.add_string buf payload
  | Error_response { id; message } ->
    Buffer.add_char buf (Char.chr kind_error);
    put_u64 buf id;
    Buffer.add_string buf message);
  Buffer.contents buf

let parse_body s =
  (* [s] is the frame body, without the length prefix. *)
  let n = String.length s in
  if n < 9 then Error "frame body shorter than header"
  else begin
    let kind = Char.code s.[0] in
    let id = get_u64 s 1 in
    if kind = kind_request then begin
      if n < 11 then Error "request body too short for method length"
      else begin
        let mlen = get_u16 s 9 in
        if 11 + mlen > n then Error "method name exceeds frame"
        else
          Ok
            (Request
               {
                 id;
                 meth = String.sub s 11 mlen;
                 payload = String.sub s (11 + mlen) (n - 11 - mlen);
               })
      end
    end
    else if kind = kind_response then
      Ok (Response { id; payload = String.sub s 9 (n - 9) })
    else if kind = kind_error then
      Ok (Error_response { id; message = String.sub s 9 (n - 9) })
    else Error (Printf.sprintf "unknown frame kind %d" kind)
  end

module Decoder = struct
  type nonrec t = {
    mutable buf : Buffer.t;
    mutable pos : int;
    mutable failed : string option;
  }

  let create () = { buf = Buffer.create 256; pos = 0; failed = None }

  let feed t s = Buffer.add_string t.buf s

  let buffered t = Buffer.length t.buf - t.pos

  let compact t =
    if t.pos > 4096 && t.pos * 2 > Buffer.length t.buf then begin
      let rest = Buffer.sub t.buf t.pos (Buffer.length t.buf - t.pos) in
      let fresh = Buffer.create (String.length rest + 256) in
      Buffer.add_string fresh rest;
      t.buf <- fresh;
      t.pos <- 0
    end

  let next t =
    match t.failed with
    | Some msg -> Error msg
    | None ->
      let avail = buffered t in
      if avail < 4 then Ok None
      else begin
        let s = Buffer.contents t.buf in
        let body = get_u32 s t.pos in
        if avail < 4 + body then Ok None
        else begin
          match parse_body (String.sub s (t.pos + 4) body) with
          | Ok frame ->
            t.pos <- t.pos + 4 + body;
            compact t;
            Ok (Some frame)
          | Error msg ->
            t.failed <- Some msg;
            Error msg
        end
      end
end

let decode_exactly s =
  let d = Decoder.create () in
  Decoder.feed d s;
  match Decoder.next d with
  | Error _ as e -> e
  | Ok None -> Error "incomplete frame"
  | Ok (Some f) ->
    if Decoder.buffered d <> 0 then Error "trailing bytes after frame" else Ok f
