type config = { send_cost : Sim.Time.span; response_cost : Sim.Time.span }

let default_config = { send_cost = Sim.Time.us 1; response_cost = Sim.Time.us 1 }

type pending = {
  issued_at : Sim.Time.t;
  on_reply : latency:Sim.Time.span -> (string, string) result -> unit;
}

type t = {
  engine : Sim.Engine.t;
  cpu : Sim.Cpu.t;
  socket : Tcp.Socket.t;
  cfg : config;
  decoder : Frame.Decoder.t;
  pending : (int64, pending) Hashtbl.t;
  hints : E2e.Hints.t;
  mutable next_id : int64;
  mutable busy : bool;
  mutable issued : int;
  mutable completed : int;
}

let rec create engine ~cpu ~socket cfg =
  if cfg.send_cost < 0 || cfg.response_cost < 0 then
    invalid_arg "Rpc.Client.create: negative costs";
  let t =
    {
      engine;
      cpu;
      socket;
      cfg;
      decoder = Frame.Decoder.create ();
      pending = Hashtbl.create 64;
      hints = E2e.Hints.tracker ~at:(Sim.Engine.now engine);
      next_id = 1L;
      busy = false;
      issued = 0;
      completed = 0;
    }
  in
  (* The framework, not the application, wires the hint plumbing. *)
  Tcp.Socket.set_hint_provider socket (fun ~at -> E2e.Hints.share t.hints ~at);
  Tcp.Socket.on_readable socket (fun () -> wake t);
  t

and wake t = if not t.busy then process t

and process t =
  let avail = Tcp.Socket.recv_available t.socket in
  if avail > 0 then Frame.Decoder.feed t.decoder (Tcp.Socket.recv t.socket avail);
  match Frame.Decoder.next t.decoder with
  | Error msg -> failwith ("rpc client: framing error: " ^ msg)
  | Ok None -> ()
  | Ok (Some frame) ->
    let id = Frame.id frame in
    let reply =
      match frame with
      | Frame.Response { payload; _ } -> Ok payload
      | Frame.Error_response { message; _ } -> Error message
      | Frame.Request _ -> failwith "rpc client: received a request frame"
    in
    let rec_ =
      match Hashtbl.find_opt t.pending id with
      | Some r -> r
      | None -> failwith (Printf.sprintf "rpc client: reply to unknown call %Ld" id)
    in
    Hashtbl.remove t.pending id;
    let now = Sim.Engine.now t.engine in
    t.completed <- t.completed + 1;
    E2e.Hints.complete t.hints ~at:now 1;
    rec_.on_reply ~latency:(Sim.Time.diff now rec_.issued_at) reply;
    t.busy <- true;
    Sim.Cpu.run t.cpu ~cost:t.cfg.response_cost (fun () ->
        t.busy <- false;
        process t)

let call t ~meth ~payload ~on_reply =
  let now = Sim.Engine.now t.engine in
  let id = t.next_id in
  t.next_id <- Int64.succ t.next_id;
  t.issued <- t.issued + 1;
  E2e.Hints.create t.hints ~at:now 1;
  Hashtbl.replace t.pending id { issued_at = now; on_reply };
  let wire = Frame.encode (Frame.Request { id; meth; payload }) in
  Sim.Cpu.run t.cpu ~cost:t.cfg.send_cost (fun () -> Tcp.Socket.send t.socket wire)

let outstanding t = Hashtbl.length t.pending
let issued t = t.issued
let completed t = t.completed
let hint_tracker t = t.hints
let hint_share t ~at = E2e.Hints.share t.hints ~at
let perceived t ~prev ~at = E2e.Hints.avgs ~prev ~cur:(hint_share t ~at)
