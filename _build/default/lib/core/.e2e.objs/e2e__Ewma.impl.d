lib/core/ewma.ml: Float Option Sim
