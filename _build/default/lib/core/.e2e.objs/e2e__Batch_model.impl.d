lib/core/batch_model.ml: Array Float List
