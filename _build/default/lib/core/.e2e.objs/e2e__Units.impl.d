lib/core/units.ml: Format Printf
