lib/core/aimd.mli: Policy
