lib/core/estimator.ml: Exchange Latency Option Queue_state Sim
