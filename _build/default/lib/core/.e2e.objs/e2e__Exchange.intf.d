lib/core/exchange.mli: Format Queue_state Sim
