lib/core/aggregate.mli: Estimator
