lib/core/toggler.mli: Format Policy Sim
