lib/core/exchange.ml: Bytes Format Printf Queue_state Sim String
