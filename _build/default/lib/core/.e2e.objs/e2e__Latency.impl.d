lib/core/latency.ml: Exchange Float Option Queue_state Sim
