lib/core/queue_state_fixed.mli: Queue_state Sim
