lib/core/queue_state_fixed.ml: Queue_state Sim
