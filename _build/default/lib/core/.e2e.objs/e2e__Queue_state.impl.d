lib/core/queue_state.ml: Format Sim
