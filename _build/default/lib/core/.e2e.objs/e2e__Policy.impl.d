lib/core/policy.ml: Float Format Printf String
