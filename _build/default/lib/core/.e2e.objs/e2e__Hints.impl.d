lib/core/hints.ml: Queue_state
