lib/core/toggler.ml: Ewma Format Policy Sim
