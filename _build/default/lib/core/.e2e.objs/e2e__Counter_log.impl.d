lib/core/counter_log.ml: Exchange Latency List Queue_state Sim
