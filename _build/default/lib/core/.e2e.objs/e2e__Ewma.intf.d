lib/core/ewma.mli: Sim
