lib/core/aimd.ml: Policy Stdlib
