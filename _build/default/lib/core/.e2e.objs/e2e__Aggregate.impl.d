lib/core/aggregate.ml: Estimator List
