lib/core/estimator.mli: Exchange Sim
