lib/core/counter_log.mli: Exchange Sim
