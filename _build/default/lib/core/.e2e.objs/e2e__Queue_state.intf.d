lib/core/queue_state.mli: Format Sim
