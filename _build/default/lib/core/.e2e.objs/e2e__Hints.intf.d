lib/core/hints.mli: Queue_state Sim
