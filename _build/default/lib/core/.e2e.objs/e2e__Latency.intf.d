lib/core/latency.mli: Exchange
