lib/core/batch_model.mli:
