(** Integer-only queue state — the in-kernel form of Algorithm 1.

    A kernel cannot use floating point, and the wire format carries
    32-bit integers anyway (§3.2: three 4-byte counters per queue).
    This variant maintains the same 4-tuple as {!Queue_state} with the
    integral held in item-microseconds as a plain integer, matching
    what the prototype's ethtool counters export.  {!Queue_state} (the
    float version) is the reference; the two agree to within the
    microsecond quantization, which the equivalence tests check. *)

type t

val create : at:Sim.Time.t -> t

val track : t -> at:Sim.Time.t -> int -> unit
(** Same contract as {!Queue_state.track}. *)

val size : t -> int
val total : t -> int

val integral_item_us : t -> int
(** The raw counter a kernel would expose. *)

val snapshot : t -> at:Sim.Time.t -> Queue_state.share
(** Interoperates with the float pipeline: the integral is widened
    from item-µs to item-ns. *)

val wire_triple_bytes : int
(** 12: the per-queue wire footprint (time µs, total, integral item-µs,
    each 32 bits) — one third of {!Exchange.wire_size}. *)
