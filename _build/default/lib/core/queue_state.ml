type t = {
  mutable time : Sim.Time.t;
  mutable size : int;
  mutable total : int;
  mutable integral : float;
}

let create ~at = { time = at; size = 0; total = 0; integral = 0.0 }

let track t ~at nitems =
  if Sim.Time.compare at t.time < 0 then
    invalid_arg "Queue_state.track: time went backwards";
  let dt = Sim.Time.diff at t.time in
  t.integral <- t.integral +. (float_of_int t.size *. float_of_int dt);
  t.time <- at;
  let nsize = t.size + nitems in
  if nsize < 0 then invalid_arg "Queue_state.track: size would become negative";
  t.size <- nsize;
  if nitems < 0 then t.total <- t.total - nitems

let size t = t.size
let total t = t.total

type share = { time : Sim.Time.t; total : int; integral : float }

let snapshot (t : t) ~at =
  if Sim.Time.compare at t.time < 0 then
    invalid_arg "Queue_state.snapshot: time went backwards";
  let dt = Sim.Time.diff at t.time in
  {
    time = at;
    total = t.total;
    integral = t.integral +. (float_of_int t.size *. float_of_int dt);
  }

type avgs = { q_avg : float; throughput : float; latency_ns : float option }

let get_avgs ~prev ~cur =
  let dt = Sim.Time.diff cur.time prev.time in
  if dt <= 0 then None
  else begin
    let d_total = cur.total - prev.total in
    let d_integral = cur.integral -. prev.integral in
    let q_avg = d_integral /. float_of_int dt in
    let throughput = float_of_int d_total /. Sim.Time.to_sec dt in
    let latency_ns =
      if d_total > 0 then Some (d_integral /. float_of_int d_total) else None
    in
    Some { q_avg; throughput; latency_ns }
  end

let pp_share ppf s =
  Format.fprintf ppf "(time=%a total=%d integral=%.0f)" Sim.Time.pp s.time s.total
    s.integral

let pp ppf (t : t) =
  Format.fprintf ppf "(time=%a size=%d total=%d integral=%.0f)" Sim.Time.pp t.time
    t.size t.total t.integral
