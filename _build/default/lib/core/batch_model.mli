(** Analytic batching model (paper Figure 1).

    [n] client requests are queued at the server at time 0.  Serving
    one request and generating its response costs [alpha + beta], where
    [alpha] is the per-request cost and [beta] the per-batch
    (amortizable) cost: processing all [n] together costs
    [n*alpha + beta]; processing individually costs [n*(alpha+beta)].
    The client then spends a fixed [client_cost] ([c] in the paper)
    processing each response, sequentially.

    Depending on [c], batching improves both average latency and
    throughput (c=1), degrades both (c=5), or trades one for the other
    (c=3, with alpha=2, beta=4, n=3) — the paper's point that the same
    server-side decision can land anywhere on the spectrum, driven by
    client-side timing the server cannot see. *)

type params = { alpha : float; beta : float; client_cost : float; n : int }

val figure1_params : client_cost:float -> params
(** The paper's constants: alpha = 2, beta = 4, n = 3. *)

type run = {
  completions : float array;
      (** per-request completion times, in arrival order *)
  avg_latency : float;  (** mean completion time (requests arrive at 0) *)
  makespan : float;  (** completion time of the last request *)
  throughput : float;  (** n / makespan *)
}

val batched : params -> run
(** The server processes all [n] requests as one batch: every response
    becomes available at [n*alpha + beta], then the client works
    through them sequentially. *)

val unbatched : params -> run
(** The server processes requests one at a time (response [i] available
    at [i*(alpha+beta)]); the client pipeline may or may not be the
    bottleneck. *)

type verdict = {
  batching_improves_latency : bool;
  batching_improves_throughput : bool;
}

val compare : params -> verdict

val scan_client_cost : alpha:float -> beta:float -> n:int -> costs:float list ->
  (float * verdict) list
(** The Figure-1 sweep: how the batching verdict changes with [c]. *)
