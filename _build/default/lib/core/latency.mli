(** Combining per-queue delays into end-to-end latency (paper §3.2).

    With [L_unacked] the delay of sent-but-unacknowledged messages,
    [L_unread] the delay of received-but-unread messages, and
    [L_ackdelay] the (virtual) delay of received-but-unacknowledged
    messages, the paper derives (Figure 3):

    {v L ~= L_unacked^local - L_ackdelay^remote
          + L_unread^local + L_unread^remote v}

    The [- L_ackdelay^remote] term removes the peer's deliberate
    ack-delay from the unacked measurement, after which the residual
    round trip approximates the two one-way journeys. *)

type components = {
  unacked : float option;
  unread : float option;
  ackdelay : float option;
}
(** Per-queue average delays (ns) over one measurement window; a queue
    with no departures in the window contributes [None]. *)

val components_of_triples :
  prev:Exchange.triple -> cur:Exchange.triple -> components option
(** Run Algorithm 2 on each of the three queues of a snapshot pair.
    [None] when the window is empty. *)

val combine : local:components -> remote:components -> float option
(** The estimate above, clamped to non-negative.  [local.unacked] is
    required (without departures from the unacked queue no message
    completed a round trip, so there is nothing to estimate); the other
    terms default to zero when absent. *)

val estimate_one_direction :
  local_prev:Exchange.triple ->
  local_cur:Exchange.triple ->
  remote_prev:Exchange.triple ->
  remote_cur:Exchange.triple ->
  float option
(** End-to-end latency as seen from the [local] vantage point, from raw
    snapshot pairs. *)

val reconcile : float option -> float option -> float option
(** The paper uses the maximum of the two sides' estimates "to account
    for possible underestimations". *)
