type params = { alpha : float; beta : float; client_cost : float; n : int }

let figure1_params ~client_cost = { alpha = 2.0; beta = 4.0; client_cost; n = 3 }

type run = {
  completions : float array;
  avg_latency : float;
  makespan : float;
  throughput : float;
}

let check p =
  if p.n <= 0 then invalid_arg "Batch_model: n must be positive";
  if p.alpha < 0.0 || p.beta < 0.0 || p.client_cost < 0.0 then
    invalid_arg "Batch_model: costs must be non-negative"

let summarize completions =
  let n = Array.length completions in
  let sum = Array.fold_left ( +. ) 0.0 completions in
  let makespan = Array.fold_left Float.max 0.0 completions in
  {
    completions;
    avg_latency = sum /. float_of_int n;
    makespan;
    throughput = (if makespan > 0.0 then float_of_int n /. makespan else infinity);
  }

(* The client is a sequential pipeline: response [i] finishes
   [client_cost] after both its server-side availability and the
   completion of response [i-1]. *)
let client_pipeline ~available ~client_cost =
  let n = Array.length available in
  let completions = Array.make n 0.0 in
  let prev_done = ref 0.0 in
  for i = 0 to n - 1 do
    let start = Float.max available.(i) !prev_done in
    completions.(i) <- start +. client_cost;
    prev_done := completions.(i)
  done;
  completions

let batched p =
  check p;
  let ready = (float_of_int p.n *. p.alpha) +. p.beta in
  let available = Array.make p.n ready in
  summarize (client_pipeline ~available ~client_cost:p.client_cost)

let unbatched p =
  check p;
  let available =
    Array.init p.n (fun i -> float_of_int (i + 1) *. (p.alpha +. p.beta))
  in
  summarize (client_pipeline ~available ~client_cost:p.client_cost)

type verdict = {
  batching_improves_latency : bool;
  batching_improves_throughput : bool;
}

let compare p =
  let b = batched p and u = unbatched p in
  {
    batching_improves_latency = b.avg_latency < u.avg_latency;
    batching_improves_throughput = b.throughput > u.throughput;
  }

let scan_client_cost ~alpha ~beta ~n ~costs =
  List.map
    (fun client_cost -> (client_cost, compare { alpha; beta; client_cost; n }))
    costs
