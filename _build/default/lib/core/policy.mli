(** Batching objectives (paper §2 "Goal" and §5 "Dynamic Toggling").

    Throughput and latency can conflict, so toggling follows a system-
    or user-defined policy — e.g. "maximize throughput as long as
    latency remains below a specified threshold". *)

type t =
  | Prefer_latency  (** lower average latency wins *)
  | Prefer_throughput  (** higher throughput wins *)
  | Throughput_under_slo of { slo_ns : float }
      (** maximize throughput among modes meeting the SLO (ties within
          10% broken by latency); when no mode meets it, lower latency
          wins *)

type outcome = { latency_ns : float; throughput : float }

val better : t -> outcome -> outcome -> bool
(** [better p a b] is [true] when [a] is strictly preferable to [b]. *)

val default_slo_ns : float
(** 500 µs — the SLO the paper's evaluation uses. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val of_string : string -> (t, string) result
(** Accepts ["latency"], ["throughput"], ["slo"] (default 500 µs) or
    ["slo:<microseconds>"]. *)
