(** Application hints (paper §3.3).

    For workloads where neither bytes nor send-calls correspond to
    application messages, the client maintains a userspace queue state
    of in-flight requests via a two-function API — [create n] when
    issuing requests and [complete n] when their responses arrive — and
    passes the state to the stack (in the real design, through [send]'s
    ancillary data).  Applied to this single logical queue, Little's law
    yields the application-perceived end-to-end latency and throughput
    directly, and the server needs no queue monitoring of its own. *)

type t

val tracker : at:Sim.Time.t -> t
(** Fresh in-flight request tracker. *)

val create : t -> at:Sim.Time.t -> int -> unit
(** [create t ~at n]: the application issued [n] requests. *)

val complete : t -> at:Sim.Time.t -> int -> unit
(** [complete t ~at n]: responses for [n] requests arrived.
    @raise Invalid_argument if more requests complete than were
    created. *)

val in_flight : t -> int

val share : t -> at:Sim.Time.t -> Queue_state.share
(** The 3-tuple handed to the stack / shared with the server. *)

val avgs :
  prev:Queue_state.share -> cur:Queue_state.share -> Queue_state.avgs option
(** End-to-end performance between two shares: [latency_ns] is the
    average request-to-response time, [throughput] the completed
    requests per second. *)
