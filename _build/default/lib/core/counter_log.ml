type entry = { at : Sim.Time.t; local : Exchange.triple; remote : Exchange.triple }

type t = { mutable entries : entry list (* newest first *) }

let create () = { entries = [] }

let record t ~at ~local ~remote =
  (match t.entries with
  | last :: _ when Sim.Time.compare at last.at < 0 ->
    invalid_arg "Counter_log.record: samples must be appended in time order"
  | _ -> ());
  t.entries <- { at; local; remote } :: t.entries

let length t = List.length t.entries

type sample = { at : Sim.Time.t; latency_ns : float option; throughput : float }

let estimate_between (prev : entry) (cur : entry) =
  let latency_local =
    Latency.estimate_one_direction ~local_prev:prev.local ~local_cur:cur.local
      ~remote_prev:prev.remote ~remote_cur:cur.remote
  in
  let latency_remote =
    Latency.estimate_one_direction ~local_prev:prev.remote ~local_cur:cur.remote
      ~remote_prev:prev.local ~remote_cur:cur.local
  in
  let throughput =
    match
      Queue_state.get_avgs ~prev:prev.local.Exchange.unacked
        ~cur:cur.local.Exchange.unacked
    with
    | Some avgs -> avgs.throughput
    | None -> 0.0
  in
  { at = cur.at; latency_ns = Latency.reconcile latency_local latency_remote; throughput }

let series t =
  let ordered = List.rev t.entries in
  let rec go acc = function
    | prev :: (cur :: _ as rest) -> go (estimate_between prev cur :: acc) rest
    | [ _ ] | [] -> List.rev acc
  in
  go [] ordered

let overall t =
  let ordered = List.rev t.entries in
  match ordered with
  | first :: (_ :: _ as rest) ->
    let last = List.nth rest (List.length rest - 1) in
    Some (estimate_between first last)
  | [ _ ] | [] -> None

let mean_latency_ns t =
  (* Weight each interval's latency by its departures, so intervals
     that carried more traffic count proportionally — equivalent to
     one big window when the counters are exact. *)
  let weighted, weight =
    List.fold_left
      (fun (acc, w) s ->
        match s.latency_ns with
        | Some l when s.throughput > 0.0 -> (acc +. (l *. s.throughput), w +. s.throughput)
        | Some _ | None -> (acc, w))
      (0.0, 0.0) (series t)
  in
  if weight > 0.0 then Some (weighted /. weight) else None
