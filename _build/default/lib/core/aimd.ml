type t = {
  min_limit : int;
  max_limit : int;
  increase : int;
  decrease : float;
  mutable current : int;
  mutable good : int;
  mutable bad : int;
}

let create ?initial ~min_limit ~max_limit ~increase ~decrease () =
  if min_limit <= 0 || max_limit < min_limit then
    invalid_arg "Aimd.create: need 0 < min_limit <= max_limit";
  if increase <= 0 then invalid_arg "Aimd.create: increase must be positive";
  if decrease <= 0.0 || decrease >= 1.0 then
    invalid_arg "Aimd.create: decrease must be in (0,1)";
  let current =
    match initial with
    | None -> min_limit
    | Some i ->
      if i < min_limit || i > max_limit then
        invalid_arg "Aimd.create: initial outside [min_limit, max_limit]";
      i
  in
  { min_limit; max_limit; increase; decrease; current; good = 0; bad = 0 }

let limit t = t.current

let clamp t v = Stdlib.max t.min_limit (Stdlib.min t.max_limit v)

let feedback t = function
  | `Good ->
    t.good <- t.good + 1;
    t.current <- clamp t (t.current + t.increase);
    t.current
  | `Bad ->
    t.bad <- t.bad + 1;
    t.current <- clamp t (int_of_float (float_of_int t.current *. t.decrease));
    t.current

let good_rounds t = t.good
let bad_rounds t = t.bad

let with_slo ~slo_ns (o : Policy.outcome) = if o.latency_ns <= slo_ns then `Good else `Bad
