(** Message units used to bridge the semantic gap (paper §3.3).

    The stack sees bytes and packets; applications think in requests and
    responses.  The estimator can count queue items in any of four
    units, trading kernel-only operation against accuracy on
    heterogeneous workloads. *)

type t =
  | Bytes  (** The paper's prototype: accurate only when requests and
               responses have similar sizes (§3.4). *)
  | Packets  (** MSS-sized segments; "similarly limited" per §3.4. *)
  | Syscalls  (** Buffers handed to [send] approximate messages
                  (§3.3, citing calibrated-interrupts experience). *)
  | Hinted  (** The application calls [create]/[complete] (§3.3);
                exact by construction. *)

val all : t list
val to_string : t -> string
val of_string : string -> (t, string) result
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
