type components = {
  unacked : float option;
  unread : float option;
  ackdelay : float option;
}

let queue_latency ~prev ~cur =
  match Queue_state.get_avgs ~prev ~cur with
  | None -> None
  | Some avgs -> avgs.latency_ns

let components_of_triples ~(prev : Exchange.triple) ~(cur : Exchange.triple) =
  if Sim.Time.diff cur.unacked.time prev.unacked.time <= 0 then None
  else
    Some
      {
        unacked = queue_latency ~prev:prev.unacked ~cur:cur.unacked;
        unread = queue_latency ~prev:prev.unread ~cur:cur.unread;
        ackdelay = queue_latency ~prev:prev.ackdelay ~cur:cur.ackdelay;
      }

let combine ~local ~remote =
  match local.unacked with
  | None -> None
  | Some unacked ->
    let value_of = Option.value ~default:0.0 in
    let l =
      unacked
      -. value_of remote.ackdelay
      +. value_of local.unread
      +. value_of remote.unread
    in
    Some (Float.max l 0.0)

let estimate_one_direction ~local_prev ~local_cur ~remote_prev ~remote_cur =
  match
    ( components_of_triples ~prev:local_prev ~cur:local_cur,
      components_of_triples ~prev:remote_prev ~cur:remote_cur )
  with
  | Some local, Some remote -> combine ~local ~remote
  | Some local, None ->
    (* Peer window empty: fall back to local-only terms. *)
    combine ~local ~remote:{ unacked = None; unread = None; ackdelay = None }
  | None, _ -> None

let reconcile a b =
  match (a, b) with
  | Some x, Some y -> Some (Float.max x y)
  | (Some _ as s), None | None, (Some _ as s) -> s
  | None, None -> None
