type t = { alpha : float; mutable current : float option }

let create ~alpha =
  if alpha <= 0.0 || alpha > 1.0 then invalid_arg "Ewma.create: alpha must be in (0,1]";
  { alpha; current = None }

let update t x =
  let v =
    match t.current with
    | None -> x
    | Some y -> y +. (t.alpha *. (x -. y))
  in
  t.current <- Some v;
  v

let value t = t.current

let value_or t ~default = Option.value t.current ~default

let reset t = t.current <- None

module Fixed = struct
  type t = { shift : int; mutable current : int option }

  let create ~shift =
    if shift < 1 || shift > 16 then invalid_arg "Ewma.Fixed.create: shift must be in [1,16]";
    { shift; current = None }

  let update t x =
    let v =
      match t.current with
      | None -> x
      | Some y -> y + ((x - y) asr t.shift)
    in
    t.current <- Some v;
    v

  let value t = t.current
  let alpha t = 1.0 /. float_of_int (1 lsl t.shift)
end

module Irregular = struct
  type nonrec t = {
    tau : float;
    mutable current : float option;
    mutable last_at : Sim.Time.t;
  }

  let create ~tau =
    if tau <= 0 then invalid_arg "Ewma.Irregular.create: tau must be positive";
    { tau = float_of_int tau; current = None; last_at = Sim.Time.zero }

  let update t ~at x =
    let v =
      match t.current with
      | None -> x
      | Some y ->
        let dt = float_of_int (Sim.Time.diff at t.last_at) in
        let dt = Float.max dt 0.0 in
        let alpha = 1.0 -. exp (-.dt /. t.tau) in
        y +. (alpha *. (x -. y))
    in
    t.current <- Some v;
    t.last_at <- at;
    v

  let value t = t.current
end
