(** Exponentially weighted moving averages (paper §5, "Toggling
    Granularity": EWMAs smooth noisy estimates in dynamic
    environments and can be computed online with low overhead). *)

type t

val create : alpha:float -> t
(** Classic fixed-weight EWMA, [alpha] in (0, 1]: each update moves the
    average a fraction [alpha] toward the sample.
    @raise Invalid_argument for [alpha] outside (0, 1]. *)

val update : t -> float -> float
(** Feed a sample; returns the new average. *)

val value : t -> float option
(** [None] before the first sample. *)

val value_or : t -> default:float -> float
val reset : t -> unit

(** Fixed-point EWMA with a power-of-two weight, the in-kernel form
    (Linux smooths SRTT exactly this way): [avg += (x - avg) >> shift],
    i.e. alpha = 1/2{^shift}, no floating point. *)
module Fixed : sig
  type t

  val create : shift:int -> t
  (** [shift] in [1, 16]; alpha = 1/2{^shift}.
      @raise Invalid_argument outside that range. *)

  val update : t -> int -> int
  val value : t -> int option
  val alpha : t -> float
end

(** Irregularly sampled EWMA: the effective weight of a sample depends
    on how much time elapsed since the previous one
    ([alpha_eff = 1 - exp (-dt / tau)]), so estimates arriving at
    varying intervals — e.g. on-demand metadata exchanges — are
    smoothed consistently. *)
module Irregular : sig
  type t

  val create : tau:Sim.Time.span -> t
  (** [tau] is the smoothing time constant.
      @raise Invalid_argument when [tau <= 0]. *)

  val update : t -> at:Sim.Time.t -> float -> float
  val value : t -> float option
end
