type t = Bytes | Packets | Syscalls | Hinted

let all = [ Bytes; Packets; Syscalls; Hinted ]

let to_string = function
  | Bytes -> "bytes"
  | Packets -> "packets"
  | Syscalls -> "syscalls"
  | Hinted -> "hinted"

let of_string = function
  | "bytes" -> Ok Bytes
  | "packets" -> Ok Packets
  | "syscalls" -> Ok Syscalls
  | "hinted" -> Ok Hinted
  | s -> Error (Printf.sprintf "unknown unit %S (expected bytes|packets|syscalls|hinted)" s)

let pp ppf t = Format.pp_print_string ppf (to_string t)
let equal a b = a = b
