type t = {
  mutable time_us : int;
  mutable size : int;
  mutable total : int;
  mutable integral_us : int;  (* item-microseconds *)
}

let us_of_ns ns = ns / 1_000

let create ~at =
  { time_us = us_of_ns (Sim.Time.to_ns at); size = 0; total = 0; integral_us = 0 }

(* Pure microsecond arithmetic, exactly as a kernel counter clocked
   from a µs source would run.  Each transition quantizes its interval
   to whole microseconds, so the integral drifts from the exact value
   by at most one item-µs per transition — negligible against the
   multi-µs queueing delays being measured. *)
let track t ~at nitems =
  let at_us = us_of_ns (Sim.Time.to_ns at) in
  if at_us < t.time_us then invalid_arg "Queue_state_fixed.track: time went backwards";
  t.integral_us <- t.integral_us + (t.size * (at_us - t.time_us));
  t.time_us <- at_us;
  let nsize = t.size + nitems in
  if nsize < 0 then invalid_arg "Queue_state_fixed.track: size would become negative";
  t.size <- nsize;
  if nitems < 0 then t.total <- t.total - nitems

let size t = t.size
let total t = t.total
let integral_item_us t = t.integral_us

let snapshot t ~at : Queue_state.share =
  let at_us = us_of_ns (Sim.Time.to_ns at) in
  if at_us < t.time_us then
    invalid_arg "Queue_state_fixed.snapshot: time went backwards";
  let integral_us = t.integral_us + (t.size * (at_us - t.time_us)) in
  {
    time = Sim.Time.us at_us;
    total = t.total;
    integral = float_of_int integral_us *. 1e3;
  }

let wire_triple_bytes = 12
