(** Little's-law queue accounting (paper §3.1, Algorithms 1 and 2).

    A queue's average delay is [D = Q / lambda] where [Q] is average
    occupancy and [lambda] the departure rate.  Both derive from a
    4-tuple state [(time, size, total, integral)] updated by {!track}
    whenever items enter or leave, exactly as in Algorithm 1:

    - [size]     — items currently in the queue;
    - [total]    — cumulative items that have {e left} the queue;
    - [integral] — time integral of [size] (item·ns);
    - [time]     — instant of the last update.

    {!get_avgs} (Algorithm 2) subtracts two 3-tuple snapshots to obtain
    window averages: [Q = d_integral/d_time], [lambda = d_total/d_time],
    [latency = Q/lambda = d_integral/d_total]. *)

type t

val create : at:Sim.Time.t -> t
(** Empty queue state initialized at the given instant. *)

val track : t -> at:Sim.Time.t -> int -> unit
(** [track t ~at nitems] records that [nitems] entered (positive) or
    left (negative) the queue at time [at] (Algorithm 1).  Updates must
    not go backwards in time and must not drive [size] negative.
    @raise Invalid_argument on either violation. *)

val size : t -> int
(** Current queue occupancy in items. *)

val total : t -> int
(** Cumulative departures. *)

(** {1 Snapshots and window averages} *)

type share = { time : Sim.Time.t; total : int; integral : float }
(** The 3-tuple a peer shares (§3.1): [size] is deliberately omitted
    because Algorithm 2 never uses it. *)

val snapshot : t -> at:Sim.Time.t -> share
(** Non-destructive snapshot with the integral advanced to [at]
    (accounts for the current occupancy persisting since the last
    {!track} call).  [at] must not precede the last update. *)

type avgs = {
  q_avg : float;  (** average occupancy over the window (items) *)
  throughput : float;  (** departures per second *)
  latency_ns : float option;  (** [None] when nothing departed *)
}

val get_avgs : prev:share -> cur:share -> avgs option
(** Algorithm 2 over the window between two snapshots; [None] when the
    window is empty or inverted. *)

val pp_share : Format.formatter -> share -> unit
val pp : Format.formatter -> t -> unit
