(** Offline counter analysis — the paper's prototype methodology (§3.4).

    The prototype does not exchange queue states in-band: it exports
    the 3-tuples as ethtool counters, polls them periodically at both
    ends, and derives latency estimates offline.  This module is that
    pipeline: append counter dumps during a run, then replay GETAVGS
    over consecutive dumps to obtain a latency/throughput time series
    and its run-level aggregate. *)

type t

val create : unit -> t

val record : t -> at:Sim.Time.t -> local:Exchange.triple -> remote:Exchange.triple -> unit
(** Append one polling sample: both ends' counters read at
    (approximately) the same instant, as the offline experiment
    collects them.  Samples must be appended in time order.
    @raise Invalid_argument otherwise. *)

val length : t -> int

type sample = {
  at : Sim.Time.t;  (** end of the interval *)
  latency_ns : float option;  (** max of the two vantage points *)
  throughput : float;  (** local unacked departures per second *)
}

val series : t -> sample list
(** Per-interval estimates between consecutive dumps, oldest first. *)

val overall : t -> sample option
(** One estimate spanning the first to the last dump. *)

val mean_latency_ns : t -> float option
(** Departure-weighted mean of the per-interval latency estimates —
    the number the offline analysis compares against the load
    generator's measured mean. *)
