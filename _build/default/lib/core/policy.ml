type t =
  | Prefer_latency
  | Prefer_throughput
  | Throughput_under_slo of { slo_ns : float }

type outcome = { latency_ns : float; throughput : float }

let default_slo_ns = 500_000.0

let better t a b =
  match t with
  | Prefer_latency -> a.latency_ns < b.latency_ns
  | Prefer_throughput -> a.throughput > b.throughput
  | Throughput_under_slo { slo_ns } -> (
    match (a.latency_ns <= slo_ns, b.latency_ns <= slo_ns) with
    | true, true ->
      (* With both compliant, throughput decides — but a fixed offered
         load makes throughputs near-identical, so within a 10% band the
         lower latency breaks the tie (headroom under the SLO). *)
      let close =
        Float.abs (a.throughput -. b.throughput)
        <= 0.10 *. Float.max a.throughput b.throughput
      in
      if close then a.latency_ns < b.latency_ns else a.throughput > b.throughput
    | true, false -> true
    | false, true -> false
    | false, false -> a.latency_ns < b.latency_ns)

let to_string = function
  | Prefer_latency -> "latency"
  | Prefer_throughput -> "throughput"
  | Throughput_under_slo { slo_ns } ->
    Printf.sprintf "slo:%.0f" (slo_ns /. 1e3)

let pp ppf t = Format.pp_print_string ppf (to_string t)

let of_string s =
  match s with
  | "latency" -> Ok Prefer_latency
  | "throughput" -> Ok Prefer_throughput
  | "slo" -> Ok (Throughput_under_slo { slo_ns = default_slo_ns })
  | s when String.length s > 4 && String.sub s 0 4 = "slo:" -> (
    let rest = String.sub s 4 (String.length s - 4) in
    match float_of_string_opt rest with
    | Some us when us > 0.0 -> Ok (Throughput_under_slo { slo_ns = us *. 1e3 })
    | Some _ | None -> Error (Printf.sprintf "invalid SLO microseconds: %S" rest))
  | s -> Error (Printf.sprintf "unknown policy %S (expected latency|throughput|slo[:us])" s)
