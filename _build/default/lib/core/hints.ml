type t = Queue_state.t

let tracker ~at = Queue_state.create ~at

let create t ~at n =
  if n < 0 then invalid_arg "Hints.create: negative count";
  Queue_state.track t ~at n

let complete t ~at n =
  if n < 0 then invalid_arg "Hints.complete: negative count";
  Queue_state.track t ~at (-n)

let in_flight t = Queue_state.size t

let share t ~at = Queue_state.snapshot t ~at

let avgs ~prev ~cur = Queue_state.get_avgs ~prev ~cur
