(** Cross-connection aggregation (§3.2).

    "The above provides per-connection estimates, which can be averaged
    if a batching policy simultaneously affects multiple connections."
    Latencies are combined as a throughput-weighted mean (a message
    picked at random across connections experiences the average);
    throughputs add. *)

type input = { latency_ns : float option; throughput : float }

type t = {
  latency_ns : float option;  (** weighted mean over contributing flows *)
  throughput : float;  (** sum *)
  flows : int;  (** inputs that contributed a latency estimate *)
}

val combine : input list -> t

val of_estimates : Estimator.estimate list -> t
(** Convenience over {!Estimator.estimate} results. *)
