(** AIMD batch-limit controller (paper §5 "Better Batching Heuristics").

    Instead of binary on/off toggling, gradually adjust a batching limit
    (e.g. how many bytes to coalesce before transmitting) based on
    observed end-to-end performance: additive increase while the
    feedback is good, multiplicative decrease when it is bad — the
    Chiu–Jain scheme that converges to an efficient, fair operating
    point under changing conditions. *)

type t

val create :
  ?initial:int ->
  min_limit:int ->
  max_limit:int ->
  increase:int ->
  decrease:float ->
  unit ->
  t
(** [increase] is the additive step (same unit as the limit);
    [decrease] is the multiplicative factor in (0, 1).  [initial]
    defaults to [min_limit].
    @raise Invalid_argument on an empty or inverted range, a
    non-positive step, or a factor outside (0, 1). *)

val limit : t -> int
(** The current batching limit. *)

val feedback : t -> [ `Good | `Bad ] -> int
(** Apply one round of feedback; returns the new limit, clamped to
    [min_limit, max_limit]. *)

val good_rounds : t -> int
val bad_rounds : t -> int

val with_slo : slo_ns:float -> Policy.outcome -> [ `Good | `Bad ]
(** Feedback adapter: good while measured latency meets the SLO. *)
