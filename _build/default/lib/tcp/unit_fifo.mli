(** Byte-range to message-unit translation.

    The stack's queues drain in bytes, but the estimator may count
    items in coarser units (send-calls, packets).  This FIFO remembers
    how many units each contiguous byte extent represents and converts
    a byte drain into the number of units completed: a unit is credited
    proportionally as its extent drains, with whole units granted as
    their final byte leaves.  For byte-units (each extent pushed with
    [units = bytes]) the translation is the identity. *)

type t

val create : unit -> t

val push : t -> bytes:int -> units:int -> unit
(** Record that the next [bytes] of the stream carry [units] message
    units.  Zero-byte pushes with positive units are credited on the
    next drain.  @raise Invalid_argument on negative arguments. *)

val drain : t -> bytes:int -> int
(** [drain t ~bytes] consumes the oldest [bytes] of the stream and
    returns how many whole units completed.
    @raise Invalid_argument when draining more bytes than pushed. *)

val pending_bytes : t -> int
val pending_units : t -> int
(** Units not yet credited by {!drain}. *)
