type t = {
  engine : Sim.Engine.t;
  max_delay : Sim.Time.span;
  max_batch : int;
  forward : Segment.t -> unit;
  held : Segment.t Queue.t;
  mutable timer : Sim.Engine.handle option;
  mutable batches : int;
  mutable segments : int;
}

let create engine ~max_delay ~max_batch ~forward =
  if max_delay < 0 then invalid_arg "Pacer.create: negative delay";
  if max_batch < 1 then invalid_arg "Pacer.create: max_batch must be >= 1";
  {
    engine;
    max_delay;
    max_batch;
    forward;
    held = Queue.create ();
    timer = None;
    batches = 0;
    segments = 0;
  }

let flush t =
  (match t.timer with
  | Some h ->
    Sim.Engine.cancel t.engine h;
    t.timer <- None
  | None -> ());
  if not (Queue.is_empty t.held) then begin
    t.batches <- t.batches + 1;
    while not (Queue.is_empty t.held) do
      t.forward (Queue.pop t.held)
    done
  end

let submit t seg =
  Queue.add seg t.held;
  t.segments <- t.segments + 1;
  if Queue.length t.held >= t.max_batch || t.max_delay = 0 then flush t
  else if t.timer = None then
    t.timer <- Some (Sim.Engine.schedule t.engine ~after:t.max_delay (fun () ->
        t.timer <- None;
        flush t))

let pending t = Queue.length t.held
let batches t = t.batches
let segments t = t.segments
