type t = int

let modulus = 1 lsl 32
let mask = modulus - 1

let of_int x = x land mask
let to_int x = x
let zero = 0

let add a n = (a + n) land mask
let sub a b = (a - b) land mask

(* Serial-number comparison: interpret the modular distance as a signed
   31-bit quantity. *)
let compare a b =
  if a = b then 0
  else begin
    let d = sub b a in
    if d < 1 lsl 31 then -1 else 1
  end

let lt a b = compare a b < 0
let leq a b = compare a b <= 0

let between x ~low ~high =
  let width = sub high low in
  sub x low < width

let pp ppf x = Format.fprintf ppf "%u" x
