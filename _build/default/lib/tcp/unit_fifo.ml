type entry = {
  total_bytes : int;
  units : int;
  mutable drained : int;
  mutable credited : int;
}

type t = { entries : entry Queue.t; mutable pending_bytes : int }

let create () = { entries = Queue.create (); pending_bytes = 0 }

let push t ~bytes ~units =
  if bytes < 0 || units < 0 then invalid_arg "Unit_fifo.push: negative argument";
  if bytes > 0 || units > 0 then begin
    Queue.add { total_bytes = bytes; units; drained = 0; credited = 0 } t.entries;
    t.pending_bytes <- t.pending_bytes + bytes
  end

(* Proportional crediting: after draining [drained] of [total] bytes an
   entry has earned [floor (units * drained / total)] units; whole-unit
   extents therefore complete exactly when their last byte drains. *)
let entry_credit e =
  if e.total_bytes = 0 then e.units
  else e.units * e.drained / e.total_bytes

let drain t ~bytes =
  if bytes < 0 then invalid_arg "Unit_fifo.drain: negative byte count";
  if bytes > t.pending_bytes then invalid_arg "Unit_fifo.drain: draining unpushed bytes";
  let remaining = ref bytes in
  let credited = ref 0 in
  let finish_entry e =
    let fresh = entry_credit e - e.credited in
    e.credited <- e.credited + fresh;
    credited := !credited + fresh
  in
  (* Zero-byte entries at the head complete immediately. *)
  let rec pop_exhausted () =
    match Queue.peek_opt t.entries with
    | Some e when e.total_bytes - e.drained = 0 ->
      e.drained <- e.total_bytes;
      finish_entry e;
      ignore (Queue.pop t.entries);
      pop_exhausted ()
    | Some _ | None -> ()
  in
  pop_exhausted ();
  while !remaining > 0 do
    let e = Queue.peek t.entries in
    let avail = e.total_bytes - e.drained in
    let take = Stdlib.min avail !remaining in
    e.drained <- e.drained + take;
    remaining := !remaining - take;
    finish_entry e;
    if e.drained = e.total_bytes then ignore (Queue.pop t.entries);
    pop_exhausted ()
  done;
  t.pending_bytes <- t.pending_bytes - bytes;
  !credited

let pending_bytes t = t.pending_bytes

let pending_units t =
  (* Units pushed minus units credited; partially drained head entries
     may already have credited a share. *)
  Queue.fold (fun acc e -> acc + (e.units - e.credited)) 0 t.entries
