type t = {
  mutable enabled : bool;
  mutable min_send : int option;
  mutable toggles : int;
}

let create ~enabled = { enabled; min_send = None; toggles = 0 }

let enabled t = t.enabled

let set_enabled t v =
  if t.enabled <> v then begin
    t.enabled <- v;
    t.toggles <- t.toggles + 1
  end

let min_send t = t.min_send
let set_min_send t v = t.min_send <- v
let toggles t = t.toggles

let should_send t ~mss ~chunk ~in_flight =
  if chunk <= 0 then false
  else if not t.enabled then true
  else if chunk >= mss then true
  else if in_flight = 0 then true
  else begin
    match t.min_send with
    | Some threshold -> chunk >= Stdlib.min threshold mss
    | None -> false
  end
