(** One-way network link.

    FIFO with per-packet serialization at the configured bandwidth plus
    fixed propagation delay — the point where packet-count overheads
    become visible, and the resource auto-corking watches. *)

type t

val create :
  Sim.Engine.t -> prop_delay:Sim.Time.span -> gbit_per_s:float -> t
(** @raise Invalid_argument on negative delay or non-positive rate. *)

val send : t -> wire_bytes:int -> (unit -> unit) -> unit
(** Ship a packet of [wire_bytes]; the callback fires at the receiver
    once serialization (behind any queued packets) and propagation
    complete. *)

val busy : t -> bool
(** Is the transmitter currently serializing (the NIC "tx ring not yet
    reclaimed" condition auto-corking keys on)? *)

val packets : t -> int
val bytes : t -> int
(** Lifetime counters. *)

val tx_busy_ns : t -> Sim.Time.span
(** Cumulative serialization time — link utilization. *)

val set_loss : t -> rng:Sim.Rng.t -> prob:float -> unit
(** Drop each packet independently with the given probability (after
    serialization — the sender still pays the wire time).
    @raise Invalid_argument for probabilities outside [0, 1). *)

val dropped : t -> int
