type t = {
  chunks : string Queue.t;
  mutable head_off : int;  (* consumed prefix of the front chunk *)
  mutable len : int;
  mutable appended : int;
  mutable consumed : int;
}

let create () =
  { chunks = Queue.create (); head_off = 0; len = 0; appended = 0; consumed = 0 }

let length t = t.len
let is_empty t = t.len = 0

let append t s =
  if String.length s > 0 then begin
    Queue.add s t.chunks;
    t.len <- t.len + String.length s;
    t.appended <- t.appended + String.length s
  end

(* Copy [n] bytes starting at the logical head into [buf]; [consume]
   decides whether the bytes are removed. *)
let extract t n ~consume =
  let n = Stdlib.min n t.len in
  let buf = Bytes.create n in
  if consume then begin
    let filled = ref 0 in
    while !filled < n do
      let chunk = Queue.peek t.chunks in
      let avail = String.length chunk - t.head_off in
      let take = Stdlib.min avail (n - !filled) in
      Bytes.blit_string chunk t.head_off buf !filled take;
      filled := !filled + take;
      if take = avail then begin
        ignore (Queue.pop t.chunks);
        t.head_off <- 0
      end
      else t.head_off <- t.head_off + take
    done;
    t.len <- t.len - n;
    t.consumed <- t.consumed + n
  end
  else begin
    let filled = ref 0 in
    let off = ref t.head_off in
    let iter chunk =
      if !filled < n then begin
        let avail = String.length chunk - !off in
        let take = Stdlib.min avail (n - !filled) in
        Bytes.blit_string chunk !off buf !filled take;
        filled := !filled + take;
        off := 0
      end
    in
    Queue.iter iter t.chunks
  end;
  Bytes.unsafe_to_string buf

let read t n = extract t n ~consume:true
let read_all t = read t t.len
let peek t n = extract t n ~consume:false

let drop t n =
  let n = Stdlib.min n t.len in
  ignore (read t n);
  n

let total_appended t = t.appended
let total_consumed t = t.consumed
