(** Nagle's algorithm (RFC 896), runtime-toggleable.

    The sender may transmit a segment when it is full-sized, when
    nothing is in flight, or when Nagle is disabled (TCP_NODELAY);
    otherwise sub-MSS data waits for an acknowledgment.  An optional
    [min_send] threshold below the MSS generalizes the rule for the
    AIMD batch-limit controller: segments at least that large may go
    out even with data in flight. *)

type t

val create : enabled:bool -> t

val enabled : t -> bool
val set_enabled : t -> bool -> unit
(** Flip at runtime — the paper's dynamic on/off toggling. *)

val min_send : t -> int option
val set_min_send : t -> int option -> unit
(** [Some n]: treat segments of at least [n] bytes as releasable even
    while data is in flight (AIMD-adjusted batch limit).  [None]
    restores pure RFC 896 behaviour. *)

val toggles : t -> int
(** How many times [set_enabled] changed the state — controller
    stability metric. *)

val should_send : t -> mss:int -> chunk:int -> in_flight:int -> bool
(** May a [chunk]-byte segment be transmitted now, given [in_flight]
    unacknowledged bytes? *)
