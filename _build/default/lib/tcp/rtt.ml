type t = {
  mutable srtt : float;  (* ns *)
  mutable rttvar : float;  (* ns *)
  mutable samples : int;
}

let min_rto = Sim.Time.ms 200
let max_rto = Sim.Time.sec 120
let initial_rto = Sim.Time.sec 1

let create () = { srtt = 0.0; rttvar = 0.0; samples = 0 }

(* RFC 6298: first sample sets SRTT = R, RTTVAR = R/2; afterwards
   RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - R|, SRTT = 7/8 SRTT + 1/8 R. *)
let sample t r =
  if r < 0 then invalid_arg "Rtt.sample: negative RTT";
  let r = float_of_int r in
  if t.samples = 0 then begin
    t.srtt <- r;
    t.rttvar <- r /. 2.0
  end
  else begin
    t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs (t.srtt -. r));
    t.srtt <- (0.875 *. t.srtt) +. (0.125 *. r)
  end;
  t.samples <- t.samples + 1

let srtt t = if t.samples = 0 then None else Some (int_of_float t.srtt)
let rttvar t = if t.samples = 0 then None else Some (int_of_float t.rttvar)

let rto t =
  if t.samples = 0 then initial_rto
  else begin
    let raw = int_of_float (t.srtt +. (4.0 *. t.rttvar)) in
    Stdlib.max min_rto (Stdlib.min max_rto raw)
  end

let samples t = t.samples
