(** 32-bit TCP sequence-number arithmetic (RFC 793 modular compare).

    The simulator tracks byte positions as full-width integers for
    clarity, but the wire codec and its tests exercise genuine wrapping
    sequence numbers through this module. *)

type t = private int
(** Always in [0, 2{^32}). *)

val of_int : int -> t
(** Truncates modulo 2{^32}. *)

val to_int : t -> int
val zero : t

val add : t -> int -> t
val sub : t -> t -> int
(** [sub a b] is the modular distance from [b] forward to [a], in
    [0, 2{^32}). *)

val compare : t -> t -> int
(** RFC 793 serial comparison: [a < b] iff [0 < sub b a < 2{^31}]. *)

val lt : t -> t -> bool
val leq : t -> t -> bool

val between : t -> low:t -> high:t -> bool
(** [between x ~low ~high]: does [x] lie in the half-open window
    [low, high) under serial arithmetic? *)

val pp : Format.formatter -> t -> unit
