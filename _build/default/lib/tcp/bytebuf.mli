(** Byte-stream FIFO carrying real payload bytes.

    Send and receive socket buffers: appended strings are queued
    without copying and sliced out on read.  Carrying actual bytes (not
    just counts) lets the RESP protocol layer parse genuine traffic. *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool

val append : t -> string -> unit

val read : t -> int -> string
(** [read t n] removes and returns [min n (length t)] bytes. *)

val read_all : t -> string

val peek : t -> int -> string
(** Like {!read} without consuming. *)

val drop : t -> int -> int
(** [drop t n] discards up to [n] bytes; returns the number dropped. *)

val total_appended : t -> int
(** Lifetime bytes appended — conservation checks in tests. *)

val total_consumed : t -> int
