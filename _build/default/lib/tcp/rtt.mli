(** Round-trip-time estimation (RFC 6298).

    The paper's §2 rules RTT out as an end-to-end latency signal: it
    misses application read delays entirely and is inflated by delayed
    acks.  We implement the standard estimator anyway — both for stack
    realism (the retransmission timer needs it) and so the benches can
    demonstrate that exact failure mode against the Little's-law
    estimates. *)

type t

val create : unit -> t

val sample : t -> Sim.Time.span -> unit
(** Feed one RTT measurement.  Per Karn's algorithm the caller must not
    sample retransmitted segments.  @raise Invalid_argument on a
    negative sample. *)

val srtt : t -> Sim.Time.span option
(** Smoothed RTT ([None] before the first sample). *)

val rttvar : t -> Sim.Time.span option

val rto : t -> Sim.Time.span
(** Retransmission timeout: [srtt + 4*rttvar], clamped to
    [min_rto, max_rto]; 1 s before any sample (RFC 6298 §2). *)

val samples : t -> int

val min_rto : Sim.Time.span
(** 200 ms, the Linux floor (RFC says 1 s; every implementation
    lowers it). *)

val max_rto : Sim.Time.span
(** 120 s. *)
