(** Doorbell batching / transmit pacing.

    Drivers may delay notifying the NIC that packets are queued
    (xmit_more) to amortize the doorbell cost.  This wrapper holds
    segments until either [max_batch] accumulate or [max_delay]
    elapses, then forwards the whole run — a third batching layer for
    the ablation benches, below Nagle and auto-corking. *)

type t

val create :
  Sim.Engine.t ->
  max_delay:Sim.Time.span ->
  max_batch:int ->
  forward:(Segment.t -> unit) ->
  t
(** @raise Invalid_argument when [max_delay < 0] or [max_batch < 1]. *)

val submit : t -> Segment.t -> unit
val flush : t -> unit

val pending : t -> int
val batches : t -> int
(** Doorbell rings so far. *)

val segments : t -> int
