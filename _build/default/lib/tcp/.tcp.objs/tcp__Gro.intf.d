lib/tcp/gro.mli: Segment Sim
