lib/tcp/nagle.ml: Stdlib
