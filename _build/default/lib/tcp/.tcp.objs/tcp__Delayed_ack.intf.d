lib/tcp/delayed_ack.mli: Sim
