lib/tcp/nagle.mli:
