lib/tcp/delayed_ack.ml: Sim
