lib/tcp/bytebuf.ml: Bytes Queue Stdlib String
