lib/tcp/pacer.ml: Queue Segment Sim
