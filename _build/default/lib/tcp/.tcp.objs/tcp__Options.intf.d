lib/tcp/options.mli: E2e
