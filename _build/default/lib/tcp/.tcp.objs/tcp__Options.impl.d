lib/tcp/options.ml: Buffer Char E2e List Printf String
