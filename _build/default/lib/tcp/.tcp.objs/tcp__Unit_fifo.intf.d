lib/tcp/unit_fifo.mli:
