lib/tcp/segment.ml: E2e Format String
