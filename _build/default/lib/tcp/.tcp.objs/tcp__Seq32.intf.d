lib/tcp/seq32.mli: Format
