lib/tcp/link.mli: Sim
