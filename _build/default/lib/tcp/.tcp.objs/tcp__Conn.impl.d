lib/tcp/conn.ml: Gro Link List Segment Sim Socket Stdlib String
