lib/tcp/rtt.mli: Sim
