lib/tcp/socket.ml: Bytebuf Delayed_ack E2e Format List Nagle Queue Rtt Segment Sim Stdlib String Unit_fifo
