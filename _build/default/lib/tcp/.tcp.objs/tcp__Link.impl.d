lib/tcp/link.ml: Float Sim Stdlib
