lib/tcp/rtt.ml: Float Sim Stdlib
