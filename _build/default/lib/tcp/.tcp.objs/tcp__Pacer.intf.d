lib/tcp/pacer.mli: Segment Sim
