lib/tcp/socket.mli: E2e Nagle Rtt Segment Sim
