lib/tcp/gro.ml: List Queue Segment Sim
