lib/tcp/bytebuf.mli:
