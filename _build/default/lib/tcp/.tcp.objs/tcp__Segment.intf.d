lib/tcp/segment.mli: E2e Format
