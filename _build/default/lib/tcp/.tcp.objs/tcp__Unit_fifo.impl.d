lib/tcp/unit_fifo.ml: Queue Stdlib
