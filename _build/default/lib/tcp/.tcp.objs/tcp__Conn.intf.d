lib/tcp/conn.mli: Gro Link Sim Socket
