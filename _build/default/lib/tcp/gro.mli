(** Generic Receive Offload / NAPI coalescing.

    The receive path does not hand every wire packet to the stack
    individually: consecutive full-MSS segments of a flow are merged
    and traverse the stack as one unit, up to a 64 KiB cap.  A sub-MSS
    segment (or a pure ack) can join a batch but terminates it, and a
    quiet gap flushes whatever is pending.

    This is the mechanism that makes sender-side batching pay off at
    the receiver: with Nagle on, a loaded sender emits an unbroken run
    of full segments that coalesce across request boundaries, so
    per-delivery costs (softirq stack traversal, socket wakeups) are
    amortized over several requests; with Nagle off, each request's
    short tail packet flushes the batch, pinning deliveries at one or
    more per request. *)

type config = {
  enabled : bool;
  max_bytes : int;  (** merge cap, default 64 KiB *)
  flush_timeout : Sim.Time.span;
      (** idle gap that ends a NAPI poll batch — the NIC's interrupt
          coalescing window (rx-usecs); default 12 µs *)
  mss : int;  (** segments of at least this payload can extend a batch *)
}

val default_config : mss:int -> config

type t

val create : Sim.Engine.t -> config -> deliver:(Segment.t list -> unit) -> t
(** [deliver] receives each flushed batch, oldest segment first.  With
    [enabled = false] every segment is delivered as its own batch
    immediately. *)

val submit : t -> Segment.t -> unit

val flush : t -> unit
(** Force out any held segments. *)

val pending : t -> int

val batches : t -> int
(** Deliveries so far. *)

val segments : t -> int

val merge_ratio : t -> float
(** Segments per delivery — the amortization factor actually achieved. *)
