type t = {
  engine : Sim.Engine.t;
  prop_delay : Sim.Time.span;
  ns_per_byte : float;
  mutable tx_free_at : Sim.Time.t;
  mutable packets : int;
  mutable bytes : int;
  mutable tx_busy : Sim.Time.span;
  mutable loss : (Sim.Rng.t * float) option;
  mutable dropped : int;
}

let create engine ~prop_delay ~gbit_per_s =
  if prop_delay < 0 then invalid_arg "Link.create: negative propagation delay";
  if gbit_per_s <= 0.0 then invalid_arg "Link.create: rate must be positive";
  {
    engine;
    prop_delay;
    ns_per_byte = 8.0 /. gbit_per_s;
    tx_free_at = Sim.Time.zero;
    packets = 0;
    bytes = 0;
    tx_busy = 0;
    loss = None;
    dropped = 0;
  }

let set_loss t ~rng ~prob =
  if prob < 0.0 || prob >= 1.0 then invalid_arg "Link.set_loss: prob must be in [0,1)";
  t.loss <- (if prob = 0.0 then None else Some (rng, prob))

let send t ~wire_bytes k =
  if wire_bytes <= 0 then invalid_arg "Link.send: packet must have positive size";
  let now = Sim.Engine.now t.engine in
  let tx_time =
    int_of_float (Float.round (float_of_int wire_bytes *. t.ns_per_byte))
  in
  let tx_time = Stdlib.max tx_time 1 in
  let start = Sim.Time.max now t.tx_free_at in
  let done_tx = Sim.Time.add start tx_time in
  t.tx_free_at <- done_tx;
  t.tx_busy <- t.tx_busy + tx_time;
  t.packets <- t.packets + 1;
  t.bytes <- t.bytes + wire_bytes;
  (* Loss is decided after serialization: the sender still spent the
     wire time, the receiver just never sees the packet. *)
  let lost =
    match t.loss with
    | Some (rng, prob) -> Sim.Rng.float rng < prob
    | None -> false
  in
  if lost then t.dropped <- t.dropped + 1
  else ignore (Sim.Engine.schedule_at t.engine ~at:(Sim.Time.add done_tx t.prop_delay) k)

let busy t = Sim.Time.compare t.tx_free_at (Sim.Engine.now t.engine) > 0
let packets t = t.packets
let bytes t = t.bytes
let tx_busy_ns t = t.tx_busy
let dropped t = t.dropped
