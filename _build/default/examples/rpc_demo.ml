(* The Section-3.3 adoption story: an RPC framework that gives both
   ends accurate end-to-end performance estimation for free.

   We define a tiny compute service, drive it with pipelined calls, and
   show three numbers agreeing:
     1. what the client application measured (ground truth),
     2. what the framework's automatic hints report at the client,
     3. what the SERVER derives from the hint shares its peer's stack
        forwarded — client-perceived latency, observed at the server,
        with zero server-side monitoring.

   Run with: dune exec examples/rpc_demo.exe *)

let pf = Printf.printf

let () =
  let engine = Sim.Engine.create () in
  let conn = Tcp.Conn.create engine () in
  let service =
    Rpc.Service.create engine
      ~cpu:(Sim.Cpu.create engine)
      ~socket:(Tcp.Conn.sock_b conn) Rpc.Service.default_config
  in
  (* a small service: string reversal (cheap) and a checksum (pricier) *)
  Rpc.Service.register service ~cost:(Sim.Time.us 2) "reverse" (fun p ->
      Ok (String.init (String.length p) (fun i -> p.[String.length p - 1 - i])));
  Rpc.Service.register service ~cost:(Sim.Time.us 15) "checksum" (fun p ->
      let sum = ref 0 in
      String.iter (fun c -> sum := (!sum + Char.code c) land 0xFFFF) p;
      Ok (string_of_int !sum));
  Rpc.Service.register service "version" (fun _ -> Ok "e2ebatch-rpc/1.0");
  let client =
    Rpc.Client.create engine
      ~cpu:(Sim.Cpu.create engine)
      ~socket:(Tcp.Conn.sock_a conn) Rpc.Client.default_config
  in
  (* 2000 calls at 20 kcalls/s, mixing the two methods *)
  let measured = Sim.Stats.Summary.create () in
  let baseline = Rpc.Client.hint_share client ~at:(Sim.Engine.now engine) in
  let rng = Sim.Rng.create ~seed:3 in
  for i = 0 to 1_999 do
    ignore
      (Sim.Engine.schedule_at engine ~at:(Sim.Time.us (i * 50)) (fun () ->
           let meth = if Sim.Rng.bool rng then "reverse" else "checksum" in
           Rpc.Client.call client ~meth ~payload:(String.make 700 'd')
             ~on_reply:(fun ~latency reply ->
               (match reply with
               | Ok _ -> ()
               | Error e -> failwith e);
               Sim.Stats.Summary.add measured (Sim.Time.to_us latency))))
  done;
  Sim.Engine.run engine;
  let now = Sim.Engine.now engine in
  pf "calls completed          : %d (%d served by the service)\n"
    (Rpc.Client.completed client)
    (Rpc.Service.calls_served service);
  pf "1. measured by the app   : %8.1f us mean\n" (Sim.Stats.Summary.mean measured);
  (match Rpc.Client.perceived client ~prev:baseline ~at:now with
  | Some { latency_ns = Some l; throughput; _ } ->
    pf "2. framework hints (client): %6.1f us mean, %.0f calls/s\n" (l /. 1e3) throughput
  | _ -> pf "2. framework hints: unavailable\n");
  (match Tcp.Socket.remote_hint_window (Tcp.Conn.sock_b conn) with
  | Some (prev, cur) -> (
    match E2e.Hints.avgs ~prev ~cur with
    | Some { latency_ns = Some l; _ } ->
      pf "3. derived at the SERVER : %8.1f us mean (no server-side monitoring)\n"
        (l /. 1e3)
    | _ -> pf "3. server view: unavailable\n")
  | None -> pf "3. server view: no hint shares received\n");
  pf "\nThe application wrote no instrumentation: the framework calls the\n";
  pf "create/complete hint API around each call, and the stack shares the\n";
  pf "queue state with the peer (Section 3.3).\n"
