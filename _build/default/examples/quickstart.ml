(* Quickstart: the paper's estimation machinery in four small steps.

   1. Track a queue with Algorithm 1 and read averages with Algorithm 2.
   2. Use the hints API to measure request/response latency directly.
   3. Share queue states over the wire (the 36-byte exchange payload).
   4. Run a real byte stream through the simulated TCP stack and read
      the end-to-end estimate off the socket's estimator.

   Run with: dune exec examples/quickstart.exe *)

let pf = Printf.printf

let step1_littles_law () =
  pf "== Step 1: Little's law over a queue (Algorithms 1 and 2) ==\n";
  (* The paper's worked example: one item for 10us, then four for 20us. *)
  let q = E2e.Queue_state.create ~at:Sim.Time.zero in
  E2e.Queue_state.track q ~at:Sim.Time.zero 1;
  E2e.Queue_state.track q ~at:(Sim.Time.us 10) 3;
  let prev : E2e.Queue_state.share =
    { time = Sim.Time.zero; total = 0; integral = 0.0 }
  in
  let cur = E2e.Queue_state.snapshot q ~at:(Sim.Time.us 30) in
  match E2e.Queue_state.get_avgs ~prev ~cur with
  | Some avgs ->
    pf "  average occupancy Q = %.1f items (paper: 3.0)\n" avgs.q_avg;
    pf "  departures so far   = %d\n" cur.total
  | None -> assert false

let step2_hints () =
  pf "\n== Step 2: application hints (Section 3.3) ==\n";
  let h = E2e.Hints.tracker ~at:Sim.Time.zero in
  (* create(n) when issuing requests, complete(n) when responses land *)
  E2e.Hints.create h ~at:Sim.Time.zero 1;
  E2e.Hints.complete h ~at:(Sim.Time.us 150) 1;
  E2e.Hints.create h ~at:(Sim.Time.us 200) 1;
  E2e.Hints.complete h ~at:(Sim.Time.us 450) 1;
  let prev : E2e.Queue_state.share =
    { time = Sim.Time.zero; total = 0; integral = 0.0 }
  in
  let cur = E2e.Hints.share h ~at:(Sim.Time.us 500) in
  (match E2e.Hints.avgs ~prev ~cur with
  | Some { latency_ns = Some l; throughput; _ } ->
    pf "  mean end-to-end latency = %.0f us ((150 + 250) / 2 = 200)\n" (l /. 1e3);
    pf "  throughput              = %.0f requests/s\n" throughput
  | _ -> assert false)

let step3_exchange () =
  pf "\n== Step 3: the 36-byte metadata exchange (Section 3.2) ==\n";
  let e = E2e.Estimator.create ~at:Sim.Time.zero in
  E2e.Estimator.track_unacked e ~at:Sim.Time.zero 1000;
  E2e.Estimator.track_unacked e ~at:(Sim.Time.us 40) (-1000);
  let snapshot = E2e.Estimator.local_snapshot e ~at:(Sim.Time.us 50) in
  let wire = E2e.Exchange.encode snapshot in
  pf "  encoded %d bytes: %s...\n" (String.length wire)
    (String.concat ""
       (List.map (fun i -> Printf.sprintf "%02x" (Char.code wire.[i])) [ 0; 1; 2; 3; 4; 5; 6; 7 ]));
  match E2e.Exchange.decode wire with
  | Ok triple -> pf "  decoded: unacked total=%d (1000 bytes acked)\n" triple.unacked.total
  | Error e -> pf "  decode failed: %s\n" e

let step4_stack () =
  pf "\n== Step 4: estimate a real flow through the simulated stack ==\n";
  let engine = Sim.Engine.create () in
  let conn = Tcp.Conn.create engine () in
  let client = Tcp.Conn.sock_a conn and server = Tcp.Conn.sock_b conn in
  (* server echoes a short confirmation per 1000-byte request *)
  Tcp.Socket.on_readable server (fun () ->
      let data = Tcp.Socket.recv server (Tcp.Socket.recv_available server) in
      if String.length data > 0 then Tcp.Socket.send server "ok");
  Tcp.Socket.on_readable client (fun () ->
      ignore (Tcp.Socket.recv client (Tcp.Socket.recv_available client)));
  (* issue 100 requests, one every 100us *)
  for i = 0 to 99 do
    ignore
      (Sim.Engine.schedule_at engine ~at:(Sim.Time.us (i * 100)) (fun () ->
           Tcp.Socket.send client (String.make 1000 'q')))
  done;
  Sim.Engine.run engine;
  match
    E2e.Estimator.peek_estimate (Tcp.Socket.estimator client) ~at:(Sim.Engine.now engine)
  with
  | Some { latency_ns = Some l; throughput; _ } ->
    pf "  estimated end-to-end latency: %.1f us\n" (l /. 1e3);
    pf "  estimated throughput:         %.0f KB/s (byte units)\n" (throughput /. 1e3);
    pf "  packets on the wire:          %d\n" (Tcp.Conn.total_packets conn)
  | _ -> pf "  (no estimate)\n"

let () =
  step1_littles_law ();
  step2_hints ();
  step3_exchange ();
  step4_stack ()
