(* Estimation across a two-hop topology: client -> proxy -> server.

   The paper's estimates are per-connection.  A proxy that forwards
   requests has two connections, each with its own three-queue
   estimate; the application-perceived latency is their composition
   plus the proxy's own processing.  This example builds the chain
   from the public API, measures ground truth at the client, and
   compares it with the sum of the two per-hop estimates — showing
   both what composes (queueing and transport) and what doesn't (the
   proxy's compute time, which the paper's L deliberately excludes).

   Run with: dune exec examples/proxy_chain.exe *)

let pf = Printf.printf

let proxy_cost = Sim.Time.us 4

let () =
  let engine = Sim.Engine.create () in
  (* Proxies set TCP_NODELAY: a store-and-forward hop that lets Nagle
     hold its sub-MSS forwards serializes at one request per RTT and
     collapses - try flipping [nagle] to true to watch it happen. *)
  let host =
    {
      Tcp.Conn.default_host with
      socket = { Tcp.Socket.default_config with nagle = false };
    }
  in
  (* hop 1: client <-> proxy; hop 2: proxy <-> server *)
  let hop1 = Tcp.Conn.create engine ~a:host ~b:host () in
  let hop2 = Tcp.Conn.create engine ~a:host ~b:host () in
  let client_sock = Tcp.Conn.sock_a hop1 in
  let proxy_in = Tcp.Conn.sock_b hop1 in
  let proxy_out = Tcp.Conn.sock_a hop2 in
  let server_sock = Tcp.Conn.sock_b hop2 in
  let proxy_cpu = Sim.Cpu.create engine in
  (* the server: echo a short confirmation per fixed-size request *)
  let request_size = 1_000 in
  let served = ref 0 in
  Tcp.Socket.on_readable server_sock (fun () ->
      let data = Tcp.Socket.recv server_sock (Tcp.Socket.recv_available server_sock) in
      let n = String.length data / request_size in
      for _ = 1 to n do
        incr served;
        Tcp.Socket.send server_sock "ok"
      done);
  (* the proxy: byte-level store-and-forward with a per-chunk cost *)
  let forward src dst () =
    let data = Tcp.Socket.recv src (Tcp.Socket.recv_available src) in
    if String.length data > 0 then
      Sim.Cpu.run proxy_cpu ~cost:proxy_cost (fun () -> Tcp.Socket.send dst data)
  in
  Tcp.Socket.on_readable proxy_in (forward proxy_in proxy_out);
  Tcp.Socket.on_readable proxy_out (forward proxy_out proxy_in);
  (* the client: fixed-rate requests, ground-truth latency per reply *)
  let outstanding = Queue.create () in
  let latencies = Sim.Stats.Summary.create () in
  Tcp.Socket.on_readable client_sock (fun () ->
      let data = Tcp.Socket.recv client_sock (Tcp.Socket.recv_available client_sock) in
      for _ = 1 to String.length data / 2 do
        let t0 = Queue.pop outstanding in
        Sim.Stats.Summary.add latencies
          (Sim.Time.to_us (Sim.Time.diff (Sim.Engine.now engine) t0))
      done);
  let n_requests = 2_000 in
  for i = 0 to n_requests - 1 do
    ignore
      (Sim.Engine.schedule_at engine ~at:(Sim.Time.us (i * 40)) (fun () ->
           Queue.push (Sim.Engine.now engine) outstanding;
           Tcp.Socket.send client_sock (String.make request_size 'r')))
  done;
  Sim.Engine.run engine;
  let at = Sim.Engine.now engine in
  let hop_estimate sock =
    match E2e.Estimator.peek_estimate (Tcp.Socket.estimator sock) ~at with
    | Some { latency_ns = Some l; _ } -> l /. 1e3
    | _ -> nan
  in
  let hop1_us = hop_estimate client_sock in
  let hop2_us = hop_estimate proxy_out in
  pf "requests served by the origin : %d / %d\n" !served n_requests;
  pf "measured end-to-end (client)  : %8.1f us mean\n" (Sim.Stats.Summary.mean latencies);
  pf "hop 1 estimate (client-proxy) : %8.1f us\n" hop1_us;
  pf "hop 2 estimate (proxy-server) : %8.1f us\n" hop2_us;
  pf "sum of hop estimates          : %8.1f us\n" (hop1_us +. hop2_us);
  pf "proxy compute (excluded by L) : %8.1f us per direction\n"
    (Sim.Time.to_us proxy_cost);
  pf "\nPer-connection estimates compose across hops: their sum tracks the\n";
  pf "measured end-to-end latency up to the proxy's own processing time,\n";
  pf "which Section 3.2's L excludes by design (it shows up instead in the\n";
  pf "next hop's queues once the proxy becomes the bottleneck).\n"
