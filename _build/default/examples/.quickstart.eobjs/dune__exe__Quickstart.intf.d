examples/quickstart.mli:
