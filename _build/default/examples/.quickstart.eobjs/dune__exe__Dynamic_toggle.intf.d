examples/dynamic_toggle.mli:
