examples/quickstart.ml: Char E2e List Printf Sim String Tcp
