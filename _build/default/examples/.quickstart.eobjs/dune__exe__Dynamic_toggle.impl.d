examples/dynamic_toggle.ml: E2e Kv List Loadgen Printf Sim String Tcp
