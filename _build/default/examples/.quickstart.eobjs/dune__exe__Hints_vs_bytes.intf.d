examples/hints_vs_bytes.mli:
