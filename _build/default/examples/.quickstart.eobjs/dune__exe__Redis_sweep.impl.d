examples/redis_sweep.ml: List Loadgen Printf Sim String
