examples/proxy_chain.ml: E2e Printf Queue Sim String Tcp
