examples/rpc_demo.ml: Char E2e Printf Rpc Sim String Tcp
