examples/rpc_demo.mli:
