examples/proxy_chain.mli:
