examples/redis_sweep.mli:
