examples/hints_vs_bytes.ml: List Loadgen Printf Sim String
