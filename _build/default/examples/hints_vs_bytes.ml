(* The semantic gap, demonstrated (Sections 3.3 / Figure 4b).

   Two identical runs of the heterogeneous 95:5 SET:GET workload, both
   with Nagle enabled at low load — the regime where 5% of the traffic
   (large GET responses, unharmed by Nagle) carries ~64% of the bytes.
   The byte-unit estimator is fooled; the hint-based one, fed by the
   application's create/complete calls, is not.

   Run with: dune exec examples/hints_vs_bytes.exe *)

let pf = Printf.printf

let run rate =
  let base = Loadgen.Runner.default_config ~rate_rps:rate ~batching:Loadgen.Runner.Static_on in
  Loadgen.Runner.run
    {
      base with
      warmup = Sim.Time.ms 50;
      duration = Sim.Time.ms 250;
      workload = Loadgen.Workload.paper_mixed;
    }

let () =
  let workload = Loadgen.Workload.paper_mixed in
  pf "Workload: %s\n" (Loadgen.Workload.describe workload);
  pf "SET request %d B -> response %d B; GET request %d B -> response %d B\n\n"
    (Loadgen.Workload.request_bytes workload `Set)
    (Loadgen.Workload.response_bytes workload `Set)
    (Loadgen.Workload.request_bytes workload `Get)
    (Loadgen.Workload.response_bytes workload `Get);
  pf "%6s | %10s | %18s | %18s\n" "kRPS" "measured" "byte-unit estimate"
    "hint-based estimate";
  pf "%s\n" (String.make 62 '-');
  List.iter
    (fun rate ->
      let r = run rate in
      let cell = function
        | Some est ->
          Printf.sprintf "%7.1fus (%+5.0f%%)" est
            (100.0 *. (est -. r.measured_mean_us) /. r.measured_mean_us)
        | None -> "                -"
      in
      pf "%6.0f | %8.1fus | %18s | %18s\n" (rate /. 1e3) r.measured_mean_us
        (cell r.estimated_us) (cell r.hint_estimated_us))
    [ 10e3; 20e3; 40e3 ];
  pf "\nThe byte-unit estimate says Nagle costs little (the bytes mostly move\n";
  pf "freely); the application-perceived truth is several times worse.  This\n";
  pf "is exactly why the paper proposes the create/complete hint API.\n"
