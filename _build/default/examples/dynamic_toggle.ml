(* Dynamic batching over a load ramp, built from the public API pieces
   (engine, stack, KV server/client, estimator, epsilon-greedy toggler).

   The offered load ramps 30k -> 140k requests/s in four stages.  At
   low load the controller should keep Nagle off (the Redis default);
   past the cutoff it should flip it on — without being told where the
   cutoff is, purely from the exchanged queue-state estimates.

   Run with: dune exec examples/dynamic_toggle.exe *)

let pf = Printf.printf

let stage_len = Sim.Time.ms 150
let stages = [ 30e3; 70e3; 110e3; 140e3 ]
let tick = Sim.Time.ms 1

let () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed:7 in
  let conn = Tcp.Conn.create engine () in
  let sock_client = Tcp.Conn.sock_a conn and sock_server = Tcp.Conn.sock_b conn in
  let server_cpu = Sim.Cpu.create engine and client_cpu = Sim.Cpu.create engine in
  let server =
    Kv.Server.create engine ~cpu:server_cpu ~socket:sock_server Kv.Server.default_config
  in
  let client =
    Kv.Client.create engine ~cpu:client_cpu ~socket:sock_client Kv.Client.default_config
  in
  let workload = Loadgen.Workload.paper_set_only in
  Loadgen.Workload.prepopulate workload (Kv.Server.store server)
    ~now:(Sim.Engine.now engine);
  (* Open-loop driver whose rate is looked up per request. *)
  let current_rate = ref (List.hd stages) in
  let wl_rng = Sim.Rng.split rng in
  let stage_summary = ref (Sim.Stats.Summary.create ()) in
  let rec drive () =
    let gap = Sim.Rng.exponential rng ~mean:(1e9 /. !current_rate) in
    ignore
      (Sim.Engine.schedule engine ~after:(int_of_float gap) (fun () ->
           Kv.Client.request client
             (Loadgen.Workload.next_command workload ~rng:wl_rng)
             ~on_complete:(fun ~latency _ ->
               Sim.Stats.Summary.add !stage_summary (Sim.Time.to_us latency));
           drive ()))
  in
  drive ();
  (* The Section-5 controller: estimate -> observe -> decide, per tick. *)
  let toggler =
    E2e.Toggler.create
      ~policy:(E2e.Policy.Throughput_under_slo { slo_ns = E2e.Policy.default_slo_ns })
      ~rng:(Sim.Rng.split rng) ~initial:E2e.Toggler.Batch_off ()
  in
  let estimator = Tcp.Socket.estimator sock_client in
  let on_ticks = ref 0 and total_ticks = ref 0 in
  let rec control () =
    let at = Sim.Engine.now engine in
    let mode = E2e.Toggler.mode toggler in
    (match E2e.Estimator.estimate estimator ~at with
    | Some { latency_ns = Some latency_ns; throughput; _ } when throughput > 0.0 ->
      E2e.Toggler.observe toggler ~mode { E2e.Policy.latency_ns; throughput }
    | Some _ | None -> ());
    let mode' = E2e.Toggler.decide toggler in
    let enabled = mode' = E2e.Toggler.Batch_on in
    Tcp.Socket.set_nagle_enabled sock_client enabled;
    Tcp.Socket.set_nagle_enabled sock_server enabled;
    Tcp.Socket.kick sock_client;
    Tcp.Socket.kick sock_server;
    incr total_ticks;
    if enabled then incr on_ticks;
    ignore (Sim.Engine.schedule engine ~after:tick control)
  in
  ignore (Sim.Engine.schedule engine ~after:tick control);
  (* Run the ramp, reporting per stage. *)
  pf "%8s | %9s | %10s | %14s\n" "load" "mean-lat" "%time-on" "dominant mode";
  pf "%s\n" (String.make 52 '-');
  List.iter
    (fun rate ->
      current_rate := rate;
      on_ticks := 0;
      total_ticks := 0;
      stage_summary := Sim.Stats.Summary.create ();
      let stop = Sim.Time.add (Sim.Engine.now engine) stage_len in
      Sim.Engine.run_until engine stop;
      let frac = float_of_int !on_ticks /. float_of_int (max 1 !total_ticks) in
      pf "%6.0fk | %7.1fus | %9.0f%% | %14s\n" (rate /. 1e3)
        (Sim.Stats.Summary.mean !stage_summary)
        (100.0 *. frac)
        (if frac > 0.5 then "batching ON" else "batching OFF"))
    stages;
  pf "\nNagle toggles over the whole ramp: %d\n"
    (Tcp.Nagle.toggles (Tcp.Socket.nagle sock_client))
