bin/tune.mli:
