bin/tune.ml: List Loadgen Printf Sim String Sys
