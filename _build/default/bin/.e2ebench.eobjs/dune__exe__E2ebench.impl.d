bin/e2ebench.ml: Arg Cmd Cmdliner E2e List Loadgen Printf Result Sim String Term
