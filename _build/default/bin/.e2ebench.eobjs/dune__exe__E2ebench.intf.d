bin/e2ebench.mli:
