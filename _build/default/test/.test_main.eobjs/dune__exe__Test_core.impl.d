test/test_core.ml: Alcotest E2e Float Gen List QCheck QCheck_alcotest Sim
