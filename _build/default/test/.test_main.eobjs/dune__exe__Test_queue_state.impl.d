test/test_queue_state.ml: Alcotest E2e Float Gen List QCheck QCheck_alcotest Sim
