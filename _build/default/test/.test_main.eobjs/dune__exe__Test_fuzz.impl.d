test/test_fuzz.ml: Alcotest Buffer Char E2e Gen Hashtbl Kv List Option Printf QCheck QCheck_alcotest Sim String Tcp
