test/test_integration.ml: Alcotest Char Float Kv List Loadgen Sim String Tcp
