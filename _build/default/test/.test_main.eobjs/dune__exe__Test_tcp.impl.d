test/test_tcp.ml: Alcotest Buffer E2e Gen List Option QCheck QCheck_alcotest Sim String Tcp
