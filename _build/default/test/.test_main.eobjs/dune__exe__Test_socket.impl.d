test/test_socket.ml: Alcotest Buffer Char E2e Float List Queue Sim String Tcp
