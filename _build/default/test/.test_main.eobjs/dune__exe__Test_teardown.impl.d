test/test_teardown.ml: Alcotest Buffer Sim String Tcp
