test/test_trace.ml: Alcotest Filename Fun Kv List Loadgen Sim String Sys
