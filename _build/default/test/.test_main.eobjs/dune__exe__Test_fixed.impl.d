test/test_fixed.ml: Alcotest E2e Float Gen List QCheck QCheck_alcotest Sim
