test/test_offline.ml: Alcotest E2e Float List Loadgen Option Sim String Tcp
