test/test_loadgen.ml: Alcotest Float Kv List Loadgen Sim String
