test/test_rpc.ml: Alcotest Bytes E2e Float Int64 List QCheck QCheck_alcotest Rpc Sim String Tcp
