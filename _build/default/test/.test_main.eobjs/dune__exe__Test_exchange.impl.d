test/test_exchange.ml: Alcotest E2e Result Sim String
