test/test_reliability.ml: Alcotest Buffer Char E2e List Loadgen QCheck QCheck_alcotest Sim String Tcp
