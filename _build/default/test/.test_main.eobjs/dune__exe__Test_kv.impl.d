test/test_kv.ml: Alcotest Kv List QCheck QCheck_alcotest Result Sim String
