(* Tests for the reliability machinery: loss injection, RTO and fast
   retransmit, out-of-order reassembly, and Reno congestion control. *)

let us = Sim.Time.us

let testbed ?(cc = false) ?(loss_ab = 0.0) ?(loss_ba = 0.0) ?(seed = 1)
    ?(prop = us 5) () =
  let engine = Sim.Engine.create () in
  let host =
    {
      Tcp.Conn.socket = { Tcp.Socket.default_config with nagle = false; cc_enabled = cc };
      tx_cost = 0;
      rx_seg_cost = 0;
      rx_batch_cost = 0;
      gro = { (Tcp.Gro.default_config ~mss:1448) with enabled = false };
    }
  in
  let link = { Tcp.Conn.prop_delay = prop; gbit_per_s = 100.0 } in
  let conn = Tcp.Conn.create engine ~a:host ~b:host ~link_ab:link ~link_ba:link () in
  let rng = Sim.Rng.create ~seed in
  if loss_ab > 0.0 then Tcp.Link.set_loss (Tcp.Conn.link_ab conn) ~rng ~prob:loss_ab;
  if loss_ba > 0.0 then Tcp.Link.set_loss (Tcp.Conn.link_ba conn) ~rng ~prob:loss_ba;
  (engine, conn)

let drain sock = Tcp.Socket.recv sock (Tcp.Socket.recv_available sock)

let collect_into buf sock () = Buffer.add_string buf (drain sock)

let test_link_loss_drops () =
  let engine = Sim.Engine.create () in
  let link = Tcp.Link.create engine ~prop_delay:0 ~gbit_per_s:1.0 in
  Tcp.Link.set_loss link ~rng:(Sim.Rng.create ~seed:3) ~prob:0.5;
  let arrived = ref 0 in
  for _ = 1 to 1000 do
    Tcp.Link.send link ~wire_bytes:100 (fun () -> incr arrived)
  done;
  Sim.Engine.run engine;
  Alcotest.(check int) "conservation" 1000 (!arrived + Tcp.Link.dropped link);
  Alcotest.(check bool) "roughly half dropped" true
    (Tcp.Link.dropped link > 400 && Tcp.Link.dropped link < 600)

let test_loss_recovered_by_retransmission () =
  let engine, conn = testbed ~loss_ab:0.05 ~loss_ba:0.05 () in
  let a = Tcp.Conn.sock_a conn and b = Tcp.Conn.sock_b conn in
  let received = Buffer.create 65536 in
  Tcp.Socket.on_readable b (collect_into received b);
  let data = String.init 200_000 (fun i -> Char.chr (i mod 256)) in
  Tcp.Socket.send a data;
  Sim.Engine.run engine;
  Alcotest.(check bool) "stream complete and intact" true
    (String.equal data (Buffer.contents received));
  let c = Tcp.Socket.counters a in
  Alcotest.(check bool) "retransmissions happened" true (c.retransmits > 0);
  Alcotest.(check int) "nothing left in flight" 0 (Tcp.Socket.unacked_bytes a)

let test_request_response_under_loss () =
  let engine, conn = testbed ~loss_ab:0.03 ~loss_ba:0.03 ~seed:9 () in
  let a = Tcp.Conn.sock_a conn and b = Tcp.Conn.sock_b conn in
  (* echo server *)
  Tcp.Socket.on_readable b (fun () ->
      let d = drain b in
      if String.length d > 0 then Tcp.Socket.send b d);
  let echoed = Buffer.create 4096 in
  Tcp.Socket.on_readable a (collect_into echoed a);
  let sent = Buffer.create 4096 in
  for i = 0 to 99 do
    ignore
      (Sim.Engine.schedule_at engine ~at:(us (i * 200)) (fun () ->
           let chunk = String.make (100 + (i mod 900)) (Char.chr (65 + (i mod 26))) in
           Buffer.add_string sent chunk;
           Tcp.Socket.send a chunk))
  done;
  Sim.Engine.run engine;
  Alcotest.(check int) "every byte echoed back" (Buffer.length sent)
    (Buffer.length echoed)

let test_rto_fires_on_total_blackout () =
  (* Drop everything A sends: the RTO must fire repeatedly with
     exponential backoff, and nothing must be delivered. *)
  let engine, conn = testbed ~loss_ab:0.99 ~seed:5 () in
  let a = Tcp.Conn.sock_a conn and b = Tcp.Conn.sock_b conn in
  Tcp.Socket.on_readable b (fun () -> ignore (drain b));
  Tcp.Socket.send a "doomed";
  Sim.Engine.run_until engine (Sim.Time.sec 3);
  let c = Tcp.Socket.counters a in
  Alcotest.(check bool) "RTO fired" true (c.rto_fires >= 2);
  Alcotest.(check bool) "still unacked" true (Tcp.Socket.unacked_bytes a > 0);
  (* backoff: with a ~200ms floor, 3 seconds admits at most ~4 fires *)
  Alcotest.(check bool) "exponential backoff bounds fires" true (c.rto_fires <= 5)

let test_fast_retransmit_via_dup_acks () =
  (* Lose exactly one mid-stream segment: the receiver's duplicate acks
     must trigger fast retransmit well before the RTO. *)
  let engine, conn = testbed () in
  let a = Tcp.Conn.sock_a conn and b = Tcp.Conn.sock_b conn in
  let received = Buffer.create 65536 in
  let completed_at = ref None in
  Tcp.Socket.on_readable b (fun () ->
      Buffer.add_string received (drain b);
      if Buffer.length received = 20_000 && !completed_at = None then
        completed_at := Some (Sim.Engine.now engine));
  (* arrange a one-shot loss of the 3rd data segment *)
  let intercepted = ref 0 in
  let inner = Tcp.Conn.link_ab conn in
  Tcp.Socket.set_transmit a (fun seg ->
      incr intercepted;
      if !intercepted = 3 && Tcp.Segment.len seg > 0 then () (* drop *)
      else
        Tcp.Link.send inner ~wire_bytes:(Tcp.Segment.wire_bytes seg) (fun () ->
            Tcp.Socket.receive_segment b seg));
  let data = String.init 20_000 (fun i -> Char.chr (i mod 256)) in
  Tcp.Socket.send a data;
  Sim.Engine.run_until engine (Sim.Time.ms 100);
  Alcotest.(check bool) "stream recovered" true
    (String.equal data (Buffer.contents received));
  let c = Tcp.Socket.counters a in
  Alcotest.(check int) "one fast retransmit" 1 c.fast_retransmits;
  Alcotest.(check int) "no RTO needed" 0 c.rto_fires;
  (* fast retransmit is much faster than the 200ms RTO floor *)
  match !completed_at with
  | Some at -> Alcotest.(check bool) "recovered quickly" true (at < Sim.Time.ms 10)
  | None -> Alcotest.fail "stream never completed"

let test_ooo_reassembly_preserves_stream () =
  (* Deliver segments 2 and 3 before segment 1 by hand. *)
  let engine, conn = testbed () in
  let a = Tcp.Conn.sock_a conn and b = Tcp.Conn.sock_b conn in
  let received = Buffer.create 256 in
  Tcp.Socket.on_readable b (collect_into received b);
  let held = ref [] in
  Tcp.Socket.set_transmit a (fun seg -> held := seg :: !held);
  Tcp.Socket.send a (String.make 4000 'x');
  (* three segments captured; deliver in reversed order *)
  let segs = !held in
  Alcotest.(check int) "three segments" 3 (List.length segs);
  List.iter (fun seg -> Tcp.Socket.receive_segment b seg) segs;
  Sim.Engine.run engine;
  Alcotest.(check int) "all bytes delivered despite reversal" 4000
    (Buffer.length received)

let test_duplicate_data_reacked () =
  let engine, conn = testbed () in
  let a = Tcp.Conn.sock_a conn and b = Tcp.Conn.sock_b conn in
  Tcp.Socket.on_readable b (fun () -> ignore (drain b));
  let copy = ref None in
  let inner = Tcp.Conn.link_ab conn in
  Tcp.Socket.set_transmit a (fun seg ->
      if Tcp.Segment.len seg > 0 && !copy = None then copy := Some seg;
      Tcp.Link.send inner ~wire_bytes:(Tcp.Segment.wire_bytes seg) (fun () ->
          Tcp.Socket.receive_segment b seg));
  Tcp.Socket.send a "hello";
  Sim.Engine.run engine;
  let acks_before = (Tcp.Socket.counters b).pure_acks_out in
  (* replay the same data segment: must be re-acked, not re-delivered *)
  (match !copy with Some seg -> Tcp.Socket.receive_segment b seg | None -> Alcotest.fail "no copy");
  Sim.Engine.run engine;
  Alcotest.(check int) "duplicate produced an ack" (acks_before + 1)
    (Tcp.Socket.counters b).pure_acks_out;
  Alcotest.(check int) "no duplicate delivery" 0 (Tcp.Socket.recv_available b)

let test_cwnd_slow_start_growth () =
  let engine, conn = testbed ~cc:true () in
  let a = Tcp.Conn.sock_a conn and b = Tcp.Conn.sock_b conn in
  Tcp.Socket.on_readable b (fun () -> ignore (drain b));
  let initial = Tcp.Socket.cwnd a in
  Alcotest.(check int) "IW10" (10 * 1448) initial;
  Tcp.Socket.send a (String.make 200_000 'w');
  Sim.Engine.run engine;
  Alcotest.(check bool) "cwnd grew in slow start" true (Tcp.Socket.cwnd a > 2 * initial)

let test_cwnd_limits_initial_burst () =
  (* With cc on, only ~10 MSS may be in flight before the first ack. *)
  let _engine, conn = testbed ~cc:true () in
  let a = Tcp.Conn.sock_a conn in
  Tcp.Socket.send a (String.make 100_000 'b');
  Alcotest.(check bool) "in-flight capped by IW" true
    (Tcp.Socket.unacked_bytes a <= 10 * 1448)

let test_cwnd_collapses_on_rto () =
  let engine, conn = testbed ~cc:true ~loss_ab:0.99 ~seed:4 () in
  let a = Tcp.Conn.sock_a conn in
  Tcp.Socket.send a (String.make 50_000 'c');
  Sim.Engine.run_until engine (Sim.Time.sec 1);
  Alcotest.(check bool) "cwnd collapsed toward 1 MSS" true (Tcp.Socket.cwnd a <= 2 * 1448);
  Alcotest.(check bool) "ssthresh lowered" true (Tcp.Socket.ssthresh a < max_int)

let prop_stream_integrity_under_loss =
  QCheck.Test.make ~name:"byte stream survives random loss (cc on)" ~count:15
    QCheck.(pair (int_range 1 10_000) (int_range 1 30))
    (fun (seed, nwrites) ->
      let engine, conn = testbed ~cc:true ~loss_ab:0.04 ~loss_ba:0.04 ~seed () in
      let a = Tcp.Conn.sock_a conn and b = Tcp.Conn.sock_b conn in
      let received = Buffer.create 65536 in
      Tcp.Socket.on_readable b (collect_into received b);
      let sent = Buffer.create 65536 in
      for i = 1 to nwrites do
        let chunk = String.make (1 + (i * 997 mod 5000)) (Char.chr (97 + (i mod 26))) in
        Buffer.add_string sent chunk;
        ignore
          (Sim.Engine.schedule_at engine ~at:(us (i * 100)) (fun () ->
               Tcp.Socket.send a chunk))
      done;
      Sim.Engine.run engine;
      String.equal (Buffer.contents sent) (Buffer.contents received))

let test_estimator_consistent_under_loss () =
  (* Queue accounting must stay conserved through retransmissions. *)
  let engine, conn = testbed ~loss_ab:0.05 ~loss_ba:0.05 ~seed:11 () in
  let a = Tcp.Conn.sock_a conn and b = Tcp.Conn.sock_b conn in
  Tcp.Socket.on_readable b (fun () -> ignore (drain b));
  for i = 0 to 99 do
    ignore
      (Sim.Engine.schedule_at engine ~at:(us (i * 500)) (fun () ->
           Tcp.Socket.send a (String.make 2000 'e')))
  done;
  Sim.Engine.run engine;
  let ea = Tcp.Socket.estimator a and eb = Tcp.Socket.estimator b in
  Alcotest.(check int) "unacked drained" 0 (E2e.Estimator.unacked_size ea);
  Alcotest.(check int) "unread drained" 0 (E2e.Estimator.unread_size eb);
  Alcotest.(check int) "ackdelay drained" 0 (E2e.Estimator.ackdelay_size eb)

let test_runner_with_loss_and_cc () =
  (* Rare loss: mid-stream drops recover via fast retransmit; a tail or
     response drop stalls the whole stream on the 200ms RTO floor
     (TCP head-of-line blocking), so even a tiny loss rate costs a
     visible fraction of an open-loop window. *)
  let base = Loadgen.Runner.default_config ~rate_rps:20e3 ~batching:Loadgen.Runner.Static_off in
  let base =
    {
      base with
      warmup = Sim.Time.ms 20;
      duration = Sim.Time.ms 400;
      cc = true;
      loss_prob = 1e-4;
    }
  in
  let r = Loadgen.Runner.run base in
  Alcotest.(check bool) "most requests complete" true (r.completed > 2_000);
  Alcotest.(check bool) "latency finite" true (r.measured_mean_us < 1e6)

let suite =
  [
    ( "tcp.reliability",
      [
        Alcotest.test_case "link loss accounting" `Quick test_link_loss_drops;
        Alcotest.test_case "bulk transfer recovers from loss" `Quick
          test_loss_recovered_by_retransmission;
        Alcotest.test_case "request/response under loss" `Quick
          test_request_response_under_loss;
        Alcotest.test_case "RTO with backoff on blackout" `Quick
          test_rto_fires_on_total_blackout;
        Alcotest.test_case "fast retransmit on 3 dup acks" `Quick
          test_fast_retransmit_via_dup_acks;
        Alcotest.test_case "out-of-order reassembly" `Quick
          test_ooo_reassembly_preserves_stream;
        Alcotest.test_case "duplicate data re-acked" `Quick test_duplicate_data_reacked;
        QCheck_alcotest.to_alcotest prop_stream_integrity_under_loss;
        Alcotest.test_case "estimator conserved under loss" `Quick
          test_estimator_consistent_under_loss;
      ] );
    ( "tcp.congestion",
      [
        Alcotest.test_case "slow-start growth" `Quick test_cwnd_slow_start_growth;
        Alcotest.test_case "initial window caps burst" `Quick test_cwnd_limits_initial_burst;
        Alcotest.test_case "collapse on RTO" `Quick test_cwnd_collapses_on_rto;
        Alcotest.test_case "runner with loss + cc" `Slow test_runner_with_loss_and_cc;
      ] );
  ]
