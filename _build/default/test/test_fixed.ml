(* Tests for the kernel-style integer implementations: the fixed-point
   queue state (microsecond counters, as the prototype's ethtool export)
   and the shift-based EWMA. *)

let us = Sim.Time.us

(* {1 Queue_state_fixed} *)

let test_fixed_matches_reference_simple () =
  let f = E2e.Queue_state_fixed.create ~at:0 in
  E2e.Queue_state_fixed.track f ~at:0 1;
  E2e.Queue_state_fixed.track f ~at:(us 10) 3;
  (* 1 item for 10us + 4 items for 20us = 90 item-us *)
  Alcotest.(check int) "integral at 10us" 10 (E2e.Queue_state_fixed.integral_item_us f);
  let share = E2e.Queue_state_fixed.snapshot f ~at:(us 30) in
  Alcotest.(check (float 1.0)) "integral widened to ns" 90e3 share.integral;
  let prev : E2e.Queue_state.share = { time = 0; total = 0; integral = 0.0 } in
  match E2e.Queue_state.get_avgs ~prev ~cur:share with
  | Some avgs -> Alcotest.(check (float 1e-6)) "Q = 3 via Algorithm 2" 3.0 avgs.q_avg
  | None -> Alcotest.fail "no window"

let test_fixed_validation () =
  let f = E2e.Queue_state_fixed.create ~at:(us 10) in
  Alcotest.check_raises "backwards"
    (Invalid_argument "Queue_state_fixed.track: time went backwards") (fun () ->
      E2e.Queue_state_fixed.track f ~at:(us 5) 1);
  Alcotest.check_raises "negative"
    (Invalid_argument "Queue_state_fixed.track: size would become negative") (fun () ->
      E2e.Queue_state_fixed.track f ~at:(us 20) (-1))

let test_fixed_wire_footprint () =
  Alcotest.(check int) "12 bytes per queue" 12 E2e.Queue_state_fixed.wire_triple_bytes;
  Alcotest.(check int) "three queues = the 36-byte exchange"
    E2e.Exchange.wire_size
    (3 * E2e.Queue_state_fixed.wire_triple_bytes)

(* Property: on microsecond-aligned schedules the integer and float
   implementations agree exactly; on arbitrary nanosecond schedules
   they agree within one item-µs per transition. *)
let prop_fixed_equivalent_to_float =
  QCheck.Test.make ~name:"fixed-point queue state tracks the float reference" ~count:200
    QCheck.(
      pair bool (list_of_size Gen.(1 -- 50) (pair (int_range 0 10_000) (int_range (-2) 4))))
    (fun (aligned, steps) ->
      let f = E2e.Queue_state_fixed.create ~at:0 in
      let r = E2e.Queue_state.create ~at:0 in
      let clock = ref 0 in
      let transitions = ref 0 in
      List.iter
        (fun (gap_raw, n) ->
          let gap = if aligned then gap_raw * 1_000 else gap_raw in
          clock := !clock + gap;
          let n =
            if E2e.Queue_state.size r + n < 0 then 0 else n
          in
          E2e.Queue_state_fixed.track f ~at:!clock n;
          E2e.Queue_state.track r ~at:!clock n;
          incr transitions)
        steps;
      let end_at = !clock + 1_000 in
      let sf = E2e.Queue_state_fixed.snapshot f ~at:end_at in
      let sr = E2e.Queue_state.snapshot r ~at:end_at in
      let tolerance_ns =
        if aligned then 1.0 (* float rounding only *)
        else float_of_int (!transitions + 1) *. 8_000.0
        (* each transition may quantize by <1us times the queue size (<=8 here) *)
      in
      E2e.Queue_state_fixed.total f = E2e.Queue_state.total r
      && E2e.Queue_state_fixed.size f = E2e.Queue_state.size r
      && Float.abs (sf.integral -. sr.integral) <= tolerance_ns)

(* {1 Ewma.Fixed} *)

let test_ewma_fixed_shift1 () =
  let e = E2e.Ewma.Fixed.create ~shift:1 in
  Alcotest.(check (option int)) "empty" None (E2e.Ewma.Fixed.value e);
  Alcotest.(check int) "first sample" 100 (E2e.Ewma.Fixed.update e 100);
  (* avg += (0 - 100) >> 1 = -50 *)
  Alcotest.(check int) "half step down" 50 (E2e.Ewma.Fixed.update e 0);
  Alcotest.(check (float 1e-9)) "alpha" 0.5 (E2e.Ewma.Fixed.alpha e)

let test_ewma_fixed_converges () =
  let e = E2e.Ewma.Fixed.create ~shift:3 in
  ignore (E2e.Ewma.Fixed.update e 0);
  for _ = 1 to 200 do
    ignore (E2e.Ewma.Fixed.update e 1_000)
  done;
  match E2e.Ewma.Fixed.value e with
  | Some v ->
    (* integer truncation leaves a small residual below the target *)
    if v < 990 || v > 1_000 then Alcotest.failf "did not converge: %d" v
  | None -> Alcotest.fail "no value"

let test_ewma_fixed_negative_samples () =
  let e = E2e.Ewma.Fixed.create ~shift:2 in
  ignore (E2e.Ewma.Fixed.update e (-100));
  let v = E2e.Ewma.Fixed.update e (-500) in
  Alcotest.(check int) "arithmetic shift handles negatives" (-200) v

let test_ewma_fixed_validation () =
  Alcotest.check_raises "shift 0"
    (Invalid_argument "Ewma.Fixed.create: shift must be in [1,16]") (fun () ->
      ignore (E2e.Ewma.Fixed.create ~shift:0))

let prop_ewma_fixed_tracks_float =
  QCheck.Test.make ~name:"fixed EWMA tracks float EWMA with matching alpha" ~count:200
    QCheck.(list_of_size Gen.(1 -- 80) (int_range 0 1_000_000))
    (fun xs ->
      let shift = 3 in
      let fixed = E2e.Ewma.Fixed.create ~shift in
      let float_e = E2e.Ewma.create ~alpha:(1.0 /. 8.0) in
      List.for_all
        (fun x ->
          let a = E2e.Ewma.Fixed.update fixed x in
          let b = E2e.Ewma.update float_e (float_of_int x) in
          (* truncation drift stays bounded: one unit per step times the
             geometric series = 2^shift *)
          Float.abs (float_of_int a -. b) <= 16.0)
        xs)

let suite =
  [
    ( "core.fixed_point",
      [
        Alcotest.test_case "paper example in integers" `Quick
          test_fixed_matches_reference_simple;
        Alcotest.test_case "validation" `Quick test_fixed_validation;
        Alcotest.test_case "wire footprint" `Quick test_fixed_wire_footprint;
        QCheck_alcotest.to_alcotest prop_fixed_equivalent_to_float;
        Alcotest.test_case "fixed EWMA shift=1" `Quick test_ewma_fixed_shift1;
        Alcotest.test_case "fixed EWMA converges" `Quick test_ewma_fixed_converges;
        Alcotest.test_case "fixed EWMA negatives" `Quick test_ewma_fixed_negative_samples;
        Alcotest.test_case "fixed EWMA validation" `Quick test_ewma_fixed_validation;
        QCheck_alcotest.to_alcotest prop_ewma_fixed_tracks_float;
      ] );
  ]
