(* Tests for the RPC framework: wire framing, service dispatch, and the
   framework-integrated hint estimation of §3.3. *)

(* {1 Frame} *)

let check_roundtrip f =
  match Rpc.Frame.decode_exactly (Rpc.Frame.encode f) with
  | Ok f' -> Alcotest.(check bool) "frame roundtrip" true (Rpc.Frame.equal f f')
  | Error e -> Alcotest.fail e

let test_frame_roundtrips () =
  check_roundtrip (Rpc.Frame.Request { id = 1L; meth = "echo"; payload = "hello" });
  check_roundtrip (Rpc.Frame.Request { id = Int64.max_int; meth = ""; payload = "" });
  check_roundtrip (Rpc.Frame.Response { id = 42L; payload = String.make 10_000 'x' });
  check_roundtrip (Rpc.Frame.Error_response { id = 7L; message = "boom" })

let test_frame_encoded_length () =
  List.iter
    (fun f ->
      Alcotest.(check int) "encoded_length agrees"
        (String.length (Rpc.Frame.encode f))
        (Rpc.Frame.encoded_length f))
    [
      Rpc.Frame.Request { id = 3L; meth = "compute.hash"; payload = "abc" };
      Rpc.Frame.Response { id = 3L; payload = "" };
      Rpc.Frame.Error_response { id = 3L; message = "m" };
    ]

let test_frame_incremental () =
  let f = Rpc.Frame.Request { id = 9L; meth = "m"; payload = "payload" } in
  let wire = Rpc.Frame.encode f in
  let d = Rpc.Frame.Decoder.create () in
  String.iteri
    (fun i c ->
      Rpc.Frame.Decoder.feed d (String.make 1 c);
      match Rpc.Frame.Decoder.next d with
      | Ok None when i < String.length wire - 1 -> ()
      | Ok (Some f') when i = String.length wire - 1 ->
        Alcotest.(check bool) "complete at last byte" true (Rpc.Frame.equal f f')
      | Ok _ -> Alcotest.fail "wrong completion point"
      | Error e -> Alcotest.fail e)
    wire

let test_frame_pipelined () =
  let frames =
    [
      Rpc.Frame.Request { id = 1L; meth = "a"; payload = "1" };
      Rpc.Frame.Response { id = 1L; payload = "2" };
      Rpc.Frame.Error_response { id = 2L; message = "3" };
    ]
  in
  let d = Rpc.Frame.Decoder.create () in
  Rpc.Frame.Decoder.feed d (String.concat "" (List.map Rpc.Frame.encode frames));
  List.iter
    (fun expected ->
      match Rpc.Frame.Decoder.next d with
      | Ok (Some f) -> Alcotest.(check bool) "in order" true (Rpc.Frame.equal expected f)
      | _ -> Alcotest.fail "missing frame")
    frames;
  Alcotest.(check int) "drained" 0 (Rpc.Frame.Decoder.buffered d)

let test_frame_bad_kind () =
  (* corrupt the kind byte *)
  let wire = Bytes.of_string (Rpc.Frame.encode (Rpc.Frame.Response { id = 1L; payload = "" })) in
  Bytes.set wire 4 '\255';
  match Rpc.Frame.decode_exactly (Bytes.to_string wire) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad kind"

let test_frame_oversized_method () =
  Alcotest.check_raises "oversized method"
    (Invalid_argument "Frame.encode: method name exceeds 65535 bytes") (fun () ->
      ignore
        (Rpc.Frame.encode
           (Rpc.Frame.Request { id = 1L; meth = String.make 70_000 'm'; payload = "" })))

let prop_frame_roundtrip =
  let gen =
    QCheck.Gen.(
      oneof
        [
          map3
            (fun id meth payload -> Rpc.Frame.Request { id = Int64.of_int id; meth; payload })
            nat
            (string_size (0 -- 30))
            (string_size (0 -- 200));
          map2
            (fun id payload -> Rpc.Frame.Response { id = Int64.of_int id; payload })
            nat
            (string_size (0 -- 200));
          map2
            (fun id message -> Rpc.Frame.Error_response { id = Int64.of_int id; message })
            nat
            (string_size (0 -- 50));
        ])
  in
  QCheck.Test.make ~name:"frame roundtrip (arbitrary)" ~count:300 (QCheck.make gen)
    (fun f ->
      match Rpc.Frame.decode_exactly (Rpc.Frame.encode f) with
      | Ok f' -> Rpc.Frame.equal f f'
      | Error _ -> false)

(* {1 Service + Client over the simulated stack} *)

let fixture () =
  let engine = Sim.Engine.create () in
  let host =
    {
      Tcp.Conn.socket = { Tcp.Socket.default_config with nagle = false };
      tx_cost = 0;
      rx_seg_cost = 0;
      rx_batch_cost = 0;
      gro = { (Tcp.Gro.default_config ~mss:1448) with enabled = false };
    }
  in
  let conn = Tcp.Conn.create engine ~a:host ~b:host () in
  let service =
    Rpc.Service.create engine
      ~cpu:(Sim.Cpu.create engine)
      ~socket:(Tcp.Conn.sock_b conn) Rpc.Service.default_config
  in
  let client =
    Rpc.Client.create engine
      ~cpu:(Sim.Cpu.create engine)
      ~socket:(Tcp.Conn.sock_a conn) Rpc.Client.default_config
  in
  (engine, service, client)

let test_rpc_echo () =
  let engine, service, client = fixture () in
  Rpc.Service.register service "echo" (fun payload -> Ok payload);
  let got = ref None in
  Rpc.Client.call client ~meth:"echo" ~payload:"ping-pong"
    ~on_reply:(fun ~latency:_ reply -> got := Some reply);
  Sim.Engine.run engine;
  Alcotest.(check bool) "echoed" true (!got = Some (Ok "ping-pong"));
  Alcotest.(check int) "served" 1 (Rpc.Service.calls_served service)

let test_rpc_unknown_method () =
  let engine, _service, client = fixture () in
  let got = ref None in
  Rpc.Client.call client ~meth:"nope" ~payload:""
    ~on_reply:(fun ~latency:_ reply -> got := Some reply);
  Sim.Engine.run engine;
  match !got with
  | Some (Error msg) ->
    Alcotest.(check bool) "mentions method" true
      (String.length msg > 0 && String.sub msg 0 7 = "unknown")
  | _ -> Alcotest.fail "expected an error reply"

let test_rpc_handler_error () =
  let engine, service, client = fixture () in
  Rpc.Service.register service "fail" (fun _ -> Error "handler says no");
  let got = ref None in
  Rpc.Client.call client ~meth:"fail" ~payload:""
    ~on_reply:(fun ~latency:_ reply -> got := Some reply);
  Sim.Engine.run engine;
  Alcotest.(check bool) "propagated" true (!got = Some (Error "handler says no"));
  Alcotest.(check int) "error counted" 1 (Rpc.Service.errors_returned service)

let test_rpc_many_calls_in_order () =
  let engine, service, client = fixture () in
  Rpc.Service.register service "double" (fun p ->
      match int_of_string_opt p with
      | Some n -> Ok (string_of_int (2 * n))
      | None -> Error "not a number");
  let replies = ref [] in
  for i = 1 to 100 do
    Rpc.Client.call client ~meth:"double" ~payload:(string_of_int i)
      ~on_reply:(fun ~latency:_ reply ->
        match reply with
        | Ok v -> replies := int_of_string v :: !replies
        | Error e -> Alcotest.fail e)
  done;
  Sim.Engine.run engine;
  Alcotest.(check (list int)) "all doubled in order"
    (List.init 100 (fun i -> 2 * (i + 1)))
    (List.rev !replies);
  Alcotest.(check int) "outstanding drained" 0 (Rpc.Client.outstanding client)

let test_rpc_mixed_methods_and_costs () =
  let engine, service, client = fixture () in
  Rpc.Service.register service ~cost:(Sim.Time.us 1) "fast" (fun _ -> Ok "f");
  Rpc.Service.register service ~cost:(Sim.Time.us 200) "slow" (fun _ -> Ok "s");
  let fast_lat = ref 0 and slow_lat = ref 0 in
  Rpc.Client.call client ~meth:"slow" ~payload:""
    ~on_reply:(fun ~latency _ -> slow_lat := latency);
  Rpc.Client.call client ~meth:"fast" ~payload:""
    ~on_reply:(fun ~latency _ -> fast_lat := latency);
  Sim.Engine.run engine;
  Alcotest.(check bool) "slow call costs more" true (!slow_lat > Sim.Time.us 200);
  Alcotest.(check (list string)) "methods listed" [ "fast"; "slow" ]
    (Rpc.Service.methods service)

let test_rpc_hints_measure_end_to_end () =
  (* The framework's automatic hints must reproduce the measured mean
     latency without the application doing anything. *)
  let engine, service, client = fixture () in
  Rpc.Service.register service "work" (fun p -> Ok p);
  let prev = Rpc.Client.hint_share client ~at:(Sim.Engine.now engine) in
  let sum = ref 0 and n = ref 0 in
  for i = 0 to 199 do
    ignore
      (Sim.Engine.schedule_at engine ~at:(Sim.Time.us (i * 50)) (fun () ->
           Rpc.Client.call client ~meth:"work" ~payload:(String.make 500 'w')
             ~on_reply:(fun ~latency _ ->
               sum := !sum + latency;
               incr n)))
  done;
  Sim.Engine.run engine;
  let measured = float_of_int !sum /. float_of_int !n in
  match Rpc.Client.perceived client ~prev ~at:(Sim.Engine.now engine) with
  | Some { latency_ns = Some est; _ } ->
    let err = Float.abs (est -. measured) /. measured in
    if err > 0.02 then
      Alcotest.failf "hint estimate %.0f vs measured %.0f (%.1f%%)" est measured
        (err *. 100.0)
  | _ -> Alcotest.fail "no hint estimate"

let test_rpc_server_sees_client_hints () =
  (* §3.3: the server needs no monitoring of its own — the client's
     stack shares the hint queue state in-band. *)
  let engine = Sim.Engine.create () in
  let host =
    {
      Tcp.Conn.socket = Tcp.Socket.default_config;
      tx_cost = 0;
      rx_seg_cost = 0;
      rx_batch_cost = 0;
      gro = { (Tcp.Gro.default_config ~mss:1448) with enabled = false };
    }
  in
  let conn = Tcp.Conn.create engine ~a:host ~b:host () in
  let service =
    Rpc.Service.create engine
      ~cpu:(Sim.Cpu.create engine)
      ~socket:(Tcp.Conn.sock_b conn) Rpc.Service.default_config
  in
  Rpc.Service.register service "noop" (fun _ -> Ok "");
  let client =
    Rpc.Client.create engine
      ~cpu:(Sim.Cpu.create engine)
      ~socket:(Tcp.Conn.sock_a conn) Rpc.Client.default_config
  in
  for i = 0 to 49 do
    ignore
      (Sim.Engine.schedule_at engine ~at:(Sim.Time.us (i * 100)) (fun () ->
           Rpc.Client.call client ~meth:"noop" ~payload:"x" ~on_reply:(fun ~latency:_ _ -> ())))
  done;
  Sim.Engine.run engine;
  match Tcp.Socket.remote_hint_window (Tcp.Conn.sock_b conn) with
  | Some (prev, cur) -> (
    match E2e.Hints.avgs ~prev ~cur with
    | Some { latency_ns = Some l; _ } ->
      Alcotest.(check bool) "plausible client-perceived latency at server" true
        (l > 0.0 && l < 1e7)
    | _ -> Alcotest.fail "server could not derive latency")
  | None -> Alcotest.fail "no hint shares reached the server"

let suite =
  [
    ( "rpc.frame",
      [
        Alcotest.test_case "roundtrips" `Quick test_frame_roundtrips;
        Alcotest.test_case "encoded_length" `Quick test_frame_encoded_length;
        Alcotest.test_case "incremental decoding" `Quick test_frame_incremental;
        Alcotest.test_case "pipelined frames" `Quick test_frame_pipelined;
        Alcotest.test_case "bad kind rejected" `Quick test_frame_bad_kind;
        Alcotest.test_case "oversized method rejected" `Quick test_frame_oversized_method;
        QCheck_alcotest.to_alcotest prop_frame_roundtrip;
      ] );
    ( "rpc.service",
      [
        Alcotest.test_case "echo roundtrip" `Quick test_rpc_echo;
        Alcotest.test_case "unknown method" `Quick test_rpc_unknown_method;
        Alcotest.test_case "handler error" `Quick test_rpc_handler_error;
        Alcotest.test_case "100 calls in order" `Quick test_rpc_many_calls_in_order;
        Alcotest.test_case "per-method costs" `Quick test_rpc_mixed_methods_and_costs;
      ] );
    ( "rpc.hints",
      [
        Alcotest.test_case "framework hints match measured" `Quick
          test_rpc_hints_measure_end_to_end;
        Alcotest.test_case "server sees client-perceived latency" `Quick
          test_rpc_server_sees_client_hints;
      ] );
  ]
