(* Tests for TCP building blocks: sequence arithmetic, byte buffers,
   unit translation, options codec, Nagle, delayed acks, links, GRO,
   and the pacer. *)

let us = Sim.Time.us

(* {1 Seq32} *)

let test_seq32_wrap_add () =
  let near_max = Tcp.Seq32.of_int 0xFFFF_FFFE in
  let wrapped = Tcp.Seq32.add near_max 5 in
  Alcotest.(check int) "wraps" 3 (Tcp.Seq32.to_int wrapped);
  Alcotest.(check int) "distance across wrap" 5 (Tcp.Seq32.sub wrapped near_max)

let test_seq32_serial_compare () =
  let a = Tcp.Seq32.of_int 0xFFFF_FF00 in
  let b = Tcp.Seq32.add a 0x200 in
  Alcotest.(check bool) "a < b across wrap" true (Tcp.Seq32.lt a b);
  Alcotest.(check bool) "b > a" false (Tcp.Seq32.lt b a);
  Alcotest.(check bool) "leq self" true (Tcp.Seq32.leq a a)

let test_seq32_between () =
  let low = Tcp.Seq32.of_int 0xFFFF_FFF0 in
  let high = Tcp.Seq32.add low 0x20 in
  let x = Tcp.Seq32.add low 0x10 in
  Alcotest.(check bool) "in window across wrap" true
    (Tcp.Seq32.between x ~low ~high);
  Alcotest.(check bool) "low included" true (Tcp.Seq32.between low ~low ~high);
  Alcotest.(check bool) "high excluded" false (Tcp.Seq32.between high ~low ~high)

let prop_seq32_sub_add =
  QCheck.Test.make ~name:"seq32 add/sub inverse" ~count:300
    QCheck.(pair (int_bound 0xFFFF_FFFF) (int_bound 0xFFFF))
    (fun (base, n) ->
      let a = Tcp.Seq32.of_int base in
      Tcp.Seq32.sub (Tcp.Seq32.add a n) a = n)

(* {1 Bytebuf} *)

let test_bytebuf_fifo () =
  let b = Tcp.Bytebuf.create () in
  Tcp.Bytebuf.append b "hello ";
  Tcp.Bytebuf.append b "world";
  Alcotest.(check int) "length" 11 (Tcp.Bytebuf.length b);
  Alcotest.(check string) "read across chunks" "hello wo" (Tcp.Bytebuf.read b 8);
  Alcotest.(check string) "remainder" "rld" (Tcp.Bytebuf.read_all b);
  Alcotest.(check bool) "empty" true (Tcp.Bytebuf.is_empty b)

let test_bytebuf_peek_drop () =
  let b = Tcp.Bytebuf.create () in
  Tcp.Bytebuf.append b "abcdef";
  Alcotest.(check string) "peek" "abc" (Tcp.Bytebuf.peek b 3);
  Alcotest.(check int) "peek non-consuming" 6 (Tcp.Bytebuf.length b);
  Alcotest.(check int) "drop" 2 (Tcp.Bytebuf.drop b 2);
  Alcotest.(check string) "after drop" "cdef" (Tcp.Bytebuf.read_all b)

let test_bytebuf_conservation () =
  let b = Tcp.Bytebuf.create () in
  Tcp.Bytebuf.append b "xyz";
  ignore (Tcp.Bytebuf.read b 2);
  Alcotest.(check int) "appended" 3 (Tcp.Bytebuf.total_appended b);
  Alcotest.(check int) "consumed" 2 (Tcp.Bytebuf.total_consumed b);
  Alcotest.(check int) "conservation" (Tcp.Bytebuf.total_appended b)
    (Tcp.Bytebuf.total_consumed b + Tcp.Bytebuf.length b)

let prop_bytebuf_roundtrip =
  QCheck.Test.make ~name:"bytebuf preserves the byte stream" ~count:200
    QCheck.(list (string_of_size Gen.(0 -- 50)))
    (fun chunks ->
      let b = Tcp.Bytebuf.create () in
      List.iter (Tcp.Bytebuf.append b) chunks;
      let expected = String.concat "" chunks in
      let out = Buffer.create 64 in
      while not (Tcp.Bytebuf.is_empty b) do
        Buffer.add_string out (Tcp.Bytebuf.read b 7)
      done;
      String.equal (Buffer.contents out) expected)

(* {1 Unit_fifo} *)

let test_unit_fifo_bytes_identity () =
  let f = Tcp.Unit_fifo.create () in
  Tcp.Unit_fifo.push f ~bytes:100 ~units:100;
  Alcotest.(check int) "drain 30" 30 (Tcp.Unit_fifo.drain f ~bytes:30);
  Alcotest.(check int) "drain 70" 70 (Tcp.Unit_fifo.drain f ~bytes:70)

let test_unit_fifo_syscall_units () =
  let f = Tcp.Unit_fifo.create () in
  (* two send() calls of 100 bytes, one unit each *)
  Tcp.Unit_fifo.push f ~bytes:100 ~units:1;
  Tcp.Unit_fifo.push f ~bytes:100 ~units:1;
  Alcotest.(check int) "partial drain credits nothing" 0
    (Tcp.Unit_fifo.drain f ~bytes:99);
  Alcotest.(check int) "boundary credits one" 1 (Tcp.Unit_fifo.drain f ~bytes:1);
  Alcotest.(check int) "crossing both" 1 (Tcp.Unit_fifo.drain f ~bytes:100)

let test_unit_fifo_spanning_drain () =
  let f = Tcp.Unit_fifo.create () in
  Tcp.Unit_fifo.push f ~bytes:10 ~units:1;
  Tcp.Unit_fifo.push f ~bytes:10 ~units:1;
  Tcp.Unit_fifo.push f ~bytes:10 ~units:1;
  Alcotest.(check int) "drain 25 credits 2" 2 (Tcp.Unit_fifo.drain f ~bytes:25);
  Alcotest.(check int) "pending" 5 (Tcp.Unit_fifo.pending_bytes f);
  Alcotest.(check int) "one unit left" 1 (Tcp.Unit_fifo.pending_units f)

let test_unit_fifo_overdrain_rejected () =
  let f = Tcp.Unit_fifo.create () in
  Tcp.Unit_fifo.push f ~bytes:5 ~units:1;
  Alcotest.check_raises "overdrain"
    (Invalid_argument "Unit_fifo.drain: draining unpushed bytes") (fun () ->
      ignore (Tcp.Unit_fifo.drain f ~bytes:6))

let prop_unit_fifo_conserves_units =
  QCheck.Test.make ~name:"unit fifo conserves units" ~count:200
    QCheck.(list_of_size Gen.(1 -- 30) (pair (int_range 1 50) (int_range 0 5)))
    (fun pushes ->
      let f = Tcp.Unit_fifo.create () in
      let total_bytes = List.fold_left (fun a (b, _) -> a + b) 0 pushes in
      let total_units = List.fold_left (fun a (_, u) -> a + u) 0 pushes in
      List.iter (fun (bytes, units) -> Tcp.Unit_fifo.push f ~bytes ~units) pushes;
      (* drain in chunks of 7 *)
      let credited = ref 0 in
      let left = ref total_bytes in
      while !left > 0 do
        let n = min 7 !left in
        credited := !credited + Tcp.Unit_fifo.drain f ~bytes:n;
        left := !left - n
      done;
      !credited = total_units && Tcp.Unit_fifo.pending_units f = 0)

(* {1 Options codec} *)

let sample_triple : E2e.Exchange.triple =
  let s time total integral : E2e.Queue_state.share = { time; total; integral } in
  { unacked = s (us 10) 1 2e3; unread = s (us 10) 3 4e3; ackdelay = s (us 10) 5 6e3 }

let test_options_roundtrip () =
  let opts = [ Tcp.Options.Mss 1448; Tcp.Options.E2e_state sample_triple ] in
  (* E2E option is 40 bytes alone; encode separately *)
  let enc = Tcp.Options.encode [ List.hd opts ] in
  (match Tcp.Options.decode enc with
  | Ok [ Tcp.Options.Mss 1448 ] -> ()
  | Ok _ -> Alcotest.fail "wrong decode"
  | Error e -> Alcotest.fail e);
  let enc2 = Tcp.Options.encode [ Tcp.Options.E2e_state sample_triple ] in
  Alcotest.(check int) "e2e option exactly fills option space" 40 (String.length enc2);
  match Tcp.Options.decode enc2 with
  | Ok opts2 -> (
    match Tcp.Options.find_e2e opts2 with
    | Some t ->
      Alcotest.(check int) "total survives" 1 t.unacked.total;
      Alcotest.(check int) "unread total survives" 3 t.unread.total
    | None -> Alcotest.fail "e2e option lost")
  | Error e -> Alcotest.fail e

let test_options_padding_alignment () =
  let enc = Tcp.Options.encode [ Tcp.Options.Window_scale 7 ] in
  Alcotest.(check int) "padded to 4" 0 (String.length enc mod 4)

let test_options_timestamp () =
  let enc = Tcp.Options.encode [ Tcp.Options.Timestamp { value = 123456; echo = 654321 } ] in
  match Tcp.Options.decode enc with
  | Ok l -> (
    match List.find_opt (function Tcp.Options.Timestamp _ -> true | _ -> false) l with
    | Some (Tcp.Options.Timestamp { value; echo }) ->
      Alcotest.(check int) "value" 123456 value;
      Alcotest.(check int) "echo" 654321 echo
    | _ -> Alcotest.fail "timestamp lost")
  | Error e -> Alcotest.fail e

let test_options_unknown_preserved () =
  let enc = Tcp.Options.encode [ Tcp.Options.Unknown { kind = 99; data = "ab" } ] in
  match Tcp.Options.decode enc with
  | Ok l -> (
    match List.find_opt (function Tcp.Options.Unknown _ -> true | _ -> false) l with
    | Some (Tcp.Options.Unknown { kind; data }) ->
      Alcotest.(check int) "kind" 99 kind;
      Alcotest.(check string) "data" "ab" data
    | _ -> Alcotest.fail "unknown lost")
  | Error e -> Alcotest.fail e

let test_options_truncated_rejected () =
  match Tcp.Options.decode "\002" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted truncated option"

let test_options_overflow_rejected () =
  Alcotest.check_raises "overflow"
    (Invalid_argument "Options.encode: block exceeds 40-byte TCP option space")
    (fun () ->
      ignore
        (Tcp.Options.encode
           [ Tcp.Options.E2e_state sample_triple; Tcp.Options.Mss 1448 ]))

(* {1 Nagle} *)

let test_nagle_full_segment_always_sends () =
  let n = Tcp.Nagle.create ~enabled:true in
  Alcotest.(check bool) "full MSS" true
    (Tcp.Nagle.should_send n ~mss:1448 ~chunk:1448 ~in_flight:9999)

let test_nagle_holds_small_with_inflight () =
  let n = Tcp.Nagle.create ~enabled:true in
  Alcotest.(check bool) "held" false
    (Tcp.Nagle.should_send n ~mss:1448 ~chunk:100 ~in_flight:1448)

let test_nagle_sends_small_when_idle () =
  let n = Tcp.Nagle.create ~enabled:true in
  Alcotest.(check bool) "idle sends" true
    (Tcp.Nagle.should_send n ~mss:1448 ~chunk:100 ~in_flight:0)

let test_nagle_disabled_always_sends () =
  let n = Tcp.Nagle.create ~enabled:false in
  Alcotest.(check bool) "nodelay" true
    (Tcp.Nagle.should_send n ~mss:1448 ~chunk:1 ~in_flight:9999)

let test_nagle_toggle_counting () =
  let n = Tcp.Nagle.create ~enabled:true in
  Tcp.Nagle.set_enabled n true;
  Alcotest.(check int) "no-op toggle not counted" 0 (Tcp.Nagle.toggles n);
  Tcp.Nagle.set_enabled n false;
  Tcp.Nagle.set_enabled n true;
  Alcotest.(check int) "two real toggles" 2 (Tcp.Nagle.toggles n)

let test_nagle_min_send_threshold () =
  let n = Tcp.Nagle.create ~enabled:true in
  Tcp.Nagle.set_min_send n (Some 512);
  Alcotest.(check bool) "above threshold releases" true
    (Tcp.Nagle.should_send n ~mss:1448 ~chunk:600 ~in_flight:1448);
  Alcotest.(check bool) "below threshold holds" false
    (Tcp.Nagle.should_send n ~mss:1448 ~chunk:400 ~in_flight:1448);
  Tcp.Nagle.set_min_send n None;
  Alcotest.(check bool) "back to RFC896" false
    (Tcp.Nagle.should_send n ~mss:1448 ~chunk:600 ~in_flight:1448)

let test_nagle_zero_chunk () =
  let n = Tcp.Nagle.create ~enabled:false in
  Alcotest.(check bool) "nothing to send" false
    (Tcp.Nagle.should_send n ~mss:1448 ~chunk:0 ~in_flight:0)

(* {1 Delayed_ack} *)

let test_delack_count_trigger () =
  let e = Sim.Engine.create () in
  let acks = ref 0 in
  let d = ref None in
  let da =
    Tcp.Delayed_ack.create e ~timeout:(Sim.Time.ms 40) ~max_pending:2
      ~send_ack:(fun () ->
        incr acks;
        Option.iter Tcp.Delayed_ack.on_ack_sent !d)
      ()
  in
  d := Some da;
  Tcp.Delayed_ack.on_data_segment da;
  Alcotest.(check int) "first segment delays" 0 !acks;
  Alcotest.(check bool) "timer armed" true (Tcp.Delayed_ack.timer_armed da);
  Tcp.Delayed_ack.on_data_segment da;
  Alcotest.(check int) "second forces ack" 1 !acks;
  Alcotest.(check int) "count stat" 1 (Tcp.Delayed_ack.acks_forced_by_count da)

let test_delack_timer_trigger () =
  let e = Sim.Engine.create () in
  let acks = ref [] in
  let d = ref None in
  let da =
    Tcp.Delayed_ack.create e ~timeout:(Sim.Time.ms 40) ~max_pending:2
      ~send_ack:(fun () ->
        acks := Sim.Engine.now e :: !acks;
        Option.iter Tcp.Delayed_ack.on_ack_sent !d)
      ()
  in
  d := Some da;
  Tcp.Delayed_ack.on_data_segment da;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "fired at 40ms" [ Sim.Time.ms 40 ] !acks;
  Alcotest.(check int) "timer stat" 1 (Tcp.Delayed_ack.acks_forced_by_timer da)

let test_delack_piggyback_cancels_timer () =
  let e = Sim.Engine.create () in
  let acks = ref 0 in
  let da =
    Tcp.Delayed_ack.create e ~timeout:(Sim.Time.ms 40) ~max_pending:2
      ~send_ack:(fun () -> incr acks)
      ()
  in
  Tcp.Delayed_ack.on_data_segment da;
  (* data goes out carrying the ack before the timer fires *)
  Tcp.Delayed_ack.on_ack_sent da;
  Sim.Engine.run e;
  Alcotest.(check int) "no pure ack" 0 !acks;
  Alcotest.(check bool) "timer disarmed" false (Tcp.Delayed_ack.timer_armed da)

(* {1 Link} *)

let test_link_serialization_and_prop () =
  let e = Sim.Engine.create () in
  let link = Tcp.Link.create e ~prop_delay:(us 10) ~gbit_per_s:1.0 in
  let arrivals = ref [] in
  (* 1000 bytes at 1 Gbit/s = 8000 ns of serialization. *)
  Tcp.Link.send link ~wire_bytes:1000 (fun () -> arrivals := Sim.Engine.now e :: !arrivals);
  Tcp.Link.send link ~wire_bytes:1000 (fun () -> arrivals := Sim.Engine.now e :: !arrivals);
  Sim.Engine.run e;
  Alcotest.(check (list int)) "FIFO with serialization"
    [ 8_000 + us 10; 16_000 + us 10 ]
    (List.rev !arrivals);
  Alcotest.(check int) "packets" 2 (Tcp.Link.packets link);
  Alcotest.(check int) "bytes" 2000 (Tcp.Link.bytes link);
  Alcotest.(check int) "tx busy" 16_000 (Tcp.Link.tx_busy_ns link)

let test_link_busy () =
  let e = Sim.Engine.create () in
  let link = Tcp.Link.create e ~prop_delay:0 ~gbit_per_s:1.0 in
  Alcotest.(check bool) "idle" false (Tcp.Link.busy link);
  Tcp.Link.send link ~wire_bytes:10_000 ignore;
  Alcotest.(check bool) "busy while serializing" true (Tcp.Link.busy link)

(* {1 Gro} *)

let seg ?(len = 1448) seq : Tcp.Segment.t =
  Tcp.Segment.make ~payload:(String.make len 'x') ~seq ~ack:0 ~window:65536 ()

let make_gro e ?(enabled = true) ?(timeout = us 12) () =
  let batches = ref [] in
  let gro =
    Tcp.Gro.create e
      { enabled; max_bytes = 64 * 1024; flush_timeout = timeout; mss = 1448 }
      ~deliver:(fun b -> batches := List.length b :: !batches)
  in
  (gro, batches)

let test_gro_merges_full_segments () =
  let e = Sim.Engine.create () in
  let gro, batches = make_gro e () in
  for i = 0 to 9 do
    Tcp.Gro.submit gro (seg (i * 1448))
  done;
  Sim.Engine.run e;
  (* nothing flushed until the idle timeout *)
  Alcotest.(check (list int)) "one batch of 10" [ 10 ] !batches;
  Alcotest.(check (float 1e-9)) "merge ratio" 10.0 (Tcp.Gro.merge_ratio gro)

let test_gro_small_segment_flushes () =
  let e = Sim.Engine.create () in
  let gro, batches = make_gro e () in
  Tcp.Gro.submit gro (seg 0);
  Tcp.Gro.submit gro (seg ~len:100 1448);
  Alcotest.(check (list int)) "tail flushes immediately" [ 2 ] !batches

let test_gro_cap_splits () =
  let e = Sim.Engine.create () in
  let gro, batches = make_gro e () in
  (* 64KiB / 1448 = 45.2: the 46th segment must start a new batch *)
  for i = 0 to 45 do
    Tcp.Gro.submit gro (seg (i * 1448))
  done;
  Tcp.Gro.flush gro;
  Alcotest.(check (list int)) "split at cap" [ 1; 45 ] !batches

let test_gro_timeout_flush () =
  let e = Sim.Engine.create () in
  let gro, batches = make_gro e ~timeout:(us 5) () in
  Tcp.Gro.submit gro (seg 0);
  Alcotest.(check int) "held" 1 (Tcp.Gro.pending gro);
  Sim.Engine.run e;
  Alcotest.(check (list int)) "flushed by timer" [ 1 ] !batches;
  Alcotest.(check int) "fired at timeout" (us 5) (Sim.Engine.now e)

let test_gro_disabled_passthrough () =
  let e = Sim.Engine.create () in
  let gro, batches = make_gro e ~enabled:false () in
  Tcp.Gro.submit gro (seg 0);
  Tcp.Gro.submit gro (seg 1448);
  Alcotest.(check (list int)) "two singleton batches" [ 1; 1 ] !batches

let test_gro_preserves_order () =
  let e = Sim.Engine.create () in
  let segs = ref [] in
  let gro =
    Tcp.Gro.create e
      { enabled = true; max_bytes = 64 * 1024; flush_timeout = us 5; mss = 1448 }
      ~deliver:(fun b -> List.iter (fun (s : Tcp.Segment.t) -> segs := s.seq :: !segs) b)
  in
  Tcp.Gro.submit gro (seg 0);
  Tcp.Gro.submit gro (seg 1448);
  Tcp.Gro.submit gro (seg ~len:10 2896);
  Alcotest.(check (list int)) "in-order delivery" [ 0; 1448; 2896 ] (List.rev !segs)

(* {1 Pacer} *)

let test_pacer_batches_by_count () =
  let e = Sim.Engine.create () in
  let out = ref [] in
  let p =
    Tcp.Pacer.create e ~max_delay:(us 100) ~max_batch:3 ~forward:(fun s ->
        out := s.Tcp.Segment.seq :: !out)
  in
  Tcp.Pacer.submit p (seg 0);
  Tcp.Pacer.submit p (seg 1);
  Alcotest.(check int) "held" 2 (Tcp.Pacer.pending p);
  Tcp.Pacer.submit p (seg 2);
  Alcotest.(check (list int)) "flushed in order" [ 0; 1; 2 ] (List.rev !out);
  Alcotest.(check int) "one doorbell" 1 (Tcp.Pacer.batches p)

let test_pacer_flushes_on_timer () =
  let e = Sim.Engine.create () in
  let out = ref 0 in
  let p = Tcp.Pacer.create e ~max_delay:(us 50) ~max_batch:10 ~forward:(fun _ -> incr out) in
  Tcp.Pacer.submit p (seg 0);
  Sim.Engine.run e;
  Alcotest.(check int) "timer flush" 1 !out;
  Alcotest.(check int) "at deadline" (us 50) (Sim.Engine.now e)

let test_pacer_zero_delay_passthrough () =
  let e = Sim.Engine.create () in
  let out = ref 0 in
  let p = Tcp.Pacer.create e ~max_delay:0 ~max_batch:10 ~forward:(fun _ -> incr out) in
  Tcp.Pacer.submit p (seg 0);
  Alcotest.(check int) "immediate" 1 !out

(* {1 Rtt} *)

let test_rtt_first_sample () =
  let r = Tcp.Rtt.create () in
  Alcotest.(check int) "initial RTO 1s" (Sim.Time.sec 1) (Tcp.Rtt.rto r);
  Tcp.Rtt.sample r (Sim.Time.ms 100);
  Alcotest.(check (option int)) "srtt = first sample" (Some (Sim.Time.ms 100))
    (Tcp.Rtt.srtt r);
  Alcotest.(check (option int)) "rttvar = half" (Some (Sim.Time.ms 50))
    (Tcp.Rtt.rttvar r);
  Alcotest.(check int) "rto = srtt + 4*rttvar" (Sim.Time.ms 300) (Tcp.Rtt.rto r)

let test_rtt_smoothing () =
  let r = Tcp.Rtt.create () in
  Tcp.Rtt.sample r (Sim.Time.ms 100);
  Tcp.Rtt.sample r (Sim.Time.ms 200);
  (* srtt = 7/8*100 + 1/8*200 = 112.5ms *)
  (match Tcp.Rtt.srtt r with
  | Some v -> Alcotest.(check int) "srtt smoothed" (Sim.Time.of_us_float 112_500.0) v
  | None -> Alcotest.fail "no srtt");
  Alcotest.(check int) "two samples" 2 (Tcp.Rtt.samples r)

let test_rtt_rto_clamps () =
  let r = Tcp.Rtt.create () in
  Tcp.Rtt.sample r (Sim.Time.us 10);
  Alcotest.(check int) "clamped to floor" Tcp.Rtt.min_rto (Tcp.Rtt.rto r);
  Alcotest.check_raises "negative sample" (Invalid_argument "Rtt.sample: negative RTT")
    (fun () -> Tcp.Rtt.sample r (-1))

let test_rtt_converges () =
  let r = Tcp.Rtt.create () in
  for _ = 1 to 100 do
    Tcp.Rtt.sample r (Sim.Time.ms 50)
  done;
  match Tcp.Rtt.srtt r with
  | Some v ->
    if abs (v - Sim.Time.ms 50) > Sim.Time.ms 1 then
      Alcotest.failf "did not converge: %d" v
  | None -> Alcotest.fail "no srtt"

(* {1 Segment} *)

let test_segment_wire_bytes () =
  let s = Tcp.Segment.make ~payload:"hello" ~seq:0 ~ack:0 ~window:100 () in
  Alcotest.(check int) "headers + payload" (Tcp.Segment.header_bytes + 5)
    (Tcp.Segment.wire_bytes s);
  let with_opt =
    Tcp.Segment.make ~payload:"hello" ~e2e:sample_triple ~seq:0 ~ack:0 ~window:100 ()
  in
  Alcotest.(check int) "option adds 40"
    (Tcp.Segment.header_bytes + 5 + 40)
    (Tcp.Segment.wire_bytes with_opt);
  Alcotest.(check bool) "pure ack" true
    (Tcp.Segment.is_pure_ack (Tcp.Segment.make ~seq:0 ~ack:0 ~window:0 ()))

let suite =
  [
    ( "tcp.seq32",
      [
        Alcotest.test_case "wrapping add/sub" `Quick test_seq32_wrap_add;
        Alcotest.test_case "serial compare" `Quick test_seq32_serial_compare;
        Alcotest.test_case "window membership" `Quick test_seq32_between;
        QCheck_alcotest.to_alcotest prop_seq32_sub_add;
      ] );
    ( "tcp.bytebuf",
      [
        Alcotest.test_case "FIFO across chunks" `Quick test_bytebuf_fifo;
        Alcotest.test_case "peek and drop" `Quick test_bytebuf_peek_drop;
        Alcotest.test_case "byte conservation" `Quick test_bytebuf_conservation;
        QCheck_alcotest.to_alcotest prop_bytebuf_roundtrip;
      ] );
    ( "tcp.unit_fifo",
      [
        Alcotest.test_case "byte units are identity" `Quick test_unit_fifo_bytes_identity;
        Alcotest.test_case "syscall units complete at boundary" `Quick
          test_unit_fifo_syscall_units;
        Alcotest.test_case "drain spanning entries" `Quick test_unit_fifo_spanning_drain;
        Alcotest.test_case "overdrain rejected" `Quick test_unit_fifo_overdrain_rejected;
        QCheck_alcotest.to_alcotest prop_unit_fifo_conserves_units;
      ] );
    ( "tcp.options",
      [
        Alcotest.test_case "roundtrip incl. E2E state" `Quick test_options_roundtrip;
        Alcotest.test_case "padding alignment" `Quick test_options_padding_alignment;
        Alcotest.test_case "timestamp" `Quick test_options_timestamp;
        Alcotest.test_case "unknown preserved" `Quick test_options_unknown_preserved;
        Alcotest.test_case "truncated rejected" `Quick test_options_truncated_rejected;
        Alcotest.test_case "overflow rejected" `Quick test_options_overflow_rejected;
      ] );
    ( "tcp.nagle",
      [
        Alcotest.test_case "full segment sends" `Quick test_nagle_full_segment_always_sends;
        Alcotest.test_case "small + in-flight holds" `Quick
          test_nagle_holds_small_with_inflight;
        Alcotest.test_case "small + idle sends" `Quick test_nagle_sends_small_when_idle;
        Alcotest.test_case "TCP_NODELAY sends" `Quick test_nagle_disabled_always_sends;
        Alcotest.test_case "toggle counting" `Quick test_nagle_toggle_counting;
        Alcotest.test_case "AIMD min-send threshold" `Quick test_nagle_min_send_threshold;
        Alcotest.test_case "zero chunk" `Quick test_nagle_zero_chunk;
      ] );
    ( "tcp.delayed_ack",
      [
        Alcotest.test_case "every-second-segment" `Quick test_delack_count_trigger;
        Alcotest.test_case "timer expiry" `Quick test_delack_timer_trigger;
        Alcotest.test_case "piggyback cancels" `Quick test_delack_piggyback_cancels_timer;
      ] );
    ( "tcp.link",
      [
        Alcotest.test_case "serialization + propagation" `Quick
          test_link_serialization_and_prop;
        Alcotest.test_case "busy flag" `Quick test_link_busy;
      ] );
    ( "tcp.gro",
      [
        Alcotest.test_case "merges full segments" `Quick test_gro_merges_full_segments;
        Alcotest.test_case "small segment flushes" `Quick test_gro_small_segment_flushes;
        Alcotest.test_case "64KiB cap splits" `Quick test_gro_cap_splits;
        Alcotest.test_case "idle timeout flushes" `Quick test_gro_timeout_flush;
        Alcotest.test_case "disabled passthrough" `Quick test_gro_disabled_passthrough;
        Alcotest.test_case "order preserved" `Quick test_gro_preserves_order;
      ] );
    ( "tcp.pacer",
      [
        Alcotest.test_case "batches by count" `Quick test_pacer_batches_by_count;
        Alcotest.test_case "flushes on timer" `Quick test_pacer_flushes_on_timer;
        Alcotest.test_case "zero delay passthrough" `Quick test_pacer_zero_delay_passthrough;
      ] );
    ( "tcp.rtt",
      [
        Alcotest.test_case "first sample (RFC 6298)" `Quick test_rtt_first_sample;
        Alcotest.test_case "smoothing" `Quick test_rtt_smoothing;
        Alcotest.test_case "RTO clamping / validation" `Quick test_rtt_rto_clamps;
        Alcotest.test_case "convergence" `Quick test_rtt_converges;
      ] );
    ( "tcp.segment",
      [ Alcotest.test_case "wire byte accounting" `Quick test_segment_wire_bytes ] );
  ]
