(* Tests for connection teardown: the RFC 793 FIN state machine from
   ESTABLISHED onward. *)

let testbed () =
  let engine = Sim.Engine.create () in
  let host =
    {
      Tcp.Conn.socket = { Tcp.Socket.default_config with nagle = false };
      tx_cost = 0;
      rx_seg_cost = 0;
      rx_batch_cost = 0;
      gro = { (Tcp.Gro.default_config ~mss:1448) with enabled = false };
    }
  in
  let conn = Tcp.Conn.create engine ~a:host ~b:host () in
  (engine, Tcp.Conn.sock_a conn, Tcp.Conn.sock_b conn)

let drain sock = Tcp.Socket.recv sock (Tcp.Socket.recv_available sock)

let check_state what expected sock =
  Alcotest.(check string) what expected (Tcp.Socket.state_string sock)

let test_active_close_full_handshake () =
  let engine, a, b = testbed () in
  Tcp.Socket.on_readable b (fun () -> ignore (drain b));
  check_state "a established" "established" a;
  Tcp.Socket.close a;
  check_state "a fin-wait-1" "fin-wait-1" a;
  Sim.Engine.run engine;
  (* b acked the FIN and noticed the close *)
  check_state "b close-wait" "close-wait" b;
  check_state "a fin-wait-2" "fin-wait-2" a;
  Alcotest.(check bool) "b sees eof" true (Tcp.Socket.eof b);
  (* passive side closes too *)
  Tcp.Socket.close b;
  check_state "b last-ack" "last-ack" b;
  Sim.Engine.run engine;
  check_state "b closed" "closed" b;
  check_state "a closed after time-wait" "closed" a;
  Alcotest.(check bool) "a sees eof" true (Tcp.Socket.eof a)

let test_fin_waits_for_queued_data () =
  let engine, a, b = testbed () in
  let received = Buffer.create 65536 in
  Tcp.Socket.on_readable b (fun () -> Buffer.add_string received (drain b));
  let n = 50_000 in
  Tcp.Socket.send a (String.make n 'd');
  (* close immediately: the FIN must not jump the queue *)
  Tcp.Socket.close a;
  Sim.Engine.run engine;
  Alcotest.(check int) "all data delivered before FIN" n (Buffer.length received);
  Alcotest.(check bool) "b got eof after data" true (Tcp.Socket.eof b)

let test_send_after_close_rejected () =
  let _engine, a, _b = testbed () in
  Tcp.Socket.close a;
  Alcotest.check_raises "send after close"
    (Invalid_argument "Socket.send: socket is closing or closed") (fun () ->
      Tcp.Socket.send a "late")

let test_close_idempotent () =
  let engine, a, b = testbed () in
  Tcp.Socket.on_readable b (fun () -> ignore (drain b));
  Tcp.Socket.close a;
  Tcp.Socket.close a;
  Tcp.Socket.close a;
  Sim.Engine.run engine;
  check_state "still fin-wait-2" "fin-wait-2" a;
  (* only one FIN consumed sequence space: closing b completes cleanly *)
  Tcp.Socket.close b;
  Sim.Engine.run engine;
  check_state "closed" "closed" b

let test_half_close_allows_reverse_data () =
  (* After a closes, b can keep sending; a keeps receiving. *)
  let engine, a, b = testbed () in
  let got = Buffer.create 256 in
  Tcp.Socket.on_readable a (fun () -> Buffer.add_string got (drain a));
  Tcp.Socket.on_readable b (fun () -> ignore (drain b));
  Tcp.Socket.close a;
  Sim.Engine.run engine;
  Tcp.Socket.send b "data flowing the other way";
  Sim.Engine.run engine;
  Alcotest.(check string) "reverse data delivered" "data flowing the other way"
    (Buffer.contents got);
  Alcotest.(check bool) "a not at eof (peer still open)" false (Tcp.Socket.eof a)

let test_simultaneous_close () =
  let engine, a, b = testbed () in
  Tcp.Socket.on_readable a (fun () -> ignore (drain a));
  Tcp.Socket.on_readable b (fun () -> ignore (drain b));
  (* both close before seeing each other's FIN *)
  Tcp.Socket.close a;
  Tcp.Socket.close b;
  Sim.Engine.run engine;
  check_state "a closed" "closed" a;
  check_state "b closed" "closed" b

let test_fin_survives_loss () =
  (* Drop the first transmission of everything; the FIN must be
     retransmitted like data and the handshake still complete. *)
  let engine, a, b = testbed () in
  Tcp.Socket.on_readable b (fun () -> ignore (drain b));
  let drop_next = ref 1 in
  let orig = ref (fun _ -> ()) in
  let tap seg =
    if !drop_next > 0 then decr drop_next else !orig seg
  in
  (* rewire a's transmit through the dropper *)
  let engine_link = engine in
  ignore engine_link;
  let inner seg = Tcp.Socket.receive_segment b seg in
  orig := inner;
  Tcp.Socket.set_transmit a tap;
  Tcp.Socket.close a;
  (* first FIN dropped; the RTO resends it *)
  Sim.Engine.run_until engine (Sim.Time.sec 2);
  check_state "handshake completed despite loss" "fin-wait-2" a;
  Alcotest.(check bool) "retransmitted" true ((Tcp.Socket.counters a).retransmits >= 1)

let test_eof_after_reading_tail () =
  let engine, a, b = testbed () in
  (* no reader on b: data sits in the buffer *)
  Tcp.Socket.send a "tail";
  Tcp.Socket.close a;
  Sim.Engine.run engine;
  Alcotest.(check bool) "not eof while data unread" false (Tcp.Socket.eof b);
  Alcotest.(check string) "tail readable" "tail" (drain b);
  Alcotest.(check bool) "eof after draining" true (Tcp.Socket.eof b)

let suite =
  [
    ( "tcp.teardown",
      [
        Alcotest.test_case "active close handshake" `Quick test_active_close_full_handshake;
        Alcotest.test_case "FIN waits for queued data" `Quick test_fin_waits_for_queued_data;
        Alcotest.test_case "send after close rejected" `Quick test_send_after_close_rejected;
        Alcotest.test_case "close is idempotent" `Quick test_close_idempotent;
        Alcotest.test_case "half-close keeps reverse path" `Quick
          test_half_close_allows_reverse_data;
        Alcotest.test_case "simultaneous close" `Quick test_simultaneous_close;
        Alcotest.test_case "FIN survives loss" `Quick test_fin_survives_loss;
        Alcotest.test_case "eof after reading the tail" `Quick test_eof_after_reading_tail;
      ] );
  ]
