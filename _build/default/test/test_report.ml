(* Tests for the ASCII chart renderer. *)

let series label marker points : Report.Chart.series = { label; marker; points }

let test_render_basic () =
  let out =
    Report.Chart.render
      [ series "a" 'o' [ (0.0, 10.0); (1.0, 100.0); (2.0, 1000.0) ] ]
  in
  Alcotest.(check bool) "contains marker" true (String.contains out 'o');
  Alcotest.(check bool) "contains legend" true
    (String.length out > 0 && String.contains out 'a');
  (* all rows of the plot area are present *)
  let lines = String.split_on_char '\n' out in
  Alcotest.(check bool) "enough lines" true
    (List.length lines >= Report.Chart.default_config.height + 3)

let test_render_empty () =
  Alcotest.(check string) "empty message" "(no data to plot)\n" (Report.Chart.render []);
  Alcotest.(check string) "series without points" "(no data to plot)\n"
    (Report.Chart.render [ series "x" 'x' [] ])

let test_render_reference_line () =
  let config =
    { Report.Chart.default_config with y_line = Some (500.0, '=') }
  in
  let out = Report.Chart.render ~config [ series "a" 'o' [ (0.0, 100.0); (1.0, 1000.0) ] ] in
  Alcotest.(check bool) "rule drawn" true (String.contains out '=')

let test_render_linear_axis () =
  let config = { Report.Chart.default_config with y_axis = Report.Chart.Linear } in
  let out = Report.Chart.render ~config [ series "a" '*' [ (0.0, 1.0); (5.0, 2.0) ] ] in
  Alcotest.(check bool) "renders" true (String.contains out '*')

let test_render_non_finite_skipped () =
  let out =
    Report.Chart.render
      [ series "a" 'o' [ (0.0, Float.nan); (1.0, 50.0); (2.0, Float.infinity) ] ]
  in
  Alcotest.(check bool) "renders despite nan/inf" true (String.contains out 'o')

let test_render_constant_series () =
  (* zero y-span must not divide by zero *)
  let out = Report.Chart.render [ series "flat" '-' [ (0.0, 7.0); (1.0, 7.0) ] ] in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_render_too_small_grid () =
  let config = { Report.Chart.default_config with width = 2; height = 2 } in
  Alcotest.check_raises "tiny grid" (Invalid_argument "Chart.render: grid too small")
    (fun () -> ignore (Report.Chart.render ~config [ series "a" 'o' [ (0.0, 1.0) ] ]))

let suite =
  [
    ( "report.chart",
      [
        Alcotest.test_case "basic render" `Quick test_render_basic;
        Alcotest.test_case "empty input" `Quick test_render_empty;
        Alcotest.test_case "reference line" `Quick test_render_reference_line;
        Alcotest.test_case "linear axis" `Quick test_render_linear_axis;
        Alcotest.test_case "non-finite skipped" `Quick test_render_non_finite_skipped;
        Alcotest.test_case "constant series" `Quick test_render_constant_series;
        Alcotest.test_case "grid validation" `Quick test_render_too_small_grid;
      ] );
  ]
