(* Tests for the Redis-like substrate: RESP codec, store semantics,
   command dispatch. *)

let ms = Sim.Time.ms

(* {1 Resp} *)

let roundtrip v =
  match Kv.Resp.parse_exactly (Kv.Resp.encode v) with
  | Ok v' -> Alcotest.(check bool) "roundtrip" true (Kv.Resp.equal v v')
  | Error e -> Alcotest.fail e

let test_resp_roundtrips () =
  roundtrip (Kv.Resp.Simple "OK");
  roundtrip (Kv.Resp.Error "ERR boom");
  roundtrip (Kv.Resp.Integer 42);
  roundtrip (Kv.Resp.Integer (-17));
  roundtrip (Kv.Resp.Bulk (Some "hello\r\nworld"));
  roundtrip (Kv.Resp.Bulk (Some ""));
  roundtrip (Kv.Resp.Bulk None);
  roundtrip (Kv.Resp.Array None);
  roundtrip (Kv.Resp.Array (Some []));
  roundtrip
    (Kv.Resp.Array
       (Some [ Kv.Resp.Bulk (Some "SET"); Kv.Resp.Integer 1; Kv.Resp.Simple "x" ]));
  roundtrip
    (Kv.Resp.Array (Some [ Kv.Resp.Array (Some [ Kv.Resp.Bulk (Some "nested") ]) ]))

let test_resp_wire_format () =
  Alcotest.(check string) "simple" "+OK\r\n" (Kv.Resp.encode (Kv.Resp.Simple "OK"));
  Alcotest.(check string) "bulk" "$5\r\nhello\r\n"
    (Kv.Resp.encode (Kv.Resp.Bulk (Some "hello")));
  Alcotest.(check string) "nil" "$-1\r\n" (Kv.Resp.encode (Kv.Resp.Bulk None));
  Alcotest.(check string) "array" "*1\r\n:7\r\n"
    (Kv.Resp.encode (Kv.Resp.Array (Some [ Kv.Resp.Integer 7 ])))

let test_resp_encoded_length () =
  List.iter
    (fun v ->
      Alcotest.(check int) "encoded_length agrees"
        (String.length (Kv.Resp.encode v))
        (Kv.Resp.encoded_length v))
    [
      Kv.Resp.Simple "PONG";
      Kv.Resp.Integer 12345;
      Kv.Resp.Bulk (Some (String.make 1000 'v'));
      Kv.Resp.Bulk None;
      Kv.Resp.Array (Some [ Kv.Resp.Bulk (Some "a"); Kv.Resp.Bulk (Some "bb") ]);
    ]

let test_resp_incremental_parsing () =
  let p = Kv.Resp.Parser.create () in
  let wire = Kv.Resp.encode (Kv.Resp.Bulk (Some "abcdefgh")) in
  (* feed byte by byte: must return Ok None until complete *)
  String.iteri
    (fun i c ->
      Kv.Resp.Parser.feed p (String.make 1 c);
      match Kv.Resp.Parser.next p with
      | Ok None when i < String.length wire - 1 -> ()
      | Ok (Some v) when i = String.length wire - 1 ->
        Alcotest.(check bool) "value" true (Kv.Resp.equal v (Kv.Resp.Bulk (Some "abcdefgh")))
      | Ok (Some _) -> Alcotest.fail "completed early"
      | Ok None -> Alcotest.fail "never completed"
      | Error e -> Alcotest.fail e)
    wire

let test_resp_pipelined_values () =
  let p = Kv.Resp.Parser.create () in
  Kv.Resp.Parser.feed p
    (Kv.Resp.encode (Kv.Resp.Simple "A") ^ Kv.Resp.encode (Kv.Resp.Integer 2)
    ^ Kv.Resp.encode (Kv.Resp.Bulk (Some "C")));
  let next () = Result.get_ok (Kv.Resp.Parser.next p) in
  Alcotest.(check bool) "first" true (next () = Some (Kv.Resp.Simple "A"));
  Alcotest.(check bool) "second" true (next () = Some (Kv.Resp.Integer 2));
  Alcotest.(check bool) "third" true (next () = Some (Kv.Resp.Bulk (Some "C")));
  Alcotest.(check bool) "drained" true (next () = None);
  Alcotest.(check int) "no leftover bytes" 0 (Kv.Resp.Parser.buffered p)

let test_resp_malformed () =
  let p = Kv.Resp.Parser.create () in
  Kv.Resp.Parser.feed p "!nonsense\r\n";
  (match Kv.Resp.Parser.next p with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad type byte");
  (* parser stays failed *)
  match Kv.Resp.Parser.next p with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "recovered silently"

let test_resp_bad_bulk_terminator () =
  match Kv.Resp.parse_exactly "$3\r\nabcXX" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad terminator"

let prop_resp_roundtrip =
  let gen_value =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          let leaf =
            oneof
              [
                map (fun s -> Kv.Resp.Simple s) (string_size ~gen:(char_range 'a' 'z') (0 -- 20));
                map (fun i -> Kv.Resp.Integer i) int;
                map (fun s -> Kv.Resp.Bulk (Some s)) (string_size (0 -- 64));
                return (Kv.Resp.Bulk None);
              ]
          in
          if n = 0 then leaf
          else
            oneof
              [ leaf; map (fun l -> Kv.Resp.Array (Some l)) (list_size (0 -- 4) (self (n / 2))) ]))
  in
  QCheck.Test.make ~name:"RESP roundtrip (arbitrary values)" ~count:300
    (QCheck.make gen_value)
    (fun v ->
      match Kv.Resp.parse_exactly (Kv.Resp.encode v) with
      | Ok v' -> Kv.Resp.equal v v'
      | Error _ -> false)

(* {1 Store} *)

let test_store_set_get () =
  let s = Kv.Store.create () in
  Kv.Store.set s ~now:0 "k" "v";
  Alcotest.(check (option string)) "get" (Some "v") (Kv.Store.get s ~now:0 "k");
  Alcotest.(check (option string)) "missing" None (Kv.Store.get s ~now:0 "nope")

let test_store_ttl_expiry () =
  let s = Kv.Store.create () in
  Kv.Store.set s ~now:0 ~ttl:(ms 100) "k" "v";
  Alcotest.(check (option string)) "before expiry" (Some "v")
    (Kv.Store.get s ~now:(ms 99) "k");
  Alcotest.(check (option string)) "after expiry" None (Kv.Store.get s ~now:(ms 100) "k");
  Alcotest.(check int) "expired not counted" 0 (Kv.Store.size s ~now:(ms 100))

let test_store_delete_exists () =
  let s = Kv.Store.create () in
  Kv.Store.set s ~now:0 "a" "1";
  Kv.Store.set s ~now:0 "b" "2";
  Alcotest.(check int) "exists" 2 (Kv.Store.exists s ~now:0 [ "a"; "b"; "c" ]);
  Alcotest.(check int) "deleted" 1 (Kv.Store.delete s ~now:0 [ "a"; "zz" ]);
  Alcotest.(check int) "one left" 1 (Kv.Store.size s ~now:0)

let test_store_append_strlen () =
  let s = Kv.Store.create () in
  Alcotest.(check int) "append to missing" 3 (Kv.Store.append s ~now:0 "k" "abc");
  Alcotest.(check int) "append more" 6 (Kv.Store.append s ~now:0 "k" "def");
  Alcotest.(check int) "strlen" 6 (Kv.Store.strlen s ~now:0 "k");
  Alcotest.(check int) "strlen missing" 0 (Kv.Store.strlen s ~now:0 "none")

let test_store_incr () =
  let s = Kv.Store.create () in
  Alcotest.(check (result int string)) "incr from missing" (Ok 1)
    (Kv.Store.incr_by s ~now:0 "n" 1);
  Alcotest.(check (result int string)) "incr by 10" (Ok 11)
    (Kv.Store.incr_by s ~now:0 "n" 10);
  Kv.Store.set s ~now:0 "s" "not-a-number";
  match Kv.Store.incr_by s ~now:0 "s" 1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "incremented a string"

let test_store_setnx_getset () =
  let s = Kv.Store.create () in
  Alcotest.(check bool) "setnx fresh" true (Kv.Store.setnx s ~now:0 "k" "1");
  Alcotest.(check bool) "setnx existing" false (Kv.Store.setnx s ~now:0 "k" "2");
  Alcotest.(check (option string)) "getset returns old" (Some "1")
    (Kv.Store.getset s ~now:0 "k" "3");
  Alcotest.(check (option string)) "getset stored new" (Some "3")
    (Kv.Store.get s ~now:0 "k")

let test_store_expire_ttl_queries () =
  let s = Kv.Store.create () in
  Kv.Store.set s ~now:0 "k" "v";
  Alcotest.(check bool) "expire existing" true (Kv.Store.expire s ~now:0 "k" ~ttl:(ms 500));
  Alcotest.(check bool) "expire missing" false
    (Kv.Store.expire s ~now:0 "gone" ~ttl:(ms 500));
  (match Kv.Store.ttl s ~now:(ms 100) "k" with
  | `Ttl t -> Alcotest.(check int) "remaining" (ms 400) t
  | _ -> Alcotest.fail "expected ttl");
  Kv.Store.set s ~now:0 "p" "v";
  Alcotest.(check bool) "no ttl" true (Kv.Store.ttl s ~now:0 "p" = `No_ttl);
  Alcotest.(check bool) "missing" true (Kv.Store.ttl s ~now:0 "zz" = `Missing)

let test_store_keys_glob () =
  let s = Kv.Store.create () in
  List.iter (fun k -> Kv.Store.set s ~now:0 k "v") [ "user:1"; "user:2"; "sess:1" ];
  Alcotest.(check (list string)) "prefix glob" [ "user:1"; "user:2" ]
    (Kv.Store.keys_matching s ~now:0 ~pattern:"user:*");
  Alcotest.(check (list string)) "question mark" [ "sess:1"; "user:1" ]
    (Kv.Store.keys_matching s ~now:0 ~pattern:"????:1");
  Alcotest.(check (list string)) "star matches all" [ "sess:1"; "user:1"; "user:2" ]
    (Kv.Store.keys_matching s ~now:0 ~pattern:"*")

let test_store_flush () =
  let s = Kv.Store.create () in
  Kv.Store.set s ~now:0 "k" "v";
  Kv.Store.flush s;
  Alcotest.(check int) "empty" 0 (Kv.Store.size s ~now:0)

(* {1 Command} *)

let exec store cmd = Kv.Command.execute store ~now:0 cmd

let test_command_roundtrip_encoding () =
  let cmds =
    [
      Kv.Command.Ping;
      Kv.Command.Echo "hello";
      Kv.Command.Set { key = "k"; value = "v"; ttl = None };
      Kv.Command.Set { key = "k"; value = "v"; ttl = Some (ms 250) };
      Kv.Command.Get "k";
      Kv.Command.Del [ "a"; "b" ];
      Kv.Command.Exists [ "a" ];
      Kv.Command.Append { key = "k"; value = "v" };
      Kv.Command.Strlen "k";
      Kv.Command.Incr "n";
      Kv.Command.Decr "n";
      Kv.Command.Incrby { key = "n"; delta = 5 };
      Kv.Command.Mset [ ("a", "1"); ("b", "2") ];
      Kv.Command.Mget [ "a"; "b" ];
      Kv.Command.Setnx { key = "k"; value = "v" };
      Kv.Command.Getset { key = "k"; value = "v" };
      Kv.Command.Expire { key = "k"; seconds = 10 };
      Kv.Command.Ttl "k";
      Kv.Command.Dbsize;
      Kv.Command.Flushall;
      Kv.Command.Keys "*";
    ]
  in
  List.iter
    (fun cmd ->
      match Kv.Command.of_resp (Kv.Command.to_resp cmd) with
      | Ok cmd' when cmd = cmd' -> ()
      | Ok _ -> Alcotest.failf "roundtrip changed %s" (Kv.Command.name cmd)
      | Error e -> Alcotest.failf "%s: %s" (Kv.Command.name cmd) e)
    cmds

let test_command_case_insensitive () =
  match
    Kv.Command.of_resp
      (Kv.Resp.Array (Some [ Kv.Resp.Bulk (Some "get"); Kv.Resp.Bulk (Some "k") ]))
  with
  | Ok (Kv.Command.Get "k") -> ()
  | _ -> Alcotest.fail "lowercase get rejected"

let test_command_unknown_and_arity () =
  (match
     Kv.Command.of_resp (Kv.Resp.Array (Some [ Kv.Resp.Bulk (Some "WAT") ]))
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown accepted");
  match
    Kv.Command.of_resp (Kv.Resp.Array (Some [ Kv.Resp.Bulk (Some "GET") ]))
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad arity accepted"

let test_command_execute_flow () =
  let s = Kv.Store.create () in
  Alcotest.(check bool) "ping" true (exec s Kv.Command.Ping = Kv.Resp.Simple "PONG");
  Alcotest.(check bool) "set" true
    (exec s (Kv.Command.Set { key = "k"; value = "v"; ttl = None }) = Kv.Resp.Simple "OK");
  Alcotest.(check bool) "get hit" true
    (exec s (Kv.Command.Get "k") = Kv.Resp.Bulk (Some "v"));
  Alcotest.(check bool) "get miss" true
    (exec s (Kv.Command.Get "zz") = Kv.Resp.Bulk None);
  Alcotest.(check bool) "incr" true (exec s (Kv.Command.Incr "n") = Kv.Resp.Integer 1);
  Alcotest.(check bool) "incr error is RESP error" true
    (match exec s (Kv.Command.Incr "k") with Kv.Resp.Error _ -> true | _ -> false);
  Alcotest.(check bool) "mget" true
    (exec s (Kv.Command.Mget [ "k"; "zz" ])
    = Kv.Resp.Array (Some [ Kv.Resp.Bulk (Some "v"); Kv.Resp.Bulk None ]));
  Alcotest.(check bool) "dbsize" true
    (match exec s Kv.Command.Dbsize with Kv.Resp.Integer n -> n >= 1 | _ -> false)

let test_command_request_bytes_realism () =
  (* The Figure-4 workload: 16B key, 16KiB value — request must be a
     little over 16 KiB on the wire. *)
  let cmd =
    Kv.Command.Set { key = String.make 16 'k'; value = String.make 16384 'v'; ttl = None }
  in
  let n = Kv.Command.request_bytes cmd in
  Alcotest.(check bool) "between 16424 and 16480" true (n > 16420 && n < 16480)

let suite =
  [
    ( "kv.resp",
      [
        Alcotest.test_case "value roundtrips" `Quick test_resp_roundtrips;
        Alcotest.test_case "wire format" `Quick test_resp_wire_format;
        Alcotest.test_case "encoded_length" `Quick test_resp_encoded_length;
        Alcotest.test_case "incremental parsing" `Quick test_resp_incremental_parsing;
        Alcotest.test_case "pipelined values" `Quick test_resp_pipelined_values;
        Alcotest.test_case "malformed input" `Quick test_resp_malformed;
        Alcotest.test_case "bad bulk terminator" `Quick test_resp_bad_bulk_terminator;
        QCheck_alcotest.to_alcotest prop_resp_roundtrip;
      ] );
    ( "kv.store",
      [
        Alcotest.test_case "set/get" `Quick test_store_set_get;
        Alcotest.test_case "ttl expiry" `Quick test_store_ttl_expiry;
        Alcotest.test_case "delete/exists" `Quick test_store_delete_exists;
        Alcotest.test_case "append/strlen" `Quick test_store_append_strlen;
        Alcotest.test_case "incr semantics" `Quick test_store_incr;
        Alcotest.test_case "setnx/getset" `Quick test_store_setnx_getset;
        Alcotest.test_case "expire/ttl queries" `Quick test_store_expire_ttl_queries;
        Alcotest.test_case "keys glob" `Quick test_store_keys_glob;
        Alcotest.test_case "flush" `Quick test_store_flush;
      ] );
    ( "kv.command",
      [
        Alcotest.test_case "encode/decode roundtrip" `Quick test_command_roundtrip_encoding;
        Alcotest.test_case "case-insensitive names" `Quick test_command_case_insensitive;
        Alcotest.test_case "unknown command / bad arity" `Quick
          test_command_unknown_and_arity;
        Alcotest.test_case "execute flow" `Quick test_command_execute_flow;
        Alcotest.test_case "Figure-4 request size" `Quick
          test_command_request_bytes_realism;
      ] );
  ]
