(* Tests for the paper's Algorithms 1 and 2 (Little's-law queue
   accounting) and their composition into latency estimates. *)

let us = Sim.Time.us

let check_float = Alcotest.(check (float 1e-6))

(* The worked example from §3.1: one item for 10 µs, then four items
   for 20 µs; integral 90 item·µs over 30 µs gives Q = 3. *)
let test_paper_example () =
  let q = E2e.Queue_state.create ~at:0 in
  E2e.Queue_state.track q ~at:0 1;
  E2e.Queue_state.track q ~at:(us 10) 3;
  let prev : E2e.Queue_state.share = { time = 0; total = 0; integral = 0.0 } in
  let cur = E2e.Queue_state.snapshot q ~at:(us 30) in
  match E2e.Queue_state.get_avgs ~prev ~cur with
  | None -> Alcotest.fail "expected a window"
  | Some avgs -> check_float "Q = 3" 3.0 avgs.q_avg

let test_latency_is_integral_over_total () =
  (* One item enters at t=0 and leaves at t=50us: latency 50us. *)
  let q = E2e.Queue_state.create ~at:0 in
  E2e.Queue_state.track q ~at:0 1;
  E2e.Queue_state.track q ~at:(us 50) (-1);
  let prev : E2e.Queue_state.share = { time = 0; total = 0; integral = 0.0 } in
  let cur = E2e.Queue_state.snapshot q ~at:(us 100) in
  match E2e.Queue_state.get_avgs ~prev ~cur with
  | None -> Alcotest.fail "expected a window"
  | Some avgs -> (
    match avgs.latency_ns with
    | None -> Alcotest.fail "expected latency"
    | Some l -> check_float "sojourn 50us" 50_000.0 l)

let test_throughput () =
  let q = E2e.Queue_state.create ~at:0 in
  (* 10 items transit within 1 ms: throughput 10,000/s. *)
  for i = 0 to 9 do
    E2e.Queue_state.track q ~at:(us (i * 100)) 1;
    E2e.Queue_state.track q ~at:(us ((i * 100) + 50)) (-1)
  done;
  let prev : E2e.Queue_state.share = { time = 0; total = 0; integral = 0.0 } in
  let cur = E2e.Queue_state.snapshot q ~at:(Sim.Time.ms 1) in
  match E2e.Queue_state.get_avgs ~prev ~cur with
  | None -> Alcotest.fail "expected a window"
  | Some avgs ->
    check_float "throughput" 10_000.0 avgs.throughput;
    (match avgs.latency_ns with
    | Some l -> check_float "mean sojourn 50us" 50_000.0 l
    | None -> Alcotest.fail "expected latency")

let test_size_and_total () =
  let q = E2e.Queue_state.create ~at:0 in
  E2e.Queue_state.track q ~at:(us 1) 5;
  E2e.Queue_state.track q ~at:(us 2) (-2);
  Alcotest.(check int) "size" 3 (E2e.Queue_state.size q);
  Alcotest.(check int) "total counts departures" 2 (E2e.Queue_state.total q)

let test_track_backwards_rejected () =
  let q = E2e.Queue_state.create ~at:(us 10) in
  Alcotest.check_raises "backwards"
    (Invalid_argument "Queue_state.track: time went backwards") (fun () ->
      E2e.Queue_state.track q ~at:(us 5) 1)

let test_track_negative_size_rejected () =
  let q = E2e.Queue_state.create ~at:0 in
  Alcotest.check_raises "negative size"
    (Invalid_argument "Queue_state.track: size would become negative") (fun () ->
      E2e.Queue_state.track q ~at:(us 1) (-1))

let test_get_avgs_empty_window () =
  let q = E2e.Queue_state.create ~at:0 in
  let s = E2e.Queue_state.snapshot q ~at:(us 10) in
  Alcotest.(check bool) "same-instant window" true
    (E2e.Queue_state.get_avgs ~prev:s ~cur:s = None)

let test_get_avgs_no_departures () =
  let q = E2e.Queue_state.create ~at:0 in
  E2e.Queue_state.track q ~at:0 4;
  let prev : E2e.Queue_state.share = { time = 0; total = 0; integral = 0.0 } in
  let cur = E2e.Queue_state.snapshot q ~at:(us 10) in
  match E2e.Queue_state.get_avgs ~prev ~cur with
  | None -> Alcotest.fail "expected a window"
  | Some avgs ->
    Alcotest.(check bool) "no latency" true (avgs.latency_ns = None);
    check_float "Q = 4" 4.0 avgs.q_avg

let test_snapshot_is_nondestructive () =
  let q = E2e.Queue_state.create ~at:0 in
  E2e.Queue_state.track q ~at:0 2;
  let a = E2e.Queue_state.snapshot q ~at:(us 10) in
  let b = E2e.Queue_state.snapshot q ~at:(us 10) in
  check_float "snapshots agree" a.integral b.integral;
  (* and tracking still works from the original update time *)
  E2e.Queue_state.track q ~at:(us 20) (-1);
  Alcotest.(check int) "size after drain" 1 (E2e.Queue_state.size q)

(* Property: for any sequence of arrivals/departures with one item at a
   time, average latency from Algorithm 2 equals the arithmetic mean of
   the per-item sojourns — Little's law as an identity. *)
let prop_littles_law_identity =
  QCheck.Test.make ~name:"Little's law equals mean sojourn" ~count:200
    QCheck.(list_of_size Gen.(1 -- 40) (pair (int_bound 1_000) (int_bound 1_000)))
    (fun gaps ->
      let q = E2e.Queue_state.create ~at:0 in
      let clock = ref 0 in
      let sojourns = ref [] in
      List.iter
        (fun (gap, stay) ->
          let arrive = !clock + gap in
          let leave = arrive + stay + 1 in
          E2e.Queue_state.track q ~at:arrive 1;
          E2e.Queue_state.track q ~at:leave (-1);
          sojourns := float_of_int (stay + 1) :: !sojourns;
          clock := leave)
        gaps;
      let prev : E2e.Queue_state.share = { time = 0; total = 0; integral = 0.0 } in
      let cur = E2e.Queue_state.snapshot q ~at:!clock in
      match E2e.Queue_state.get_avgs ~prev ~cur with
      | Some { latency_ns = Some l; _ } ->
        let mean =
          List.fold_left ( +. ) 0.0 !sojourns /. float_of_int (List.length !sojourns)
        in
        Float.abs (l -. mean) < 1e-6
      | _ -> false)

(* Property: integral is non-decreasing and total only grows. *)
let prop_counters_monotone =
  QCheck.Test.make ~name:"integral and total are monotone" ~count:200
    QCheck.(list_of_size Gen.(1 -- 60) (pair (int_bound 100) (int_range (-3) 5)))
    (fun steps ->
      let q = E2e.Queue_state.create ~at:0 in
      let clock = ref 0 in
      let last_total = ref 0 in
      let last_integral = ref 0.0 in
      List.for_all
        (fun (gap, n) ->
          clock := !clock + gap;
          let n = if E2e.Queue_state.size q + n < 0 then 0 else n in
          E2e.Queue_state.track q ~at:!clock n;
          let s = E2e.Queue_state.snapshot q ~at:!clock in
          let ok = s.total >= !last_total && s.integral >= !last_integral -. 1e-9 in
          last_total := s.total;
          last_integral := s.integral;
          ok)
        steps)

(* {1 Hints API (§3.3)} *)

let test_hints_end_to_end_latency () =
  let h = E2e.Hints.tracker ~at:0 in
  E2e.Hints.create h ~at:0 1;
  E2e.Hints.complete h ~at:(us 120) 1;
  E2e.Hints.create h ~at:(us 200) 1;
  E2e.Hints.complete h ~at:(us 280) 1;
  let prev : E2e.Queue_state.share = { time = 0; total = 0; integral = 0.0 } in
  let cur = E2e.Hints.share h ~at:(us 300) in
  match E2e.Hints.avgs ~prev ~cur with
  | Some { latency_ns = Some l; throughput; _ } ->
    check_float "mean request latency" 100_000.0 l;
    check_float "completed/s" (2.0 /. 300e-6) throughput
  | _ -> Alcotest.fail "expected hint estimate"

let test_hints_in_flight () =
  let h = E2e.Hints.tracker ~at:0 in
  E2e.Hints.create h ~at:0 3;
  E2e.Hints.complete h ~at:(us 10) 2;
  Alcotest.(check int) "in flight" 1 (E2e.Hints.in_flight h)

let test_hints_overcomplete_rejected () =
  let h = E2e.Hints.tracker ~at:0 in
  E2e.Hints.create h ~at:0 1;
  Alcotest.check_raises "overcomplete"
    (Invalid_argument "Queue_state.track: size would become negative") (fun () ->
      E2e.Hints.complete h ~at:(us 1) 2)

let suite =
  [
    ( "core.queue_state",
      [
        Alcotest.test_case "paper worked example (Q=3)" `Quick test_paper_example;
        Alcotest.test_case "latency = integral/total" `Quick
          test_latency_is_integral_over_total;
        Alcotest.test_case "throughput from departures" `Quick test_throughput;
        Alcotest.test_case "size and total" `Quick test_size_and_total;
        Alcotest.test_case "backwards time rejected" `Quick test_track_backwards_rejected;
        Alcotest.test_case "negative size rejected" `Quick
          test_track_negative_size_rejected;
        Alcotest.test_case "empty window" `Quick test_get_avgs_empty_window;
        Alcotest.test_case "no departures -> no latency" `Quick
          test_get_avgs_no_departures;
        Alcotest.test_case "snapshot non-destructive" `Quick
          test_snapshot_is_nondestructive;
        QCheck_alcotest.to_alcotest prop_littles_law_identity;
        QCheck_alcotest.to_alcotest prop_counters_monotone;
      ] );
    ( "core.hints",
      [
        Alcotest.test_case "end-to-end latency" `Quick test_hints_end_to_end_latency;
        Alcotest.test_case "in-flight accounting" `Quick test_hints_in_flight;
        Alcotest.test_case "overcomplete rejected" `Quick test_hints_overcomplete_rejected;
      ] );
  ]
