(* Tests for the controller-side core modules: EWMA smoothing, batching
   policies, the epsilon-greedy toggler, the AIMD batch-limit
   controller, and the Figure-1 analytic model. *)

let check_float = Alcotest.(check (float 1e-9))

(* {1 Ewma} *)

let test_ewma_first_sample () =
  let e = E2e.Ewma.create ~alpha:0.5 in
  Alcotest.(check (option (float 0.0))) "empty" None (E2e.Ewma.value e);
  check_float "first sample adopted" 10.0 (E2e.Ewma.update e 10.0)

let test_ewma_converges () =
  let e = E2e.Ewma.create ~alpha:0.5 in
  ignore (E2e.Ewma.update e 0.0);
  for _ = 1 to 50 do
    ignore (E2e.Ewma.update e 100.0)
  done;
  let v = E2e.Ewma.value_or e ~default:0.0 in
  if Float.abs (v -. 100.0) > 1e-6 then Alcotest.failf "did not converge: %f" v

let test_ewma_weights () =
  let e = E2e.Ewma.create ~alpha:0.25 in
  ignore (E2e.Ewma.update e 0.0);
  check_float "one step of alpha=0.25" 25.0 (E2e.Ewma.update e 100.0)

let test_ewma_reset () =
  let e = E2e.Ewma.create ~alpha:0.5 in
  ignore (E2e.Ewma.update e 42.0);
  E2e.Ewma.reset e;
  Alcotest.(check (option (float 0.0))) "reset" None (E2e.Ewma.value e)

let test_ewma_bad_alpha () =
  Alcotest.check_raises "alpha=0" (Invalid_argument "Ewma.create: alpha must be in (0,1]")
    (fun () -> ignore (E2e.Ewma.create ~alpha:0.0));
  Alcotest.check_raises "alpha>1" (Invalid_argument "Ewma.create: alpha must be in (0,1]")
    (fun () -> ignore (E2e.Ewma.create ~alpha:1.5))

let test_ewma_irregular () =
  let e = E2e.Ewma.Irregular.create ~tau:(Sim.Time.us 100) in
  ignore (E2e.Ewma.Irregular.update e ~at:0 0.0);
  (* After exactly tau, the weight is 1 - e^-1 ~ 0.632. *)
  let v = E2e.Ewma.Irregular.update e ~at:(Sim.Time.us 100) 100.0 in
  if Float.abs (v -. 63.212) > 0.01 then Alcotest.failf "tau step: %f" v;
  (* A long gap forgets the past almost completely. *)
  let v = E2e.Ewma.Irregular.update e ~at:(Sim.Time.ms 100) 0.0 in
  if Float.abs v > 0.01 then Alcotest.failf "long gap: %f" v

let prop_ewma_bounded =
  QCheck.Test.make ~name:"EWMA stays within sample range" ~count:300
    QCheck.(pair (float_range 0.01 1.0) (list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0)))
    (fun (alpha, xs) ->
      let e = E2e.Ewma.create ~alpha in
      List.iter (fun x -> ignore (E2e.Ewma.update e x)) xs;
      match E2e.Ewma.value e with
      | None -> false
      | Some v ->
        let lo = List.fold_left Float.min infinity xs in
        let hi = List.fold_left Float.max neg_infinity xs in
        v >= lo -. 1e-9 && v <= hi +. 1e-9)

(* {1 Policy} *)

let out latency_us tput : E2e.Policy.outcome =
  { latency_ns = latency_us *. 1e3; throughput = tput }

let test_policy_latency () =
  let p = E2e.Policy.Prefer_latency in
  Alcotest.(check bool) "lower latency wins" true
    (E2e.Policy.better p (out 100.0 1.0) (out 200.0 99.0))

let test_policy_throughput () =
  let p = E2e.Policy.Prefer_throughput in
  Alcotest.(check bool) "higher tput wins" true
    (E2e.Policy.better p (out 900.0 50.0) (out 100.0 40.0))

let test_policy_slo () =
  let p = E2e.Policy.Throughput_under_slo { slo_ns = 500e3 } in
  (* both meet: throughput decides *)
  Alcotest.(check bool) "both meet SLO" true
    (E2e.Policy.better p (out 400.0 60.0) (out 100.0 50.0));
  (* both meet with ~equal throughput: latency breaks the tie *)
  Alcotest.(check bool) "tie-break by latency" true
    (E2e.Policy.better p (out 100.0 52.0) (out 400.0 50.0));
  Alcotest.(check bool) "tie-break symmetric" false
    (E2e.Policy.better p (out 400.0 50.0) (out 100.0 52.0));
  (* only one meets: it wins regardless of throughput *)
  Alcotest.(check bool) "SLO-compliant wins" true
    (E2e.Policy.better p (out 450.0 10.0) (out 600.0 90.0));
  Alcotest.(check bool) "SLO-violating loses" false
    (E2e.Policy.better p (out 600.0 90.0) (out 450.0 10.0));
  (* neither meets: latency decides *)
  Alcotest.(check bool) "both violate -> latency" true
    (E2e.Policy.better p (out 600.0 1.0) (out 900.0 99.0))

let test_policy_parse () =
  (match E2e.Policy.of_string "latency" with
  | Ok E2e.Policy.Prefer_latency -> ()
  | _ -> Alcotest.fail "latency");
  (match E2e.Policy.of_string "slo:250" with
  | Ok (E2e.Policy.Throughput_under_slo { slo_ns }) -> check_float "slo us" 250e3 slo_ns
  | _ -> Alcotest.fail "slo:250");
  (match E2e.Policy.of_string "slo" with
  | Ok (E2e.Policy.Throughput_under_slo { slo_ns }) ->
    check_float "default slo" E2e.Policy.default_slo_ns slo_ns
  | _ -> Alcotest.fail "slo");
  match E2e.Policy.of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus accepted"

let test_policy_roundtrip () =
  List.iter
    (fun p ->
      match E2e.Policy.of_string (E2e.Policy.to_string p) with
      | Ok p' when p' = p -> ()
      | _ -> Alcotest.failf "roundtrip failed for %s" (E2e.Policy.to_string p))
    [
      E2e.Policy.Prefer_latency;
      E2e.Policy.Prefer_throughput;
      E2e.Policy.Throughput_under_slo { slo_ns = 500_000.0 };
    ]

(* {1 Toggler} *)

let make_toggler ?(epsilon = 0.0) ?(initial = E2e.Toggler.Batch_off) () =
  E2e.Toggler.create ~epsilon ~ewma_alpha:0.5 ~min_observations:1
    ~policy:E2e.Policy.Prefer_latency
    ~rng:(Sim.Rng.create ~seed:1)
    ~initial ()

let test_toggler_explores_unsampled_arm () =
  let t = make_toggler () in
  (* The other arm has no observations: the first decision explores. *)
  Alcotest.(check string) "explores on" "on"
    (E2e.Toggler.mode_to_string (E2e.Toggler.decide t))

let test_toggler_exploits_better_arm () =
  let t = make_toggler () in
  E2e.Toggler.observe t ~mode:E2e.Toggler.Batch_off (out 100.0 1.0);
  E2e.Toggler.observe t ~mode:E2e.Toggler.Batch_on (out 500.0 1.0);
  (* off has the lower latency: with epsilon=0 we stay off. *)
  for _ = 1 to 10 do
    Alcotest.(check string) "stays off" "off"
      (E2e.Toggler.mode_to_string (E2e.Toggler.decide t))
  done

let test_toggler_switches_when_world_changes () =
  let t = make_toggler () in
  E2e.Toggler.observe t ~mode:E2e.Toggler.Batch_off (out 100.0 1.0);
  E2e.Toggler.observe t ~mode:E2e.Toggler.Batch_on (out 500.0 1.0);
  ignore (E2e.Toggler.decide t);
  (* The off arm degrades hard; EWMA tracks it and we flip to on. *)
  for _ = 1 to 20 do
    E2e.Toggler.observe t ~mode:E2e.Toggler.Batch_off (out 2000.0 1.0)
  done;
  Alcotest.(check string) "flips to on" "on"
    (E2e.Toggler.mode_to_string (E2e.Toggler.decide t))

let test_toggler_epsilon_explores () =
  let t =
    E2e.Toggler.create ~epsilon:1.0 ~ewma_alpha:0.5 ~min_observations:1
      ~policy:E2e.Policy.Prefer_latency
      ~rng:(Sim.Rng.create ~seed:2)
      ~initial:E2e.Toggler.Batch_off ()
  in
  E2e.Toggler.observe t ~mode:E2e.Toggler.Batch_off (out 1.0 1.0);
  E2e.Toggler.observe t ~mode:E2e.Toggler.Batch_on (out 9999.0 1.0);
  (* epsilon=1: always try the other arm, even though it is worse. *)
  let m1 = E2e.Toggler.decide t in
  let m2 = E2e.Toggler.decide t in
  Alcotest.(check string) "explored" "on" (E2e.Toggler.mode_to_string m1);
  Alcotest.(check string) "explored back" "off" (E2e.Toggler.mode_to_string m2)

let test_toggler_observation_counts () =
  let t = make_toggler () in
  E2e.Toggler.observe t ~mode:E2e.Toggler.Batch_on (out 1.0 1.0);
  E2e.Toggler.observe t ~mode:E2e.Toggler.Batch_on (out 2.0 1.0);
  Alcotest.(check int) "on samples" 2 (E2e.Toggler.observations t E2e.Toggler.Batch_on);
  Alcotest.(check int) "off samples" 0 (E2e.Toggler.observations t E2e.Toggler.Batch_off)

let test_toggler_smoothing () =
  let t = make_toggler () in
  E2e.Toggler.observe t ~mode:E2e.Toggler.Batch_on (out 100.0 10.0);
  E2e.Toggler.observe t ~mode:E2e.Toggler.Batch_on (out 200.0 20.0);
  match E2e.Toggler.smoothed t E2e.Toggler.Batch_on with
  | Some o ->
    check_float "ewma latency" 150e3 o.latency_ns;
    check_float "ewma tput" 15.0 o.throughput
  | None -> Alcotest.fail "expected smoothed outcome"

let test_toggler_bad_epsilon () =
  Alcotest.check_raises "epsilon" (Invalid_argument "Toggler.create: epsilon must be in [0,1]")
    (fun () ->
      ignore
        (E2e.Toggler.create ~epsilon:1.5 ~policy:E2e.Policy.Prefer_latency
           ~rng:(Sim.Rng.create ~seed:1) ~initial:E2e.Toggler.Batch_on ()))

(* {1 Aimd} *)

let test_aimd_additive_increase () =
  let a = E2e.Aimd.create ~min_limit:100 ~max_limit:1000 ~increase:50 ~decrease:0.5 () in
  Alcotest.(check int) "initial at min" 100 (E2e.Aimd.limit a);
  Alcotest.(check int) "one good step" 150 (E2e.Aimd.feedback a `Good);
  Alcotest.(check int) "two good steps" 200 (E2e.Aimd.feedback a `Good)

let test_aimd_multiplicative_decrease () =
  let a =
    E2e.Aimd.create ~initial:800 ~min_limit:100 ~max_limit:1000 ~increase:50
      ~decrease:0.5 ()
  in
  Alcotest.(check int) "halved" 400 (E2e.Aimd.feedback a `Bad);
  Alcotest.(check int) "halved again" 200 (E2e.Aimd.feedback a `Bad)

let test_aimd_clamping () =
  let a =
    E2e.Aimd.create ~initial:990 ~min_limit:100 ~max_limit:1000 ~increase:50
      ~decrease:0.5 ()
  in
  Alcotest.(check int) "clamped at max" 1000 (E2e.Aimd.feedback a `Good);
  let b =
    E2e.Aimd.create ~initial:110 ~min_limit:100 ~max_limit:1000 ~increase:50
      ~decrease:0.5 ()
  in
  Alcotest.(check int) "clamped at min" 100 (E2e.Aimd.feedback b `Bad)

let test_aimd_counters_and_slo_adapter () =
  let a = E2e.Aimd.create ~min_limit:1 ~max_limit:10 ~increase:1 ~decrease:0.5 () in
  ignore (E2e.Aimd.feedback a (E2e.Aimd.with_slo ~slo_ns:500e3 (out 100.0 1.0)));
  ignore (E2e.Aimd.feedback a (E2e.Aimd.with_slo ~slo_ns:500e3 (out 900.0 1.0)));
  Alcotest.(check int) "good rounds" 1 (E2e.Aimd.good_rounds a);
  Alcotest.(check int) "bad rounds" 1 (E2e.Aimd.bad_rounds a)

let test_aimd_bad_params () =
  Alcotest.check_raises "inverted range"
    (Invalid_argument "Aimd.create: need 0 < min_limit <= max_limit") (fun () ->
      ignore (E2e.Aimd.create ~min_limit:10 ~max_limit:5 ~increase:1 ~decrease:0.5 ()))

let prop_aimd_stays_in_range =
  QCheck.Test.make ~name:"AIMD limit stays in [min,max]" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) bool)
    (fun feedback ->
      let a = E2e.Aimd.create ~min_limit:10 ~max_limit:500 ~increase:7 ~decrease:0.7 () in
      List.for_all
        (fun good ->
          let l = E2e.Aimd.feedback a (if good then `Good else `Bad) in
          l >= 10 && l <= 500)
        feedback)

(* {1 Batch_model (Figure 1)} *)

let test_figure1_c1 () =
  (* c=1: batching improves both latency and throughput (Fig 1a). *)
  let v = E2e.Batch_model.compare (E2e.Batch_model.figure1_params ~client_cost:1.0) in
  Alcotest.(check bool) "latency better" true v.batching_improves_latency;
  Alcotest.(check bool) "throughput better" true v.batching_improves_throughput

let test_figure1_c5 () =
  (* c=5: batching degrades both (Fig 1b). *)
  let v = E2e.Batch_model.compare (E2e.Batch_model.figure1_params ~client_cost:5.0) in
  Alcotest.(check bool) "latency worse" false v.batching_improves_latency;
  Alcotest.(check bool) "throughput worse" false v.batching_improves_throughput

let test_figure1_c3 () =
  (* c=3: mixed — throughput better, latency worse (Fig 1c). *)
  let v = E2e.Batch_model.compare (E2e.Batch_model.figure1_params ~client_cost:3.0) in
  Alcotest.(check bool) "latency worse" false v.batching_improves_latency;
  Alcotest.(check bool) "throughput better" true v.batching_improves_throughput

let test_figure1_exact_times () =
  let p = E2e.Batch_model.figure1_params ~client_cost:1.0 in
  let b = E2e.Batch_model.batched p in
  let u = E2e.Batch_model.unbatched p in
  (* server done at 3*2+4 = 10; client completions at 11,12,13. *)
  Alcotest.(check (array (float 1e-9))) "batched completions" [| 11.0; 12.0; 13.0 |]
    b.completions;
  (* responses at 6,12,18; completions 7,13,19. *)
  Alcotest.(check (array (float 1e-9))) "unbatched completions" [| 7.0; 13.0; 19.0 |]
    u.completions

let test_figure1_processing_totals () =
  (* Overall processing: n*alpha + beta batched, n*(alpha+beta) not. *)
  let p = E2e.Batch_model.figure1_params ~client_cost:0.0 in
  let b = E2e.Batch_model.batched p in
  let u = E2e.Batch_model.unbatched p in
  check_float "batched makespan" 10.0 b.makespan;
  check_float "unbatched makespan" 18.0 u.makespan

let test_scan_client_cost () =
  let scans =
    E2e.Batch_model.scan_client_cost ~alpha:2.0 ~beta:4.0 ~n:3
      ~costs:[ 1.0; 3.0; 5.0 ]
  in
  Alcotest.(check int) "three points" 3 (List.length scans)

let test_batch_model_validation () =
  Alcotest.check_raises "n=0" (Invalid_argument "Batch_model: n must be positive")
    (fun () ->
      ignore
        (E2e.Batch_model.batched { alpha = 1.0; beta = 1.0; client_cost = 1.0; n = 0 }))

(* Property: with a free client (c = 0) and beta > 0, batching always
   improves throughput (makespan n*alpha + beta < n*(alpha+beta));
   average latency improves exactly when the amortizable cost dominates
   the per-request cost (beta > alpha). *)
let prop_batching_wins_without_client_cost =
  QCheck.Test.make ~name:"c=0 batching economics" ~count:200
    QCheck.(triple (float_range 0.1 10.0) (float_range 0.1 10.0) (int_range 2 20))
    (fun (alpha, beta, n) ->
      QCheck.assume (Float.abs (beta -. alpha) > 1e-6);
      let v = E2e.Batch_model.compare { alpha; beta; client_cost = 0.0; n } in
      v.batching_improves_throughput
      && v.batching_improves_latency = (beta > alpha))

(* {1 Units} *)

let test_units_roundtrip () =
  List.iter
    (fun u ->
      match E2e.Units.of_string (E2e.Units.to_string u) with
      | Ok u' when E2e.Units.equal u u' -> ()
      | _ -> Alcotest.failf "roundtrip failed for %s" (E2e.Units.to_string u))
    E2e.Units.all;
  match E2e.Units.of_string "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted nonsense"

let suite =
  [
    ( "core.ewma",
      [
        Alcotest.test_case "first sample" `Quick test_ewma_first_sample;
        Alcotest.test_case "converges" `Quick test_ewma_converges;
        Alcotest.test_case "weights" `Quick test_ewma_weights;
        Alcotest.test_case "reset" `Quick test_ewma_reset;
        Alcotest.test_case "rejects bad alpha" `Quick test_ewma_bad_alpha;
        Alcotest.test_case "irregular sampling" `Quick test_ewma_irregular;
        QCheck_alcotest.to_alcotest prop_ewma_bounded;
      ] );
    ( "core.policy",
      [
        Alcotest.test_case "prefer latency" `Quick test_policy_latency;
        Alcotest.test_case "prefer throughput" `Quick test_policy_throughput;
        Alcotest.test_case "throughput under SLO" `Quick test_policy_slo;
        Alcotest.test_case "parse" `Quick test_policy_parse;
        Alcotest.test_case "roundtrip" `Quick test_policy_roundtrip;
      ] );
    ( "core.toggler",
      [
        Alcotest.test_case "explores unsampled arm" `Quick
          test_toggler_explores_unsampled_arm;
        Alcotest.test_case "exploits better arm" `Quick test_toggler_exploits_better_arm;
        Alcotest.test_case "adapts to change" `Quick
          test_toggler_switches_when_world_changes;
        Alcotest.test_case "epsilon exploration" `Quick test_toggler_epsilon_explores;
        Alcotest.test_case "observation counts" `Quick test_toggler_observation_counts;
        Alcotest.test_case "EWMA smoothing" `Quick test_toggler_smoothing;
        Alcotest.test_case "rejects bad epsilon" `Quick test_toggler_bad_epsilon;
      ] );
    ( "core.aimd",
      [
        Alcotest.test_case "additive increase" `Quick test_aimd_additive_increase;
        Alcotest.test_case "multiplicative decrease" `Quick
          test_aimd_multiplicative_decrease;
        Alcotest.test_case "clamping" `Quick test_aimd_clamping;
        Alcotest.test_case "counters and SLO adapter" `Quick
          test_aimd_counters_and_slo_adapter;
        Alcotest.test_case "rejects bad params" `Quick test_aimd_bad_params;
        QCheck_alcotest.to_alcotest prop_aimd_stays_in_range;
      ] );
    ( "core.batch_model",
      [
        Alcotest.test_case "Fig 1a: c=1 helps both" `Quick test_figure1_c1;
        Alcotest.test_case "Fig 1b: c=5 hurts both" `Quick test_figure1_c5;
        Alcotest.test_case "Fig 1c: c=3 mixed" `Quick test_figure1_c3;
        Alcotest.test_case "exact completion times" `Quick test_figure1_exact_times;
        Alcotest.test_case "processing totals" `Quick test_figure1_processing_totals;
        Alcotest.test_case "client-cost scan" `Quick test_scan_client_cost;
        Alcotest.test_case "validation" `Quick test_batch_model_validation;
        QCheck_alcotest.to_alcotest prop_batching_wins_without_client_cost;
      ] );
    ( "core.units",
      [ Alcotest.test_case "string roundtrip" `Quick test_units_roundtrip ] );
  ]
