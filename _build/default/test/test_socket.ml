(* Integration tests for Socket + Conn: byte-stream delivery, Nagle
   dynamics, delayed acks, flow control, instrumentation, and the
   in-band metadata exchange. *)

let us = Sim.Time.us

(* A fast, clean testbed: negligible CPU costs, GRO off, so protocol
   behaviour is observable without cost-model noise. *)
let testbed ?(nagle_a = false) ?(nagle_b = false) ?(unit_mode = E2e.Units.Bytes)
    ?(exchange = E2e.Exchange.Every_segment) ?(rcv_buf = 256 * 1024)
    ?(prop = us 5) () =
  let engine = Sim.Engine.create () in
  let mk nagle =
    {
      Tcp.Conn.socket =
        { Tcp.Socket.default_config with nagle; unit_mode; exchange; rcv_buf };
      tx_cost = 0;
      rx_seg_cost = 0;
      rx_batch_cost = 0;
      gro = { (Tcp.Gro.default_config ~mss:1448) with enabled = false };
    }
  in
  let link = { Tcp.Conn.prop_delay = prop; gbit_per_s = 100.0 } in
  let conn =
    Tcp.Conn.create engine ~a:(mk nagle_a) ~b:(mk nagle_b) ~link_ab:link ~link_ba:link ()
  in
  (engine, conn)

let drain_to_string sock =
  Tcp.Socket.recv sock (Tcp.Socket.recv_available sock)

let test_basic_transfer () =
  let engine, conn = testbed () in
  let a = Tcp.Conn.sock_a conn and b = Tcp.Conn.sock_b conn in
  let received = Buffer.create 64 in
  Tcp.Socket.on_readable b (fun () -> Buffer.add_string received (drain_to_string b));
  Tcp.Socket.send a "hello across the simulated wire";
  Sim.Engine.run engine;
  Alcotest.(check string) "payload intact" "hello across the simulated wire"
    (Buffer.contents received)

let test_large_transfer_segmentation () =
  let engine, conn = testbed () in
  let a = Tcp.Conn.sock_a conn and b = Tcp.Conn.sock_b conn in
  let n = 100_000 in
  let data = String.init n (fun i -> Char.chr (i mod 256)) in
  let received = Buffer.create n in
  Tcp.Socket.on_readable b (fun () -> Buffer.add_string received (drain_to_string b));
  Tcp.Socket.send a data;
  Sim.Engine.run engine;
  Alcotest.(check int) "all bytes" n (Buffer.length received);
  Alcotest.(check bool) "content intact" true (String.equal data (Buffer.contents received));
  let c = Tcp.Socket.counters a in
  Alcotest.(check int) "segments = ceil(n/mss)" ((n + 1447) / 1448) c.segs_out

let test_bidirectional () =
  let engine, conn = testbed () in
  let a = Tcp.Conn.sock_a conn and b = Tcp.Conn.sock_b conn in
  let got_a = Buffer.create 16 and got_b = Buffer.create 16 in
  Tcp.Socket.on_readable b (fun () ->
      Buffer.add_string got_b (drain_to_string b);
      if Buffer.contents got_b = "ping" then Tcp.Socket.send b "pong");
  Tcp.Socket.on_readable a (fun () -> Buffer.add_string got_a (drain_to_string a));
  Tcp.Socket.send a "ping";
  Sim.Engine.run engine;
  Alcotest.(check string) "request" "ping" (Buffer.contents got_b);
  Alcotest.(check string) "response" "pong" (Buffer.contents got_a)

let test_nagle_holds_second_small_write () =
  let engine, conn = testbed ~nagle_a:true () in
  let a = Tcp.Conn.sock_a conn in
  Tcp.Socket.send a "first";
  (* the first small write goes out immediately (nothing in flight);
     the second must wait for the ack *)
  Tcp.Socket.send a "second";
  let c = Tcp.Socket.counters a in
  Alcotest.(check int) "only one segment so far" 1 c.segs_out;
  Alcotest.(check bool) "hold recorded" true (c.nagle_holds > 0);
  Sim.Engine.run engine;
  let c = Tcp.Socket.counters a in
  Alcotest.(check int) "released after ack" 2 c.segs_out

let test_nodelay_sends_immediately () =
  let _engine, conn = testbed ~nagle_a:false () in
  let a = Tcp.Conn.sock_a conn in
  Tcp.Socket.send a "first";
  Tcp.Socket.send a "second";
  let c = Tcp.Socket.counters a in
  Alcotest.(check int) "both out immediately" 2 c.segs_out

let test_nagle_coalesces_held_writes () =
  let engine, conn = testbed ~nagle_a:true () in
  let a = Tcp.Conn.sock_a conn and b = Tcp.Conn.sock_b conn in
  ignore b;
  Tcp.Socket.send a (String.make 100 'x');
  (* While the first segment is unacked, several small writes queue up
     and must leave as one segment once the ack arrives. *)
  for _ = 1 to 5 do
    Tcp.Socket.send a (String.make 100 'y')
  done;
  Sim.Engine.run engine;
  let c = Tcp.Socket.counters a in
  Alcotest.(check int) "coalesced into two segments" 2 c.segs_out;
  Alcotest.(check int) "all bytes sent" 600 c.bytes_out

let test_runtime_nagle_toggle () =
  let engine, conn = testbed ~nagle_a:true () in
  let a = Tcp.Conn.sock_a conn in
  Tcp.Socket.send a "first";
  Tcp.Socket.send a "held";
  Alcotest.(check int) "held by nagle" 1 (Tcp.Socket.counters a).segs_out;
  (* toggling off must release held data on the next kick *)
  Tcp.Socket.set_nagle_enabled a false;
  Tcp.Socket.kick a;
  Alcotest.(check int) "released by toggle" 2 (Tcp.Socket.counters a).segs_out;
  Sim.Engine.run engine

let test_delayed_ack_pure_ack_count () =
  let engine, conn = testbed () in
  let a = Tcp.Conn.sock_a conn and b = Tcp.Conn.sock_b conn in
  Tcp.Socket.on_readable b (fun () -> ignore (drain_to_string b));
  (* one small write: receiver has nothing to piggyback on, so the
     40ms delayed-ack timer must produce exactly one pure ack *)
  Tcp.Socket.send a "x";
  Sim.Engine.run engine;
  let cb = Tcp.Socket.counters b in
  Alcotest.(check int) "one pure ack" 1 cb.pure_acks_out;
  Alcotest.(check int) "timer-forced" 1 (Tcp.Socket.acks_by_timer b);
  (* and it fired at the delack timeout, not earlier *)
  Alcotest.(check bool) "40ms elapsed" true
    (Sim.Engine.now engine >= Sim.Time.ms 40)

let test_ack_every_second_segment () =
  let engine, conn = testbed () in
  let a = Tcp.Conn.sock_a conn and b = Tcp.Conn.sock_b conn in
  Tcp.Socket.on_readable b (fun () -> ignore (drain_to_string b));
  Tcp.Socket.send a (String.make (1448 * 2) 'x');
  Sim.Engine.run engine;
  let cb = Tcp.Socket.counters b in
  Alcotest.(check int) "second segment forces ack" 1 cb.pure_acks_out;
  Alcotest.(check int) "not by timer" 0 (Tcp.Socket.acks_by_timer b)

let test_flow_control_blocks_and_resumes () =
  (* Receiver app reads nothing at first: the sender must stop at the
     advertised window, then resume when the app drains. *)
  let engine, conn = testbed ~rcv_buf:(16 * 1024) () in
  let a = Tcp.Conn.sock_a conn and b = Tcp.Conn.sock_b conn in
  let n = 64 * 1024 in
  Tcp.Socket.send a (String.make n 'z');
  Sim.Engine.run engine;
  Alcotest.(check bool) "sender blocked by window" true
    (Tcp.Socket.unsent_bytes a > 0);
  Alcotest.(check bool) "receiver buffer bounded" true
    (Tcp.Socket.recv_available b <= 16 * 1024);
  (* Now the app drains everything as it arrives. *)
  let received = ref (String.length (drain_to_string b)) in
  Tcp.Socket.on_readable b (fun () -> received := !received + String.length (drain_to_string b));
  Sim.Engine.run engine;
  Alcotest.(check int) "everything eventually delivered" n !received;
  Alcotest.(check int) "nothing left unsent" 0 (Tcp.Socket.unsent_bytes a)

let test_byte_conservation () =
  let engine, conn = testbed () in
  let a = Tcp.Conn.sock_a conn and b = Tcp.Conn.sock_b conn in
  let total = ref 0 in
  Tcp.Socket.on_readable b (fun () -> total := !total + String.length (drain_to_string b));
  let sent = ref 0 in
  for i = 1 to 50 do
    let chunk = String.make ((i * 37) mod 4000) 'q' in
    sent := !sent + String.length chunk;
    Tcp.Socket.send a chunk
  done;
  Sim.Engine.run engine;
  Alcotest.(check int) "bytes in = bytes out" !sent !total;
  let ca = Tcp.Socket.counters a and cb = Tcp.Socket.counters b in
  Alcotest.(check int) "tx accounting" !sent ca.bytes_out;
  Alcotest.(check int) "rx accounting" !sent cb.bytes_in

(* {1 Instrumentation} *)

let test_estimator_tracks_bytes () =
  let engine, conn = testbed () in
  let a = Tcp.Conn.sock_a conn and b = Tcp.Conn.sock_b conn in
  Tcp.Socket.on_readable b (fun () -> ignore (drain_to_string b));
  Tcp.Socket.send a (String.make 1000 'x');
  let ea = Tcp.Socket.estimator a in
  Alcotest.(check int) "unacked grows on send" 1000 (E2e.Estimator.unacked_size ea);
  Sim.Engine.run engine;
  Alcotest.(check int) "unacked drains on ack" 0 (E2e.Estimator.unacked_size ea);
  let eb = Tcp.Socket.estimator b in
  Alcotest.(check int) "unread drained by app" 0 (E2e.Estimator.unread_size eb);
  Alcotest.(check int) "ackdelay drained by acks" 0 (E2e.Estimator.ackdelay_size eb)

let test_estimator_tracks_syscall_units () =
  let engine, conn = testbed ~unit_mode:E2e.Units.Syscalls () in
  let a = Tcp.Conn.sock_a conn and b = Tcp.Conn.sock_b conn in
  Tcp.Socket.on_readable b (fun () -> ignore (drain_to_string b));
  (* three send() calls of different sizes = three units *)
  Tcp.Socket.send a (String.make 5000 'x');
  Tcp.Socket.send a "tiny";
  Tcp.Socket.send a (String.make 2000 'y');
  let ea = Tcp.Socket.estimator a in
  Alcotest.(check int) "three syscall units unacked" 3 (E2e.Estimator.unacked_size ea);
  Sim.Engine.run engine;
  Alcotest.(check int) "units drain with acks" 0 (E2e.Estimator.unacked_size ea)

let test_msg_ends_cross_receiver () =
  (* The receiver counts message boundaries (PSH markers), giving it
     syscall units without knowing the sender's call sizes. *)
  let engine, conn = testbed ~unit_mode:E2e.Units.Syscalls () in
  let a = Tcp.Conn.sock_a conn and b = Tcp.Conn.sock_b conn in
  let boundary_units = ref 0 in
  Tcp.Socket.on_readable b (fun () ->
      boundary_units := E2e.Estimator.unread_size (Tcp.Socket.estimator b);
      ignore (drain_to_string b));
  Tcp.Socket.send a (String.make 3000 'x');
  Sim.Engine.run engine;
  (* the last delivery saw one whole message pending *)
  Alcotest.(check int) "one message unit seen" 1 !boundary_units

let test_end_to_end_estimate_matches_ground_truth () =
  (* Deterministic request/response echo at a fixed rate, then check
     the §3.2 combination against directly measured latency. *)
  let engine, conn = testbed ~prop:(us 5) () in
  let a = Tcp.Conn.sock_a conn and b = Tcp.Conn.sock_b conn in
  Tcp.Socket.on_readable b (fun () ->
      let data = drain_to_string b in
      if String.length data > 0 then Tcp.Socket.send b (String.make (String.length data) 'r'));
  let latencies = ref [] in
  let outstanding = Queue.create () in
  Tcp.Socket.on_readable a (fun () ->
      let got = drain_to_string a in
      let rec pop n =
        if n >= 1000 then begin
          let t0 = Queue.pop outstanding in
          latencies := Sim.Time.to_ns (Sim.Engine.now engine) - t0 :: !latencies;
          pop (n - 1000)
        end
        else if n > 0 then Queue.push (Queue.pop outstanding) outstanding
      in
      pop (String.length got));
  (* issue 200 requests of 1000 bytes, 50us apart *)
  for i = 0 to 199 do
    ignore
      (Sim.Engine.schedule_at engine ~at:(us (i * 50)) (fun () ->
           Queue.push (Sim.Time.to_ns (Sim.Engine.now engine)) outstanding;
           Tcp.Socket.send a (String.make 1000 'q')))
  done;
  Sim.Engine.run engine;
  let measured =
    List.fold_left ( + ) 0 !latencies / List.length !latencies
  in
  match E2e.Estimator.peek_estimate (Tcp.Socket.estimator a) ~at:(Sim.Engine.now engine) with
  | Some { latency_ns = Some est; _ } ->
    let err = Float.abs (est -. float_of_int measured) /. float_of_int measured in
    if err > 0.25 then
      Alcotest.failf "estimate %.0fns vs measured %dns (err %.0f%%)" est measured
        (err *. 100.0)
  | _ -> Alcotest.fail "no estimate"

let test_exchange_option_flows () =
  let engine, conn = testbed ~exchange:(E2e.Exchange.Periodic (us 50)) () in
  let a = Tcp.Conn.sock_a conn and b = Tcp.Conn.sock_b conn in
  Tcp.Socket.on_readable b (fun () -> ignore (drain_to_string b));
  for i = 0 to 9 do
    ignore
      (Sim.Engine.schedule_at engine ~at:(us (i * 100)) (fun () ->
           Tcp.Socket.send a "req"))
  done;
  Sim.Engine.run engine;
  (* The server ingested remote snapshots, so it has a remote window. *)
  Alcotest.(check bool) "server saw client queue states" true
    (E2e.Estimator.remote_window (Tcp.Socket.estimator b) <> None)

let test_hint_shares_flow () =
  let engine, conn = testbed () in
  let a = Tcp.Conn.sock_a conn and b = Tcp.Conn.sock_b conn in
  let tracker = E2e.Hints.tracker ~at:0 in
  Tcp.Socket.set_hint_provider a (fun ~at -> E2e.Hints.share tracker ~at);
  Tcp.Socket.on_readable b (fun () -> ignore (drain_to_string b));
  E2e.Hints.create tracker ~at:0 1;
  Tcp.Socket.send a "request-1";
  Sim.Engine.run engine;
  E2e.Hints.create tracker ~at:(Sim.Engine.now engine) 1;
  Tcp.Socket.send a "request-2";
  Sim.Engine.run engine;
  Alcotest.(check bool) "server holds a hint window" true
    (Tcp.Socket.remote_hint_window b <> None)

let test_tso_super_segments () =
  (* With TSO the sender pays one transmit-path cost per super-segment
     while the wire still carries MSS packets and the receiver sees an
     intact stream. *)
  let engine = Sim.Engine.create () in
  let mk tso_max =
    {
      Tcp.Conn.socket = { Tcp.Socket.default_config with nagle = false; tso_max };
      tx_cost = 0;
      rx_seg_cost = 0;
      rx_batch_cost = 0;
      gro = { (Tcp.Gro.default_config ~mss:1448) with enabled = false };
    }
  in
  let conn =
    Tcp.Conn.create engine ~a:(mk (Some (64 * 1024))) ~b:(mk None) ()
  in
  let a = Tcp.Conn.sock_a conn and b = Tcp.Conn.sock_b conn in
  let received = Buffer.create 4096 in
  Tcp.Socket.on_readable b (fun () -> Buffer.add_string received (drain_to_string b));
  let data = String.init 100_000 (fun i -> Char.chr (i mod 256)) in
  Tcp.Socket.send a data;
  Sim.Engine.run engine;
  Alcotest.(check bool) "stream intact" true (String.equal data (Buffer.contents received));
  let c = Tcp.Socket.counters a in
  (* 100000 / 65536 -> 2 stack segments instead of 70 *)
  Alcotest.(check int) "two super-segments" 2 c.segs_out;
  (* but the wire carried MSS packets *)
  Alcotest.(check bool) "wire packets ~ceil(n/mss)" true
    (Tcp.Link.packets (Tcp.Conn.link_ab conn) >= (100_000 + 1447) / 1448)

let test_event_tracing () =
  let engine, conn = testbed ~nagle_a:true () in
  let a = Tcp.Conn.sock_a conn and b = Tcp.Conn.sock_b conn in
  let tr = Sim.Trace.create () in
  Sim.Trace.set_enabled tr true;
  Tcp.Socket.set_trace a tr;
  Tcp.Socket.set_trace b tr;
  Tcp.Socket.on_readable b (fun () -> ignore (drain_to_string b));
  Tcp.Socket.send a "first";
  Tcp.Socket.send a "held-by-nagle";
  Sim.Engine.run engine;
  Tcp.Socket.close a;
  Sim.Engine.run engine;
  let tags tag = List.length (Sim.Trace.find tr ~tag) in
  Alcotest.(check bool) "tx events" true (tags "tx" >= 2);
  Alcotest.(check bool) "rx events" true (tags "rx" >= 2);
  Alcotest.(check bool) "ack events" true (tags "ack" >= 2);
  Alcotest.(check bool) "nagle hold recorded" true (tags "hold" >= 1);
  Alcotest.(check bool) "fin recorded" true (tags "fin" >= 1);
  (* disabled tracing emits nothing *)
  Sim.Trace.clear tr;
  Sim.Trace.set_enabled tr false;
  Tcp.Socket.send b "quiet";
  Sim.Engine.run engine;
  Alcotest.(check int) "silent when disabled" 0 (List.length (Sim.Trace.records tr))

let test_deterministic_replay () =
  let run () =
    let engine, conn = testbed () in
    let a = Tcp.Conn.sock_a conn and b = Tcp.Conn.sock_b conn in
    Tcp.Socket.on_readable b (fun () ->
        let d = drain_to_string b in
        Tcp.Socket.send b (String.make (String.length d) 'e'));
    Tcp.Socket.on_readable a (fun () -> ignore (drain_to_string a));
    for i = 0 to 20 do
      ignore
        (Sim.Engine.schedule_at engine ~at:(us (i * 37)) (fun () ->
             Tcp.Socket.send a (String.make ((i * 131) mod 3000) 'p')))
    done;
    Sim.Engine.run engine;
    (Sim.Engine.now engine, Tcp.Conn.total_packets conn, (Tcp.Socket.counters a).bytes_out)
  in
  let r1 = run () and r2 = run () in
  Alcotest.(check (triple int int int)) "bit-identical replay" r1 r2

let suite =
  [
    ( "tcp.socket",
      [
        Alcotest.test_case "basic transfer" `Quick test_basic_transfer;
        Alcotest.test_case "large transfer segmentation" `Quick
          test_large_transfer_segmentation;
        Alcotest.test_case "bidirectional" `Quick test_bidirectional;
        Alcotest.test_case "nagle holds small write" `Quick
          test_nagle_holds_second_small_write;
        Alcotest.test_case "nodelay immediate" `Quick test_nodelay_sends_immediately;
        Alcotest.test_case "nagle coalesces" `Quick test_nagle_coalesces_held_writes;
        Alcotest.test_case "runtime toggle releases" `Quick test_runtime_nagle_toggle;
        Alcotest.test_case "delayed ack by timer" `Quick test_delayed_ack_pure_ack_count;
        Alcotest.test_case "ack every second segment" `Quick test_ack_every_second_segment;
        Alcotest.test_case "flow control blocks/resumes" `Quick
          test_flow_control_blocks_and_resumes;
        Alcotest.test_case "byte conservation" `Quick test_byte_conservation;
        Alcotest.test_case "TSO super-segments" `Quick test_tso_super_segments;
        Alcotest.test_case "event tracing" `Quick test_event_tracing;
        Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
      ] );
    ( "tcp.instrumentation",
      [
        Alcotest.test_case "byte queue tracking" `Quick test_estimator_tracks_bytes;
        Alcotest.test_case "syscall unit tracking" `Quick
          test_estimator_tracks_syscall_units;
        Alcotest.test_case "message boundaries cross the wire" `Quick
          test_msg_ends_cross_receiver;
        Alcotest.test_case "estimate matches ground truth" `Quick
          test_end_to_end_estimate_matches_ground_truth;
        Alcotest.test_case "exchange option flows" `Quick test_exchange_option_flows;
        Alcotest.test_case "hint shares flow" `Quick test_hint_shares_flow;
      ] );
  ]
