(* Tests for trace-driven workloads: format roundtrip, validation,
   synthesis, and runner replay. *)

let us = Sim.Time.us

let sample_entries =
  [
    { Loadgen.Trace.at = us 100; cmd = Kv.Command.Set { key = "a"; value = String.make 64 'v'; ttl = None } };
    { Loadgen.Trace.at = us 250; cmd = Kv.Command.Get "a" };
    { Loadgen.Trace.at = us 250; cmd = Kv.Command.Get "a" };
    { Loadgen.Trace.at = us 900; cmd = Kv.Command.Set { key = "b"; value = String.make 128 'v'; ttl = None } };
  ]

let entries_equal (a : Loadgen.Trace.entry) (b : Loadgen.Trace.entry) =
  a.at = b.at
  &&
  match (a.cmd, b.cmd) with
  | Kv.Command.Set x, Kv.Command.Set y ->
    x.key = y.key && String.length x.value = String.length y.value
  | Kv.Command.Get x, Kv.Command.Get y -> x = y
  | _ -> false

let test_roundtrip () =
  match Loadgen.Trace.of_string (Loadgen.Trace.to_string sample_entries) with
  | Ok parsed ->
    Alcotest.(check int) "count" 4 (List.length parsed);
    Alcotest.(check bool) "entries equal" true
      (List.for_all2 entries_equal sample_entries parsed)
  | Error e -> Alcotest.fail e

let test_comments_and_blanks () =
  let text = "# header\n\n100 SET k 64\n\n# mid comment\n200 GET k\n" in
  match Loadgen.Trace.of_string text with
  | Ok entries -> Alcotest.(check int) "two entries" 2 (List.length entries)
  | Error e -> Alcotest.fail e

let test_rejects_bad_lines () =
  let cases =
    [
      "100 SET k";  (* missing size *)
      "abc GET k";  (* bad timestamp *)
      "100 DEL k";  (* unsupported op *)
      "100 SET k 0";  (* non-positive size *)
    ]
  in
  List.iter
    (fun line ->
      match Loadgen.Trace.of_string line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" line)
    cases

let test_rejects_time_regression () =
  match Loadgen.Trace.of_string "200 GET a\n100 GET b\n" with
  | Error msg -> Alcotest.(check bool) "mentions line 2" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "accepted regressing timestamps"

let test_file_roundtrip () =
  let path = Filename.temp_file "e2ebatch" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Loadgen.Trace.save_file path sample_entries with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      match Loadgen.Trace.load_file path with
      | Ok parsed -> Alcotest.(check int) "count" 4 (List.length parsed)
      | Error e -> Alcotest.fail e)

let test_synthesize_rate_and_order () =
  let rng = Sim.Rng.create ~seed:31 in
  let entries =
    Loadgen.Trace.synthesize ~workload:Loadgen.Workload.small_requests ~rate_rps:50e3
      ~duration:(Sim.Time.ms 100) ~rng
  in
  let n = Loadgen.Trace.count entries in
  (* 50k * 0.1s = ~5000 requests *)
  Alcotest.(check bool) "rate respected" true (n > 4_500 && n < 5_500);
  let sorted = ref true in
  ignore
    (List.fold_left
       (fun prev (e : Loadgen.Trace.entry) ->
         if Sim.Time.compare e.at prev < 0 then sorted := false;
         e.at)
       Sim.Time.zero entries);
  Alcotest.(check bool) "monotone" true !sorted;
  Alcotest.(check bool) "duration bounded" true
    (Loadgen.Trace.duration entries <= Sim.Time.ms 100)

let test_runner_replays_trace () =
  let rng = Sim.Rng.create ~seed:33 in
  let workload = Loadgen.Workload.small_requests in
  let trace =
    Loadgen.Trace.synthesize ~workload ~rate_rps:20e3 ~duration:(Sim.Time.ms 80) ~rng
  in
  let base = Loadgen.Runner.default_config ~rate_rps:1.0 ~batching:Loadgen.Runner.Static_off in
  let cfg =
    { base with warmup = Sim.Time.ms 20; duration = Sim.Time.ms 60; workload;
      trace = Some trace }
  in
  let r = Loadgen.Runner.run cfg in
  (* every post-warmup trace entry must complete *)
  let expected =
    List.length
      (List.filter
         (fun (e : Loadgen.Trace.entry) ->
           Sim.Time.compare e.at (Sim.Time.ms 20) > 0
           && Sim.Time.compare e.at (Sim.Time.ms 80) <= 0)
         trace)
  in
  Alcotest.(check bool) "close to trace cardinality" true
    (abs (r.completed - expected) < 20);
  (* replays are deterministic *)
  let r2 = Loadgen.Runner.run cfg in
  Alcotest.(check int) "deterministic replay" r.completed r2.completed;
  Alcotest.(check (float 1e-9)) "same latency" r.measured_mean_us r2.measured_mean_us

let suite =
  [
    ( "loadgen.trace",
      [
        Alcotest.test_case "string roundtrip" `Quick test_roundtrip;
        Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
        Alcotest.test_case "bad lines rejected" `Quick test_rejects_bad_lines;
        Alcotest.test_case "time regression rejected" `Quick test_rejects_time_regression;
        Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
        Alcotest.test_case "synthesis rate/order" `Quick test_synthesize_rate_and_order;
        Alcotest.test_case "runner replays a trace" `Slow test_runner_replays_trace;
      ] );
  ]
