let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

(* First-failure tracking: workers race to record (index, exn, bt); the
   lowest index wins so the caller sees the same exception the
   sequential path would have raised first. *)
type failure = { index : int; exn : exn; bt : Printexc.raw_backtrace }

let record_failure slot index exn bt =
  let rec loop () =
    let cur = Atomic.get slot in
    let better = match cur with None -> true | Some f -> index < f.index in
    if better && not (Atomic.compare_and_set slot cur (Some { index; exn; bt })) then
      loop ()
  in
  loop ()

let map_array ?domains f items =
  let domains = match domains with Some d -> d | None -> default_domains () in
  if domains <= 0 then invalid_arg "Pool.map: domains must be positive";
  let n = Array.length items in
  if domains = 1 || n <= 1 then Array.map f items
  else begin
    (* [results] is written at distinct indices by distinct domains and
       only read after every worker has been joined, so the plain array
       is race-free under the OCaml 5 memory model. *)
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failed = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get failed = None then begin
          (try results.(i) <- Some (f items.(i))
           with exn ->
             let bt = Printexc.get_raw_backtrace () in
             record_failure failed i exn bt);
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      (* the caller is worker number [domains]; never spawn more
         workers than items *)
      List.init (min (domains - 1) (n - 1)) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    match Atomic.get failed with
    | Some { exn; bt; _ } -> Printexc.raise_with_backtrace exn bt
    | None ->
      Array.map
        (function
          | Some r -> r
          | None -> invalid_arg "Pool.map: item skipped (worker aborted early)")
        results
  end

let map ?domains f items = Array.to_list (map_array ?domains f (Array.of_list items))
