(** Domain-based parallel map over independent work items.

    Every figure of the reproduction is a sweep of mutually independent
    [Runner.run] simulations; this pool fans them out across OCaml 5
    domains.  Scheduling is dynamic (an atomic next-item counter, so a
    slow item does not stall a whole chunk) but the output is
    deterministic: results come back in input order regardless of which
    domain computed what, and [map ~domains:1] is exactly [List.map].

    Only stdlib primitives are used ([Domain], [Atomic]); there is no
    dependency beyond the compiler. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count () - 1], clamped to at least 1:
    one domain per available core, keeping a core for the parent's
    bookkeeping on big machines while degrading to the sequential path
    on a single-core one. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f items] applies [f] to every item and returns the
    results in input order.

    [f] must be safe to call from another domain: it must not touch
    shared mutable state without synchronization.  Work is handed out
    one index at a time from an atomic counter (self-scheduling /
    work-stealing), so heterogeneous item costs balance automatically.
    The calling domain participates as a worker, so [~domains:n] uses
    [n] domains total, not [n] extra.

    [domains] defaults to {!default_domains}; values [<= 1] (or lists
    of fewer than two items) run sequentially in the calling domain
    with no domain spawned.  If [f] raises on any item, the first
    (lowest-index) exception observed is re-raised in the caller with
    its original backtrace, after every worker has stopped.

    @raise Invalid_argument if [domains <= 0]. *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Array variant of {!map}; same ordering and exception guarantees. *)
