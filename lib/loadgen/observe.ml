(* Per-run observability state: one trace ring, one metrics registry,
   one residual tracker and the completed-request log that supplies the
   residual's ground truth.  The runner owns the sampling tick; this
   module only holds state and turns it into a pure [output] at the end
   of the run, so results stay structurally comparable across runs and
   domains. *)

type config = { trace_capacity : int; sample_interval : Sim.Time.span }

let default_config = { trace_capacity = 65536; sample_interval = Sim.Time.ms 1 }

type output = {
  records : Sim.Trace.record list;
  dropped_records : int;
  samples : Sim.Metrics.sample list;
  residual_pairs : E2e.Residual.pair list;
  residual : E2e.Residual.summary option;
  audits : Sim.Audit.report list;
}

type t = {
  trace : Sim.Trace.t;
  metrics : Sim.Metrics.t;
  interval : Sim.Time.span;
  residual : E2e.Residual.t;
  audit : Sim.Audit.t;
  mutable audits : Sim.Audit.report list;
  mutable samples_rev : Sim.Metrics.sample list;
  mutable reqs_rev : (float * float) list;
      (* (completion time us, latency us), newest first *)
}

let create (cfg : config) =
  if cfg.sample_interval <= 0 then
    invalid_arg "Observe.create: sample_interval must be positive";
  let trace = Sim.Trace.create ~capacity:cfg.trace_capacity () in
  Sim.Trace.set_enabled trace true;
  {
    trace;
    metrics = Sim.Metrics.create ();
    interval = cfg.sample_interval;
    residual = E2e.Residual.create ();
    audit = Sim.Audit.create ();
    audits = [];
    samples_rev = [];
    reqs_rev = [];
  }

let trace t = t.trace
let metrics t = t.metrics
let interval t = t.interval
let audit t = t.audit

let finalize_audit t ~at =
  let reports = Sim.Audit.report t.audit ~at in
  t.audits <- reports;
  reports

let note_request ?(id = "client") t ~at ~latency =
  let latency_us = Sim.Time.to_us latency in
  t.reqs_rev <- (Sim.Time.to_us at, latency_us) :: t.reqs_rev;
  Sim.Trace.event t.trace ~at ~id (Sim.Trace.Request_done { latency_us })

(* Mean latency of requests completing in [(from_us, upto_us]]; the log
   is newest-first so the walk stops at the window's left edge. *)
let truth_over t ~from_us ~upto_us =
  let rec go sum n = function
    | (at, lat) :: rest ->
        if at > upto_us then go sum n rest
        else if at > from_us then go (sum +. lat) (n + 1) rest
        else (sum, n)
    | [] -> (sum, n)
  in
  let sum, n = go 0.0 0 t.reqs_rev in
  if n = 0 then None else Some (sum /. float_of_int n)

let note_residual t ~at ~window_us ~est_us =
  let at_us = Sim.Time.to_us at in
  match truth_over t ~from_us:(at_us -. window_us) ~upto_us:at_us with
  | Some truth_us ->
      E2e.Residual.observe t.residual ~at_us ~window_us ~est_us ~truth_us;
      Some truth_us
  | None -> None

let note_sample t s = t.samples_rev <- s :: t.samples_rev

let output t =
  {
    records = Sim.Trace.records t.trace;
    dropped_records = Sim.Trace.dropped t.trace;
    samples = List.rev t.samples_rev;
    residual_pairs = E2e.Residual.pairs t.residual;
    residual = E2e.Residual.summary t.residual;
    audits = t.audits;
  }
