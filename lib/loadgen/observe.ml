(* Per-run observability state: one trace ring, one metrics registry,
   one residual tracker, the completed-request log that supplies the
   residual's ground truth, and the SLO observatory — streaming
   per-tenant latency histograms with sliding-window burn rates.  The
   runner owns the sampling tick; this module only holds state and
   turns it into a pure [output] at the end of the run, so results
   stay structurally comparable across runs and domains. *)

type config = {
  trace_capacity : int;
  sample_interval : Sim.Time.span;
  trace_sink : (Sim.Trace.record -> unit) option;
  burn_window : Sim.Time.span;
}

let default_config =
  {
    trace_capacity = 65536;
    sample_interval = Sim.Time.ms 1;
    trace_sink = None;
    burn_window = Sim.Time.ms 10;
  }

(* One SLO tracker per declared id (the whole run, a tenant, or a
   single connection).  The completion log mirrors the request log's
   layout: sorted completion times plus a violation prefix sum, so a
   sliding window is two binary searches. *)
type slo_tracker = {
  slo_id : string;
  slo_us : float;
  histo : Sim.Histo.t;
  mutable s_at : float array; (* completion time us, oldest first *)
  mutable s_viol : int array; (* length n+1: violations prefix sum *)
  mutable s_n : int;
  mutable burn_rev : (float * float) list; (* (tick us, burn rate) *)
  mutable max_burn : float;
  mutable final_burn : float;
  mutable first_burn_us : float option;
}

type slo_report = {
  r_id : string;
  r_slo_us : float;
  r_total : int;
  r_violations : int;
  r_attainment : float;
  r_p50_us : float option;
  r_p95_us : float option;
  r_p99_us : float option;
  r_max_burn : float;
  r_final_burn : float;
  r_first_burn_us : float option;
  r_burn : (float * float) list;
}

type output = {
  records : Sim.Trace.record list;
  dropped_records : int;
  samples : Sim.Metrics.sample list;
  residual_pairs : E2e.Residual.pair list;
  residual : E2e.Residual.summary option;
  audits : Sim.Audit.report list;
  slo : slo_report list;
}

type t = {
  trace : Sim.Trace.t;
  metrics : Sim.Metrics.t;
  interval : Sim.Time.span;
  burn_window_us : float;
  residual : E2e.Residual.t;
  audit : Sim.Audit.t;
  mutable audits : Sim.Audit.report list;
  mutable samples_rev : Sim.Metrics.sample list;
  mutable slo_rev : slo_tracker list; (* declaration order, reversed *)
  slo_tbl : (string, slo_tracker) Hashtbl.t;
  (* Completed-request log as parallel growable arrays: completion
     times (nondecreasing — requests are logged at sim-now) and the
     prefix sums of their latencies, so [truth_over] answers any
     window in O(log n).  A linear newest-first walk here was
     quadratic over a whole run on static-batching configs, whose
     estimator window grows to span the entire run: every sampling
     tick re-walked every request completed so far. *)
  mutable req_at : float array;  (* completion time us, oldest first *)
  mutable req_prefix : float array;  (* length n+1; (i+1) = (i) + latency_us i *)
  mutable n_reqs : int;
}

let create (cfg : config) =
  if cfg.sample_interval <= 0 then
    invalid_arg "Observe.create: sample_interval must be positive";
  if cfg.burn_window <= 0 then
    invalid_arg "Observe.create: burn_window must be positive";
  let trace = Sim.Trace.create ~capacity:cfg.trace_capacity () in
  Sim.Trace.set_enabled trace true;
  Sim.Trace.set_sink trace cfg.trace_sink;
  {
    trace;
    metrics = Sim.Metrics.create ();
    interval = cfg.sample_interval;
    burn_window_us = Sim.Time.to_us cfg.burn_window;
    residual = E2e.Residual.create ();
    audit = Sim.Audit.create ();
    audits = [];
    samples_rev = [];
    slo_rev = [];
    slo_tbl = Hashtbl.create 8;
    req_at = [||];
    req_prefix = [| 0.0 |];
    n_reqs = 0;
  }

let trace t = t.trace
let metrics t = t.metrics
let interval t = t.interval
let audit t = t.audit

let finalize_audit t ~at =
  let reports = Sim.Audit.report t.audit ~at in
  t.audits <- reports;
  reports

(* {1 SLO observatory} *)

let declare_slo t ~at ~id ~slo_us =
  if (not (Float.is_finite slo_us)) || slo_us <= 0.0 then
    invalid_arg "Observe.declare_slo: slo_us must be positive and finite";
  if not (Hashtbl.mem t.slo_tbl id) then begin
    let tr =
      {
        slo_id = id;
        slo_us;
        histo = Sim.Histo.create ();
        s_at = [||];
        s_viol = [| 0 |];
        s_n = 0;
        burn_rev = [];
        max_burn = 0.0;
        final_burn = 0.0;
        first_burn_us = None;
      }
    in
    Hashtbl.add t.slo_tbl id tr;
    t.slo_rev <- tr :: t.slo_rev;
    (* A trace breadcrumb so offline tools ([e2ebench slo]/[report])
       can recover each id's declared SLO from the file alone. *)
    Sim.Trace.event t.trace ~at ~id
      (Sim.Trace.Message
         { tag = "slo_declared"; detail = Printf.sprintf "%.17g" slo_us })
  end

let slo_feed tr ~at_us ~latency_us =
  Sim.Histo.add tr.histo latency_us;
  let n = tr.s_n in
  if n = Array.length tr.s_at then begin
    let cap = Stdlib.max 1024 (2 * n) in
    let at' = Array.make cap 0.0 in
    Array.blit tr.s_at 0 at' 0 n;
    tr.s_at <- at';
    let v' = Array.make (cap + 1) 0 in
    Array.blit tr.s_viol 0 v' 0 (n + 1);
    tr.s_viol <- v'
  end;
  tr.s_at.(n) <- at_us;
  tr.s_viol.(n + 1) <- tr.s_viol.(n) + (if latency_us > tr.slo_us then 1 else 0);
  tr.s_n <- n + 1

let note_slo t ~id ~at ~latency =
  match Hashtbl.find_opt t.slo_tbl id with
  | Some tr ->
      slo_feed tr ~at_us:(Sim.Time.to_us at) ~latency_us:(Sim.Time.to_us latency)
  | None -> ()

(* First index whose completion time exceeds [bound] in a sorted
   array prefix. *)
let first_after_arr a n bound =
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) > bound then hi := mid else lo := mid + 1
  done;
  !lo

(* Error budget for an SLO judged at p99: 1% of requests may violate.
   Burn rate = (violation fraction over the window) / budget, so
   burn > 1 means the window is eating budget faster than sustainable
   ("The Site Reliability Workbook" multiwindow burn alerting). *)
let budget = 0.01

let slo_burn_over tr ~from_us ~upto_us =
  let i = first_after_arr tr.s_at tr.s_n from_us in
  let j = first_after_arr tr.s_at tr.s_n upto_us in
  if j <= i then 0.0
  else
    let viol = tr.s_viol.(j) - tr.s_viol.(i) in
    float_of_int viol /. float_of_int (j - i) /. budget

let slo_tick t ~at =
  let at_us = Sim.Time.to_us at in
  List.iter
    (fun tr ->
      let burn = slo_burn_over tr ~from_us:(at_us -. t.burn_window_us) ~upto_us:at_us in
      tr.burn_rev <- (at_us, burn) :: tr.burn_rev;
      tr.final_burn <- burn;
      if burn > tr.max_burn then tr.max_burn <- burn;
      if burn > 1.0 && tr.first_burn_us = None then tr.first_burn_us <- Some at_us;
      (* Re-stamp the declaration breadcrumb so it survives the trace
         ring on runs long enough to evict the original: offline tools
         only need any one instance within the retained window. *)
      if Sim.Trace.enabled t.trace then
        Sim.Trace.event t.trace ~at ~id:tr.slo_id
          (Sim.Trace.Message
             { tag = "slo_declared"; detail = Printf.sprintf "%.17g" tr.slo_us }))
    t.slo_rev

let slo_report_of tr =
  let q p = Sim.Histo.quantile tr.histo p in
  let total = tr.s_n in
  let violations = tr.s_viol.(total) in
  {
    r_id = tr.slo_id;
    r_slo_us = tr.slo_us;
    r_total = total;
    r_violations = violations;
    r_attainment =
      (if total = 0 then 1.0
       else 1.0 -. (float_of_int violations /. float_of_int total));
    r_p50_us = q 50.0;
    r_p95_us = q 95.0;
    r_p99_us = q 99.0;
    r_max_burn = tr.max_burn;
    r_final_burn = tr.final_burn;
    r_first_burn_us = tr.first_burn_us;
    r_burn = List.rev tr.burn_rev;
  }

let slo_reports t = List.rev_map slo_report_of t.slo_rev

let note_request ?(id = "client") t ~at ~latency =
  let latency_us = Sim.Time.to_us latency in
  let n = t.n_reqs in
  if n = Array.length t.req_at then begin
    let cap = Stdlib.max 1024 (2 * n) in
    let at' = Array.make cap 0.0 in
    Array.blit t.req_at 0 at' 0 n;
    t.req_at <- at';
    let pf' = Array.make (cap + 1) 0.0 in
    Array.blit t.req_prefix 0 pf' 0 (n + 1);
    t.req_prefix <- pf'
  end;
  let at_us = Sim.Time.to_us at in
  t.req_at.(n) <- at_us;
  t.req_prefix.(n + 1) <- t.req_prefix.(n) +. latency_us;
  t.n_reqs <- n + 1;
  (match Hashtbl.find_opt t.slo_tbl id with
  | Some tr -> slo_feed tr ~at_us ~latency_us
  | None -> ());
  Sim.Trace.event t.trace ~at ~id (Sim.Trace.Request_done { latency_us })

(* First index whose completion time exceeds [bound] — the log is
   sorted, so a window's edges are two binary searches. *)
let first_after t bound = first_after_arr t.req_at t.n_reqs bound

(* Mean latency of requests completing in [(from_us, upto_us]]. *)
let truth_over t ~from_us ~upto_us =
  let i = first_after t from_us in
  let j = first_after t upto_us in
  if j <= i then None
  else Some ((t.req_prefix.(j) -. t.req_prefix.(i)) /. float_of_int (j - i))

let note_residual t ~at ~window_us ~est_us =
  let at_us = Sim.Time.to_us at in
  match truth_over t ~from_us:(at_us -. window_us) ~upto_us:at_us with
  | Some truth_us ->
      E2e.Residual.observe t.residual ~at_us ~window_us ~est_us ~truth_us;
      Some truth_us
  | None -> None

let note_sample t s = t.samples_rev <- s :: t.samples_rev

let output t =
  {
    records = Sim.Trace.records t.trace;
    dropped_records = Sim.Trace.dropped t.trace;
    samples = List.rev t.samples_rev;
    residual_pairs = E2e.Residual.pairs t.residual;
    residual = E2e.Residual.summary t.residual;
    audits = t.audits;
    slo = slo_reports t;
  }
