(* Per-run observability state: one trace ring, one metrics registry,
   one residual tracker and the completed-request log that supplies the
   residual's ground truth.  The runner owns the sampling tick; this
   module only holds state and turns it into a pure [output] at the end
   of the run, so results stay structurally comparable across runs and
   domains. *)

type config = {
  trace_capacity : int;
  sample_interval : Sim.Time.span;
  trace_sink : (Sim.Trace.record -> unit) option;
}

let default_config =
  { trace_capacity = 65536; sample_interval = Sim.Time.ms 1; trace_sink = None }

type output = {
  records : Sim.Trace.record list;
  dropped_records : int;
  samples : Sim.Metrics.sample list;
  residual_pairs : E2e.Residual.pair list;
  residual : E2e.Residual.summary option;
  audits : Sim.Audit.report list;
}

type t = {
  trace : Sim.Trace.t;
  metrics : Sim.Metrics.t;
  interval : Sim.Time.span;
  residual : E2e.Residual.t;
  audit : Sim.Audit.t;
  mutable audits : Sim.Audit.report list;
  mutable samples_rev : Sim.Metrics.sample list;
  (* Completed-request log as parallel growable arrays: completion
     times (nondecreasing — requests are logged at sim-now) and the
     prefix sums of their latencies, so [truth_over] answers any
     window in O(log n).  A linear newest-first walk here was
     quadratic over a whole run on static-batching configs, whose
     estimator window grows to span the entire run: every sampling
     tick re-walked every request completed so far. *)
  mutable req_at : float array;  (* completion time us, oldest first *)
  mutable req_prefix : float array;  (* length n+1; (i+1) = (i) + latency_us i *)
  mutable n_reqs : int;
}

let create (cfg : config) =
  if cfg.sample_interval <= 0 then
    invalid_arg "Observe.create: sample_interval must be positive";
  let trace = Sim.Trace.create ~capacity:cfg.trace_capacity () in
  Sim.Trace.set_enabled trace true;
  Sim.Trace.set_sink trace cfg.trace_sink;
  {
    trace;
    metrics = Sim.Metrics.create ();
    interval = cfg.sample_interval;
    residual = E2e.Residual.create ();
    audit = Sim.Audit.create ();
    audits = [];
    samples_rev = [];
    req_at = [||];
    req_prefix = [| 0.0 |];
    n_reqs = 0;
  }

let trace t = t.trace
let metrics t = t.metrics
let interval t = t.interval
let audit t = t.audit

let finalize_audit t ~at =
  let reports = Sim.Audit.report t.audit ~at in
  t.audits <- reports;
  reports

let note_request ?(id = "client") t ~at ~latency =
  let latency_us = Sim.Time.to_us latency in
  let n = t.n_reqs in
  if n = Array.length t.req_at then begin
    let cap = Stdlib.max 1024 (2 * n) in
    let at' = Array.make cap 0.0 in
    Array.blit t.req_at 0 at' 0 n;
    t.req_at <- at';
    let pf' = Array.make (cap + 1) 0.0 in
    Array.blit t.req_prefix 0 pf' 0 (n + 1);
    t.req_prefix <- pf'
  end;
  t.req_at.(n) <- Sim.Time.to_us at;
  t.req_prefix.(n + 1) <- t.req_prefix.(n) +. latency_us;
  t.n_reqs <- n + 1;
  Sim.Trace.event t.trace ~at ~id (Sim.Trace.Request_done { latency_us })

(* First index whose completion time exceeds [bound] — the log is
   sorted, so a window's edges are two binary searches. *)
let first_after t bound =
  let lo = ref 0 and hi = ref t.n_reqs in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.req_at.(mid) > bound then hi := mid else lo := mid + 1
  done;
  !lo

(* Mean latency of requests completing in [(from_us, upto_us]]. *)
let truth_over t ~from_us ~upto_us =
  let i = first_after t from_us in
  let j = first_after t upto_us in
  if j <= i then None
  else Some ((t.req_prefix.(j) -. t.req_prefix.(i)) /. float_of_int (j - i))

let note_residual t ~at ~window_us ~est_us =
  let at_us = Sim.Time.to_us at in
  match truth_over t ~from_us:(at_us -. window_us) ~upto_us:at_us with
  | Some truth_us ->
      E2e.Residual.observe t.residual ~at_us ~window_us ~est_us ~truth_us;
      Some truth_us
  | None -> None

let note_sample t s = t.samples_rev <- s :: t.samples_rev

let output t =
  {
    records = Sim.Trace.records t.trace;
    dropped_records = Sim.Trace.dropped t.trace;
    samples = List.rev t.samples_rev;
    residual_pairs = E2e.Residual.pairs t.residual;
    residual = E2e.Residual.summary t.residual;
    audits = t.audits;
  }
