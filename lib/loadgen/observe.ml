(* Per-run observability state: one trace ring, one metrics registry,
   one residual tracker, the completed-request log that supplies the
   residual's ground truth, and the SLO observatory — streaming
   per-tenant latency histograms with sliding-window burn rates.  The
   runner owns the sampling tick; this module only holds state and
   turns it into a pure [output] at the end of the run, so results
   stay structurally comparable across runs and domains. *)

type config = {
  trace_capacity : int;
  sample_interval : Sim.Time.span;
  trace_sink : (Sim.Trace.record -> unit) option;
  burn_window : Sim.Time.span;
  settling : bool;
}

let default_config =
  {
    trace_capacity = 65536;
    sample_interval = Sim.Time.ms 1;
    trace_sink = None;
    burn_window = Sim.Time.ms 10;
    settling = true;
  }

(* One SLO tracker per declared id (the whole run, a tenant, or a
   single connection).  The completion log mirrors the request log's
   layout: sorted completion times plus a violation prefix sum, so a
   sliding window is two binary searches. *)
type slo_tracker = {
  slo_id : string;
  slo_us : float;
  histo : Sim.Histo.t;
  mutable s_at : float array; (* completion time us, oldest first *)
  mutable s_viol : int array; (* length n+1: violations prefix sum *)
  mutable s_n : int;
  mutable burn_rev : (float * float) list; (* (tick us, burn rate) *)
  mutable max_burn : float;
  mutable final_burn : float;
  mutable first_burn_us : float option;
}

type slo_report = {
  r_id : string;
  r_slo_us : float;
  r_total : int;
  r_violations : int;
  r_attainment : float;
  r_p50_us : float option;
  r_p95_us : float option;
  r_p99_us : float option;
  r_max_burn : float;
  r_final_burn : float;
  r_first_burn_us : float option;
  r_burn : (float * float) list;
}

(* One settling tracker per id: the envelope edges / churn bursts to
   re-converge from, plus the per-tick estimate and mode time series to
   judge re-convergence on.  Passive bookkeeping only — no engine
   interaction — so tracking settling cannot perturb a run. *)
type settle_tracker = {
  set_id : string;
  mutable edges_rev : float list;  (* edge instants, us *)
  mutable est_rev : (float * float) list;  (* (tick us, est latency us) *)
  mutable mode_rev : (float * float) list;  (* (tick us, nagle-on fraction) *)
}

type settle_report = {
  g_id : string;
  g_edge_us : float;
  g_end_us : float;  (* segment end: next edge or end of run *)
  g_steady_us : float option;  (* tail-median steady estimate of the segment *)
  g_settle_us : float option;  (* edge -> lasting in-band estimate *)
  g_mode_settle_us : float option;  (* edge -> lasting in-band mode fraction *)
  g_settled : bool;  (* both settle times found within the segment *)
}

type output = {
  records : Sim.Trace.record list;
  dropped_records : int;
  samples : Sim.Metrics.sample list;
  residual_pairs : E2e.Residual.pair list;
  residual : E2e.Residual.summary option;
  audits : Sim.Audit.report list;
  slo : slo_report list;
  settling : settle_report list;
}

type t = {
  trace : Sim.Trace.t;
  metrics : Sim.Metrics.t;
  interval : Sim.Time.span;
  burn_window_us : float;
  residual : E2e.Residual.t;
  audit : Sim.Audit.t;
  mutable audits : Sim.Audit.report list;
  mutable samples_rev : Sim.Metrics.sample list;
  mutable slo_rev : slo_tracker list; (* declaration order, reversed *)
  slo_tbl : (string, slo_tracker) Hashtbl.t;
  settling_on : bool;
  mutable settle_rev : settle_tracker list; (* declaration order, reversed *)
  settle_tbl : (string, settle_tracker) Hashtbl.t;
  (* Completed-request log as parallel growable arrays: completion
     times (nondecreasing — requests are logged at sim-now) and the
     prefix sums of their latencies, so [truth_over] answers any
     window in O(log n).  A linear newest-first walk here was
     quadratic over a whole run on static-batching configs, whose
     estimator window grows to span the entire run: every sampling
     tick re-walked every request completed so far. *)
  mutable req_at : float array;  (* completion time us, oldest first *)
  mutable req_prefix : float array;  (* length n+1; (i+1) = (i) + latency_us i *)
  mutable n_reqs : int;
}

let create (cfg : config) =
  if cfg.sample_interval <= 0 then
    invalid_arg "Observe.create: sample_interval must be positive";
  if cfg.burn_window <= 0 then
    invalid_arg "Observe.create: burn_window must be positive";
  let trace = Sim.Trace.create ~capacity:cfg.trace_capacity () in
  Sim.Trace.set_enabled trace true;
  Sim.Trace.set_sink trace cfg.trace_sink;
  {
    trace;
    metrics = Sim.Metrics.create ();
    interval = cfg.sample_interval;
    burn_window_us = Sim.Time.to_us cfg.burn_window;
    residual = E2e.Residual.create ();
    audit = Sim.Audit.create ();
    audits = [];
    samples_rev = [];
    slo_rev = [];
    slo_tbl = Hashtbl.create 8;
    settling_on = cfg.settling;
    settle_rev = [];
    settle_tbl = Hashtbl.create 8;
    req_at = [||];
    req_prefix = [| 0.0 |];
    n_reqs = 0;
  }

let trace t = t.trace
let metrics t = t.metrics
let interval t = t.interval
let audit t = t.audit

let finalize_audit t ~at =
  let reports = Sim.Audit.report t.audit ~at in
  t.audits <- reports;
  reports

(* {1 SLO observatory} *)

let declare_slo t ~at ~id ~slo_us =
  if (not (Float.is_finite slo_us)) || slo_us <= 0.0 then
    invalid_arg "Observe.declare_slo: slo_us must be positive and finite";
  if not (Hashtbl.mem t.slo_tbl id) then begin
    let tr =
      {
        slo_id = id;
        slo_us;
        histo = Sim.Histo.create ();
        s_at = [||];
        s_viol = [| 0 |];
        s_n = 0;
        burn_rev = [];
        max_burn = 0.0;
        final_burn = 0.0;
        first_burn_us = None;
      }
    in
    Hashtbl.add t.slo_tbl id tr;
    t.slo_rev <- tr :: t.slo_rev;
    (* A trace breadcrumb so offline tools ([e2ebench slo]/[report])
       can recover each id's declared SLO from the file alone. *)
    Sim.Trace.event t.trace ~at ~id
      (Sim.Trace.Message
         { tag = "slo_declared"; detail = Printf.sprintf "%.17g" slo_us })
  end

let slo_feed tr ~at_us ~latency_us =
  Sim.Histo.add tr.histo latency_us;
  let n = tr.s_n in
  if n = Array.length tr.s_at then begin
    let cap = Stdlib.max 1024 (2 * n) in
    let at' = Array.make cap 0.0 in
    Array.blit tr.s_at 0 at' 0 n;
    tr.s_at <- at';
    let v' = Array.make (cap + 1) 0 in
    Array.blit tr.s_viol 0 v' 0 (n + 1);
    tr.s_viol <- v'
  end;
  tr.s_at.(n) <- at_us;
  tr.s_viol.(n + 1) <- tr.s_viol.(n) + (if latency_us > tr.slo_us then 1 else 0);
  tr.s_n <- n + 1

let note_slo t ~id ~at ~latency =
  match Hashtbl.find_opt t.slo_tbl id with
  | Some tr ->
      slo_feed tr ~at_us:(Sim.Time.to_us at) ~latency_us:(Sim.Time.to_us latency)
  | None -> ()

(* First index whose completion time exceeds [bound] in a sorted
   array prefix. *)
let first_after_arr a n bound =
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) > bound then hi := mid else lo := mid + 1
  done;
  !lo

(* Error budget for an SLO judged at p99: 1% of requests may violate.
   Burn rate = (violation fraction over the window) / budget, so
   burn > 1 means the window is eating budget faster than sustainable
   ("The Site Reliability Workbook" multiwindow burn alerting). *)
let budget = 0.01

let slo_burn_over tr ~from_us ~upto_us =
  let i = first_after_arr tr.s_at tr.s_n from_us in
  let j = first_after_arr tr.s_at tr.s_n upto_us in
  if j <= i then 0.0
  else
    let viol = tr.s_viol.(j) - tr.s_viol.(i) in
    float_of_int viol /. float_of_int (j - i) /. budget

let slo_tick t ~at =
  let at_us = Sim.Time.to_us at in
  List.iter
    (fun tr ->
      let burn = slo_burn_over tr ~from_us:(at_us -. t.burn_window_us) ~upto_us:at_us in
      tr.burn_rev <- (at_us, burn) :: tr.burn_rev;
      tr.final_burn <- burn;
      if burn > tr.max_burn then tr.max_burn <- burn;
      if burn > 1.0 && tr.first_burn_us = None then tr.first_burn_us <- Some at_us;
      (* Re-stamp the declaration breadcrumb so it survives the trace
         ring on runs long enough to evict the original: offline tools
         only need any one instance within the retained window. *)
      if Sim.Trace.enabled t.trace then
        Sim.Trace.event t.trace ~at ~id:tr.slo_id
          (Sim.Trace.Message
             { tag = "slo_declared"; detail = Printf.sprintf "%.17g" tr.slo_us }))
    t.slo_rev

let slo_report_of tr =
  let q p = Sim.Histo.quantile tr.histo p in
  let total = tr.s_n in
  let violations = tr.s_viol.(total) in
  {
    r_id = tr.slo_id;
    r_slo_us = tr.slo_us;
    r_total = total;
    r_violations = violations;
    r_attainment =
      (if total = 0 then 1.0
       else 1.0 -. (float_of_int violations /. float_of_int total));
    r_p50_us = q 50.0;
    r_p95_us = q 95.0;
    r_p99_us = q 99.0;
    r_max_burn = tr.max_burn;
    r_final_burn = tr.final_burn;
    r_first_burn_us = tr.first_burn_us;
    r_burn = List.rev tr.burn_rev;
  }

let slo_reports t = List.rev_map slo_report_of t.slo_rev

let note_request ?(id = "client") t ~at ~latency =
  let latency_us = Sim.Time.to_us latency in
  let n = t.n_reqs in
  if n = Array.length t.req_at then begin
    let cap = Stdlib.max 1024 (2 * n) in
    let at' = Array.make cap 0.0 in
    Array.blit t.req_at 0 at' 0 n;
    t.req_at <- at';
    let pf' = Array.make (cap + 1) 0.0 in
    Array.blit t.req_prefix 0 pf' 0 (n + 1);
    t.req_prefix <- pf'
  end;
  let at_us = Sim.Time.to_us at in
  t.req_at.(n) <- at_us;
  t.req_prefix.(n + 1) <- t.req_prefix.(n) +. latency_us;
  t.n_reqs <- n + 1;
  (match Hashtbl.find_opt t.slo_tbl id with
  | Some tr -> slo_feed tr ~at_us ~latency_us
  | None -> ());
  Sim.Trace.event t.trace ~at ~id (Sim.Trace.Request_done { latency_us })

(* First index whose completion time exceeds [bound] — the log is
   sorted, so a window's edges are two binary searches. *)
let first_after t bound = first_after_arr t.req_at t.n_reqs bound

(* Mean latency of requests completing in [(from_us, upto_us]]. *)
let truth_over t ~from_us ~upto_us =
  let i = first_after t from_us in
  let j = first_after t upto_us in
  if j <= i then None
  else Some ((t.req_prefix.(j) -. t.req_prefix.(i)) /. float_of_int (j - i))

let note_residual t ~at ~window_us ~est_us =
  let at_us = Sim.Time.to_us at in
  match truth_over t ~from_us:(at_us -. window_us) ~upto_us:at_us with
  | Some truth_us ->
      E2e.Residual.observe t.residual ~at_us ~window_us ~est_us ~truth_us;
      Some truth_us
  | None -> None

let note_sample t s = t.samples_rev <- s :: t.samples_rev

(* {1 Settling-time tracker} *)

let settle_tracker_of t id =
  match Hashtbl.find_opt t.settle_tbl id with
  | Some tr -> tr
  | None ->
    let tr = { set_id = id; edges_rev = []; est_rev = []; mode_rev = [] } in
    Hashtbl.add t.settle_tbl id tr;
    t.settle_rev <- tr :: t.settle_rev;
    tr

let note_edge t ~id ~at =
  if t.settling_on then begin
    let tr = settle_tracker_of t id in
    tr.edges_rev <- Sim.Time.to_us at :: tr.edges_rev;
    (* Breadcrumb so offline tools can recompute settling from the
       trace file alone. *)
    Sim.Trace.event t.trace ~at ~id
      (Sim.Trace.Message { tag = "edge"; detail = Printf.sprintf "%.17g" (Sim.Time.to_us at) })
  end

let note_settle t ~id ~at ~est_us ~nagle_frac =
  if t.settling_on then begin
    let tr = settle_tracker_of t id in
    let at_us = Sim.Time.to_us at in
    (match est_us with
    | Some v when Float.is_finite v -> tr.est_rev <- (at_us, v) :: tr.est_rev
    | Some _ | None -> ());
    if Float.is_finite nagle_frac then
      tr.mode_rev <- (at_us, nagle_frac) :: tr.mode_rev
  end

(* Tolerances: an estimate has re-converged when it is back within
   ±25% (floored at 60 µs of absolute slack) of the segment's eventual
   steady value; the mode fraction within ±0.34 — wide enough that one
   per-conn group's ε-exploration flip in a small population does not
   count as unsettled.  The absolute floor matters at low latencies:
   per-tick aggregate estimator peeks read partial windows, so even an
   unsaturated steady state jitters by tens of µs tick to tick. *)
let settle_rel_tol = 0.25
let settle_abs_floor_us = 60.0
let mode_abs_tol = 0.34

let median = function
  | [] -> None
  | l ->
    let a = Array.of_list l in
    Array.sort compare a;
    Some a.(Array.length a / 2)

(* Centered median-of-5 filter (window clamped at the ends).  Per-tick
   estimator peeks are spiky — a single partial window or one group's
   ε-exploration flip can double the aggregate for a tick — and a
   settling judgement on the raw series would never hold a band.  The
   median filter removes isolated excursions while adding only two
   ticks of lag, so genuine regime shifts still register. *)
let median5 arr =
  let n = Array.length arr in
  Array.init n (fun i ->
      let lo = Stdlib.max 0 (i - 2) and hi = Stdlib.min (n - 1) (i + 2) in
      let w = Array.sub arr lo (hi - lo + 1) in
      Array.sort compare w;
      w.(Array.length w / 2))

(* Time from [edge] until the (median-filtered) series stays within
   the band around its eventual steady value (tail median of the
   segment) for the rest of the segment.  The sample at exactly
   [seg_end] is excluded — events scheduled at the edge (churn epochs,
   envelope flips) run before the same-timestamp observation tick, so
   that sample already reflects the next regime.  [None] when the
   segment has too few samples or the series never holds the band. *)
let settle_of_series samples ~edge ~seg_end ~band =
  let seg =
    List.filter (fun (at, _) -> at > edge && at < seg_end) samples
  in
  let n = List.length seg in
  if n < 4 then (None, None)
  else begin
    let ats = Array.of_list (List.map fst seg) in
    let vals = median5 (Array.of_list (List.map snd seg)) in
    (* Steady value: median of the last quarter (at least 3 samples). *)
    let tail_n = Stdlib.max 3 (n / 4) in
    let tail = Array.to_list (Array.sub vals (n - tail_n) tail_n) in
    match median tail with
    | None -> (None, None)
    | Some steady ->
      let tol = band steady in
      let in_band v = Float.abs (v -. steady) <= tol in
      (* Earliest sample from which every later sample stays in band. *)
      let entry = ref None in
      Array.iteri
        (fun i v ->
          if in_band v then begin
            if !entry = None then entry := Some ats.(i)
          end
          else entry := None)
        vals;
      (Some steady, Option.map (fun at -> at -. edge) !entry)
  end

let judge_settle samples ~edge_us ~end_us ~kind =
  let band =
    match kind with
    | `Estimate ->
      fun steady ->
        Stdlib.max (settle_rel_tol *. Float.abs steady) settle_abs_floor_us
    | `Mode -> fun _ -> mode_abs_tol
  in
  settle_of_series samples ~edge:edge_us ~seg_end:end_us ~band

let settle_report_of tr ~until_us =
  (* An edge at (or past) the end of the run opens a zero-length
     segment with nothing to judge — drop it. *)
  let edges =
    List.filter
      (fun e -> e < until_us)
      (List.sort_uniq compare (List.rev tr.edges_rev))
  in
  let ests = List.rev tr.est_rev in
  let modes = List.rev tr.mode_rev in
  let rec segments = function
    | [] -> []
    | edge :: rest ->
      let seg_end = match rest with e :: _ -> e | [] -> until_us in
      (edge, seg_end) :: segments rest
  in
  List.map
    (fun (edge, seg_end) ->
      let steady, settle =
        settle_of_series ests ~edge ~seg_end ~band:(fun steady ->
            Stdlib.max (settle_rel_tol *. Float.abs steady) settle_abs_floor_us)
      in
      let _, mode_settle =
        settle_of_series modes ~edge ~seg_end ~band:(fun _ -> mode_abs_tol)
      in
      {
        g_id = tr.set_id;
        g_edge_us = edge;
        g_end_us = seg_end;
        g_steady_us = steady;
        g_settle_us = settle;
        g_mode_settle_us = (if modes = [] then None else mode_settle);
        g_settled =
          settle <> None && (modes = [] || mode_settle <> None);
      })
    (segments edges)

let settle_reports t ~until_us =
  List.concat_map (fun tr -> settle_report_of tr ~until_us) (List.rev t.settle_rev)

let output ?(until_us = 0.0) t =
  let until_us =
    (* Default: judge settling up to the last observed sample/edge. *)
    if until_us > 0.0 then until_us
    else
      List.fold_left
        (fun acc tr ->
          let m = function [] -> acc | (at, _) :: _ -> Stdlib.max acc at in
          Stdlib.max (m tr.est_rev) (m tr.mode_rev))
        0.0 t.settle_rev
  in
  {
    records = Sim.Trace.records t.trace;
    dropped_records = Sim.Trace.dropped t.trace;
    samples = List.rev t.samples_rev;
    residual_pairs = E2e.Residual.pairs t.residual;
    residual = E2e.Residual.summary t.residual;
    audits = t.audits;
    slo = slo_reports t;
    settling = settle_reports t ~until_us;
  }
