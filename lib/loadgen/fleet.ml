(* Heterogeneous multi-tenant fleet: N tenants, each with its own
   client host (app CPU + IRQ CPU, optionally VM-priced), arrival
   process, workload, link and SLO, all driving one shared server (one
   app core, one IRQ core — Redis is single-threaded).  Batching is
   controlled by {!Control} groups whose granularity is the [scope]
   knob: one group spanning the fleet, one per tenant, or one per
   connection with its own toggler/estimator/degrade state.

   Time-varying load: each tenant's arrival process can be wrapped in
   an {!Arrival.envelope}, and tenants may declare connection [churn] —
   Poisson connect/disconnect rates or scripted epochs.  Connections
   spawned mid-run enter TCP slow-start ([cc_enabled]) and the
   estimator cold-start path; departing connections drain outstanding
   requests and FIN cleanly.  Envelope-free, churn-free configs take
   none of these paths and split no extra rng streams, so their results
   stay bit-identical to the fixed-population implementation. *)

type scope = Global | Per_tenant | Per_conn

let scope_label = function
  | Global -> "global"
  | Per_tenant -> "per_tenant"
  | Per_conn -> "per_conn"

type churn = {
  arrive_rps : float;  (* Poisson connection-arrival rate; 0 disables *)
  depart_rps : float;  (* Poisson departure rate; 0 disables *)
  min_conns : int;  (* departures below this floor are refused *)
  max_conns : int;  (* arrivals above this cap are dropped *)
  script : (Sim.Time.t * int) list;  (* scripted (at, ±n) epochs *)
}

let no_churn = { arrive_rps = 0.0; depart_rps = 0.0; min_conns = 1; max_conns = 64; script = [] }

type tenant = {
  name : string;
  n_conns : int;
  rate_rps : float;
  burst : int;
  workload : Workload.t;
  cpu_multiplier : float;
  link : Tcp.Conn.link_params;
  slo_us : float;
  batching : Control.batching;
  envelope : Arrival.envelope;
  replay_gaps : int array option;
  churn : churn option;
}

let default_tenant ~name ~rate_rps =
  {
    name;
    n_conns = 1;
    rate_rps;
    burst = 1;
    workload = Workload.paper_set_only;
    cpu_multiplier = 1.0;
    link = Tcp.Conn.default_link;
    slo_us = Runner.slo_us;
    batching = Control.Static_off;
    envelope = Arrival.Flat;
    replay_gaps = None;
    churn = None;
  }

type config = {
  seed : int;
  warmup : Sim.Time.span;
  duration : Sim.Time.span;
  scope : scope;
  batching : Control.batching;
  server : Kv.Server.config;
  client : Kv.Client.config;
  observe : Observe.config option;
  cold_start_inherit : bool;
  cores : int;  (* server shards; 1 = the unsharded tier *)
  lb : Shard.Lb.policy;  (* connection -> shard assignment policy *)
  tenants : tenant list;
}

let default_config ~tenants =
  {
    seed = 42;
    warmup = Sim.Time.ms 100;
    duration = Sim.Time.ms 400;
    scope = Global;
    batching = Control.Static_off;
    server = Kv.Server.default_config;
    client = Kv.Client.default_config;
    observe = None;
    cold_start_inherit = true;
    cores = 1;
    lb = Shard.Lb.Consistent_hash;
    tenants;
  }

type tenant_result = {
  t_name : string;
  t_offered_rps : float;
  t_achieved_rps : float;
  t_completed : int;
  t_issued : int;
  t_completed_total : int;
  t_outstanding_end : int;
  t_mean_us : float;
  t_p50_us : float;
  t_p99_us : float;
  t_under_slo : float;
  t_estimated_us : float option;
  t_estimated_tput_rps : float;
  t_client_app_util : float;
  t_nagle_toggles : int;
  t_conns_opened : int;
  t_conns_closed : int;
}

type shard_result = {
  sh_index : int;
  sh_conns : int;
  sh_issued : int;
  sh_completed_total : int;
  sh_outstanding_end : int;
  sh_completed : int;
  sh_achieved_rps : float;
  sh_mean_us : float;
  sh_p99_us : float;
  sh_app_util : float;
  sh_irq_util : float;
}

type result = {
  tenants : tenant_result list;
  shards : shard_result list;
  fleet_achieved_rps : float;
  fleet_mean_us : float;
  fleet_p99_us : float;
  goodput_max_min_ratio : float option;
  goodput_jain : float option;
  server_app_util : float;
  server_irq_util : float;
  final_modes : (string * E2e.Toggler.mode) list;
  observability : Observe.output option;
}

let validate_churn name c =
  let bad msg =
    invalid_arg (Printf.sprintf "Fleet.run: tenant %s: %s" name msg)
  in
  if (not (Float.is_finite c.arrive_rps)) || c.arrive_rps < 0.0 then
    bad "churn arrive_rps must be finite and non-negative";
  if (not (Float.is_finite c.depart_rps)) || c.depart_rps < 0.0 then
    bad "churn depart_rps must be finite and non-negative";
  if c.min_conns < 1 then bad "churn min_conns must be at least 1";
  if c.max_conns < c.min_conns then bad "churn max_conns must be >= min_conns";
  List.iter
    (fun (at, delta) ->
      if at < 0 then bad "churn script times must be non-negative";
      if delta = 0 then bad "churn script deltas must be non-zero")
    c.script

let validate_tenant t =
  if t.name = "" then invalid_arg "Fleet.run: tenant name must be non-empty";
  String.iter
    (fun c ->
      if c = '/' || c = ' ' || c = '\t' then
        invalid_arg
          (Printf.sprintf "Fleet.run: tenant name %S may not contain '/' or whitespace"
             t.name))
    t.name;
  if t.n_conns < 1 then
    invalid_arg (Printf.sprintf "Fleet.run: tenant %s: n_conns must be at least 1" t.name);
  if (not (Float.is_finite t.rate_rps)) || t.rate_rps <= 0.0 then
    invalid_arg
      (Printf.sprintf "Fleet.run: tenant %s: rate_rps must be positive and finite" t.name);
  if t.burst < 1 then
    invalid_arg (Printf.sprintf "Fleet.run: tenant %s: burst must be at least 1" t.name);
  if (not (Float.is_finite t.cpu_multiplier)) || t.cpu_multiplier <= 0.0 then
    invalid_arg
      (Printf.sprintf "Fleet.run: tenant %s: cpu_multiplier must be positive" t.name);
  if (not (Float.is_finite t.slo_us)) || t.slo_us <= 0.0 then
    invalid_arg (Printf.sprintf "Fleet.run: tenant %s: slo_us must be positive" t.name);
  match t.churn with
  | None -> ()
  | Some c ->
    validate_churn t.name c;
    if t.n_conns < c.min_conns || t.n_conns > c.max_conns then
      invalid_arg
        (Printf.sprintf
           "Fleet.run: tenant %s: n_conns must lie within churn [min_conns, max_conns]"
           t.name)

(* One connection's lifetime state.  [gen] is 0 for run-start
   connections and the per-tenant spawn ordinal for churn arrivals;
   [accepting] keeps the entry in the issue rotation, [retired] marks a
   fully drained-and-closed departure (kept for lifetime accounting). *)
type conn_entry = {
  gen : int;
  shard : int;  (* backend shard this connection is steered to *)
  client : Kv.Client.t;
  csock : Tcp.Socket.t;
  ssock : Tcp.Socket.t;
  mutable accepting : bool;
  mutable retired : bool;
  mutable egroup : Control.t option;
  mutable on_complete : latency:Sim.Time.span -> Kv.Resp.value -> unit;
}

(* Everything one tenant owns at runtime.  [entries] holds every
   connection the tenant ever had in a flat slot pool (handles are
   ascending spawn order, never freed, so lifetime accounting
   (issued = completed + outstanding) covers departed connections and
   10^5+-connection tenants cost one flat array instead of a list
   spine the GC must walk). *)
type tenant_state = {
  spec : tenant;
  mode : Control.batching;  (* after applying the scope *)
  client_cpu : Sim.Cpu.t;
  client_irq : Sim.Cpu.t;
  store : Kv.Store.t;
  conns0 : Tcp.Conn.t list;  (* run-start connections, for trace wiring *)
  recorder : Recorder.t;
  workload_rng : Sim.Rng.t;
  arrival : Arrival.t;
  entries : conn_entry Shard.Flat.t;
  mutable next_gen : int;
  mutable opened_mid : int;
  mutable closed_mid : int;
  mutable rotation : conn_entry array;
  next_client : int ref;
}

let ns_opt_to_us = Option.map (fun ns -> ns /. 1e3)

(* Live slots in ascending handle order — the old oldest-first list
   order, for every iteration below that depends on it. *)
let entries_list s =
  List.rev (Shard.Flat.fold s.entries ~init:[] ~f:(fun acc _ e -> e :: acc))

let iter_entries s ~f = Shard.Flat.iter s.entries ~f:(fun _ e -> f e)

let fold_entries s ~init ~f =
  Shard.Flat.fold s.entries ~init ~f:(fun acc _ e -> f acc e)

let rebuild_rotation s =
  let n = fold_entries s ~init:0 ~f:(fun n e -> if e.accepting then n + 1 else n) in
  if n = 0 then s.rotation <- [||]
  else begin
    (* Seed the array with any entry to avoid an option box per slot,
       then overwrite in ascending-handle order. *)
    let seed = ref None in
    (try
       iter_entries s ~f:(fun e ->
           if e.accepting then begin
             seed := Some e;
             raise Exit
           end)
     with Exit -> ());
    match !seed with
    | None -> s.rotation <- [||]
    | Some e0 ->
      let a = Array.make n e0 in
      let i = ref 0 in
      iter_entries s ~f:(fun e ->
          if e.accepting then begin
            a.(!i) <- e;
            incr i
          end);
      s.rotation <- a
  end

let accepting_count s = Array.length s.rotation

let live_entries s =
  List.rev
    (fold_entries s ~init:[] ~f:(fun acc e ->
         if e.retired then acc else e :: acc))

let run (cfg : config) =
  if cfg.tenants = [] then invalid_arg "Fleet.run: at least one tenant required";
  if cfg.cores < 1 then invalid_arg "Fleet.run: cores must be at least 1";
  List.iter validate_tenant cfg.tenants;
  let names = List.map (fun t -> t.name) cfg.tenants in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Fleet.run: tenant names must be unique";
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed:cfg.seed in
  let warmup_until = cfg.warmup in
  let total = cfg.warmup + cfg.duration in
  (* Sharded server tier: [cores] simulated cores, each with a private
     app CPU (its run queue) and IRQ CPU.  With [cores = 1] this is the
     classic shared single-core server (contention for which is the
     coupling that makes global batching decisions unfair), created in
     exactly the pre-sharding CPU order so such runs stay
     bit-identical.  The front load balancer assigns each connection a
     shard (deterministic, rng-free policies — no stream splits), and
     the RSS steering table is pinned to agree so repinning stays an
     explicit, observable operation. *)
  let cores = cfg.cores in
  let pool = Shard.Pool.create engine ~cores in
  let lb = Shard.Lb.create ~policy:cfg.lb ~shards:cores in
  let steer = Shard.Steer.create ~shards:cores in
  (* Per-shard dispatch depth (issued - completed), for the
     [Shard_enqueued] stream and end-of-run accounting closure. *)
  let sh_issued = Array.make cores 0 in
  let sh_done = Array.make cores 0 in
  let sh_recorders =
    Array.init cores (fun _ -> Recorder.create ~warmup_until ())
  in
  let lb_policy_name = Shard.Lb.policy_to_string cfg.lb in
  (* Assign a connection to a shard: LB policy picks, steering table
     pinned to match.  [key] is the shard-free connection label. *)
  let assign_shard key =
    if cores = 1 then 0
    else begin
      let sh = Shard.Lb.assign lb ~key in
      Shard.Steer.repin steer key ~shard:sh;
      sh
    end
  in
  let fleet_recorder = Recorder.create ~warmup_until () in
  let obs = Option.map Observe.create cfg.observe in
  let host ~nagle =
    {
      Tcp.Conn.socket =
        {
          Tcp.Socket.mss = 1448;
          nagle;
          cork = false;
          tso_max = None;
          cc_enabled = false;
          delack_timeout = Sim.Time.ms 40;
          delack_max_pending = 2;
          rcv_buf = 1024 * 1024;
          unit_mode = E2e.Units.Bytes;
          exchange = E2e.Exchange.Periodic (Sim.Time.us 100);
          sack = true;
          wscale = `Exact;
          persist = true;
        };
      tx_cost = Sim.Time.ns 300;
      rx_seg_cost = Sim.Time.ns 150;
      rx_batch_cost = Sim.Time.us 8;
      gro = Tcp.Gro.default_config ~mss:1448;
    }
  in
  (* Rng split order is fixed and documented: two streams per tenant in
     declaration order (workload, arrival), then one per control group
     in group order, then — only for tenants that declare churn — one
     churn stream per churning tenant in declaration order.  Identical
     configs therefore replay identical draw sequences regardless of
     host parallelism, and configs without churn split exactly the
     pre-churn streams.  Sharding adds {e no} streams: load-balancer
     policies and flow steering are deterministic hashes and counters,
     so [cores = 1] configs split exactly the unsharded streams. *)
  let states =
    List.map
      (fun (t : tenant) ->
        let workload_rng = Sim.Rng.split rng in
        let arrival_rng = Sim.Rng.split rng in
        let mode = match cfg.scope with Global -> cfg.batching | _ -> t.batching in
        let h = host ~nagle:(Control.initial_nagle mode) in
        let client_irq = Sim.Cpu.create engine in
        let client_cpu = Sim.Cpu.create engine in
        (* One store per tenant: workloads may disagree on value sizes
           and the key space is shared ("k:<n>"), so a shared store
           would let one tenant resize another's GET responses. *)
        let store = Kv.Store.create () in
        Workload.prepopulate t.workload store ~now:(Sim.Engine.now engine);
        (* LB assignment per connection, in label order.  Sharded runs
           suffix ids with "@s<k>" so every downstream tool (spans,
           inspect, slo, report) can break the run down per shard;
           single-shard runs keep the exact pre-sharding labels. *)
        let conn_shards =
          List.init t.n_conns (fun i ->
              assign_shard (Printf.sprintf "%s/c%d" t.name i))
        in
        let conns =
          List.mapi
            (fun i shard ->
              let suffix =
                if cores = 1 then "" else Printf.sprintf "@s%d" shard
              in
              Tcp.Conn.create engine ~a:h ~b:h ~link_ab:t.link ~link_ba:t.link
                ~cpu_a:client_irq ~cpu_b:(Shard.Pool.irq pool shard)
                ~label_a:(Printf.sprintf "%s/c%d%s" t.name i suffix)
                ~label_b:(Printf.sprintf "%s/s%d%s" t.name i suffix)
                ())
            conn_shards
        in
        let client_socks = List.map Tcp.Conn.sock_a conns in
        List.iter2
          (fun shard conn ->
            ignore
              (Kv.Server.create engine ~cpu:(Shard.Pool.cpu pool shard)
                 ~socket:(Tcp.Conn.sock_b conn) ~store cfg.server))
          conn_shards conns;
        let client_cfg =
          { cfg.client with
            Kv.Client.cpu_multiplier = cfg.client.Kv.Client.cpu_multiplier *. t.cpu_multiplier
          }
        in
        let clients =
          List.map
            (fun sock -> Kv.Client.create engine ~cpu:client_cpu ~socket:sock client_cfg)
            client_socks
        in
        (* Typed LB breadcrumbs, sharded runs only, so unsharded traces
           stay byte-identical to pre-sharding ones. *)
        (match obs with
        | Some o when cores > 1 ->
          let tr = Observe.trace o in
          if Sim.Trace.enabled tr then
            List.iter2
              (fun shard sock ->
                Sim.Trace.event tr ~at:(Sim.Engine.now engine)
                  ~id:(Tcp.Socket.label sock)
                  (Sim.Trace.Lb_assigned { shard; policy = lb_policy_name }))
              conn_shards client_socks
        | Some _ | None -> ());
        let base =
          match t.replay_gaps with
          | Some gaps -> Arrival.replay ~gaps_ns:gaps
          | None ->
            if t.burst > 1 then
              Arrival.bursty ~rng:arrival_rng ~rate_rps:t.rate_rps ~burst:t.burst
            else Arrival.poisson ~rng:arrival_rng ~rate_rps:t.rate_rps
        in
        let arrival = Arrival.modulate base t.envelope in
        let entries =
          Shard.Flat.create ~capacity:(max 16 t.n_conns)
            ~dummy:
              (match (clients, conns, conn_shards) with
              | client :: _, conn :: _, shard :: _ ->
                {
                  gen = -1;
                  shard;
                  client;
                  csock = Tcp.Conn.sock_a conn;
                  ssock = Tcp.Conn.sock_b conn;
                  accepting = false;
                  retired = true;
                  egroup = None;
                  on_complete = (fun ~latency:_ _ -> ());
                }
              | _ -> assert false)
            ()
        in
        List.iter2
          (fun (client, shard) conn ->
            ignore
              (Shard.Flat.alloc entries
                 {
                   gen = 0;
                   shard;
                   client;
                   csock = Tcp.Conn.sock_a conn;
                   ssock = Tcp.Conn.sock_b conn;
                   accepting = true;
                   retired = false;
                   egroup = None;
                   on_complete = (fun ~latency:_ _ -> ());
                 }))
          (List.combine clients conn_shards)
          conns;
        let s =
          {
            spec = t;
            mode;
            client_cpu;
            client_irq;
            store;
            conns0 = conns;
            recorder = Recorder.create ~warmup_until ();
            workload_rng;
            arrival;
            entries;
            next_gen = 1;
            opened_mid = 0;
            closed_mid = 0;
            rotation = [||];
            next_client = ref 0;
          }
        in
        rebuild_rotation s;
        s)
      cfg.tenants
  in
  let all_client_socks =
    List.concat_map (fun s -> List.map (fun e -> e.csock) (entries_list s)) states
  in
  let all_server_socks =
    List.concat_map (fun s -> List.map (fun e -> e.ssock) (entries_list s)) states
  in
  (match obs with
  | Some o ->
    let tr = Observe.trace o in
    let au = Observe.audit o in
    List.iter
      (fun sock ->
        Tcp.Socket.set_trace sock tr;
        E2e.Estimator.set_audit (Tcp.Socket.estimator sock) au
          ~prefix:(Tcp.Socket.label sock))
      (all_client_socks @ all_server_socks);
    List.iter
      (fun s ->
        List.iter
          (fun conn ->
            Tcp.Link.set_trace (Tcp.Conn.link_ab conn) tr
              ~id:(Tcp.Socket.label (Tcp.Conn.sock_a conn)))
          s.conns0)
      states
  | None -> ());
  (* Decision ledgers (one per control group) and SLO trackers (one
     per tenant plus one per connection), created before the drivers so
     completions are attributed from the first request on.  Group ids
     match the control groups attached below. *)
  let ledger_tbl : (string, E2e.Ledger.t) Hashtbl.t = Hashtbl.create 16 in
  (match obs with
  | None -> ()
  | Some o ->
    let tr = Observe.trace o in
    let at = Sim.Engine.now engine in
    let add group =
      Hashtbl.replace ledger_tbl group (E2e.Ledger.create ~trace:tr ~group)
    in
    List.iter
      (fun s ->
        Observe.declare_slo o ~at ~id:(s.spec.name ^ "/client")
          ~slo_us:s.spec.slo_us;
        iter_entries s ~f:(fun e ->
            Observe.declare_slo o ~at ~id:(Tcp.Socket.label e.csock)
              ~slo_us:s.spec.slo_us))
      states;
    (* Sharded runs additionally declare tenant-per-shard SLO ids
       ("<tenant>/client@s<k>") as trace breadcrumbs only — offline
       [slo] rebuilds a per-shard attainment roll-up from them while
       the in-run observatory keeps its tenant-level trackers. *)
    if cores > 1 && Sim.Trace.enabled tr then
      List.iter
        (fun s ->
          for k = 0 to cores - 1 do
            Sim.Trace.event tr ~at
              ~id:(Printf.sprintf "%s/client@s%d" s.spec.name k)
              (Sim.Trace.Message
                 { tag = "slo_declared";
                   detail = Printf.sprintf "%.17g" s.spec.slo_us })
          done)
        states;
    match cfg.scope with
    | Global -> add "fleet"
    | Per_tenant -> List.iter (fun s -> add s.spec.name) states
    | Per_conn ->
      List.iter
        (fun s -> iter_entries s ~f:(fun e -> add (Tcp.Socket.label e.csock)))
        states);
  let ledger_for gid = Hashtbl.find_opt ledger_tbl gid in
  let entry_ledger s e =
    match cfg.scope with
    | Global -> ledger_for "fleet"
    | Per_tenant -> ledger_for s.spec.name
    | Per_conn -> ledger_for (Tcp.Socket.label e.csock)
  in
  (* Per-entry completion callback: records latency, feeds the owning
     group's ledger and the per-tenant + per-connection SLO trackers.
     Built once per connection (run-start or spawned) so the hot path
     allocates no closures. *)
  let wire_entry s e =
    let lg = entry_ledger s e in
    let conn_id = Tcp.Socket.label e.csock in
    let tenant_req_id = s.spec.name ^ "/client" in
    let shard = e.shard in
    let shard_req_id =
      if cores = 1 then None
      else Some (Printf.sprintf "%s/client@s%d" s.spec.name shard)
    in
    e.on_complete <-
      (fun ~latency reply ->
        (match reply with
        | Kv.Resp.Error err -> failwith ("fleet: server replied with error: " ^ err)
        | Kv.Resp.Simple _ | Kv.Resp.Integer _ | Kv.Resp.Bulk _ | Kv.Resp.Array _ -> ());
        let at = Sim.Engine.now engine in
        Recorder.record s.recorder ~at ~latency;
        Recorder.record fleet_recorder ~at ~latency;
        sh_done.(shard) <- sh_done.(shard) + 1;
        Recorder.record sh_recorders.(shard) ~at ~latency;
        (match lg with
        | Some lg -> E2e.Ledger.completion lg ~latency
        | None -> ());
        match obs with
        | Some o ->
          Observe.note_request o ~id:tenant_req_id ~at ~latency;
          (match shard_req_id with
          | Some sid ->
            let tr = Observe.trace o in
            if Sim.Trace.enabled tr then
              Sim.Trace.event tr ~at ~id:sid
                (Sim.Trace.Request_done { latency_us = Sim.Time.to_us latency })
          | None -> ());
          Observe.note_slo o ~id:conn_id ~at ~latency
        | None -> ())
  in
  (* Open-loop drivers: one independent arrival process per tenant,
     round-robin over the tenant's currently accepting connections.
     The rotation is rebuilt on churn; with a fixed population it is
     the fixed array the pre-churn implementation used. *)
  List.iter
    (fun s ->
      iter_entries s ~f:(wire_entry s);
      let issue cmd =
        let n = Array.length s.rotation in
        if n > 0 then begin
          let k = !(s.next_client) mod n in
          s.next_client := (k + 1) mod n;
          let e = s.rotation.(k) in
          let shard = e.shard in
          sh_issued.(shard) <- sh_issued.(shard) + 1;
          (* Dispatch breadcrumb (sharded runs only); the enabled check
             precedes event construction so untraced issues allocate
             nothing extra. *)
          (if cores > 1 then
             match obs with
             | Some o ->
               let tr = Observe.trace o in
               if Sim.Trace.enabled tr then
                 Sim.Trace.event tr ~at:(Sim.Engine.now engine)
                   ~id:(Tcp.Socket.label e.csock)
                   (Sim.Trace.Shard_enqueued
                      { shard; depth = sh_issued.(shard) - sh_done.(shard) })
             | None -> ());
          Kv.Client.request e.client cmd ~on_complete:e.on_complete
        end
      in
      let rec schedule_request () =
        let gap = Arrival.next_gap s.arrival ~now:(Sim.Engine.now engine) in
        let at = Sim.Time.add (Sim.Engine.now engine) gap in
        if Sim.Time.compare at total <= 0 then
          ignore
            (Sim.Engine.schedule engine ~after:gap (fun () ->
                 issue (Workload.next_command s.spec.workload ~rng:s.workload_rng);
                 schedule_request ()))
      in
      schedule_request ())
    states;
  (* Observability sampling, scheduled before the control groups so a
     coincident-instant sample sees the window the controller is about
     to advance (same invariant as {!Runner.run}).  The tick iterates
     the live population, so churn arrivals join the sample and the
     per-tenant settling series the moment they exist. *)
  (match obs with
  | None -> ()
  | Some o ->
    let m = Observe.metrics o in
    List.iter
      (fun sock ->
        let e = Tcp.Socket.estimator sock in
        let prefix = Tcp.Socket.label sock in
        Sim.Metrics.gauge m (prefix ^ ".unacked") (fun () ->
            float_of_int (E2e.Estimator.unacked_size e));
        Sim.Metrics.gauge m (prefix ^ ".unread") (fun () ->
            float_of_int (E2e.Estimator.unread_size e)))
      all_client_socks;
    Sim.Metrics.gauge m "completed" (fun () ->
        float_of_int (Recorder.count fleet_recorder));
    let interval = Observe.interval o in
    let rec tick () =
      let at = Sim.Engine.now engine in
      let per_tenant =
        List.map
          (fun s ->
            let live = live_entries s in
            let flows =
              List.filter_map
                (fun e ->
                  let est =
                    E2e.Estimator.peek_estimate (Tcp.Socket.estimator e.csock) ~at
                  in
                  (match est with
                  | Some (est : E2e.Estimator.estimate) ->
                    Sim.Trace.event (Observe.trace o) ~at
                      ~id:(Tcp.Socket.label e.csock)
                      (Sim.Trace.Estimate_computed
                         {
                           latency_us = ns_opt_to_us est.latency_ns;
                           throughput = est.throughput;
                           window_us = float_of_int est.window /. 1e3;
                         })
                  | None -> ());
                  est)
                live
            in
            (s, live, flows))
          states
      in
      let flows = List.concat_map (fun (_, _, fl) -> fl) per_tenant in
      let agg = E2e.Aggregate.of_estimates flows in
      (match agg.latency_ns with
      | Some lat_ns when Sim.Time.compare at warmup_until > 0 ->
        let window_us =
          List.fold_left
            (fun acc (e : E2e.Estimator.estimate) ->
              Float.max acc (float_of_int e.window /. 1e3))
            0.0 flows
        in
        ignore (Observe.note_residual o ~at ~window_us ~est_us:(lat_ns /. 1e3))
      | Some _ | None -> ());
      Observe.note_sample o (Sim.Metrics.sample m ~at);
      Observe.slo_tick o ~at;
      List.iter
        (fun (s, live, tflows) ->
          let tagg = E2e.Aggregate.of_estimates tflows in
          let accepting = List.filter (fun e -> e.accepting) live in
          let nagle_frac =
            match accepting with
            | [] -> Float.nan
            | _ ->
              let on =
                List.fold_left
                  (fun acc e ->
                    if Tcp.Nagle.enabled (Tcp.Socket.nagle e.csock) then acc + 1
                    else acc)
                  0 accepting
              in
              float_of_int on /. float_of_int (List.length accepting)
          in
          Observe.note_settle o ~id:(s.spec.name ^ "/client") ~at
            ~est_us:(ns_opt_to_us tagg.latency_ns) ~nagle_frac)
        per_tenant;
      if Sim.Time.compare (Sim.Time.add at interval) total <= 0 then
        ignore (Sim.Engine.schedule engine ~after:interval tick)
    in
    ignore (Sim.Engine.schedule engine ~after:interval tick));
  (* Envelope edges: register every modulation discontinuity at its own
     instant so the settling tracker can segment the run.  Scheduling
     (rather than registering up front) keeps the trace breadcrumbs in
     event order — written at setup time they would be the ring's oldest
     records and the first dropped on wraparound, leaving offline tools
     with completions but no edges. *)
  (match obs with
  | None -> ()
  | Some o ->
    List.iter
      (fun s ->
        match Arrival.envelope s.arrival with
        | Arrival.Flat -> ()
        | env ->
          List.iter
            (fun at_us ->
              let at = int_of_float (at_us *. 1e3) in
              ignore
                (Sim.Engine.schedule_at engine ~at (fun () ->
                     Observe.note_edge o ~id:(s.spec.name ^ "/client") ~at)))
            (Arrival.edges env ~until_us:(float_of_int total /. 1e3)))
      states);
  (* Control groups, one per scope unit, each with its own rng split in
     a fixed order so per-connection togglers explore independently. *)
  let groups =
    match cfg.scope with
    | Global ->
      let g =
        Control.attach ?ledger:(ledger_for "fleet") ~engine ~until:total
          ~rng:(Sim.Rng.split rng) ~fault_armed:false ~batching:cfg.batching
          ~client_socks:all_client_socks
          ~all_socks:(all_client_socks @ all_server_socks)
          ()
      in
      List.iter (fun s -> iter_entries s ~f:(fun e -> e.egroup <- Some g)) states;
      [ ("fleet", None, g) ]
    | Per_tenant ->
      List.mapi
        (fun i s ->
          let es = entries_list s in
          let g =
            Control.attach ?ledger:(ledger_for s.spec.name) ~engine ~until:total
              ~rng:(Sim.Rng.split rng) ~fault_armed:false ~batching:s.mode
              ~client_socks:(List.map (fun e -> e.csock) es)
              ~all_socks:
                (List.map (fun e -> e.csock) es
                @ List.map (fun e -> e.ssock) es)
              ()
          in
          List.iter (fun e -> e.egroup <- Some g) es;
          (s.spec.name, Some i, g))
        states
    | Per_conn ->
      List.concat
        (List.mapi
           (fun i s ->
             List.map
               (fun e ->
                 let g =
                   Control.attach
                     ?ledger:(ledger_for (Tcp.Socket.label e.csock))
                     ~engine ~until:total ~rng:(Sim.Rng.split rng)
                     ~fault_armed:false ~batching:s.mode ~client_socks:[ e.csock ]
                     ~all_socks:[ e.csock; e.ssock ]
                     ()
                 in
                 e.egroup <- Some g;
                 (Tcp.Socket.label e.csock, Some i, g))
               (entries_list s))
           states)
  in
  (* Connection churn: spawn and retire connections while the run is
     live.  Spawned connections enter TCP slow-start ([cc_enabled]) and
     — when [cold_start_inherit] — the estimator cold-start path plus
     group-prior inheritance (adopting the live mode under
     Global/Per_tenant, seeding the fresh toggler's arms from a sibling
     under Per_conn).  Departing connections leave the rotation, drain
     outstanding requests, FIN, and close the server side once its
     half-close is seen. *)
  let spawned_groups = ref [] in
  let tenant_group i =
    List.find_map (fun (_, ti, g) -> if ti = Some i then Some g else None) groups
  in
  let global_group () =
    match groups with (_, _, g) :: _ -> Some g | [] -> None
  in
  let sibling_group s =
    fold_entries s ~init:None ~f:(fun acc e ->
        match acc with
        | Some _ -> acc
        | None -> if e.retired then None else e.egroup)
  in
  let spawn_one i s crng =
    let t = s.spec in
    let idx = Shard.Flat.live s.entries in
    let gen = s.next_gen in
    s.next_gen <- gen + 1;
    (* Churn arrivals go through the same front LB as run-start
       connections (rng-free, so churn streams stay untouched). *)
    let shard = assign_shard (Printf.sprintf "%s/c%d" t.name idx) in
    let suffix = if cores = 1 then "" else Printf.sprintf "@s%d" shard in
    let hp = host ~nagle:(Control.initial_nagle s.mode) in
    let hp =
      { hp with
        Tcp.Conn.socket = { hp.Tcp.Conn.socket with Tcp.Socket.cc_enabled = true }
      }
    in
    let conn =
      Tcp.Conn.create engine ~a:hp ~b:hp ~link_ab:t.link ~link_ba:t.link
        ~cpu_a:s.client_irq ~cpu_b:(Shard.Pool.irq pool shard)
        ~label_a:(Printf.sprintf "%s/c%d%s" t.name idx suffix)
        ~label_b:(Printf.sprintf "%s/s%d%s" t.name idx suffix)
        ()
    in
    let csock = Tcp.Conn.sock_a conn in
    let ssock = Tcp.Conn.sock_b conn in
    ignore
      (Kv.Server.create engine ~cpu:(Shard.Pool.cpu pool shard) ~socket:ssock
         ~store:s.store cfg.server);
    let client_cfg =
      { cfg.client with
        Kv.Client.cpu_multiplier = cfg.client.Kv.Client.cpu_multiplier *. t.cpu_multiplier
      }
    in
    let client = Kv.Client.create engine ~cpu:s.client_cpu ~socket:csock client_cfg in
    let label = Tcp.Socket.label csock in
    let at = Sim.Engine.now engine in
    (match obs with
    | Some o ->
      let tr = Observe.trace o in
      let au = Observe.audit o in
      List.iter
        (fun sock ->
          Tcp.Socket.set_trace sock tr;
          E2e.Estimator.set_audit (Tcp.Socket.estimator sock) au
            ~prefix:(Tcp.Socket.label sock))
        [ csock; ssock ];
      Tcp.Link.set_trace (Tcp.Conn.link_ab conn) tr ~id:label;
      Observe.declare_slo o ~at ~id:label ~slo_us:t.slo_us;
      let m = Observe.metrics o in
      let est = Tcp.Socket.estimator csock in
      Sim.Metrics.gauge m (label ^ ".unacked") (fun () ->
          float_of_int (E2e.Estimator.unacked_size est));
      Sim.Metrics.gauge m (label ^ ".unread") (fun () ->
          float_of_int (E2e.Estimator.unread_size est))
    | None -> ());
    let inherited = cfg.cold_start_inherit in
    if inherited then E2e.Estimator.set_cold_start (Tcp.Socket.estimator csock);
    (match obs with
    | Some o when cores > 1 ->
      let tr = Observe.trace o in
      if Sim.Trace.enabled tr then
        Sim.Trace.event tr ~at ~id:label
          (Sim.Trace.Lb_assigned { shard; policy = lb_policy_name })
    | Some _ | None -> ());
    let entry =
      {
        gen;
        shard;
        client;
        csock;
        ssock;
        accepting = true;
        retired = false;
        egroup = None;
        on_complete = (fun ~latency:_ _ -> ());
      }
    in
    (match cfg.scope with
    | Global | Per_tenant ->
      let g = (match cfg.scope with Global -> global_group () | _ -> tenant_group i) in
      (match g with
      | Some g ->
        Control.adopt ~inherit_mode:inherited g ~client_sock:csock ~server_sock:ssock;
        entry.egroup <- Some g
      | None -> ())
    | Per_conn ->
      (match obs with
      | Some o ->
        Hashtbl.replace ledger_tbl label
          (E2e.Ledger.create ~trace:(Observe.trace o) ~group:label)
      | None -> ());
      let g =
        Control.attach ?ledger:(ledger_for label) ~engine ~until:total
          ~rng:(Sim.Rng.split crng) ~fault_armed:false ~batching:s.mode
          ~client_socks:[ csock ] ~all_socks:[ csock; ssock ] ()
      in
      entry.egroup <- Some g;
      spawned_groups := !spawned_groups @ [ (label, Some i, g) ];
      if inherited then (
        match sibling_group s with
        | Some sib ->
          (match (Control.toggler sib, Control.toggler g) with
          | Some from_t, Some to_t ->
            List.iter
              (fun m ->
                match E2e.Toggler.smoothed from_t m with
                | Some outcome -> E2e.Toggler.seed_arm to_t ~mode:m outcome
                | None -> ())
              [ E2e.Toggler.Batch_on; E2e.Toggler.Batch_off ]
          | _ -> ());
          let en = Control.current_nagle sib in
          Tcp.Socket.set_nagle_enabled csock en;
          Tcp.Socket.set_nagle_enabled ssock en
        | None -> ()));
    ignore (Shard.Flat.alloc s.entries entry);
    s.opened_mid <- s.opened_mid + 1;
    wire_entry s entry;
    rebuild_rotation s;
    match obs with
    | Some o ->
      Sim.Trace.event (Observe.trace o) ~at ~id:label
        (Sim.Trace.Conn_opened { gen; inherited })
    | None -> ()
  in
  let retire_entry s e =
    e.accepting <- false;
    rebuild_rotation s;
    let label = Tcp.Socket.label e.csock in
    let rec drain () =
      if Kv.Client.outstanding e.client = 0 then begin
        Tcp.Socket.close e.csock;
        (match e.egroup with
        | Some g -> Control.abandon g ~client_sock:e.csock ~server_sock:e.ssock
        | None -> ());
        e.retired <- true;
        s.closed_mid <- s.closed_mid + 1;
        if cores > 1 then Shard.Lb.release lb ~shard:e.shard;
        (match obs with
        | Some o ->
          Sim.Trace.event (Observe.trace o) ~at:(Sim.Engine.now engine) ~id:label
            (Sim.Trace.Conn_closed
               { gen = e.gen; completed = Kv.Client.completed e.client })
        | None -> ());
        let rec server_close () =
          match Tcp.Socket.state e.ssock with
          | Tcp.Socket.Close_wait -> Tcp.Socket.close e.ssock
          | Tcp.Socket.Closed | Tcp.Socket.Time_wait -> ()
          | _ -> ignore (Sim.Engine.schedule engine ~after:(Sim.Time.us 100) server_close)
        in
        server_close ()
      end
      else ignore (Sim.Engine.schedule engine ~after:(Sim.Time.us 50) drain)
    in
    drain ()
  in
  let last_accepting s =
    Array.fold_left (fun _ e -> Some e) None s.rotation
  in
  List.iteri
    (fun i s ->
      match s.spec.churn with
      | None -> ()
      | Some ch ->
        let crng = Sim.Rng.split rng in
        (if ch.arrive_rps > 0.0 then
           let rec arrivals () =
             let gap =
               int_of_float (Sim.Rng.exponential crng ~mean:(1e9 /. ch.arrive_rps))
             in
             let at = Sim.Time.add (Sim.Engine.now engine) gap in
             if Sim.Time.compare at total <= 0 then
               ignore
                 (Sim.Engine.schedule engine ~after:gap (fun () ->
                      if accepting_count s < ch.max_conns then spawn_one i s crng;
                      arrivals ()))
           in
           arrivals ());
        (if ch.depart_rps > 0.0 then
           let rec departures () =
             let gap =
               int_of_float (Sim.Rng.exponential crng ~mean:(1e9 /. ch.depart_rps))
             in
             let at = Sim.Time.add (Sim.Engine.now engine) gap in
             if Sim.Time.compare at total <= 0 then
               ignore
                 (Sim.Engine.schedule engine ~after:gap (fun () ->
                      (if accepting_count s > ch.min_conns then
                         let k = Sim.Rng.int crng ~bound:(accepting_count s) in
                         retire_entry s s.rotation.(k));
                      departures ()))
           in
           departures ());
        List.iter
          (fun (at, delta) ->
            if Sim.Time.compare at total <= 0 then begin
              (match obs with
              | Some o -> Observe.note_edge o ~id:(s.spec.name ^ "/client") ~at
              | None -> ());
              ignore
                (Sim.Engine.schedule_at engine ~at (fun () ->
                     if delta > 0 then
                       for _ = 1 to delta do
                         if accepting_count s < ch.max_conns then spawn_one i s crng
                       done
                     else
                       for _ = 1 to -delta do
                         if accepting_count s > ch.min_conns then
                           match last_accepting s with
                           | Some e -> retire_entry s e
                           | None -> ()
                       done))
            end)
          ch.script)
    states;
  (* Warmup boundary: close every estimation window, reset the audit,
     capture CPU baselines. *)
  let baseline = ref None in
  ignore
    (Sim.Engine.schedule_at engine ~at:warmup_until (fun () ->
         let at = Sim.Engine.now engine in
         List.iter
           (fun s ->
             iter_entries s ~f:(fun e ->
                 if not e.retired then
                   ignore
                     (E2e.Estimator.estimate (Tcp.Socket.estimator e.csock) ~at)))
           states;
         (match obs with
         | Some o -> Sim.Audit.reset_window (Observe.audit o) ~at
         | None -> ());
         baseline :=
           Some
             ( Array.init cores (fun k ->
                   Sim.Cpu.busy_ns (Shard.Pool.cpu pool k)),
               Array.init cores (fun k ->
                   Sim.Cpu.busy_ns (Shard.Pool.irq pool k)),
               List.map (fun s -> Sim.Cpu.busy_ns s.client_cpu) states )));
  Sim.Engine.run_until engine total;
  let at = Sim.Engine.now engine in
  (match obs with
  | None -> ()
  | Some o ->
    let reports = Observe.finalize_audit o ~at in
    List.iter
      (fun (r : Sim.Audit.report) ->
        Sim.Trace.event (Observe.trace o) ~at ~id:""
          (Sim.Trace.Audit_window
             {
               queue = r.queue;
               l_avg = r.l_avg;
               lambda_per_s = r.lambda_per_s;
               w_us = r.w_us;
               rel_err = r.rel_err;
             }))
      reports);
  (* Re-emit the tenant-per-shard SLO declarations at run end: the
     trace is a drop-oldest ring, and on 10k+-connection fleets the
     start-of-run breadcrumbs are long evicted by completion events.
     The [slo] reader is order-independent, so the newest copy is as
     good as the first. *)
  (match obs with
  | Some o when cores > 1 ->
    let tr = Observe.trace o in
    if Sim.Trace.enabled tr then
      List.iter
        (fun s ->
          for k = 0 to cores - 1 do
            Sim.Trace.event tr ~at
              ~id:(Printf.sprintf "%s/client@s%d" s.spec.name k)
              (Sim.Trace.Message
                 { tag = "slo_declared";
                   detail = Printf.sprintf "%.17g" s.spec.slo_us })
          done)
        states
  | Some _ | None -> ());
  let b_sh_app, b_sh_irq, b_clients =
    match !baseline with
    | Some b -> b
    | None -> failwith "fleet: warmup sample never fired"
  in
  let duration_s = Sim.Time.to_sec cfg.duration in
  let util busy base_v = float_of_int (busy - base_v) /. float_of_int cfg.duration in
  let all_groups = groups @ !spawned_groups in
  (* Per-tenant stack estimate: dynamic groups advance their windows on
     every tick, so aggregate their tick samples; static/AIMD groups
     (and any tenant under a global group) kept windows open since
     warmup, so a final peek covers the whole measured period. *)
  let tenant_estimate i s =
    let own_groups =
      List.filter_map
        (fun (_, ti, ctrl) -> if ti = Some i then Some ctrl else None)
        all_groups
    in
    let dynamic = match s.mode with Control.Dynamic _ -> true | _ -> false in
    if cfg.scope <> Global && dynamic then
      let summaries = List.map (Control.sample_summary ~warmup_until) own_groups in
      let weighted, weight =
        List.fold_left
          (fun (acc, w) (lat, tput) ->
            match lat with
            | Some us when tput > 0.0 -> (acc +. (us *. tput), w +. tput)
            | Some _ | None -> (acc, w))
          (0.0, 0.0) summaries
      in
      let tput = List.fold_left (fun acc (_, tp) -> acc +. tp) 0.0 summaries in
      ((if weight > 0.0 then Some (weighted /. weight) else None), tput)
    else
      let live_socks = List.map (fun e -> e.csock) (live_entries s) in
      let agg, _ = Control.estimate_socks live_socks ~at in
      (ns_opt_to_us agg.latency_ns, agg.throughput)
  in
  let tenant_results =
    List.mapi
      (fun i s ->
        let completed = Recorder.count s.recorder in
        let est_us, est_tput = tenant_estimate i s in
        let clients = List.map (fun e -> e.client) (entries_list s) in
        let issued = List.fold_left (fun acc c -> acc + Kv.Client.issued c) 0 clients in
        let outstanding =
          List.fold_left (fun acc c -> acc + Kv.Client.outstanding c) 0 clients
        in
        {
          t_name = s.spec.name;
          t_offered_rps = Arrival.rate s.arrival;
          t_achieved_rps = float_of_int completed /. duration_s;
          t_completed = completed;
          t_issued = issued;
          t_completed_total =
            List.fold_left (fun acc c -> acc + Kv.Client.completed c) 0 clients;
          t_outstanding_end = outstanding;
          t_mean_us = Recorder.mean_us s.recorder;
          t_p50_us = Recorder.p50_us s.recorder;
          t_p99_us = Recorder.p99_us s.recorder;
          t_under_slo = Recorder.under_slo_fraction s.recorder ~slo_us:s.spec.slo_us;
          t_estimated_us = est_us;
          t_estimated_tput_rps = est_tput;
          t_client_app_util =
            util (Sim.Cpu.busy_ns s.client_cpu) (List.nth b_clients i);
          t_nagle_toggles =
            fold_entries s ~init:0 ~f:(fun acc e ->
                acc + Tcp.Nagle.toggles (Tcp.Socket.nagle e.csock));
          t_conns_opened = s.opened_mid;
          t_conns_closed = s.closed_mid;
        })
      states
  in
  (* Fairness over goodput fractions (achieved/offered) so tenants with
     very different offered loads are comparable. *)
  let goodput =
    List.map (fun r -> r.t_achieved_rps /. r.t_offered_rps) tenant_results
  in
  (* Per-shard accounting: fold every tenant's entries (live and
     retired alike) bucketed by the shard each connection was steered
     to, so t_issued = t_completed_total + t_outstanding_end closes
     per shard exactly as it does per tenant. *)
  let shard_results =
    List.init cores (fun k ->
        let conns, issued, completed_total, outstanding =
          List.fold_left
            (fun acc s ->
              fold_entries s ~init:acc ~f:(fun (n, iss, ct, out) e ->
                  if e.shard = k then
                    ( n + 1,
                      iss + Kv.Client.issued e.client,
                      ct + Kv.Client.completed e.client,
                      out + Kv.Client.outstanding e.client )
                  else (n, iss, ct, out)))
            (0, 0, 0, 0) states
        in
        let rec_k = sh_recorders.(k) in
        {
          sh_index = k;
          sh_conns = conns;
          sh_issued = issued;
          sh_completed_total = completed_total;
          sh_outstanding_end = outstanding;
          sh_completed = Recorder.count rec_k;
          sh_achieved_rps = float_of_int (Recorder.count rec_k) /. duration_s;
          sh_mean_us = Recorder.mean_us rec_k;
          sh_p99_us = Recorder.p99_us rec_k;
          sh_app_util =
            util (Sim.Cpu.busy_ns (Shard.Pool.cpu pool k)) b_sh_app.(k);
          sh_irq_util =
            util (Sim.Cpu.busy_ns (Shard.Pool.irq pool k)) b_sh_irq.(k);
        })
  in
  {
    tenants = tenant_results;
    shards = shard_results;
    fleet_achieved_rps = float_of_int (Recorder.count fleet_recorder) /. duration_s;
    fleet_mean_us = Recorder.mean_us fleet_recorder;
    fleet_p99_us = Recorder.p99_us fleet_recorder;
    goodput_max_min_ratio = E2e.Aggregate.max_min_ratio goodput;
    goodput_jain = E2e.Aggregate.jain goodput;
    server_app_util =
      List.fold_left (fun acc r -> acc +. r.sh_app_util) 0.0 shard_results;
    server_irq_util =
      List.fold_left (fun acc r -> acc +. r.sh_irq_util) 0.0 shard_results;
    final_modes =
      List.filter_map
        (fun (gid, _, ctrl) ->
          Option.map (fun m -> (gid, m)) (Control.final_mode ctrl))
        all_groups;
    observability =
      Option.map (Observe.output ~until_us:(float_of_int total /. 1e3)) obs;
  }
