(* Heterogeneous multi-tenant fleet: N tenants, each with its own
   client host (app CPU + IRQ CPU, optionally VM-priced), arrival
   process, workload, link and SLO, all driving one shared server (one
   app core, one IRQ core — Redis is single-threaded).  Batching is
   controlled by {!Control} groups whose granularity is the [scope]
   knob: one group spanning the fleet, one per tenant, or one per
   connection with its own toggler/estimator/degrade state. *)

type scope = Global | Per_tenant | Per_conn

let scope_label = function
  | Global -> "global"
  | Per_tenant -> "per_tenant"
  | Per_conn -> "per_conn"

type tenant = {
  name : string;
  n_conns : int;
  rate_rps : float;
  burst : int;
  workload : Workload.t;
  cpu_multiplier : float;
  link : Tcp.Conn.link_params;
  slo_us : float;
  batching : Control.batching;
}

let default_tenant ~name ~rate_rps =
  {
    name;
    n_conns = 1;
    rate_rps;
    burst = 1;
    workload = Workload.paper_set_only;
    cpu_multiplier = 1.0;
    link = Tcp.Conn.default_link;
    slo_us = Runner.slo_us;
    batching = Control.Static_off;
  }

type config = {
  seed : int;
  warmup : Sim.Time.span;
  duration : Sim.Time.span;
  scope : scope;
  batching : Control.batching;
  server : Kv.Server.config;
  client : Kv.Client.config;
  observe : Observe.config option;
  tenants : tenant list;
}

let default_config ~tenants =
  {
    seed = 42;
    warmup = Sim.Time.ms 100;
    duration = Sim.Time.ms 400;
    scope = Global;
    batching = Control.Static_off;
    server = Kv.Server.default_config;
    client = Kv.Client.default_config;
    observe = None;
    tenants;
  }

type tenant_result = {
  t_name : string;
  t_offered_rps : float;
  t_achieved_rps : float;
  t_completed : int;
  t_issued : int;
  t_completed_total : int;
  t_outstanding_end : int;
  t_mean_us : float;
  t_p50_us : float;
  t_p99_us : float;
  t_under_slo : float;
  t_estimated_us : float option;
  t_estimated_tput_rps : float;
  t_client_app_util : float;
  t_nagle_toggles : int;
}

type result = {
  tenants : tenant_result list;
  fleet_achieved_rps : float;
  fleet_mean_us : float;
  fleet_p99_us : float;
  goodput_max_min_ratio : float option;
  goodput_jain : float option;
  server_app_util : float;
  server_irq_util : float;
  final_modes : (string * E2e.Toggler.mode) list;
  observability : Observe.output option;
}

let validate_tenant t =
  if t.name = "" then invalid_arg "Fleet.run: tenant name must be non-empty";
  String.iter
    (fun c ->
      if c = '/' || c = ' ' || c = '\t' then
        invalid_arg
          (Printf.sprintf "Fleet.run: tenant name %S may not contain '/' or whitespace"
             t.name))
    t.name;
  if t.n_conns < 1 then
    invalid_arg (Printf.sprintf "Fleet.run: tenant %s: n_conns must be at least 1" t.name);
  if (not (Float.is_finite t.rate_rps)) || t.rate_rps <= 0.0 then
    invalid_arg
      (Printf.sprintf "Fleet.run: tenant %s: rate_rps must be positive and finite" t.name);
  if t.burst < 1 then
    invalid_arg (Printf.sprintf "Fleet.run: tenant %s: burst must be at least 1" t.name);
  if (not (Float.is_finite t.cpu_multiplier)) || t.cpu_multiplier <= 0.0 then
    invalid_arg
      (Printf.sprintf "Fleet.run: tenant %s: cpu_multiplier must be positive" t.name);
  if (not (Float.is_finite t.slo_us)) || t.slo_us <= 0.0 then
    invalid_arg (Printf.sprintf "Fleet.run: tenant %s: slo_us must be positive" t.name)

(* Everything one tenant owns at runtime.  [socket_pairs] keeps the
   (client, server) association so per-connection control groups can
   switch both ends of exactly their connection. *)
type tenant_state = {
  spec : tenant;
  mode : Control.batching;  (* after applying the scope *)
  clients : Kv.Client.t list;
  client_socks : Tcp.Socket.t list;
  server_socks : Tcp.Socket.t list;
  conns : Tcp.Conn.t list;
  client_cpu : Sim.Cpu.t;
  recorder : Recorder.t;
  workload_rng : Sim.Rng.t;
  arrival : Arrival.t;
}

let ns_opt_to_us = Option.map (fun ns -> ns /. 1e3)

let run (cfg : config) =
  if cfg.tenants = [] then invalid_arg "Fleet.run: at least one tenant required";
  List.iter validate_tenant cfg.tenants;
  let names = List.map (fun t -> t.name) cfg.tenants in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Fleet.run: tenant names must be unique";
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed:cfg.seed in
  let warmup_until = cfg.warmup in
  let total = cfg.warmup + cfg.duration in
  (* Shared server host: one app core, one IRQ core, fed by every
     tenant.  Contention for these cores is the coupling that makes
     global batching decisions unfair. *)
  let server_cpu = Sim.Cpu.create engine in
  let server_irq = Sim.Cpu.create engine in
  let fleet_recorder = Recorder.create ~warmup_until () in
  let obs = Option.map Observe.create cfg.observe in
  let host ~nagle =
    {
      Tcp.Conn.socket =
        {
          Tcp.Socket.mss = 1448;
          nagle;
          cork = false;
          tso_max = None;
          cc_enabled = false;
          delack_timeout = Sim.Time.ms 40;
          delack_max_pending = 2;
          rcv_buf = 1024 * 1024;
          unit_mode = E2e.Units.Bytes;
          exchange = E2e.Exchange.Periodic (Sim.Time.us 100);
          sack = true;
          wscale = `Exact;
          persist = true;
        };
      tx_cost = Sim.Time.ns 300;
      rx_seg_cost = Sim.Time.ns 150;
      rx_batch_cost = Sim.Time.us 8;
      gro = Tcp.Gro.default_config ~mss:1448;
    }
  in
  (* Rng split order is fixed and documented: two streams per tenant in
     declaration order (workload, arrival), then one per control group
     in group order.  Identical configs therefore replay identical draw
     sequences regardless of host parallelism. *)
  let states =
    List.map
      (fun (t : tenant) ->
        let workload_rng = Sim.Rng.split rng in
        let arrival_rng = Sim.Rng.split rng in
        let mode = match cfg.scope with Global -> cfg.batching | _ -> t.batching in
        let h = host ~nagle:(Control.initial_nagle mode) in
        let client_irq = Sim.Cpu.create engine in
        let client_cpu = Sim.Cpu.create engine in
        (* One store per tenant: workloads may disagree on value sizes
           and the key space is shared ("k:<n>"), so a shared store
           would let one tenant resize another's GET responses. *)
        let store = Kv.Store.create () in
        Workload.prepopulate t.workload store ~now:(Sim.Engine.now engine);
        let conns =
          List.init t.n_conns (fun i ->
              Tcp.Conn.create engine ~a:h ~b:h ~link_ab:t.link ~link_ba:t.link
                ~cpu_a:client_irq ~cpu_b:server_irq
                ~label_a:(Printf.sprintf "%s/c%d" t.name i)
                ~label_b:(Printf.sprintf "%s/s%d" t.name i)
                ())
        in
        let client_socks = List.map Tcp.Conn.sock_a conns in
        let server_socks = List.map Tcp.Conn.sock_b conns in
        List.iter
          (fun sock ->
            ignore (Kv.Server.create engine ~cpu:server_cpu ~socket:sock ~store cfg.server))
          server_socks;
        let client_cfg =
          { cfg.client with
            Kv.Client.cpu_multiplier = cfg.client.Kv.Client.cpu_multiplier *. t.cpu_multiplier
          }
        in
        let clients =
          List.map
            (fun sock -> Kv.Client.create engine ~cpu:client_cpu ~socket:sock client_cfg)
            client_socks
        in
        let arrival =
          if t.burst > 1 then
            Arrival.bursty ~rng:arrival_rng ~rate_rps:t.rate_rps ~burst:t.burst
          else Arrival.poisson ~rng:arrival_rng ~rate_rps:t.rate_rps
        in
        {
          spec = t;
          mode;
          clients;
          client_socks;
          server_socks;
          conns;
          client_cpu;
          recorder = Recorder.create ~warmup_until ();
          workload_rng;
          arrival;
        })
      cfg.tenants
  in
  let all_client_socks = List.concat_map (fun s -> s.client_socks) states in
  let all_server_socks = List.concat_map (fun s -> s.server_socks) states in
  (match obs with
  | Some o ->
    let tr = Observe.trace o in
    let au = Observe.audit o in
    List.iter
      (fun sock ->
        Tcp.Socket.set_trace sock tr;
        E2e.Estimator.set_audit (Tcp.Socket.estimator sock) au
          ~prefix:(Tcp.Socket.label sock))
      (all_client_socks @ all_server_socks);
    List.iter
      (fun s ->
        List.iter2
          (fun conn sock ->
            Tcp.Link.set_trace (Tcp.Conn.link_ab conn) tr ~id:(Tcp.Socket.label sock))
          s.conns s.client_socks)
      states
  | None -> ());
  (* Decision ledgers (one per control group) and SLO trackers (one
     per tenant plus one per connection), created before the drivers so
     completions are attributed from the first request on.  Group ids
     match the control groups attached below. *)
  let ledger_tbl : (string, E2e.Ledger.t) Hashtbl.t = Hashtbl.create 16 in
  (match obs with
  | None -> ()
  | Some o ->
    let tr = Observe.trace o in
    let at = Sim.Engine.now engine in
    let add group =
      Hashtbl.replace ledger_tbl group (E2e.Ledger.create ~trace:tr ~group)
    in
    List.iter
      (fun s ->
        Observe.declare_slo o ~at ~id:(s.spec.name ^ "/client")
          ~slo_us:s.spec.slo_us;
        List.iter
          (fun csock ->
            Observe.declare_slo o ~at ~id:(Tcp.Socket.label csock)
              ~slo_us:s.spec.slo_us)
          s.client_socks)
      states;
    match cfg.scope with
    | Global -> add "fleet"
    | Per_tenant -> List.iter (fun s -> add s.spec.name) states
    | Per_conn ->
      List.iter
        (fun s ->
          List.iter (fun csock -> add (Tcp.Socket.label csock)) s.client_socks)
        states);
  let ledger_for gid = Hashtbl.find_opt ledger_tbl gid in
  (* Open-loop drivers: one independent arrival process per tenant,
     round-robin over that tenant's connections.  Completion callbacks
     are per connection so ledger tenures and per-conn SLO trackers see
     exactly their own connection's requests. *)
  List.iter
    (fun s ->
      let client_arr = Array.of_list s.clients in
      let conn_ids = Array.of_list (List.map Tcp.Socket.label s.client_socks) in
      let conn_ledgers =
        Array.map
          (fun label ->
            match cfg.scope with
            | Global -> ledger_for "fleet"
            | Per_tenant -> ledger_for s.spec.name
            | Per_conn -> ledger_for label)
          conn_ids
      in
      let next_client = ref 0 in
      let tenant_req_id = s.spec.name ^ "/client" in
      let on_complete_for k ~latency reply =
        (match reply with
        | Kv.Resp.Error e -> failwith ("fleet: server replied with error: " ^ e)
        | Kv.Resp.Simple _ | Kv.Resp.Integer _ | Kv.Resp.Bulk _ | Kv.Resp.Array _ -> ());
        let at = Sim.Engine.now engine in
        Recorder.record s.recorder ~at ~latency;
        Recorder.record fleet_recorder ~at ~latency;
        (match conn_ledgers.(k) with
        | Some lg -> E2e.Ledger.completion lg ~latency
        | None -> ());
        match obs with
        | Some o ->
          Observe.note_request o ~id:tenant_req_id ~at ~latency;
          Observe.note_slo o ~id:conn_ids.(k) ~at ~latency
        | None -> ()
      in
      let on_completes =
        Array.init (Array.length client_arr) (fun k -> on_complete_for k)
      in
      let issue cmd =
        let k = !next_client in
        next_client := (k + 1) mod Array.length client_arr;
        Kv.Client.request client_arr.(k) cmd ~on_complete:on_completes.(k)
      in
      let rec schedule_request () =
        let gap = Arrival.next_gap s.arrival in
        let at = Sim.Time.add (Sim.Engine.now engine) gap in
        if Sim.Time.compare at total <= 0 then
          ignore
            (Sim.Engine.schedule engine ~after:gap (fun () ->
                 issue (Workload.next_command s.spec.workload ~rng:s.workload_rng);
                 schedule_request ()))
      in
      schedule_request ())
    states;
  let all_estimators = List.map Tcp.Socket.estimator all_client_socks in
  (* Observability sampling, scheduled before the control groups so a
     coincident-instant sample sees the window the controller is about
     to advance (same invariant as {!Runner.run}). *)
  (match obs with
  | None -> ()
  | Some o ->
    let m = Observe.metrics o in
    List.iter
      (fun sock ->
        let e = Tcp.Socket.estimator sock in
        let prefix = Tcp.Socket.label sock in
        Sim.Metrics.gauge m (prefix ^ ".unacked") (fun () ->
            float_of_int (E2e.Estimator.unacked_size e));
        Sim.Metrics.gauge m (prefix ^ ".unread") (fun () ->
            float_of_int (E2e.Estimator.unread_size e)))
      all_client_socks;
    Sim.Metrics.gauge m "completed" (fun () ->
        float_of_int (Recorder.count fleet_recorder));
    let interval = Observe.interval o in
    let rec tick () =
      let at = Sim.Engine.now engine in
      let per_flow =
        List.map2
          (fun sock e ->
            let est = E2e.Estimator.peek_estimate e ~at in
            (match est with
            | Some (est : E2e.Estimator.estimate) ->
              Sim.Trace.event (Observe.trace o) ~at ~id:(Tcp.Socket.label sock)
                (Sim.Trace.Estimate_computed
                   {
                     latency_us = ns_opt_to_us est.latency_ns;
                     throughput = est.throughput;
                     window_us = float_of_int est.window /. 1e3;
                   })
            | None -> ());
            est)
          all_client_socks all_estimators
      in
      let flows = List.filter_map Fun.id per_flow in
      let agg = E2e.Aggregate.of_estimates flows in
      (match agg.latency_ns with
      | Some lat_ns when Sim.Time.compare at warmup_until > 0 ->
        let window_us =
          List.fold_left
            (fun acc (e : E2e.Estimator.estimate) ->
              Float.max acc (float_of_int e.window /. 1e3))
            0.0 flows
        in
        ignore (Observe.note_residual o ~at ~window_us ~est_us:(lat_ns /. 1e3))
      | Some _ | None -> ());
      Observe.note_sample o (Sim.Metrics.sample m ~at);
      Observe.slo_tick o ~at;
      if Sim.Time.compare (Sim.Time.add at interval) total <= 0 then
        ignore (Sim.Engine.schedule engine ~after:interval tick)
    in
    ignore (Sim.Engine.schedule engine ~after:interval tick));
  (* Control groups, one per scope unit, each with its own rng split in
     a fixed order so per-connection togglers explore independently. *)
  let groups =
    match cfg.scope with
    | Global ->
      [
        ( "fleet",
          None,
          Control.attach ?ledger:(ledger_for "fleet") ~engine ~until:total
            ~rng:(Sim.Rng.split rng) ~fault_armed:false ~batching:cfg.batching
            ~client_socks:all_client_socks
            ~all_socks:(all_client_socks @ all_server_socks)
            () );
      ]
    | Per_tenant ->
      List.mapi
        (fun i s ->
          ( s.spec.name,
            Some i,
            Control.attach ?ledger:(ledger_for s.spec.name) ~engine ~until:total
              ~rng:(Sim.Rng.split rng) ~fault_armed:false ~batching:s.mode
              ~client_socks:s.client_socks
              ~all_socks:(s.client_socks @ s.server_socks)
              () ))
        states
    | Per_conn ->
      List.concat
        (List.mapi
           (fun i s ->
             List.map2
               (fun csock ssock ->
                 ( Tcp.Socket.label csock,
                   Some i,
                   Control.attach
                     ?ledger:(ledger_for (Tcp.Socket.label csock))
                     ~engine ~until:total ~rng:(Sim.Rng.split rng)
                     ~fault_armed:false ~batching:s.mode ~client_socks:[ csock ]
                     ~all_socks:[ csock; ssock ]
                     () ))
               s.client_socks s.server_socks)
           states)
  in
  (* Warmup boundary: close every estimation window, reset the audit,
     capture CPU baselines. *)
  let baseline = ref None in
  ignore
    (Sim.Engine.schedule_at engine ~at:warmup_until (fun () ->
         let at = Sim.Engine.now engine in
         List.iter (fun e -> ignore (E2e.Estimator.estimate e ~at)) all_estimators;
         (match obs with
         | Some o -> Sim.Audit.reset_window (Observe.audit o) ~at
         | None -> ());
         baseline :=
           Some
             ( Sim.Cpu.busy_ns server_cpu,
               Sim.Cpu.busy_ns server_irq,
               List.map (fun s -> Sim.Cpu.busy_ns s.client_cpu) states )));
  Sim.Engine.run_until engine total;
  let at = Sim.Engine.now engine in
  (match obs with
  | None -> ()
  | Some o ->
    let reports = Observe.finalize_audit o ~at in
    List.iter
      (fun (r : Sim.Audit.report) ->
        Sim.Trace.event (Observe.trace o) ~at ~id:""
          (Sim.Trace.Audit_window
             {
               queue = r.queue;
               l_avg = r.l_avg;
               lambda_per_s = r.lambda_per_s;
               w_us = r.w_us;
               rel_err = r.rel_err;
             }))
      reports);
  let b_server_app, b_server_irq, b_clients =
    match !baseline with
    | Some b -> b
    | None -> failwith "fleet: warmup sample never fired"
  in
  let duration_s = Sim.Time.to_sec cfg.duration in
  let util busy base_v = float_of_int (busy - base_v) /. float_of_int cfg.duration in
  (* Per-tenant stack estimate: dynamic groups advance their windows on
     every tick, so aggregate their tick samples; static/AIMD groups
     (and any tenant under a global group) kept windows open since
     warmup, so a final peek covers the whole measured period. *)
  let tenant_estimate i s =
    let own_groups =
      List.filter_map
        (fun (_, ti, ctrl) -> if ti = Some i then Some ctrl else None)
        groups
    in
    let dynamic = match s.mode with Control.Dynamic _ -> true | _ -> false in
    if cfg.scope <> Global && dynamic then
      let summaries = List.map (Control.sample_summary ~warmup_until) own_groups in
      let weighted, weight =
        List.fold_left
          (fun (acc, w) (lat, tput) ->
            match lat with
            | Some us when tput > 0.0 -> (acc +. (us *. tput), w +. tput)
            | Some _ | None -> (acc, w))
          (0.0, 0.0) summaries
      in
      let tput = List.fold_left (fun acc (_, tp) -> acc +. tp) 0.0 summaries in
      ((if weight > 0.0 then Some (weighted /. weight) else None), tput)
    else
      let agg, _ = Control.estimate_socks s.client_socks ~at in
      (ns_opt_to_us agg.latency_ns, agg.throughput)
  in
  let tenant_results =
    List.mapi
      (fun i s ->
        let completed = Recorder.count s.recorder in
        let est_us, est_tput = tenant_estimate i s in
        let issued = List.fold_left (fun acc c -> acc + Kv.Client.issued c) 0 s.clients in
        let outstanding =
          List.fold_left (fun acc c -> acc + Kv.Client.outstanding c) 0 s.clients
        in
        {
          t_name = s.spec.name;
          t_offered_rps = s.spec.rate_rps;
          t_achieved_rps = float_of_int completed /. duration_s;
          t_completed = completed;
          t_issued = issued;
          t_completed_total =
            List.fold_left (fun acc c -> acc + Kv.Client.completed c) 0 s.clients;
          t_outstanding_end = outstanding;
          t_mean_us = Recorder.mean_us s.recorder;
          t_p50_us = Recorder.p50_us s.recorder;
          t_p99_us = Recorder.p99_us s.recorder;
          t_under_slo = Recorder.under_slo_fraction s.recorder ~slo_us:s.spec.slo_us;
          t_estimated_us = est_us;
          t_estimated_tput_rps = est_tput;
          t_client_app_util =
            util (Sim.Cpu.busy_ns s.client_cpu) (List.nth b_clients i);
          t_nagle_toggles =
            List.fold_left
              (fun acc sock -> acc + Tcp.Nagle.toggles (Tcp.Socket.nagle sock))
              0 s.client_socks;
        })
      states
  in
  (* Fairness over goodput fractions (achieved/offered) so tenants with
     very different offered loads are comparable. *)
  let goodput =
    List.map (fun r -> r.t_achieved_rps /. r.t_offered_rps) tenant_results
  in
  {
    tenants = tenant_results;
    fleet_achieved_rps = float_of_int (Recorder.count fleet_recorder) /. duration_s;
    fleet_mean_us = Recorder.mean_us fleet_recorder;
    fleet_p99_us = Recorder.p99_us fleet_recorder;
    goodput_max_min_ratio = E2e.Aggregate.max_min_ratio goodput;
    goodput_jain = E2e.Aggregate.jain goodput;
    server_app_util = util (Sim.Cpu.busy_ns server_cpu) b_server_app;
    server_irq_util = util (Sim.Cpu.busy_ns server_irq) b_server_irq;
    final_modes =
      List.filter_map
        (fun (gid, _, ctrl) ->
          Option.map (fun m -> (gid, m)) (Control.final_mode ctrl))
        groups;
    observability = Option.map Observe.output obs;
  }
