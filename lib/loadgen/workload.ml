type t = {
  set_ratio : float;
  key_size : int;
  value_size : int;
  n_keys : int;
  zipf_theta : float;
}

let paper_set_only =
  { set_ratio = 1.0; key_size = 16; value_size = 16 * 1024; n_keys = 1024; zipf_theta = 0.0 }

let paper_mixed = { paper_set_only with set_ratio = 0.95 }

let small_requests = { paper_set_only with value_size = 64 }

let validate t =
  if t.set_ratio < 0.0 || t.set_ratio > 1.0 then Error "set_ratio must be in [0,1]"
  else if t.key_size < 8 then Error "key_size must be at least 8"
  else if t.value_size < 1 then Error "value_size must be positive"
  else if t.n_keys < 1 then Error "n_keys must be positive"
  else if t.zipf_theta < 0.0 then Error "zipf_theta must be non-negative"
  else Ok t

(* Fixed-width keys: "k:0000000042" padded to key_size. *)
let key_of t i =
  let base = Printf.sprintf "k:%010d" i in
  if String.length base >= t.key_size then String.sub base 0 t.key_size
  else base ^ String.make (t.key_size - String.length base) 'x'

(* One shared value payload per size: request contents do not matter,
   only their size, and sharing avoids allocating 16 KiB per request.
   The cache is domain-local so parallel sweeps (Par.Pool) never race
   on the table; each domain pays at most one allocation per distinct
   size. *)
let value_cache : (int, string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let value_of t =
  let cache = Domain.DLS.get value_cache in
  match Hashtbl.find_opt cache t.value_size with
  | Some v -> v
  | None ->
    let v = String.make t.value_size 'v' in
    Hashtbl.add cache t.value_size v;
    v

let next_command t ~rng =
  let i = Sim.Rng.zipf rng ~n:t.n_keys ~theta:t.zipf_theta in
  let key = key_of t i in
  if Sim.Rng.float rng < t.set_ratio then
    Kv.Command.Set { key; value = value_of t; ttl = None }
  else Kv.Command.Get key

let prepopulate t store ~now =
  let value = value_of t in
  for i = 0 to t.n_keys - 1 do
    Kv.Store.set store ~now (key_of t i) value
  done

let request_bytes t kind =
  let key = key_of t 0 in
  match kind with
  | `Set -> Kv.Command.request_bytes (Kv.Command.Set { key; value = value_of t; ttl = None })
  | `Get -> Kv.Command.request_bytes (Kv.Command.Get key)

let response_bytes t kind =
  match kind with
  | `Set -> Kv.Resp.encoded_length (Kv.Resp.Simple "OK")
  | `Get -> Kv.Resp.encoded_length (Kv.Resp.Bulk (Some (value_of t)))

let describe t =
  Printf.sprintf "%.0f%% SET / %.0f%% GET, %dB keys, %dB values, %d keys (theta=%.2f)"
    (t.set_ratio *. 100.0)
    ((1.0 -. t.set_ratio) *. 100.0)
    t.key_size t.value_size t.n_keys t.zipf_theta
