(** Trace-driven workloads.

    Records a request schedule — timestamp plus command — in a plain
    text format, so benchmark runs can replay captured or synthesized
    traces instead of drawing from an analytic arrival process.  This
    is the substitution path for the production traces a general-
    purpose deployment would use.

    Line format (one request per line, [#] comments allowed):
    {v <microseconds> SET <key> <value_bytes>
       <microseconds> GET <key> v}
    Timestamps must be non-decreasing. *)

type entry = { at : Sim.Time.t; cmd : Kv.Command.t }

val entry_to_line : entry -> (string, string) result
(** [Error] for command types the format does not cover. *)

val parse_line : string -> (entry option, string) result
(** [Ok None] for blank lines and comments. *)

val to_string : entry list -> string
val of_string : string -> (entry list, string) result
(** Checks timestamp monotonicity; errors carry the line number. *)

val save_file : string -> entry list -> (unit, string) result
val load_file : string -> (entry list, string) result

val synthesize :
  workload:Workload.t ->
  rate_rps:float ->
  duration:Sim.Time.span ->
  rng:Sim.Rng.t ->
  entry list
(** Generate the trace an open-loop Poisson run of the given workload
    would issue — useful for reproducible fixtures and for editing a
    baseline trace into adversarial shapes. *)

val duration : entry list -> Sim.Time.span
val count : entry list -> int

(** {1 Inter-arrival gap traces}

    A second, simpler format feeding {!Arrival.replay}: one recorded
    inter-arrival gap per line, in microseconds (fractions allowed),
    [#] comments and blank lines skipped.  Gaps are returned in
    nanoseconds. *)

val gaps_of_string : string -> (int array, string) result
(** Errors carry the 1-based line number. *)

val gaps_to_string : int array -> string

val load_gaps : string -> (int array, string) result
(** Like {!gaps_of_string}; errors are prefixed with the path. *)

val save_gaps : string -> int array -> (unit, string) result
