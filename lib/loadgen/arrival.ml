type envelope =
  | Flat
  | Steps of (float * float) list
  | Ramp of { period_us : float; from_f : float; to_f : float }
  | Square of { period_us : float; duty : float; high : float }

let check_factor what f =
  if not (Float.is_finite f) || f <= 0.0 then
    invalid_arg (Printf.sprintf "Arrival: %s factor must be finite and positive" what)

let check_envelope = function
  | Flat -> ()
  | Steps steps ->
    if steps = [] then invalid_arg "Arrival: steps envelope needs at least one step";
    List.iter
      (fun (at, f) ->
        if not (Float.is_finite at) || at < 0.0 then
          invalid_arg "Arrival: step times must be finite and non-negative";
        check_factor "step" f)
      steps;
    let rec sorted = function
      | (a, _) :: ((b, _) :: _ as rest) ->
        if b <= a then invalid_arg "Arrival: step times must be strictly increasing";
        sorted rest
      | _ -> ()
    in
    sorted steps
  | Ramp { period_us; from_f; to_f } ->
    if not (Float.is_finite period_us) || period_us <= 0.0 then
      invalid_arg "Arrival: ramp period must be positive";
    check_factor "ramp from" from_f;
    check_factor "ramp to" to_f
  | Square { period_us; duty; high } ->
    if not (Float.is_finite period_us) || period_us <= 0.0 then
      invalid_arg "Arrival: square period must be positive";
    if not (Float.is_finite duty) || duty <= 0.0 || duty >= 1.0 then
      invalid_arg "Arrival: square duty must be in (0,1)";
    check_factor "square high" high

(* Rate multiplier at absolute sim time [at_us].  1.0 means the base
   process is undisturbed. *)
let factor env ~at_us =
  match env with
  | Flat -> 1.0
  | Steps steps ->
    List.fold_left (fun acc (at, f) -> if at <= at_us then f else acc) 1.0 steps
  | Ramp { period_us; from_f; to_f } ->
    let phase = Float.rem at_us period_us /. period_us in
    let phase = if phase < 0.0 then phase +. 1.0 else phase in
    from_f +. ((to_f -. from_f) *. phase)
  | Square { period_us; duty; high } ->
    let phase = Float.rem at_us period_us /. period_us in
    let phase = if phase < 0.0 then phase +. 1.0 else phase in
    if phase < duty then high else 1.0

(* Discontinuity instants in [0, until_us] — the moments a settling
   tracker should measure re-convergence from.  Ramps are continuous
   except at the period wrap (skipped when the ramp is degenerate). *)
let edges env ~until_us =
  let ok t = t > 0.0 && t <= until_us in
  match env with
  | Flat -> []
  | Steps steps -> List.filter ok (List.map fst steps)
  | Ramp { period_us; from_f; to_f } ->
    if from_f = to_f then []
    else begin
      let acc = ref [] in
      let t = ref period_us in
      while !t <= until_us do
        acc := !t :: !acc;
        t := !t +. period_us
      done;
      List.rev !acc
    end
  | Square { period_us; duty; high } ->
    if high = 1.0 then []
    else begin
      let acc = ref [] in
      let k = ref 0.0 in
      while !k *. period_us <= until_us do
        let rise = !k *. period_us and fall = (!k +. duty) *. period_us in
        if ok rise then acc := rise :: !acc;
        if ok fall then acc := fall :: !acc;
        k := !k +. 1.0
      done;
      List.rev !acc
    end

type kind =
  | Poisson of Sim.Rng.t
  | Uniform
  | Bursty of { rng : Sim.Rng.t; burst : int; mutable left : int }
  | Replay of { gaps : int array; mutable pos : int }

type t = { kind : kind; rate_rps : float; gap_ns : float; envelope : envelope }

let check_rate rate_rps =
  if not (Float.is_finite rate_rps) || rate_rps <= 0.0 then
    invalid_arg "Arrival: rate must be finite and positive"

let poisson ~rng ~rate_rps =
  check_rate rate_rps;
  { kind = Poisson rng; rate_rps; gap_ns = 1e9 /. rate_rps; envelope = Flat }

let uniform ~rate_rps =
  check_rate rate_rps;
  { kind = Uniform; rate_rps; gap_ns = 1e9 /. rate_rps; envelope = Flat }

let bursty ~rng ~rate_rps ~burst =
  check_rate rate_rps;
  if burst < 1 then invalid_arg "Arrival.bursty: burst must be >= 1";
  { kind = Bursty { rng; burst; left = 0 };
    rate_rps;
    gap_ns = 1e9 /. rate_rps;
    envelope = Flat }

let replay ~gaps_ns =
  if Array.length gaps_ns = 0 then
    invalid_arg "Arrival.replay: need at least one recorded gap";
  Array.iter
    (fun g -> if g < 0 then invalid_arg "Arrival.replay: gaps must be non-negative")
    gaps_ns;
  let total = Array.fold_left (fun a g -> a +. float_of_int g) 0.0 gaps_ns in
  if total <= 0.0 then invalid_arg "Arrival.replay: trace has zero total duration";
  let gap_ns = total /. float_of_int (Array.length gaps_ns) in
  { kind = Replay { gaps = Array.copy gaps_ns; pos = 0 };
    rate_rps = 1e9 /. gap_ns;
    gap_ns;
    envelope = Flat }

let modulate t env =
  check_envelope env;
  { t with envelope = env }

let base_gap t =
  match t.kind with
  | Uniform -> int_of_float t.gap_ns
  | Poisson rng -> int_of_float (Sim.Rng.exponential rng ~mean:t.gap_ns)
  | Bursty b ->
    if b.left > 0 then begin
      b.left <- b.left - 1;
      0
    end
    else begin
      b.left <- b.burst - 1;
      (* Bursts arrive at rate/burst, so the per-request rate holds. *)
      int_of_float (Sim.Rng.exponential b.rng ~mean:(t.gap_ns *. float_of_int b.burst))
    end
  | Replay r ->
    let g = r.gaps.(r.pos) in
    r.pos <- (r.pos + 1) mod Array.length r.gaps;
    g

let next_gap t ~now =
  match t.envelope with
  | Flat ->
    (* No envelope: exactly the pre-envelope arithmetic, so runs without
       modulation replay bit-identically. *)
    base_gap t
  | env ->
    (* Gap scaling: the drawn gap shrinks by the instantaneous rate
       factor at draw time.  A piecewise approximation of thinning —
       exact for Uniform, and for the others the first gap after an edge
       still reflects the pre-edge rate, an error of at most one
       inter-arrival time. *)
    let f = factor env ~at_us:(float_of_int now /. 1e3) in
    int_of_float (float_of_int (base_gap t) /. f)

let rate t = t.rate_rps
let envelope t = t.envelope
