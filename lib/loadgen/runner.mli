(** One benchmark run: client + server + simulated stack at a fixed
    offered load and batching configuration.

    Reproduces the paper's methodology: a Lancet-style open-loop client
    drives a Redis-style server; measured latency comes from per-request
    timestamps at the client, while estimated latency comes from the
    §3.2 queue states exchanged through the stack.  Batching is either
    static (Nagle on / off — the two configurations of Figure 4) or
    dynamic (the ε-greedy toggler of §5 driven by the estimates).

    The batching types are re-exports of {!Control}'s — the controller
    itself lives there so {!Fleet} can attach one per scope unit. *)

type dynamic = Control.dynamic = {
  policy : E2e.Policy.t;
  epsilon : float;
  tick : Sim.Time.span;  (** decision/observation granularity *)
  ewma_alpha : float;
  min_observations : int;
  stale_after_rtts : float;
      (** k: shares older than k·srtt mark estimates stale (armed only
          under a fault plan) *)
  stale_floor : Sim.Time.span;
      (** lower bound on the staleness timeout, so low-rate runs with
          naturally sparse shares are not declared stale *)
  degrade : E2e.Degrade.config;  (** freeze/thaw hysteresis *)
  fallback : E2e.Toggler.mode;
      (** static mode pinned while estimates are stale *)
}

val default_dynamic : dynamic
(** SLO policy at 500 µs, ε = 0.05, 1 ms tick, EWMA α = 0.3; staleness
    at max(8 RTTs, 2 ms) with 2-tick freeze/thaw hysteresis, falling
    back to [Batch_off] (the TCP_NODELAY default dynamic runs start
    from). *)

type aimd_cfg = Control.aimd_cfg = {
  slo_us : float;
  aimd_tick : Sim.Time.span;
  min_limit : int;  (** bytes; the floor approximates TCP_NODELAY *)
  max_limit : int;  (** bytes; the MSS recovers full Nagle behaviour *)
  increase : int;
  decrease : float;
}

val default_aimd : aimd_cfg
(** SLO 500 µs, 1 ms tick, limit in 64–1448 B, +128 B / x0.5. *)

type batching = Control.batching =
  | Static_on
  | Static_off
  | Dynamic of dynamic
  | Aimd_limit of aimd_cfg
      (** §5 "Better Batching Heuristics": replace the binary toggle
          with an AIMD-adjusted minimum-transmit size. *)

val batching_label : batching -> string

type config = {
  seed : int;
  warmup : Sim.Time.span;
  duration : Sim.Time.span;  (** measured period, after warmup *)
  rate_rps : float;
  burst : int;  (** 1 = plain Poisson arrivals *)
  n_conns : int;  (** concurrent connections; estimates are aggregated
                      across them per §3.2 *)
  workload : Workload.t;
  trace : Trace.entry list option;
      (** replay this request schedule instead of sampling
          workload/arrival (keys must exist if they are GETs —
          see {!Workload.prepopulate}) *)
  batching : batching;
  unit_mode : E2e.Units.t;
  exchange : E2e.Exchange.policy;
  server : Kv.Server.config;
  client : Kv.Client.config;
  mss : int;
  rcv_buf : int;
  cork : bool;  (** enable auto-corking (ablation) *)
  tso : bool;  (** enable 64 KiB TCP segmentation offload (ablation) *)
  cc : bool;  (** enable Reno congestion control (needed under loss) *)
  loss_prob : float;  (** per-packet drop probability on both links *)
  fault : Fault.Plan.t option;
      (** deterministic fault-injection plan ([None], the default, adds
          no rng draws: plan-disabled runs are bit-identical to runs of
          the pre-fault codebase).  Arms per-link {!Fault.Injector}s,
          schedules the plan's bandwidth/delay steps, and enables the
          estimator staleness → toggler fallback machinery on dynamic
          runs. *)
  sack : bool;
      (** SACK scoreboard loss recovery on both endpoints (default
          [true]); [false] falls back to the historical go-back-N fast
          retransmit, the baseline for the BENCH_fault recovery
          comparison *)
  wscale : Tcp.Socket.wscale;
      (** window carriage, default [`Exact] (idealized full-width
          windows, bit-identical to the pre-wscale codebase) *)
  persist : bool;
      (** zero-window persist probing (default [true]); [false]
          reproduces the lost-window-update deadlock *)
  delack_timeout : Sim.Time.span;
  tx_cost : Sim.Time.span;  (** per-segment transmit IRQ cost, both hosts *)
  rx_seg_cost : Sim.Time.span;  (** per-wire-segment receive cost *)
  rx_batch_cost : Sim.Time.span;  (** per-GRO-delivery receive cost *)
  gro_enabled : bool;
  gro_flush_timeout : Sim.Time.span;
      (** NIC interrupt-coalescing window (rx-usecs) *)
  link : Tcp.Conn.link_params;
  observe : Observe.config option;
      (** attach the structured observability layer (trace + metrics +
          residuals); [None] (the default) costs nothing and produces
          bit-identical results to an observed run *)
}

val default_config : rate_rps:float -> batching:batching -> config
(** 100 ms warmup + 400 ms measured, paper SET-only workload, byte
    units, periodic 100 µs exchange, default server/client costs. *)

type estimate_sample = Control.estimate_sample = {
  at_us : float;
  latency_us : float option;
  throughput_rps : float;
  mode : E2e.Toggler.mode;
}

type result = {
  offered_rps : float;
  achieved_rps : float;
  completed : int;  (** completions inside the measured window *)
  issued : int;  (** lifetime requests issued, warmup included *)
  completed_total : int;  (** lifetime completions, warmup included *)
  outstanding_end : int;
      (** still in flight at run end; liveness closure is
          [issued = completed_total + outstanding_end] — anything else
          means a request was silently lost *)
  link_dropped : int;  (** packets dropped across all links *)
  shares_corrupted : int;  (** exchange options mangled by fault injection *)
  shares_rejected : int;
      (** shares refused by the estimators' plausibility clamps *)
  degrade_freezes : int option;  (** dynamic runs under a fault plan *)
  degrade_thaws : int option;
  degrade_frozen_end : bool option;
      (** still degraded when the run ended (estimator never
          recovered)? *)
  measured_mean_us : float;
  measured_p50_us : float;
  measured_p99_us : float;
  under_slo : float;  (** fraction of requests within 500 µs *)
  estimated_us : float option;
      (** stack estimate over the measured window (max of vantages) *)
  estimated_local_us : float option;
  estimated_remote_us : float option;
  estimated_tput_rps : float;
  hint_estimated_us : float option;  (** §3.3 hint-based estimate *)
  hint_tput_rps : float option;
  hint_server_estimated_us : float option;
      (** the server's view of the client's hint queue *)
  client_app_util : float;
  server_app_util : float;
  client_irq_util : float;
  server_irq_util : float;
  packets : int;
  packets_per_request : float;
  server_batch_mean : float;
  server_wakeups : int;
  nagle_toggles : int;
  final_mode : E2e.Toggler.mode option;  (** dynamic runs only *)
  final_batch_limit : int option;  (** AIMD runs only *)
  server_gro_merge : float;  (** wire segments per GRO delivery at the server *)
  server_gro_batches : int;
  server_acks_by_timer : int;  (** delayed-ack timer expirations at the server *)
  client_srtt_us : float option;
      (** the client's smoothed RTT — the baseline signal §2 shows is
          insufficient for end-to-end latency *)
  client_p99_est_us : float option;
      (** online P² p99 estimate (worst across connections) — the tail
          building block for the paper's deferred future work *)
  samples : estimate_sample list;  (** tick-by-tick trace, oldest first *)
  observability : Observe.output option;
      (** present iff [config.observe] was set *)
}

val run : config -> result

val slo_us : float
(** 500 µs, the paper's SLO. *)
