(** Chaos soak harness: sweep a loss × reorder × blackout grid and
    assert liveness invariants on every cell.

    Each cell builds a deterministic {!Fault.Plan} (bursty loss
    calibrated to the cell's long-run rate, bounded-displacement
    reordering, a blackout starting a quarter into the measured
    window — an eighth in for zero-window cells, whose persist-paced
    recovery needs more drain room), runs it through {!Runner.run},
    and checks:

    - accounting closure — [issued = completed + outstanding]: no
      request silently lost, whatever the network did;
    - progress — at least one request completed;
    - zero-window cells without random loss stayed live: a majority of
      issued requests completed (a zero-window deadlock strands
      everything issued after the stall; under ongoing bursty loss
      RTO-paced probe recovery is legitimately slow, so only
      closure/progress are demanded there);
    - Little's-law audit closure stays bounded (observed runs);
    - blackout cells froze the toggler and thawed it again before the
      run ended (the estimator recovered).

    Cells are independent seeded simulations, so grids parallelize
    across domains with bit-identical verdicts. *)

type cell = {
  loss : float;
  reorder : float;
  blackout_ms : float;
  zero_window : bool;
      (** squeeze the receive buffer to 4 MSS, slow the server's read
          loop down (1 ms {!Kv.Server.config.wake_delay}) and cut the
          offered rate to a fortieth of [base]'s, so advertised windows
          genuinely close and stay closed for most of each window-fill
          cycle — the regime where a lost window-update ack deadlocks a
          stack without persist probing *)
}

val cell_label : cell -> string

val grid :
  ?zero_windows:bool list ->
  losses:float list ->
  reorders:float list ->
  blackouts_ms:float list ->
  unit ->
  cell list
(** Cross product, in row-major order; [zero_windows] defaults to
    [[false]]. *)

val gilbert_of_loss : float -> Fault.Plan.gilbert option
(** Bursty channel whose stationary loss rate is the argument (mean
    burst ~4 packets); [None] for rates [<= 0]. *)

val plan_of_cell : Runner.config -> cell -> Fault.Plan.t
(** The cell's fault plan, applied to both directions; the blackout is
    placed a quarter into [base]'s measured window (an eighth for
    zero-window cells). *)

type verdict = { cell : cell; result : Runner.result; failures : string list }

val ok : verdict -> bool
(** No failed invariant. *)

val audit_bound : float
(** Worst tolerated Little's-law relative error (0.15). *)

val check : Runner.result -> cell:cell -> string list
(** The invariant list above; empty when all hold.  Recovery (unfrozen
    at run end) is demanded only of blackout-only cells — a blackout
    clears, ongoing loss does not. *)

val run_cell : base:Runner.config -> cell -> verdict
(** Run one cell ([base] with the cell's plan; congestion control is
    forced on for lossy cells, since retransmission needs it;
    zero-window cells also shrink [rcv_buf], slow the server and cut
    the rate as above). *)

val run_grid :
  ?domains:int ->
  ?zero_windows:bool list ->
  base:Runner.config ->
  losses:float list ->
  reorders:float list ->
  blackouts_ms:float list ->
  unit ->
  verdict list
(** The whole grid, fanned out over [domains] (default 1). *)

(** {1 Time-varying-load chaos}

    Fleet-based cells that stress the re-convergence machinery instead
    of the wire.  A {e flash-crowd} cell drives a 10x square-wave rate
    envelope; a {e churn-storm} cell mass-connects six extra
    connections mid-run and mass-disconnects them again.  Verdicts
    demand liveness (per-tenant accounting closure, progress, and — for
    storms — connections actually opened {e and} drained/closed) and
    bounded re-convergence: every judged {!Observe.settle_report}
    segment must re-enter its steady band within the cell's bound of
    the disturbance edge (storm cells additionally bound the mode
    series, always against the tight {!churn_settle_bound_us}).

    The two booleans are ablations wired for falsifiability: with
    [inherit_prior = false] freshly spawned per-connection togglers
    re-explore from scratch and blow the mode-settle bound; with
    [settling = false] the tracker emits no reports and the
    re-convergence invariant fails for lack of evidence. *)

type churn_cell = {
  flash : bool;  (** 10x square-wave envelope on the arrival process *)
  storm : bool;  (** scripted mass connect / disconnect epochs *)
  inherit_prior : bool;  (** {!Fleet.config.cold_start_inherit} *)
  settling : bool;  (** {!Observe.config.settling} *)
}

val churn_cell_label : churn_cell -> string

val churn_settle_bound_us : float
(** Worst tolerated re-convergence time after a churn edge (25 ms) —
    population changes against a constant rate barely move the
    estimate, and seeded modes not at all. *)

val flash_settle_bound_us : float
(** Worst tolerated re-convergence time after an envelope edge
    (60 ms): a 10x peak melts the server for the 20 ms burst, and the
    bound budgets for the backlog drain afterwards. *)

val settle_bound_us : churn_cell -> float
(** The estimate-series bound for this cell: the flash bound when an
    envelope is in play, the churn bound otherwise. *)

val churn_config : churn_cell -> Fleet.config
(** The cell's fleet: one 8-connection per-conn-dynamic tenant, 20 ms
    warmup + 160 ms measured, with the cell's envelope/churn script and
    ablation knobs applied. *)

type churn_verdict = {
  churn_cell : churn_cell;
  fleet_result : Fleet.result;
  churn_failures : string list;
}

val churn_ok : churn_verdict -> bool

val check_churn : Fleet.result -> cell:churn_cell -> string list
(** The invariant list above; empty when all hold. *)

val run_churn_cell : churn_cell -> churn_verdict

val churn_grid : unit -> churn_cell list
(** The default two cells: flash-crowd and churn-storm, both with
    inheritance and settling enabled. *)

val run_churn_grid : ?domains:int -> churn_cell list -> churn_verdict list
