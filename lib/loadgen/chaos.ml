type cell = {
  loss : float;
  reorder : float;
  blackout_ms : float;
  zero_window : bool;
}

let cell_label c =
  Printf.sprintf "loss=%g reorder=%g blackout=%gms%s" c.loss c.reorder c.blackout_ms
    (if c.zero_window then " zw" else "")

let grid ?(zero_windows = [ false ]) ~losses ~reorders ~blackouts_ms () =
  List.concat_map
    (fun loss ->
      List.concat_map
        (fun reorder ->
          List.concat_map
            (fun blackout_ms ->
              List.map
                (fun zero_window -> { loss; reorder; blackout_ms; zero_window })
                zero_windows)
            blackouts_ms)
        reorders)
    losses

(* Bursty loss calibrated so the long-run loss rate matches [cell.loss]
   but drops cluster in bursts of ~4 packets (mean Bad-state dwell
   1/p_bg with everything dropped while Bad): the regime where loss
   actually stresses estimators, per the TCP-variants analysis.  The
   stationary Bad probability p_gb/(p_gb + p_bg) is set to [loss]. *)
let gilbert_of_loss loss =
  if loss <= 0.0 then None
  else
    let p_bg = 0.25 in
    Some
      {
        Fault.Plan.p_gb = p_bg *. loss /. Stdlib.max 1e-6 (1.0 -. loss);
        p_bg;
        loss_good = 0.0;
        loss_bad = 1.0;
      }

let plan_of_cell (base : Runner.config) c =
  let side =
    {
      Fault.Plan.empty_side with
      loss = gilbert_of_loss c.loss;
      reorder =
        (if c.reorder > 0.0 then
           Some
             { Fault.Plan.reorder_prob = c.reorder; max_displacement = 3; quantum_us = 20.0 }
         else None);
    }
  in
  (* The blackout starts a quarter into the measured window, so the
     estimator has settled before the lights go out and has most of the
     window to recover afterwards.  Zero-window cells place it earlier
     (an eighth in): recovery from a deadlocked zero-window stall is
     paced by the persist timer's RTO floor (>= 200 ms to the first
     probe), and the slow-consumer pipeline then needs the rest of the
     run to drain the stranded backlog — a quarter-way blackout leaves
     too little room to tell recovery from deadlock. *)
  let side =
    if c.blackout_ms <= 0.0 then side
    else begin
      let from_us =
        Sim.Time.to_us base.Runner.warmup
        +. Sim.Time.to_us base.Runner.duration
           /. (if c.zero_window then 8.0 else 4.0)
      in
      {
        side with
        Fault.Plan.blackouts =
          [ { Fault.Plan.from_us; until_us = from_us +. (c.blackout_ms *. 1e3) } ];
      }
    end
  in
  { Fault.Plan.c2s = side; s2c = side; steps = [] }

type verdict = { cell : cell; result : Runner.result; failures : string list }

let ok v = v.failures = []

let audit_bound = 0.15

let check (r : Runner.result) ~cell =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  (* Liveness: every issued request completed or is still accounted as
     outstanding — anything else means the stack silently lost one. *)
  if r.issued <> r.completed_total + r.outstanding_end then
    fail "accounting: issued=%d <> completed=%d + outstanding=%d" r.issued
      r.completed_total r.outstanding_end;
  if r.completed_total = 0 then fail "liveness: no request ever completed";
  (* Zero-window cells squeeze the receive buffer down to a few MSS, so
     the window genuinely closes under batching; a lost window-update
     ack then deadlocks a stack without persist probing and every
     request issued after the stall is stranded.  A live connection
     keeps [outstanding_end] down at pipeline depth; a stall strands
     the majority of the open-loop arrivals.  The bound is only owed
     when the cell has no ongoing random loss (clean or blackout
     cells): there the one dropped update ack is repaired by the first
     persist probe, deterministically.  Under Gilbert bursts the chain
     advances per packet, and during a stall the probe replies are the
     only packets on the return path, so a Bad dwell can eat several
     RTO-spaced probes back to back — slow recovery is the channel's
     physics, not a deadlock, and only closure/progress are owed. *)
  if
    cell.zero_window && cell.loss = 0.0 && r.issued > 0
    && 2 * r.outstanding_end > r.issued
  then
    fail "stall: %d of %d issued requests still outstanding at run end"
      r.outstanding_end r.issued;
  (* Little's-law audit closure must stay bounded even under faults:
     the audit mirrors locally-observed queue transitions, so loss or
     reordering is no excuse for the books not balancing. *)
  (match r.observability with
  | Some o ->
    List.iter
      (fun (a : Sim.Audit.report) ->
        if Float.is_finite a.rel_err && a.rel_err > audit_bound then
          fail "audit: %s rel_err %.3f > %.2f" a.queue a.rel_err audit_bound)
      o.Observe.audits
  | None -> ());
  (* A blackout must trip the degradation machinery.  Release by run
     end is only owed when the blackout is the *sole* fault: it clears,
     so shares must flow again.  Under ongoing random loss, bursts can
     wipe the whole in-flight window arbitrarily close to run end
     (every such wipe costs a >=200ms RTO stall), so a toggler still
     frozen then is the fallback working as designed, not a failure. *)
  let transient_only = cell.blackout_ms > 0.0 && cell.loss = 0.0 in
  (match (cell.blackout_ms > 0.0, r.degrade_freezes) with
  | true, Some 0 -> fail "degrade: blackout never froze the toggler"
  | _ -> ());
  (match (transient_only, r.degrade_frozen_end) with
  | true, Some true -> fail "degrade: still frozen at run end (no recovery)"
  | _ -> ());
  List.rev !failures

let run_cell ~base cell =
  let cfg =
    {
      base with
      Runner.fault = Some (plan_of_cell base cell);
      (* Retransmission needs congestion control under real loss. *)
      cc = base.Runner.cc || cell.loss > 0.0 || cell.blackout_ms > 0.0;
    }
  in
  let cfg =
    if not cell.zero_window then cfg
    else
      {
        cfg with
        (* A few-MSS receive buffer plus a slow consumer (the server
           takes 1 ms to get around to reading) makes the advertised
           window genuinely close and *stay* closed most of the time:
           the connection spends ~85% of each window-fill cycle in the
           critical state where all sent data is acked, the window is
           zero, and liveness hangs on one window-update ack.  A
           blackout starting inside such a closure eats that update,
           and with nothing in flight the RTO backstop never arms: only
           the persist timer can revive the connection.  The reduced
           rate keeps the offered load under the slow consumer's
           capacity, so the stall invariant discriminates deadlock from
           saturation and a revived run can actually drain its
           backlog. *)
        Runner.rcv_buf = 4 * cfg.Runner.mss;
        rate_rps = cfg.Runner.rate_rps /. 40.0;
        server = { cfg.Runner.server with Kv.Server.wake_delay = Sim.Time.ms 1 };
      }
  in
  let result = Runner.run cfg in
  { cell; result; failures = check result ~cell }

let run_grid ?(domains = 1) ?zero_windows ~base ~losses ~reorders ~blackouts_ms () =
  Par.Pool.map ~domains (run_cell ~base)
    (grid ?zero_windows ~losses ~reorders ~blackouts_ms ())
