type cell = {
  loss : float;
  reorder : float;
  blackout_ms : float;
  zero_window : bool;
}

let cell_label c =
  Printf.sprintf "loss=%g reorder=%g blackout=%gms%s" c.loss c.reorder c.blackout_ms
    (if c.zero_window then " zw" else "")

let grid ?(zero_windows = [ false ]) ~losses ~reorders ~blackouts_ms () =
  List.concat_map
    (fun loss ->
      List.concat_map
        (fun reorder ->
          List.concat_map
            (fun blackout_ms ->
              List.map
                (fun zero_window -> { loss; reorder; blackout_ms; zero_window })
                zero_windows)
            blackouts_ms)
        reorders)
    losses

(* Bursty loss calibrated so the long-run loss rate matches [cell.loss]
   but drops cluster in bursts of ~4 packets (mean Bad-state dwell
   1/p_bg with everything dropped while Bad): the regime where loss
   actually stresses estimators, per the TCP-variants analysis.  The
   stationary Bad probability p_gb/(p_gb + p_bg) is set to [loss]. *)
let gilbert_of_loss loss =
  if loss <= 0.0 then None
  else
    let p_bg = 0.25 in
    Some
      {
        Fault.Plan.p_gb = p_bg *. loss /. Stdlib.max 1e-6 (1.0 -. loss);
        p_bg;
        loss_good = 0.0;
        loss_bad = 1.0;
      }

let plan_of_cell (base : Runner.config) c =
  let side =
    {
      Fault.Plan.empty_side with
      loss = gilbert_of_loss c.loss;
      reorder =
        (if c.reorder > 0.0 then
           Some
             { Fault.Plan.reorder_prob = c.reorder; max_displacement = 3; quantum_us = 20.0 }
         else None);
    }
  in
  (* The blackout starts a quarter into the measured window, so the
     estimator has settled before the lights go out and has most of the
     window to recover afterwards.  Zero-window cells place it earlier
     (an eighth in): recovery from a deadlocked zero-window stall is
     paced by the persist timer's RTO floor (>= 200 ms to the first
     probe), and the slow-consumer pipeline then needs the rest of the
     run to drain the stranded backlog — a quarter-way blackout leaves
     too little room to tell recovery from deadlock. *)
  let side =
    if c.blackout_ms <= 0.0 then side
    else begin
      let from_us =
        Sim.Time.to_us base.Runner.warmup
        +. Sim.Time.to_us base.Runner.duration
           /. (if c.zero_window then 8.0 else 4.0)
      in
      {
        side with
        Fault.Plan.blackouts =
          [ { Fault.Plan.from_us; until_us = from_us +. (c.blackout_ms *. 1e3) } ];
      }
    end
  in
  { Fault.Plan.c2s = side; s2c = side; steps = [] }

type verdict = { cell : cell; result : Runner.result; failures : string list }

let ok v = v.failures = []

let audit_bound = 0.15

let check (r : Runner.result) ~cell =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  (* Liveness: every issued request completed or is still accounted as
     outstanding — anything else means the stack silently lost one. *)
  if r.issued <> r.completed_total + r.outstanding_end then
    fail "accounting: issued=%d <> completed=%d + outstanding=%d" r.issued
      r.completed_total r.outstanding_end;
  if r.completed_total = 0 then fail "liveness: no request ever completed";
  (* Zero-window cells squeeze the receive buffer down to a few MSS, so
     the window genuinely closes under batching; a lost window-update
     ack then deadlocks a stack without persist probing and every
     request issued after the stall is stranded.  A live connection
     keeps [outstanding_end] down at pipeline depth; a stall strands
     the majority of the open-loop arrivals.  The bound is only owed
     when the cell has no ongoing random loss (clean or blackout
     cells): there the one dropped update ack is repaired by the first
     persist probe, deterministically.  Under Gilbert bursts the chain
     advances per packet, and during a stall the probe replies are the
     only packets on the return path, so a Bad dwell can eat several
     RTO-spaced probes back to back — slow recovery is the channel's
     physics, not a deadlock, and only closure/progress are owed. *)
  if
    cell.zero_window && cell.loss = 0.0 && r.issued > 0
    && 2 * r.outstanding_end > r.issued
  then
    fail "stall: %d of %d issued requests still outstanding at run end"
      r.outstanding_end r.issued;
  (* Little's-law audit closure must stay bounded even under faults:
     the audit mirrors locally-observed queue transitions, so loss or
     reordering is no excuse for the books not balancing. *)
  (match r.observability with
  | Some o ->
    List.iter
      (fun (a : Sim.Audit.report) ->
        if Float.is_finite a.rel_err && a.rel_err > audit_bound then
          fail "audit: %s rel_err %.3f > %.2f" a.queue a.rel_err audit_bound)
      o.Observe.audits
  | None -> ());
  (* A blackout must trip the degradation machinery.  Release by run
     end is only owed when the blackout is the *sole* fault: it clears,
     so shares must flow again.  Under ongoing random loss, bursts can
     wipe the whole in-flight window arbitrarily close to run end
     (every such wipe costs a >=200ms RTO stall), so a toggler still
     frozen then is the fallback working as designed, not a failure. *)
  let transient_only = cell.blackout_ms > 0.0 && cell.loss = 0.0 in
  (match (cell.blackout_ms > 0.0, r.degrade_freezes) with
  | true, Some 0 -> fail "degrade: blackout never froze the toggler"
  | _ -> ());
  (match (transient_only, r.degrade_frozen_end) with
  | true, Some true -> fail "degrade: still frozen at run end (no recovery)"
  | _ -> ());
  List.rev !failures

let run_cell ~base cell =
  let cfg =
    {
      base with
      Runner.fault = Some (plan_of_cell base cell);
      (* Retransmission needs congestion control under real loss. *)
      cc = base.Runner.cc || cell.loss > 0.0 || cell.blackout_ms > 0.0;
    }
  in
  let cfg =
    if not cell.zero_window then cfg
    else
      {
        cfg with
        (* A few-MSS receive buffer plus a slow consumer (the server
           takes 1 ms to get around to reading) makes the advertised
           window genuinely close and *stay* closed most of the time:
           the connection spends ~85% of each window-fill cycle in the
           critical state where all sent data is acked, the window is
           zero, and liveness hangs on one window-update ack.  A
           blackout starting inside such a closure eats that update,
           and with nothing in flight the RTO backstop never arms: only
           the persist timer can revive the connection.  The reduced
           rate keeps the offered load under the slow consumer's
           capacity, so the stall invariant discriminates deadlock from
           saturation and a revived run can actually drain its
           backlog. *)
        Runner.rcv_buf = 4 * cfg.Runner.mss;
        rate_rps = cfg.Runner.rate_rps /. 40.0;
        server = { cfg.Runner.server with Kv.Server.wake_delay = Sim.Time.ms 1 };
      }
  in
  let result = Runner.run cfg in
  { cell; result; failures = check result ~cell }

let run_grid ?(domains = 1) ?zero_windows ~base ~losses ~reorders ~blackouts_ms () =
  Par.Pool.map ~domains (run_cell ~base)
    (grid ?zero_windows ~losses ~reorders ~blackouts_ms ())

(* {1 Time-varying-load chaos: flash crowds and churn storms}

   Fleet-based cells that stress the re-convergence machinery instead
   of the wire: a flash-crowd cell drives a 10x square-wave envelope, a
   churn-storm cell mass-connects and mass-disconnects mid-run.  The
   verdicts demand liveness (per-tenant accounting closure, lifecycle
   actually exercised) and bounded re-convergence (every judged
   settling segment back in band within the cell's bound).  The
   [inherit_prior] and [settling] knobs are the ablations: without
   cold-start inheritance freshly spawned per-connection togglers
   re-explore from scratch and blow the bound; without the settling
   tracker there is no re-convergence evidence at all. *)

type churn_cell = {
  flash : bool;  (* 10x square-wave envelope on the arrival process *)
  storm : bool;  (* scripted mass connect / disconnect epochs *)
  inherit_prior : bool;  (* Fleet.cold_start_inherit *)
  settling : bool;  (* Observe settling tracker enabled *)
}

let churn_cell_label c =
  Printf.sprintf "%s%s%s%s"
    (if c.flash then "flash-crowd" else "")
    (if c.flash && c.storm then "+" else "")
    (if c.storm then "churn-storm" else "")
    ((if c.inherit_prior then "" else " no-inherit")
    ^ if c.settling then "" else " no-settling")

(* Storm disturbances are population changes against a constant rate:
   the estimate moves a little and the seeded modes not at all, so
   25 ms is generous.  Flash peaks deliberately melt the server for
   20 ms at a time; the recovery being bounded is the whole point, and
   the bound budgets for the backlog drain after each burst. *)
let churn_settle_bound_us = 25_000.0
let flash_settle_bound_us = 60_000.0

let settle_bound_us cell =
  if cell.flash then flash_settle_bound_us else churn_settle_bound_us

let churn_config c =
  (* The 150 µs policy SLO makes batching-off the decisive winner at
     these rates (nagle delay blows the budget), so converged togglers
     hold their arm instead of hunting between near-tied arms on
     window noise.  Storm cells additionally run slow, deliberate
     togglers — 4 ms decision windows, four observations per arm
     before the bandit trusts it — so a freshly spawned, un-seeded
     toggler force-explores for 2 x 4 x 4 ms = 32 ms, comfortably past
     [churn_settle_bound_us], while a seeded one exploits immediately.
     Flash cells keep the default 1 ms tick: their sparse low-rate
     phases starve 4 ms windows of samples, and a hunting toggler
     pinned on the batching arm for 4 ms at a time inflates latency by
     multiple ms. *)
  let dyn =
    Control.Dynamic
      {
        Control.default_dynamic with
        policy = E2e.Policy.Throughput_under_slo { slo_ns = 150_000.0 };
        epsilon = (if c.storm then 0.02 else 0.005);
        tick = (if c.storm then Sim.Time.ms 4 else Sim.Time.ms 1);
        min_observations = (if c.storm then 4 else 3);
      }
  in
  let envelope =
    if c.flash then Arrival.Square { period_us = 80_000.0; duty = 0.25; high = 10.0 }
    else Arrival.Flat
  in
  let churn =
    if c.storm then
      Some
        {
          Fleet.no_churn with
          max_conns = 32;
          script = [ (Sim.Time.ms 60, 6); (Sim.Time.ms 120, -6) ];
        }
    else None
  in
  (* Rates keep every phase dense enough for the estimator to mean
     something: below ~10k rps tenant-wide the per-connection windows
     are starved and Little's-law peeks over near-empty windows read
     as multi-ms garbage no tolerance band can judge.  The flash base
     therefore sits at 15k — its 10x peak genuinely melts the server
     for 20 ms at a time, which is exactly the recovery the flash
     bound is asserting. *)
  let tenant =
    {
      (Fleet.default_tenant ~name:"churny"
         ~rate_rps:(if c.flash then 15000.0 else 20000.0))
      with
      Fleet.n_conns = 8;
      batching = dyn;
      envelope;
      churn;
    }
  in
  {
    (Fleet.default_config ~tenants:[ tenant ]) with
    Fleet.seed = 11;
    warmup = Sim.Time.ms 20;
    duration = Sim.Time.ms 160;
    scope = Fleet.Per_conn;
    cold_start_inherit = c.inherit_prior;
    observe = Some { Observe.default_config with Observe.settling = c.settling };
  }

type churn_verdict = {
  churn_cell : churn_cell;
  fleet_result : Fleet.result;
  churn_failures : string list;
}

let churn_ok v = v.churn_failures = []

let check_churn (r : Fleet.result) ~cell =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  List.iter
    (fun (t : Fleet.tenant_result) ->
      if t.Fleet.t_issued <> t.Fleet.t_completed_total + t.Fleet.t_outstanding_end then
        fail "accounting: tenant %s issued=%d <> completed=%d + outstanding=%d"
          t.Fleet.t_name t.Fleet.t_issued t.Fleet.t_completed_total
          t.Fleet.t_outstanding_end;
      if t.Fleet.t_completed = 0 then
        fail "liveness: tenant %s completed nothing" t.Fleet.t_name)
    r.Fleet.tenants;
  if cell.storm then begin
    let opened =
      List.fold_left (fun acc t -> acc + t.Fleet.t_conns_opened) 0 r.Fleet.tenants
    in
    let closed =
      List.fold_left (fun acc t -> acc + t.Fleet.t_conns_closed) 0 r.Fleet.tenants
    in
    if opened = 0 then fail "churn: no connection ever spawned";
    if closed = 0 then fail "churn: no connection ever drained and closed"
  end;
  (match r.Fleet.observability with
  | None -> fail "settling: no observability attached"
  | Some o ->
    let judged =
      List.filter
        (fun (g : Observe.settle_report) -> g.Observe.g_steady_us <> None)
        o.Observe.settling
    in
    if judged = [] then
      fail "settling: no re-convergence evidence (tracker off or no judged segment)"
    else
      let est_bound = settle_bound_us cell in
      List.iter
        (fun (g : Observe.settle_report) ->
          (match g.Observe.g_settle_us with
          | None ->
            fail "settling: %s edge %.0fus estimate never re-converged" g.Observe.g_id
              g.Observe.g_edge_us
          | Some s when s > est_bound ->
            fail "settling: %s edge %.0fus estimate took %.0fus > %.0fus bound"
              g.Observe.g_id g.Observe.g_edge_us s est_bound
          | Some _ -> ());
          (* Mode re-convergence is only owed by storm cells (a flash
             crowd never changes the winning arm), and always against
             the tight churn bound: a spawned toggler that has to
             re-explore from scratch alternates arms for 32 ms
             regardless of what the rate envelope is doing. *)
          if cell.storm then
            match g.Observe.g_mode_settle_us with
            | None ->
              fail "settling: %s edge %.0fus modes never re-converged" g.Observe.g_id
                g.Observe.g_edge_us
            | Some s when s > churn_settle_bound_us ->
              fail "settling: %s edge %.0fus modes took %.0fus > %.0fus bound"
                g.Observe.g_id g.Observe.g_edge_us s churn_settle_bound_us
            | Some _ -> ())
        judged);
  List.rev !failures

let run_churn_cell cell =
  let fleet_result = Fleet.run (churn_config cell) in
  { churn_cell = cell; fleet_result; churn_failures = check_churn fleet_result ~cell }

let churn_grid () =
  [
    { flash = true; storm = false; inherit_prior = true; settling = true };
    { flash = false; storm = true; inherit_prior = true; settling = true };
  ]

let run_churn_grid ?(domains = 1) cells = Par.Pool.map ~domains run_churn_cell cells
