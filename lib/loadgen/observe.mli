(** Per-run observability: trace ring + metrics registry + estimator
    residuals.

    Created by {!Runner.run} when [config.observe] is set.  Sockets get
    the trace attached, queue-depth gauges are registered for every
    connection, and a read-only sampling tick (running on the
    configured cadence) snapshots the registry and pairs peeked
    estimates with ground-truth latency.  Everything read at sampling
    time uses non-destructive accessors, so enabling observability
    cannot change simulation results. *)

type config = {
  trace_capacity : int;  (** trace ring size; oldest records drop *)
  sample_interval : Sim.Time.span;  (** metrics sampling cadence *)
  trace_sink : (Sim.Trace.record -> unit) option;
      (** When set, trace records stream to this callback (e.g. a
          {!Sim.Trace.Binary} writer) instead of filling the ring, so a
          run of any length traces in constant memory; [output.records]
          is then empty.  Single-run use only — do not share a sinked
          config across parallel sweep workers. *)
  burn_window : Sim.Time.span;
      (** sliding window for SLO burn rates (default 10 ms) *)
  settling : bool;
      (** track re-convergence after envelope edges / churn bursts
          (default true); when off, {!note_edge}/{!note_settle} are
          no-ops and [output.settling] is empty *)
}

val default_config : config
(** 65536 records, 1 ms cadence, no sink, 10 ms burn window, settling
    tracker on. *)

type slo_report = {
  r_id : string;  (** the declared id (run, tenant, or connection) *)
  r_slo_us : float;  (** declared SLO, judged at p99 *)
  r_total : int;
  r_violations : int;  (** completions above the SLO *)
  r_attainment : float;  (** 1 - violations/total (1.0 when empty) *)
  r_p50_us : float option;  (** streaming-histogram quantiles; [None]
                                when no request completed *)
  r_p95_us : float option;
  r_p99_us : float option;
  r_max_burn : float;  (** worst sliding-window burn rate seen *)
  r_final_burn : float;  (** burn rate at the last tick *)
  r_first_burn_us : float option;
      (** first tick whose burn rate exceeded 1.0 (budget-eating) *)
  r_burn : (float * float) list;  (** (tick µs, burn rate), oldest first *)
}
(** Per-id SLO attainment from the streaming observatory.  Burn rate
    is the window's violation fraction over the 1% error budget a
    p99-judged SLO allows: burn > 1 means the budget is being consumed
    faster than sustainable. *)

type settle_report = {
  g_id : string;  (** the tracked id (typically ["tenant/client"]) *)
  g_edge_us : float;  (** the envelope edge / churn burst *)
  g_end_us : float;  (** segment end: the next edge, or end of run *)
  g_steady_us : float option;
      (** the segment's eventual steady estimate (tail median); [None]
          when the segment holds too few samples to judge *)
  g_settle_us : float option;
      (** time from the edge until the estimate is {e and stays} within
          the tolerance band (±25%, floored at ±60 µs) of the steady
          value; [None] when it never holds the band *)
  g_mode_settle_us : float option;
      (** ditto for the nagle-on mode fraction (band ±0.34); [None]
          with no mode series *)
  g_settled : bool;  (** both series settled within the segment *)
}
(** Re-convergence measurement for one edge-to-edge segment. *)

type output = {
  records : Sim.Trace.record list;  (** oldest first *)
  dropped_records : int;  (** overwritten by ring wraparound *)
  samples : Sim.Metrics.sample list;  (** oldest first *)
  residual_pairs : E2e.Residual.pair list;
  residual : E2e.Residual.summary option;
  audits : Sim.Audit.report list;
      (** Little's-law audit per queue over the measured window
          (registration order); empty until {!finalize_audit}. *)
  slo : slo_report list;  (** declaration order *)
  settling : settle_report list;
      (** per-id, per-edge re-convergence reports (edge order within
          declaration order) *)
}
(** Pure data: safe for structural equality and cross-domain moves. *)

type t

val create : config -> t
(** The trace starts enabled. *)

val trace : t -> Sim.Trace.t
val metrics : t -> Sim.Metrics.t
val interval : t -> Sim.Time.span

val audit : t -> Sim.Audit.t
(** The Little's-law audit registry; {!Runner.run} attaches it to every
    socket's estimator and resets its window at warmup end. *)

val finalize_audit : t -> at:Sim.Time.t -> Sim.Audit.report list
(** Close the audit window at [at], store the per-queue reports so
    {!output} carries them, and return them. *)

val declare_slo : t -> at:Sim.Time.t -> id:string -> slo_us:float -> unit
(** Start tracking SLO attainment for completions logged under [id]
    ({!note_request}/{!note_slo}).  Emits an [slo_declared] trace
    breadcrumb carrying the SLO so offline tools can recover it from
    the file alone.  Re-declaring an id is a no-op.
    @raise Invalid_argument for a non-positive or non-finite SLO. *)

val note_slo : t -> id:string -> at:Sim.Time.t -> latency:Sim.Time.span -> unit
(** Feed one completion to [id]'s SLO tracker without logging a
    request or emitting any trace event — how fleet runs track
    per-connection attainment on top of the tenant-level
    {!note_request} stream.  Ignored for undeclared ids. *)

val slo_tick : t -> at:Sim.Time.t -> unit
(** Sample every tracker's sliding-window burn rate at [at].  Called
    from the read-only observability tick; touches no simulation
    state. *)

val slo_reports : t -> slo_report list
(** Current per-id reports, declaration order. *)

val note_request :
  ?id:string -> t -> at:Sim.Time.t -> latency:Sim.Time.span -> unit
(** Log one completed request (the residual ground-truth source) and
    emit a [Request_done] trace event under [id] (default ["client"]).
    Fleet runs pass tenant-tagged ids like ["bare/c0"] so reports can
    group request events by tenant.  When [id] has a declared SLO the
    completion also feeds its tracker. *)

val truth_over : t -> from_us:float -> upto_us:float -> float option
(** Mean logged latency of requests completing in [(from_us, upto_us]];
    [None] when no request completed in the window. *)

val note_residual :
  t -> at:Sim.Time.t -> window_us:float -> est_us:float -> float option
(** Pair an estimate produced at [at] over [window_us] with the
    ground-truth latency over the same window.  Returns the truth used,
    or [None] (nothing recorded) when no request completed in the
    window. *)

val note_sample : t -> Sim.Metrics.sample -> unit

(** {1 Settling-time tracker}

    Measures how fast estimates and chosen modes re-converge after a
    load discontinuity: callers register the discontinuities
    ({!note_edge} — envelope edges, scripted churn epochs) and feed the
    per-tick estimate / mode-fraction series ({!note_settle}); the
    tracker computes, per edge-to-edge segment, the time until each
    series is back within a tolerance band of its eventual steady value
    (the segment's tail median).  All passive bookkeeping — tracking
    settling cannot perturb the run. *)

val note_edge : t -> id:string -> at:Sim.Time.t -> unit
(** Register a load discontinuity for [id] and drop an ["edge"]
    breadcrumb into the trace so offline tools can recover it. *)

val note_settle :
  t -> id:string -> at:Sim.Time.t -> est_us:float option -> nagle_frac:float -> unit
(** Feed one observability-tick sample for [id]: the aggregate latency
    estimate (skipped when [None]) and the fraction of the id's
    connections currently running Nagle-on ([nan] to skip). *)

val settle_reports : t -> until_us:float -> settle_report list
(** Judge every segment now, closing the last one at [until_us]. *)

val judge_settle :
  (float * float) list ->
  edge_us:float ->
  end_us:float ->
  kind:[ `Estimate | `Mode ] ->
  float option * float option
(** [(steady, settle_us)] for an arbitrary [(time µs, value)] series
    over one segment, under the tracker's own median filter and
    tolerance bands — how offline tools (e.g. [e2ebench slo]) recompute
    settling from a trace file's ["edge"] breadcrumbs and
    request-completion buckets.  Samples at [edge_us] and [end_us]
    themselves are excluded, matching the in-run tracker. *)

val output : ?until_us:float -> t -> output
(** [until_us] closes the last settling segment (defaults to the last
    sample seen). *)
