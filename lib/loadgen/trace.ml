type entry = { at : Sim.Time.t; cmd : Kv.Command.t }

let entry_to_line e =
  let us = Sim.Time.to_ns e.at / 1_000 in
  match e.cmd with
  | Kv.Command.Set { key; value; ttl = None } ->
    Ok (Printf.sprintf "%d SET %s %d" us key (String.length value))
  | Kv.Command.Get key -> Ok (Printf.sprintf "%d GET %s" us key)
  | cmd ->
    Error (Printf.sprintf "trace format does not cover %s" (Kv.Command.name cmd))

(* One shared value payload per size, as in Workload: domain-local so
   traces can be parsed from pool workers without racing on the
   table. *)
let value_cache : (int, string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let value_of_size n =
  let cache = Domain.DLS.get value_cache in
  match Hashtbl.find_opt cache n with
  | Some v -> v
  | None ->
    let v = String.make n 'v' in
    Hashtbl.add cache n v;
    v

let parse_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else begin
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [ us; "SET"; key; size ] -> (
      match (int_of_string_opt us, int_of_string_opt size) with
      | Some us, Some size when us >= 0 && size > 0 ->
        Ok
          (Some
             {
               at = Sim.Time.us us;
               cmd = Kv.Command.Set { key; value = value_of_size size; ttl = None };
             })
      | _ -> Error "bad SET line (expected: <us> SET <key> <bytes>)")
    | [ us; "GET"; key ] -> (
      match int_of_string_opt us with
      | Some us when us >= 0 -> Ok (Some { at = Sim.Time.us us; cmd = Kv.Command.Get key })
      | _ -> Error "bad GET line (expected: <us> GET <key>)")
    | _ -> Error "unrecognized trace line"
  end

let to_string entries =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# e2ebatch trace: <microseconds> SET <key> <bytes> | GET <key>\n";
  List.iter
    (fun e ->
      match entry_to_line e with
      | Ok line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n'
      | Error msg -> invalid_arg ("Trace.to_string: " ^ msg))
    entries;
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go acc last_at lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line line with
      | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
      | Ok None -> go acc last_at (lineno + 1) rest
      | Ok (Some e) ->
        if Sim.Time.compare e.at last_at < 0 then
          Error (Printf.sprintf "line %d: timestamps must be non-decreasing" lineno)
        else go (e :: acc) e.at (lineno + 1) rest)
  in
  go [] Sim.Time.zero 1 lines

let save_file path entries =
  try
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_string entries));
    Ok ()
  with Sys_error msg | Invalid_argument msg -> Error msg

let load_file path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string (In_channel.input_all ic))
  with Sys_error msg -> Error msg

let synthesize ~workload ~rate_rps ~duration ~rng =
  if rate_rps <= 0.0 then invalid_arg "Trace.synthesize: rate must be positive";
  let arrival = Arrival.poisson ~rng ~rate_rps in
  let rec go acc at =
    let at = Sim.Time.add at (Arrival.next_gap arrival ~now:at) in
    if Sim.Time.compare at duration > 0 then List.rev acc
    else go ({ at; cmd = Workload.next_command workload ~rng } :: acc) at
  in
  go [] Sim.Time.zero

let duration = function
  | [] -> 0
  | entries -> (List.nth entries (List.length entries - 1)).at

let count = List.length

(* {1 Inter-arrival gap traces}

   One non-negative gap in microseconds per line ([#] comments and
   blanks allowed); feeds [Arrival.replay]. *)

let gaps_of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go acc lineno = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | line :: rest ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then go acc (lineno + 1) rest
      else begin
        match float_of_string_opt line with
        | Some us when Float.is_finite us && us >= 0.0 ->
          go (int_of_float (us *. 1e3) :: acc) (lineno + 1) rest
        | Some _ ->
          Error
            (Printf.sprintf "line %d: gap must be a finite non-negative number" lineno)
        | None ->
          Error
            (Printf.sprintf "line %d: bad gap line (expected one number, microseconds)"
               lineno)
      end
  in
  go [] 1 lines

let gaps_to_string gaps =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# e2ebatch gap trace: one inter-arrival gap per line, microseconds\n";
  Array.iter
    (fun g -> Buffer.add_string buf (Printf.sprintf "%.3f\n" (float_of_int g /. 1e3)))
    gaps;
  Buffer.contents buf

let load_gaps path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        match gaps_of_string (In_channel.input_all ic) with
        | Ok gaps -> Ok gaps
        | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
  with Sys_error msg -> Error msg

let save_gaps path gaps =
  try
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (gaps_to_string gaps));
    Ok ()
  with Sys_error msg -> Error msg
