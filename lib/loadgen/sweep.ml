type point = { rate_rps : float; on : Runner.result; off : Runner.result }

let run_pair ?(domains = 1) ~base ~rate_rps () =
  match
    Par.Pool.map ~domains:(min domains 2)
      (fun batching -> Runner.run { base with rate_rps; batching })
      [ Runner.Static_on; Runner.Static_off ]
  with
  | [ on; off ] -> { rate_rps; on; off }
  | _ -> assert false

let sweep ?(domains = 1) ~base ~rates () =
  (* Each worker runs one rate's on/off pair; every [Runner.run] is a
     pure function of (config, seed), so results are bit-identical to
     the sequential path whatever the domain count. *)
  Par.Pool.map ~domains (fun rate_rps -> run_pair ~base ~rate_rps ()) rates

(* First rate from which "on wins" holds for the rest of the sweep,
   so a noisy early crossing does not register as the cutoff. *)
let cutoff_of points ~value =
  let rec suffix_wins = function
    | [] -> true
    | p :: rest -> (
      match value p with
      | Some (on_v, off_v) -> on_v <= off_v && suffix_wins rest
      | None -> false)
  in
  let rec go = function
    | [] -> None
    | p :: rest ->
      if suffix_wins (p :: rest) then Some p.rate_rps else go rest
  in
  go points

let cutoff_rps points =
  cutoff_of points ~value:(fun p -> Some (p.on.measured_mean_us, p.off.measured_mean_us))

let estimated_cutoff_rps points =
  cutoff_of points ~value:(fun p ->
      match (p.on.estimated_us, p.off.estimated_us) with
      | Some a, Some b -> Some (a, b)
      | _ -> None)

let sustainable (r : Runner.result) ~slo_us =
  r.measured_mean_us <= slo_us && r.achieved_rps >= 0.9 *. r.offered_rps

let max_sustainable_rps ~which ~slo_us points =
  List.fold_left
    (fun acc p ->
      let r = match which with `On -> p.on | `Off -> p.off in
      if sustainable r ~slo_us then Some p.rate_rps else acc)
    None points

let latency_improvement_at ~rate_rps points =
  List.find_map
    (fun p ->
      if Float.abs (p.rate_rps -. rate_rps) < 0.5 && p.on.measured_mean_us > 0.0 then
        Some (p.off.measured_mean_us /. p.on.measured_mean_us)
      else None)
    points

let range_extension ~slo_us points =
  match
    ( max_sustainable_rps ~which:`On ~slo_us points,
      max_sustainable_rps ~which:`Off ~slo_us points )
  with
  | Some on, Some off when off > 0.0 -> Some (on /. off)
  | _ -> None
