(** Request arrival processes.

    Open-loop generation as in Lancet: inter-arrival gaps are drawn
    independently of completions, so the offered load is fixed and
    queueing delay shows up as latency rather than as a reduced request
    rate.

    Any base process can additionally be wrapped in a time-varying
    {!envelope} — a rate multiplier evaluated at the draw instant — to
    model flash crowds, diurnal ramps and stepped load changes. *)

type envelope =
  | Flat  (** no modulation; the base process runs undisturbed *)
  | Steps of (float * float) list
      (** [(at_us, factor)] piecewise-constant schedule, strictly
          increasing times; the factor is 1.0 before the first step and
          each step holds until the next *)
  | Ramp of { period_us : float; from_f : float; to_f : float }
      (** sawtooth (diurnal) ramp: factor sweeps linearly [from_f] to
          [to_f] over each period, then wraps *)
  | Square of { period_us : float; duty : float; high : float }
      (** flash-crowd square wave: factor [high] for the first
          [duty] fraction of each period, 1.0 for the rest *)

val factor : envelope -> at_us:float -> float
(** Instantaneous rate multiplier at absolute sim time [at_us]. *)

val edges : envelope -> until_us:float -> float list
(** Discontinuity instants in [(0, until_us]], ascending — the moments a
    settling tracker measures re-convergence from. *)

type t

val poisson : rng:Sim.Rng.t -> rate_rps:float -> t
(** Exponential gaps with mean [1/rate] — a memoryless open-loop
    client.  @raise Invalid_argument when the rate is not finite and
    positive. *)

val uniform : rate_rps:float -> t
(** Fixed gaps of exactly [1/rate].
    @raise Invalid_argument when the rate is not finite and positive. *)

val bursty : rng:Sim.Rng.t -> rate_rps:float -> burst:int -> t
(** Poisson arrivals of bursts of [burst] back-to-back requests, with
    the gap mean scaled so the long-run rate stays [rate_rps].
    @raise Invalid_argument when the rate is not finite and positive or
    [burst < 1]. *)

val replay : gaps_ns:int array -> t
(** Replays recorded inter-arrival gaps verbatim, cycling when the
    trace runs out; [rate] reports the trace's long-run mean.
    @raise Invalid_argument on an empty trace, a negative gap, or a
    trace of all-zero gaps. *)

val modulate : t -> envelope -> t
(** Wrap a base process in a rate envelope.  Drawn gaps are divided by
    the factor at draw time; [Flat] returns the process unchanged.
    @raise Invalid_argument on malformed envelopes (non-positive or
    non-finite factors, unsorted steps, duty outside (0,1)). *)

val next_gap : t -> now:Sim.Time.t -> Sim.Time.span
(** The gap before the next request (0 within a burst), with the
    envelope factor applied at time [now]. *)

val rate : t -> float
val envelope : t -> envelope
