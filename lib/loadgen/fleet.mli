(** Heterogeneous multi-tenant fleet against one shared server.

    Each tenant models one client deployment — its own host (app core +
    IRQ core), connection count, arrival process, workload, CPU price
    ([cpu_multiplier] > 1 is the paper's Figure-2 VM client), link
    delay and SLO — and every tenant's connections terminate at the
    same single-threaded server (one app core, one IRQ core).  The
    shared server couples the tenants: batching decisions made for one
    change the CPU headroom left for the others.

    The [scope] knob sets the granularity of batching control: one
    {!Control} group spanning the fleet, one per tenant, or one per
    connection.  Per-connection dynamic groups each own their toggler,
    estimator windows and exploration rng, so a bare-metal tenant's
    connections can settle on Nagle-on while a VM tenant's settle on
    Nagle-off — the headline heterogeneous-fleet experiment where no
    global static choice serves both.

    Determinism: identical configs produce identical results across
    repeats and across worker-domain counts; rng streams are split in a
    fixed, documented order (two per tenant, then one per control
    group). *)

type scope =
  | Global  (** one control group spans every connection of the fleet *)
  | Per_tenant  (** one group per tenant *)
  | Per_conn  (** one group — toggler, estimators, rng — per connection *)

val scope_label : scope -> string

type tenant = {
  name : string;
      (** unique, non-empty, no '/' or whitespace; trace/span ids are
          tagged ["<name>/c<i>"] / ["<name>/s<i>"] *)
  n_conns : int;
  rate_rps : float;
  burst : int;  (** 1 = plain Poisson arrivals *)
  workload : Workload.t;
  cpu_multiplier : float;
      (** scales the client's per-request CPU costs; 1.0 bare metal,
          4.0 the paper's VM client *)
  link : Tcp.Conn.link_params;
  slo_us : float;  (** per-tenant SLO used for [t_under_slo] *)
  batching : Control.batching;
      (** this tenant's mode under [Per_tenant]/[Per_conn] scopes;
          ignored under [Global] *)
}

val default_tenant : name:string -> rate_rps:float -> tenant
(** 1 connection, Poisson, paper SET-only workload, bare-metal CPU,
    default link, 500 µs SLO, [Static_off]. *)

type config = {
  seed : int;
  warmup : Sim.Time.span;
  duration : Sim.Time.span;  (** measured period, after warmup *)
  scope : scope;
  batching : Control.batching;
      (** the fleet-wide group's mode under [Global]; ignored otherwise *)
  server : Kv.Server.config;
  client : Kv.Client.config;
      (** base costs; each tenant's [cpu_multiplier] stacks on top *)
  observe : Observe.config option;
  tenants : tenant list;
}

val default_config : tenants:tenant list -> config
(** Seed 42, 100 ms warmup + 400 ms measured, [Global] scope with
    [Static_off], default server/client costs, no observability. *)

type tenant_result = {
  t_name : string;
  t_offered_rps : float;
  t_achieved_rps : float;
  t_completed : int;  (** completions inside the measured window *)
  t_issued : int;  (** lifetime, warmup included *)
  t_completed_total : int;  (** lifetime completions, warmup included *)
  t_outstanding_end : int;
      (** liveness closure:
          [t_issued = t_completed_total + t_outstanding_end] *)
  t_mean_us : float;
  t_p50_us : float;
  t_p99_us : float;
  t_under_slo : float;  (** fraction within this tenant's [slo_us] *)
  t_estimated_us : float option;
      (** §3.2 stack estimate aggregated over the tenant's connections *)
  t_estimated_tput_rps : float;
  t_client_app_util : float;
  t_nagle_toggles : int;  (** summed over the tenant's client sockets *)
}

type result = {
  tenants : tenant_result list;  (** in [config.tenants] order *)
  fleet_achieved_rps : float;
  fleet_mean_us : float;
  fleet_p99_us : float;
  goodput_max_min_ratio : float option;
      (** max/min of per-tenant achieved/offered; 1.0 is perfectly fair *)
  goodput_jain : float option;  (** Jain's index over the same fractions *)
  server_app_util : float;
  server_irq_util : float;
  final_modes : (string * E2e.Toggler.mode) list;
      (** final mode per dynamic control group: group ids are ["fleet"],
          tenant names, or connection labels depending on [scope] *)
  observability : Observe.output option;
}

val run : config -> result
(** Raises [Invalid_argument] on an empty tenant list, duplicate or
    malformed tenant names, or non-positive per-tenant rates, bursts,
    connection counts, CPU multipliers or SLOs. *)
