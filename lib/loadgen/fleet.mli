(** Heterogeneous multi-tenant fleet against one shared server.

    Each tenant models one client deployment — its own host (app core +
    IRQ core), connection count, arrival process, workload, CPU price
    ([cpu_multiplier] > 1 is the paper's Figure-2 VM client), link
    delay and SLO — and every tenant's connections terminate at the
    same single-threaded server (one app core, one IRQ core).  The
    shared server couples the tenants: batching decisions made for one
    change the CPU headroom left for the others.

    The [scope] knob sets the granularity of batching control: one
    {!Control} group spanning the fleet, one per tenant, or one per
    connection.  Per-connection dynamic groups each own their toggler,
    estimator windows and exploration rng, so a bare-metal tenant's
    connections can settle on Nagle-on while a VM tenant's settle on
    Nagle-off — the headline heterogeneous-fleet experiment where no
    global static choice serves both.

    Time-varying load: a tenant's arrival process can be wrapped in an
    {!Arrival.envelope} (flash-crowd square waves, diurnal ramps,
    stepped schedules) or replaced outright by a recorded gap trace
    ([replay_gaps]), and tenants may declare connection [churn].
    Connections spawned mid-run enter TCP slow-start and the estimator
    cold-start path — with [cold_start_inherit] they adopt the live
    group mode (Global/Per_tenant) or seed a fresh per-connection
    toggler from a sibling's learned arms (Per_conn) instead of
    re-exploring.  Departing connections stop accepting requests, drain
    what is outstanding, and FIN cleanly.  {!Observe}'s settling
    tracker measures re-convergence after every envelope edge and
    scripted churn epoch.

    Determinism: identical configs produce identical results across
    repeats and across worker-domain counts; rng streams are split in a
    fixed, documented order (two per tenant, one per control group,
    then one per {e churning} tenant).  Envelope-free, churn-free
    configs split exactly the pre-churn streams, so their results stay
    bit-identical to the fixed-population implementation. *)

type scope =
  | Global  (** one control group spans every connection of the fleet *)
  | Per_tenant  (** one group per tenant *)
  | Per_conn  (** one group — toggler, estimators, rng — per connection *)

val scope_label : scope -> string

type churn = {
  arrive_rps : float;
      (** Poisson connection-arrival rate (connections/s); 0 disables *)
  depart_rps : float;  (** Poisson departure rate; 0 disables *)
  min_conns : int;  (** departures below this floor are refused (>= 1) *)
  max_conns : int;  (** arrivals above this cap are dropped *)
  script : (Sim.Time.t * int) list;
      (** scripted epochs: at each absolute instant, [+n] spawns /
          [-n] retires that many connections (clamped to the
          min/max band); each epoch is also a settling-tracker edge *)
}

val no_churn : churn
(** No rates, no script, population band [1, 64] — a base to [with]. *)

type tenant = {
  name : string;
      (** unique, non-empty, no '/' or whitespace; trace/span ids are
          tagged ["<name>/c<i>"] / ["<name>/s<i>"] *)
  n_conns : int;
  rate_rps : float;
  burst : int;  (** 1 = plain Poisson arrivals *)
  workload : Workload.t;
  cpu_multiplier : float;
      (** scales the client's per-request CPU costs; 1.0 bare metal,
          4.0 the paper's VM client *)
  link : Tcp.Conn.link_params;
  slo_us : float;  (** per-tenant SLO used for [t_under_slo] *)
  batching : Control.batching;
      (** this tenant's mode under [Per_tenant]/[Per_conn] scopes;
          ignored under [Global] *)
  envelope : Arrival.envelope;
      (** rate modulation over the base arrival process ([Flat] = the
          historical fixed-rate behaviour) *)
  replay_gaps : int array option;
      (** when set, replaces the Poisson/bursty base process with a
          verbatim replay of these inter-arrival gaps (ns), cycling —
          see {!Trace.load_gaps}; [rate_rps]/[burst] are then ignored
          and the offered rate reported is the trace's long-run mean *)
  churn : churn option;  (** connection lifecycle; [None] = fixed population *)
}

val default_tenant : name:string -> rate_rps:float -> tenant
(** 1 connection, Poisson, paper SET-only workload, bare-metal CPU,
    default link, 500 µs SLO, [Static_off], flat envelope, no churn. *)

type config = {
  seed : int;
  warmup : Sim.Time.span;
  duration : Sim.Time.span;  (** measured period, after warmup *)
  scope : scope;
  batching : Control.batching;
      (** the fleet-wide group's mode under [Global]; ignored otherwise *)
  server : Kv.Server.config;
  client : Kv.Client.config;
      (** base costs; each tenant's [cpu_multiplier] stacks on top *)
  observe : Observe.config option;
  cold_start_inherit : bool;
      (** churn arrivals inherit the group prior (live mode / seeded
          arms) and discard their slow-start estimation window; [false]
          is the ablation that makes them re-explore from scratch —
          the chaos churn cells assert it breaks re-convergence
          bounds.  Default [true]. *)
  cores : int;
      (** server shards (simulated cores), each with a private run
          queue, app CPU and irq CPU.  [cores = 1] is the unsharded
          tier and runs bit-identical to the pre-sharding code.
          Default 1. *)
  lb : Shard.Lb.policy;
      (** front load-balancer policy steering new connections onto
          shards.  Ignored when [cores = 1].  Default
          [Consistent_hash]. *)
  tenants : tenant list;
}

val default_config : tenants:tenant list -> config
(** Seed 42, 100 ms warmup + 400 ms measured, [Global] scope with
    [Static_off], default server/client costs, no observability,
    cold-start inheritance on. *)

type tenant_result = {
  t_name : string;
  t_offered_rps : float;
      (** base arrival rate (the trace's long-run mean under replay) *)
  t_achieved_rps : float;
  t_completed : int;  (** completions inside the measured window *)
  t_issued : int;  (** lifetime, warmup included *)
  t_completed_total : int;  (** lifetime completions, warmup included *)
  t_outstanding_end : int;
      (** liveness closure over every connection the tenant ever had,
          departed ones included:
          [t_issued = t_completed_total + t_outstanding_end] *)
  t_mean_us : float;
  t_p50_us : float;
  t_p99_us : float;
  t_under_slo : float;  (** fraction within this tenant's [slo_us] *)
  t_estimated_us : float option;
      (** §3.2 stack estimate aggregated over the tenant's live
          connections *)
  t_estimated_tput_rps : float;
  t_client_app_util : float;
  t_nagle_toggles : int;  (** summed over the tenant's client sockets *)
  t_conns_opened : int;  (** connections spawned mid-run by churn *)
  t_conns_closed : int;  (** connections drained, FINed and closed *)
}

type shard_result = {
  sh_index : int;
  sh_conns : int;  (** connections ever steered here, departed included *)
  sh_issued : int;  (** lifetime, warmup included *)
  sh_completed_total : int;  (** lifetime completions, warmup included *)
  sh_outstanding_end : int;
      (** per-shard liveness closure:
          [sh_issued = sh_completed_total + sh_outstanding_end] *)
  sh_completed : int;  (** completions inside the measured window *)
  sh_achieved_rps : float;
  sh_mean_us : float;
  sh_p99_us : float;
  sh_app_util : float;
  sh_irq_util : float;
}

type result = {
  tenants : tenant_result list;  (** in [config.tenants] order *)
  shards : shard_result list;
      (** one per shard in index order; a single element when
          [cores = 1] *)
  fleet_achieved_rps : float;
  fleet_mean_us : float;
  fleet_p99_us : float;
  goodput_max_min_ratio : float option;
      (** max/min of per-tenant achieved/offered; 1.0 is perfectly fair *)
  goodput_jain : float option;  (** Jain's index over the same fractions *)
  server_app_util : float;  (** summed across shards *)
  server_irq_util : float;  (** summed across shards *)
  final_modes : (string * E2e.Toggler.mode) list;
      (** final mode per dynamic control group (churn-spawned groups
          included): group ids are ["fleet"], tenant names, or
          connection labels depending on [scope] *)
  observability : Observe.output option;
      (** includes the per-tenant settling reports when envelopes or
          scripted churn declared edges *)
}

val run : config -> result
(** Raises [Invalid_argument] on an empty tenant list, duplicate or
    malformed tenant names, non-positive per-tenant rates, bursts,
    connection counts, CPU multipliers or SLOs, malformed envelopes or
    replay traces, or churn declarations whose rates are negative,
    whose population band is empty, or whose scripts hold zero deltas
    or negative times. *)
