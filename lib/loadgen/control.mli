(** Batching control groups.

    One control group drives the batching decision for a set of
    connections: the two static modes are a socket flag, while
    [Dynamic] (the §5 ε-greedy toggler) and [Aimd_limit] (§5's
    better-heuristics variant) schedule a per-group decision tick that
    reads the group's client-side estimators, scores the active arm and
    switches every socket of the group together.

    {!Runner.run} attaches exactly one group spanning the whole run
    (the pre-fleet behaviour, re-exported there so its API is
    unchanged); {!Fleet.run} attaches one per scope unit — fleet,
    tenant, or single connection — each with an independently split
    rng, so a per-connection group can settle on Nagle-on while its
    neighbour settles on Nagle-off. *)

type dynamic = {
  policy : E2e.Policy.t;
  epsilon : float;
  tick : Sim.Time.span;  (** decision/observation granularity *)
  ewma_alpha : float;
  min_observations : int;
  stale_after_rtts : float;
      (** k: shares older than k·srtt mark estimates stale (armed only
          when [fault_armed]) *)
  stale_floor : Sim.Time.span;
  degrade : E2e.Degrade.config;  (** freeze/thaw hysteresis *)
  fallback : E2e.Toggler.mode;  (** static mode pinned while stale *)
}

val default_dynamic : dynamic
(** SLO policy at 500 µs, ε = 0.05, 1 ms tick, EWMA α = 0.3; staleness
    at max(8 RTTs, 2 ms) with 2-tick freeze/thaw hysteresis, falling
    back to [Batch_off]. *)

type aimd_cfg = {
  slo_us : float;
  aimd_tick : Sim.Time.span;
  min_limit : int;  (** bytes; the floor approximates TCP_NODELAY *)
  max_limit : int;  (** bytes; the MSS recovers full Nagle behaviour *)
  increase : int;
  decrease : float;
}

val default_aimd : aimd_cfg
(** SLO 500 µs, 1 ms tick, limit in 64–1448 B, +128 B / x0.5. *)

type batching = Static_on | Static_off | Dynamic of dynamic | Aimd_limit of aimd_cfg

val batching_label : batching -> string

val initial_nagle : batching -> bool
(** The socket's Nagle flag at connection setup for this mode. *)

type estimate_sample = {
  at_us : float;
  latency_us : float option;
  throughput_rps : float;
  mode : E2e.Toggler.mode;
}

val estimate_socks :
  ?advance:bool ->
  Tcp.Socket.t list ->
  at:Sim.Time.t ->
  E2e.Aggregate.t * E2e.Estimator.estimate list
(** §3.2 aggregate over the sockets' client-side estimators.
    [advance] (default false) closes each estimation window instead of
    peeking. *)

type t

val attach :
  ?ledger:E2e.Ledger.t ->
  engine:Sim.Engine.t ->
  until:Sim.Time.t ->
  rng:Sim.Rng.t ->
  fault_armed:bool ->
  batching:batching ->
  client_socks:Tcp.Socket.t list ->
  all_socks:Tcp.Socket.t list ->
  unit ->
  t
(** Create the group and (for [Dynamic]/[Aimd_limit]) schedule its
    decision tick until [until].  [client_socks] supply the estimates;
    mode switches apply to [all_socks] (both ends of every connection
    in the group).  [rng] feeds the ε-greedy exploration draws only —
    static and AIMD groups never consume it.  [fault_armed] arms the
    staleness → degrade → fallback machinery (dynamic groups only).
    With [ledger] set, every toggler/AIMD decision is recorded as a
    [Decision_made] trace event (per-arm estimates, ε-branch, freeze
    state, staleness clock); the caller feeds request completions to
    {!E2e.Ledger.completion} so tenures close with realized
    [Decision_outcome]s.  Ledgering only writes trace events — it
    never perturbs the run. *)

val adopt :
  ?inherit_mode:bool -> t -> client_sock:Tcp.Socket.t -> server_sock:Tcp.Socket.t -> unit
(** Join a connection spawned mid-run (fleet churn) to a live group.
    The pair becomes visible to the next decision tick, and — with
    [inherit_mode] (the default) — the group's {e current} mode
    (toggler arm, AIMD limit, or static flag) is applied to both
    sockets immediately: the cold-start inheritance path for
    [Global]/[Per_tenant] scope.  [~inherit_mode:false] joins the
    membership only (the chaos ablation), leaving the sockets on their
    setup-time flags until the next group-wide switch. *)

val abandon : t -> client_sock:Tcp.Socket.t -> server_sock:Tcp.Socket.t -> unit
(** Remove a departing connection (compared physically) so the decision
    tick stops reading its estimator while it drains and closes. *)

val samples : t -> estimate_sample list
(** Tick-by-tick estimate log, oldest first (dynamic groups; empty
    otherwise). *)

val final_mode : t -> E2e.Toggler.mode option

val toggler : t -> E2e.Toggler.t option
(** The group's ε-greedy toggler (dynamic groups only) — exposed so a
    per-conn group spawned by churn can seed its arms from a sibling
    via {!E2e.Toggler.seed_arm}. *)

val client_socks : t -> Tcp.Socket.t list
(** Current client-side membership. *)

val current_nagle : t -> bool
(** The Nagle flag the group would apply to a joining socket now. *)

val final_batch_limit : t -> int option
val degrade_freezes : t -> int option
val degrade_thaws : t -> int option
val degrade_frozen_end : t -> bool option

val sample_summary :
  t -> warmup_until:Sim.Time.t -> float option * float
(** Mean estimated latency (µs) and mean estimated throughput over the
    group's post-warmup samples; [(None, 0.)] when there are none. *)
