(** Load sweeps and the paper's headline metrics.

    Figure 4 sweeps offered load and compares Nagle on/off; from the
    two latency-vs-load curves the paper reads off (i) the cutoff where
    batching starts winning, (ii) each configuration's maximum
    sustainable load under the 500 µs SLO, and (iii) the latency
    improvement at a given rate. *)

type point = {
  rate_rps : float;
  on : Runner.result;  (** Nagle enabled *)
  off : Runner.result;  (** Nagle disabled (Redis default) *)
}

val run_pair : ?domains:int -> base:Runner.config -> rate_rps:float -> unit -> point
(** Run both configurations at one offered load.  [base]'s [batching]
    field is overridden.  [domains] (default 1) runs the on/off pair on
    two domains via {!Par.Pool}; results are identical either way. *)

val sweep :
  ?domains:int -> base:Runner.config -> rates:float list -> unit -> point list
(** Sweep every rate with Nagle on and off.  With [domains > 1] the
    per-rate pairs are fanned out across that many OCaml domains
    ({!Par.Pool.map}); each simulation is a pure function of its config
    and seed, so the point list is bit-identical to [~domains:1] — only
    wall-clock time changes. *)

val cutoff_rps : point list -> float option
(** Lowest swept rate from which batching's measured mean latency stays
    at or below no-batching's — where the on/off curves cross. *)

val estimated_cutoff_rps : point list -> float option
(** Same, from the estimator's numbers — the paper's key accuracy test
    is that the two cutoffs coincide (Figure 4a). *)

val max_sustainable_rps :
  which:[ `On | `Off ] -> slo_us:float -> point list -> float option
(** Highest swept rate whose mean latency meets the SLO and whose
    achieved throughput keeps up with the offered load (within 10%). *)

val latency_improvement_at : rate_rps:float -> point list -> float option
(** off/on mean-latency ratio at the given swept rate (2.80x at
    37.5 kRPS in the paper). *)

val range_extension : slo_us:float -> point list -> float option
(** Ratio of batched to unbatched sustainable load (1.93x in the
    paper). *)
