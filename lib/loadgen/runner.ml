(* The batching types and the controller itself live in {!Control} so
   the fleet engine can instantiate one group per scope unit; they are
   re-exported here verbatim to keep the single-run API unchanged. *)

type dynamic = Control.dynamic = {
  policy : E2e.Policy.t;
  epsilon : float;
  tick : Sim.Time.span;
  ewma_alpha : float;
  min_observations : int;
  stale_after_rtts : float;
  stale_floor : Sim.Time.span;
  degrade : E2e.Degrade.config;
  fallback : E2e.Toggler.mode;
}

let default_dynamic = Control.default_dynamic

type aimd_cfg = Control.aimd_cfg = {
  slo_us : float;
  aimd_tick : Sim.Time.span;
  min_limit : int;
  max_limit : int;
  increase : int;
  decrease : float;
}

let default_aimd = Control.default_aimd

type batching = Control.batching =
  | Static_on
  | Static_off
  | Dynamic of dynamic
  | Aimd_limit of aimd_cfg

let batching_label = Control.batching_label

type config = {
  seed : int;
  warmup : Sim.Time.span;
  duration : Sim.Time.span;
  rate_rps : float;
  burst : int;
  n_conns : int;
  workload : Workload.t;
  trace : Trace.entry list option;
      (* replay this schedule instead of drawing from workload/arrival *)
  batching : batching;
  unit_mode : E2e.Units.t;
  exchange : E2e.Exchange.policy;
  server : Kv.Server.config;
  client : Kv.Client.config;
  mss : int;
  rcv_buf : int;
  cork : bool;
  tso : bool;
  cc : bool;
  loss_prob : float;  (* per-packet drop probability, both directions *)
  fault : Fault.Plan.t option;  (* deterministic fault-injection plan *)
  sack : bool;  (* SACK scoreboard loss recovery (go-back-N when off) *)
  wscale : Tcp.Socket.wscale;  (* window carriage: exact or RFC 7323 *)
  persist : bool;  (* zero-window persist probing *)
  delack_timeout : Sim.Time.span;
  tx_cost : Sim.Time.span;
  rx_seg_cost : Sim.Time.span;
  rx_batch_cost : Sim.Time.span;
  gro_enabled : bool;
  gro_flush_timeout : Sim.Time.span;
  link : Tcp.Conn.link_params;
  observe : Observe.config option;
}

let default_config ~rate_rps ~batching =
  {
    seed = 42;
    warmup = Sim.Time.ms 100;
    duration = Sim.Time.ms 400;
    rate_rps;
    burst = 1;
    n_conns = 1;
    workload = Workload.paper_set_only;
    trace = None;
    batching;
    unit_mode = E2e.Units.Bytes;
    exchange = E2e.Exchange.Periodic (Sim.Time.us 100);
    server = Kv.Server.default_config;
    client = Kv.Client.default_config;
    mss = 1448;
    rcv_buf = 1024 * 1024;
    cork = false;
    tso = false;
    cc = false;
    loss_prob = 0.0;
    fault = None;
    sack = true;
    wscale = `Exact;
    persist = true;
    delack_timeout = Sim.Time.ms 40;
    tx_cost = Sim.Time.ns 300;
    rx_seg_cost = Sim.Time.ns 150;
    rx_batch_cost = Sim.Time.us 8;
    gro_enabled = true;
    gro_flush_timeout = Sim.Time.us 12;
    link = Tcp.Conn.default_link;
    observe = None;
  }

type estimate_sample = Control.estimate_sample = {
  at_us : float;
  latency_us : float option;
  throughput_rps : float;
  mode : E2e.Toggler.mode;
}

type result = {
  offered_rps : float;
  achieved_rps : float;
  completed : int;
  issued : int;
  completed_total : int;
  outstanding_end : int;
  link_dropped : int;
  shares_corrupted : int;
  shares_rejected : int;
  degrade_freezes : int option;
  degrade_thaws : int option;
  degrade_frozen_end : bool option;
  measured_mean_us : float;
  measured_p50_us : float;
  measured_p99_us : float;
  under_slo : float;
  estimated_us : float option;
  estimated_local_us : float option;
  estimated_remote_us : float option;
  estimated_tput_rps : float;
  hint_estimated_us : float option;
  hint_tput_rps : float option;
  hint_server_estimated_us : float option;
  client_app_util : float;
  server_app_util : float;
  client_irq_util : float;
  server_irq_util : float;
  packets : int;
  packets_per_request : float;
  server_batch_mean : float;
  server_wakeups : int;
  nagle_toggles : int;
  final_mode : E2e.Toggler.mode option;
  final_batch_limit : int option;
  server_gro_merge : float;
  server_gro_batches : int;
  server_acks_by_timer : int;
  client_srtt_us : float option;
      (* the RTT baseline the paper rules out, for comparison *)
  client_p99_est_us : float option;  (* online P2 tail estimate *)
  samples : estimate_sample list;
  observability : Observe.output option;
}

let slo_us = 500.0

let ns_opt_to_us = Option.map (fun ns -> ns /. 1e3)

type baseline = {
  b_client_app : Sim.Time.span;
  b_server_app : Sim.Time.span;
  b_client_irq : Sim.Time.span;
  b_server_irq : Sim.Time.span;
  b_packets : int;
  b_hints : E2e.Queue_state.share list;
  b_server_hints : E2e.Queue_state.share option list;
}

let run cfg =
  if cfg.n_conns < 1 then invalid_arg "Runner.run: n_conns must be at least 1";
  if (not (Float.is_finite cfg.rate_rps)) || cfg.rate_rps <= 0.0 then
    invalid_arg "Runner.run: rate_rps must be positive and finite";
  if cfg.burst < 1 then invalid_arg "Runner.run: burst must be at least 1";
  let initial_nagle = Control.initial_nagle cfg.batching in
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed:cfg.seed in
  let workload_rng = Sim.Rng.split rng in
  let arrival_rng = Sim.Rng.split rng in
  let toggler_rng = Sim.Rng.split rng in
  let socket_cfg =
    {
      Tcp.Socket.mss = cfg.mss;
      nagle = initial_nagle;
      cork = cfg.cork;
      tso_max = (if cfg.tso then Some (64 * 1024) else None);
      cc_enabled = cfg.cc;
      delack_timeout = cfg.delack_timeout;
      delack_max_pending = 2;
      rcv_buf = cfg.rcv_buf;
      unit_mode = cfg.unit_mode;
      exchange = cfg.exchange;
      sack = cfg.sack;
      wscale = cfg.wscale;
      persist = cfg.persist;
    }
  in
  let host =
    {
      Tcp.Conn.socket = socket_cfg;
      tx_cost = cfg.tx_cost;
      rx_seg_cost = cfg.rx_seg_cost;
      rx_batch_cost = cfg.rx_batch_cost;
      gro =
        {
          (Tcp.Gro.default_config ~mss:cfg.mss) with
          enabled = cfg.gro_enabled;
          flush_timeout = cfg.gro_flush_timeout;
        };
    }
  in
  (* One IRQ core per host shared by every connection; one app core per
     host (Redis and Lancet are single-threaded), one store. *)
  let client_irq = Sim.Cpu.create engine in
  let server_irq = Sim.Cpu.create engine in
  let client_cpu = Sim.Cpu.create engine in
  let server_cpu = Sim.Cpu.create engine in
  let store = Kv.Store.create () in
  Workload.prepopulate cfg.workload store ~now:(Sim.Engine.now engine);
  let loss_rng = Sim.Rng.split rng in
  (* The fault stream is split only when a plan is present: a faultless
     config draws exactly the same rng sequence as before the fault
     subsystem existed, keeping plan-disabled runs bit-identical. *)
  let fault_rng =
    match cfg.fault with None -> None | Some _ -> Some (Sim.Rng.split rng)
  in
  let conns =
    List.init cfg.n_conns (fun i ->
        let conn =
          Tcp.Conn.create engine ~a:host ~b:host ~link_ab:cfg.link ~link_ba:cfg.link
            ~cpu_a:client_irq ~cpu_b:server_irq
            ~label_a:(Printf.sprintf "c%d" i) ~label_b:(Printf.sprintf "s%d" i) ()
        in
        if cfg.loss_prob > 0.0 then begin
          Tcp.Link.set_loss (Tcp.Conn.link_ab conn) ~rng:loss_rng ~prob:cfg.loss_prob;
          Tcp.Link.set_loss (Tcp.Conn.link_ba conn) ~rng:loss_rng ~prob:cfg.loss_prob
        end;
        (match (cfg.fault, fault_rng) with
        | Some plan, Some frng ->
          (* Per-link injector rngs are split in a fixed order (c2s
             then s2c, connection by connection), so fault sequences
             are identical across repeats and across [--domains]. *)
          let inj side = Fault.Injector.create ~side ~rng:(Sim.Rng.split frng) in
          Tcp.Link.set_fault (Tcp.Conn.link_ab conn) (inj plan.Fault.Plan.c2s);
          Tcp.Link.set_fault (Tcp.Conn.link_ba conn) (inj plan.Fault.Plan.s2c)
        | _ -> ());
        conn)
  in
  (* Mid-run bandwidth/propagation-delay steps apply to every link of
     the affected run at the planned instant. *)
  (match cfg.fault with
  | Some plan ->
    List.iter
      (fun (s : Fault.Plan.step) ->
        ignore
          (Sim.Engine.schedule_at engine
             ~at:(Sim.Time.ns (int_of_float (s.at_us *. 1e3)))
             (fun () ->
               List.iter
                 (fun conn ->
                   List.iter
                     (fun link ->
                       Option.iter (Tcp.Link.set_gbit_per_s link) s.gbit_per_s;
                       Option.iter
                         (fun us ->
                           Tcp.Link.set_prop_delay link
                             (Sim.Time.ns (int_of_float (us *. 1e3))))
                         s.delay_us)
                     [ Tcp.Conn.link_ab conn; Tcp.Conn.link_ba conn ])
                 conns)))
      plan.Fault.Plan.steps
  | None -> ());
  let client_socks = List.map Tcp.Conn.sock_a conns in
  let server_socks = List.map Tcp.Conn.sock_b conns in
  let obs = Option.map Observe.create cfg.observe in
  (match obs with
  | Some o ->
    let tr = Observe.trace o in
    let au = Observe.audit o in
    List.iter
      (fun sock ->
        Tcp.Socket.set_trace sock tr;
        E2e.Estimator.set_audit (Tcp.Socket.estimator sock) au
          ~prefix:(Tcp.Socket.label sock))
      (client_socks @ server_socks);
    (* Fault visibility: each direction's drops/reorders/duplicates
       are labelled with the sending side's id. *)
    List.iteri
      (fun i conn ->
        Tcp.Link.set_trace (Tcp.Conn.link_ab conn) tr ~id:(Printf.sprintf "c%d" i);
        Tcp.Link.set_trace (Tcp.Conn.link_ba conn) tr ~id:(Printf.sprintf "s%d" i))
      conns
  | None -> ());
  let servers =
    List.map
      (fun sock -> Kv.Server.create engine ~cpu:server_cpu ~socket:sock ~store cfg.server)
      server_socks
  in
  let clients =
    List.map
      (fun sock -> Kv.Client.create engine ~cpu:client_cpu ~socket:sock cfg.client)
      client_socks
  in
  let client_arr = Array.of_list clients in
  let warmup_until = cfg.warmup in
  let total = cfg.warmup + cfg.duration in
  let recorder = Recorder.create ~warmup_until () in
  let arrival =
    if cfg.burst > 1 then
      Arrival.bursty ~rng:arrival_rng ~rate_rps:cfg.rate_rps ~burst:cfg.burst
    else Arrival.poisson ~rng:arrival_rng ~rate_rps:cfg.rate_rps
  in
  (* SLO observatory + decision ledger: one tracker and one ledger for
     the run's single control group.  Both only write trace/histogram
     state, never simulation state. *)
  let ledger =
    Option.map
      (fun o ->
        Observe.declare_slo o ~at:(Sim.Engine.now engine) ~id:"client" ~slo_us;
        E2e.Ledger.create ~trace:(Observe.trace o) ~group:"run")
      obs
  in
  (* Open-loop request driver, round-robin over connections. *)
  let on_complete ~latency reply =
    (match reply with
    | Kv.Resp.Error e -> failwith ("runner: server replied with error: " ^ e)
    | Kv.Resp.Simple _ | Kv.Resp.Integer _ | Kv.Resp.Bulk _ | Kv.Resp.Array _ -> ());
    Recorder.record recorder ~at:(Sim.Engine.now engine) ~latency;
    (match ledger with
    | Some lg -> E2e.Ledger.completion lg ~latency
    | None -> ());
    match obs with
    | Some o -> Observe.note_request o ~at:(Sim.Engine.now engine) ~latency
    | None -> ()
  in
  let next_client = ref 0 in
  let issue cmd =
    let client = client_arr.(!next_client) in
    next_client := (!next_client + 1) mod Array.length client_arr;
    Kv.Client.request client cmd ~on_complete
  in
  (match cfg.trace with
  | Some entries ->
    (* trace replay: the schedule is the trace, clipped to the run *)
    List.iter
      (fun (e : Trace.entry) ->
        if Sim.Time.compare e.at total <= 0 then
          ignore (Sim.Engine.schedule_at engine ~at:e.at (fun () -> issue e.cmd)))
      entries
  | None ->
    let rec schedule_request () =
      let gap = Arrival.next_gap arrival ~now:(Sim.Engine.now engine) in
      let at = Sim.Time.add (Sim.Engine.now engine) gap in
      if Sim.Time.compare at total <= 0 then
        ignore
          (Sim.Engine.schedule engine ~after:gap (fun () ->
               issue (Workload.next_command cfg.workload ~rng:workload_rng);
               schedule_request ()))
    in
    schedule_request ());
  (* Estimation: per-connection estimators (client side), aggregated
     across connections per §3.2 when a policy spans several flows. *)
  let estimators = List.map Tcp.Socket.estimator client_socks in
  let aggregate_estimate ~advance at =
    let per_flow =
      List.filter_map
        (fun e ->
          if advance then E2e.Estimator.estimate e ~at
          else E2e.Estimator.peek_estimate e ~at)
        estimators
    in
    (E2e.Aggregate.of_estimates per_flow, per_flow)
  in
  let all_socks = client_socks @ server_socks in
  (* Observability sampling.  Everything read here is non-destructive
     ([peek_estimate], queue sizes, counters), and the tick chain is
     scheduled before the controller ticks below so that at coincident
     instants the sample sees the window the controller is about to
     advance — enabling observability cannot change the simulation. *)
  (match obs with
  | None -> ()
  | Some o ->
    let m = Observe.metrics o in
    let queue_gauges prefix e =
      Sim.Metrics.gauge m (prefix ^ ".unacked") (fun () ->
          float_of_int (E2e.Estimator.unacked_size e));
      Sim.Metrics.gauge m (prefix ^ ".unread") (fun () ->
          float_of_int (E2e.Estimator.unread_size e));
      Sim.Metrics.gauge m (prefix ^ ".ackdelay") (fun () ->
          float_of_int (E2e.Estimator.ackdelay_size e))
    in
    List.iteri (fun i e -> queue_gauges (Printf.sprintf "c%d" i) e) estimators;
    List.iteri
      (fun i sock ->
        queue_gauges (Printf.sprintf "s%d" i) (Tcp.Socket.estimator sock))
      server_socks;
    Sim.Metrics.gauge m "client.nagle_toggles" (fun () ->
        float_of_int (Tcp.Nagle.toggles (Tcp.Socket.nagle (List.hd client_socks))));
    Sim.Metrics.gauge m "packets" (fun () ->
        float_of_int
          (List.fold_left (fun acc c -> acc + Tcp.Conn.total_packets c) 0 conns));
    Sim.Metrics.gauge m "completed" (fun () ->
        float_of_int (Recorder.count recorder));
    let interval = Observe.interval o in
    let rec tick () =
      let at = Sim.Engine.now engine in
      let per_flow =
        List.map (fun e -> E2e.Estimator.peek_estimate e ~at) estimators
      in
      (* Static runs never call [estimate] mid-run, so the trace would
         carry no estimate events without these peeked ones. *)
      List.iteri
        (fun i est ->
          match est with
          | Some (est : E2e.Estimator.estimate) ->
            Sim.Trace.event (Observe.trace o) ~at ~id:(Printf.sprintf "c%d" i)
              (Sim.Trace.Estimate_computed
                 {
                   latency_us = ns_opt_to_us est.latency_ns;
                   throughput = est.throughput;
                   window_us = float_of_int est.window /. 1e3;
                 })
          | None -> ())
        per_flow;
      let flows = List.filter_map Fun.id per_flow in
      let agg = E2e.Aggregate.of_estimates flows in
      let est_truth =
        if Sim.Time.compare at warmup_until <= 0 then None
        else
          match agg.latency_ns with
          | Some lat_ns ->
            let window_us =
              List.fold_left
                (fun acc (e : E2e.Estimator.estimate) ->
                  Float.max acc (float_of_int e.window /. 1e3))
                0.0 flows
            in
            let est_us = lat_ns /. 1e3 in
            Option.map
              (fun truth_us -> (est_us, truth_us))
              (Observe.note_residual o ~at ~window_us ~est_us)
          | None -> None
      in
      let s = Sim.Metrics.sample m ~at in
      let s =
        match est_truth with
        | Some (est_us, truth_us) ->
          { s with
            Sim.Metrics.values =
              s.Sim.Metrics.values
              @ [ ("estimate_us", est_us); ("truth_us", truth_us) ] }
        | None -> s
      in
      Observe.note_sample o s;
      Observe.slo_tick o ~at;
      if Sim.Time.compare (Sim.Time.add at interval) total <= 0 then
        ignore (Sim.Engine.schedule engine ~after:interval tick)
    in
    ignore (Sim.Engine.schedule engine ~after:interval tick));
  (* One control group spanning the whole run — the pre-fleet
     behaviour.  The attach point matters: the observability tick chain
     above is scheduled first, so at coincident instants the sample
     still sees the window the controller is about to advance. *)
  let ctrl =
    Control.attach ?ledger ~engine ~until:total ~rng:toggler_rng
      ~fault_armed:(cfg.fault <> None) ~batching:cfg.batching ~client_socks
      ~all_socks ()
  in
  (* Warmup boundary: reset estimation windows, capture baselines. *)
  let baseline = ref None in
  ignore
    (Sim.Engine.schedule_at engine ~at:warmup_until (fun () ->
         let at = Sim.Engine.now engine in
         List.iter (fun e -> ignore (E2e.Estimator.estimate e ~at)) estimators;
         (match obs with
         | Some o -> Sim.Audit.reset_window (Observe.audit o) ~at
         | None -> ());
         baseline :=
           Some
             {
               b_client_app = Sim.Cpu.busy_ns client_cpu;
               b_server_app = Sim.Cpu.busy_ns server_cpu;
               b_client_irq = Sim.Cpu.busy_ns client_irq;
               b_server_irq = Sim.Cpu.busy_ns server_irq;
               b_packets =
                 List.fold_left (fun acc c -> acc + Tcp.Conn.total_packets c) 0 conns;
               b_hints =
                 List.map
                   (fun c -> E2e.Hints.share (Kv.Client.hint_tracker c) ~at)
                   clients;
               b_server_hints =
                 List.map
                   (fun sock -> Option.map snd (Tcp.Socket.remote_hint_window sock))
                   server_socks;
             }));
  Sim.Engine.run_until engine total;
  let at = Sim.Engine.now engine in
  (* Close the Little's-law audit window and put each queue's verdict
     on the trace before [Observe.output] snapshots the ring. *)
  (match obs with
  | None -> ()
  | Some o ->
    let reports = Observe.finalize_audit o ~at in
    List.iter
      (fun (r : Sim.Audit.report) ->
        Sim.Trace.event (Observe.trace o) ~at ~id:""
          (Sim.Trace.Audit_window
             {
               queue = r.queue;
               l_avg = r.l_avg;
               lambda_per_s = r.lambda_per_s;
               w_us = r.w_us;
               rel_err = r.rel_err;
             }))
      reports);
  let base =
    match !baseline with
    | Some b -> b
    | None -> failwith "runner: warmup sample never fired"
  in
  let duration_s = Sim.Time.to_sec cfg.duration in
  let completed = Recorder.count recorder in
  (* Run-level stack estimate over the measured window.  Static runs
     kept the window open since warmup; dynamic runs advanced it every
     tick, so aggregate the tick samples instead. *)
  let estimated_us, estimated_local_us, estimated_remote_us, estimated_tput =
    match cfg.batching with
    | Static_on | Static_off | Aimd_limit _ -> (
      let agg, per_flow = aggregate_estimate ~advance:false at in
      match (agg.latency_ns, per_flow) with
      | Some _, [ only ] ->
        (* single connection: expose the per-vantage detail too *)
        ( ns_opt_to_us agg.latency_ns,
          ns_opt_to_us only.latency_local_ns,
          ns_opt_to_us only.latency_remote_ns,
          agg.throughput )
      | Some _, _ -> (ns_opt_to_us agg.latency_ns, None, None, agg.throughput)
      | None, _ -> (None, None, None, agg.throughput))
    | Dynamic _ ->
      let lat, tput = Control.sample_summary ctrl ~warmup_until in
      (lat, None, None, tput)
  in
  (* Hint-based (§3.3) estimates: client-local and the server's view,
     aggregated across connections. *)
  let hint_inputs =
    List.map2
      (fun client prev ->
        let cur = E2e.Hints.share (Kv.Client.hint_tracker client) ~at in
        match E2e.Hints.avgs ~prev ~cur with
        | Some avgs ->
          { E2e.Aggregate.latency_ns = avgs.latency_ns; throughput = avgs.throughput }
        | None -> { E2e.Aggregate.latency_ns = None; throughput = 0.0 })
      clients base.b_hints
  in
  let hint_agg = E2e.Aggregate.combine hint_inputs in
  let hint_estimated_us = ns_opt_to_us hint_agg.latency_ns in
  let hint_tput =
    if hint_agg.throughput > 0.0 then Some hint_agg.throughput else None
  in
  let hint_server_inputs =
    List.map2
      (fun sock prev ->
        match (prev, Tcp.Socket.remote_hint_window sock) with
        | Some prev, Some (_, cur) -> (
          match E2e.Hints.avgs ~prev ~cur with
          | Some avgs ->
            { E2e.Aggregate.latency_ns = avgs.latency_ns; throughput = avgs.throughput }
          | None -> { E2e.Aggregate.latency_ns = None; throughput = 0.0 })
        | _ -> { E2e.Aggregate.latency_ns = None; throughput = 0.0 })
      server_socks base.b_server_hints
  in
  let hint_server_estimated_us =
    ns_opt_to_us (E2e.Aggregate.combine hint_server_inputs).latency_ns
  in
  let util busy base_v = float_of_int (busy - base_v) /. float_of_int cfg.duration in
  let packets =
    List.fold_left (fun acc c -> acc + Tcp.Conn.total_packets c) 0 conns - base.b_packets
  in
  let server_batches =
    List.fold_left
      (fun acc s -> Sim.Stats.Summary.merge acc (Kv.Server.batch_sizes s))
      (Sim.Stats.Summary.create ()) servers
  in
  let gro_batches =
    List.fold_left (fun acc c -> acc + Tcp.Gro.batches (Tcp.Conn.gro_b c)) 0 conns
  in
  let gro_segments =
    List.fold_left (fun acc c -> acc + Tcp.Gro.segments (Tcp.Conn.gro_b c)) 0 conns
  in
  {
    offered_rps = cfg.rate_rps;
    achieved_rps = float_of_int completed /. duration_s;
    completed;
    issued = List.fold_left (fun acc c -> acc + Kv.Client.issued c) 0 clients;
    completed_total =
      List.fold_left (fun acc c -> acc + Kv.Client.completed c) 0 clients;
    outstanding_end =
      List.fold_left (fun acc c -> acc + Kv.Client.outstanding c) 0 clients;
    link_dropped =
      List.fold_left
        (fun acc c ->
          acc + Tcp.Link.dropped (Tcp.Conn.link_ab c)
          + Tcp.Link.dropped (Tcp.Conn.link_ba c))
        0 conns;
    shares_corrupted =
      List.fold_left
        (fun acc c ->
          acc
          + Tcp.Link.corrupted_shares (Tcp.Conn.link_ab c)
          + Tcp.Link.corrupted_shares (Tcp.Conn.link_ba c))
        0 conns;
    shares_rejected =
      List.fold_left
        (fun acc sock ->
          acc + E2e.Estimator.rejected_shares (Tcp.Socket.estimator sock))
        0 (client_socks @ server_socks);
    degrade_freezes = Control.degrade_freezes ctrl;
    degrade_thaws = Control.degrade_thaws ctrl;
    degrade_frozen_end = Control.degrade_frozen_end ctrl;
    measured_mean_us = Recorder.mean_us recorder;
    measured_p50_us = Recorder.p50_us recorder;
    measured_p99_us = Recorder.p99_us recorder;
    under_slo = Recorder.under_slo_fraction recorder ~slo_us;
    estimated_us;
    estimated_local_us;
    estimated_remote_us;
    estimated_tput_rps = estimated_tput;
    hint_estimated_us;
    hint_tput_rps = hint_tput;
    hint_server_estimated_us;
    client_app_util = util (Sim.Cpu.busy_ns client_cpu) base.b_client_app;
    server_app_util = util (Sim.Cpu.busy_ns server_cpu) base.b_server_app;
    client_irq_util = util (Sim.Cpu.busy_ns client_irq) base.b_client_irq;
    server_irq_util = util (Sim.Cpu.busy_ns server_irq) base.b_server_irq;
    packets;
    packets_per_request =
      (if completed = 0 then 0.0 else float_of_int packets /. float_of_int completed);
    server_batch_mean = Sim.Stats.Summary.mean server_batches;
    server_wakeups = List.fold_left (fun acc s -> acc + Kv.Server.wakeups s) 0 servers;
    nagle_toggles = Tcp.Nagle.toggles (Tcp.Socket.nagle (List.hd client_socks));
    final_mode = Control.final_mode ctrl;
    final_batch_limit = Control.final_batch_limit ctrl;
    server_gro_merge =
      (if gro_batches = 0 then 0.0
       else float_of_int gro_segments /. float_of_int gro_batches);
    server_gro_batches = gro_batches;
    server_acks_by_timer =
      List.fold_left (fun acc sock -> acc + Tcp.Socket.acks_by_timer sock) 0 server_socks;
    client_srtt_us =
      (match Tcp.Rtt.srtt (Tcp.Socket.rtt (List.hd client_socks)) with
      | Some ns -> Some (float_of_int ns /. 1e3)
      | None -> None);
    client_p99_est_us =
      (* aggregate across connections: take the worst per-flow tail *)
      List.fold_left
        (fun acc c ->
          match (Kv.Client.p99_estimate_ns c, acc) with
          | Some ns, Some best -> Some (Float.max (ns /. 1e3) best)
          | Some ns, None -> Some (ns /. 1e3)
          | None, acc -> acc)
        None clients;
    samples = Control.samples ctrl;
    observability = Option.map Observe.output obs;
  }
