(* The batching-control plane, factored out of [Runner.run] so that a
   multi-tenant fleet can instantiate one controller per scope unit
   (whole fleet, tenant, or single connection) instead of exactly one
   per run.  A control group owns the sockets it switches, the client
   estimators it reads, and — for dynamic groups — its own toggler rng,
   degrade state machine and tick-by-tick sample log, so groups are
   fully independent of each other. *)

type dynamic = {
  policy : E2e.Policy.t;
  epsilon : float;
  tick : Sim.Time.span;
  ewma_alpha : float;
  min_observations : int;
  stale_after_rtts : float;
  stale_floor : Sim.Time.span;
  degrade : E2e.Degrade.config;
  fallback : E2e.Toggler.mode;
}

let default_dynamic =
  {
    policy = E2e.Policy.Throughput_under_slo { slo_ns = E2e.Policy.default_slo_ns };
    epsilon = 0.05;
    tick = Sim.Time.ms 1;
    ewma_alpha = 0.3;
    min_observations = 3;
    stale_after_rtts = 8.0;
    stale_floor = Sim.Time.ms 2;
    degrade = E2e.Degrade.default_config;
    fallback = E2e.Toggler.Batch_off;
  }

type aimd_cfg = {
  slo_us : float;
  aimd_tick : Sim.Time.span;
  min_limit : int;
  max_limit : int;
  increase : int;
  decrease : float;
}

let default_aimd =
  {
    slo_us = 500.0;
    aimd_tick = Sim.Time.ms 1;
    min_limit = 64;
    max_limit = 1448;
    increase = 128;
    decrease = 0.5;
  }

type batching = Static_on | Static_off | Dynamic of dynamic | Aimd_limit of aimd_cfg

let batching_label = function
  | Static_on -> "nagle-on"
  | Static_off -> "nagle-off"
  | Dynamic _ -> "dynamic"
  | Aimd_limit _ -> "aimd"

let initial_nagle = function
  | Static_on -> true
  | Static_off -> false
  | Dynamic _ -> false (* start as Redis ships: TCP_NODELAY *)
  | Aimd_limit _ -> true (* the AIMD limit generalizes Nagle's rule *)

type estimate_sample = {
  at_us : float;
  latency_us : float option;
  throughput_rps : float;
  mode : E2e.Toggler.mode;
}

let ns_opt_to_us = Option.map (fun ns -> ns /. 1e3)

(* Aggregate the current estimates of [socks]' client-side estimators
   per §3.2.  [advance] closes each estimator's window (the controller
   tick does this); the default peeks without consuming it. *)
let estimate_socks ?(advance = false) socks ~at =
  let per_flow =
    List.filter_map
      (fun sock ->
        let e = Tcp.Socket.estimator sock in
        if advance then E2e.Estimator.estimate e ~at
        else E2e.Estimator.peek_estimate e ~at)
      socks
  in
  (E2e.Aggregate.of_estimates per_flow, per_flow)

type t = {
  batching : batching;
  toggler : E2e.Toggler.t option;
  aimd : E2e.Aimd.t option;
  degrade : E2e.Degrade.t option;
  samples_rev : estimate_sample list ref;
  (* Group membership is mutable so connections can join (churn spawn)
     and leave (drain + FIN) a live group: the decision-tick closures
     read these refs, never a captured list. *)
  clients : Tcp.Socket.t list ref;
  alls : Tcp.Socket.t list ref;
}

let attach ?ledger ~engine ~until ~rng ~fault_armed ~batching ~client_socks
    ~all_socks () =
  let clients = ref client_socks in
  let alls = ref all_socks in
  let aggregate_estimate ~advance at = estimate_socks ~advance !clients ~at in
  let kick_all () = List.iter Tcp.Socket.kick !alls in
  (* Age (µs) of the freshest accepted remote share across the group's
     estimators — the staleness clock the ledger records; -1 until the
     first share arrives. *)
  let stale_age_us at =
    let age =
      List.fold_left
        (fun acc sock ->
          match E2e.Estimator.last_share_at (Tcp.Socket.estimator sock) with
          | Some t0 ->
              let a = Sim.Time.to_us at -. Sim.Time.to_us t0 in
              (match acc with None -> Some a | Some b -> Some (Stdlib.min a b))
          | None -> acc)
        None !clients
    in
    match age with None -> -1.0 | Some a -> Stdlib.max a 0.0
  in
  let samples_rev = ref [] in
  let none =
    { batching; toggler = None; aimd = None; degrade = None; samples_rev;
      clients; alls }
  in
  match batching with
  | Static_on | Static_off -> none
  | Aimd_limit a ->
    (* The AIMD variable is "latency headroom" h in [1, span+1]: the
       batching limit is max_limit - (h - 1).  While the SLO is met,
       h grows additively (gently probing toward less batching, hence
       lower latency); on a violation h halves (the limit jumps back
       toward full Nagle, recovering amortization fast) — the
       Chiu–Jain asymmetry with SLO violation as the congestion
       signal. *)
    let span = a.max_limit - a.min_limit in
    let controller =
      E2e.Aimd.create ~initial:1 ~min_limit:1 ~max_limit:(span + 1)
        ~increase:a.increase ~decrease:a.decrease ()
    in
    let limit_of_headroom h = a.max_limit - (h - 1) in
    let set_limit limit =
      List.iter
        (fun sock -> Tcp.Nagle.set_min_send (Tcp.Socket.nagle sock) (Some limit))
        !alls;
      kick_all ()
    in
    set_limit (limit_of_headroom (E2e.Aimd.limit controller));
    let rec tick () =
      let at = Sim.Engine.now engine in
      let agg, _ = aggregate_estimate ~advance:true at in
      let before = limit_of_headroom (E2e.Aimd.limit controller) in
      let reason =
        match agg.latency_ns with
        | Some latency_ns when agg.throughput > 0.0 ->
          let fb = if latency_ns <= a.slo_us *. 1e3 then `Good else `Bad in
          set_limit (limit_of_headroom (E2e.Aimd.feedback controller fb));
          (match fb with `Good -> "good" | `Bad -> "bad")
        | Some _ | None -> "hold"
      in
      (match ledger with
      | Some lg ->
        E2e.Ledger.decision lg ~at
          ?on_us:(ns_opt_to_us agg.latency_ns)
          ~mode:(Printf.sprintf "limit=%d" before)
          ~action:
            (Printf.sprintf "limit=%d"
               (limit_of_headroom (E2e.Aimd.limit controller)))
          ~reason ~frozen:false ~stale_us:(stale_age_us at) ()
      | None -> ());
      if Sim.Time.compare (Sim.Time.add at a.aimd_tick) until <= 0 then
        ignore (Sim.Engine.schedule engine ~after:a.aimd_tick tick)
    in
    ignore (Sim.Engine.schedule engine ~after:a.aimd_tick tick);
    { none with aimd = Some controller }
  | Dynamic d ->
    let toggler =
      E2e.Toggler.create ~epsilon:d.epsilon ~ewma_alpha:d.ewma_alpha
        ~min_observations:d.min_observations ~policy:d.policy ~rng
        ~initial:
          (if initial_nagle batching then E2e.Toggler.Batch_on
           else E2e.Toggler.Batch_off)
        ()
    in
    (* Graceful degradation is armed only under a fault plan: clean
       runs must stay bit-identical to pre-fault behaviour, and a
       low-rate clean run can legitimately go shares-quiet for longer
       than any reasonable staleness timeout. *)
    let degrade = if fault_armed then Some (E2e.Degrade.create ~config:d.degrade ()) else None in
    let set_mode mode =
      let enabled = match mode with E2e.Toggler.Batch_on -> true | Batch_off -> false in
      List.iter (fun sock -> Tcp.Socket.set_nagle_enabled sock enabled) !alls;
      kick_all ()
    in
    let step_degrade at =
      match degrade with
      | None -> false
      | Some dg ->
        (* Stale once no flow has accepted a share within
           max(k · srtt, floor); the timeout tracks the live RTT
           estimate. *)
        let stale =
          !clients <> []
          && List.for_all
            (fun sock ->
              let e = Tcp.Socket.estimator sock in
              let srtt =
                Option.value (Tcp.Rtt.srtt (Tcp.Socket.rtt sock)) ~default:0
              in
              let timeout =
                Stdlib.max
                  (int_of_float (d.stale_after_rtts *. float_of_int srtt))
                  d.stale_floor
              in
              E2e.Estimator.set_staleness e ~timeout:(Some timeout);
              E2e.Estimator.is_stale e ~at)
            !clients
        in
        let state = E2e.Degrade.step dg ~stale in
        E2e.Toggler.force toggler
          (match state with
          | E2e.Degrade.Frozen -> Some d.fallback
          | E2e.Degrade.Active -> None);
        state = E2e.Degrade.Frozen
    in
    let rec tick () =
      let at = Sim.Engine.now engine in
      let mode = E2e.Toggler.mode toggler in
      let frozen = step_degrade at in
      let agg, per_flow = aggregate_estimate ~advance:true at in
      if per_flow <> [] then begin
        (* While frozen the estimates are known-garbage (stale remote
           windows): keep them out of the arms so the bandit resumes
           from trustworthy scores after the fault clears. *)
        (match agg.latency_ns with
        | Some latency_ns when agg.throughput > 0.0 && not frozen ->
          E2e.Toggler.observe toggler ~mode
            { E2e.Policy.latency_ns; throughput = agg.throughput }
        | Some _ | None -> ());
        samples_rev :=
          {
            at_us = Sim.Time.to_us at;
            latency_us = ns_opt_to_us agg.latency_ns;
            throughput_rps = agg.throughput;
            mode;
          }
          :: !samples_rev
      end;
      let expl = E2e.Toggler.decide_explained toggler in
      set_mode expl.chosen;
      (match ledger with
      | Some lg ->
        E2e.Ledger.decision lg ~at ?on_us:expl.on_us ?off_us:expl.off_us
          ~mode:(E2e.Toggler.mode_to_string expl.before)
          ~action:(E2e.Toggler.mode_to_string expl.chosen)
          ~reason:(E2e.Toggler.reason_to_string expl.why)
          ~frozen ~stale_us:(stale_age_us at) ()
      | None -> ());
      if Sim.Time.compare (Sim.Time.add at d.tick) until <= 0 then
        ignore (Sim.Engine.schedule engine ~after:d.tick tick)
    in
    ignore (Sim.Engine.schedule engine ~after:d.tick tick);
    { none with toggler = Some toggler; degrade }

let samples t = List.rev !(t.samples_rev)
let final_mode t = Option.map E2e.Toggler.mode t.toggler
let toggler t = t.toggler
let client_socks t = !(t.clients)

let current_nagle t =
  match t.toggler with
  | Some tg -> (match E2e.Toggler.mode tg with Batch_on -> true | Batch_off -> false)
  | None -> initial_nagle t.batching

(* A connection spawned mid-run joins a live group: it becomes visible
   to the next decision tick and immediately receives the group's
   current mode/limit — the cold-start inheritance path for
   [Global]/[Per_tenant] scope (a fresh socket otherwise starts at the
   configuration default and waits a tick for correction). *)
let adopt ?(inherit_mode = true) t ~client_sock ~server_sock =
  t.clients := !(t.clients) @ [ client_sock ];
  t.alls := !(t.alls) @ [ client_sock; server_sock ];
  if not inherit_mode then ()
  else
    match t.batching with
  | Static_on | Static_off -> ()
  | Dynamic _ ->
    let enabled = current_nagle t in
    Tcp.Socket.set_nagle_enabled client_sock enabled;
    Tcp.Socket.set_nagle_enabled server_sock enabled
  | Aimd_limit a ->
    let limit =
      match t.aimd with
      | Some c -> a.max_limit - (E2e.Aimd.limit c - 1)
      | None -> a.max_limit
    in
    Tcp.Nagle.set_min_send (Tcp.Socket.nagle client_sock) (Some limit);
    Tcp.Nagle.set_min_send (Tcp.Socket.nagle server_sock) (Some limit)

(* Departing connections leave the group before closing so the decision
   tick stops reading their (now idle) estimators. *)
let abandon t ~client_sock ~server_sock =
  t.clients := List.filter (fun s -> s != client_sock) !(t.clients);
  t.alls := List.filter (fun s -> s != client_sock && s != server_sock) !(t.alls)

let final_batch_limit t =
  match (t.aimd, t.batching) with
  | Some c, Aimd_limit a -> Some (a.max_limit - (E2e.Aimd.limit c - 1))
  | _ -> None

let degrade_freezes t = Option.map E2e.Degrade.freezes t.degrade
let degrade_thaws t = Option.map E2e.Degrade.thaws t.degrade

let degrade_frozen_end t =
  Option.map (fun d -> E2e.Degrade.state d = E2e.Degrade.Frozen) t.degrade

(* Mean of the estimate samples inside the measured window — how
   dynamic runs summarize their advancing estimation windows. *)
let sample_summary t ~warmup_until =
  let measured =
    List.filter (fun s -> s.at_us > Sim.Time.to_us warmup_until) (samples t)
  in
  let weighted, count, tput_sum =
    List.fold_left
      (fun (acc, n, tp) s ->
        match s.latency_us with
        | Some us -> (acc +. us, n + 1, tp +. s.throughput_rps)
        | None -> (acc, n, tp))
      (0.0, 0, 0.0) measured
  in
  if count = 0 then (None, 0.0)
  else
    ( Some (weighted /. float_of_int count),
      tput_sum /. float_of_int count )
