(* Compile a parsed {!Spec} into a {!Loadgen.Fleet.config} and run it.
   [compare_static] runs the headline three-way experiment: the
   scenario as written versus the two global static modes, with a
   per-tenant verdict on whether each configuration stays within [tol]
   of that tenant's best static latency. *)

module Fleet = Loadgen.Fleet
module Control = Loadgen.Control

let to_batching : Spec.batching -> Control.batching = function
  | Spec.On -> Control.Static_on
  | Spec.Off -> Control.Static_off
  | Spec.Dynamic epsilon ->
    Control.Dynamic { Control.default_dynamic with epsilon }
  | Spec.Aimd -> Control.Aimd_limit Control.default_aimd

let to_workload = function
  | Spec.Set_only -> Loadgen.Workload.paper_set_only
  | Spec.Mixed -> Loadgen.Workload.paper_mixed
  | Spec.Small -> Loadgen.Workload.small_requests

let span_of_ms ms = Sim.Time.ns (int_of_float (ms *. 1e6))
let span_of_us us = Sim.Time.ns (int_of_float (us *. 1e3))

let to_envelope : Spec.envelope -> Loadgen.Arrival.envelope = function
  | Spec.Flat | Spec.Replay _ -> Loadgen.Arrival.Flat
  | Spec.Square { period_ms; duty; high } ->
    Loadgen.Arrival.Square { period_us = period_ms *. 1e3; duty; high }
  | Spec.Ramp { period_ms; from_f; to_f } ->
    Loadgen.Arrival.Ramp { period_us = period_ms *. 1e3; from_f; to_f }
  | Spec.Steps steps ->
    Loadgen.Arrival.Steps (List.map (fun (at_ms, f) -> (at_ms *. 1e3, f)) steps)

(* Replay envelopes name a gap-trace file; the load happens here, at
   compile time, so parse stays total and pure.  An unreadable or
   malformed trace raises [Failure] with the loader's line-numbered
   message. *)
let to_replay_gaps : Spec.envelope -> int array option = function
  | Spec.Replay path -> (
    match Loadgen.Trace.load_gaps path with
    | Ok gaps -> Some gaps
    | Error msg -> failwith ("scenario: " ^ msg))
  | _ -> None

let to_churn (c : Spec.churn) : Fleet.churn =
  {
    Fleet.arrive_rps = c.c_arrive_rps;
    depart_rps = c.c_depart_rps;
    min_conns = c.c_min;
    max_conns = c.c_max;
    script = List.map (fun (at_ms, d) -> (span_of_ms at_ms, d)) c.c_script;
  }

let to_tenant (t : Spec.tenant) : Fleet.tenant =
  {
    Fleet.name = t.name;
    n_conns = t.conns;
    rate_rps = t.rate_rps;
    burst = t.burst;
    workload = to_workload t.mix;
    cpu_multiplier = t.cpu_mult;
    link = { Tcp.Conn.default_link with prop_delay = span_of_us t.link_us };
    slo_us = t.slo_us;
    batching = to_batching t.batching;
    envelope = to_envelope t.envelope;
    replay_gaps = to_replay_gaps t.envelope;
    churn = Option.map to_churn t.churn;
  }

let to_fleet (s : Spec.t) : Fleet.config =
  {
    (Fleet.default_config ~tenants:(List.map to_tenant s.tenants)) with
    seed = s.seed;
    warmup = span_of_ms s.warmup_ms;
    duration = span_of_ms s.duration_ms;
    scope = s.scope;
    batching = to_batching s.batching;
    cores = s.cores;
    lb = s.lb;
  }

let run ?observe s =
  let cfg = to_fleet s in
  Fleet.run { cfg with observe }

(* {2 Static comparison} *)

type tenant_verdict = {
  v_name : string;
  v_candidate_us : float;
  v_on_us : float;
  v_off_us : float;
  v_best_us : float;  (* best of the three configurations for this tenant *)
  v_candidate_fits : bool;  (* candidate <= (1+tol) * best *)
}

type comparison = {
  tol : float;
  candidate : Fleet.result;
  static_on : Fleet.result;
  static_off : Fleet.result;
  verdicts : tenant_verdict list;
  on_fits_all : bool;
  off_fits_all : bool;
  no_global_static_fits : bool;
  candidate_fits_all : bool;
}

let compare_static ?(tol = 0.10) ?(map = List.map) (s : Spec.t) =
  if tol < 0.0 then invalid_arg "Scenario.Exec.compare_static: tol must be >= 0";
  let base = to_fleet s in
  let static (mode : Spec.batching) =
    { base with Fleet.scope = Fleet.Global; batching = to_batching mode }
  in
  (* The three runs are independent simulations; [map] lets callers fan
     them out over domains (results must come back in input order). *)
  let candidate, static_on, static_off =
    match map Fleet.run [ base; static Spec.On; static Spec.Off ] with
    | [ c; on; off ] -> (c, on, off)
    | _ -> assert false
  in
  let fits mean best = mean <= (1.0 +. tol) *. best in
  let verdicts =
    List.map
      (fun ((c : Fleet.tenant_result), ((on : Fleet.tenant_result), off)) ->
        (* A tenant's best is the best any of the three configurations
           achieved for it — under a shared server a global mode can be
           bad for *every* tenant at once (e.g. nagle-off melting the
           IRQ core), and judging against global statics alone would
           let that mode win by default. *)
        let best =
          Float.min c.Fleet.t_mean_us
            (Float.min on.Fleet.t_mean_us off.Fleet.t_mean_us)
        in
        {
          v_name = c.Fleet.t_name;
          v_candidate_us = c.Fleet.t_mean_us;
          v_on_us = on.Fleet.t_mean_us;
          v_off_us = off.Fleet.t_mean_us;
          v_best_us = best;
          v_candidate_fits = fits c.Fleet.t_mean_us best;
        })
      (List.combine candidate.Fleet.tenants
         (List.combine static_on.Fleet.tenants static_off.Fleet.tenants))
  in
  let on_fits_all = List.for_all (fun v -> fits v.v_on_us v.v_best_us) verdicts in
  let off_fits_all = List.for_all (fun v -> fits v.v_off_us v.v_best_us) verdicts in
  {
    tol;
    candidate;
    static_on;
    static_off;
    verdicts;
    on_fits_all;
    off_fits_all;
    no_global_static_fits = (not on_fits_all) && not off_fits_all;
    candidate_fits_all = List.for_all (fun v -> v.v_candidate_fits) verdicts;
  }
