(** Declarative fleet scenarios.

    Line-oriented grammar in the style of {!Fault.Plan}: one directive
    per line, [#] starts a comment, keys are [key=value] tokens.

    {v
    # mixed bare-metal + VM fleet, one toggler per connection
    fleet seed=42 warmup_ms=100 duration_ms=400 scope=per_conn batching=off
    tenant name=bare conns=2 rate_rps=90000 cpu_mult=1 batching=dynamic
    tenant name=vm   conns=2 rate_rps=20000 cpu_mult=4 batching=dynamic
    v}

    [fleet] (optional, any position, later lines override) sets the
    run-wide knobs; each [tenant] line (at least one required) appends
    a tenant.  [batching] is one of [on|off|dynamic|aimd]; [epsilon]
    is only legal next to [batching=dynamic].  [scope] is one of
    [global|per_tenant|per_conn] and decides whether one batching
    controller spans the fleet, one per tenant, or one per connection
    (see {!Loadgen.Fleet.scope}).

    Parsing is total: errors come back as [Error "scenario line N: …"]
    with the 1-based line number.  {!to_string} prints a canonical form
    and round-trips: [of_string (to_string s) = Ok s]. *)

type batching =
  | On
  | Off
  | Dynamic of float  (** exploration epsilon, in [[0,1)] *)
  | Aimd

val batching_to_string : batching -> string
(** ["on"], ["off"], ["dynamic"], ["aimd"] — without the epsilon. *)

type mix = Set_only | Mixed | Small
(** {!Loadgen.Workload.paper_set_only} / [paper_mixed] /
    [small_requests]. *)

val mix_to_string : mix -> string
val mix_of_string : string -> (mix, string) result

type scope = Loadgen.Fleet.scope = Global | Per_tenant | Per_conn

val scope_of_string : string -> (scope, string) result

type tenant = {
  name : string;  (** [[A-Za-z0-9_-]+], unique within the scenario *)
  conns : int;
  rate_rps : float;
  burst : int;
  mix : mix;
  cpu_mult : float;  (** 1 = bare metal, 4 = the paper's VM client *)
  link_us : float;  (** one-way propagation delay *)
  slo_us : float;
  batching : batching;  (** used under [per_tenant]/[per_conn] scopes *)
}

val default_tenant : name:string -> rate_rps:float -> tenant
(** 1 connection, Poisson, [set_only] mix, bare metal, 10 µs link,
    500 µs SLO, [Off]. *)

val default_epsilon : float

type t = {
  seed : int;
  warmup_ms : float;
  duration_ms : float;
  scope : scope;
  batching : batching;  (** the fleet-wide group's mode under [Global] *)
  tenants : tenant list;  (** in declaration order *)
}

val default : t
(** Seed 42, 100 ms warmup, 400 ms measured, [Global] scope, [Off] —
    and no tenants, so it does not parse back until one is added. *)

val of_string : string -> (t, string) result
val of_file : string -> (t, string) result

val pp : Format.formatter -> t -> unit
val to_string : t -> string
(** Canonical print; [of_string (to_string s) = Ok s]. *)
