(** Declarative fleet scenarios.

    Line-oriented grammar in the style of {!Fault.Plan}: one directive
    per line, [#] starts a comment, keys are [key=value] tokens.

    {v
    # mixed bare-metal + VM fleet, one toggler per connection
    fleet seed=42 warmup_ms=100 duration_ms=400 scope=per_conn batching=off
    tenant name=bare conns=2 rate_rps=90000 cpu_mult=1 batching=dynamic
    tenant name=vm   conns=2 rate_rps=20000 cpu_mult=4 batching=dynamic
    v}

    [fleet] (optional, any position, later lines override) sets the
    run-wide knobs; each [tenant] line (at least one required) appends
    a tenant.  [batching] is one of [on|off|dynamic|aimd]; [epsilon]
    is only legal next to [batching=dynamic].  [scope] is one of
    [global|per_tenant|per_conn] and decides whether one batching
    controller spans the fleet, one per tenant, or one per connection
    (see {!Loadgen.Fleet.scope}).

    Time-varying load rides on two optional tenant clause families.
    [envelope=square|ramp|steps|replay|flat] wraps the arrival process
    in a rate envelope: square waves take [env_period_ms], [env_duty]
    (default 0.5) and [env_high]; ramps take [env_period_ms],
    [env_from] and [env_to]; stepped schedules take
    [env_steps=at_ms:factor,…] with strictly increasing times; replay
    takes [env_trace=path] naming a gap-trace file (one µs gap per
    line, loaded at execution time — see {!Loadgen.Trace.load_gaps}).
    [churn_*] keys declare connection lifecycle: [churn_arrive_rps] /
    [churn_depart_rps] Poisson connect/disconnect rates,
    [churn_min]/[churn_max] population bounds (defaults 1/64; [conns]
    must lie within), and [churn_script=at_ms:+n,at_ms:-n,…] scripted
    epochs.

    Parsing is total: errors come back as [Error "scenario line N: …"]
    with the 1-based line number.  {!to_string} prints a canonical form
    and round-trips: [of_string (to_string s) = Ok s]. *)

type batching =
  | On
  | Off
  | Dynamic of float  (** exploration epsilon, in [[0,1)] *)
  | Aimd

val batching_to_string : batching -> string
(** ["on"], ["off"], ["dynamic"], ["aimd"] — without the epsilon. *)

type mix = Set_only | Mixed | Small
(** {!Loadgen.Workload.paper_set_only} / [paper_mixed] /
    [small_requests]. *)

val mix_to_string : mix -> string
val mix_of_string : string -> (mix, string) result

type scope = Loadgen.Fleet.scope = Global | Per_tenant | Per_conn

val scope_of_string : string -> (scope, string) result

type envelope =
  | Flat  (** no modulation (the default; not printed) *)
  | Square of { period_ms : float; duty : float; high : float }
      (** flash crowd: factor [high] for the first [duty] of each period *)
  | Ramp of { period_ms : float; from_f : float; to_f : float }
      (** diurnal ramp: factor sweeps [from_f]→[to_f] each period *)
  | Steps of (float * float) list
      (** [(at_ms, factor)] piecewise-constant schedule, strictly
          increasing times *)
  | Replay of string
      (** gap-trace file path; replaces the base arrival process
          outright (loaded at execution time) *)

type churn = {
  c_arrive_rps : float;  (** Poisson connection arrivals; 0 disables *)
  c_depart_rps : float;  (** Poisson departures; 0 disables *)
  c_min : int;  (** population floor (>= 1) *)
  c_max : int;  (** population cap *)
  c_script : (float * int) list;  (** scripted [(at_ms, ±n)] epochs *)
}

type tenant = {
  name : string;  (** [[A-Za-z0-9_-]+], unique within the scenario *)
  conns : int;
  rate_rps : float;
  burst : int;
  mix : mix;
  cpu_mult : float;  (** 1 = bare metal, 4 = the paper's VM client *)
  link_us : float;  (** one-way propagation delay *)
  slo_us : float;
  batching : batching;  (** used under [per_tenant]/[per_conn] scopes *)
  envelope : envelope;
  churn : churn option;  (** [None] = fixed connection population *)
}

val default_tenant : name:string -> rate_rps:float -> tenant
(** 1 connection, Poisson, [set_only] mix, bare metal, 10 µs link,
    500 µs SLO, [Off], flat envelope, no churn. *)

val default_epsilon : float

type t = {
  seed : int;
  warmup_ms : float;
  duration_ms : float;
  scope : scope;
  batching : batching;  (** the fleet-wide group's mode under [Global] *)
  cores : int;  (** server shards; the [server cores=M] directive *)
  lb : Shard.Lb.policy;  (** front-LB policy; the [server lb=...] key *)
  tenants : tenant list;  (** in declaration order *)
}

val default : t
(** Seed 42, 100 ms warmup, 400 ms measured, [Global] scope, [Off],
    1 core behind a consistent-hash LB — and no tenants, so it does
    not parse back until one is added. *)

val of_string : string -> (t, string) result
val of_file : string -> (t, string) result

val pp : Format.formatter -> t -> unit
val to_string : t -> string
(** Canonical print; [of_string (to_string s) = Ok s]. *)
