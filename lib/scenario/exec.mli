(** Compile and run {!Spec} scenarios.

    The compiled fleet inherits {!Loadgen.Fleet.default_config} for
    everything the grammar does not express (server/client base costs,
    observability off). *)

val to_batching : Spec.batching -> Loadgen.Control.batching
(** [Dynamic eps] becomes {!Loadgen.Control.default_dynamic} with the
    spec's epsilon; [Aimd] is {!Loadgen.Control.default_aimd}. *)

val to_workload : Spec.mix -> Loadgen.Workload.t
val to_tenant : Spec.tenant -> Loadgen.Fleet.tenant
val to_fleet : Spec.t -> Loadgen.Fleet.config

val run :
  ?observe:Loadgen.Observe.config -> Spec.t -> Loadgen.Fleet.result

type tenant_verdict = {
  v_name : string;
  v_candidate_us : float;  (** tenant mean under the scenario as written *)
  v_on_us : float;  (** … under global [Static_on] *)
  v_off_us : float;  (** … under global [Static_off] *)
  v_best_us : float;
      (** best mean any of the three configurations achieved for this
          tenant — the bar every configuration is judged against *)
  v_candidate_fits : bool;
      (** candidate within [(1+tol)] of this tenant's best *)
}

type comparison = {
  tol : float;
  candidate : Loadgen.Fleet.result;
  static_on : Loadgen.Fleet.result;
  static_off : Loadgen.Fleet.result;
  verdicts : tenant_verdict list;  (** in tenant declaration order *)
  on_fits_all : bool;
      (** global [Static_on] within [(1+tol)] of every tenant's best *)
  off_fits_all : bool;
  no_global_static_fits : bool;
      (** neither static mode serves every tenant — the situation that
          motivates finer-grained control *)
  candidate_fits_all : bool;
}

val compare_static :
  ?tol:float ->
  ?map:
    ((Loadgen.Fleet.config -> Loadgen.Fleet.result) ->
    Loadgen.Fleet.config list ->
    Loadgen.Fleet.result list) ->
  Spec.t ->
  comparison
(** Run the scenario as written plus the two global-static variants of
    the same fleet (same seed, tenants and durations; only
    [scope]/[batching] replaced) and judge per-tenant mean latency with
    tolerance [tol] (default 0.10).  The headline claim holds when
    [no_global_static_fits && candidate_fits_all].

    [map] (default [List.map]) runs the three independent simulations;
    pass [Par.Pool.map] to fan them out over domains — it must return
    results in input order. *)
