(* Declarative fleet scenarios, one directive per line in the style of
   [Fault.Plan]: a [fleet] line sets run-wide knobs and each [tenant]
   line adds one tenant.  The spec is symbolic — batching modes and
   workload mixes are names, times are numbers — so that [to_string]
   prints a canonical form and [of_string (to_string s) = Ok s]. *)

type batching = On | Off | Dynamic of float  (* exploration epsilon *) | Aimd

let batching_to_string = function
  | On -> "on"
  | Off -> "off"
  | Dynamic _ -> "dynamic"
  | Aimd -> "aimd"

type mix = Set_only | Mixed | Small

let mix_to_string = function
  | Set_only -> "set_only"
  | Mixed -> "mixed"
  | Small -> "small"

let mix_of_string = function
  | "set_only" -> Ok Set_only
  | "mixed" -> Ok Mixed
  | "small" -> Ok Small
  | s -> Error (Printf.sprintf "unknown mix %S (want set_only|mixed|small)" s)

type scope = Loadgen.Fleet.scope = Global | Per_tenant | Per_conn

let scope_of_string = function
  | "global" -> Ok Global
  | "per_tenant" -> Ok Per_tenant
  | "per_conn" -> Ok Per_conn
  | s -> Error (Printf.sprintf "unknown scope %S (want global|per_tenant|per_conn)" s)

type tenant = {
  name : string;
  conns : int;
  rate_rps : float;
  burst : int;
  mix : mix;
  cpu_mult : float;
  link_us : float;
  slo_us : float;
  batching : batching;
}

let default_epsilon = Loadgen.Control.default_dynamic.Loadgen.Control.epsilon

let default_tenant ~name ~rate_rps =
  {
    name;
    conns = 1;
    rate_rps;
    burst = 1;
    mix = Set_only;
    cpu_mult = 1.0;
    link_us = 10.0;
    slo_us = 500.0;
    batching = Off;
  }

type t = {
  seed : int;
  warmup_ms : float;
  duration_ms : float;
  scope : scope;
  batching : batching;
  tenants : tenant list;
}

let default =
  {
    seed = 42;
    warmup_ms = 100.0;
    duration_ms = 400.0;
    scope = Global;
    batching = Off;
    tenants = [];
  }

(* {2 Parsing} *)

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  String.split_on_char ' ' (strip_comment line)
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let kv tok =
  match String.index_opt tok '=' with
  | Some i ->
    Ok (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
  | None -> Error (Printf.sprintf "expected key=value, got %S" tok)

let ( let* ) = Result.bind

let assoc_all toks =
  List.fold_left
    (fun acc tok ->
      let* acc = acc in
      let* pair = kv tok in
      Ok (pair :: acc))
    (Ok []) toks
  |> Result.map List.rev

let known keys pairs =
  match List.find_opt (fun (k, _) -> not (List.mem k keys)) pairs with
  | Some (k, _) -> Error (Printf.sprintf "unknown key %S" k)
  | None -> Ok pairs

let float_of pairs key ~default =
  match List.assoc_opt key pairs with
  | None -> Ok default
  | Some v -> (
    match float_of_string_opt v with
    | Some f when Float.is_finite f -> Ok f
    | Some _ | None -> Error (Printf.sprintf "%s: not a finite number: %S" key v))

let int_of pairs key ~default =
  match List.assoc_opt key pairs with
  | None -> Ok default
  | Some v -> (
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "%s: not an integer: %S" key v))

let positive key v =
  if v > 0.0 then Ok v else Error (Printf.sprintf "%s=%g must be positive" key v)

(* The batching mode plus its (optional) dynamic-only epsilon key. *)
let batching_of pairs ~default =
  let* name =
    match List.assoc_opt "batching" pairs with
    | None -> Ok (batching_to_string default)
    | Some v -> Ok v
  in
  let eps_given = List.mem_assoc "epsilon" pairs in
  match name with
  | "on" | "off" | "aimd" when eps_given ->
    Error (Printf.sprintf "epsilon only applies to batching=dynamic (got %s)" name)
  | "on" -> Ok On
  | "off" -> Ok Off
  | "aimd" -> Ok Aimd
  | "dynamic" ->
    let inherited = match default with Dynamic e -> e | _ -> default_epsilon in
    let* eps = float_of pairs "epsilon" ~default:inherited in
    if eps < 0.0 || eps >= 1.0 then
      Error (Printf.sprintf "epsilon=%g out of range [0,1)" eps)
    else Ok (Dynamic eps)
  | s -> Error (Printf.sprintf "unknown batching %S (want on|off|dynamic|aimd)" s)

let parse_fleet spec pairs =
  let* pairs =
    known [ "seed"; "warmup_ms"; "duration_ms"; "scope"; "batching"; "epsilon" ] pairs
  in
  let* seed = int_of pairs "seed" ~default:spec.seed in
  let* warmup_ms = float_of pairs "warmup_ms" ~default:spec.warmup_ms in
  let* duration_ms = float_of pairs "duration_ms" ~default:spec.duration_ms in
  let* duration_ms = positive "duration_ms" duration_ms in
  let* scope =
    match List.assoc_opt "scope" pairs with
    | None -> Ok spec.scope
    | Some v -> scope_of_string v
  in
  let* batching = batching_of pairs ~default:spec.batching in
  if warmup_ms < 0.0 then Error (Printf.sprintf "warmup_ms=%g must be >= 0" warmup_ms)
  else Ok { spec with seed; warmup_ms; duration_ms; scope; batching }

let valid_name name =
  name <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '-')
       name

let parse_tenant spec pairs =
  let* pairs =
    known
      [
        "name"; "conns"; "rate_rps"; "burst"; "mix"; "cpu_mult"; "link_us";
        "slo_us"; "batching"; "epsilon";
      ]
      pairs
  in
  let* name =
    match List.assoc_opt "name" pairs with
    | Some n when valid_name n -> Ok n
    | Some n -> Error (Printf.sprintf "bad tenant name %S (want [A-Za-z0-9_-]+)" n)
    | None -> Error "missing required key \"name\""
  in
  if List.exists (fun t -> t.name = name) spec.tenants then
    Error (Printf.sprintf "duplicate tenant name %S" name)
  else
    let* rate_rps =
      match List.assoc_opt "rate_rps" pairs with
      | None -> Error "missing required key \"rate_rps\""
      | Some _ -> float_of pairs "rate_rps" ~default:nan
    in
    let* rate_rps = positive "rate_rps" rate_rps in
    let d = default_tenant ~name ~rate_rps in
    let* conns = int_of pairs "conns" ~default:d.conns in
    let* burst = int_of pairs "burst" ~default:d.burst in
    let* mix =
      match List.assoc_opt "mix" pairs with
      | None -> Ok d.mix
      | Some v -> mix_of_string v
    in
    let* cpu_mult = float_of pairs "cpu_mult" ~default:d.cpu_mult in
    let* cpu_mult = positive "cpu_mult" cpu_mult in
    let* link_us = float_of pairs "link_us" ~default:d.link_us in
    let* slo_us = float_of pairs "slo_us" ~default:d.slo_us in
    let* slo_us = positive "slo_us" slo_us in
    let* batching = batching_of pairs ~default:d.batching in
    if conns < 1 then Error (Printf.sprintf "conns=%d must be >= 1" conns)
    else if burst < 1 then Error (Printf.sprintf "burst=%d must be >= 1" burst)
    else if link_us < 0.0 then Error (Printf.sprintf "link_us=%g must be >= 0" link_us)
    else
      let tenant =
        { name; conns; rate_rps; burst; mix; cpu_mult; link_us; slo_us; batching }
      in
      Ok { spec with tenants = spec.tenants @ [ tenant ] }

let parse_directive spec toks =
  match toks with
  | [] -> Ok spec
  | verb :: rest -> (
    let* pairs = assoc_all rest in
    match verb with
    | "fleet" -> parse_fleet spec pairs
    | "tenant" -> parse_tenant spec pairs
    | verb -> Error (Printf.sprintf "unknown directive %S (want fleet|tenant)" verb))

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go spec n = function
    | [] ->
      if spec.tenants = [] then Error "scenario: at least one tenant line required"
      else Ok spec
    | line :: rest -> (
      match parse_directive spec (tokens line) with
      | Ok spec -> go spec (n + 1) rest
      | Error msg -> Error (Printf.sprintf "scenario line %d: %s" n msg))
  in
  go default 1 lines

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg

(* {2 Printing} *)

let pp_batching ppf = function
  | Dynamic eps -> Format.fprintf ppf "batching=dynamic epsilon=%g" eps
  | b -> Format.fprintf ppf "batching=%s" (batching_to_string b)

let pp ppf t =
  Format.fprintf ppf "fleet seed=%d warmup_ms=%g duration_ms=%g scope=%s %a@\n"
    t.seed t.warmup_ms t.duration_ms
    (Loadgen.Fleet.scope_label t.scope)
    pp_batching t.batching;
  List.iter
    (fun tn ->
      Format.fprintf ppf
        "tenant name=%s conns=%d rate_rps=%g burst=%d mix=%s cpu_mult=%g link_us=%g slo_us=%g %a@\n"
        tn.name tn.conns tn.rate_rps tn.burst (mix_to_string tn.mix) tn.cpu_mult
        tn.link_us tn.slo_us pp_batching tn.batching)
    t.tenants

let to_string t = Format.asprintf "%a" pp t
