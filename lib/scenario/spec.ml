(* Declarative fleet scenarios, one directive per line in the style of
   [Fault.Plan]: a [fleet] line sets run-wide knobs and each [tenant]
   line adds one tenant.  The spec is symbolic — batching modes and
   workload mixes are names, times are numbers — so that [to_string]
   prints a canonical form and [of_string (to_string s) = Ok s]. *)

type batching = On | Off | Dynamic of float  (* exploration epsilon *) | Aimd

let batching_to_string = function
  | On -> "on"
  | Off -> "off"
  | Dynamic _ -> "dynamic"
  | Aimd -> "aimd"

type mix = Set_only | Mixed | Small

let mix_to_string = function
  | Set_only -> "set_only"
  | Mixed -> "mixed"
  | Small -> "small"

let mix_of_string = function
  | "set_only" -> Ok Set_only
  | "mixed" -> Ok Mixed
  | "small" -> Ok Small
  | s -> Error (Printf.sprintf "unknown mix %S (want set_only|mixed|small)" s)

type scope = Loadgen.Fleet.scope = Global | Per_tenant | Per_conn

let scope_of_string = function
  | "global" -> Ok Global
  | "per_tenant" -> Ok Per_tenant
  | "per_conn" -> Ok Per_conn
  | s -> Error (Printf.sprintf "unknown scope %S (want global|per_tenant|per_conn)" s)

type envelope =
  | Flat
  | Square of { period_ms : float; duty : float; high : float }
  | Ramp of { period_ms : float; from_f : float; to_f : float }
  | Steps of (float * float) list  (* (at_ms, factor) *)
  | Replay of string  (* gap-trace file, one µs gap per line *)

type churn = {
  c_arrive_rps : float;
  c_depart_rps : float;
  c_min : int;
  c_max : int;
  c_script : (float * int) list;  (* (at_ms, ±delta) *)
}

type tenant = {
  name : string;
  conns : int;
  rate_rps : float;
  burst : int;
  mix : mix;
  cpu_mult : float;
  link_us : float;
  slo_us : float;
  batching : batching;
  envelope : envelope;
  churn : churn option;
}

let default_epsilon = Loadgen.Control.default_dynamic.Loadgen.Control.epsilon

let default_tenant ~name ~rate_rps =
  {
    name;
    conns = 1;
    rate_rps;
    burst = 1;
    mix = Set_only;
    cpu_mult = 1.0;
    link_us = 10.0;
    slo_us = 500.0;
    batching = Off;
    envelope = Flat;
    churn = None;
  }

type t = {
  seed : int;
  warmup_ms : float;
  duration_ms : float;
  scope : scope;
  batching : batching;
  cores : int;
  lb : Shard.Lb.policy;
  tenants : tenant list;
}

let default =
  {
    seed = 42;
    warmup_ms = 100.0;
    duration_ms = 400.0;
    scope = Global;
    batching = Off;
    cores = 1;
    lb = Shard.Lb.Consistent_hash;
    tenants = [];
  }

(* {2 Parsing} *)

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  String.split_on_char ' ' (strip_comment line)
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let kv tok =
  match String.index_opt tok '=' with
  | Some i ->
    Ok (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
  | None -> Error (Printf.sprintf "expected key=value, got %S" tok)

let ( let* ) = Result.bind

let assoc_all toks =
  List.fold_left
    (fun acc tok ->
      let* acc = acc in
      let* pair = kv tok in
      Ok (pair :: acc))
    (Ok []) toks
  |> Result.map List.rev

let known keys pairs =
  match List.find_opt (fun (k, _) -> not (List.mem k keys)) pairs with
  | Some (k, _) ->
    Error
      (Printf.sprintf "unknown key %S (accepted: %s)" k (String.concat ", " keys))
  | None -> Ok pairs

let float_of pairs key ~default =
  match List.assoc_opt key pairs with
  | None -> Ok default
  | Some v -> (
    match float_of_string_opt v with
    | Some f when Float.is_finite f -> Ok f
    | Some _ | None -> Error (Printf.sprintf "%s: not a finite number: %S" key v))

let int_of pairs key ~default =
  match List.assoc_opt key pairs with
  | None -> Ok default
  | Some v -> (
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "%s: not an integer: %S" key v))

let positive key v =
  if v > 0.0 then Ok v else Error (Printf.sprintf "%s=%g must be positive" key v)

(* The batching mode plus its (optional) dynamic-only epsilon key. *)
let batching_of pairs ~default =
  let* name =
    match List.assoc_opt "batching" pairs with
    | None -> Ok (batching_to_string default)
    | Some v -> Ok v
  in
  let eps_given = List.mem_assoc "epsilon" pairs in
  match name with
  | "on" | "off" | "aimd" when eps_given ->
    Error (Printf.sprintf "epsilon only applies to batching=dynamic (got %s)" name)
  | "on" -> Ok On
  | "off" -> Ok Off
  | "aimd" -> Ok Aimd
  | "dynamic" ->
    let inherited = match default with Dynamic e -> e | _ -> default_epsilon in
    let* eps = float_of pairs "epsilon" ~default:inherited in
    if eps < 0.0 || eps >= 1.0 then
      Error (Printf.sprintf "epsilon=%g out of range [0,1)" eps)
    else Ok (Dynamic eps)
  | s -> Error (Printf.sprintf "unknown batching %S (want on|off|dynamic|aimd)" s)

let parse_fleet spec pairs =
  let* pairs =
    known [ "seed"; "warmup_ms"; "duration_ms"; "scope"; "batching"; "epsilon" ] pairs
  in
  let* seed = int_of pairs "seed" ~default:spec.seed in
  let* warmup_ms = float_of pairs "warmup_ms" ~default:spec.warmup_ms in
  let* duration_ms = float_of pairs "duration_ms" ~default:spec.duration_ms in
  let* duration_ms = positive "duration_ms" duration_ms in
  let* scope =
    match List.assoc_opt "scope" pairs with
    | None -> Ok spec.scope
    | Some v -> scope_of_string v
  in
  let* batching = batching_of pairs ~default:spec.batching in
  if warmup_ms < 0.0 then Error (Printf.sprintf "warmup_ms=%g must be >= 0" warmup_ms)
  else Ok { spec with seed; warmup_ms; duration_ms; scope; batching }

(* The server tier: how many shards (simulated cores) and which
   front-LB policy steers connections onto them. *)
let parse_server spec pairs =
  let* pairs = known [ "cores"; "lb" ] pairs in
  let* cores = int_of pairs "cores" ~default:spec.cores in
  let* lb =
    match List.assoc_opt "lb" pairs with
    | None -> Ok spec.lb
    | Some v -> (
      match Shard.Lb.policy_of_string v with
      | Some p -> Ok p
      | None ->
        Error
          (Printf.sprintf
             "unknown lb %S (want consistent_hash|least_loaded|round_robin)" v))
  in
  if cores < 1 then Error (Printf.sprintf "cores=%d must be >= 1" cores)
  else Ok { spec with cores; lb }

let valid_name name =
  name <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '-')
       name

(* Comma-separated [a:b] pair lists, e.g. [env_steps=100:4,200:1] or
   [churn_script=150:+4,250:-4]. *)
let pair_list key v parse_item =
  let items = String.split_on_char ',' v in
  List.fold_left
    (fun acc item ->
      let* acc = acc in
      match String.index_opt item ':' with
      | None -> Error (Printf.sprintf "%s: expected at:value pairs, got %S" key item)
      | Some i ->
        let a = String.sub item 0 i in
        let b = String.sub item (i + 1) (String.length item - i - 1) in
        let* pair = parse_item a b in
        Ok (pair :: acc))
    (Ok []) items
  |> Result.map List.rev

let env_keys =
  [ "env_period_ms"; "env_duty"; "env_high"; "env_from"; "env_to"; "env_steps"; "env_trace" ]

let envelope_of pairs =
  let reject_stray allowed =
    match
      List.find_opt (fun k -> List.mem_assoc k pairs && not (List.mem k allowed)) env_keys
    with
    | Some k -> Error (Printf.sprintf "%s does not apply to this envelope" k)
    | None -> Ok ()
  in
  let req_float key =
    match List.assoc_opt key pairs with
    | None -> Error (Printf.sprintf "missing required key %S for this envelope" key)
    | Some _ -> float_of pairs key ~default:nan
  in
  match List.assoc_opt "envelope" pairs with
  | None -> (
    match List.find_opt (fun k -> List.mem_assoc k pairs) env_keys with
    | Some k -> Error (Printf.sprintf "%s requires an envelope= clause" k)
    | None -> Ok Flat)
  | Some "flat" ->
    let* () = reject_stray [] in
    Ok Flat
  | Some "square" ->
    let* () = reject_stray [ "env_period_ms"; "env_duty"; "env_high" ] in
    let* period_ms = req_float "env_period_ms" in
    let* period_ms = positive "env_period_ms" period_ms in
    let* duty = float_of pairs "env_duty" ~default:0.5 in
    let* high = req_float "env_high" in
    let* high = positive "env_high" high in
    if duty <= 0.0 || duty >= 1.0 then
      Error (Printf.sprintf "env_duty=%g out of range (0,1)" duty)
    else Ok (Square { period_ms; duty; high })
  | Some "ramp" ->
    let* () = reject_stray [ "env_period_ms"; "env_from"; "env_to" ] in
    let* period_ms = req_float "env_period_ms" in
    let* period_ms = positive "env_period_ms" period_ms in
    let* from_f = req_float "env_from" in
    let* from_f = positive "env_from" from_f in
    let* to_f = req_float "env_to" in
    let* to_f = positive "env_to" to_f in
    Ok (Ramp { period_ms; from_f; to_f })
  | Some "steps" ->
    let* () = reject_stray [ "env_steps" ] in
    let* steps =
      match List.assoc_opt "env_steps" pairs with
      | None -> Error "missing required key \"env_steps\" for this envelope"
      | Some v ->
        pair_list "env_steps" v (fun a b ->
            match (float_of_string_opt a, float_of_string_opt b) with
            | Some at, Some f when Float.is_finite at && Float.is_finite f ->
              if at < 0.0 then Error (Printf.sprintf "env_steps: time %g must be >= 0" at)
              else if f <= 0.0 then
                Error (Printf.sprintf "env_steps: factor %g must be positive" f)
              else Ok (at, f)
            | _ -> Error (Printf.sprintf "env_steps: bad pair %S:%S" a b))
    in
    if steps = [] then Error "env_steps: at least one at:factor pair required"
    else
      let rec sorted = function
        | (a, _) :: ((b, _) :: _ as rest) ->
          if a >= b then
            Error (Printf.sprintf "env_steps: times must be strictly increasing (%g >= %g)" a b)
          else sorted rest
        | _ -> Ok (Steps steps)
      in
      sorted steps
  | Some "replay" ->
    let* () = reject_stray [ "env_trace" ] in
    (match List.assoc_opt "env_trace" pairs with
    | Some path when path <> "" -> Ok (Replay path)
    | Some _ -> Error "env_trace: path must be non-empty"
    | None -> Error "missing required key \"env_trace\" for this envelope")
  | Some s ->
    Error (Printf.sprintf "unknown envelope %S (want flat|square|ramp|steps|replay)" s)

let churn_keys =
  [ "churn_arrive_rps"; "churn_depart_rps"; "churn_min"; "churn_max"; "churn_script" ]

let churn_of pairs ~conns =
  if not (List.exists (fun k -> List.mem_assoc k pairs) churn_keys) then Ok None
  else
    let* c_arrive_rps = float_of pairs "churn_arrive_rps" ~default:0.0 in
    let* c_depart_rps = float_of pairs "churn_depart_rps" ~default:0.0 in
    let* c_min = int_of pairs "churn_min" ~default:1 in
    let* c_max = int_of pairs "churn_max" ~default:64 in
    let* c_script =
      match List.assoc_opt "churn_script" pairs with
      | None -> Ok []
      | Some v ->
        pair_list "churn_script" v (fun a b ->
            match (float_of_string_opt a, int_of_string_opt b) with
            | Some at, Some d when Float.is_finite at ->
              if at < 0.0 then
                Error (Printf.sprintf "churn_script: time %g must be >= 0" at)
              else if d = 0 then Error "churn_script: delta must be non-zero"
              else Ok (at, d)
            | _ -> Error (Printf.sprintf "churn_script: bad pair %S:%S" a b))
    in
    if c_arrive_rps < 0.0 then
      Error (Printf.sprintf "churn_arrive_rps=%g must be >= 0" c_arrive_rps)
    else if c_depart_rps < 0.0 then
      Error (Printf.sprintf "churn_depart_rps=%g must be >= 0" c_depart_rps)
    else if c_min < 1 then Error (Printf.sprintf "churn_min=%d must be >= 1" c_min)
    else if c_max < c_min then
      Error (Printf.sprintf "churn_max=%d must be >= churn_min=%d" c_max c_min)
    else if conns < c_min || conns > c_max then
      Error
        (Printf.sprintf "conns=%d must lie within [churn_min=%d, churn_max=%d]" conns
           c_min c_max)
    else Ok (Some { c_arrive_rps; c_depart_rps; c_min; c_max; c_script })

let parse_tenant spec pairs =
  let* pairs =
    known
      ([
         "name"; "conns"; "rate_rps"; "burst"; "mix"; "cpu_mult"; "link_us";
         "slo_us"; "batching"; "epsilon"; "envelope";
       ]
      @ env_keys @ churn_keys)
      pairs
  in
  let* name =
    match List.assoc_opt "name" pairs with
    | Some n when valid_name n -> Ok n
    | Some n -> Error (Printf.sprintf "bad tenant name %S (want [A-Za-z0-9_-]+)" n)
    | None -> Error "missing required key \"name\""
  in
  if List.exists (fun t -> t.name = name) spec.tenants then
    Error (Printf.sprintf "duplicate tenant name %S" name)
  else
    let* rate_rps =
      match List.assoc_opt "rate_rps" pairs with
      | None -> Error "missing required key \"rate_rps\""
      | Some _ -> float_of pairs "rate_rps" ~default:nan
    in
    let* rate_rps = positive "rate_rps" rate_rps in
    let d = default_tenant ~name ~rate_rps in
    let* conns = int_of pairs "conns" ~default:d.conns in
    let* burst = int_of pairs "burst" ~default:d.burst in
    let* mix =
      match List.assoc_opt "mix" pairs with
      | None -> Ok d.mix
      | Some v -> mix_of_string v
    in
    let* cpu_mult = float_of pairs "cpu_mult" ~default:d.cpu_mult in
    let* cpu_mult = positive "cpu_mult" cpu_mult in
    let* link_us = float_of pairs "link_us" ~default:d.link_us in
    let* slo_us = float_of pairs "slo_us" ~default:d.slo_us in
    let* slo_us = positive "slo_us" slo_us in
    let* batching = batching_of pairs ~default:d.batching in
    let* envelope = envelope_of pairs in
    let* churn = churn_of pairs ~conns in
    if conns < 1 then Error (Printf.sprintf "conns=%d must be >= 1" conns)
    else if burst < 1 then Error (Printf.sprintf "burst=%d must be >= 1" burst)
    else if link_us < 0.0 then Error (Printf.sprintf "link_us=%g must be >= 0" link_us)
    else
      let tenant =
        {
          name; conns; rate_rps; burst; mix; cpu_mult; link_us; slo_us; batching;
          envelope; churn;
        }
      in
      Ok { spec with tenants = spec.tenants @ [ tenant ] }

let parse_directive spec toks =
  match toks with
  | [] -> Ok spec
  | verb :: rest -> (
    let* pairs = assoc_all rest in
    match verb with
    | "fleet" -> parse_fleet spec pairs
    | "server" -> parse_server spec pairs
    | "tenant" -> parse_tenant spec pairs
    | verb ->
      Error (Printf.sprintf "unknown directive %S (want fleet|server|tenant)" verb))

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go spec n = function
    | [] ->
      if spec.tenants = [] then Error "scenario: at least one tenant line required"
      else Ok spec
    | line :: rest -> (
      match parse_directive spec (tokens line) with
      | Ok spec -> go spec (n + 1) rest
      | Error msg -> Error (Printf.sprintf "scenario line %d: %s" n msg))
  in
  go default 1 lines

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg

(* {2 Printing} *)

let pp_batching ppf = function
  | Dynamic eps -> Format.fprintf ppf "batching=dynamic epsilon=%g" eps
  | b -> Format.fprintf ppf "batching=%s" (batching_to_string b)

let pp_pair_list sep item ppf xs =
  List.iteri
    (fun i x ->
      if i > 0 then Format.pp_print_string ppf sep;
      item ppf x)
    xs

let pp_envelope ppf = function
  | Flat -> ()
  | Square { period_ms; duty; high } ->
    Format.fprintf ppf " envelope=square env_period_ms=%g env_duty=%g env_high=%g"
      period_ms duty high
  | Ramp { period_ms; from_f; to_f } ->
    Format.fprintf ppf " envelope=ramp env_period_ms=%g env_from=%g env_to=%g"
      period_ms from_f to_f
  | Steps steps ->
    Format.fprintf ppf " envelope=steps env_steps=%a"
      (pp_pair_list "," (fun ppf (at, f) -> Format.fprintf ppf "%g:%g" at f))
      steps
  | Replay path -> Format.fprintf ppf " envelope=replay env_trace=%s" path

let pp_churn ppf = function
  | None -> ()
  | Some c ->
    Format.fprintf ppf " churn_arrive_rps=%g churn_depart_rps=%g churn_min=%d churn_max=%d"
      c.c_arrive_rps c.c_depart_rps c.c_min c.c_max;
    if c.c_script <> [] then
      Format.fprintf ppf " churn_script=%a"
        (pp_pair_list "," (fun ppf (at, d) -> Format.fprintf ppf "%g:%+d" at d))
        c.c_script

let pp ppf t =
  Format.fprintf ppf "fleet seed=%d warmup_ms=%g duration_ms=%g scope=%s %a@\n"
    t.seed t.warmup_ms t.duration_ms
    (Loadgen.Fleet.scope_label t.scope)
    pp_batching t.batching;
  if t.cores <> 1 || t.lb <> Shard.Lb.Consistent_hash then
    Format.fprintf ppf "server cores=%d lb=%s@\n" t.cores
      (Shard.Lb.policy_to_string t.lb);
  List.iter
    (fun tn ->
      Format.fprintf ppf
        "tenant name=%s conns=%d rate_rps=%g burst=%d mix=%s cpu_mult=%g link_us=%g slo_us=%g %a%a%a@\n"
        tn.name tn.conns tn.rate_rps tn.burst (mix_to_string tn.mix) tn.cpu_mult
        tn.link_us tn.slo_us pp_batching tn.batching pp_envelope tn.envelope
        pp_churn tn.churn)
    t.tenants

let to_string t = Format.asprintf "%a" pp t
