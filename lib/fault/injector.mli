(** Per-link-direction fault injection state.

    One injector owns one {!Plan.side} plus a dedicated {!Sim.Rng}
    stream and the Gilbert–Elliott channel state.  {!Tcp.Link} asks it
    for a {!decision} per packet; {!Tcp.Conn} asks {!corrupt_triple}
    per exchange-carrying wire segment.  The per-packet draw order is
    fixed (loss, reorder, duplication — each only when configured), so
    seeded runs replay bit-identically. *)

type action =
  | Deliver
  | Drop of string  (** drop with this trace reason (["loss"], ["blackout"]) *)

type decision = {
  action : action;
  extra_delay_us : float;
      (** > 0: hold the packet back this long after its normal arrival
          instant, letting later packets overtake it (reordering) *)
  duplicate : bool;  (** deliver the packet a second time *)
}

type t

val create : side:Plan.side -> rng:Sim.Rng.t -> t

val decide : t -> now_us:float -> decision
(** Decide the fate of one packet entering the link at [now_us]. *)

val corrupt_triple :
  t -> E2e.Exchange.triple -> E2e.Exchange.triple option option
(** Corruption targeted at the 36-byte exchange option: [None] when
    corruption does not fire; [Some None] when the mangled bytes no
    longer decode (the receiver drops the option); [Some (Some g)]
    when they decode to a garbage triple (the estimator's ingest
    clamps must reject it).  Implemented as encode → random byte
    flips → decode, so the corruption model matches the wire codec. *)

(** {1 Counters} *)

val packets : t -> int
val drops : t -> int
val reorders : t -> int
val duplicates : t -> int
val corruptions : t -> int

val bursting : t -> bool
(** Is the Gilbert–Elliott channel currently in its Bad state? *)
