type dir = C2s | S2c | Both

let dir_to_string = function C2s -> "c2s" | S2c -> "s2c" | Both -> "both"

let dir_of_string = function
  | "c2s" -> Ok C2s
  | "s2c" -> Ok S2c
  | "both" -> Ok Both
  | s -> Error (Printf.sprintf "unknown direction %S (want c2s|s2c|both)" s)

type gilbert = {
  p_gb : float;
  p_bg : float;
  loss_good : float;
  loss_bad : float;
}

let bernoulli ~prob =
  if prob < 0.0 || prob >= 1.0 then
    invalid_arg "Fault.Plan.bernoulli: prob must be in [0,1)";
  { p_gb = 0.0; p_bg = 1.0; loss_good = prob; loss_bad = prob }

type reorder = { reorder_prob : float; max_displacement : int; quantum_us : float }

type blackout = { from_us : float; until_us : float }

type step = { at_us : float; gbit_per_s : float option; delay_us : float option }

type side = {
  loss : gilbert option;
  reorder : reorder option;
  duplicate : float;
  corrupt : float;
  blackouts : blackout list;
}

let empty_side =
  { loss = None; reorder = None; duplicate = 0.0; corrupt = 0.0; blackouts = [] }

type t = { c2s : side; s2c : side; steps : step list }

let empty = { c2s = empty_side; s2c = empty_side; steps = [] }

let side_is_empty s =
  s.loss = None && s.reorder = None && s.duplicate = 0.0 && s.corrupt = 0.0
  && s.blackouts = []

let is_empty t = side_is_empty t.c2s && side_is_empty t.s2c && t.steps = []

let side t = function C2s -> t.c2s | S2c -> t.s2c | Both -> invalid_arg "Plan.side"

(* {2 Directive grammar}

   One directive per line, [#] starts a comment:

     loss dir=both prob=0.02              # Bernoulli shorthand
     loss dir=c2s p_gb=0.05 p_bg=0.4 good=0.001 bad=0.3
     reorder dir=both prob=0.05 disp=3 quantum_us=20
     dup dir=s2c prob=0.01
     corrupt dir=both prob=0.02
     blackout dir=both from_ms=150 until_ms=170
     rate at_ms=200 gbps=0.5
     delay at_ms=200 us=100

   Time keys accept both [_us] and [_ms] suffixes. *)

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  String.split_on_char ' ' (strip_comment line)
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let kv tok =
  match String.index_opt tok '=' with
  | Some i ->
    Ok (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
  | None -> Error (Printf.sprintf "expected key=value, got %S" tok)

let ( let* ) = Result.bind

let assoc_all toks =
  List.fold_left
    (fun acc tok ->
      let* acc = acc in
      let* pair = kv tok in
      Ok (pair :: acc))
    (Ok []) toks
  |> Result.map List.rev

let known keys pairs =
  match List.find_opt (fun (k, _) -> not (List.mem k keys)) pairs with
  | Some (k, _) -> Error (Printf.sprintf "unknown key %S" k)
  | None -> Ok pairs

let float_of pairs key ~default =
  match List.assoc_opt key pairs with
  | None -> Ok default
  | Some v -> (
    match float_of_string_opt v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "%s: not a number: %S" key v))

let require pairs key =
  match List.assoc_opt key pairs with
  | Some _ -> float_of pairs key ~default:nan
  | None -> Error (Printf.sprintf "missing required key %S" key)

let prob_of pairs key ~default =
  let* p = float_of pairs key ~default in
  if p < 0.0 || p >= 1.0 then
    Error (Printf.sprintf "%s=%g out of range [0,1)" key p)
  else Ok p

(* Gilbert–Elliott parameters admit 1.0: [bad=1] (drop everything while
   Bad) and [p_bg=1] (leave Bad immediately) are both meaningful. *)
let prob_incl_of pairs key ~default =
  let* p = float_of pairs key ~default in
  if p < 0.0 || p > 1.0 then
    Error (Printf.sprintf "%s=%g out of range [0,1]" key p)
  else Ok p

(* A time-valued key: [key_us] or [key_ms], whichever is present. *)
let time_us_of pairs key =
  match (List.assoc_opt (key ^ "_us") pairs, List.assoc_opt (key ^ "_ms") pairs) with
  | None, None -> Error (Printf.sprintf "missing %s_us or %s_ms" key key)
  | Some _, Some _ -> Error (Printf.sprintf "both %s_us and %s_ms given" key key)
  | Some _, None -> require pairs (key ^ "_us")
  | None, Some _ ->
    let* ms = require pairs (key ^ "_ms") in
    Ok (ms *. 1e3)

let dir_of pairs =
  match List.assoc_opt "dir" pairs with
  | None -> Ok Both
  | Some v -> dir_of_string v

let update plan dir f =
  match dir with
  | C2s -> { plan with c2s = f plan.c2s }
  | S2c -> { plan with s2c = f plan.s2c }
  | Both -> { plan with c2s = f plan.c2s; s2c = f plan.s2c }

let parse_directive plan toks =
  match toks with
  | [] -> Ok plan
  | verb :: rest -> (
    let* pairs = assoc_all rest in
    match verb with
    | "loss" ->
      let* pairs =
        known [ "dir"; "prob"; "p_gb"; "p_bg"; "good"; "bad" ] pairs
      in
      let* dir = dir_of pairs in
      let* ge =
        if List.mem_assoc "prob" pairs then
          let* prob = prob_of pairs "prob" ~default:0.0 in
          Ok (bernoulli ~prob)
        else
          let* p_gb = prob_incl_of pairs "p_gb" ~default:0.0 in
          let* p_bg = prob_incl_of pairs "p_bg" ~default:0.0 in
          let* loss_good = prob_incl_of pairs "good" ~default:0.0 in
          let* loss_bad = prob_incl_of pairs "bad" ~default:0.0 in
          Ok { p_gb; p_bg; loss_good; loss_bad }
      in
      Ok (update plan dir (fun s -> { s with loss = Some ge }))
    | "reorder" ->
      let* pairs = known [ "dir"; "prob"; "disp"; "quantum_us" ] pairs in
      let* dir = dir_of pairs in
      let* reorder_prob = prob_of pairs "prob" ~default:0.0 in
      let* disp = float_of pairs "disp" ~default:3.0 in
      let* quantum_us = float_of pairs "quantum_us" ~default:20.0 in
      if disp < 1.0 || quantum_us <= 0.0 then
        Error "reorder: disp must be >= 1 and quantum_us > 0"
      else
        Ok
          (update plan dir (fun s ->
               {
                 s with
                 reorder =
                   Some
                     {
                       reorder_prob;
                       max_displacement = int_of_float disp;
                       quantum_us;
                     };
               }))
    | "dup" ->
      let* pairs = known [ "dir"; "prob" ] pairs in
      let* dir = dir_of pairs in
      let* prob = prob_of pairs "prob" ~default:0.0 in
      Ok (update plan dir (fun s -> { s with duplicate = prob }))
    | "corrupt" ->
      let* pairs = known [ "dir"; "prob" ] pairs in
      let* dir = dir_of pairs in
      let* prob = prob_of pairs "prob" ~default:0.0 in
      Ok (update plan dir (fun s -> { s with corrupt = prob }))
    | "blackout" ->
      let* pairs =
        known [ "dir"; "from_us"; "from_ms"; "until_us"; "until_ms" ] pairs
      in
      let* dir = dir_of pairs in
      let* from_us = time_us_of pairs "from" in
      let* until_us = time_us_of pairs "until" in
      if until_us <= from_us then Error "blackout: until must be after from"
      else
        Ok
          (update plan dir (fun s ->
               { s with blackouts = s.blackouts @ [ { from_us; until_us } ] }))
    | "rate" ->
      let* pairs = known [ "at_us"; "at_ms"; "gbps" ] pairs in
      let* at_us = time_us_of pairs "at" in
      let* gbps = require pairs "gbps" in
      if gbps <= 0.0 then Error "rate: gbps must be positive"
      else
        Ok
          {
            plan with
            steps =
              plan.steps @ [ { at_us; gbit_per_s = Some gbps; delay_us = None } ];
          }
    | "delay" ->
      let* pairs = known [ "at_us"; "at_ms"; "us" ] pairs in
      let* at_us = time_us_of pairs "at" in
      let* us = require pairs "us" in
      if us < 0.0 then Error "delay: us must be non-negative"
      else
        Ok
          {
            plan with
            steps = plan.steps @ [ { at_us; gbit_per_s = None; delay_us = Some us } ];
          }
    | verb -> Error (Printf.sprintf "unknown directive %S" verb))

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go plan n = function
    | [] -> Ok plan
    | line :: rest -> (
      match parse_directive plan (tokens line) with
      | Ok plan -> go plan (n + 1) rest
      | Error msg -> Error (Printf.sprintf "fault plan line %d: %s" n msg))
  in
  go empty 1 lines

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg

let pp_side ppf (name, s) =
  Option.iter
    (fun g ->
      Format.fprintf ppf "loss dir=%s p_gb=%g p_bg=%g good=%g bad=%g@\n" name
        g.p_gb g.p_bg g.loss_good g.loss_bad)
    s.loss;
  Option.iter
    (fun r ->
      Format.fprintf ppf "reorder dir=%s prob=%g disp=%d quantum_us=%g@\n" name
        r.reorder_prob r.max_displacement r.quantum_us)
    s.reorder;
  if s.duplicate > 0.0 then
    Format.fprintf ppf "dup dir=%s prob=%g@\n" name s.duplicate;
  if s.corrupt > 0.0 then
    Format.fprintf ppf "corrupt dir=%s prob=%g@\n" name s.corrupt;
  List.iter
    (fun b ->
      Format.fprintf ppf "blackout dir=%s from_us=%g until_us=%g@\n" name
        b.from_us b.until_us)
    s.blackouts

let pp ppf t =
  pp_side ppf ("c2s", t.c2s);
  pp_side ppf ("s2c", t.s2c);
  List.iter
    (fun st ->
      match (st.gbit_per_s, st.delay_us) with
      | Some g, _ -> Format.fprintf ppf "rate at_us=%g gbps=%g@\n" st.at_us g
      | None, Some d -> Format.fprintf ppf "delay at_us=%g us=%g@\n" st.at_us d
      | None, None -> ())
    t.steps

let to_string t = Format.asprintf "%a" pp t
