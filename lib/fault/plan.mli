(** Declarative fault plans for the simulated network.

    A plan describes, per link direction, bursty (Gilbert–Elliott)
    loss, bounded-displacement reordering, duplication, corruption of
    the 36-byte exchange option, timed blackouts, and mid-run
    bandwidth/propagation-delay steps.  Plans are pure data: all
    randomness lives in {!Injector}, driven by {!Sim.Rng}, so a seeded
    run replays bit-identically (and identically across [--domains]).

    The textual grammar ([--fault-plan FILE]) is one directive per
    line; [#] starts a comment:

    {v
    loss dir=both prob=0.02              # Bernoulli shorthand
    loss dir=c2s p_gb=0.05 p_bg=0.4 good=0.001 bad=0.3
    reorder dir=both prob=0.05 disp=3 quantum_us=20
    dup dir=s2c prob=0.01
    corrupt dir=both prob=0.02
    blackout dir=both from_ms=150 until_ms=170
    rate at_ms=200 gbps=0.5
    delay at_ms=200 us=100
    v}

    [dir] defaults to [both]; time keys accept [_us] or [_ms]. *)

type dir = C2s | S2c | Both

val dir_to_string : dir -> string
val dir_of_string : string -> (dir, string) result

type gilbert = {
  p_gb : float;  (** P(Good → Bad) per packet *)
  p_bg : float;  (** P(Bad → Good) per packet *)
  loss_good : float;  (** drop probability while Good *)
  loss_bad : float;  (** drop probability while Bad *)
}
(** Two-state Gilbert–Elliott bursty-loss channel, stepped per packet. *)

val bernoulli : prob:float -> gilbert
(** Degenerate (stateless) channel: independent loss with [prob].
    @raise Invalid_argument for probabilities outside [0, 1). *)

type reorder = {
  reorder_prob : float;  (** chance a packet is displaced *)
  max_displacement : int;  (** bound on how far it slips back *)
  quantum_us : float;  (** extra delay per displacement slot *)
}

type blackout = { from_us : float; until_us : float }
(** Every packet sent inside the window is dropped (reason
    ["blackout"]); retransmission timers carry traffic across it. *)

type step = { at_us : float; gbit_per_s : float option; delay_us : float option }
(** A mid-run link reconfiguration: at [at_us], set the bandwidth
    and/or the propagation delay (absolute new values). *)

type side = {
  loss : gilbert option;
  reorder : reorder option;
  duplicate : float;  (** per-packet duplication probability *)
  corrupt : float;  (** per-share corruption probability *)
  blackouts : blackout list;
}
(** The faults applied to one link direction. *)

val empty_side : side

type t = { c2s : side; s2c : side; steps : step list }

val empty : t
val is_empty : t -> bool
val side_is_empty : side -> bool

val side : t -> dir -> side
(** [C2s] or [S2c] only.  @raise Invalid_argument on [Both]. *)

val of_string : string -> (t, string) result
(** Parse the directive grammar; errors carry the 1-based line. *)

val of_file : string -> (t, string) result

val to_string : t -> string
(** Render back to the directive grammar (parses to an equal plan). *)

val pp : Format.formatter -> t -> unit
