type action = Deliver | Drop of string

type decision = { action : action; extra_delay_us : float; duplicate : bool }

let deliver = { action = Deliver; extra_delay_us = 0.0; duplicate = false }

type t = {
  side : Plan.side;
  rng : Sim.Rng.t;
  mutable bad : bool;
  mutable packets : int;
  mutable drops : int;
  mutable reorders : int;
  mutable duplicates : int;
  mutable corruptions : int;
}

let create ~side ~rng =
  {
    side;
    rng;
    bad = false;
    packets = 0;
    drops = 0;
    reorders = 0;
    duplicates = 0;
    corruptions = 0;
  }

let in_blackout side ~now_us =
  List.exists
    (fun (b : Plan.blackout) -> now_us >= b.from_us && now_us < b.until_us)
    side.Plan.blackouts

(* Fixed per-packet draw order — blackout (no draw), loss (transition
   then drop), reorder (fire then displacement), duplication — so a
   given seed replays the same fault sequence regardless of what each
   stage decides. *)
let decide t ~now_us =
  t.packets <- t.packets + 1;
  if in_blackout t.side ~now_us then begin
    t.drops <- t.drops + 1;
    { deliver with action = Drop "blackout" }
  end
  else begin
    let lost =
      match t.side.Plan.loss with
      | None -> false
      | Some g ->
        let flip = Sim.Rng.float t.rng in
        t.bad <- (if t.bad then flip >= g.p_bg else flip < g.p_gb);
        Sim.Rng.float t.rng < (if t.bad then g.loss_bad else g.loss_good)
    in
    if lost then begin
      t.drops <- t.drops + 1;
      { deliver with action = Drop "loss" }
    end
    else begin
      let extra_delay_us =
        match t.side.Plan.reorder with
        | None -> 0.0
        | Some r ->
          if Sim.Rng.float t.rng < r.reorder_prob then begin
            let slots = 1 + Sim.Rng.int t.rng ~bound:r.max_displacement in
            t.reorders <- t.reorders + 1;
            float_of_int slots *. r.quantum_us
          end
          else 0.0
      in
      let duplicate =
        t.side.Plan.duplicate > 0.0
        && Sim.Rng.float t.rng < t.side.Plan.duplicate
      in
      if duplicate then t.duplicates <- t.duplicates + 1;
      { action = Deliver; extra_delay_us; duplicate }
    end
  end

let corrupt_triple t triple =
  if t.side.Plan.corrupt <= 0.0 || Sim.Rng.float t.rng >= t.side.Plan.corrupt
  then None
  else begin
    t.corruptions <- t.corruptions + 1;
    let wire = Bytes.of_string (E2e.Exchange.encode triple) in
    let flips = 1 + Sim.Rng.int t.rng ~bound:4 in
    for _ = 1 to flips do
      let pos = Sim.Rng.int t.rng ~bound:(Bytes.length wire) in
      let mask = 1 + Sim.Rng.int t.rng ~bound:255 in
      Bytes.set_uint8 wire pos (Bytes.get_uint8 wire pos lxor mask)
    done;
    match E2e.Exchange.decode (Bytes.unsafe_to_string wire) with
    | Ok garbled -> Some (Some garbled)
    | Error _ -> Some None
  end

let packets t = t.packets
let drops t = t.drops
let reorders t = t.reorders
let duplicates t = t.duplicates
let corruptions t = t.corruptions
let bursting t = t.bad
