(** Horizontal stacked bar charts (SVG + ASCII) for per-phase latency
    breakdowns.

    Deterministic rendering: segment colors/letters are assigned by
    first appearance of the segment name across the whole bar list, so
    the same phase gets the same color in every bar and both charts of
    a two-run comparison. *)

type seg = { name : string; value : float }

type bar = { label : string; segs : seg list }
(** One horizontal bar, e.g. ["run A p95"], left-to-right segments. *)

val total : bar -> float

val render_svg : ?width:int -> ?unit:string -> bar list -> string
(** Inline [<svg>] element: legend on top, one labelled bar per entry,
    totals on the right, hover titles per segment.  All bars share one
    scale (the largest total). *)

val render_ascii : ?width:int -> ?unit:string -> bar list -> string
(** Fixed-width text rendering with one letter per phase and a legend
    underneath; cells are apportioned by largest remainder so drawn
    lengths track the shared scale. *)
