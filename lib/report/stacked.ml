(* Horizontal stacked bar charts — one bar per (run, percentile), one
   segment per latency phase — emitted as inline SVG for the HTML
   report and as fixed-width text for terminals.  Rendering is fully
   deterministic: colors are assigned by first appearance of a segment
   name, geometry is derived from the data only. *)

type seg = { name : string; value : float }
type bar = { label : string; segs : seg list }

let palette =
  [| "#4e79a7"; "#f28e2b"; "#e15759"; "#76b7b2"; "#59a14f"; "#edc948";
     "#b07aa1"; "#ff9da7"; "#9c755f"; "#bab0ac" |]

(* Segment name -> color, stable across bars and runs: first
   appearance order over the whole bar list decides. *)
let color_map bars =
  let order = ref [] in
  let n = ref 0 in
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          if not (List.mem_assoc s.name !order) then begin
            order := !order @ [ (s.name, palette.(!n mod Array.length palette)) ];
            incr n
          end)
        b.segs)
    bars;
  !order

let total b = List.fold_left (fun acc s -> acc +. s.value) 0.0 b.segs

let fmt_val v =
  if v >= 100.0 then Printf.sprintf "%.0f" v
  else if v >= 10.0 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.2f" v

let render_svg ?(width = 840) ?(unit = "us") bars =
  let colors = color_map bars in
  let label_w = 190 in
  let value_w = 80 in
  let bar_h = 22 in
  let gap = 8 in
  let legend_h = 28 in
  let plot_w = width - label_w - value_w in
  let scale = List.fold_left (fun acc b -> Float.max acc (total b)) 0.0 bars in
  let scale = if scale <= 0.0 then 1.0 else scale in
  let n = List.length bars in
  let height = legend_h + (n * (bar_h + gap)) + gap in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\" font-family=\"sans-serif\" font-size=\"12\">\n"
       width height width height);
  (* legend *)
  let lx = ref label_w in
  List.iter
    (fun (name, color) ->
      Buffer.add_string b
        (Printf.sprintf
           "<rect x=\"%d\" y=\"6\" width=\"12\" height=\"12\" fill=\"%s\"/>\n"
           !lx color);
      Buffer.add_string b
        (Printf.sprintf "<text x=\"%d\" y=\"16\">%s</text>\n" (!lx + 16)
           (Html.escape name));
      lx := !lx + 16 + (8 * String.length name) + 18)
    colors;
  (* bars *)
  List.iteri
    (fun i bar ->
      let y = legend_h + (i * (bar_h + gap)) in
      Buffer.add_string b
        (Printf.sprintf
           "<text x=\"%d\" y=\"%d\" text-anchor=\"end\">%s</text>\n"
           (label_w - 8)
           (y + (bar_h / 2) + 4)
           (Html.escape bar.label));
      let x = ref (float_of_int label_w) in
      List.iter
        (fun s ->
          let w = s.value /. scale *. float_of_int plot_w in
          if w > 0.0 then begin
            let color =
              match List.assoc_opt s.name colors with
              | Some c -> c
              | None -> "#888888"
            in
            Buffer.add_string b
              (Printf.sprintf
                 "<rect x=\"%.2f\" y=\"%d\" width=\"%.2f\" height=\"%d\" \
                  fill=\"%s\"><title>%s: %s%s</title></rect>\n"
                 !x y w bar_h color
                 (Html.escape s.name)
                 (fmt_val s.value) unit);
            x := !x +. w
          end)
        bar.segs;
      Buffer.add_string b
        (Printf.sprintf "<text x=\"%.2f\" y=\"%d\">%s%s</text>\n" (!x +. 6.0)
           (y + (bar_h / 2) + 4)
           (fmt_val (total bar))
           unit))
    bars;
  Buffer.add_string b "</svg>";
  Buffer.contents b

let render_ascii ?(width = 60) ?(unit = "us") bars =
  let colors = color_map bars in
  let letters = "abcdefghijklmnopqrstuvwxyz" in
  let letter_of =
    List.mapi (fun i (name, _) -> (name, letters.[i mod String.length letters]))
      colors
  in
  let scale = List.fold_left (fun acc b -> Float.max acc (total b)) 0.0 bars in
  let scale = if scale <= 0.0 then 1.0 else scale in
  let label_w =
    List.fold_left (fun acc b -> Stdlib.max acc (String.length b.label)) 0 bars
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun bar ->
      Buffer.add_string buf
        (Printf.sprintf "%-*s |" label_w bar.label);
      (* Largest-remainder apportionment of [width] cells so the drawn
         length matches the bar's share of the scale. *)
      let cells = total bar /. scale *. float_of_int width in
      let drawn = ref 0 in
      let acc = ref 0.0 in
      List.iter
        (fun s ->
          acc := !acc +. (s.value /. total bar *. cells);
          let upto = int_of_float (Float.round !acc) in
          let n = Stdlib.max 0 (upto - !drawn) in
          let c =
            match List.assoc_opt s.name letter_of with
            | Some c -> c
            | None -> '?'
          in
          Buffer.add_string buf (String.make n c);
          drawn := !drawn + n)
        (if total bar > 0.0 then bar.segs else []);
      Buffer.add_string buf
        (Printf.sprintf "  %s%s\n" (fmt_val (total bar)) unit))
    bars;
  Buffer.add_string buf "\n";
  List.iter
    (fun (name, c) ->
      Buffer.add_string buf (Printf.sprintf "  %c = %s\n" c name))
    letter_of;
  Buffer.contents buf
