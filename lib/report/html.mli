(** Self-contained HTML emission for `e2ebench report`.

    No external assets: style is inlined and charts are inline SVG, so
    the emitted file renders anywhere as-is. *)

val escape : string -> string
(** HTML-escape ampersand, angle brackets and both quote characters. *)

val section : title:string -> string -> string
(** [<section><h2>title</h2>body</section>]; [title] is escaped, the
    body is raw HTML. *)

val table : header:string list -> string list list -> string
(** All cells are escaped; first column is left-aligned. *)

val paragraph : ?cls:string -> string -> string
(** Escaped paragraph, optionally with a CSS class. *)

val figure : caption:string -> string -> string
(** Wrap raw SVG in [<figure>] with an escaped caption. *)

val page : title:string -> body:string -> string
(** Full document: doctype, inline style, [<h1>], then the raw body. *)

val well_formed : string -> bool
(** Crude tag-balance check (LIFO open/close, void elements skipped).
    Catches truncated or unbalanced output; not a full parser. *)
