(* Minimal JSON construction for the BENCH_*.json artifacts — values
   in, escaped text out.  The bench and CLI emitters previously
   hand-rolled printf JSON; anything non-trivial (nested per-tenant
   objects) goes through here instead so escaping and number formatting
   stay in one place. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let opt f = function None -> Null | Some v -> f v

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else if Float.is_finite f then Printf.sprintf "%.6g" f
  else "null" (* JSON has no nan/inf; absent is the honest encoding *)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        write buf (String k);
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

(* Two-space indentation, keys in given order — the BENCH files are
   diffed by humans, so stable pretty output matters more than size. *)
let to_string_pretty t =
  let buf = Buffer.create 256 in
  let pad n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go depth = function
    | (Null | Bool _ | Int _ | Float _ | String _) as v -> write buf v
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (depth + 1);
          go (depth + 1) item)
        items;
      Buffer.add_char buf '\n';
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (depth + 1);
          write buf (String k);
          Buffer.add_string buf ": ";
          go (depth + 1) v)
        fields;
      Buffer.add_char buf '\n';
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

let to_file path t =
  let oc = open_out path in
  output_string oc (to_string_pretty t);
  output_char oc '\n';
  close_out oc
