(* Minimal self-contained HTML emission: no external assets, no
   dependencies — everything (style included) is inlined so a report
   file can be mailed around or opened from CI artifacts as-is. *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | '\'' -> Buffer.add_string b "&#39;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let style =
  {css|
body { font-family: -apple-system, 'Segoe UI', Helvetica, Arial, sans-serif;
       margin: 2rem auto; max-width: 72rem; padding: 0 1rem; color: #1a1a2e; }
h1 { font-size: 1.5rem; border-bottom: 2px solid #1a1a2e; padding-bottom: .4rem; }
h2 { font-size: 1.15rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: 1rem 0; font-size: .85rem;
        font-variant-numeric: tabular-nums; }
th, td { border: 1px solid #c8c8d0; padding: .3rem .6rem; text-align: right; }
th:first-child, td:first-child { text-align: left; }
thead th { background: #eceff4; }
figure { margin: 1rem 0; }
figcaption { font-size: .8rem; color: #555; margin-top: .3rem; }
.note { font-size: .85rem; color: #555; }
|css}

let section ~title body =
  Printf.sprintf "<section>\n<h2>%s</h2>\n%s\n</section>" (escape title) body

let table ~header rows =
  let cells tag row =
    String.concat ""
      (List.map (fun c -> Printf.sprintf "<%s>%s</%s>" tag (escape c) tag) row)
  in
  let b = Buffer.create 512 in
  Buffer.add_string b "<table>\n<thead><tr>";
  Buffer.add_string b (cells "th" header);
  Buffer.add_string b "</tr></thead>\n<tbody>\n";
  List.iter
    (fun row ->
      Buffer.add_string b "<tr>";
      Buffer.add_string b (cells "td" row);
      Buffer.add_string b "</tr>\n")
    rows;
  Buffer.add_string b "</tbody>\n</table>";
  Buffer.contents b

let paragraph ?(cls = "") text =
  if cls = "" then Printf.sprintf "<p>%s</p>" (escape text)
  else Printf.sprintf "<p class=\"%s\">%s</p>" cls (escape text)

let figure ~caption svg =
  Printf.sprintf "<figure>\n%s\n<figcaption>%s</figcaption>\n</figure>" svg
    (escape caption)

let page ~title ~body =
  Printf.sprintf
    {|<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>%s</title>
<style>%s</style>
</head>
<body>
<h1>%s</h1>
%s
</body>
</html>
|}
    (escape title) style (escape title) body

(* Crude well-formedness check used by tests and `make report-smoke`:
   every opened tag must be closed in LIFO order (void elements and
   self-closing tags skipped).  Not a full parser — enough to catch
   truncated output and unbalanced string concatenation. *)
let void_tags = [ "meta"; "br"; "hr"; "img"; "link"; "input" ]

let well_formed html =
  let n = String.length html in
  let stack = ref [] in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < n do
    (match String.index_from_opt html !i '<' with
    | None -> i := n
    | Some lt -> (
      match String.index_from_opt html lt '>' with
      | None ->
        ok := false;
        i := n
      | Some gt ->
        let inner = String.sub html (lt + 1) (gt - lt - 1) in
        i := gt + 1;
        if inner = "" || inner.[0] = '!' || inner.[0] = '?' then ()
        else if inner.[String.length inner - 1] = '/' then ()
        else begin
          let closing = inner.[0] = '/' in
          let name_part =
            if closing then String.sub inner 1 (String.length inner - 1)
            else inner
          in
          let name =
            match String.index_opt name_part ' ' with
            | Some sp -> String.sub name_part 0 sp
            | None -> (
              match String.index_opt name_part '\n' with
              | Some nl -> String.sub name_part 0 nl
              | None -> name_part)
          in
          let name = String.lowercase_ascii name in
          if List.mem name void_tags then ()
          else if closing then
            match !stack with
            | top :: rest when String.equal top name -> stack := rest
            | _ -> ok := false
          else stack := name :: !stack
        end));
    ()
  done;
  !ok && !stack = []
