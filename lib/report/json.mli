(** Minimal JSON construction (no parsing) for BENCH_*.json artifacts
    and CLI output. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val opt : ('a -> t) -> 'a option -> t
(** [opt f None = Null]. *)

val to_string : t -> string
(** Compact, no whitespace.  Floats print as [%.6g] (integral values as
    [%.1f] so they stay floats on re-read); non-finite floats print as
    [null]. *)

val to_string_pretty : t -> string
(** Two-space indentation, field order preserved. *)

val to_file : string -> t -> unit
(** Pretty output plus a trailing newline. *)
