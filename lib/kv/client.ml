type config = {
  send_cost : Sim.Time.span;
  response_cost : Sim.Time.span;
  cpu_multiplier : float;
}

let default_config = { send_cost = Sim.Time.us 1; response_cost = Sim.Time.us 2; cpu_multiplier = 1.0 }

type pending = {
  issued_at : Sim.Time.t;
  on_complete : latency:Sim.Time.span -> Resp.value -> unit;
}

type t = {
  engine : Sim.Engine.t;
  cpu : Sim.Cpu.t;
  socket : Tcp.Socket.t;
  send_cost : Sim.Time.span;
  response_cost : Sim.Time.span;
  parser : Resp.Parser.t;
  pending : pending Queue.t;
  hints : E2e.Hints.t;
  tail : Sim.Stats.P2.t;  (* online p99 without storing samples *)
  mutable busy : bool;
  mutable issued : int;
  mutable completed : int;
  mutable next_off : int;  (* stream offset of the next command byte *)
}

(* Request-lifecycle trace events ride on the socket's trace ring under
   the socket's label, so `Sim.Span` can correlate them with segment
   events by connection.  Payload construction is guarded on
   [span_tracing] — emission is branch-only when tracing is off. *)
let span_tracing t =
  match Tcp.Socket.trace t.socket with
  | Some tr -> Sim.Trace.enabled tr
  | None -> false

let span_event t ~at ev =
  match Tcp.Socket.trace t.socket with
  | Some tr -> Sim.Trace.event tr ~at ~id:(Tcp.Socket.label t.socket) ev
  | None -> ()

let scale mult span =
  int_of_float (Float.round (float_of_int span *. mult))

let rec create engine ~cpu ~socket cfg =
  if cfg.cpu_multiplier <= 0.0 then
    invalid_arg "Client.create: cpu_multiplier must be positive";
  let t =
    {
      engine;
      cpu;
      socket;
      send_cost = scale cfg.cpu_multiplier cfg.send_cost;
      response_cost = scale cfg.cpu_multiplier cfg.response_cost;
      parser = Resp.Parser.create ();
      pending = Queue.create ();
      hints = E2e.Hints.tracker ~at:(Sim.Engine.now engine);
      tail = Sim.Stats.P2.create ~q:0.99;
      busy = false;
      issued = 0;
      completed = 0;
      next_off = 0;
    }
  in
  Tcp.Socket.set_hint_provider socket (fun ~at -> E2e.Hints.share t.hints ~at);
  Tcp.Socket.on_readable socket (fun () -> wake t);
  t

(* The application read loop: pull everything off the socket, then
   handle complete responses one at a time, charging [c] per response
   on the client CPU before looking at the next one. *)
and wake t = if not t.busy then process t

and process t =
  let avail = Tcp.Socket.recv_available t.socket in
  if avail > 0 then Resp.Parser.feed t.parser (Tcp.Socket.recv t.socket avail);
  match Resp.Parser.next t.parser with
  | Error msg -> failwith ("kv client: protocol error: " ^ msg)
  | Ok None -> ()
  | Ok (Some reply) ->
    let now = Sim.Engine.now t.engine in
    let rec_ =
      match Queue.take_opt t.pending with
      | Some r -> r
      | None -> failwith "kv client: response with no outstanding request"
    in
    let latency = Sim.Time.diff now rec_.issued_at in
    t.completed <- t.completed + 1;
    if span_tracing t then
      span_event t ~at:now (Sim.Trace.Req_complete { req = t.completed - 1 });
    Sim.Stats.P2.add t.tail (float_of_int latency);
    E2e.Hints.complete t.hints ~at:now 1;
    rec_.on_complete ~latency reply;
    t.busy <- true;
    Sim.Cpu.run t.cpu ~cost:t.response_cost (fun () ->
        t.busy <- false;
        process t)

let request t cmd ~on_complete =
  let now = Sim.Engine.now t.engine in
  let req = t.issued in
  t.issued <- t.issued + 1;
  E2e.Hints.create t.hints ~at:now 1;
  Queue.add { issued_at = now; on_complete } t.pending;
  let wire = Resp.encode (Command.to_resp cmd) in
  if span_tracing t then
    span_event t ~at:now
      (Sim.Trace.Req_issued { req; off = t.next_off; len = String.length wire });
  t.next_off <- t.next_off + String.length wire;
  Sim.Cpu.run t.cpu ~cost:t.send_cost (fun () ->
      if span_tracing t then
        span_event t ~at:(Sim.Engine.now t.engine) (Sim.Trace.Req_sent { req });
      Tcp.Socket.send t.socket wire)

let outstanding t = Queue.length t.pending
let issued t = t.issued
let completed t = t.completed
let hint_tracker t = t.hints

let p99_estimate_ns t = Sim.Stats.P2.value t.tail
