(** The simulated Redis server.

    An event-driven single-threaded request loop over a simulated
    socket, with the paper's Figure-1 cost model: a wakeup (epoll
    return, read syscall, dispatch) costs [beta] regardless of how many
    requests are pending, and each request costs [alpha] on top — so
    requests that arrive batched amortize [beta], which is precisely
    the economy dynamic Nagle toggling trades against added delay.

    Like IX's adaptive batching, the server processes whatever has
    accumulated as one batch and never waits for more input. *)

type config = {
  alpha : Sim.Time.span;  (** per-request processing cost *)
  beta : Sim.Time.span;  (** per-wakeup (amortizable) cost *)
  wake_delay : Sim.Time.span;
      (** scheduling delay between the socket becoming readable and the
          application actually reading — a slow consumer.  With a small
          receive buffer this keeps the advertised window closed for
          real intervals, making the peer's persist machinery
          load-bearing.  Zero (the default) reads synchronously on
          delivery, exactly the pre-knob behaviour. *)
}

val default_config : config
(** alpha = 6 µs, beta = 4 µs, wake_delay = 0 — calibrated so a single pinned core
    serving 16 KiB SETs (RESP parse, 16 KiB copy, hashtable insert per
    request; epoll_wait + read dispatch per wakeup) saturates in the
    regime where the receive path, not raw compute, decides capacity —
    reproducing the Figure-4 economics. *)

type t

val create :
  Sim.Engine.t -> cpu:Sim.Cpu.t -> socket:Tcp.Socket.t -> ?store:Store.t -> config -> t
(** Attaches to the socket's readable callback.  [cpu] is the
    application core (distinct from the IRQ core, as in the paper's
    pinned setup). *)

val store : t -> Store.t

val requests_served : t -> int
val wakeups : t -> int
val empty_wakeups : t -> int
(** Wakeups that found no complete request (partial data). *)

val batch_sizes : t -> Sim.Stats.Summary.t
(** Distribution of requests processed per (non-empty) wakeup — how
    much amortization actually happened. *)
