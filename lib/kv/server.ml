type config = {
  alpha : Sim.Time.span;
  beta : Sim.Time.span;
  wake_delay : Sim.Time.span;
}

let default_config =
  { alpha = Sim.Time.us 6; beta = Sim.Time.us 4; wake_delay = Sim.Time.zero }

type t = {
  engine : Sim.Engine.t;
  cpu : Sim.Cpu.t;
  socket : Tcp.Socket.t;
  store : Store.t;
  cfg : config;
  parser : Resp.Parser.t;
  mutable busy : bool;
  mutable wake_pending : bool;  (* a delayed wake is already scheduled *)
  mutable served : int;
  mutable wakeups : int;
  mutable empty_wakeups : int;
  mutable req_seq : int;  (* next request index to dequeue (FIFO) *)
  mutable reply_off : int;  (* stream offset of the next reply byte *)
  batch_sizes : Sim.Stats.Summary.t;
}

(* Request-lifecycle trace events, labelled with the server socket's
   label so `Sim.Span` can pair them with the client side (c<i> ↔ s<i>).
   Payload construction is guarded on [span_tracing]. *)
let span_tracing t =
  match Tcp.Socket.trace t.socket with
  | Some tr -> Sim.Trace.enabled tr
  | None -> false

let span_event t ~at ev =
  match Tcp.Socket.trace t.socket with
  | Some tr -> Sim.Trace.event tr ~at ~id:(Tcp.Socket.label t.socket) ev
  | None -> ()

let drain_requests t =
  let rec go acc =
    match Resp.Parser.next t.parser with
    | Ok (Some value) -> (
      match Command.of_resp value with
      | Ok cmd -> go (cmd :: acc)
      | Error msg -> failwith ("kv server: unparsable command: " ^ msg))
    | Ok None -> List.rev acc
    | Error msg -> failwith ("kv server: protocol error: " ^ msg)
  in
  go []

(* A slow consumer: [wake_delay > 0] models an application that takes a
   scheduling delay to get around to reading, so received data sits in
   the socket buffer and the advertised window stays closed for real
   intervals — the regime where the peer's zero-window persist timer is
   load-bearing.  The default (zero) calls [process] synchronously, not
   via a zero-delay engine event, so event ordering — and therefore
   every existing run — is bit-identical. *)
let rec wake t =
  if t.cfg.wake_delay > Sim.Time.zero then begin
    if not t.wake_pending then begin
      t.wake_pending <- true;
      ignore
        (Sim.Engine.schedule t.engine ~after:t.cfg.wake_delay (fun () ->
             t.wake_pending <- false;
             if not t.busy then process t))
    end
  end
  else if not t.busy then process t

and process t =
  t.busy <- true;
  t.wakeups <- t.wakeups + 1;
  let avail = Tcp.Socket.recv_available t.socket in
  if avail > 0 then Resp.Parser.feed t.parser (Tcp.Socket.recv t.socket avail);
  let requests = drain_requests t in
  let k = List.length requests in
  if k = 0 then t.empty_wakeups <- t.empty_wakeups + 1
  else Sim.Stats.Summary.add t.batch_sizes (float_of_int k);
  let first_req = t.req_seq in
  t.req_seq <- t.req_seq + k;
  if k > 0 && span_tracing t then begin
    let at = Sim.Engine.now t.engine in
    for j = 0 to k - 1 do
      span_event t ~at (Sim.Trace.Srv_start { req = first_req + j })
    done
  end;
  let cost = t.cfg.beta + (k * t.cfg.alpha) in
  Sim.Cpu.run t.cpu ~cost (fun () ->
      let now = Sim.Engine.now t.engine in
      List.iteri
        (fun j cmd ->
          let reply = Command.execute t.store ~now cmd in
          t.served <- t.served + 1;
          let wire = Resp.encode reply in
          if span_tracing t then
            span_event t ~at:now
              (Sim.Trace.Srv_reply
                 { req = first_req + j; off = t.reply_off; len = String.length wire });
          t.reply_off <- t.reply_off + String.length wire;
          Tcp.Socket.send t.socket wire)
        requests;
      t.busy <- false;
      (* Data may have accumulated while we were processing. *)
      if Tcp.Socket.recv_available t.socket > 0 then process t)

let create engine ~cpu ~socket ?(store = Store.create ()) cfg =
  if cfg.alpha < 0 || cfg.beta < 0 then invalid_arg "Server.create: negative costs";
  let t =
    {
      engine;
      cpu;
      socket;
      store;
      cfg;
      parser = Resp.Parser.create ();
      busy = false;
      wake_pending = false;
      served = 0;
      wakeups = 0;
      empty_wakeups = 0;
      req_seq = 0;
      reply_off = 0;
      batch_sizes = Sim.Stats.Summary.create ();
    }
  in
  Tcp.Socket.on_readable socket (fun () -> wake t);
  t

let store t = t.store
let requests_served t = t.served
let wakeups t = t.wakeups
let empty_wakeups t = t.empty_wakeups
let batch_sizes t = t.batch_sizes
