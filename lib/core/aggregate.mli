(** Cross-connection aggregation (§3.2).

    "The above provides per-connection estimates, which can be averaged
    if a batching policy simultaneously affects multiple connections."
    Latencies are combined as a throughput-weighted mean (a message
    picked at random across connections experiences the average);
    throughputs add. *)

type input = { latency_ns : float option; throughput : float }

type t = {
  latency_ns : float option;  (** weighted mean over contributing flows *)
  throughput : float;  (** sum *)
  flows : int;  (** inputs that contributed a latency estimate *)
}

val combine : input list -> t

(** {1 Fairness across flows/tenants}

    Multi-tenant fleets report how evenly the shared server treats
    tenants; both helpers take a list of non-negative per-tenant
    figures (e.g. goodput fractions, achieved/offered). *)

val max_min_ratio : float list -> float option
(** [max/min] of the inputs; 1.0 is perfectly fair.  [None] on an empty
    list or when the minimum is not positive (a starved tenant makes
    the ratio meaningless — report the starvation itself instead). *)

val jain : float list -> float option
(** Jain's fairness index [(Σx)² / (n·Σx²)], in [(0, 1]]; 1.0 is
    perfectly fair, [1/n] is maximally unfair.  [None] on an empty
    list or when every input is zero. *)

val of_estimates : Estimator.estimate list -> t
(** Convenience over {!Estimator.estimate} results. *)
