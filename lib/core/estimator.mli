(** Per-connection end-to-end performance estimator.

    Owns the three local queue states of §3.2 (the network stack calls
    {!track_unacked} & co. on every queue change, as the prototype's
    kernel hooks do), ingests the peer's shared snapshots, and produces
    windowed latency/throughput estimates.

    Because both parties share all three queue states, either side can
    compute the end-to-end latency from {e both} vantage points;
    {!estimate} returns the maximum of the two (§3.2). *)

type t

val create : at:Sim.Time.t -> t

(** {1 Lifecycle}

    Estimators created with their run start [Warm]: the warmup-boundary
    [estimate] call already discards the ramp-up window.  A connection
    spawned {e mid-run} (fleet churn) has no such boundary — its first
    window spans TCP slow start with a handful of samples — so callers
    mark it [Cold_start].  While cold, {!peek_estimate} reports nothing
    and the first {!estimate} advances past the untrustworthy window
    (returning [None]) instead of publishing it; the estimator is
    [Warm] from then on.  Under [Per_tenant]/[Global] control scope the
    group's other estimators keep the aggregate alive meanwhile — the
    cold connection inherits the group prior instead of re-exploring. *)

type lifecycle = Cold_start | Warm

val set_cold_start : t -> unit
val lifecycle : t -> lifecycle
val is_cold : t -> bool

(** {1 Local queue instrumentation} *)

val track_unacked : t -> at:Sim.Time.t -> int -> unit
(** Items entered (positive) or left via acknowledgment (negative) the
    sent-unacknowledged queue. *)

val track_unread : t -> at:Sim.Time.t -> int -> unit
(** Items delivered to (positive) or read by the application from
    (negative) the receive queue. *)

val track_ackdelay : t -> at:Sim.Time.t -> int -> unit
(** Items received but not yet acknowledged to the peer. *)

val unacked_size : t -> int
val unread_size : t -> int
val ackdelay_size : t -> int

(** {1 Sharing} *)

val local_snapshot : t -> at:Sim.Time.t -> Exchange.triple
(** The three 3-tuples to put on the wire. *)

val ingest_remote : t -> at:Sim.Time.t -> Exchange.triple -> unit
(** Record a snapshot received from the peer at local time [at].  The
    remote measurement window runs from the snapshot that was current
    at the last window advance (see {!estimate}) to the latest one,
    mirroring the local window.

    The triple first passes {!Exchange.check_plausible} against the
    last accepted share: implausible ones (corruption that survived
    decode, counters running backwards, future timestamps) are
    dropped without touching any window, counted in
    {!rejected_shares}, and traced as [Share_rejected].

    Before the first {!estimate} the baseline stays pinned to the
    first-ever share — intentional: [local_prev] likewise anchors at
    creation, so both windows span creation-to-first-estimate.  Sliding
    the baseline with every pre-estimate ingest would shrink the remote
    window to one share interval while the local window kept growing. *)

val rejected_shares : t -> int
(** Shares {!ingest_remote} refused since creation. *)

(** {1 Staleness}

    Under adverse networks the peer's shares can stop arriving (loss
    bursts, blackouts); estimates computed from an old remote window
    silently decay.  With a staleness timeout configured, estimates are
    flagged [stale] once no share has been {e accepted} within the
    timeout — controllers should widen their confidence and fall back
    to a static policy ({!Degrade} supplies the hysteresis). *)

val set_staleness : t -> timeout:Sim.Time.span option -> unit
(** Configure (or clear, with [None] — the default) the staleness
    timeout.  Callers typically derive it from k·RTT, refreshed as the
    RTT estimate moves. *)

val staleness : t -> Sim.Time.span option

val is_stale : t -> at:Sim.Time.t -> bool
(** No accepted share within the timeout (anchored at creation until
    the first share)?  Always [false] with no timeout configured. *)

val last_share_at : t -> Sim.Time.t option
(** Arrival time of the last accepted remote share. *)

val remote_window : t -> (Exchange.triple * Exchange.triple) option
(** The remote window bounds, oldest first. *)

(** {1 Estimation} *)

type estimate = {
  latency_ns : float option;
      (** max of the two vantage points, per §3.2 *)
  latency_local_ns : float option;  (** as seen from this side *)
  latency_remote_ns : float option;  (** as seen from the peer *)
  throughput : float;
      (** departures/s from the local unacked queue — messages this
          side successfully pushed through in the window *)
  window : Sim.Time.span;  (** local window length *)
  stale : bool;
      (** no fresh remote share within the staleness timeout — treat
          the estimate as low-confidence (see {!set_staleness}) *)
}

val estimate : t -> at:Sim.Time.t -> estimate option
(** Estimate over the window since the previous [estimate] call (or
    creation).  The remote window is the span of shares ingested during
    the same period; the paper accepts the slight skew between the two
    ("Little's law estimates remain accurate regardless", §5).  Returns
    [None] when the local window is empty.  Advances both windows: the
    current local snapshot and the latest remote share become the new
    baselines. *)

val peek_estimate : t -> at:Sim.Time.t -> estimate option
(** Same computation without advancing the window.  Read-only: safe to
    call from observability sampling without perturbing the run. *)

(** {1 Observability} *)

val set_trace : t -> Sim.Trace.t -> id:string -> unit
(** Emit [Share_ingested] on {!ingest_remote} (timestamped with the
    peer's snapshot time) and [Estimate_computed] on every successful
    {!estimate} into [trace], labelled [id]. *)

val set_audit : t -> Sim.Audit.t -> prefix:string -> unit
(** Mirror every {!track_unacked}/{!track_unread}/{!track_ackdelay}
    delta into Little's-law audit queues named [prefix ^ ".unacked"],
    [".unread"], [".ackdelay"].  Pure bookkeeping: auditing a run
    cannot change its results. *)
