(** Decision ledger: explainable control.

    One ledger per control group (the fleet, a tenant, or a single
    connection) records every toggler/AIMD decision as a typed
    {!Sim.Trace.Decision_made} event — the per-arm estimates, the
    ε-draw branch, freeze state and staleness clock behind it — and,
    once the {e next} decision lands, closes the previous decision's
    tenure with a {!Sim.Trace.Decision_outcome} carrying the realized
    mean/p99 request latency over that tenure.  The final decision of
    a run stays open (no outcome event).

    The ledger only writes trace events; it never touches the
    simulation, so ledgered runs stay bit-identical to unledgered
    ones. *)

type t

val create : trace:Sim.Trace.t -> group:string -> t
(** Events are emitted into [trace] under id [group] (e.g. ["fleet"],
    ["bare"], ["bare/c0"]). *)

val group : t -> string

val decisions : t -> int
(** Decisions recorded so far. *)

val completion : t -> latency:Sim.Time.span -> unit
(** Attribute one completed request to the open decision's tenure.
    Allocation-free when the trace is disabled or no decision is open
    (the enabled check precedes any conversion); enforced by
    [make alloc-gate]. *)

val decision :
  t ->
  at:Sim.Time.t ->
  ?on_us:float ->
  ?off_us:float ->
  mode:string ->
  action:string ->
  reason:string ->
  frozen:bool ->
  stale_us:float ->
  unit ->
  unit
(** Record one decision: emits the previous decision's
    [Decision_outcome] (if any) followed by this decision's
    [Decision_made], and starts a fresh tenure.  No-op while the trace
    is disabled.  See {!Sim.Trace.event} for field meanings. *)
