type mode = Batch_on | Batch_off

let mode_to_string = function Batch_on -> "on" | Batch_off -> "off"
let pp_mode ppf m = Format.pp_print_string ppf (mode_to_string m)
let flip = function Batch_on -> Batch_off | Batch_off -> Batch_on

type arm = { latency : Ewma.t; throughput : Ewma.t; mutable samples : int }

type t = {
  epsilon : float;
  min_observations : int;
  policy : Policy.t;
  rng : Sim.Rng.t;
  on_arm : arm;
  off_arm : arm;
  mutable current : mode;
  mutable forced : mode option;
}

let make_arm alpha = { latency = Ewma.create ~alpha; throughput = Ewma.create ~alpha; samples = 0 }

let create ?(epsilon = 0.05) ?(ewma_alpha = 0.3) ?(min_observations = 3) ~policy ~rng
    ~initial () =
  if epsilon < 0.0 || epsilon > 1.0 then
    invalid_arg "Toggler.create: epsilon must be in [0,1]";
  if min_observations <= 0 then
    invalid_arg "Toggler.create: min_observations must be positive";
  {
    epsilon;
    min_observations;
    policy;
    rng;
    on_arm = make_arm ewma_alpha;
    off_arm = make_arm ewma_alpha;
    current = initial;
    forced = None;
  }

let arm t = function Batch_on -> t.on_arm | Batch_off -> t.off_arm

let mode t = t.current

let observe t ~mode (outcome : Policy.outcome) =
  let a = arm t mode in
  ignore (Ewma.update a.latency outcome.latency_ns);
  ignore (Ewma.update a.throughput outcome.throughput);
  a.samples <- a.samples + 1

let observations t m = (arm t m).samples

let smoothed t m : Policy.outcome option =
  let a = arm t m in
  match (Ewma.value a.latency, Ewma.value a.throughput) with
  | Some latency_ns, Some throughput -> Some { latency_ns; throughput }
  | _ -> None

let force t m = t.forced <- m
let forced t = t.forced

let decide_free t =
  let other = flip t.current in
  let next =
    if (arm t other).samples < t.min_observations then
      (* The other arm is under-sampled: explore it so exploitation has
         something to compare against. *)
      other
    else if Sim.Rng.float t.rng < t.epsilon then other
    else begin
      match (smoothed t t.current, smoothed t other) with
      | Some cur, Some oth -> if Policy.better t.policy oth cur then other else t.current
      | Some _, None -> t.current
      | None, Some _ -> other
      | None, None -> t.current
    end
  in
  t.current <- next;
  next

let decide t =
  match t.forced with
  | Some m ->
    (* Degraded mode: pin the forced mode without consuming the rng, so
       exploration resumes exactly where it left off once released. *)
    t.current <- m;
    m
  | None -> decide_free t
