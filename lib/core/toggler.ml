type mode = Batch_on | Batch_off

let mode_to_string = function Batch_on -> "on" | Batch_off -> "off"
let pp_mode ppf m = Format.pp_print_string ppf (mode_to_string m)
let flip = function Batch_on -> Batch_off | Batch_off -> Batch_on

type arm = { latency : Ewma.t; throughput : Ewma.t; mutable samples : int }

type t = {
  epsilon : float;
  min_observations : int;
  policy : Policy.t;
  rng : Sim.Rng.t;
  on_arm : arm;
  off_arm : arm;
  mutable current : mode;
  mutable forced : mode option;
}

let make_arm alpha = { latency = Ewma.create ~alpha; throughput = Ewma.create ~alpha; samples = 0 }

let create ?(epsilon = 0.05) ?(ewma_alpha = 0.3) ?(min_observations = 3) ~policy ~rng
    ~initial () =
  if epsilon < 0.0 || epsilon > 1.0 then
    invalid_arg "Toggler.create: epsilon must be in [0,1]";
  if min_observations <= 0 then
    invalid_arg "Toggler.create: min_observations must be positive";
  {
    epsilon;
    min_observations;
    policy;
    rng;
    on_arm = make_arm ewma_alpha;
    off_arm = make_arm ewma_alpha;
    current = initial;
    forced = None;
  }

let arm t = function Batch_on -> t.on_arm | Batch_off -> t.off_arm

let mode t = t.current

let observe t ~mode (outcome : Policy.outcome) =
  let a = arm t mode in
  ignore (Ewma.update a.latency outcome.latency_ns);
  ignore (Ewma.update a.throughput outcome.throughput);
  a.samples <- a.samples + 1

let observations t m = (arm t m).samples

(* Cold-start inheritance: pre-load an arm with a sibling group's
   smoothed outcome so a freshly spawned per-conn group exploits the
   fleet's experience instead of re-exploring from nothing.  Counts as
   enough observations to skip the undersampled-forcing phase, but the
   EWMA still adapts as real samples arrive. *)
let seed_arm t ~mode (outcome : Policy.outcome) =
  let a = arm t mode in
  ignore (Ewma.update a.latency outcome.latency_ns);
  ignore (Ewma.update a.throughput outcome.throughput);
  if a.samples < t.min_observations then a.samples <- t.min_observations

let smoothed t m : Policy.outcome option =
  let a = arm t m in
  match (Ewma.value a.latency, Ewma.value a.throughput) with
  | Some latency_ns, Some throughput -> Some { latency_ns; throughput }
  | _ -> None

let force t m = t.forced <- m
let forced t = t.forced

type reason = Explore | Exploit | Undersampled | Forced

let reason_to_string = function
  | Explore -> "explore"
  | Exploit -> "exploit"
  | Undersampled -> "undersampled"
  | Forced -> "forced"

type explanation = {
  before : mode;
  chosen : mode;
  on_us : float option;
  off_us : float option;
  why : reason;
}

(* Must consume the rng byte-identically to the pre-explanation
   [decide_free]: one [Rng.float] draw iff the other arm has enough
   samples, and none at all on the forced path. *)
let decide_explained t =
  let before = t.current in
  let smoothed_us m =
    match smoothed t m with
    | Some (o : Policy.outcome) -> Some (o.latency_ns /. 1e3)
    | None -> None
  in
  let explain chosen why =
    {
      before;
      chosen;
      on_us = smoothed_us Batch_on;
      off_us = smoothed_us Batch_off;
      why;
    }
  in
  match t.forced with
  | Some m ->
      (* Degraded mode: pin the forced mode without consuming the rng,
         so exploration resumes exactly where it left off once
         released. *)
      t.current <- m;
      explain m Forced
  | None ->
      let other = flip t.current in
      let next, why =
        if (arm t other).samples < t.min_observations then
          (* The other arm is under-sampled: explore it so exploitation
             has something to compare against. *)
          (other, Undersampled)
        else if Sim.Rng.float t.rng < t.epsilon then (other, Explore)
        else begin
          match (smoothed t t.current, smoothed t other) with
          | Some cur, Some oth ->
              if Policy.better t.policy oth cur then (other, Exploit)
              else (t.current, Exploit)
          | Some _, None -> (t.current, Exploit)
          | None, Some _ -> (other, Exploit)
          | None, None -> (t.current, Exploit)
        end
      in
      t.current <- next;
      explain next why

let decide t = (decide_explained t).chosen
