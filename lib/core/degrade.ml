type config = { freeze_after : int; thaw_after : int }

let default_config = { freeze_after = 2; thaw_after = 2 }

type state = Active | Frozen

let state_to_string = function Active -> "active" | Frozen -> "frozen"
let pp_state ppf s = Format.pp_print_string ppf (state_to_string s)

type t = {
  cfg : config;
  mutable state : state;
  mutable stale_run : int;
  mutable fresh_run : int;
  mutable freezes : int;
  mutable thaws : int;
}

let create ?(config = default_config) () =
  if config.freeze_after <= 0 || config.thaw_after <= 0 then
    invalid_arg "Degrade.create: hysteresis counts must be positive";
  { cfg = config; state = Active; stale_run = 0; fresh_run = 0; freezes = 0; thaws = 0 }

let step t ~stale =
  if stale then begin
    t.fresh_run <- 0;
    t.stale_run <- t.stale_run + 1;
    if t.state = Active && t.stale_run >= t.cfg.freeze_after then begin
      t.state <- Frozen;
      t.freezes <- t.freezes + 1
    end
  end
  else begin
    t.stale_run <- 0;
    t.fresh_run <- t.fresh_run + 1;
    if t.state = Frozen && t.fresh_run >= t.cfg.thaw_after then begin
      t.state <- Active;
      t.thaws <- t.thaws + 1
    end
  end;
  t.state

let state t = t.state
let freezes t = t.freezes
let thaws t = t.thaws
