(** ε-greedy dynamic batching toggle (paper §5 "Dynamic Toggling").

    The effect of flipping batching is unknown until tried — a classic
    exploration/exploitation tradeoff — so the controller occasionally
    runs the other mode ("a light method like ε-greedy will suffice").
    Per-mode latency and throughput observations are EWMA-smoothed
    (§5 "Toggling Granularity") and compared under a {!Policy.t}. *)

type mode = Batch_on | Batch_off

val mode_to_string : mode -> string
val pp_mode : Format.formatter -> mode -> unit
val flip : mode -> mode

type t

val create :
  ?epsilon:float ->
  ?ewma_alpha:float ->
  ?min_observations:int ->
  policy:Policy.t ->
  rng:Sim.Rng.t ->
  initial:mode ->
  unit ->
  t
(** [epsilon] (default 0.05) is the exploration probability per
    decision; [ewma_alpha] (default 0.3) smooths per-mode scores;
    [min_observations] (default 3) is how many samples a mode needs
    before its smoothed outcome is trusted (unexplored or stale modes
    are explored first).
    @raise Invalid_argument for [epsilon] outside [0, 1] or a
    non-positive [min_observations]. *)

val mode : t -> mode
(** The mode currently in force. *)

val observe : t -> mode:mode -> Policy.outcome -> unit
(** Feed one measurement window's outcome for the mode that was active
    during it. *)

val observations : t -> mode -> int
val smoothed : t -> mode -> Policy.outcome option

val seed_arm : t -> mode:mode -> Policy.outcome -> unit
(** Cold-start inheritance: pre-load an arm with a sibling group's
    smoothed outcome and mark it as sufficiently observed, so a group
    spawned mid-run (connection churn) exploits the fleet's experience
    instead of re-exploring both arms from scratch.  The EWMA still
    adapts as the group's own samples arrive. *)

val decide : t -> mode
(** Pick the mode for the next window: explore with probability ε (or
    when the other arm is unexplored), otherwise exploit the better
    smoothed outcome.  Updates {!mode}.  While a mode is {!force}d,
    returns it unconditionally without consuming the rng. *)

type reason = Explore | Exploit | Undersampled | Forced

val reason_to_string : reason -> string

type explanation = {
  before : mode;  (** mode in force when the decision was taken *)
  chosen : mode;
  on_us : float option;
      (** smoothed Batch_on latency (µs) at decision time *)
  off_us : float option;
  why : reason;
}

val decide_explained : t -> explanation
(** Exactly {!decide}, additionally reporting the decision's inputs
    and which branch chose the mode.  Consumes the rng identically to
    [decide] (which is implemented on top of it), so swapping one for
    the other cannot perturb a seeded run. *)

val force : t -> mode option -> unit
(** Pin {!decide} to a fixed mode ([Some m]) or release it ([None]).
    Used for graceful degradation: when estimates go stale the
    controller falls back to the static default instead of exploring
    on garbage input.  Forcing consumes no randomness and leaves both
    arms untouched, so a released toggler resumes exactly where it
    stopped. *)

val forced : t -> mode option
