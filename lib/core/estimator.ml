type lifecycle = Cold_start | Warm

type t = {
  unacked : Queue_state.t;
  unread : Queue_state.t;
  ackdelay : Queue_state.t;
  created_at : Sim.Time.t;
  mutable lifecycle : lifecycle;
  mutable local_prev : Exchange.triple;
  mutable remote_baseline : Exchange.triple option;
  mutable remote_latest : Exchange.triple option;
  mutable last_share_at : Sim.Time.t option;
      (* arrival time of the last *accepted* remote share *)
  mutable staleness : Sim.Time.span option;
      (* no accepted share within this span -> estimates are stale *)
  mutable rejected : int;
  mutable trace : Sim.Trace.t option;
  mutable trace_id : string;
  mutable audit : (Sim.Audit.queue * Sim.Audit.queue * Sim.Audit.queue) option;
      (* (unacked, unread, ackdelay) Little's-law audit mirrors *)
}

let triple_at estim ~at : Exchange.triple =
  {
    unacked = Queue_state.snapshot estim.unacked ~at;
    unread = Queue_state.snapshot estim.unread ~at;
    ackdelay = Queue_state.snapshot estim.ackdelay ~at;
  }

let create ~at =
  let unacked = Queue_state.create ~at in
  let unread = Queue_state.create ~at in
  let ackdelay = Queue_state.create ~at in
  let zero : Queue_state.share = { time = at; total = 0; integral = 0.0 } in
  let local_prev : Exchange.triple =
    { unacked = zero; unread = zero; ackdelay = zero }
  in
  {
    unacked;
    unread;
    ackdelay;
    created_at = at;
    (* Estimators created with their run start Warm: their first window
       spans warmup, which the warmup-boundary [estimate] call already
       discards.  Only connections spawned mid-run (fleet churn) are
       marked [Cold_start] explicitly. *)
    lifecycle = Warm;
    local_prev;
    remote_baseline = None;
    remote_latest = None;
    last_share_at = None;
    staleness = None;
    rejected = 0;
    trace = None;
    trace_id = "";
    audit = None;
  }

let set_trace t tr ~id =
  t.trace <- Some tr;
  t.trace_id <- id

let set_cold_start t = t.lifecycle <- Cold_start
let lifecycle t = t.lifecycle
let is_cold t = t.lifecycle = Cold_start

let set_audit t au ~prefix =
  t.audit <-
    Some
      ( Sim.Audit.queue au (prefix ^ ".unacked"),
        Sim.Audit.queue au (prefix ^ ".unread"),
        Sim.Audit.queue au (prefix ^ ".ackdelay") )

(* The audit mirrors are passive bookkeeping (no engine interaction),
   so attaching them cannot perturb the run. *)
let track_unacked t ~at n =
  Queue_state.track t.unacked ~at n;
  match t.audit with
  | Some (q, _, _) -> Sim.Audit.track q ~at n
  | None -> ()

let track_unread t ~at n =
  Queue_state.track t.unread ~at n;
  match t.audit with
  | Some (_, q, _) -> Sim.Audit.track q ~at n
  | None -> ()

let track_ackdelay t ~at n =
  Queue_state.track t.ackdelay ~at n;
  match t.audit with
  | Some (_, _, q) -> Sim.Audit.track q ~at n
  | None -> ()

let unacked_size t = Queue_state.size t.unacked
let unread_size t = Queue_state.size t.unread
let ackdelay_size t = Queue_state.size t.ackdelay

let local_snapshot t ~at = triple_at t ~at

let ingest_remote t ~at (triple : Exchange.triple) =
  match Exchange.check_plausible ?prev:t.remote_latest ~now:at triple with
  | Error reason ->
    (* Corrupted or implausible shares must never poison the monotone
       counters: count, trace, and leave every window untouched. *)
    t.rejected <- t.rejected + 1;
    (match t.trace with
    | Some tr when Sim.Trace.enabled tr ->
      Sim.Trace.event tr ~at ~id:t.trace_id (Share_rejected { reason })
    | _ -> ())
  | Ok () -> (
    (* The first-ever share anchors the remote window, exactly as
       [local_prev] anchors the local window at creation: until the first
       [estimate] both windows span creation-to-now, so pinning the
       baseline to the first share (rather than sliding it with every
       pre-estimate ingest) is what keeps the two vantage points' windows
       aligned.  Pinned by a regression test in test_exchange.ml. *)
    if t.remote_baseline = None then t.remote_baseline <- Some triple;
    t.remote_latest <- Some triple;
    t.last_share_at <- Some at;
    match t.trace with
    | Some tr when Sim.Trace.enabled tr ->
        Sim.Trace.event tr ~at:triple.unacked.time ~id:t.trace_id
          (Share_ingested
             {
               unacked_total = triple.unacked.total;
               unread_total = triple.unread.total;
               ackdelay_total = triple.ackdelay.total;
             })
    | _ -> ())

let rejected_shares t = t.rejected
let last_share_at t = t.last_share_at

let set_staleness t ~timeout = t.staleness <- timeout
let staleness t = t.staleness

let is_stale t ~at =
  match t.staleness with
  | None -> false
  | Some timeout ->
    let anchor = Option.value t.last_share_at ~default:t.created_at in
    Sim.Time.diff at anchor > timeout

let remote_window t =
  match (t.remote_baseline, t.remote_latest) with
  | Some prev, Some cur -> Some (prev, cur)
  | _ -> None

type estimate = {
  latency_ns : float option;
  latency_local_ns : float option;
  latency_remote_ns : float option;
  throughput : float;
  window : Sim.Time.span;
  stale : bool;
}

let compute t ~at =
  let local_cur = triple_at t ~at in
  let local_prev = t.local_prev in
  let window = Sim.Time.diff local_cur.unacked.time local_prev.unacked.time in
  if window <= 0 then None
  else begin
    let local_comp = Latency.components_of_triples ~prev:local_prev ~cur:local_cur in
    let remote_comp =
      match remote_window t with
      | None -> None
      | Some (prev, cur) -> Latency.components_of_triples ~prev ~cur
    in
    let none_comp : Latency.components =
      { unacked = None; unread = None; ackdelay = None }
    in
    let latency_local_ns =
      match local_comp with
      | None -> None
      | Some local ->
        Latency.combine ~local ~remote:(Option.value remote_comp ~default:none_comp)
    in
    let latency_remote_ns =
      (* The peer's vantage point: its unacked/unread with our
         ackdelay/unread subtracted or added symmetrically. *)
      match remote_comp with
      | None -> None
      | Some remote ->
        let local = Option.value local_comp ~default:none_comp in
        Latency.combine ~local:remote ~remote:local
    in
    let throughput =
      match Queue_state.get_avgs ~prev:local_prev.unacked ~cur:local_cur.unacked with
      | Some avgs -> avgs.throughput
      | None -> 0.0
    in
    let latency_ns = Latency.reconcile latency_local_ns latency_remote_ns in
    let stale = is_stale t ~at in
    Some
      ( { latency_ns; latency_local_ns; latency_remote_ns; throughput; window; stale },
        local_cur )
  end

let estimate t ~at =
  match compute t ~at with
  | None -> None
  | Some (est, local_cur) ->
    t.local_prev <- local_cur;
    (* The remote window advances too: the latest ingested share becomes
       the next window's baseline, keeping the two vantage points'
       windows aligned (modulo one network delay). *)
    (match t.remote_latest with
    | Some latest -> t.remote_baseline <- Some latest
    | None -> ());
    if t.lifecycle = Cold_start then begin
      (* The first window of a mid-run connection spans its slow-start
         ramp: a handful of samples over a tiny span.  Discard it —
         windows re-anchor at [at] — and report nothing, so a fresh
         connection cannot poison its group's aggregate. *)
      t.lifecycle <- Warm;
      None
    end
    else begin
      (match t.trace with
      | Some tr when Sim.Trace.enabled tr ->
          Sim.Trace.event tr ~at ~id:t.trace_id
            (Estimate_computed
               {
                 latency_us = Option.map (fun l -> l /. 1e3) est.latency_ns;
                 throughput = est.throughput;
                 window_us = float_of_int est.window /. 1e3;
               })
      | _ -> ());
      Some est
    end

let peek_estimate t ~at =
  if t.lifecycle = Cold_start then None
  else match compute t ~at with None -> None | Some (est, _) -> Some est
