(* Decision ledger: every toggler/AIMD decision of one control group
   becomes a typed [Decision_made] trace event, and the realized
   latency over its tenure (fed by [completion]) closes it as a
   [Decision_outcome] when the next decision lands.  The last decision
   of a run stays open — explain tooling treats it as "tenure still
   running at exit".

   [completion] is on the request hot path: the [Trace.enabled] check
   comes before any float conversion, so with tracing off the call is
   branch-only (enforced by [make alloc-gate]).  The latency arrives
   as an integer [Sim.Time.span] for the same reason — a float
   argument would box even on the disabled path. *)

type t = {
  trace : Sim.Trace.t;
  group : string;
  mutable next : int; (* sequence number of the next decision *)
  mutable open_ : bool; (* a decision's tenure is accumulating *)
  histo : Sim.Histo.t; (* tenure latencies, microseconds *)
}

let create ~trace ~group = { trace; group; next = 0; open_ = false; histo = Sim.Histo.create () }

let group t = t.group
let decisions t = t.next

let completion t ~latency =
  if Sim.Trace.enabled t.trace && t.open_ then
    Sim.Histo.add t.histo (Sim.Time.to_us latency)

let close_tenure t ~at =
  if t.open_ then begin
    let n = Sim.Histo.count t.histo in
    let mean_us = match Sim.Histo.mean t.histo with Some m -> m | None -> 0.0 in
    let p99_us =
      match Sim.Histo.quantile t.histo 99.0 with Some p -> p | None -> 0.0
    in
    Sim.Trace.event t.trace ~at ~id:t.group
      (Sim.Trace.Decision_outcome { decision = t.next - 1; mean_us; p99_us; n });
    Sim.Histo.reset t.histo;
    t.open_ <- false
  end

let decision t ~at ?on_us ?off_us ~mode ~action ~reason ~frozen ~stale_us () =
  if Sim.Trace.enabled t.trace then begin
    close_tenure t ~at;
    Sim.Trace.event t.trace ~at ~id:t.group
      (Sim.Trace.Decision_made
         { decision = t.next; on_us; off_us; mode; action; reason; frozen; stale_us });
    t.next <- t.next + 1;
    t.open_ <- true
  end
