(** Estimator-residual tracking.

    In simulation we know the ground truth the paper's kernel cannot
    see: the recorder's measured per-request latencies.  A residual
    pairs one estimator output with the mean measured latency of the
    requests that completed inside the same window; the summary reports
    absolute-error percentiles of estimate vs. truth.

    Definition: for an estimate produced at time [t] over window [w],
    [truth_us] is the mean latency of requests completing in
    [(t - w, t]], and the residual is [est_us - truth_us]. *)

type pair = {
  at_us : float;  (** when the estimate was produced *)
  window_us : float;  (** the estimate's window length *)
  est_us : float;
  truth_us : float;
}

type t

val create : unit -> t
val observe : t -> at_us:float -> window_us:float -> est_us:float -> truth_us:float -> unit
val count : t -> int

val pairs : t -> pair list
(** Observation order. *)

type summary = {
  n : int;
  mean_abs_us : float;
  bias_us : float;  (** mean signed error; positive = over-estimate *)
  p50_abs_us : float;
  p95_abs_us : float;
  p99_abs_us : float;
  max_abs_us : float;
}

val summary_of_pairs : pair list -> summary option
(** Percentiles of [|est - truth|]; [None] when empty (never NaN).
    Exact nearest-rank up to 4096 pairs; beyond that a log-bucketed
    {!Sim.Histo} keeps the cost O(n) with each percentile within one
    bucket width (~2%).  Exposed so [e2ebench inspect] can summarise
    pairs reconstructed from a JSONL trace. *)

val summary : t -> summary option
val pp_summary : Format.formatter -> summary -> unit
