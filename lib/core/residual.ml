(* Estimator-residual tracking: pairs each estimate with the
   trace-derived true mean latency over the same window and reports
   error percentiles.  Percentiles are exact (sorted absolute errors,
   nearest-rank) up to [exact_cap] pairs — one pair per sampling tick,
   so short runs stay exact — and switch to the log-bucketed
   [Sim.Histo] beyond that, so a long run's growing pair log costs
   O(n) and the percentiles stay within one bucket width (~2%). *)

type pair = {
  at_us : float;
  window_us : float;
  est_us : float;
  truth_us : float;
}

type t = { mutable pairs_rev : pair list; mutable count : int }

let create () = { pairs_rev = []; count = 0 }

let observe t ~at_us ~window_us ~est_us ~truth_us =
  t.pairs_rev <- { at_us; window_us; est_us; truth_us } :: t.pairs_rev;
  t.count <- t.count + 1

let count t = t.count
let pairs t = List.rev t.pairs_rev

type summary = {
  n : int;
  mean_abs_us : float;
  bias_us : float;
  p50_abs_us : float;
  p95_abs_us : float;
  p99_abs_us : float;
  max_abs_us : float;
}

(* Nearest-rank percentile over a sorted array. *)
let percentile_sorted a p =
  let n = Array.length a in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    a.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))

let exact_cap = 4096

let summary_of_pairs ps =
  match ps with
  | [] -> None
  | _ ->
      let abs_errs =
        Array.of_list (List.map (fun p -> Float.abs (p.est_us -. p.truth_us)) ps)
      in
      let n = Array.length abs_errs in
      let sum_abs = Array.fold_left ( +. ) 0.0 abs_errs in
      let sum_signed =
        List.fold_left (fun acc p -> acc +. (p.est_us -. p.truth_us)) 0.0 ps
      in
      let p50, p95, p99, max_abs =
        if n <= exact_cap then begin
          Array.sort compare abs_errs;
          ( percentile_sorted abs_errs 50.0,
            percentile_sorted abs_errs 95.0,
            percentile_sorted abs_errs 99.0,
            abs_errs.(n - 1) )
        end
        else begin
          (* Streaming path: O(n) instead of the sort's O(n log n),
             each percentile within one histogram bucket (~2%, ±1 µs
             below 1 µs where the log buckets clamp). *)
          let h = Sim.Histo.create () in
          Array.iter (Sim.Histo.add h) abs_errs;
          let q p = Option.value (Sim.Histo.quantile h p) ~default:0.0 in
          let max_abs = Array.fold_left Float.max 0.0 abs_errs in
          (q 50.0, q 95.0, q 99.0, max_abs)
        end
      in
      Some
        {
          n;
          mean_abs_us = sum_abs /. float_of_int n;
          bias_us = sum_signed /. float_of_int n;
          p50_abs_us = p50;
          p95_abs_us = p95;
          p99_abs_us = p99;
          max_abs_us = max_abs;
        }

let summary t = summary_of_pairs (pairs t)

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean|e|=%.2fus bias=%+.2fus p50=%.2fus p95=%.2fus p99=%.2fus \
     max=%.2fus"
    s.n s.mean_abs_us s.bias_us s.p50_abs_us s.p95_abs_us s.p99_abs_us
    s.max_abs_us
