type triple = {
  unacked : Queue_state.share;
  unread : Queue_state.share;
  ackdelay : Queue_state.share;
}

let pp_triple ppf t =
  Format.fprintf ppf "@[<h>unacked=%a unread=%a ackdelay=%a@]" Queue_state.pp_share
    t.unacked Queue_state.pp_share t.unread Queue_state.pp_share t.ackdelay

let wire_size = 36

let mask32 = 0xFFFF_FFFF

(* Per-counter wire representation: time in whole microseconds, total in
   items, integral in item-microseconds, each modulo 2^32. *)
let to_u32_time (t : Sim.Time.t) = Sim.Time.to_ns t / 1_000 land mask32
let to_u32_integral integral = int_of_float (integral /. 1e3) land mask32

let put_u32 buf off v =
  Bytes.set_uint16_le buf off (v land 0xFFFF);
  Bytes.set_uint16_le buf (off + 2) ((v lsr 16) land 0xFFFF)

let get_u32 s off =
  String.get_uint16_le s off lor (String.get_uint16_le s (off + 2) lsl 16)

let encode_share buf off (s : Queue_state.share) =
  put_u32 buf off (to_u32_time s.time);
  put_u32 buf (off + 4) (s.total land mask32);
  put_u32 buf (off + 8) (to_u32_integral s.integral)

let decode_share s off : Queue_state.share =
  {
    time = Sim.Time.us (get_u32 s off);
    total = get_u32 s (off + 4);
    integral = float_of_int (get_u32 s (off + 8)) *. 1e3;
  }

let encode t =
  let buf = Bytes.create wire_size in
  encode_share buf 0 t.unacked;
  encode_share buf 12 t.unread;
  encode_share buf 24 t.ackdelay;
  Bytes.unsafe_to_string buf

let decode s =
  if String.length s <> wire_size then
    Error
      (Printf.sprintf "Exchange.decode: expected %d bytes, got %d" wire_size
         (String.length s))
  else begin
    let t =
      {
        unacked = decode_share s 0;
        unread = decode_share s 12;
        ackdelay = decode_share s 24;
      }
    in
    (* All three shares of a triple are snapshotted at the same instant
       (Queue_state.snapshot stamps the caller's [at]), so their wire
       times must agree.  Random or corrupted payloads pass this with
       probability 2^-64 — it is the codec's integrity check, at zero
       wire cost. *)
    if
      Sim.Time.compare t.unacked.time t.unread.time <> 0
      || Sim.Time.compare t.unread.time t.ackdelay.time <> 0
    then Error "Exchange.decode: snapshot times disagree across shares"
    else Ok t
  end

(* Plausibility clamps for a reconstructed triple (after {!decode} /
   {!unwrap}, or a triple arriving by value in the simulator): callers
   reject shares that could poison monotone counters. *)
let check_plausible ?prev ~now (cur : triple) =
  let skewed =
    Sim.Time.compare cur.unacked.time cur.unread.time <> 0
    || Sim.Time.compare cur.unread.time cur.ackdelay.time <> 0
  in
  let bad_range (s : Queue_state.share) =
    s.total < 0 || Sim.Time.compare s.time Sim.Time.zero < 0
    || not (Float.is_finite s.integral)
    || s.integral < 0.0
  in
  let regressed (prev : Queue_state.share) (cur : Queue_state.share) =
    Sim.Time.compare cur.time prev.time < 0
    || cur.total < prev.total
    || cur.integral < prev.integral
  in
  if skewed then Error "skew"
  else if bad_range cur.unacked || bad_range cur.unread || bad_range cur.ackdelay
  then Error "range"
  else if Sim.Time.compare cur.unacked.time now > 0 then Error "future"
  else
    match prev with
    | Some (p : triple)
      when regressed p.unacked cur.unacked
           || regressed p.unread cur.unread
           || regressed p.ackdelay cur.ackdelay ->
      Error "regress"
    | _ -> Ok ()

(* Reconstruct a monotone counter from its wrapped 32-bit value, given
   the previous full-width value: advance by the wrapped delta. *)
let unwrap_counter ~prev ~cur_wrapped =
  let delta = (cur_wrapped - (prev land mask32)) land mask32 in
  prev + delta

let unwrap_share ~(prev : Queue_state.share) ~(cur : Queue_state.share) :
    Queue_state.share =
  let time_us =
    unwrap_counter
      ~prev:(Sim.Time.to_ns prev.time / 1_000)
      ~cur_wrapped:(Sim.Time.to_ns cur.time / 1_000)
  in
  let total = unwrap_counter ~prev:prev.total ~cur_wrapped:cur.total in
  let integral_us =
    unwrap_counter
      ~prev:(int_of_float (prev.integral /. 1e3))
      ~cur_wrapped:(int_of_float (cur.integral /. 1e3))
  in
  { time = Sim.Time.us time_us; total; integral = float_of_int integral_us *. 1e3 }

let unwrap ~prev ~cur =
  {
    unacked = unwrap_share ~prev:prev.unacked ~cur:cur.unacked;
    unread = unwrap_share ~prev:prev.unread ~cur:cur.unread;
    ackdelay = unwrap_share ~prev:prev.ackdelay ~cur:cur.ackdelay;
  }

type policy = Every_segment | Periodic of Sim.Time.span | On_demand

type scheduler = {
  policy : policy;
  mutable last_sent : Sim.Time.t option;
  mutable requested : bool;
}

let scheduler policy = { policy; last_sent = None; requested = false }

let request s = s.requested <- true

let should_attach s ~now =
  let attach =
    match s.policy with
    | Every_segment -> true
    | On_demand -> s.requested
    | Periodic interval -> (
      match s.last_sent with
      | None -> true
      | Some last -> Sim.Time.diff now last >= interval)
  in
  if attach then begin
    s.last_sent <- Some now;
    s.requested <- false
  end;
  attach
