(** Peer metadata exchange (paper §3.2 and §5).

    Each party shares its three local queue states — unacked, unread,
    ackdelay — as three 3-tuples of 4-byte counters: 36 bytes per
    exchange.  The wire format truncates each counter to 32 bits
    (microsecond time, item count, item-microsecond integral); receivers
    reconstruct full-width values by unwrapping against the previously
    received payload, exactly as TCP timestamps are handled. *)

type triple = {
  unacked : Queue_state.share;
  unread : Queue_state.share;
  ackdelay : Queue_state.share;
}
(** One side's three queue snapshots, all taken at the same instant. *)

val pp_triple : Format.formatter -> triple -> unit

(** {1 Wire codec} *)

val wire_size : int
(** 36: three queues times three 4-byte counters. *)

val encode : triple -> string
(** Serialize to the 36-byte option payload (little-endian u32s,
    truncating each counter modulo 2{^32}). *)

val decode : string -> (triple, string) result
(** Decode a payload in isolation.  Counters are the raw (possibly
    wrapped) 32-bit values; use {!unwrap} to reconstruct monotone
    counters across successive payloads.

    Corrupted payloads surface as [Error], never an exception and
    never a silently-poisoned triple: besides the length check, the
    three shares' snapshot times must agree (they are taken at one
    instant), which random 36-byte garbage survives with probability
    2{^-64}. *)

val check_plausible :
  ?prev:triple -> now:Sim.Time.t -> triple -> (unit, string) result
(** Sanity clamps on a reconstructed triple before it may touch
    estimator state.  Rejects (with a short reason usable as a trace
    tag): shares whose snapshot times disagree (["skew"]), negative or
    non-finite counters (["range"]), snapshots from the future
    relative to [now] (["future"]), and — given [prev], the last
    accepted triple — any counter running backwards (["regress"];
    times, totals and integrals are all monotone by construction). *)

val unwrap : prev:triple -> cur:triple -> triple
(** Reconstruct full-width monotone counters for [cur] given the
    previously unwrapped [prev], assuming each counter advanced by less
    than 2{^32} between the two payloads. *)

(** {1 Exchange scheduling (§5 "Metadata Exchange")} *)

type policy =
  | Every_segment  (** attach the option to every outgoing segment *)
  | Periodic of Sim.Time.span  (** at most one exchange per interval *)
  | On_demand  (** only when {!request} was called since the last send *)

type scheduler

val scheduler : policy -> scheduler
val request : scheduler -> unit
(** Ask for an exchange at the next transmission opportunity
    (meaningful for [On_demand]). *)

val should_attach : scheduler -> now:Sim.Time.t -> bool
(** Decide whether the segment being built should carry the option;
    when it returns [true] the scheduler records the send. *)
