type input = { latency_ns : float option; throughput : float }

type t = { latency_ns : float option; throughput : float; flows : int }

let combine (inputs : input list) =
  let weighted, weight, flows, throughput =
    List.fold_left
      (fun (acc, w, n, tp) (i : input) ->
        let tp = tp +. i.throughput in
        match i.latency_ns with
        | Some l when i.throughput > 0.0 ->
          (acc +. (l *. i.throughput), w +. i.throughput, n + 1, tp)
        | Some _ | None -> (acc, w, n, tp))
      (0.0, 0.0, 0, 0.0) inputs
  in
  {
    latency_ns = (if weight > 0.0 then Some (weighted /. weight) else None);
    throughput;
    flows;
  }

let max_min_ratio xs =
  match xs with
  | [] -> None
  | x :: rest ->
    let lo, hi = List.fold_left (fun (lo, hi) x -> (Float.min lo x, Float.max hi x)) (x, x) rest in
    if lo > 0.0 then Some (hi /. lo) else None

let jain xs =
  let n = List.length xs in
  if n = 0 then None
  else
    let sum = List.fold_left ( +. ) 0.0 xs in
    let sumsq = List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
    if sumsq <= 0.0 then None
    else Some (sum *. sum /. (float_of_int n *. sumsq))

let of_estimates estimates =
  combine
    (List.map
       (fun (e : Estimator.estimate) : input ->
         { latency_ns = e.latency_ns; throughput = e.throughput })
       estimates)
