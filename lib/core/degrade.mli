(** Graceful-degradation hysteresis for the dynamic toggler.

    When remote shares go stale (loss burst, blackout), estimates stop
    meaning anything and an ε-greedy controller fed garbage can flap.
    This tiny state machine debounces the stale signal: only after
    [freeze_after] consecutive stale ticks does the controller freeze
    (fall back to the static default), and only after [thaw_after]
    consecutive fresh ticks does it resume — so isolated gaps cause no
    mode churn in either direction. *)

type config = {
  freeze_after : int;  (** consecutive stale ticks before freezing *)
  thaw_after : int;  (** consecutive fresh ticks before resuming *)
}

val default_config : config
(** Freeze after 2 stale ticks, thaw after 2 fresh ones. *)

type state = Active | Frozen

val state_to_string : state -> string
val pp_state : Format.formatter -> state -> unit

type t

val create : ?config:config -> unit -> t
(** @raise Invalid_argument on non-positive hysteresis counts. *)

val step : t -> stale:bool -> state
(** Feed one controller tick's staleness verdict; returns the state
    now in force. *)

val state : t -> state
val freezes : t -> int
val thaws : t -> int
