(** Front load balancer: assigns connections to backend shards.

    All policies are deterministic and rng-free (hashes and counters
    only), so sharded runs reproduce bit-for-bit without consuming
    any simulation random stream:

    - [Round_robin] — cycle through shards in assignment order.
    - [Consistent_hash] — hash the key onto a ring of 8 virtual
      nodes per shard.  Few vnodes means a lumpy ring: correlated
      keys can cluster on one shard (the hot-shard failure mode),
      but adding a shard moves only ~K/M keys.
    - [Least_loaded] — argmin over live assigned counts, ties to the
      lowest shard index. *)

type policy = Round_robin | Consistent_hash | Least_loaded

val policy_to_string : policy -> string
(** ["round_robin"] / ["consistent_hash"] / ["least_loaded"] — the
    spelling the scenario grammar and trace events use. *)

val policy_of_string : string -> policy option

type t

val create : policy:policy -> shards:int -> t
(** @raise Invalid_argument if [shards < 1]. *)

val policy : t -> policy
val shards : t -> int

val assign : t -> key:string -> int
(** Pick a shard for a new connection keyed by [key] (the
    connection's label) and count it against that shard's load. *)

val release : t -> shard:int -> unit
(** Drop one connection from [shard]'s live load (connection
    retired).  @raise Invalid_argument if the shard has no load. *)

val load : t -> int -> int
(** Live connections currently assigned to a shard. *)

val loads : t -> int array
(** Per-shard live loads, copied. *)

val vnodes_per_shard : int
(** Ring density of [Consistent_hash] (8). *)
