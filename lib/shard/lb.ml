(* Front load balancer: picks the backend shard for each new
   connection.  All three policies are deterministic and rng-free —
   hashes and counters only — so sharded runs reproduce bit-for-bit
   without consuming any simulation random stream.

   [Consistent_hash] hashes keys onto a ring of 8 virtual nodes per
   shard.  Eight vnodes is deliberately few: the ring is lumpy, so a
   tenant whose connections share a key prefix can land clustered on
   one shard — the hot-shard failure mode the [least_loaded] policy
   exists to avoid, and the one the hot-shard bench demonstrates.
   The payoff is stability: adding a shard moves only the keys that
   fall into the new shard's arcs (~K/M of them), which the steering
   property test pins. *)

type policy = Round_robin | Consistent_hash | Least_loaded

let policy_to_string = function
  | Round_robin -> "round_robin"
  | Consistent_hash -> "consistent_hash"
  | Least_loaded -> "least_loaded"

let policy_of_string = function
  | "round_robin" -> Some Round_robin
  | "consistent_hash" -> Some Consistent_hash
  | "least_loaded" -> Some Least_loaded
  | _ -> None

let vnodes_per_shard = 8

type t = {
  policy : policy;
  shards : int;
  loads : int array;  (* live connections assigned per shard *)
  mutable rr_next : int;
  ring : (int * int) array;  (* (point, shard), sorted by point *)
}

let ring_points ~shards =
  let pts =
    Array.init (shards * vnodes_per_shard) (fun i ->
        let s = i / vnodes_per_shard and v = i mod vnodes_per_shard in
        (Steer.hash (Printf.sprintf "shard-%d/vnode-%d" s v), s))
  in
  Array.sort compare pts;
  pts

let create ~policy ~shards =
  if shards < 1 then invalid_arg "Shard.Lb.create: shards must be >= 1";
  {
    policy;
    shards;
    loads = Array.make shards 0;
    rr_next = 0;
    ring = (match policy with Consistent_hash -> ring_points ~shards | _ -> [||]);
  }

let policy t = t.policy
let shards t = t.shards
let load t s = t.loads.(s)
let loads t = Array.copy t.loads

(* First ring point with point >= h, wrapping to ring.(0). *)
let ring_successor ring h =
  let n = Array.length ring in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst ring.(mid) >= h then hi := mid else lo := mid + 1
  done;
  snd ring.(if !lo = n then 0 else !lo)

let pick t ~key =
  match t.policy with
  | Round_robin ->
    let s = t.rr_next in
    t.rr_next <- (t.rr_next + 1) mod t.shards;
    s
  | Consistent_hash -> ring_successor t.ring (Steer.hash key)
  | Least_loaded ->
    (* argmin over live loads; ties break to the lowest index so the
       choice is deterministic. *)
    let best = ref 0 in
    for s = 1 to t.shards - 1 do
      if t.loads.(s) < t.loads.(!best) then best := s
    done;
    !best

let assign t ~key =
  let s = pick t ~key in
  t.loads.(s) <- t.loads.(s) + 1;
  s

let release t ~shard =
  if shard < 0 || shard >= t.shards then
    invalid_arg "Shard.Lb.release: shard out of range";
  if t.loads.(shard) <= 0 then invalid_arg "Shard.Lb.release: shard has no load";
  t.loads.(shard) <- t.loads.(shard) - 1
