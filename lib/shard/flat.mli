(** Index-addressed growable slot pool with a free list.

    Per-connection hot state for 10^5+-connection fleets lives here
    as flat arrays addressed by [int] handles, not records chained
    through lists: alloc and free reuse dead slots (LIFO) and never
    allocate once the pool has grown to its high-water mark, so the
    GC scans one flat array instead of a million list cells.

    Handles are dense small ints.  A freed handle may be reissued by
    a later {!alloc}; the pool never hands out a handle that aliases
    a currently-live slot.  Iteration visits live slots in ascending
    index order, which is stable across {!free}s of other slots and
    across internal growth. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] makes an empty pool.  [dummy] fills dead
    slots so freed payloads don't leak through the backing array;
    it is never returned by {!get}.  [capacity] (default 16) is the
    initial backing-array size; the pool doubles as needed. *)

val alloc : 'a t -> 'a -> int
(** [alloc t v] stores [v] in a dead slot (reusing the most recently
    freed index if any) and returns its handle. *)

val free : 'a t -> int -> unit
(** [free t i] kills slot [i] and recycles its index.
    @raise Invalid_argument if [i] is not live. *)

val get : 'a t -> int -> 'a
(** @raise Invalid_argument if the slot is not live. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument if the slot is not live. *)

val in_use : 'a t -> int -> bool
(** [in_use t i] is [true] iff [i] is a live handle. *)

val live : 'a t -> int
(** Number of live slots. *)

val capacity : 'a t -> int
(** Current backing-array size (>= [live t]). *)

val iter : 'a t -> f:(int -> 'a -> unit) -> unit
(** Visit live slots in ascending index order. *)

val fold : 'a t -> init:'acc -> f:('acc -> int -> 'a -> 'acc) -> 'acc
(** Fold over live slots in ascending index order. *)
