(* Index-addressed growable slot pool with a LIFO free list.

   The fleet keeps per-connection hot state here instead of in
   records chained through lists: slots live in one flat array, a
   connection is an [int] handle, and alloc/free never allocate on
   the OCaml heap once the backing array has grown to its high-water
   mark.  At 10^5..10^6 connections this is the difference between a
   minor-heap churn machine and a flat working set the GC scans once.

   Representation: [slots] holds the payloads ([dummy] in dead
   slots, so freed payloads are unreachable and can be collected),
   [live] marks occupancy, [free] is a LIFO stack of dead indices.
   Liveness is tracked with an explicit bool array rather than an
   option payload so [get] on the hot path is a bounds check plus a
   flat load, no tag test or indirection. *)

type 'a t = {
  dummy : 'a;
  mutable slots : 'a array;
  mutable live : bool array;
  mutable free : int array;  (* LIFO stack of dead indices *)
  mutable free_top : int;    (* number of valid entries in [free] *)
  mutable used : int;        (* indices ever handed out: 0..used-1 *)
  mutable n_live : int;
}

let create ?(capacity = 16) ~dummy () =
  let capacity = max capacity 1 in
  {
    dummy;
    slots = Array.make capacity dummy;
    live = Array.make capacity false;
    free = Array.make capacity 0;
    free_top = 0;
    used = 0;
    n_live = 0;
  }

let capacity t = Array.length t.slots
let live t = t.n_live
let in_use t i = i >= 0 && i < t.used && t.live.(i)

let grow t =
  let cap = Array.length t.slots in
  let cap' = 2 * cap in
  let slots' = Array.make cap' t.dummy in
  Array.blit t.slots 0 slots' 0 cap;
  t.slots <- slots';
  let live' = Array.make cap' false in
  Array.blit t.live 0 live' 0 cap;
  t.live <- live';
  let free' = Array.make cap' 0 in
  Array.blit t.free 0 free' 0 t.free_top;
  t.free <- free'

let alloc t v =
  let i =
    if t.free_top > 0 then begin
      t.free_top <- t.free_top - 1;
      t.free.(t.free_top)
    end
    else begin
      if t.used = Array.length t.slots then grow t;
      let i = t.used in
      t.used <- t.used + 1;
      i
    end
  in
  t.slots.(i) <- v;
  t.live.(i) <- true;
  t.n_live <- t.n_live + 1;
  i

let get t i =
  if not (in_use t i) then invalid_arg "Shard.Flat.get: dead slot";
  t.slots.(i)

let set t i v =
  if not (in_use t i) then invalid_arg "Shard.Flat.set: dead slot";
  t.slots.(i) <- v

let free t i =
  if not (in_use t i) then invalid_arg "Shard.Flat.free: dead slot";
  t.slots.(i) <- t.dummy;
  t.live.(i) <- false;
  t.n_live <- t.n_live - 1;
  t.free.(t.free_top) <- i;
  t.free_top <- t.free_top + 1

let iter t ~f =
  for i = 0 to t.used - 1 do
    if t.live.(i) then f i t.slots.(i)
  done

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.used - 1 do
    if t.live.(i) then acc := f !acc i t.slots.(i)
  done;
  !acc
