(* The M-shard server tier: one simulated core per shard, each with
   its own app CPU (run queue) and irq CPU (network softirq), so one
   shard's queueing never leaks into another's.

   Creation order is load-bearing for determinism: shard 0's app CPU
   first, then its irq CPU, then shard 1's pair, and so on.  With
   [cores = 1] this is exactly the pre-sharding creation order
   (server_cpu then server_irq), which keeps single-shard runs
   bit-identical to the unsharded code. *)

type shard = { index : int; cpu : Sim.Cpu.t; irq : Sim.Cpu.t }

type t = { shards : shard array }

let create engine ~cores =
  if cores < 1 then invalid_arg "Shard.Pool.create: cores must be >= 1";
  {
    shards =
      Array.init cores (fun index ->
          let cpu = Sim.Cpu.create engine in
          let irq = Sim.Cpu.create engine in
          { index; cpu; irq });
  }

let cores t = Array.length t.shards
let shard t i = t.shards.(i)
let cpu t i = t.shards.(i).cpu
let irq t i = t.shards.(i).irq
let iter t ~f = Array.iter f t.shards
