(* RSS-style flow steering: hash the connection id into a small
   indirection table whose entries name shards.  Real NICs do exactly
   this (Toeplitz hash -> 128/256-entry table -> queue); the
   indirection level is what makes repinning cheap — rewrite table
   entries, don't rehash flows.

   Individual flows can additionally be repinned by an explicit
   override table.  The hot lookup keeps the no-override case pure
   int arithmetic over flat arrays (no allocation — guarded by the
   [shard.steer_disabled] probe in [make alloc-gate]); the override
   hashtable is only consulted once at least one repin exists. *)

let table_size = 256

type t = {
  shards : int;
  table : int array;  (* table_size entries, each a shard index *)
  overrides : (string, int) Hashtbl.t;
  mutable n_overrides : int;
}

(* FNV-1a over the bytes of the id: deterministic, seedless, good
   enough dispersion for flow steering and cheap to compute. *)
let hash (s : string) =
  let h = ref 0x811c9dc5 in
  for i = 0 to String.length s - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * 0x01000193;
    h := !h land 0x3FFFFFFF
  done;
  !h

let create ~shards =
  if shards < 1 then invalid_arg "Shard.Steer.create: shards must be >= 1";
  {
    shards;
    table = Array.init table_size (fun i -> i mod shards);
    overrides = Hashtbl.create 16;
    n_overrides = 0;
  }

let shards t = t.shards

let lookup t id =
  if t.n_overrides > 0 then
    match Hashtbl.find_opt t.overrides id with
    | Some s -> s
    | None -> t.table.(hash id land (table_size - 1))
  else t.table.(hash id land (table_size - 1))

let repin t id ~shard =
  if shard < 0 || shard >= t.shards then
    invalid_arg "Shard.Steer.repin: shard out of range";
  if not (Hashtbl.mem t.overrides id) then
    t.n_overrides <- t.n_overrides + 1;
  Hashtbl.replace t.overrides id shard

let unpin t id =
  if Hashtbl.mem t.overrides id then begin
    Hashtbl.remove t.overrides id;
    t.n_overrides <- t.n_overrides - 1
  end

let retable t ~entry ~shard =
  if entry < 0 || entry >= table_size then
    invalid_arg "Shard.Steer.retable: entry out of range";
  if shard < 0 || shard >= t.shards then
    invalid_arg "Shard.Steer.retable: shard out of range";
  t.table.(entry) <- shard
