(** The M-shard server tier: one simulated core per shard, each with
    a private app CPU (the shard's run queue) and irq CPU (its
    network softirq side), so shards queue independently.

    CPUs are created in shard order, app before irq within a shard.
    With [cores = 1] that is exactly the pre-sharding creation order,
    which keeps single-shard runs bit-identical to unsharded ones. *)

type shard = { index : int; cpu : Sim.Cpu.t; irq : Sim.Cpu.t }

type t

val create : Sim.Engine.t -> cores:int -> t
(** @raise Invalid_argument if [cores < 1]. *)

val cores : t -> int
val shard : t -> int -> shard
val cpu : t -> int -> Sim.Cpu.t
val irq : t -> int -> Sim.Cpu.t
val iter : t -> f:(shard -> unit) -> unit
