(** RSS-style flow steering.

    Flows hash (FNV-1a over the connection id) into a fixed 256-entry
    indirection table whose entries name shards — the same structure
    NIC receive-side scaling uses, so rebalancing means rewriting
    table entries rather than rehashing flows.  Individual flows can
    be repinned by an explicit override table; when no overrides
    exist the lookup is pure int arithmetic over flat arrays and
    allocates nothing (guarded by the [shard.steer_disabled] probe in
    [make alloc-gate]). *)

type t

val create : shards:int -> t
(** A steering table dispersing flows round-robin over [shards]
    table entries.  @raise Invalid_argument if [shards < 1]. *)

val shards : t -> int

val lookup : t -> string -> int
(** [lookup t id] is the shard for flow [id]: its override if
    repinned, else the indirection-table entry its hash selects.
    Deterministic — same id, same table, same shard. *)

val repin : t -> string -> shard:int -> unit
(** Pin one flow to [shard], overriding the hash.
    @raise Invalid_argument if [shard] is out of range. *)

val unpin : t -> string -> unit
(** Remove a flow's override (no-op if none). *)

val retable : t -> entry:int -> shard:int -> unit
(** Rewrite one indirection-table entry — the RSS rebalance
    primitive.  @raise Invalid_argument on out-of-range values. *)

val table_size : int
(** Number of indirection-table entries (256). *)

val hash : string -> int
(** The steering hash (FNV-1a folded to 30 bits), exposed for
    tests. *)
