(** Monomorphic binary min-heap specialized for engine events.

    The generic {!Heap} orders elements through a closure comparator,
    which costs an indirect call per comparison on the simulator's
    hottest path and, being polymorphic, boxes nothing but also inlines
    nothing.  This heap knows its element type: ordering is the inlined
    [(at, seq)] integer comparison (earliest deadline first, FIFO among
    same-instant events), with no function pointer in sight.

    Vacated slots are overwritten with a per-heap sentinel on [pop] and
    [clear], so a fired or cancelled event's action closure — which can
    capture sockets, connections, whole simulation worlds — becomes
    collectable as soon as it leaves the queue. *)

type event = {
  at : Time.t;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
}

type t

val create : unit -> t

val length : t -> int
val is_empty : t -> bool

val push : t -> event -> unit

val peek : t -> event option
(** Earliest event without removing it. *)

val pop : t -> event option
(** Remove and return the earliest event.  The slot it occupied is
    cleared. *)

val top : t -> event
(** Option-free [peek] for the engine's hot loop: no allocation.
    Returns the heap's (cancelled) sentinel when empty — callers must
    check {!is_empty} first to distinguish. *)

val take : t -> event
(** Option-free [pop]: removes and returns the earliest event without
    boxing it, clearing the vacated slot.  Returns the sentinel when
    empty — check {!is_empty} first. *)

val clear : t -> unit
(** Drop every queued event, overwriting all live slots with the
    sentinel so their action closures are immediately collectable. *)
