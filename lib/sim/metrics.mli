(** Lightweight metrics registry.

    Named counters, gauges and histograms (the fixed-size log-bucketed
    {!Histo}, so registry adds stay allocation-free) that sockets,
    links and the estimator register into; a periodic [sample]
    flattens every instrument into pure [(name, float)] pairs for
    per-run time series.

    Lifecycle: a registry is created per run, instruments are
    registered during setup (counters/histograms are get-or-create,
    gauges replace any previous gauge under the same name), and the
    run's sampling loop calls {!sample} on a fixed cadence.  Samples
    contain no closures, so they can be compared structurally and
    shipped across domains. *)

type t

val create : unit -> t

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
(** Get or create.  @raise Invalid_argument if the name is already
    registered as a gauge or histogram. *)

val incr : ?by:int -> counter -> unit
val counter_name : counter -> string
val counter_value : counter -> int

(** {1 Gauges} *)

val gauge : t -> string -> (unit -> float) -> unit
(** Register (or replace) a gauge read on every sample.
    @raise Invalid_argument if the name names a counter/histogram. *)

(** {1 Histograms} *)

val histogram : t -> string -> Histo.t
(** Get or create.  Sampled as [name.count], [name.mean], [name.p99]
    (0.0 while empty, keeping sample shape stable).
    @raise Invalid_argument if the name names a counter/gauge. *)

val names : t -> string list
(** Registration order. *)

(** {1 Sampling} *)

type sample = { s_at : Time.t; values : (string * float) list }
(** Pure data: safe for structural equality and cross-domain moves. *)

val sample : t -> at:Time.t -> sample
(** Read every instrument.  [values] is in registration order. *)

val sample_to_json : ?run:string -> sample -> string
(** One flat JSON object per sample, keys are instrument names;
    non-finite values are emitted as [null]. *)
