(* Typed structured tracing: a bounded ring of (time, id, event) records
   with JSONL export/import.  The enabled check must come before any
   allocation so that call sites guarded by [enabled] (or going through
   [emitf]) pay nothing when tracing is off. *)

type event =
  | Segment_sent of { seq : int; len : int; push : bool; retx : bool }
  | Segment_received of { seq : int; fresh : int }
  | Ack_received of { acked : int; una : int }
  | Nagle_hold of { chunk : int; in_flight : int }
  | Nagle_toggle of { enabled : bool }
  | Cork_hold of { chunk : int }
  | Delack_fire of { pending : int }
  | Delack_cancel of { pending : int }
  | Fin_received of { rcv_nxt : int }
  | Segment_dropped of { seq : int; len : int; reason : string }
  | Segment_reordered of { seq : int; delay_us : float }
  | Segment_duplicated of { seq : int }
  | Share_corrupted of { seq : int }
  | Share_rejected of { reason : string }
  | Share_ingested of {
      unacked_total : int;
      unread_total : int;
      ackdelay_total : int;
    }
  | Estimate_computed of {
      latency_us : float option;
      throughput : float;
      window_us : float;
    }
  | Request_done of { latency_us : float }
  | Req_issued of { req : int; off : int; len : int }
  | Req_sent of { req : int }
  | Req_complete of { req : int }
  | Srv_start of { req : int }
  | Srv_reply of { req : int; off : int; len : int }
  | Audit_window of {
      queue : string;
      l_avg : float;
      lambda_per_s : float;
      w_us : float;
      rel_err : float;
    }
  | Message of { tag : string; detail : string }

type record = { at : Time.t; id : string; event : event }

type t = {
  capacity : int;
  mutable enabled : bool;
  mutable buf : record option array;
  mutable next : int;
  mutable count : int;
  mutable emitted : int;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    capacity;
    enabled = false;
    buf = Array.make capacity None;
    next = 0;
    count = 0;
    emitted = 0;
  }

let enabled t = t.enabled
let set_enabled t v = t.enabled <- v
let capacity t = t.capacity
let emitted t = t.emitted
let dropped t = t.emitted - t.count

let event t ~at ~id ev =
  if t.enabled then begin
    t.buf.(t.next) <- Some { at; id; event = ev };
    t.next <- (t.next + 1) mod t.capacity;
    if t.count < t.capacity then t.count <- t.count + 1;
    t.emitted <- t.emitted + 1
  end

let emit t ~at ~tag ~detail =
  if t.enabled then event t ~at ~id:"" (Message { tag; detail })

let emitf t ~at ~tag fmt =
  if t.enabled then
    Format.kasprintf (fun detail -> emit t ~at ~tag ~detail) fmt
  else
    (* Consume the format arguments without evaluating them. *)
    Format.ikfprintf ignore Format.str_formatter fmt

let iter t f =
  let start = if t.count = t.capacity then t.next else 0 in
  for i = 0 to t.count - 1 do
    match t.buf.((start + i) mod t.capacity) with
    | Some r -> f r
    | None -> ()
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun r -> acc := f !acc r);
  !acc

let records t = List.rev (fold t ~init:[] ~f:(fun acc r -> r :: acc))

(* Fleet runs tag every emitter id with its tenant: ["bare/c0"].  The
   slash cannot appear in the single-run "c0"/"s0" labels, so pre-fleet
   traces simply have no tenant. *)
let tenant_of_id id =
  match String.index_opt id '/' with
  | Some i when i > 0 -> Some (String.sub id 0 i)
  | Some _ | None -> None

let tag r =
  match r.event with
  | Segment_sent { retx = true; _ } -> "retx"
  | Segment_sent _ -> "tx"
  | Segment_received _ -> "rx"
  | Ack_received _ -> "ack"
  | Nagle_hold _ -> "hold"
  | Nagle_toggle _ -> "toggle"
  | Cork_hold _ -> "cork"
  | Delack_fire _ -> "delack_fire"
  | Delack_cancel _ -> "delack_cancel"
  | Fin_received _ -> "fin"
  | Segment_dropped _ -> "drop"
  | Segment_reordered _ -> "reorder"
  | Segment_duplicated _ -> "dup"
  | Share_corrupted _ -> "share_corrupt"
  | Share_rejected _ -> "share_reject"
  | Share_ingested _ -> "share"
  | Estimate_computed _ -> "estimate"
  | Request_done _ -> "request"
  | Req_issued _ -> "req_issued"
  | Req_sent _ -> "req_sent"
  | Req_complete _ -> "req_complete"
  | Srv_start _ -> "srv_start"
  | Srv_reply _ -> "srv_reply"
  | Audit_window _ -> "audit"
  | Message { tag; _ } -> tag

let detail r =
  match r.event with
  | Segment_sent { seq; len; push; retx } ->
      Printf.sprintf "seq=%d len=%d%s%s" seq len
        (if push then " PSH" else "")
        (if retx then " RETX" else "")
  | Segment_received { seq; fresh } -> Printf.sprintf "seq=%d fresh=%d" seq fresh
  | Ack_received { acked; una } -> Printf.sprintf "acked=%d una=%d" acked una
  | Nagle_hold { chunk; in_flight } ->
      Printf.sprintf "chunk=%d in_flight=%d" chunk in_flight
  | Nagle_toggle { enabled } -> Printf.sprintf "enabled=%b" enabled
  | Cork_hold { chunk } -> Printf.sprintf "chunk=%d" chunk
  | Delack_fire { pending } | Delack_cancel { pending } ->
      Printf.sprintf "pending=%d" pending
  | Fin_received { rcv_nxt } -> Printf.sprintf "rcv_nxt=%d" rcv_nxt
  | Segment_dropped { seq; len; reason } ->
      Printf.sprintf "seq=%d len=%d reason=%s" seq len reason
  | Segment_reordered { seq; delay_us } ->
      Printf.sprintf "seq=%d delay_us=%.1f" seq delay_us
  | Segment_duplicated { seq } -> Printf.sprintf "seq=%d" seq
  | Share_corrupted { seq } -> Printf.sprintf "seq=%d" seq
  | Share_rejected { reason } -> Printf.sprintf "reason=%s" reason
  | Share_ingested { unacked_total; unread_total; ackdelay_total } ->
      Printf.sprintf "unacked=%d unread=%d ackdelay=%d" unacked_total
        unread_total ackdelay_total
  | Estimate_computed { latency_us; throughput; window_us } ->
      Printf.sprintf "latency_us=%s tput=%.1f window_us=%.1f"
        (match latency_us with Some l -> Printf.sprintf "%.2f" l | None -> "-")
        throughput window_us
  | Request_done { latency_us } -> Printf.sprintf "latency_us=%.2f" latency_us
  | Req_issued { req; off; len } -> Printf.sprintf "req=%d off=%d len=%d" req off len
  | Req_sent { req } -> Printf.sprintf "req=%d" req
  | Req_complete { req } -> Printf.sprintf "req=%d" req
  | Srv_start { req } -> Printf.sprintf "req=%d" req
  | Srv_reply { req; off; len } -> Printf.sprintf "req=%d off=%d len=%d" req off len
  | Audit_window { queue; l_avg; lambda_per_s; w_us; rel_err } ->
      Printf.sprintf "queue=%s L=%.3f lambda=%.1f/s W=%.2fus err=%.4f" queue l_avg
        lambda_per_s w_us rel_err
  | Message { detail; _ } -> detail

let find t ~tag:wanted =
  List.rev
    (fold t ~init:[] ~f:(fun acc r ->
         if String.equal (tag r) wanted then r :: acc else acc))

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.next <- 0;
  t.count <- 0;
  t.emitted <- 0

let pp_record ppf r =
  Format.fprintf ppf "[%a] %s %s: %s" Time.pp r.at
    (if r.id = "" then "-" else r.id)
    (tag r) (detail r)

let dump t ppf = iter t (fun r -> Format.fprintf ppf "%a@." pp_record r)

(* {1 JSONL export} *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_str b key v =
  Buffer.add_string b ",\"";
  Buffer.add_string b key;
  Buffer.add_string b "\":\"";
  json_escape b v;
  Buffer.add_char b '"'

let add_int b key v =
  Buffer.add_string b (Printf.sprintf ",\"%s\":%d" key v)

let add_bool b key v =
  Buffer.add_string b (Printf.sprintf ",\"%s\":%b" key v)

(* %.17g round-trips every finite float through [float_of_string]. *)
let add_float b key v =
  if Float.is_finite v then
    Buffer.add_string b (Printf.sprintf ",\"%s\":%.17g" key v)
  else Buffer.add_string b (Printf.sprintf ",\"%s\":null" key)

let record_to_json ?run r =
  let b = Buffer.create 128 in
  Buffer.add_string b (Printf.sprintf "{\"at_ns\":%d" (Time.to_ns r.at));
  (match run with Some run -> add_str b "run" run | None -> ());
  add_str b "conn" r.id;
  (match r.event with
  | Segment_sent { seq; len; push; retx } ->
      add_str b "ev" (if retx then "retx" else "tx");
      add_int b "seq" seq;
      add_int b "len" len;
      add_bool b "push" push
  | Segment_received { seq; fresh } ->
      add_str b "ev" "rx";
      add_int b "seq" seq;
      add_int b "fresh" fresh
  | Ack_received { acked; una } ->
      add_str b "ev" "ack";
      add_int b "acked" acked;
      add_int b "una" una
  | Nagle_hold { chunk; in_flight } ->
      add_str b "ev" "hold";
      add_int b "chunk" chunk;
      add_int b "in_flight" in_flight
  | Nagle_toggle { enabled } ->
      add_str b "ev" "toggle";
      add_bool b "enabled" enabled
  | Cork_hold { chunk } ->
      add_str b "ev" "cork";
      add_int b "chunk" chunk
  | Delack_fire { pending } ->
      add_str b "ev" "delack_fire";
      add_int b "pending" pending
  | Delack_cancel { pending } ->
      add_str b "ev" "delack_cancel";
      add_int b "pending" pending
  | Fin_received { rcv_nxt } ->
      add_str b "ev" "fin";
      add_int b "rcv_nxt" rcv_nxt
  | Segment_dropped { seq; len; reason } ->
      add_str b "ev" "drop";
      add_int b "seq" seq;
      add_int b "len" len;
      add_str b "reason" reason
  | Segment_reordered { seq; delay_us } ->
      add_str b "ev" "reorder";
      add_int b "seq" seq;
      add_float b "delay_us" delay_us
  | Segment_duplicated { seq } ->
      add_str b "ev" "dup";
      add_int b "seq" seq
  | Share_corrupted { seq } ->
      add_str b "ev" "share_corrupt";
      add_int b "seq" seq
  | Share_rejected { reason } ->
      add_str b "ev" "share_reject";
      add_str b "reason" reason
  | Share_ingested { unacked_total; unread_total; ackdelay_total } ->
      add_str b "ev" "share";
      add_int b "unacked" unacked_total;
      add_int b "unread" unread_total;
      add_int b "ackdelay" ackdelay_total
  | Estimate_computed { latency_us; throughput; window_us } ->
      add_str b "ev" "estimate";
      (match latency_us with
      | Some l -> add_float b "latency_us" l
      | None -> Buffer.add_string b ",\"latency_us\":null");
      add_float b "throughput" throughput;
      add_float b "window_us" window_us
  | Request_done { latency_us } ->
      add_str b "ev" "request";
      add_float b "latency_us" latency_us
  | Req_issued { req; off; len } ->
      add_str b "ev" "req_issued";
      add_int b "req" req;
      add_int b "off" off;
      add_int b "len" len
  | Req_sent { req } ->
      add_str b "ev" "req_sent";
      add_int b "req" req
  | Req_complete { req } ->
      add_str b "ev" "req_complete";
      add_int b "req" req
  | Srv_start { req } ->
      add_str b "ev" "srv_start";
      add_int b "req" req
  | Srv_reply { req; off; len } ->
      add_str b "ev" "srv_reply";
      add_int b "req" req;
      add_int b "off" off;
      add_int b "len" len
  | Audit_window { queue; l_avg; lambda_per_s; w_us; rel_err } ->
      add_str b "ev" "audit";
      add_str b "queue" queue;
      add_float b "l" l_avg;
      add_float b "lambda" lambda_per_s;
      add_float b "w_us" w_us;
      add_float b "rel_err" rel_err
  | Message { tag; detail } ->
      add_str b "ev" "msg";
      add_str b "tag" tag;
      add_str b "detail" detail);
  Buffer.add_char b '}';
  Buffer.contents b

(* {1 Minimal flat-JSON-object parser}

   Only what the exporter above (and [Metrics.sample_to_json]) produces:
   one object per line, scalar values (string / number / bool / null),
   no nesting.  Hand-rolled because the repo deliberately has no JSON
   dependency. *)

type json_value = Jstr of string | Jnum of float | Jbool of bool | Jnull

exception Parse_error of string

let parse_flat_object line =
  let n = String.length line in
  let pos = ref 0 in
  let err msg = raise (Parse_error msg) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match line.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && line.[!pos] = c then incr pos
    else err (Printf.sprintf "expected '%c' at offset %d" c !pos)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then err "unterminated string"
      else
        match line.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            if !pos >= n then err "truncated escape";
            (match line.[!pos] with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                if !pos + 4 >= n then err "truncated \\u escape";
                let hex = String.sub line (!pos + 1) 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> err "bad \\u escape"
                in
                pos := !pos + 4;
                (* Only BMP codepoints below 0x80 are emitted by our
                   exporter; decode others as '?' rather than UTF-8. *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else Buffer.add_char b '?'
            | c -> err (Printf.sprintf "bad escape '\\%c'" c));
            incr pos;
            go ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstr (parse_string ())
    | Some 't' ->
        if !pos + 4 <= n && String.sub line !pos 4 = "true" then begin
          pos := !pos + 4;
          Jbool true
        end
        else err "bad literal"
    | Some 'f' ->
        if !pos + 5 <= n && String.sub line !pos 5 = "false" then begin
          pos := !pos + 5;
          Jbool false
        end
        else err "bad literal"
    | Some 'n' ->
        if !pos + 4 <= n && String.sub line !pos 4 = "null" then begin
          pos := !pos + 4;
          Jnull
        end
        else err "bad literal"
    | Some ('-' | '0' .. '9') ->
        let start = !pos in
        while
          !pos < n
          &&
          match line.[!pos] with
          | '-' | '+' | '.' | 'e' | 'E' | '0' .. '9' -> true
          | _ -> false
        do
          incr pos
        done;
        let s = String.sub line start (!pos - start) in
        (try Jnum (float_of_string s)
         with _ -> err (Printf.sprintf "bad number %S" s))
    | Some c -> err (Printf.sprintf "unexpected '%c' at offset %d" c !pos)
    | None -> err "unexpected end of input"
  in
  try
    skip_ws ();
    expect '{';
    skip_ws ();
    let fields = ref [] in
    (if peek () = Some '}' then incr pos
     else
       let rec members () =
         skip_ws ();
         let key = parse_string () in
         skip_ws ();
         expect ':';
         let v = parse_value () in
         fields := (key, v) :: !fields;
         skip_ws ();
         match peek () with
         | Some ',' ->
             incr pos;
             members ()
         | Some '}' -> incr pos
         | _ -> err (Printf.sprintf "expected ',' or '}' at offset %d" !pos)
       in
       members ());
    skip_ws ();
    if !pos <> n then err "trailing garbage after object";
    Ok (List.rev !fields)
  with Parse_error msg -> Error msg

let field fields key = List.assoc_opt key fields

let num fields key =
  match field fields key with
  | Some (Jnum v) -> Ok v
  | Some _ -> Error (Printf.sprintf "field %S is not a number" key)
  | None -> Error (Printf.sprintf "missing field %S" key)

let int_field fields key = Result.map int_of_float (num fields key)

let str fields key =
  match field fields key with
  | Some (Jstr v) -> Ok v
  | Some _ -> Error (Printf.sprintf "field %S is not a string" key)
  | None -> Error (Printf.sprintf "missing field %S" key)

let bool_field fields key =
  match field fields key with
  | Some (Jbool v) -> Ok v
  | Some _ -> Error (Printf.sprintf "field %S is not a bool" key)
  | None -> Error (Printf.sprintf "missing field %S" key)

let ( let* ) = Result.bind

let record_of_json line =
  let* fields = parse_flat_object line in
  let* at_ns = int_field fields "at_ns" in
  let* ev = str fields "ev" in
  let run = match field fields "run" with Some (Jstr r) -> Some r | _ -> None in
  let id = match field fields "conn" with Some (Jstr c) -> c | _ -> "" in
  let* event =
    match ev with
    | "tx" | "retx" ->
        let* seq = int_field fields "seq" in
        let* len = int_field fields "len" in
        let* push = bool_field fields "push" in
        Ok (Segment_sent { seq; len; push; retx = ev = "retx" })
    | "rx" ->
        let* seq = int_field fields "seq" in
        let* fresh = int_field fields "fresh" in
        Ok (Segment_received { seq; fresh })
    | "ack" ->
        let* acked = int_field fields "acked" in
        let* una = int_field fields "una" in
        Ok (Ack_received { acked; una })
    | "hold" ->
        let* chunk = int_field fields "chunk" in
        let* in_flight = int_field fields "in_flight" in
        Ok (Nagle_hold { chunk; in_flight })
    | "toggle" ->
        let* enabled = bool_field fields "enabled" in
        Ok (Nagle_toggle { enabled })
    | "cork" ->
        let* chunk = int_field fields "chunk" in
        Ok (Cork_hold { chunk })
    | "delack_fire" ->
        let* pending = int_field fields "pending" in
        Ok (Delack_fire { pending })
    | "delack_cancel" ->
        let* pending = int_field fields "pending" in
        Ok (Delack_cancel { pending })
    | "fin" ->
        let* rcv_nxt = int_field fields "rcv_nxt" in
        Ok (Fin_received { rcv_nxt })
    | "drop" ->
        let* seq = int_field fields "seq" in
        let* len = int_field fields "len" in
        let* reason = str fields "reason" in
        Ok (Segment_dropped { seq; len; reason })
    | "reorder" ->
        let* seq = int_field fields "seq" in
        let* delay_us = num fields "delay_us" in
        Ok (Segment_reordered { seq; delay_us })
    | "dup" ->
        let* seq = int_field fields "seq" in
        Ok (Segment_duplicated { seq })
    | "share_corrupt" ->
        let* seq = int_field fields "seq" in
        Ok (Share_corrupted { seq })
    | "share_reject" ->
        let* reason = str fields "reason" in
        Ok (Share_rejected { reason })
    | "share" ->
        let* unacked_total = int_field fields "unacked" in
        let* unread_total = int_field fields "unread" in
        let* ackdelay_total = int_field fields "ackdelay" in
        Ok (Share_ingested { unacked_total; unread_total; ackdelay_total })
    | "estimate" ->
        let latency_us =
          match field fields "latency_us" with
          | Some (Jnum v) -> Some v
          | _ -> None
        in
        let* throughput = num fields "throughput" in
        let* window_us = num fields "window_us" in
        Ok (Estimate_computed { latency_us; throughput; window_us })
    | "request" ->
        let* latency_us = num fields "latency_us" in
        Ok (Request_done { latency_us })
    | "req_issued" ->
        let* req = int_field fields "req" in
        let* off = int_field fields "off" in
        let* len = int_field fields "len" in
        Ok (Req_issued { req; off; len })
    | "req_sent" ->
        let* req = int_field fields "req" in
        Ok (Req_sent { req })
    | "req_complete" ->
        let* req = int_field fields "req" in
        Ok (Req_complete { req })
    | "srv_start" ->
        let* req = int_field fields "req" in
        Ok (Srv_start { req })
    | "srv_reply" ->
        let* req = int_field fields "req" in
        let* off = int_field fields "off" in
        let* len = int_field fields "len" in
        Ok (Srv_reply { req; off; len })
    | "audit" ->
        let* queue = str fields "queue" in
        let* l_avg = num fields "l" in
        let* lambda_per_s = num fields "lambda" in
        let* w_us = num fields "w_us" in
        let* rel_err = num fields "rel_err" in
        Ok (Audit_window { queue; l_avg; lambda_per_s; w_us; rel_err })
    | "msg" ->
        let* tag = str fields "tag" in
        let* detail = str fields "detail" in
        Ok (Message { tag; detail })
    | other -> Error (Printf.sprintf "unknown event type %S" other)
  in
  Ok (run, { at = at_ns; id; event })

(* Load a whole JSONL trace file.  Missing/unreadable files, malformed
   lines and files with no records at all are reported as [Error] so
   callers (the inspect/report CLIs) can exit non-zero with one clear
   message instead of silently doing nothing. *)
let load_jsonl path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let parsed = ref [] in
      let line_no = ref 0 in
      let err = ref None in
      (try
         while !err = None do
           let line = input_line ic in
           incr line_no;
           if String.trim line <> "" then
             match record_of_json line with
             | Ok rr -> parsed := rr :: !parsed
             | Error msg ->
                 err := Some (Printf.sprintf "%s: line %d: %s" path !line_no msg)
         done
       with End_of_file -> ());
      close_in ic;
      match (!err, List.rev !parsed) with
      | Some msg, _ -> Error msg
      | None, [] -> Error (Printf.sprintf "%s: no trace records" path)
      | None, records -> Ok records
