(* Typed structured tracing: a bounded ring of (time, id, event) records
   with JSONL export/import.  The enabled check must come before any
   allocation so that call sites guarded by [enabled] (or going through
   [emitf]) pay nothing when tracing is off. *)

type event =
  | Segment_sent of { seq : int; len : int; push : bool; retx : bool }
  | Segment_received of { seq : int; fresh : int }
  | Ack_received of { acked : int; una : int }
  | Nagle_hold of { chunk : int; in_flight : int }
  | Nagle_toggle of { enabled : bool }
  | Cork_hold of { chunk : int }
  | Delack_fire of { pending : int }
  | Delack_cancel of { pending : int }
  | Fin_received of { rcv_nxt : int }
  | Segment_dropped of { seq : int; len : int; reason : string }
  | Segment_reordered of { seq : int; delay_us : float }
  | Segment_duplicated of { seq : int }
  | Segment_challenged of { seq : int; kind : string }
  | Probe_sent of { seq : int; backoff : int }
  | Share_corrupted of { seq : int }
  | Share_rejected of { reason : string }
  | Share_ingested of {
      unacked_total : int;
      unread_total : int;
      ackdelay_total : int;
    }
  | Estimate_computed of {
      latency_us : float option;
      throughput : float;
      window_us : float;
    }
  | Request_done of { latency_us : float }
  | Req_issued of { req : int; off : int; len : int }
  | Req_sent of { req : int }
  | Req_complete of { req : int }
  | Srv_start of { req : int }
  | Srv_reply of { req : int; off : int; len : int }
  | Audit_window of {
      queue : string;
      l_avg : float;
      lambda_per_s : float;
      w_us : float;
      rel_err : float;
    }
  | Message of { tag : string; detail : string }
  | Decision_made of {
      decision : int;  (** sequence number within the emitting group *)
      on_us : float option;  (** smoothed estimate for the Batch_on arm *)
      off_us : float option;  (** smoothed estimate for the Batch_off arm *)
      mode : string;  (** mode in force when the decision was taken *)
      action : string;  (** mode/limit chosen by the decision *)
      reason : string;  (** explore/exploit/undersampled/forced/good/bad/hold *)
      frozen : bool;  (** degrade freeze in force *)
      stale_us : float;  (** age of the freshest remote share; -1 = unknown *)
    }
  | Decision_outcome of {
      decision : int;  (** the [Decision_made] this realizes *)
      mean_us : float;
      p99_us : float;
      n : int;  (** completions observed during the tenure *)
    }
  | Conn_opened of {
      gen : int;  (** per-tenant connection generation counter *)
      inherited : bool;  (** group prior adopted (estimator cold-start) *)
    }
  | Conn_closed of {
      gen : int;
      completed : int;  (** requests completed over the connection's life *)
    }
  | Lb_assigned of {
      shard : int;  (** backend shard the load balancer picked *)
      policy : string;  (** round_robin / consistent_hash / least_loaded *)
    }
  | Shard_enqueued of {
      shard : int;
      depth : int;  (** shard dispatch-queue depth after this enqueue *)
    }

type record = { at : Time.t; id : string; event : event }

type t = {
  capacity : int;
  mutable enabled : bool;
  mutable buf : record option array;
  mutable next : int;
  mutable count : int;
  mutable emitted : int;
  mutable sink : (record -> unit) option;
  mutable sunk : int;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    capacity;
    enabled = false;
    buf = Array.make capacity None;
    next = 0;
    count = 0;
    emitted = 0;
    sink = None;
    sunk = 0;
  }

let enabled t = t.enabled
let set_enabled t v = t.enabled <- v
let capacity t = t.capacity
let emitted t = t.emitted
let dropped t = t.emitted - t.count - t.sunk
let set_sink t sink = t.sink <- sink
let sunk t = t.sunk

let event t ~at ~id ev =
  if t.enabled then begin
    (match t.sink with
    | None ->
        t.buf.(t.next) <- Some { at; id; event = ev };
        t.next <- (t.next + 1) mod t.capacity;
        if t.count < t.capacity then t.count <- t.count + 1
    | Some f ->
        t.sunk <- t.sunk + 1;
        f { at; id; event = ev });
    t.emitted <- t.emitted + 1
  end

let emit t ~at ~tag ~detail =
  if t.enabled then event t ~at ~id:"" (Message { tag; detail })

let emitf t ~at ~tag fmt =
  if t.enabled then
    Format.kasprintf (fun detail -> emit t ~at ~tag ~detail) fmt
  else
    (* Consume the format arguments without evaluating them. *)
    Format.ikfprintf ignore Format.str_formatter fmt

let iter t f =
  let start = if t.count = t.capacity then t.next else 0 in
  for i = 0 to t.count - 1 do
    match t.buf.((start + i) mod t.capacity) with
    | Some r -> f r
    | None -> ()
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun r -> acc := f !acc r);
  !acc

let records t = List.rev (fold t ~init:[] ~f:(fun acc r -> r :: acc))

(* Fleet runs tag every emitter id with its tenant: ["bare/c0"].  The
   slash cannot appear in the single-run "c0"/"s0" labels, so pre-fleet
   traces simply have no tenant. *)
let tenant_of_id id =
  match String.index_opt id '/' with
  | Some i when i > 0 -> Some (String.sub id 0 i)
  | Some _ | None -> None

(* Sharded fleet runs suffix ids with the backend shard: ["bare/c0@s3"].
   Single-shard runs keep the unsuffixed labels, so pre-sharding traces
   simply have no shard. *)
let shard_of_id id =
  match String.rindex_opt id '@' with
  | Some i
    when i + 2 < String.length id && id.[i + 1] = 's' ->
      int_of_string_opt (String.sub id (i + 2) (String.length id - i - 2))
  | Some _ | None -> None

let tag r =
  match r.event with
  | Segment_sent { retx = true; _ } -> "retx"
  | Segment_sent _ -> "tx"
  | Segment_received _ -> "rx"
  | Ack_received _ -> "ack"
  | Nagle_hold _ -> "hold"
  | Nagle_toggle _ -> "toggle"
  | Cork_hold _ -> "cork"
  | Delack_fire _ -> "delack_fire"
  | Delack_cancel _ -> "delack_cancel"
  | Fin_received _ -> "fin"
  | Segment_dropped _ -> "drop"
  | Segment_reordered _ -> "reorder"
  | Segment_duplicated _ -> "dup"
  | Segment_challenged _ -> "challenge"
  | Probe_sent _ -> "probe"
  | Share_corrupted _ -> "share_corrupt"
  | Share_rejected _ -> "share_reject"
  | Share_ingested _ -> "share"
  | Estimate_computed _ -> "estimate"
  | Request_done _ -> "request"
  | Req_issued _ -> "req_issued"
  | Req_sent _ -> "req_sent"
  | Req_complete _ -> "req_complete"
  | Srv_start _ -> "srv_start"
  | Srv_reply _ -> "srv_reply"
  | Audit_window _ -> "audit"
  | Message { tag; _ } -> tag
  | Decision_made _ -> "decision"
  | Decision_outcome _ -> "outcome"
  | Conn_opened _ -> "conn_open"
  | Conn_closed _ -> "conn_close"
  | Lb_assigned _ -> "lb_assign"
  | Shard_enqueued _ -> "shard_enq"

let detail r =
  match r.event with
  | Segment_sent { seq; len; push; retx } ->
      Printf.sprintf "seq=%d len=%d%s%s" seq len
        (if push then " PSH" else "")
        (if retx then " RETX" else "")
  | Segment_received { seq; fresh } -> Printf.sprintf "seq=%d fresh=%d" seq fresh
  | Ack_received { acked; una } -> Printf.sprintf "acked=%d una=%d" acked una
  | Nagle_hold { chunk; in_flight } ->
      Printf.sprintf "chunk=%d in_flight=%d" chunk in_flight
  | Nagle_toggle { enabled } -> Printf.sprintf "enabled=%b" enabled
  | Cork_hold { chunk } -> Printf.sprintf "chunk=%d" chunk
  | Delack_fire { pending } | Delack_cancel { pending } ->
      Printf.sprintf "pending=%d" pending
  | Fin_received { rcv_nxt } -> Printf.sprintf "rcv_nxt=%d" rcv_nxt
  | Segment_dropped { seq; len; reason } ->
      Printf.sprintf "seq=%d len=%d reason=%s" seq len reason
  | Segment_reordered { seq; delay_us } ->
      Printf.sprintf "seq=%d delay_us=%.1f" seq delay_us
  | Segment_duplicated { seq } -> Printf.sprintf "seq=%d" seq
  | Segment_challenged { seq; kind } -> Printf.sprintf "seq=%d kind=%s" seq kind
  | Probe_sent { seq; backoff } -> Printf.sprintf "seq=%d backoff=%d" seq backoff
  | Share_corrupted { seq } -> Printf.sprintf "seq=%d" seq
  | Share_rejected { reason } -> Printf.sprintf "reason=%s" reason
  | Share_ingested { unacked_total; unread_total; ackdelay_total } ->
      Printf.sprintf "unacked=%d unread=%d ackdelay=%d" unacked_total
        unread_total ackdelay_total
  | Estimate_computed { latency_us; throughput; window_us } ->
      Printf.sprintf "latency_us=%s tput=%.1f window_us=%.1f"
        (match latency_us with Some l -> Printf.sprintf "%.2f" l | None -> "-")
        throughput window_us
  | Request_done { latency_us } -> Printf.sprintf "latency_us=%.2f" latency_us
  | Req_issued { req; off; len } -> Printf.sprintf "req=%d off=%d len=%d" req off len
  | Req_sent { req } -> Printf.sprintf "req=%d" req
  | Req_complete { req } -> Printf.sprintf "req=%d" req
  | Srv_start { req } -> Printf.sprintf "req=%d" req
  | Srv_reply { req; off; len } -> Printf.sprintf "req=%d off=%d len=%d" req off len
  | Audit_window { queue; l_avg; lambda_per_s; w_us; rel_err } ->
      Printf.sprintf "queue=%s L=%.3f lambda=%.1f/s W=%.2fus err=%.4f" queue l_avg
        lambda_per_s w_us rel_err
  | Message { detail; _ } -> detail
  | Decision_made { decision; on_us; off_us; mode; action; reason; frozen; stale_us }
    ->
      let arm = function
        | Some v -> Printf.sprintf "%.2f" v
        | None -> "-"
      in
      Printf.sprintf "#%d on=%s off=%s mode=%s action=%s reason=%s%s stale_us=%.1f"
        decision (arm on_us) (arm off_us) mode action reason
        (if frozen then " FROZEN" else "")
        stale_us
  | Decision_outcome { decision; mean_us; p99_us; n } ->
      Printf.sprintf "#%d mean_us=%.2f p99_us=%.2f n=%d" decision mean_us p99_us n
  | Conn_opened { gen; inherited } ->
      Printf.sprintf "gen=%d%s" gen (if inherited then " INHERITED" else "")
  | Conn_closed { gen; completed } ->
      Printf.sprintf "gen=%d completed=%d" gen completed
  | Lb_assigned { shard; policy } ->
      Printf.sprintf "shard=%d policy=%s" shard policy
  | Shard_enqueued { shard; depth } ->
      Printf.sprintf "shard=%d depth=%d" shard depth

let find t ~tag:wanted =
  List.rev
    (fold t ~init:[] ~f:(fun acc r ->
         if String.equal (tag r) wanted then r :: acc else acc))

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.next <- 0;
  t.count <- 0;
  t.emitted <- 0;
  t.sunk <- 0

let pp_record ppf r =
  Format.fprintf ppf "[%a] %s %s: %s" Time.pp r.at
    (if r.id = "" then "-" else r.id)
    (tag r) (detail r)

let dump t ppf = iter t (fun r -> Format.fprintf ppf "%a@." pp_record r)

(* {1 JSONL export} *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_str b key v =
  Buffer.add_string b ",\"";
  Buffer.add_string b key;
  Buffer.add_string b "\":\"";
  json_escape b v;
  Buffer.add_char b '"'

let add_int b key v =
  Buffer.add_string b (Printf.sprintf ",\"%s\":%d" key v)

let add_bool b key v =
  Buffer.add_string b (Printf.sprintf ",\"%s\":%b" key v)

(* %.17g round-trips every finite float through [float_of_string]. *)
let add_float b key v =
  if Float.is_finite v then
    Buffer.add_string b (Printf.sprintf ",\"%s\":%.17g" key v)
  else Buffer.add_string b (Printf.sprintf ",\"%s\":null" key)

let record_to_json ?run r =
  let b = Buffer.create 128 in
  Buffer.add_string b (Printf.sprintf "{\"at_ns\":%d" (Time.to_ns r.at));
  (match run with Some run -> add_str b "run" run | None -> ());
  add_str b "conn" r.id;
  (match r.event with
  | Segment_sent { seq; len; push; retx } ->
      add_str b "ev" (if retx then "retx" else "tx");
      add_int b "seq" seq;
      add_int b "len" len;
      add_bool b "push" push
  | Segment_received { seq; fresh } ->
      add_str b "ev" "rx";
      add_int b "seq" seq;
      add_int b "fresh" fresh
  | Ack_received { acked; una } ->
      add_str b "ev" "ack";
      add_int b "acked" acked;
      add_int b "una" una
  | Nagle_hold { chunk; in_flight } ->
      add_str b "ev" "hold";
      add_int b "chunk" chunk;
      add_int b "in_flight" in_flight
  | Nagle_toggle { enabled } ->
      add_str b "ev" "toggle";
      add_bool b "enabled" enabled
  | Cork_hold { chunk } ->
      add_str b "ev" "cork";
      add_int b "chunk" chunk
  | Delack_fire { pending } ->
      add_str b "ev" "delack_fire";
      add_int b "pending" pending
  | Delack_cancel { pending } ->
      add_str b "ev" "delack_cancel";
      add_int b "pending" pending
  | Fin_received { rcv_nxt } ->
      add_str b "ev" "fin";
      add_int b "rcv_nxt" rcv_nxt
  | Segment_dropped { seq; len; reason } ->
      add_str b "ev" "drop";
      add_int b "seq" seq;
      add_int b "len" len;
      add_str b "reason" reason
  | Segment_reordered { seq; delay_us } ->
      add_str b "ev" "reorder";
      add_int b "seq" seq;
      add_float b "delay_us" delay_us
  | Segment_duplicated { seq } ->
      add_str b "ev" "dup";
      add_int b "seq" seq
  | Segment_challenged { seq; kind } ->
      add_str b "ev" "challenge";
      add_int b "seq" seq;
      add_str b "kind" kind
  | Probe_sent { seq; backoff } ->
      add_str b "ev" "probe";
      add_int b "seq" seq;
      add_int b "backoff" backoff
  | Share_corrupted { seq } ->
      add_str b "ev" "share_corrupt";
      add_int b "seq" seq
  | Share_rejected { reason } ->
      add_str b "ev" "share_reject";
      add_str b "reason" reason
  | Share_ingested { unacked_total; unread_total; ackdelay_total } ->
      add_str b "ev" "share";
      add_int b "unacked" unacked_total;
      add_int b "unread" unread_total;
      add_int b "ackdelay" ackdelay_total
  | Estimate_computed { latency_us; throughput; window_us } ->
      add_str b "ev" "estimate";
      (match latency_us with
      | Some l -> add_float b "latency_us" l
      | None -> Buffer.add_string b ",\"latency_us\":null");
      add_float b "throughput" throughput;
      add_float b "window_us" window_us
  | Request_done { latency_us } ->
      add_str b "ev" "request";
      add_float b "latency_us" latency_us
  | Req_issued { req; off; len } ->
      add_str b "ev" "req_issued";
      add_int b "req" req;
      add_int b "off" off;
      add_int b "len" len
  | Req_sent { req } ->
      add_str b "ev" "req_sent";
      add_int b "req" req
  | Req_complete { req } ->
      add_str b "ev" "req_complete";
      add_int b "req" req
  | Srv_start { req } ->
      add_str b "ev" "srv_start";
      add_int b "req" req
  | Srv_reply { req; off; len } ->
      add_str b "ev" "srv_reply";
      add_int b "req" req;
      add_int b "off" off;
      add_int b "len" len
  | Audit_window { queue; l_avg; lambda_per_s; w_us; rel_err } ->
      add_str b "ev" "audit";
      add_str b "queue" queue;
      add_float b "l" l_avg;
      add_float b "lambda" lambda_per_s;
      add_float b "w_us" w_us;
      add_float b "rel_err" rel_err
  | Message { tag; detail } ->
      add_str b "ev" "msg";
      add_str b "tag" tag;
      add_str b "detail" detail
  | Decision_made { decision; on_us; off_us; mode; action; reason; frozen; stale_us }
    ->
      add_str b "ev" "decision";
      add_int b "decision" decision;
      (match on_us with
      | Some v -> add_float b "on_us" v
      | None -> Buffer.add_string b ",\"on_us\":null");
      (match off_us with
      | Some v -> add_float b "off_us" v
      | None -> Buffer.add_string b ",\"off_us\":null");
      add_str b "mode" mode;
      add_str b "action" action;
      add_str b "reason" reason;
      add_bool b "frozen" frozen;
      add_float b "stale_us" stale_us
  | Decision_outcome { decision; mean_us; p99_us; n } ->
      add_str b "ev" "outcome";
      add_int b "decision" decision;
      add_float b "mean_us" mean_us;
      add_float b "p99_us" p99_us;
      add_int b "n" n
  | Conn_opened { gen; inherited } ->
      add_str b "ev" "conn_open";
      add_int b "gen" gen;
      add_bool b "inherited" inherited
  | Conn_closed { gen; completed } ->
      add_str b "ev" "conn_close";
      add_int b "gen" gen;
      add_int b "completed" completed
  | Lb_assigned { shard; policy } ->
      add_str b "ev" "lb_assign";
      add_int b "shard" shard;
      add_str b "policy" policy
  | Shard_enqueued { shard; depth } ->
      add_str b "ev" "shard_enq";
      add_int b "shard" shard;
      add_int b "depth" depth);
  Buffer.add_char b '}';
  Buffer.contents b

(* {1 Minimal flat-JSON-object parser}

   Only what the exporter above (and [Metrics.sample_to_json]) produces:
   one object per line, scalar values (string / number / bool / null),
   no nesting.  Hand-rolled because the repo deliberately has no JSON
   dependency. *)

type json_value = Jstr of string | Jnum of float | Jbool of bool | Jnull

exception Parse_error of string

let parse_flat_object line =
  let n = String.length line in
  let pos = ref 0 in
  let err msg = raise (Parse_error msg) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match line.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && line.[!pos] = c then incr pos
    else err (Printf.sprintf "expected '%c' at offset %d" c !pos)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then err "unterminated string"
      else
        match line.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            if !pos >= n then err "truncated escape";
            (match line.[!pos] with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                if !pos + 4 >= n then err "truncated \\u escape";
                let hex = String.sub line (!pos + 1) 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> err "bad \\u escape"
                in
                pos := !pos + 4;
                (* Only BMP codepoints below 0x80 are emitted by our
                   exporter; decode others as '?' rather than UTF-8. *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else Buffer.add_char b '?'
            | c -> err (Printf.sprintf "bad escape '\\%c'" c));
            incr pos;
            go ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstr (parse_string ())
    | Some 't' ->
        if !pos + 4 <= n && String.sub line !pos 4 = "true" then begin
          pos := !pos + 4;
          Jbool true
        end
        else err "bad literal"
    | Some 'f' ->
        if !pos + 5 <= n && String.sub line !pos 5 = "false" then begin
          pos := !pos + 5;
          Jbool false
        end
        else err "bad literal"
    | Some 'n' ->
        if !pos + 4 <= n && String.sub line !pos 4 = "null" then begin
          pos := !pos + 4;
          Jnull
        end
        else err "bad literal"
    | Some ('-' | '0' .. '9') ->
        let start = !pos in
        while
          !pos < n
          &&
          match line.[!pos] with
          | '-' | '+' | '.' | 'e' | 'E' | '0' .. '9' -> true
          | _ -> false
        do
          incr pos
        done;
        let s = String.sub line start (!pos - start) in
        (try Jnum (float_of_string s)
         with _ -> err (Printf.sprintf "bad number %S" s))
    | Some c -> err (Printf.sprintf "unexpected '%c' at offset %d" c !pos)
    | None -> err "unexpected end of input"
  in
  try
    skip_ws ();
    expect '{';
    skip_ws ();
    let fields = ref [] in
    (if peek () = Some '}' then incr pos
     else
       let rec members () =
         skip_ws ();
         let key = parse_string () in
         skip_ws ();
         expect ':';
         let v = parse_value () in
         fields := (key, v) :: !fields;
         skip_ws ();
         match peek () with
         | Some ',' ->
             incr pos;
             members ()
         | Some '}' -> incr pos
         | _ -> err (Printf.sprintf "expected ',' or '}' at offset %d" !pos)
       in
       members ());
    skip_ws ();
    if !pos <> n then err "trailing garbage after object";
    Ok (List.rev !fields)
  with Parse_error msg -> Error msg

let field fields key = List.assoc_opt key fields

let num fields key =
  match field fields key with
  | Some (Jnum v) -> Ok v
  | Some _ -> Error (Printf.sprintf "field %S is not a number" key)
  | None -> Error (Printf.sprintf "missing field %S" key)

let int_field fields key = Result.map int_of_float (num fields key)

let str fields key =
  match field fields key with
  | Some (Jstr v) -> Ok v
  | Some _ -> Error (Printf.sprintf "field %S is not a string" key)
  | None -> Error (Printf.sprintf "missing field %S" key)

let bool_field fields key =
  match field fields key with
  | Some (Jbool v) -> Ok v
  | Some _ -> Error (Printf.sprintf "field %S is not a bool" key)
  | None -> Error (Printf.sprintf "missing field %S" key)

let ( let* ) = Result.bind

(* Raised (internally) by the event decoder when the ["ev"] tag has no
   case: the line is well-formed JSONL from a newer writer, not
   garbage, and forward-compat readers may skip it. *)
exception Unknown_ev of string

let record_of_json_ext line =
  let* fields = parse_flat_object line in
  let* at_ns = int_field fields "at_ns" in
  let* ev = str fields "ev" in
  let run = match field fields "run" with Some (Jstr r) -> Some r | _ -> None in
  let id = match field fields "conn" with Some (Jstr c) -> c | _ -> "" in
  let* event =
    match ev with
    | "tx" | "retx" ->
        let* seq = int_field fields "seq" in
        let* len = int_field fields "len" in
        let* push = bool_field fields "push" in
        Ok (Segment_sent { seq; len; push; retx = ev = "retx" })
    | "rx" ->
        let* seq = int_field fields "seq" in
        let* fresh = int_field fields "fresh" in
        Ok (Segment_received { seq; fresh })
    | "ack" ->
        let* acked = int_field fields "acked" in
        let* una = int_field fields "una" in
        Ok (Ack_received { acked; una })
    | "hold" ->
        let* chunk = int_field fields "chunk" in
        let* in_flight = int_field fields "in_flight" in
        Ok (Nagle_hold { chunk; in_flight })
    | "toggle" ->
        let* enabled = bool_field fields "enabled" in
        Ok (Nagle_toggle { enabled })
    | "cork" ->
        let* chunk = int_field fields "chunk" in
        Ok (Cork_hold { chunk })
    | "delack_fire" ->
        let* pending = int_field fields "pending" in
        Ok (Delack_fire { pending })
    | "delack_cancel" ->
        let* pending = int_field fields "pending" in
        Ok (Delack_cancel { pending })
    | "fin" ->
        let* rcv_nxt = int_field fields "rcv_nxt" in
        Ok (Fin_received { rcv_nxt })
    | "drop" ->
        let* seq = int_field fields "seq" in
        let* len = int_field fields "len" in
        let* reason = str fields "reason" in
        Ok (Segment_dropped { seq; len; reason })
    | "reorder" ->
        let* seq = int_field fields "seq" in
        let* delay_us = num fields "delay_us" in
        Ok (Segment_reordered { seq; delay_us })
    | "dup" ->
        let* seq = int_field fields "seq" in
        Ok (Segment_duplicated { seq })
    | "challenge" ->
        let* seq = int_field fields "seq" in
        let* kind = str fields "kind" in
        Ok (Segment_challenged { seq; kind })
    | "probe" ->
        let* seq = int_field fields "seq" in
        let* backoff = int_field fields "backoff" in
        Ok (Probe_sent { seq; backoff })
    | "share_corrupt" ->
        let* seq = int_field fields "seq" in
        Ok (Share_corrupted { seq })
    | "share_reject" ->
        let* reason = str fields "reason" in
        Ok (Share_rejected { reason })
    | "share" ->
        let* unacked_total = int_field fields "unacked" in
        let* unread_total = int_field fields "unread" in
        let* ackdelay_total = int_field fields "ackdelay" in
        Ok (Share_ingested { unacked_total; unread_total; ackdelay_total })
    | "estimate" ->
        let latency_us =
          match field fields "latency_us" with
          | Some (Jnum v) -> Some v
          | _ -> None
        in
        let* throughput = num fields "throughput" in
        let* window_us = num fields "window_us" in
        Ok (Estimate_computed { latency_us; throughput; window_us })
    | "request" ->
        let* latency_us = num fields "latency_us" in
        Ok (Request_done { latency_us })
    | "req_issued" ->
        let* req = int_field fields "req" in
        let* off = int_field fields "off" in
        let* len = int_field fields "len" in
        Ok (Req_issued { req; off; len })
    | "req_sent" ->
        let* req = int_field fields "req" in
        Ok (Req_sent { req })
    | "req_complete" ->
        let* req = int_field fields "req" in
        Ok (Req_complete { req })
    | "srv_start" ->
        let* req = int_field fields "req" in
        Ok (Srv_start { req })
    | "srv_reply" ->
        let* req = int_field fields "req" in
        let* off = int_field fields "off" in
        let* len = int_field fields "len" in
        Ok (Srv_reply { req; off; len })
    | "audit" ->
        let* queue = str fields "queue" in
        let* l_avg = num fields "l" in
        let* lambda_per_s = num fields "lambda" in
        let* w_us = num fields "w_us" in
        let* rel_err = num fields "rel_err" in
        Ok (Audit_window { queue; l_avg; lambda_per_s; w_us; rel_err })
    | "msg" ->
        let* tag = str fields "tag" in
        let* detail = str fields "detail" in
        Ok (Message { tag; detail })
    | "decision" ->
        let* decision = int_field fields "decision" in
        let opt key =
          match field fields key with Some (Jnum v) -> Some v | _ -> None
        in
        let* mode = str fields "mode" in
        let* action = str fields "action" in
        let* reason = str fields "reason" in
        let* frozen = bool_field fields "frozen" in
        let* stale_us = num fields "stale_us" in
        Ok
          (Decision_made
             {
               decision;
               on_us = opt "on_us";
               off_us = opt "off_us";
               mode;
               action;
               reason;
               frozen;
               stale_us;
             })
    | "outcome" ->
        let* decision = int_field fields "decision" in
        let* mean_us = num fields "mean_us" in
        let* p99_us = num fields "p99_us" in
        let* n = int_field fields "n" in
        Ok (Decision_outcome { decision; mean_us; p99_us; n })
    | "conn_open" ->
        let* gen = int_field fields "gen" in
        let* inherited = bool_field fields "inherited" in
        Ok (Conn_opened { gen; inherited })
    | "conn_close" ->
        let* gen = int_field fields "gen" in
        let* completed = int_field fields "completed" in
        Ok (Conn_closed { gen; completed })
    | "lb_assign" ->
        let* shard = int_field fields "shard" in
        let* policy = str fields "policy" in
        Ok (Lb_assigned { shard; policy })
    | "shard_enq" ->
        let* shard = int_field fields "shard" in
        let* depth = int_field fields "depth" in
        Ok (Shard_enqueued { shard; depth })
    | other -> raise (Unknown_ev other)
  in
  Ok (run, { at = at_ns; id; event })

let record_of_json line =
  match record_of_json_ext line with
  | exception Unknown_ev other ->
      Error (Printf.sprintf "unknown event type %S" other)
  | r -> r

(* Stream a JSONL trace file without materializing it.  Missing or
   unreadable files and malformed lines are reported as [Error] (with
   the offending line number) so callers can exit non-zero with one
   clear message instead of silently doing nothing.

   [?unknown] opts into forward compatibility: well-formed lines whose
   ["ev"] tag this reader has no case for (a newer writer's event
   kinds) are skipped and reported to the callback instead of failing
   the fold.  Malformed lines still fail either way. *)
let fold_jsonl ?unknown path ~init ~f =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let acc = ref init in
      let line_no = ref 0 in
      let err = ref None in
      (try
         while !err = None do
           let line = input_line ic in
           incr line_no;
           if String.trim line <> "" then
             match record_of_json_ext line with
             | Ok (run, r) -> acc := f !acc run r
             | exception Unknown_ev ev -> (
                 match unknown with
                 | Some cb -> cb ev
                 | None ->
                     err :=
                       Some
                         (Printf.sprintf "%s: line %d: unknown event type %S"
                            path !line_no ev))
             | Error msg ->
                 err := Some (Printf.sprintf "%s: line %d: %s" path !line_no msg)
         done
       with End_of_file -> ());
      close_in ic;
      match !err with Some msg -> Error msg | None -> Ok !acc

let load_jsonl path =
  match
    fold_jsonl path ~init:[] ~f:(fun acc run r -> (run, r) :: acc)
  with
  | Error _ as e -> e
  | Ok [] -> Error (Printf.sprintf "%s: no trace records" path)
  | Ok rev -> Ok (List.rev rev)

(* {1 Binary trace format}

   A compact fixed-width encoding of the same records.  Layout (all
   integers little-endian):

     header   magic "e2ebtrc1" (8B) | version u16 | header_len u16
              | reserved u32                                   = 16 B
     records  kind u8 | flags u8 | id_ref u16 | at_ns i64
              | payload (fixed width per kind, see below)
              | run_ref u16 when flags bit 7
     trailer  name table then string table, each entry
              u32 byte length + raw bytes
     footer   trailer_off i64 | n_records i64 | n_names u32
              | n_strs u32 | magic "e2ebtrcF" (8B)             = 32 B

   Connection ids and run labels are interned into the u16-indexed
   name table (at most 65536 distinct values); free-form strings
   (drop reasons, audit queue names, message tags/details) go into the
   u32-indexed string table.  Both tables are buffered in memory and
   written after the records, so the writer streams records with
   memory proportional to the number of distinct strings only, and a
   reader loads the tables from the footer before scanning records.

   Flags: bit 0 and bit 1 carry kind-specific booleans (PSH / retx /
   Nagle-enabled / latency-present), bit 6 ("wide") widens every
   u32-slot payload field of the record to i64 when any value
   overflows 32 bits, bit 7 marks a trailing run-label reference.
   i64 fields (stream offsets, cumulative totals, timestamps) and f64
   fields (IEEE bits) always round-trip OCaml ints and floats
   exactly. *)

module Binary = struct
  let magic = "e2ebtrc1"
  let footer_magic = "e2ebtrcF"

  (* v2 added kinds 26/27 (Decision_made / Decision_outcome) and flag
     bit 2; v3 added kinds 28/29 (Conn_opened / Conn_closed); v4 added
     kinds 30/31 (Lb_assigned / Shard_enqueued).  v1..v3 files remain
     readable.

     Forward compatibility from v4 on: writers of any later version
     must encode kinds unknown to this reader with an explicit u16
     payload-length field immediately after the 12-byte record prefix
     (known kinds keep their fixed layouts), so a v4 reader given an
     [?unknown] callback can skip newer records instead of failing. *)
  let version = 4
  let min_read_version = 1
  let header_len = 16
  let footer_len = 32

  let flag_b0 = 0x01
  let flag_b1 = 0x02
  let flag_b2 = 0x04
  let flag_wide = 0x40
  let flag_run = 0x80

  let kind_of_event = function
    | Segment_sent _ -> 0
    | Segment_received _ -> 1
    | Ack_received _ -> 2
    | Nagle_hold _ -> 3
    | Nagle_toggle _ -> 4
    | Cork_hold _ -> 5
    | Delack_fire _ -> 6
    | Delack_cancel _ -> 7
    | Fin_received _ -> 8
    | Segment_dropped _ -> 9
    | Segment_reordered _ -> 10
    | Segment_duplicated _ -> 11
    | Share_corrupted _ -> 12
    | Share_rejected _ -> 13
    | Share_ingested _ -> 14
    | Estimate_computed _ -> 15
    | Request_done _ -> 16
    | Req_issued _ -> 17
    | Req_sent _ -> 18
    | Req_complete _ -> 19
    | Srv_start _ -> 20
    | Srv_reply _ -> 21
    | Audit_window _ -> 22
    | Message _ -> 23
    | Segment_challenged _ -> 24
    | Probe_sent _ -> 25
    | Decision_made _ -> 26
    | Decision_outcome _ -> 27
    | Conn_opened _ -> 28
    | Conn_closed _ -> 29
    | Lb_assigned _ -> 30
    | Shard_enqueued _ -> 31

  (* Payload size in bytes for a (kind, wide) pair; the prefix (4B) and
     the optional run ref (2B) are accounted for separately.  [num] is
     the width of a u32-slot field under the record's wide flag. *)
  let payload_len kind ~wide =
    let num = if wide then 8 else 4 in
    match kind with
    | 0 | 1 | 2 -> 8 + num (* seq/una i64 + len/fresh/acked *)
    | 3 -> 2 * num (* chunk + in_flight *)
    | 4 -> 0 (* toggle: flags only *)
    | 5 | 6 | 7 -> num (* chunk / pending *)
    | 8 -> 8 (* rcv_nxt i64 *)
    | 9 -> 8 + num + 4 (* seq + len + reason ref *)
    | 10 -> 16 (* seq + delay f64 *)
    | 11 | 12 -> 8 (* seq i64 *)
    | 13 -> 4 (* reason ref *)
    | 14 -> 3 * num (* share totals *)
    | 15 -> 24 (* latency + throughput + window f64 *)
    | 16 -> 8 (* latency f64 *)
    | 17 | 21 -> num + 8 + num (* req + off i64 + len *)
    | 18 | 19 | 20 -> num (* req *)
    | 22 -> 4 + 32 (* queue ref + 4 f64 *)
    | 23 -> 8 (* tag ref + detail ref *)
    | 24 -> 8 + 4 (* seq i64 + kind ref *)
    | 25 -> 8 + num (* seq i64 + backoff *)
    | 26 -> num + 16 + 12 + 8 (* decision + on/off f64 + 3 refs + stale f64 *)
    | 27 -> (2 * num) + 16 (* decision + n + mean/p99 f64 *)
    | 28 -> num (* gen; inherited in flag b0 *)
    | 29 -> 2 * num (* gen + completed *)
    | 30 -> num + 4 (* shard + policy ref *)
    | 31 -> 2 * num (* shard + depth *)
    | k -> invalid_arg (Printf.sprintf "Trace.Binary: unknown kind %d" k)

  let u32_ok v = v >= 0 && v <= 0xFFFF_FFFF

  type writer = {
    oc : out_channel;
    names : (string, int) Hashtbl.t;
    mutable names_rev : string list;
    mutable n_names : int;
    strs : (string, int) Hashtbl.t;
    mutable strs_rev : string list;
    mutable n_strs : int;
    buf : Buffer.t;
    mutable n_records : int;
    mutable finished : bool;
  }

  let writer oc =
    let b = Buffer.create 64 in
    Buffer.add_string b magic;
    Buffer.add_uint16_le b version;
    Buffer.add_uint16_le b header_len;
    Buffer.add_int32_le b 0l;
    Buffer.output_buffer oc b;
    {
      oc;
      names = Hashtbl.create 64;
      names_rev = [];
      n_names = 0;
      strs = Hashtbl.create 64;
      strs_rev = [];
      n_strs = 0;
      buf = b;
      n_records = 0;
      finished = false;
    }

  let intern_name w s =
    match Hashtbl.find_opt w.names s with
    | Some i -> i
    | None ->
        if w.n_names > 0xFFFF then
          failwith "Trace.Binary: more than 65536 distinct ids/run labels";
        let i = w.n_names in
        Hashtbl.add w.names s i;
        w.names_rev <- s :: w.names_rev;
        w.n_names <- i + 1;
        i

  let intern_str w s =
    match Hashtbl.find_opt w.strs s with
    | Some i -> i
    | None ->
        let i = w.n_strs in
        Hashtbl.add w.strs s i;
        w.strs_rev <- s :: w.strs_rev;
        w.n_strs <- i + 1;
        i

  let add_u32 b v = Buffer.add_int32_le b (Int32.of_int v)
  let add_i64 b v = Buffer.add_int64_le b (Int64.of_int v)
  let add_f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)

  (* A u32-slot field: 4 bytes normally, widened to i64 when the
     record's wide flag is set. *)
  let add_num b ~wide v = if wide then add_i64 b v else add_u32 b v

  let write w ?run r =
    if w.finished then invalid_arg "Trace.Binary.write: writer is finished";
    let b = w.buf in
    Buffer.clear b;
    let kind = kind_of_event r.event in
    let bools, narrow =
      match r.event with
      | Segment_sent { len; push; retx; _ } ->
          ( (if push then flag_b0 else 0) lor (if retx then flag_b1 else 0),
            u32_ok len )
      | Segment_received { fresh; _ } -> (0, u32_ok fresh)
      | Ack_received { acked; _ } -> (0, u32_ok acked)
      | Nagle_hold { chunk; in_flight } -> (0, u32_ok chunk && u32_ok in_flight)
      | Nagle_toggle { enabled } -> ((if enabled then flag_b0 else 0), true)
      | Cork_hold { chunk } -> (0, u32_ok chunk)
      | Delack_fire { pending } | Delack_cancel { pending } ->
          (0, u32_ok pending)
      | Segment_dropped { len; _ } -> (0, u32_ok len)
      | Share_ingested { unacked_total; unread_total; ackdelay_total } ->
          (0, u32_ok unacked_total && u32_ok unread_total && u32_ok ackdelay_total)
      | Estimate_computed { latency_us; _ } ->
          ((if latency_us <> None then flag_b0 else 0), true)
      | Req_issued { req; len; _ } | Srv_reply { req; len; _ } ->
          (0, u32_ok req && u32_ok len)
      | Req_sent { req } | Req_complete { req } | Srv_start { req } ->
          (0, u32_ok req)
      | Probe_sent { backoff; _ } -> (0, u32_ok backoff)
      | Decision_made { decision; on_us; off_us; frozen; _ } ->
          ( (if frozen then flag_b0 else 0)
            lor (if on_us <> None then flag_b1 else 0)
            lor (if off_us <> None then flag_b2 else 0),
            u32_ok decision )
      | Decision_outcome { decision; n; _ } -> (0, u32_ok decision && u32_ok n)
      | Conn_opened { gen; inherited } ->
          ((if inherited then flag_b0 else 0), u32_ok gen)
      | Conn_closed { gen; completed } -> (0, u32_ok gen && u32_ok completed)
      | Lb_assigned { shard; _ } -> (0, u32_ok shard)
      | Shard_enqueued { shard; depth } -> (0, u32_ok shard && u32_ok depth)
      | Fin_received _ | Segment_reordered _ | Segment_duplicated _
      | Segment_challenged _ | Share_corrupted _ | Share_rejected _
      | Request_done _ | Audit_window _ | Message _ ->
          (0, true)
    in
    let wide = not narrow in
    let flags =
      bools
      lor (if wide then flag_wide else 0)
      lor match run with Some _ -> flag_run | None -> 0
    in
    let id_ref = intern_name w r.id in
    Buffer.add_uint8 b kind;
    Buffer.add_uint8 b flags;
    Buffer.add_uint16_le b id_ref;
    add_i64 b (Time.to_ns r.at);
    (match r.event with
    | Segment_sent { seq; len; _ } ->
        add_i64 b seq;
        add_num b ~wide len
    | Segment_received { seq; fresh } ->
        add_i64 b seq;
        add_num b ~wide fresh
    | Ack_received { acked; una } ->
        add_i64 b una;
        add_num b ~wide acked
    | Nagle_hold { chunk; in_flight } ->
        add_num b ~wide chunk;
        add_num b ~wide in_flight
    | Nagle_toggle _ -> ()
    | Cork_hold { chunk } -> add_num b ~wide chunk
    | Delack_fire { pending } | Delack_cancel { pending } ->
        add_num b ~wide pending
    | Fin_received { rcv_nxt } -> add_i64 b rcv_nxt
    | Segment_dropped { seq; len; reason } ->
        add_i64 b seq;
        add_num b ~wide len;
        add_u32 b (intern_str w reason)
    | Segment_reordered { seq; delay_us } ->
        add_i64 b seq;
        add_f64 b delay_us
    | Segment_duplicated { seq } | Share_corrupted { seq } -> add_i64 b seq
    | Share_rejected { reason } -> add_u32 b (intern_str w reason)
    | Share_ingested { unacked_total; unread_total; ackdelay_total } ->
        add_num b ~wide unacked_total;
        add_num b ~wide unread_total;
        add_num b ~wide ackdelay_total
    | Estimate_computed { latency_us; throughput; window_us } ->
        add_f64 b (match latency_us with Some l -> l | None -> 0.0);
        add_f64 b throughput;
        add_f64 b window_us
    | Request_done { latency_us } -> add_f64 b latency_us
    | Req_issued { req; off; len } | Srv_reply { req; off; len } ->
        add_num b ~wide req;
        add_i64 b off;
        add_num b ~wide len
    | Req_sent { req } | Req_complete { req } | Srv_start { req } ->
        add_num b ~wide req
    | Audit_window { queue; l_avg; lambda_per_s; w_us; rel_err } ->
        add_u32 b (intern_str w queue);
        add_f64 b l_avg;
        add_f64 b lambda_per_s;
        add_f64 b w_us;
        add_f64 b rel_err
    | Message { tag; detail } ->
        add_u32 b (intern_str w (tag : string));
        add_u32 b (intern_str w detail)
    | Segment_challenged { seq; kind } ->
        add_i64 b seq;
        add_u32 b (intern_str w kind)
    | Probe_sent { seq; backoff } ->
        add_i64 b seq;
        add_num b ~wide backoff
    | Decision_made
        { decision; on_us; off_us; mode; action; reason; stale_us; frozen = _ } ->
        add_num b ~wide decision;
        add_f64 b (match on_us with Some v -> v | None -> 0.0);
        add_f64 b (match off_us with Some v -> v | None -> 0.0);
        add_u32 b (intern_str w mode);
        add_u32 b (intern_str w action);
        add_u32 b (intern_str w reason);
        add_f64 b stale_us
    | Decision_outcome { decision; mean_us; p99_us; n } ->
        add_num b ~wide decision;
        add_num b ~wide n;
        add_f64 b mean_us;
        add_f64 b p99_us
    | Conn_opened { gen; inherited = _ } -> add_num b ~wide gen
    | Conn_closed { gen; completed } ->
        add_num b ~wide gen;
        add_num b ~wide completed
    | Lb_assigned { shard; policy } ->
        add_num b ~wide shard;
        add_u32 b (intern_str w policy)
    | Shard_enqueued { shard; depth } ->
        add_num b ~wide shard;
        add_num b ~wide depth);
    (match run with
    | Some label -> Buffer.add_uint16_le b (intern_name w label)
    | None -> ());
    Buffer.output_buffer w.oc b;
    w.n_records <- w.n_records + 1

  let written w = w.n_records

  let finish w =
    if not w.finished then begin
      w.finished <- true;
      let trailer_off = LargeFile.pos_out w.oc in
      let b = w.buf in
      let emit_table rev =
        List.iter
          (fun s ->
            Buffer.clear b;
            add_u32 b (String.length s);
            Buffer.output_buffer w.oc b;
            output_string w.oc s)
          (List.rev rev)
      in
      emit_table w.names_rev;
      emit_table w.strs_rev;
      Buffer.clear b;
      Buffer.add_int64_le b trailer_off;
      add_i64 b w.n_records;
      add_u32 b w.n_names;
      add_u32 b w.n_strs;
      Buffer.add_string b footer_magic;
      Buffer.output_buffer w.oc b;
      flush w.oc
    end

  (* {2 Reading} *)

  exception Corrupt of string

  let get_u32 by off = Int32.to_int (Bytes.get_int32_le by off) land 0xFFFF_FFFF
  let get_i64 by off = Int64.to_int (Bytes.get_int64_le by off)
  let get_f64 by off = Int64.float_of_bits (Bytes.get_int64_le by off)

  let is_binary path =
    match open_in_bin path with
    | exception Sys_error _ -> false
    | ic ->
        let by = Bytes.create 8 in
        let ok =
          try
            really_input ic by 0 8;
            Bytes.to_string by = magic
          with End_of_file -> false
        in
        close_in ic;
        ok

  let fold_file ?unknown path ~init ~f =
    match open_in_bin path with
    | exception Sys_error msg -> Error msg
    | ic -> (
        let corrupt fmt =
          Printf.ksprintf (fun m -> raise (Corrupt (path ^ ": " ^ m))) fmt
        in
        let scratch = Bytes.create 64 in
        let read n =
          (try really_input ic scratch 0 n
           with End_of_file -> corrupt "truncated file");
          scratch
        in
        let result =
          try
            let size = in_channel_length ic in
            if size < header_len + footer_len then corrupt "file too short";
            let by = read 8 in
            if Bytes.sub_string by 0 8 <> magic then corrupt "bad magic";
            let by = read 8 in
            let v = Bytes.get_uint16_le by 0 in
            (* With an [?unknown] callback, files from newer writers are
               acceptable: their new kinds carry explicit lengths (see
               the version note above) and get skipped record by
               record.  Without one, stay strict. *)
            if v < min_read_version || (v > version && unknown = None) then
              corrupt "unsupported version %d" v;
            let hlen = Bytes.get_uint16_le by 2 in
            seek_in ic (size - footer_len);
            let by = read footer_len in
            if Bytes.sub_string by 24 8 <> footer_magic then
              corrupt "bad footer magic";
            let trailer_off = get_i64 by 0 in
            let n_records = get_i64 by 8 in
            let n_names = get_u32 by 16 in
            let n_strs = get_u32 by 20 in
            if trailer_off < hlen || trailer_off > size - footer_len then
              corrupt "trailer offset out of bounds";
            seek_in ic trailer_off;
            let read_table n =
              let a = Array.make n "" in
              for i = 0 to n - 1 do
                let len = get_u32 (read 4) 0 in
                if len > size then corrupt "bad table entry";
                let s = Bytes.create len in
                (try really_input ic s 0 len
                 with End_of_file -> corrupt "truncated table");
                a.(i) <- Bytes.unsafe_to_string s
              done;
              a
            in
            let names = read_table n_names in
            let strs = read_table n_strs in
            let name i =
              if i < Array.length names then names.(i)
              else corrupt "name ref %d out of range" i
            in
            let str i =
              if i < Array.length strs then strs.(i)
              else corrupt "string ref %d out of range" i
            in
            seek_in ic hlen;
            let acc = ref init in
            for rec_no = 0 to n_records - 1 do
              let by = read 12 in
              let kind = Bytes.get_uint8 by 0 in
              let flags = Bytes.get_uint8 by 1 in
              let id_ref = Bytes.get_uint16_le by 2 in
              let at = get_i64 by 4 in
              let wide = flags land flag_wide <> 0 in
              match
                try Some (payload_len kind ~wide)
                with Invalid_argument _ -> None
              with
              | None -> (
                  match unknown with
                  | Some cb ->
                      (* Newer-writer record: skip its explicit-length
                         payload and optional run ref, count it. *)
                      let plen = Bytes.get_uint16_le (read 2) 0 in
                      seek_in ic (pos_in ic + plen);
                      if flags land flag_run <> 0 then ignore (read 2);
                      cb (Printf.sprintf "kind %d" kind)
                  | None -> corrupt "record %d: unknown kind %d" rec_no kind)
              | Some plen ->
              let by = read plen in
              let num off = if wide then get_i64 by off else get_u32 by off in
              let nsz = if wide then 8 else 4 in
              let b0 = flags land flag_b0 <> 0 in
              let b1 = flags land flag_b1 <> 0 in
              let event =
                match kind with
                | 0 ->
                    Segment_sent
                      { seq = get_i64 by 0; len = num 8; push = b0; retx = b1 }
                | 1 -> Segment_received { seq = get_i64 by 0; fresh = num 8 }
                | 2 -> Ack_received { una = get_i64 by 0; acked = num 8 }
                | 3 -> Nagle_hold { chunk = num 0; in_flight = num nsz }
                | 4 -> Nagle_toggle { enabled = b0 }
                | 5 -> Cork_hold { chunk = num 0 }
                | 6 -> Delack_fire { pending = num 0 }
                | 7 -> Delack_cancel { pending = num 0 }
                | 8 -> Fin_received { rcv_nxt = get_i64 by 0 }
                | 9 ->
                    Segment_dropped
                      {
                        seq = get_i64 by 0;
                        len = num 8;
                        reason = str (get_u32 by (8 + nsz));
                      }
                | 10 ->
                    Segment_reordered
                      { seq = get_i64 by 0; delay_us = get_f64 by 8 }
                | 11 -> Segment_duplicated { seq = get_i64 by 0 }
                | 12 -> Share_corrupted { seq = get_i64 by 0 }
                | 13 -> Share_rejected { reason = str (get_u32 by 0) }
                | 14 ->
                    Share_ingested
                      {
                        unacked_total = num 0;
                        unread_total = num nsz;
                        ackdelay_total = num (2 * nsz);
                      }
                | 15 ->
                    Estimate_computed
                      {
                        latency_us = (if b0 then Some (get_f64 by 0) else None);
                        throughput = get_f64 by 8;
                        window_us = get_f64 by 16;
                      }
                | 16 -> Request_done { latency_us = get_f64 by 0 }
                | 17 ->
                    Req_issued
                      { req = num 0; off = get_i64 by nsz; len = num (nsz + 8) }
                | 18 -> Req_sent { req = num 0 }
                | 19 -> Req_complete { req = num 0 }
                | 20 -> Srv_start { req = num 0 }
                | 21 ->
                    Srv_reply
                      { req = num 0; off = get_i64 by nsz; len = num (nsz + 8) }
                | 22 ->
                    Audit_window
                      {
                        queue = str (get_u32 by 0);
                        l_avg = get_f64 by 4;
                        lambda_per_s = get_f64 by 12;
                        w_us = get_f64 by 20;
                        rel_err = get_f64 by 28;
                      }
                | 23 ->
                    Message
                      { tag = str (get_u32 by 0); detail = str (get_u32 by 4) }
                | 24 ->
                    Segment_challenged
                      { seq = get_i64 by 0; kind = str (get_u32 by 8) }
                | 25 -> Probe_sent { seq = get_i64 by 0; backoff = num 8 }
                | 26 ->
                    Decision_made
                      {
                        decision = num 0;
                        on_us =
                          (if flags land flag_b1 <> 0 then
                             Some (get_f64 by nsz)
                           else None);
                        off_us =
                          (if flags land flag_b2 <> 0 then
                             Some (get_f64 by (nsz + 8))
                           else None);
                        mode = str (get_u32 by (nsz + 16));
                        action = str (get_u32 by (nsz + 20));
                        reason = str (get_u32 by (nsz + 24));
                        frozen = b0;
                        stale_us = get_f64 by (nsz + 28);
                      }
                | 27 ->
                    Decision_outcome
                      {
                        decision = num 0;
                        n = num nsz;
                        mean_us = get_f64 by (2 * nsz);
                        p99_us = get_f64 by ((2 * nsz) + 8);
                      }
                | 28 -> Conn_opened { gen = num 0; inherited = b0 }
                | 29 -> Conn_closed { gen = num 0; completed = num nsz }
                | 30 ->
                    Lb_assigned { shard = num 0; policy = str (get_u32 by nsz) }
                | 31 -> Shard_enqueued { shard = num 0; depth = num nsz }
                | k -> corrupt "record %d: unknown kind %d" rec_no k
              in
              let run =
                if flags land flag_run <> 0 then
                  Some (name (Bytes.get_uint16_le (read 2) 0))
                else None
              in
              acc := f !acc run { at; id = name id_ref; event }
            done;
            Ok !acc
          with
          | Corrupt msg -> Error msg
          | Sys_error msg -> Error msg
        in
        close_in ic;
        result)

  let load_file path =
    match fold_file path ~init:[] ~f:(fun acc run r -> (run, r) :: acc) with
    | Error _ as e -> e
    | Ok rev -> Ok (List.rev rev)
end

(* Fold over a trace file in either format, sniffing the binary magic. *)
let fold_file ?unknown path ~init ~f =
  if Binary.is_binary path then Binary.fold_file ?unknown path ~init ~f
  else fold_jsonl ?unknown path ~init ~f
