(** Imperative binary min-heap.

    The event loop's priority queue.  Elements are ordered by a
    user-supplied comparison; ties are broken by insertion order only if
    the comparison says so (the engine encodes a sequence number in its
    keys to obtain deterministic FIFO tie-breaking). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Fresh empty heap ordered by [cmp] (smallest element first). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element.  Vacated slots are
    re-pointed at live elements (and the backing array is dropped when
    the heap fully drains), so popped values never linger in the
    heap's storage. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Elements in unspecified order (heap array order); for tests. *)
