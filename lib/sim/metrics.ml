(* A small registry of named instruments.  Sources are registered once
   (counters and histograms are get-or-create; gauges replace) and read
   out together by [sample], which flattens everything into pure
   [(name, float)] pairs — closures never escape into samples, so
   sampled output stays safe for structural comparison across runs. *)

type counter = { c_name : string; mutable c_value : int }

type source =
  | Counter of counter
  | Gauge of (unit -> float)
  | Hist of Histo.t

type t = { mutable sources : (string * source) list (* newest first *) }

let create () = { sources = [] }
let find_source t name = List.assoc_opt name t.sources

let wrong_kind name what =
  invalid_arg
    (Printf.sprintf "Metrics: %S already registered as a different kind (%s)"
       name what)

let counter t name =
  match find_source t name with
  | Some (Counter c) -> c
  | Some _ -> wrong_kind name "wanted counter"
  | None ->
      let c = { c_name = name; c_value = 0 } in
      t.sources <- (name, Counter c) :: t.sources;
      c

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let counter_name c = c.c_name
let counter_value c = c.c_value

let gauge t name f =
  if List.mem_assoc name t.sources then
    t.sources <-
      List.map
        (fun (n, src) ->
          if String.equal n name then
            match src with
            | Gauge _ -> (n, Gauge f)
            | _ -> wrong_kind name "wanted gauge"
          else (n, src))
        t.sources
  else t.sources <- (name, Gauge f) :: t.sources

let histogram t name =
  match find_source t name with
  | Some (Hist h) -> h
  | Some _ -> wrong_kind name "wanted histogram"
  | None ->
      let h = Histo.create () in
      t.sources <- (name, Hist h) :: t.sources;
      h

let names t = List.rev_map fst t.sources

type sample = { s_at : Time.t; values : (string * float) list }

let sample t ~at =
  let values =
    List.fold_left
      (fun acc (name, src) ->
        match src with
        | Counter c -> (name, float_of_int c.c_value) :: acc
        | Gauge f -> (name, f ()) :: acc
        | Hist h ->
            (name ^ ".count", float_of_int (Histo.count h))
            :: (name ^ ".mean", Option.value (Histo.mean h) ~default:0.0)
            :: (name ^ ".p99", Option.value (Histo.quantile h 99.0) ~default:0.0)
            :: acc)
      [] t.sources
  in
  { s_at = at; values }

let sample_to_json ?run s =
  let b = Buffer.create 128 in
  Buffer.add_string b (Printf.sprintf "{\"at_ns\":%d" (Time.to_ns s.s_at));
  (match run with
  | Some run ->
      Buffer.add_string b ",\"run\":\"";
      Buffer.add_string b run;
      Buffer.add_char b '"'
  | None -> ());
  List.iter
    (fun (name, v) ->
      Buffer.add_string b ",\"";
      Buffer.add_string b name;
      Buffer.add_string b "\":";
      if Float.is_finite v then Buffer.add_string b (Printf.sprintf "%.17g" v)
      else Buffer.add_string b "null")
    s.values;
  Buffer.add_char b '}';
  Buffer.contents b
