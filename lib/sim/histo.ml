(* Fixed-size log-bucketed latency histogram (HDR-style).

   64 octaves x 32 sub-buckets = 2048 buckets covering [1, 2^64).
   Within an octave the buckets are linear, so the relative bucket
   width is 1/32 ~ 3.1% and a quantile read from a bucket bound is
   within ~1.6% of the true sample — comfortably inside the ~2%
   budget the SLO observatory needs.

   [add] is on the request hot path and must not allocate: the bucket
   index is computed with [Float.log2] (stdlib float externals take
   unboxed floats), the counts live in a plain int array, and the
   running sum lives in a one-element float array because assigning a
   mutable float field of a mixed record boxes the float. *)

let sub_bits = 5
let subs = 1 lsl sub_bits (* 32 *)
let octaves = 64
let n_buckets = octaves * subs (* 2048 *)

type t = {
  buckets : int array; (* length [n_buckets], fixed *)
  mutable count : int;
  sum : float array; (* one slot; avoids boxed mutable float field *)
}

let create () = { buckets = Array.make n_buckets 0; count = 0; sum = [| 0.0 |] }

let reset t =
  Array.fill t.buckets 0 n_buckets 0;
  t.count <- 0;
  t.sum.(0) <- 0.0

(* Bucket index for a value; clamps below 1.0 and above 2^64. *)
let[@inline] index_of_value v =
  if not (v >= 1.0) then 0
  else begin
    let exp = int_of_float (Float.log2 v) in
    let exp = if exp < 0 then 0 else if exp >= octaves then octaves - 1 else exp in
    let lower = Float.pow 2.0 (float_of_int exp) in
    let sub = int_of_float ((v /. lower -. 1.0) *. float_of_int subs) in
    let sub = if sub < 0 then 0 else if sub >= subs then subs - 1 else sub in
    (exp lsl sub_bits) lor sub
  end

(* Inclusive upper bound of bucket [i] — the representative value
   reported by [quantile]. *)
let value_of_index i =
  let exp = i lsr sub_bits and sub = i land (subs - 1) in
  Float.pow 2.0 (float_of_int exp)
  *. (1.0 +. (float_of_int (sub + 1) /. float_of_int subs))

let lower_of_index i =
  let exp = i lsr sub_bits and sub = i land (subs - 1) in
  Float.pow 2.0 (float_of_int exp) *. (1.0 +. (float_of_int sub /. float_of_int subs))

let width_at v =
  let i = index_of_value v in
  value_of_index i -. lower_of_index i

let add t v =
  let i = index_of_value v in
  t.buckets.(i) <- t.buckets.(i) + 1;
  t.count <- t.count + 1;
  t.sum.(0) <- t.sum.(0) +. v

let count t = t.count
let sum t = t.sum.(0)
let mean t = if t.count = 0 then None else Some (t.sum.(0) /. float_of_int t.count)

let quantile t p =
  if t.count = 0 then None
  else begin
    let p = if p < 0.0 then 0.0 else if p > 100.0 then 100.0 else p in
    (* nearest-rank: smallest k with cum(k) >= ceil(p/100 * n) *)
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.count)) in
    let rank = if rank < 1 then 1 else rank in
    let cum = ref 0 and i = ref 0 and found = ref (n_buckets - 1) in
    (try
       while !i < n_buckets do
         cum := !cum + t.buckets.(!i);
         if !cum >= rank then begin
           found := !i;
           raise Exit
         end;
         incr i
       done
     with Exit -> ());
    Some (value_of_index !found)
  end

let merge ~into src =
  for i = 0 to n_buckets - 1 do
    into.buckets.(i) <- into.buckets.(i) + src.buckets.(i)
  done;
  into.count <- into.count + src.count;
  into.sum.(0) <- into.sum.(0) +. src.sum.(0)

let copy t = { buckets = Array.copy t.buckets; count = t.count; sum = [| t.sum.(0) |] }
