(** Online Little's-law audit.

    For each named queue this module measures, independently:

    - [L] — time-averaged occupancy, from an exact time-weighted
      occupancy integral in integer unit·ns;
    - [λ] — arrival rate, from an arrival counter;
    - [W] — mean wait, by pairing departures with their arrival times
      through a FIFO of outstanding units (valid for the FIFO queues
      the paper models: sent-unacked bytes, received-unread bytes,
      delayed-ACK segments).

    Little's law says L = λW in steady state; over a finite window the
    identity holds up to boundary terms from units in flight across
    the window edges.  [report] returns the relative error
    |L − λW| / max(L, λW) per queue, an executable cross-check of the
    queue accounting behind the paper's Eq. (1) estimator.

    All bookkeeping is integer arithmetic driven by the caller's
    timestamps — no engine interaction, no floating point until
    [report] — so audited runs are bit-identical to unaudited ones and
    across sequential vs domain-parallel execution. *)

type t
(** A registry of audited queues. *)

type queue

val create : unit -> t

val queue : t -> string -> queue
(** Get or create the queue named [string].  Names are unique per [t];
    repeated calls return the same queue. *)

val queue_name : queue -> string

val occupancy : queue -> int
(** Current occupancy in units. *)

val arrival : queue -> at:Time.t -> int -> unit
(** [arrival q ~at n] records [n ≥ 0] units entering the queue at
    [at].  Raises [Invalid_argument] on negative [n].  Timestamps must
    be non-decreasing per queue. *)

val departure : queue -> at:Time.t -> int -> unit
(** [departure q ~at n] records [n ≥ 0] units leaving, matching them
    against the oldest outstanding arrivals (FIFO) to accumulate wait.
    Departing more units than are outstanding contributes zero wait
    for the excess rather than raising. *)

val track : queue -> at:Time.t -> int -> unit
(** [track q ~at n] dispatches on sign: [arrival] for [n > 0],
    [departure] for [n < 0], no-op for [0].  Mirrors the signed-delta
    convention of the estimator's queue trackers. *)

val reset_window : t -> at:Time.t -> unit
(** Start a fresh measurement window at [at] for every queue.
    Occupancy and outstanding units carry over (they are physically
    still queued); the integral, arrival/departure counters and wait
    accumulator reset.  Call at warmup end. *)

type report = {
  queue : string;
  window_us : float;  (** window length *)
  l_avg : float;  (** time-averaged occupancy L *)
  lambda_per_s : float;  (** arrival rate λ, units/second *)
  w_us : float;  (** measured mean wait W *)
  arrivals : int;
  departures : int;
  rel_err : float;
      (** |L − λW| / max(L, λW); [0.] when both terms are ~0 or the
          window is empty. *)
}

val report : t -> at:Time.t -> report list
(** Close the books at [at] and report every queue, in registration
    order.  Does not reset the window. *)

val pp_report : Format.formatter -> report -> unit
