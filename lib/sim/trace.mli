(** Typed structured tracing.

    A bounded ring of [(time, id, event)] records with a JSONL
    export/import round-trip.  The event taxonomy covers the transport
    and estimator behaviour that the paper's batching decisions hinge
    on: segment lifecycle, Nagle/cork holds and toggles, delayed-ACK
    timers, exchange shares and estimator outputs.

    Overhead when disabled: [event] returns before allocating the
    record, and call sites are expected to guard payload construction
    with [enabled] so the whole emission is branch-only.  [emitf]
    likewise consumes its format arguments without evaluating them. *)

type event =
  | Segment_sent of { seq : int; len : int; push : bool; retx : bool }
  | Segment_received of { seq : int; fresh : int }
      (** [fresh] is the number of not-yet-seen payload bytes. *)
  | Ack_received of { acked : int; una : int }
  | Nagle_hold of { chunk : int; in_flight : int }
  | Nagle_toggle of { enabled : bool }
  | Cork_hold of { chunk : int }
  | Delack_fire of { pending : int }
      (** Delayed-ACK timer expired with [pending] unacked segments. *)
  | Delack_cancel of { pending : int }
      (** Armed delayed-ACK timer disarmed by an outgoing ACK. *)
  | Fin_received of { rcv_nxt : int }
  | Segment_dropped of { seq : int; len : int; reason : string }
      (** The link discarded a packet ([reason]: ["loss"], ["blackout"],
          ...); [len] is its wire size. *)
  | Segment_reordered of { seq : int; delay_us : float }
      (** Fault injection delayed a packet past later traffic. *)
  | Segment_duplicated of { seq : int }
      (** Fault injection delivered a packet twice. *)
  | Segment_challenged of { seq : int; kind : string }
      (** RFC 5961 validation answered a suspicious segment with a
          challenge ACK instead of acting on it ([kind]: ["rst"],
          ["syn"] or ["ack"]; [seq] is the offending sequence or ack
          number). *)
  | Probe_sent of { seq : int; backoff : int }
      (** The persist timer probed a zero-window peer with one garbage
          byte below the window ([seq] = [snd_una - 1]); [backoff] is
          the probe count this episode (the interval doubles up to the
          RTO cap). *)
  | Share_corrupted of { seq : int }
      (** Fault injection mangled the 36-byte exchange option riding the
          segment at [seq]. *)
  | Share_rejected of { reason : string }
      (** The estimator's ingest sanity clamps discarded a share. *)
  | Share_ingested of {
      unacked_total : int;
      unread_total : int;
      ackdelay_total : int;
    }  (** A 36-byte exchange triple arrived from the peer. *)
  | Estimate_computed of {
      latency_us : float option;
      throughput : float;
      window_us : float;
    }
  | Request_done of { latency_us : float }
  | Req_issued of { req : int; off : int; len : int }
      (** Application issued request [req] (0-based, FIFO per
          connection); its command occupies stream bytes
          [\[off, off+len)] of the client-to-server direction. *)
  | Req_sent of { req : int }
      (** The client app's write for [req] reached the socket (the
          send-CPU cost has been paid). *)
  | Req_complete of { req : int }
      (** The client parsed the full reply for [req]. *)
  | Srv_start of { req : int }
      (** The server application dequeued [req] into a batch. *)
  | Srv_reply of { req : int; off : int; len : int }
      (** The server wrote the reply for [req]; it occupies stream
          bytes [\[off, off+len)] of the server-to-client direction. *)
  | Audit_window of {
      queue : string;
      l_avg : float;  (** time-averaged occupancy L over the window *)
      lambda_per_s : float;  (** arrival rate λ, units per second *)
      w_us : float;  (** measured mean wait W, microseconds *)
      rel_err : float;  (** |L − λW| / max(L, λW); Little's-law check *)
    }  (** One Little's-law audit window result (see {!Audit}). *)
  | Message of { tag : string; detail : string }
      (** Escape hatch for ad-hoc string traces ([emit]/[emitf]). *)
  | Decision_made of {
      decision : int;
          (** 0-based sequence number within the emitting control
              group (the record's [id]) — the key [Decision_outcome]
              refers back to. *)
      on_us : float option;
          (** smoothed end-to-end estimate for the Batch_on arm at
              decision time ([None] when unsampled); AIMD groups carry
              their single aggregate estimate here *)
      off_us : float option;
          (** ditto for the Batch_off arm (toggler only) *)
      mode : string;
          (** mode in force when the decision was taken (["on"],
              ["off"] or ["limit=N"]) *)
      action : string;  (** mode/limit the decision chose *)
      reason : string;
          (** why: ["explore"] (ε-draw), ["exploit"], ["undersampled"],
              ["forced"] (degrade freeze) for the toggler;
              ["good"]/["bad"]/["hold"] for AIMD *)
      frozen : bool;  (** degrade freeze in force *)
      stale_us : float;
          (** age of the freshest accepted remote share across the
              group's estimators; [-1] when no share has arrived *)
    }  (** One toggler/AIMD control decision with its inputs. *)
  | Decision_outcome of {
      decision : int;  (** the [Decision_made] this realizes *)
      mean_us : float;  (** mean request latency over the tenure *)
      p99_us : float;  (** p99 request latency over the tenure *)
      n : int;  (** completions observed during the tenure *)
    }
      (** Realized outcome of a decision's tenure, emitted when the
          {e next} decision closes it.  The final decision of a run
          stays open (no outcome). *)
  | Conn_opened of {
      gen : int;  (** per-tenant connection generation counter *)
      inherited : bool;
          (** the estimator/control state was seeded from the group
              prior (cold-start inheritance) rather than starting
              from scratch *)
    }  (** A connection joined the run mid-flight (fleet churn). *)
  | Conn_closed of {
      gen : int;  (** generation from the matching [Conn_opened] *)
      completed : int;  (** requests completed over the connection's life *)
    }
      (** A churned connection finished draining and closed (FIN). *)
  | Lb_assigned of {
      shard : int;  (** backend shard the front load balancer picked *)
      policy : string;
          (** ["round_robin"] / ["consistent_hash"] / ["least_loaded"] *)
    }
      (** The load balancer assigned this connection to a shard
          (sharded fleets only, emitted at connection creation). *)
  | Shard_enqueued of {
      shard : int;
      depth : int;
          (** requests outstanding against the shard after this
              enqueue — the shard dispatch-queue depth *)
    }
      (** A request was dispatched to a backend shard (sharded fleets
          only). *)

type record = { at : Time.t; id : string; event : event }
(** [id] names the emitting connection/socket (e.g. ["c0"]). *)

type t

val create : ?capacity:int -> unit -> t
(** Ring buffer of at most [capacity] (default 4096) records; older
    records are overwritten. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit
val capacity : t -> int

val emitted : t -> int
(** Total records emitted since creation/[clear], including those the
    ring has since overwritten. *)

val dropped : t -> int
(** Records lost to ring overwrite: [emitted] minus those retained in
    the ring or delivered to a sink. *)

val set_sink : t -> (record -> unit) option -> unit
(** With a sink installed, [event] hands each record to the callback
    instead of storing it in the ring — the streaming path for runs
    whose traces do not fit in memory (e.g. writing straight to a
    binary trace file).  [records]/[iter]/[fold] then only see what
    was stored before the sink was set.  Single-run use only: the
    callback is invoked from whichever domain runs the simulation, so
    do not share a sinked trace across parallel sweep workers. *)

val sunk : t -> int
(** Records delivered to the sink since creation/[clear]. *)

val event : t -> at:Time.t -> id:string -> event -> unit
(** No-op while disabled; the check precedes any allocation.  Callers
    should still guard event-payload construction with [enabled]. *)

val emit : t -> at:Time.t -> tag:string -> detail:string -> unit
(** [Message] sugar with an empty [id].  No-op while disabled. *)

val emitf :
  t -> at:Time.t -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted [Message] variant; the format arguments are only
    evaluated when tracing is enabled. *)

val iter : t -> (record -> unit) -> unit
(** Oldest first; no intermediate list. *)

val fold : t -> init:'a -> f:('a -> record -> 'a) -> 'a
(** Oldest first; no intermediate list. *)

val records : t -> record list
(** Oldest first. *)

val tenant_of_id : string -> string option
(** Tenant tag of an emitter id: multi-tenant fleet runs label
    connections ["<tenant>/c0"], so ["bare/c0"] maps to [Some "bare"]
    while the single-run ["c0"] convention maps to [None]. *)

val shard_of_id : string -> int option
(** Shard tag of an emitter id: sharded fleet runs suffix labels with
    the backend shard, so ["bare/c0@s3"] maps to [Some 3] while
    unsharded ids (["bare/c0"], ["c0"]) map to [None]. *)

val tag : record -> string
(** Short stable tag for the record's event ("tx", "rx", "ack", "hold",
    "toggle", "cork", "delack_fire", "delack_cancel", "fin", "retx",
    "challenge", "probe", "share", "estimate", "request", or the
    [Message] tag). *)

val detail : record -> string
(** Human-readable rendering of the event payload. *)

val find : t -> tag:string -> record list
val clear : t -> unit

val pp_record : Format.formatter -> record -> unit
val dump : t -> Format.formatter -> unit

(** {1 JSONL}

    One flat JSON object per record.  [record_to_json] and
    [record_of_json] round-trip exactly (floats use ["%.17g"]). *)

val record_to_json : ?run:string -> record -> string
(** Single-line JSON object; [run] labels multi-run files (sweeps). *)

val record_of_json : string -> (string option * record, string) result
(** Parse one line back into an optional run label and a record.
    Returns [Error msg] on malformed input. *)

val fold_jsonl :
  ?unknown:(string -> unit) ->
  string -> init:'a -> f:('a -> string option -> record -> 'a) -> ('a, string) result
(** Stream a JSONL trace file record by record, in file order, without
    materializing it — constant memory however large the file.
    Returns [Error] with a human-readable message when the file is
    missing or unreadable, or when any line fails to parse (with its
    line number).  A file with no records folds to [Ok init].

    [?unknown] opts into forward compatibility: a well-formed line
    whose ["ev"] tag this reader has no case for (a newer writer's
    event kind) is skipped and the callback invoked with the tag,
    instead of failing the fold.  Malformed lines still [Error]. *)

val load_jsonl : string -> ((string option * record) list, string) result
(** Load every record of a JSONL trace file, in file order.  Returns
    [Error] with a human-readable message when the file is missing or
    unreadable, when any line fails to parse (with its line number),
    or when the file contains no records at all. *)

(** {1 Binary trace format}

    A compact fixed-width encoding of the same records: a 16-byte
    versioned header, one record per event (4-byte prefix + per-kind
    fixed-width payload), and interned string tables in a trailer
    located via a fixed footer.  Typically 3–4x smaller and several
    times faster to write than JSONL; [record_to_json]-visible content
    round-trips exactly (ints as i64, floats as IEEE-754 bits).  See
    DESIGN.md "Binary trace & streaming spans" for the layout table. *)

module Binary : sig
  val magic : string
  (** First 8 bytes of every binary trace file. *)

  val version : int
  (** Version written by new files (4).  The reader accepts versions 1
      (pre-decision-ledger) through [version]; with [fold_file]'s
      [?unknown] callback it also accepts newer versions, skipping
      record kinds it cannot decode.  From v4 on, writers of later
      versions must encode kinds unknown to v4 with an explicit u16
      payload-length field right after the 12-byte record prefix so
      older readers can skip them. *)

  type writer

  val writer : out_channel -> writer
  (** Write the header and return a streaming writer.  The channel must
      be in binary mode; the caller closes it after [finish]. *)

  val write : writer -> ?run:string -> record -> unit
  (** Append one record; [run] labels multi-run files (sweeps).
      Raises [Failure] past 65536 distinct ids/run labels. *)

  val written : writer -> int
  (** Records written so far. *)

  val finish : writer -> unit
  (** Write the string tables and footer and flush.  Idempotent; the
      writer accepts no further [write]s. *)

  val is_binary : string -> bool
  (** Sniff the file's first 8 bytes for the binary magic. *)

  val fold_file :
    ?unknown:(string -> unit) ->
    string -> init:'a -> f:('a -> string option -> record -> 'a) -> ('a, string) result
  (** Stream a binary trace file record by record, in file order, with
      memory bounded by the interned string tables.  [Error] on
      missing/unreadable/corrupt files.

      [?unknown] opts into forward compatibility: files written by
      newer versions are accepted, and records of kinds this reader
      cannot decode are skipped (via their explicit u16 payload
      length), invoking the callback with ["kind <k>"].  Without it,
      both hard-fail — exact tools like [convert] stay strict. *)

  val load_file : string -> ((string option * record) list, string) result
  (** Materialize a whole binary trace file, in file order. *)
end

val fold_file :
  ?unknown:(string -> unit) ->
  string -> init:'a -> f:('a -> string option -> record -> 'a) -> ('a, string) result
(** [fold_jsonl] or [Binary.fold_file], chosen by sniffing the magic;
    [?unknown] passes through to either (forward-compat skip). *)
