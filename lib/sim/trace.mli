(** Typed structured tracing.

    A bounded ring of [(time, id, event)] records with a JSONL
    export/import round-trip.  The event taxonomy covers the transport
    and estimator behaviour that the paper's batching decisions hinge
    on: segment lifecycle, Nagle/cork holds and toggles, delayed-ACK
    timers, exchange shares and estimator outputs.

    Overhead when disabled: [event] returns before allocating the
    record, and call sites are expected to guard payload construction
    with [enabled] so the whole emission is branch-only.  [emitf]
    likewise consumes its format arguments without evaluating them. *)

type event =
  | Segment_sent of { seq : int; len : int; push : bool; retx : bool }
  | Segment_received of { seq : int; fresh : int }
      (** [fresh] is the number of not-yet-seen payload bytes. *)
  | Ack_received of { acked : int; una : int }
  | Nagle_hold of { chunk : int; in_flight : int }
  | Nagle_toggle of { enabled : bool }
  | Cork_hold of { chunk : int }
  | Delack_fire of { pending : int }
      (** Delayed-ACK timer expired with [pending] unacked segments. *)
  | Delack_cancel of { pending : int }
      (** Armed delayed-ACK timer disarmed by an outgoing ACK. *)
  | Fin_received of { rcv_nxt : int }
  | Segment_dropped of { seq : int; len : int; reason : string }
      (** The link discarded a packet ([reason]: ["loss"], ["blackout"],
          ...); [len] is its wire size. *)
  | Segment_reordered of { seq : int; delay_us : float }
      (** Fault injection delayed a packet past later traffic. *)
  | Segment_duplicated of { seq : int }
      (** Fault injection delivered a packet twice. *)
  | Share_corrupted of { seq : int }
      (** Fault injection mangled the 36-byte exchange option riding the
          segment at [seq]. *)
  | Share_rejected of { reason : string }
      (** The estimator's ingest sanity clamps discarded a share. *)
  | Share_ingested of {
      unacked_total : int;
      unread_total : int;
      ackdelay_total : int;
    }  (** A 36-byte exchange triple arrived from the peer. *)
  | Estimate_computed of {
      latency_us : float option;
      throughput : float;
      window_us : float;
    }
  | Request_done of { latency_us : float }
  | Req_issued of { req : int; off : int; len : int }
      (** Application issued request [req] (0-based, FIFO per
          connection); its command occupies stream bytes
          [\[off, off+len)] of the client-to-server direction. *)
  | Req_sent of { req : int }
      (** The client app's write for [req] reached the socket (the
          send-CPU cost has been paid). *)
  | Req_complete of { req : int }
      (** The client parsed the full reply for [req]. *)
  | Srv_start of { req : int }
      (** The server application dequeued [req] into a batch. *)
  | Srv_reply of { req : int; off : int; len : int }
      (** The server wrote the reply for [req]; it occupies stream
          bytes [\[off, off+len)] of the server-to-client direction. *)
  | Audit_window of {
      queue : string;
      l_avg : float;  (** time-averaged occupancy L over the window *)
      lambda_per_s : float;  (** arrival rate λ, units per second *)
      w_us : float;  (** measured mean wait W, microseconds *)
      rel_err : float;  (** |L − λW| / max(L, λW); Little's-law check *)
    }  (** One Little's-law audit window result (see {!Audit}). *)
  | Message of { tag : string; detail : string }
      (** Escape hatch for ad-hoc string traces ([emit]/[emitf]). *)

type record = { at : Time.t; id : string; event : event }
(** [id] names the emitting connection/socket (e.g. ["c0"]). *)

type t

val create : ?capacity:int -> unit -> t
(** Ring buffer of at most [capacity] (default 4096) records; older
    records are overwritten. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit
val capacity : t -> int

val emitted : t -> int
(** Total records emitted since creation/[clear], including those the
    ring has since overwritten. *)

val dropped : t -> int
(** [emitted t - ] number currently retained. *)

val event : t -> at:Time.t -> id:string -> event -> unit
(** No-op while disabled; the check precedes any allocation.  Callers
    should still guard event-payload construction with [enabled]. *)

val emit : t -> at:Time.t -> tag:string -> detail:string -> unit
(** [Message] sugar with an empty [id].  No-op while disabled. *)

val emitf :
  t -> at:Time.t -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted [Message] variant; the format arguments are only
    evaluated when tracing is enabled. *)

val iter : t -> (record -> unit) -> unit
(** Oldest first; no intermediate list. *)

val fold : t -> init:'a -> f:('a -> record -> 'a) -> 'a
(** Oldest first; no intermediate list. *)

val records : t -> record list
(** Oldest first. *)

val tenant_of_id : string -> string option
(** Tenant tag of an emitter id: multi-tenant fleet runs label
    connections ["<tenant>/c0"], so ["bare/c0"] maps to [Some "bare"]
    while the single-run ["c0"] convention maps to [None]. *)

val tag : record -> string
(** Short stable tag for the record's event ("tx", "rx", "ack", "hold",
    "toggle", "cork", "delack_fire", "delack_cancel", "fin", "retx",
    "share", "estimate", "request", or the [Message] tag). *)

val detail : record -> string
(** Human-readable rendering of the event payload. *)

val find : t -> tag:string -> record list
val clear : t -> unit

val pp_record : Format.formatter -> record -> unit
val dump : t -> Format.formatter -> unit

(** {1 JSONL}

    One flat JSON object per record.  [record_to_json] and
    [record_of_json] round-trip exactly (floats use ["%.17g"]). *)

val record_to_json : ?run:string -> record -> string
(** Single-line JSON object; [run] labels multi-run files (sweeps). *)

val record_of_json : string -> (string option * record, string) result
(** Parse one line back into an optional run label and a record.
    Returns [Error msg] on malformed input. *)

val load_jsonl : string -> ((string option * record) list, string) result
(** Load every record of a JSONL trace file, in file order.  Returns
    [Error] with a human-readable message when the file is missing or
    unreadable, when any line fails to parse (with its line number),
    or when the file contains no records at all. *)
