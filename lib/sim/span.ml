(* Per-request causal spans reconstructed from trace records.

   A request's life is pinned down by nine milestones (t0..t8); the
   eight phases between consecutive milestones partition the interval
   [issue, complete] exactly — durations telescope, so they sum to the
   end-to-end latency by construction, with no gaps or overlaps.

   Identity needs no wire-level request IDs: requests on a connection
   are FIFO at every stage (issue order = parse order = reply order),
   so the j-th Req_issued on "cN" is the j-th Srv_start on its peer
   "sN" and the j-th Req_complete back on "cN".  Wire milestones come
   from stream-byte extents: Req_issued/Srv_reply record the byte range
   [off, off+len) their message occupies, and Segment_sent {seq; len} /
   Segment_received {fresh} give the time each stream byte first left
   the sender / arrived in order at the receiver. *)

type phase =
  | Client_send  (* t0→t1: issue until the app's write hits the socket *)
  | Send_hold  (* t1→t2: socket buffer (Nagle/cork/window) until last cmd byte tx *)
  | Network_in  (* t2→t3: wire + IRQ until last cmd byte received in order *)
  | Server_queue  (* t3→t4: receive queue until the server dequeues the request *)
  | Server_compute  (* t4→t5: batch service (incl. server-CPU contention) *)
  | Reply_hold  (* t5→t6: server socket buffer until last reply byte tx *)
  | Network_out  (* t6→t7: wire + IRQ until last reply byte received *)
  | Client_recv  (* t7→t8: client receive queue + parse until completion *)

let all_phases =
  [ Client_send; Send_hold; Network_in; Server_queue; Server_compute;
    Reply_hold; Network_out; Client_recv ]

let phase_name = function
  | Client_send -> "client_send"
  | Send_hold -> "send_hold"
  | Network_in -> "network_in"
  | Server_queue -> "server_queue"
  | Server_compute -> "server_compute"
  | Reply_hold -> "reply_hold"
  | Network_out -> "network_out"
  | Client_recv -> "client_recv"

type span = {
  conn : string;
  req : int;
  milestones : Time.t array;  (* length 9: t0..t8, non-decreasing *)
}

let issue s = s.milestones.(0)
let complete s = s.milestones.(8)
let total s = Time.diff s.milestones.(8) s.milestones.(0)
let latency_us s = Time.to_us (total s)

let duration s ph =
  let i =
    match ph with
    | Client_send -> 0
    | Send_hold -> 1
    | Network_in -> 2
    | Server_queue -> 3
    | Server_compute -> 4
    | Reply_hold -> 5
    | Network_out -> 6
    | Client_recv -> 7
  in
  Time.diff s.milestones.(i + 1) s.milestones.(i)

let phases s = List.map (fun ph -> (ph, duration s ph)) all_phases

(* {2 Builder} *)

type per_req = {
  mutable r_issued : (int * int * Time.t) option;  (* off, len, at *)
  mutable r_sent : Time.t option;
  mutable r_complete : Time.t option;
  mutable r_start : Time.t option;
  mutable r_reply : (int * int * Time.t) option;  (* off, len, at *)
}

type conn_state = {
  reqs : (int, per_req) Hashtbl.t;
  mutable has_issued : bool;  (* marks the id as a client endpoint *)
  (* Stream-byte timing, oldest first once reversed: [send_edges] holds
     (edge_end, at) for each fresh transmission advancing the right
     edge of sent data (retransmissions never advance it, so each byte
     keeps its first-transmission time); [recv_edges] holds the
     cumulative in-order byte count after each fresh receive. *)
  mutable send_edge : int;
  mutable send_edges_rev : (int * Time.t) list;
  mutable recv_cum : int;
  mutable recv_edges_rev : (int * Time.t) list;
}

let conn_state tbl id =
  match Hashtbl.find_opt tbl id with
  | Some c -> c
  | None ->
      let c =
        {
          reqs = Hashtbl.create 64;
          has_issued = false;
          send_edge = 0;
          send_edges_rev = [];
          recv_cum = 0;
          recv_edges_rev = [];
        }
      in
      Hashtbl.add tbl id c;
      c

let per_req c req =
  match Hashtbl.find_opt c.reqs req with
  | Some r -> r
  | None ->
      let r =
        { r_issued = None; r_sent = None; r_complete = None; r_start = None;
          r_reply = None }
      in
      Hashtbl.add c.reqs req r;
      r

(* First record wins everywhere: the ring only drops oldest records, so
   the first retained occurrence is the authoritative one. *)
let set_once get set v = match get () with None -> set (Some v) | Some _ -> ()

(* Time the stream byte [b] first crossed an edge list: the [at] of the
   first (edge, at) with [edge > b].  [edges] is ascending. *)
let byte_time edges b =
  let n = Array.length edges in
  let rec go lo hi =
    (* invariant: every index < lo has edge <= b; every >= hi has edge > b *)
    if lo >= hi then if lo < n then Some (snd edges.(lo)) else None
    else
      let mid = (lo + hi) / 2 in
      if fst edges.(mid) > b then go lo mid else go (mid + 1) hi
  in
  go 0 n

(* "c0" -> "s0", and tenant-tagged fleet ids "bare/c0" -> "bare/s0". *)
let default_peer id =
  let base = match String.rindex_opt id '/' with Some i -> i + 1 | None -> 0 in
  if String.length id > base && id.[base] = 'c' then
    Some
      (String.sub id 0 base ^ "s"
      ^ String.sub id (base + 1) (String.length id - base - 1))
  else None

type built = { spans : span list; incomplete : int }

let build ?(peer = default_peer) records =
  let conns : (string, conn_state) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (r : Trace.record) ->
      match r.event with
      | Trace.Req_issued { req; off; len } ->
          let c = conn_state conns r.id in
          c.has_issued <- true;
          let pr = per_req c req in
          set_once (fun () -> pr.r_issued) (fun v -> pr.r_issued <- v) (off, len, r.at)
      | Trace.Req_sent { req } ->
          let pr = per_req (conn_state conns r.id) req in
          set_once (fun () -> pr.r_sent) (fun v -> pr.r_sent <- v) r.at
      | Trace.Req_complete { req } ->
          let pr = per_req (conn_state conns r.id) req in
          set_once (fun () -> pr.r_complete) (fun v -> pr.r_complete <- v) r.at
      | Trace.Srv_start { req } ->
          let pr = per_req (conn_state conns r.id) req in
          set_once (fun () -> pr.r_start) (fun v -> pr.r_start <- v) r.at
      | Trace.Srv_reply { req; off; len } ->
          let pr = per_req (conn_state conns r.id) req in
          set_once (fun () -> pr.r_reply) (fun v -> pr.r_reply <- v) (off, len, r.at)
      | Trace.Segment_sent { seq; len; retx = _; push = _ } ->
          let c = conn_state conns r.id in
          if seq + len > c.send_edge then begin
            c.send_edge <- seq + len;
            c.send_edges_rev <- (seq + len, r.at) :: c.send_edges_rev
          end
      | Trace.Segment_received { fresh; seq } ->
          if fresh > 0 then begin
            let c = conn_state conns r.id in
            (* Anchor to the absolute stream offset: rcv_nxt after this
               record is max(prev rcv_nxt, seq) + fresh.  Using [seq]
               rather than a running sum keeps positions correct when
               ring wraparound drops the front of the trace. *)
            c.recv_cum <- Stdlib.max c.recv_cum seq + fresh;
            c.recv_edges_rev <- (c.recv_cum, r.at) :: c.recv_edges_rev
          end
      | _ -> ())
    records;
  let spans = ref [] in
  let seen = ref 0 in
  let clients =
    Hashtbl.fold (fun id c acc -> if c.has_issued then (id, c) :: acc else acc)
      conns []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (id, c) ->
      let srv =
        match peer id with
        | Some sid -> Hashtbl.find_opt conns sid
        | None -> None
      in
      let c_send = Array.of_list (List.rev c.send_edges_rev) in
      let c_recv = Array.of_list (List.rev c.recv_edges_rev) in
      let s_send, s_recv =
        match srv with
        | Some s ->
            ( Array.of_list (List.rev s.send_edges_rev),
              Array.of_list (List.rev s.recv_edges_rev) )
        | None -> ([||], [||])
      in
      let reqs =
        Hashtbl.fold (fun req _ acc -> req :: acc) c.reqs []
        |> List.sort Stdlib.compare
      in
      List.iter
        (fun req ->
          incr seen;
          let pr = Hashtbl.find c.reqs req in
          let srv_pr =
            Option.bind srv (fun s -> Hashtbl.find_opt s.reqs req)
          in
          let milestones =
            match (pr.r_issued, pr.r_sent, srv_pr, pr.r_complete) with
            | ( Some (off, len, t0),
                Some t1,
                Some { r_start = Some t4; r_reply = Some (roff, rlen, t5); _ },
                Some t8 ) -> (
                let last_cmd = off + len - 1 and last_rep = roff + rlen - 1 in
                match
                  ( byte_time c_send last_cmd,
                    byte_time s_recv last_cmd,
                    byte_time s_send last_rep,
                    byte_time c_recv last_rep )
                with
                | Some t2, Some t3, Some t6, Some t7 ->
                    Some [| t0; t1; t2; t3; t4; t5; t6; t7; t8 |]
                | _ -> None)
            | _ -> None
          in
          match milestones with
          | Some m -> spans := { conn = id; req; milestones = m } :: !spans
          | None -> ())
        reqs)
    clients;
  let spans = List.rev !spans in
  { spans; incomplete = !seen - List.length spans }

(* {2 Streaming fold}

   Same reconstruction as [build], but incremental: requests are
   resolved (or written off) the moment their [Req_complete] record is
   fed, and their per-request state plus any wire edges no later
   requests can reference are retired on the spot.  Because requests
   on a connection are FIFO and every milestone source record of a
   request causally precedes its [Req_complete], a complete trace fed
   in order produces exactly the spans and incomplete count of the
   batch builder — while holding memory proportional to the number of
   in-flight requests rather than to trace length.  (Only when ring
   wraparound has dropped a request's wire edges can the two differ:
   the batch builder may then match a later retransmission edge that
   the streaming fold has already given up on.) *)

module Streaming = struct
  (* A deque of (edge_end, first-cross time) pairs in two int arrays:
     push at the back, prune retired stream bytes from the front,
     binary-search the live window.  Pruned edges all precede every
     byte a future request can ask about, so lookups agree with the
     batch builder's search over the full edge array. *)
  type edges = {
    mutable ee : int array;
    mutable et : int array;
    mutable start : int;
    mutable len : int;
  }

  let edges_create () =
    { ee = Array.make 16 0; et = Array.make 16 0; start = 0; len = 0 }

  let edges_push es edge at =
    let cap = Array.length es.ee in
    if es.start + es.len = cap then begin
      let newcap = if 2 * es.len <= cap then cap else 2 * cap in
      let ne = Array.make newcap 0 and nt = Array.make newcap 0 in
      Array.blit es.ee es.start ne 0 es.len;
      Array.blit es.et es.start nt 0 es.len;
      es.ee <- ne;
      es.et <- nt;
      es.start <- 0
    end;
    es.ee.(es.start + es.len) <- edge;
    es.et.(es.start + es.len) <- at;
    es.len <- es.len + 1

  let edges_prune es threshold =
    while es.len > 0 && es.ee.(es.start) <= threshold do
      es.start <- es.start + 1;
      es.len <- es.len - 1
    done

  (* Time the stream byte [b] first crossed the live window: the [at]
     of the first retained (edge, at) with [edge > b]. *)
  let edges_byte_time es b =
    let lo = ref es.start and hi = ref (es.start + es.len) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if es.ee.(mid) > b then hi := mid else lo := mid + 1
    done;
    if !lo < es.start + es.len then Some es.et.(!lo) else None

  type sconn = {
    sreqs : (int, per_req) Hashtbl.t;
    mutable s_has_issued : bool;
    mutable s_send_edge : int;
    send : edges;
    mutable s_recv_cum : int;
    recv : edges;
    mutable retired : int;  (* 1 + highest retired req index (FIFO) *)
    mutable failed : int;  (* retired without a resolvable span *)
  }

  type t = {
    peer : string -> string option;
    conns : (string, sconn) Hashtbl.t;
    mutable resolved : int;
  }

  let create ?(peer = default_peer) () =
    { peer; conns = Hashtbl.create 16; resolved = 0 }

  let sconn t id =
    match Hashtbl.find_opt t.conns id with
    | Some c -> c
    | None ->
        let c =
          {
            sreqs = Hashtbl.create 64;
            s_has_issued = false;
            s_send_edge = 0;
            send = edges_create ();
            s_recv_cum = 0;
            recv = edges_create ();
            retired = 0;
            failed = 0;
          }
        in
        Hashtbl.add t.conns id c;
        c

  let sper_req c req =
    match Hashtbl.find_opt c.sreqs req with
    | Some r -> r
    | None ->
        let r =
          { r_issued = None; r_sent = None; r_complete = None; r_start = None;
            r_reply = None }
        in
        Hashtbl.add c.sreqs req r;
        r

  (* Resolve request [req] on client [c] at its completion time [t8],
     retire its state from both endpoints, and prune wire edges no
     later request can reference (FIFO stream offsets only grow). *)
  let complete_req t c id req t8 =
    let srv =
      match t.peer id with
      | Some sid -> Hashtbl.find_opt t.conns sid
      | None -> None
    in
    let pr = sper_req c req in
    let srv_pr = Option.bind srv (fun s -> Hashtbl.find_opt s.sreqs req) in
    let span =
      match (pr.r_issued, pr.r_sent, srv, srv_pr) with
      | ( Some (off, len, t0),
          Some t1,
          Some s,
          Some { r_start = Some t4; r_reply = Some (roff, rlen, t5); _ } ) -> (
          let last_cmd = off + len - 1 and last_rep = roff + rlen - 1 in
          match
            ( edges_byte_time c.send last_cmd,
              edges_byte_time s.recv last_cmd,
              edges_byte_time s.send last_rep,
              edges_byte_time c.recv last_rep )
          with
          | Some t2, Some t3, Some t6, Some t7 ->
              Some
                {
                  conn = id;
                  req;
                  milestones = [| t0; t1; t2; t3; t4; t5; t6; t7; t8 |];
                }
          | _ -> None)
      | _ -> None
    in
    (match pr.r_issued with
    | Some (off, len, _) ->
        edges_prune c.send (off + len);
        (match srv with Some s -> edges_prune s.recv (off + len) | None -> ())
    | None -> ());
    (match srv_pr with
    | Some { r_reply = Some (roff, rlen, _); _ } ->
        edges_prune c.recv (roff + rlen);
        (match srv with Some s -> edges_prune s.send (roff + rlen) | None -> ())
    | None | Some _ -> ());
    Hashtbl.remove c.sreqs req;
    if req + 1 > c.retired then c.retired <- req + 1;
    (match srv with
    | Some s ->
        Hashtbl.remove s.sreqs req;
        if req + 1 > s.retired then s.retired <- req + 1
    | None -> ());
    (match span with
    | Some _ -> t.resolved <- t.resolved + 1
    | None -> c.failed <- c.failed + 1);
    span

  let feed t (r : Trace.record) =
    match r.event with
    | Trace.Req_issued { req; off; len } ->
        let c = sconn t r.id in
        c.s_has_issued <- true;
        if req >= c.retired then begin
          let pr = sper_req c req in
          set_once (fun () -> pr.r_issued) (fun v -> pr.r_issued <- v)
            (off, len, r.at)
        end;
        None
    | Trace.Req_sent { req } ->
        let c = sconn t r.id in
        if req >= c.retired then begin
          let pr = sper_req c req in
          set_once (fun () -> pr.r_sent) (fun v -> pr.r_sent <- v) r.at
        end;
        None
    | Trace.Req_complete { req } ->
        let c = sconn t r.id in
        if req >= c.retired then complete_req t c r.id req r.at else None
    | Trace.Srv_start { req } ->
        let c = sconn t r.id in
        if req >= c.retired then begin
          let pr = sper_req c req in
          set_once (fun () -> pr.r_start) (fun v -> pr.r_start <- v) r.at
        end;
        None
    | Trace.Srv_reply { req; off; len } ->
        let c = sconn t r.id in
        if req >= c.retired then begin
          let pr = sper_req c req in
          set_once (fun () -> pr.r_reply) (fun v -> pr.r_reply <- v)
            (off, len, r.at)
        end;
        None
    | Trace.Segment_sent { seq; len; retx = _; push = _ } ->
        let c = sconn t r.id in
        if seq + len > c.s_send_edge then begin
          c.s_send_edge <- seq + len;
          edges_push c.send (seq + len) r.at
        end;
        None
    | Trace.Segment_received { fresh; seq } ->
        if fresh > 0 then begin
          let c = sconn t r.id in
          c.s_recv_cum <- Stdlib.max c.s_recv_cum seq + fresh;
          edges_push c.recv c.s_recv_cum r.at
        end;
        None
    | _ -> None

  let resolved t = t.resolved

  let pending t =
    Hashtbl.fold
      (fun _ c acc -> if c.s_has_issued then acc + Hashtbl.length c.sreqs else acc)
      t.conns 0

  let incomplete t =
    Hashtbl.fold
      (fun _ c acc ->
        if c.s_has_issued then acc + c.failed + Hashtbl.length c.sreqs else acc)
      t.conns 0

  (* Peak footprint probe for benches: live edge-window and pending
     request state across all connections. *)
  let live_state t =
    Hashtbl.fold
      (fun _ c acc -> acc + c.send.len + c.recv.len + Hashtbl.length c.sreqs)
      t.conns 0
end

(* {2 Aggregation} *)

type row = {
  phase : phase;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  mean_us : float;
  max_us : float;
}

(* Nearest-rank percentile over a sorted array of ns durations. *)
let rank sorted q =
  let n = Array.length sorted in
  let i = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
  sorted.(Stdlib.max 0 (Stdlib.min (n - 1) i))

let breakdown spans =
  match spans with
  | [] -> []
  | _ ->
      let n = List.length spans in
      List.map
        (fun ph ->
          let ds = Array.of_list (List.map (fun s -> duration s ph) spans) in
          Array.sort Stdlib.compare ds;
          let sum = Array.fold_left ( + ) 0 ds in
          {
            phase = ph;
            p50_us = Time.to_us (rank ds 0.50);
            p95_us = Time.to_us (rank ds 0.95);
            p99_us = Time.to_us (rank ds 0.99);
            mean_us = Time.to_us sum /. float_of_int n;
            max_us = Time.to_us ds.(Array.length ds - 1);
          })
        all_phases

(* {2 Rendering} *)

let pp ppf s =
  Format.fprintf ppf "@[<v>%s req %d: %.2fus end-to-end@," s.conn s.req
    (latency_us s);
  let t0 = s.milestones.(0) in
  List.iter
    (fun ph ->
      let d = duration s ph in
      let upto = ref 0 in
      let idx =
        match ph with
        | Client_send -> 0 | Send_hold -> 1 | Network_in -> 2
        | Server_queue -> 3 | Server_compute -> 4 | Reply_hold -> 5
        | Network_out -> 6 | Client_recv -> 7
      in
      upto := Time.diff s.milestones.(idx + 1) t0;
      Format.fprintf ppf "  %-14s %10.2fus  (ends at +%.2fus)@," (phase_name ph)
        (Time.to_us d) (Time.to_us !upto))
    all_phases;
  Format.fprintf ppf "@]"
