type handle = Event_heap.event

type t = {
  mutable clock : Time.t;
  mutable next_seq : int;
  mutable live : int;
  queue : Event_heap.t;
}

(* Ordering (earliest deadline first, FIFO among same-instant events
   via [seq]) lives inside Event_heap's inlined comparison. *)
let create () =
  { clock = Time.zero; next_seq = 0; live = 0; queue = Event_heap.create () }

let now t = t.clock

let schedule_at t ~at action =
  if Time.compare at t.clock < 0 then
    invalid_arg "Engine.schedule_at: time is in the simulated past";
  let ev = { Event_heap.at; seq = t.next_seq; action; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  Event_heap.push t.queue ev;
  ev

let schedule t ~after action =
  if after < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(Time.add t.clock after) action

let cancel t (ev : handle) =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    t.live <- t.live - 1
  end

let pending t = t.live

(* The event loop uses Event_heap's option-free [take]/[top] so that
   dispatching an event allocates nothing at all — the per-event [Some]
   boxes of peek/pop were the loop's last allocations, and they are
   paid once per simulated event. *)
let rec step t =
  if Event_heap.is_empty t.queue then false
  else begin
    let ev = Event_heap.take t.queue in
    if ev.cancelled then step t
    else begin
      t.clock <- ev.at;
      t.live <- t.live - 1;
      ev.action ();
      true
    end
  end

let rec run t = if step t then run t

let rec run_until t deadline =
  if Event_heap.is_empty t.queue then t.clock <- Time.max t.clock deadline
  else begin
    let ev = Event_heap.top t.queue in
    if ev.cancelled then begin
      ignore (Event_heap.take t.queue);
      run_until t deadline
    end
    else if Time.compare ev.at deadline <= 0 then begin
      ignore (step t);
      run_until t deadline
    end
    else t.clock <- Time.max t.clock deadline
  end
