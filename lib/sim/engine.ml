type handle = Event_heap.event

type t = {
  mutable clock : Time.t;
  mutable next_seq : int;
  mutable live : int;
  queue : Event_heap.t;
}

(* Ordering (earliest deadline first, FIFO among same-instant events
   via [seq]) lives inside Event_heap's inlined comparison. *)
let create () =
  { clock = Time.zero; next_seq = 0; live = 0; queue = Event_heap.create () }

let now t = t.clock

let schedule_at t ~at action =
  if Time.compare at t.clock < 0 then
    invalid_arg "Engine.schedule_at: time is in the simulated past";
  let ev = { Event_heap.at; seq = t.next_seq; action; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  Event_heap.push t.queue ev;
  ev

let schedule t ~after action =
  if after < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(Time.add t.clock after) action

let cancel t (ev : handle) =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    t.live <- t.live - 1
  end

let pending t = t.live

let rec step t =
  match Event_heap.pop t.queue with
  | None -> false
  | Some ev when ev.cancelled -> step t
  | Some ev ->
    t.clock <- ev.at;
    t.live <- t.live - 1;
    ev.action ();
    true

let rec run t = if step t then run t

let rec run_until t deadline =
  match Event_heap.peek t.queue with
  | Some ev when ev.cancelled ->
    ignore (Event_heap.pop t.queue);
    run_until t deadline
  | Some ev when Time.compare ev.at deadline <= 0 ->
    ignore (step t);
    run_until t deadline
  | Some _ | None -> t.clock <- Time.max t.clock deadline
