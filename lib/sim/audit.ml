(* Online Little's-law audit.  Each queue keeps the three quantities
   Little's law relates, measured independently of each other:

     L  — time-weighted occupancy integral / window length
     λ  — arrival count / window length
     W  — mean per-unit wait, measured by pairing departures with their
          arrival times through a FIFO of outstanding units

   In steady state L = λW; over a finite window the identity only
   fails by boundary terms (units in flight across the window edges),
   so |L − λW| relative error is an executable check that the queue
   accounting feeding the paper's Eq. (1) estimator matches ground
   truth.  Everything here is pure bookkeeping — no engine callbacks,
   no allocation on the occupancy path beyond the FIFO cells — so
   attaching an audit cannot change simulation results. *)

type waiter = { w_at : Time.t; mutable w_units : int }

type queue = {
  name : string;
  mutable occ : int;  (* current occupancy, units *)
  mutable integral : int;  (* ∫ occ dt since window start, unit·ns *)
  mutable last : Time.t;  (* time of the last occupancy change *)
  mutable window_start : Time.t;
  mutable arrivals : int;  (* units arrived since window start *)
  mutable departures : int;  (* units departed since window start *)
  mutable wait_ns : int;  (* Σ units × (departure − arrival), ns *)
  fifo : waiter Queue.t;  (* outstanding units, oldest first *)
}

type t = { mutable queues : queue list (* newest first *) }

let create () = { queues = [] }

let queue t name =
  match List.find_opt (fun q -> String.equal q.name name) t.queues with
  | Some q -> q
  | None ->
      let q =
        {
          name;
          occ = 0;
          integral = 0;
          last = Time.zero;
          window_start = Time.zero;
          arrivals = 0;
          departures = 0;
          wait_ns = 0;
          fifo = Queue.create ();
        }
      in
      t.queues <- q :: t.queues;
      q

let queue_name q = q.name
let occupancy q = q.occ

let advance q ~at =
  let dt = Time.diff at q.last in
  if dt > 0 then begin
    q.integral <- q.integral + (q.occ * dt);
    q.last <- at
  end

let arrival q ~at n =
  if n < 0 then invalid_arg "Audit.arrival: negative count";
  if n > 0 then begin
    advance q ~at;
    q.occ <- q.occ + n;
    q.arrivals <- q.arrivals + n;
    Queue.add { w_at = at; w_units = n } q.fifo
  end

let departure q ~at n =
  if n < 0 then invalid_arg "Audit.departure: negative count";
  if n > 0 then begin
    advance q ~at;
    q.occ <- q.occ - n;
    q.departures <- q.departures + n;
    (* Pair the departing units with the oldest outstanding arrivals.
       A drained-empty FIFO (over-departure) contributes zero wait
       rather than raising: the socket layer clamps its unit
       accounting the same way. *)
    let remaining = ref n in
    while !remaining > 0 && not (Queue.is_empty q.fifo) do
      let head = Queue.peek q.fifo in
      let take = Stdlib.min head.w_units !remaining in
      q.wait_ns <- q.wait_ns + (take * Time.diff at head.w_at);
      head.w_units <- head.w_units - take;
      remaining := !remaining - take;
      if head.w_units = 0 then ignore (Queue.pop q.fifo)
    done
  end

let track q ~at n = if n >= 0 then arrival q ~at n else departure q ~at (-n)

(* Start a fresh measurement window.  Occupancy and the outstanding
   FIFO carry over (the units are physically still queued); only the
   window accumulators reset.  Carried-over units count toward L but
   not λ, and their eventual wait includes pre-window time — classic
   boundary terms that vanish as the window grows. *)
let reset_window t ~at =
  List.iter
    (fun q ->
      advance q ~at;
      q.integral <- 0;
      q.arrivals <- 0;
      q.departures <- 0;
      q.wait_ns <- 0;
      q.window_start <- at)
    t.queues

type report = {
  queue : string;
  window_us : float;
  l_avg : float;  (* time-averaged occupancy *)
  lambda_per_s : float;  (* arrival rate *)
  w_us : float;  (* measured mean wait *)
  arrivals : int;
  departures : int;
  rel_err : float;  (* |L − λW| / max(L, λW), 0 when both ~ 0 *)
}

let report_queue q ~at =
  advance q ~at;
  let window = Time.diff at q.window_start in
  if window <= 0 then
    {
      queue = q.name;
      window_us = 0.0;
      l_avg = 0.0;
      lambda_per_s = 0.0;
      w_us = 0.0;
      arrivals = q.arrivals;
      departures = q.departures;
      rel_err = 0.0;
    }
  else begin
    let window_ns = float_of_int window in
    let l_avg = float_of_int q.integral /. window_ns in
    let lambda_per_ns = float_of_int q.arrivals /. window_ns in
    let w_ns =
      if q.departures = 0 then 0.0
      else float_of_int q.wait_ns /. float_of_int q.departures
    in
    let lw = lambda_per_ns *. w_ns in
    let denom = Float.max l_avg lw in
    let rel_err = if denom < 1e-12 then 0.0 else Float.abs (l_avg -. lw) /. denom in
    {
      queue = q.name;
      window_us = window_ns /. 1e3;
      l_avg;
      lambda_per_s = lambda_per_ns *. 1e9;
      w_us = w_ns /. 1e3;
      arrivals = q.arrivals;
      departures = q.departures;
      rel_err;
    }
  end

let report t ~at = List.rev_map (fun q -> report_queue q ~at) t.queues

let pp_report ppf r =
  Format.fprintf ppf "%s: L=%.3f lambda=%.1f/s W=%.2fus err=%.2f%%" r.queue r.l_avg
    r.lambda_per_s r.w_us (100.0 *. r.rel_err)
