(** Per-request causal spans with exact latency decomposition.

    [build] folds a trace (live ring contents or a loaded JSONL file)
    into one span per completed request.  A span is nine milestones
    t0..t8; the eight phases between consecutive milestones partition
    [issue, complete] exactly — durations telescope, so they sum to the
    request's end-to-end latency by construction, with no gaps or
    overlaps on the critical path.

    Request identity is positional: requests on a connection are FIFO
    at every stage, so the j-th [Req_issued] on ["cN"] corresponds to
    the j-th [Srv_start]/[Srv_reply] on its peer ["sN"] and the j-th
    [Req_complete] back on ["cN"].  Wire milestones come from stream
    byte extents ([Req_issued]/[Srv_reply] carry [off]/[len]) matched
    against [Segment_sent] (first transmission of each byte) and
    [Segment_received] (cumulative in-order [fresh] bytes). *)

type phase =
  | Client_send  (** t0→t1: issue until the app's write reaches the socket *)
  | Send_hold
      (** t1→t2: client socket buffering — Nagle/cork/window holds —
          until the last command byte is first transmitted *)
  | Network_in
      (** t2→t3: serialization, propagation, loss recovery and receive
          IRQ work until the last command byte arrives in order *)
  | Server_queue  (** t3→t4: receive queue until the server dequeues it *)
  | Server_compute
      (** t4→t5: batch service time, including server-CPU contention *)
  | Reply_hold  (** t5→t6: server socket buffering for the reply *)
  | Network_out  (** t6→t7: reply wire time until received in order *)
  | Client_recv  (** t7→t8: client receive queue + parse until complete *)

val all_phases : phase list
(** Critical-path order. *)

val phase_name : phase -> string

type span = {
  conn : string;  (** client socket label, e.g. ["c0"] *)
  req : int;  (** 0-based FIFO index on that connection *)
  milestones : Time.t array;  (** length 9: t0..t8, non-decreasing *)
}

val issue : span -> Time.t  (** t0 *)

val complete : span -> Time.t  (** t8 *)

val total : span -> Time.span
(** [complete - issue]; equals the sum of all phase durations. *)

val latency_us : span -> float
(** [Time.to_us (total s)] — bit-identical to the latency a
    [Request_done] record derives from the same timestamps. *)

val duration : span -> phase -> Time.span
val phases : span -> (phase * Time.span) list

type built = {
  spans : span list;  (** by connection, then request index *)
  incomplete : int;
      (** requests seen in the trace that could not be fully resolved:
          still in flight at capture time, or with milestones lost to
          ring wraparound *)
}

val build : ?peer:(string -> string option) -> Trace.record list -> built
(** [peer] maps a client id to its server-side id; the default maps
    ["cN"] to ["sN"] (the {!Loadgen.Runner} convention) and the
    tenant-tagged ["<tenant>/cN"] to ["<tenant>/sN"] (the fleet
    convention).  Records must be in emission order (as
    [Trace.records] and JSONL files are). *)

(** {1 Streaming reconstruction}

    The same span reconstruction as {!build}, as an incremental fold:
    feed records in emission order and each request resolves (or is
    written off) at its [Req_complete], retiring its state and any
    wire edges no later request can reference.  Memory is proportional
    to in-flight requests, not trace length, so multi-gigabyte
    file-backed traces fold in constant space.  On a trace with no
    ring-wraparound loss the resolved spans and the incomplete count
    are identical to [build]'s (spans arrive in completion order
    rather than sorted by connection). *)
module Streaming : sig
  type t

  val create : ?peer:(string -> string option) -> unit -> t
  (** Same [peer] convention as {!build}. *)

  val feed : t -> Trace.record -> span option
  (** Feed one record, in emission order; returns the span resolved by
      a [Req_complete] record, if any. *)

  val resolved : t -> int
  (** Spans returned so far. *)

  val pending : t -> int
  (** Client-side requests currently tracked (in flight). *)

  val incomplete : t -> int
  (** Requests retired unresolvable plus those still pending on client
      connections; once the whole trace has been fed this equals the
      batch builder's [incomplete]. *)

  val live_state : t -> int
  (** Footprint probe: retained edge-window entries plus pending
      request records across all connections. *)
end

type row = {
  phase : phase;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  mean_us : float;
  max_us : float;
}

val breakdown : span list -> row list
(** Per-phase nearest-rank percentiles over the given spans, in
    critical-path order; empty input gives an empty list. *)

val pp : Format.formatter -> span -> unit
(** Per-request critical-path view: one line per phase with its
    duration and cumulative end offset. *)
