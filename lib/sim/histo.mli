(** Fixed-size log-bucketed latency histogram (HDR-style).

    64 octaves x 32 linear sub-buckets (2048 buckets total) covering
    [1, 2^64); values below 1 clamp into the first bucket.  Relative
    bucket width is 1/32 (~3.1%), so bucket-bound quantiles land
    within ~1.6% of the true sample value.

    Unlike {!Stats.Histogram} the bucket array is fixed-size and
    [add] is guaranteed allocation-free (enforced by
    [make alloc-gate]), so it is safe on the request hot path.
    [merge] is exact: merging histograms then reading a quantile
    equals reading the quantile of the concatenated samples. *)

type t

val create : unit -> t
val reset : t -> unit
(** Zero every bucket, the count and the sum (no allocation). *)

val add : t -> float -> unit
(** Record one value.  Allocation-free. *)

val count : t -> int
val sum : t -> float

val mean : t -> float option
(** [None] on an empty histogram. *)

val quantile : t -> float -> float option
(** [quantile t p] with [p] in [0, 100]: the upper bound of the
    bucket holding the nearest-rank sample, or [None] on an empty
    histogram.  Within one bucket width of the exact nearest-rank
    value. *)

val width_at : float -> float
(** Width of the bucket that would hold [v] — the quantile error
    bound at that magnitude. *)

val merge : into:t -> t -> unit
(** Exact: bucket-wise sum of counts plus combined count/sum. *)

val copy : t -> t
