type event = {
  at : Time.t;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
}

type t = {
  mutable data : event array;
  mutable size : int;
  sentinel : event;  (** fills vacated and never-used slots *)
}

let create () =
  let sentinel = { at = Time.zero; seq = -1; action = ignore; cancelled = true } in
  { data = [||]; size = 0; sentinel }

let length h = h.size
let is_empty h = h.size = 0

(* Time.t and seq are plain ints, so this compiles to unboxed integer
   compares — the whole point of the specialization. *)
let[@inline] before (a : event) (b : event) =
  a.at < b.at || (a.at = b.at && a.seq < b.seq)

let grow h =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let ndata = Array.make ncap h.sentinel in
    Array.blit h.data 0 ndata 0 h.size;
    h.data <- ndata
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before h.data.(i) h.data.(parent) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && before h.data.(l) h.data.(!smallest) then smallest := l;
  if r < h.size && before h.data.(r) h.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h ev =
  grow h;
  h.data.(h.size) <- ev;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

(* Option-free accessors for the engine's event loop: with Time.t a
   plain int, [top]/[take] allocate nothing, where [peek]/[pop] box a
   [Some] per call — which was the engine's last per-event allocation.
   Callers must check [is_empty] first; on an empty heap both return
   the (cancelled) sentinel. *)
let top h = if h.size = 0 then h.sentinel else h.data.(0)

let take h =
  if h.size = 0 then h.sentinel
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    (* Clear the vacated slot so [top]'s action closure (and, after a
       drain, every popped event's) does not linger in the array. *)
    h.data.(h.size) <- h.sentinel;
    top
  end

let pop h = if h.size = 0 then None else Some (take h)

let clear h =
  Array.fill h.data 0 h.size h.sentinel;
  h.size <- 0
