(* How the advertised window is carried.  [`Exact] keeps the
   simulator's idealized full-width windows (the pre-scaling
   behaviour); [`Fixed s] and [`Auto] opt into wire-faithful RFC 7323
   carriage, where the window is quantized through a shifted 16-bit
   field — [`Auto] picks the smallest shift that covers [rcv_buf]. *)
type wscale = [ `Exact | `Fixed of int | `Auto ]

type config = {
  mss : int;
  nagle : bool;
  cork : bool;
  tso_max : int option;
  cc_enabled : bool;
  delack_timeout : Sim.Time.span;
  delack_max_pending : int;
  rcv_buf : int;
  unit_mode : E2e.Units.t;
  exchange : E2e.Exchange.policy;
  sack : bool;
  wscale : wscale;
  persist : bool;
}

let default_config =
  {
    mss = 1448;
    nagle = true;
    cork = false;
    tso_max = None;
    cc_enabled = false;
    delack_timeout = Sim.Time.ms 40;
    delack_max_pending = 2;
    rcv_buf = 256 * 1024;
    unit_mode = E2e.Units.Bytes;
    exchange = E2e.Exchange.Periodic (Sim.Time.us 100);
    sack = true;
    wscale = `Exact;
    persist = true;
  }

type counters = {
  segs_out : int;
  pure_acks_out : int;
  bytes_out : int;
  segs_in : int;
  bytes_in : int;
  sends : int;
  nagle_holds : int;
  cork_holds : int;
  retransmits : int;
  rto_fires : int;
  fast_retransmits : int;
  sack_retransmits : int;
  probes_sent : int;
  challenges_sent : int;
}

(* Connection teardown follows the RFC 793 state diagram from
   ESTABLISHED onward (connections are created established, like a
   socketpair). *)
type conn_state =
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait
  | Closed

let state_to_string = function
  | Established -> "established"
  | Fin_wait_1 -> "fin-wait-1"
  | Fin_wait_2 -> "fin-wait-2"
  | Close_wait -> "close-wait"
  | Closing -> "closing"
  | Last_ack -> "last-ack"
  | Time_wait -> "time-wait"
  | Closed -> "closed"

(* A transmitted, unacknowledged extent kept for retransmission.  The
   message-boundary metadata travels with it so a retransmitted segment
   still tells the receiver where application messages end. *)
type retx_entry = {
  mutable r_seq : int;
  mutable r_payload : string;
  r_push : bool;
  r_msg_ends : int;
  r_fin : bool;
  mutable r_sacked : bool;  (* the peer selectively acknowledged this extent *)
}

type t = {
  engine : Sim.Engine.t;
  cfg : config;
  label : string;
  nagle : Nagle.t;
  estim : E2e.Estimator.t;
  exchange_sched : E2e.Exchange.scheduler;
  (* sender state *)
  sndbuf : Bytebuf.t;
  mutable snd_una : int;  (* oldest unacknowledged byte *)
  mutable snd_nxt : int;  (* next byte to put on the wire *)
  mutable snd_write : int;  (* next byte position the app will write *)
  boundaries : int Queue.t;  (* stream positions where send() buffers end *)
  unacked_fifo : Unit_fifo.t;
  mutable peer_window : int;
  mutable transmit : Segment.t -> unit;
  mutable cork_signal : unit -> Sim.Time.t option;
  mutable cork_kick_armed : bool;
  (* reliability *)
  retx : retx_entry Queue.t;
  mutable rto_timer : Sim.Engine.handle option;
  mutable rto_backoff : int;
  mutable recover : int;  (* recovery episode: snd_nxt at episode entry *)
  mutable retx_next : int;  (* hole recovery: next sequence to resend *)
  mutable dup_acks : int;
  (* zero-window persist probing *)
  mutable persist_timer : Sim.Engine.handle option;
  mutable persist_backoff : int;
  (* window scaling: [None] = idealized full-width windows; [Some s] =
     every advertised window is quantized through a 16-bit field
     shifted left by [s] (RFC 7323) *)
  mutable snd_wscale : int option;
  mutable max_snd_wnd : int;  (* largest peer window seen (RFC 5961 §5) *)
  (* congestion control (Reno-style, optional) *)
  mutable cwnd : int;
  mutable ssthresh : int;
  (* teardown *)
  mutable conn_state : conn_state;
  mutable fin_pending : bool;  (* close() called, FIN not yet emitted *)
  mutable fin_sent_seq : int option;
  mutable fin_fifo_adjusted : bool;  (* FIN seq excluded from unacked fifo once *)
  mutable peer_fin : bool;
  (* receiver state *)
  recvbuf : Bytebuf.t;
  mutable rcv_nxt : int;  (* next in-order byte expected *)
  mutable rcv_wup : int;  (* highest ack we have sent *)
  mutable last_advertised : int;
  mutable ooo : Segment.t list;  (* out-of-order segments, sorted by seq *)
  unread_fifo : Unit_fifo.t;
  ackdelay_fifo : Unit_fifo.t;
  mutable delack : Delayed_ack.t option;
  mutable readable_cb : unit -> unit;
  (* RTT estimation (RFC 7323 timestamps feeding RFC 6298) *)
  rtt : Rtt.t;
  mutable ts_recent : int;  (* latest peer ts_val seen on data, us; -1 = none *)
  (* diagnostics *)
  mutable trace : Sim.Trace.t option;
  (* hints (§3.3) *)
  mutable hint_provider : (at:Sim.Time.t -> E2e.Queue_state.share) option;
  mutable hint_prev : E2e.Queue_state.share option;
  mutable hint_cur : E2e.Queue_state.share option;
  (* counters *)
  mutable segs_out : int;
  mutable pure_acks_out : int;
  mutable bytes_out : int;
  mutable segs_in : int;
  mutable bytes_in : int;
  mutable sends : int;
  mutable nagle_holds : int;
  mutable cork_holds : int;
  mutable retransmits : int;
  mutable rto_fires : int;
  mutable fast_retransmits : int;
  mutable sack_retransmits : int;
  mutable probes_sent : int;
  mutable challenges_sent : int;
}

let label t = t.label

let initial_cwnd_segments = 10

(* What shift this side would offer in a handshake; [None] = not
   offering (idealized full-width windows). *)
let offered_wscale cfg =
  match cfg.wscale with
  | `Exact -> None
  | `Fixed s ->
    if s < 0 || s > 14 then invalid_arg "Socket: window scale shift outside 0-14";
    Some s
  | `Auto -> Some (Options.wscale_for ~rcv_buf:cfg.rcv_buf)

let create ?(label = "sock") engine cfg =
  if cfg.mss <= 0 then invalid_arg "Socket.create: mss must be positive";
  if cfg.rcv_buf < cfg.mss then invalid_arg "Socket.create: rcv_buf below one MSS";
  {
    engine;
    cfg;
    label;
    nagle = Nagle.create ~enabled:cfg.nagle;
    estim = E2e.Estimator.create ~at:(Sim.Engine.now engine);
    exchange_sched = E2e.Exchange.scheduler cfg.exchange;
    sndbuf = Bytebuf.create ();
    snd_una = 0;
    snd_nxt = 0;
    snd_write = 0;
    boundaries = Queue.create ();
    unacked_fifo = Unit_fifo.create ();
    peer_window = cfg.rcv_buf;
    transmit = (fun _ -> failwith "Socket: transmit path not wired");
    cork_signal = (fun () -> None);
    cork_kick_armed = false;
    retx = Queue.create ();
    rto_timer = None;
    rto_backoff = 0;
    recover = 0;
    retx_next = 0;
    dup_acks = 0;
    persist_timer = None;
    persist_backoff = 0;
    snd_wscale = offered_wscale cfg;
    max_snd_wnd = cfg.rcv_buf;
    cwnd = initial_cwnd_segments * cfg.mss;
    ssthresh = max_int;
    conn_state = Established;
    fin_pending = false;
    fin_sent_seq = None;
    fin_fifo_adjusted = false;
    peer_fin = false;
    recvbuf = Bytebuf.create ();
    rcv_nxt = 0;
    rcv_wup = 0;
    last_advertised = cfg.rcv_buf;
    ooo = [];
    unread_fifo = Unit_fifo.create ();
    ackdelay_fifo = Unit_fifo.create ();
    delack = None;
    readable_cb = ignore;
    rtt = Rtt.create ();
    ts_recent = -1;
    trace = None;
    hint_provider = None;
    hint_prev = None;
    hint_cur = None;
    segs_out = 0;
    pure_acks_out = 0;
    bytes_out = 0;
    segs_in = 0;
    bytes_in = 0;
    sends = 0;
    nagle_holds = 0;
    cork_holds = 0;
    retransmits = 0;
    rto_fires = 0;
    fast_retransmits = 0;
    sack_retransmits = 0;
    probes_sent = 0;
    challenges_sent = 0;
  }

(* RFC 7323 §2: scaling binds only when both sides offer it.  A
   [Conn] calls this after creating the pair; a realist socket whose
   peer stays idealized falls back to an unshifted (16-bit capped)
   window, while two idealized sockets keep full-width windows. *)
let negotiate_window_scaling a b =
  match (a.snd_wscale, b.snd_wscale) with
  | Some _, Some _ | None, None -> ()
  | Some _, None -> a.snd_wscale <- Some 0
  | None, Some _ -> b.snd_wscale <- Some 0

let window_shift t = t.snd_wscale

let now t = Sim.Engine.now t.engine

(* Call sites guard event-payload construction behind [tracing] so the
   disabled path is a branch and nothing more. *)
let tracing t = match t.trace with Some tr -> Sim.Trace.enabled tr | None -> false

let event t ev =
  match t.trace with
  | Some tr -> Sim.Trace.event tr ~at:(now t) ~id:t.label ev
  | None -> ()

let advertised_window t = Stdlib.max 0 (t.cfg.rcv_buf - Bytebuf.length t.recvbuf)

(* The window as it survives the wire: exact in idealized mode,
   quantized through a shifted 16-bit field when scaling is on.  The
   quantization (round down to a multiple of 2^shift, saturate at
   65535 << shift) is the whole realism point — an unscaled peer caps
   at 64 KiB regardless of buffer. *)
let wire_window t =
  let w = advertised_window t in
  match t.snd_wscale with
  | None -> w
  | Some s -> Options.unscale_window ~shift:s (Options.scale_window ~shift:s w)

(* Merge the sorted out-of-order queue into at most
   [Options.max_sack_blocks] disjoint [left, right) ranges, lowest
   first.  Only called when [t.ooo] is non-empty, so loss-free flows
   never allocate here. *)
let sack_blocks ooo =
  let rec merge acc = function
    | [] -> List.rev acc
    | (seg : Segment.t) :: rest ->
      let s = seg.seq and e = seg.seq + Segment.seq_len seg in
      (match acc with
      | (l, r) :: tl when s <= r -> merge ((l, Stdlib.max r e) :: tl) rest
      | _ -> merge ((s, e) :: acc) rest)
  in
  let rec take n = function
    | [] -> []
    | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl
  in
  take Options.max_sack_blocks (merge [] ooo)

let in_flight t = t.snd_nxt - t.snd_una

let send_window t =
  if t.cfg.cc_enabled then Stdlib.min t.peer_window t.cwnd else t.peer_window

(* Record that an ack for everything received is about to leave in some
   segment: drain the ackdelay queue and reset the delayed-ack state. *)
let note_ack_leaving t =
  let unacked_rx = t.rcv_nxt - t.rcv_wup in
  if unacked_rx > 0 then begin
    (* the peer's FIN consumes a sequence number that carries no
       payload, so clamp to the bytes actually queued *)
    let bytes = Stdlib.min unacked_rx (Unit_fifo.pending_bytes t.ackdelay_fifo) in
    let units = Unit_fifo.drain t.ackdelay_fifo ~bytes in
    if units > 0 then E2e.Estimator.track_ackdelay t.estim ~at:(now t) (-units);
    t.rcv_wup <- t.rcv_nxt
  end;
  match t.delack with Some d -> Delayed_ack.on_ack_sent d | None -> ()

let attach_metadata t =
  let at = now t in
  let e2e =
    if E2e.Exchange.should_attach t.exchange_sched ~now:at then
      Some (E2e.Estimator.local_snapshot t.estim ~at)
    else None
  in
  let hint =
    match (e2e, t.hint_provider) with
    | Some _, Some provider -> Some (provider ~at)
    | _ -> None
  in
  (e2e, hint)

(* Put one segment on the wire, piggybacking the cumulative ack and
   whatever metadata is due.  [seq] may be below [snd_nxt] for a
   retransmission. *)
let put_on_wire ?(fin = false) ?(rst = false) t ~seq ~payload ~push ~msg_ends =
  let e2e, hint = attach_metadata t in
  let seg =
    {
      Segment.seq;
      ack = t.rcv_nxt;
      payload;
      window = wire_window t;
      push;
      msg_ends;
      e2e;
      hint;
      ts_val = Some (Sim.Time.to_ns (now t) / 1_000);
      ts_ecr = (if t.ts_recent >= 0 then Some t.ts_recent else None);
      sack = (if t.cfg.sack && t.ooo <> [] then sack_blocks t.ooo else []);
      rst;
      syn = false;
      fin;
    }
  in
  note_ack_leaving t;
  t.last_advertised <- seg.window;
  if String.length payload = 0 && not fin && not rst then
    t.pure_acks_out <- t.pure_acks_out + 1;
  t.transmit seg

(* {2 Retransmission timer} *)

let retx_len e = String.length e.r_payload + if e.r_fin then 1 else 0

let current_rto t =
  let base = Rtt.rto t.rtt in
  let scaled = base lsl Stdlib.min t.rto_backoff 6 in
  Stdlib.min scaled Rtt.max_rto

let cancel_rto t =
  match t.rto_timer with
  | Some h ->
    Sim.Engine.cancel t.engine h;
    t.rto_timer <- None
  | None -> ()

(* [Sim.Engine.handle] values carry closures, so they must only ever
   meet [Option.is_none]/[is_some] — structural [= None] would raise
   [Invalid_argument] the day the compiler stops short-circuiting on
   the constructor. *)
let rec arm_rto t =
  if Option.is_none t.rto_timer && in_flight t > 0 then
    t.rto_timer <-
      Some (Sim.Engine.schedule t.engine ~after:(current_rto t) (fun () -> on_rto t))

and restart_rto t =
  cancel_rto t;
  arm_rto t

and retransmit_head t ~counter =
  match Queue.peek_opt t.retx with
  | None -> ()
  | Some entry ->
    counter t;
    t.retransmits <- t.retransmits + 1;
    if tracing t then
      event t
        (Sim.Trace.Segment_sent
           { seq = entry.r_seq; len = String.length entry.r_payload;
             push = entry.r_push; retx = true });
    put_on_wire t ~fin:entry.r_fin ~seq:entry.r_seq ~payload:entry.r_payload
      ~push:entry.r_push ~msg_ends:entry.r_msg_ends

and on_rto t =
  t.rto_timer <- None;
  if in_flight t > 0 then begin
    (* Loss signal: collapse the congestion window and back off. *)
    if t.cfg.cc_enabled then begin
      t.ssthresh <- Stdlib.max (in_flight t / 2) (2 * t.cfg.mss);
      t.cwnd <- t.cfg.mss
    end;
    t.rto_backoff <- t.rto_backoff + 1;
    (* A timeout invalidates the SACK scoreboard (conservative RFC 2018
       reneging posture): recovery restarts from go-back-N and fresh
       SACK blocks re-mark whatever the receiver still holds. *)
    Queue.iter (fun e -> e.r_sacked <- false) t.retx;
    (* Everything below [snd_nxt] is suspect after a timeout; partial
       acks drive go-back-N retransmission up to this mark, restarting
       from the front of the hole. *)
    t.recover <- Stdlib.max t.recover t.snd_nxt;
    t.retx_next <- t.snd_una;
    retransmit_head t ~counter:(fun t -> t.rto_fires <- t.rto_fires + 1);
    (match Queue.peek_opt t.retx with
    | Some e -> t.retx_next <- e.r_seq + retx_len e
    | None -> ());
    arm_rto t
  end

(* {2 Zero-window persist timer} *)

let cancel_persist t =
  match t.persist_timer with
  | Some h ->
    Sim.Engine.cancel t.engine h;
    t.persist_timer <- None
  | None -> ()

(* The persist timer runs exactly when the connection would otherwise
   be deaf: data queued, nothing in flight (so no RTO), and the peer's
   last word was a closed window.  If the peer's window-update ack was
   lost, nothing but this timer ever speaks again. *)
let persist_due t =
  t.cfg.persist
  && t.peer_window <= 0
  && in_flight t = 0
  && Bytebuf.length t.sndbuf > 0
  && (match t.conn_state with Time_wait | Closed -> false | _ -> true)

let current_persist_timeout t =
  let base = Rtt.rto t.rtt in
  let scaled = base lsl Stdlib.min t.persist_backoff 6 in
  Stdlib.min scaled Rtt.max_rto

(* Probes per zero-window episode.  Real stacks probe indefinitely; a
   simulator must quiesce when the peer application never reads, so the
   budget bounds the episode.  It is far above what any recoverable
   stall needs (a lost window update is repaired by the first probe
   that gets through) and resets whenever the window reopens. *)
let max_persist_probes = 10

(* {2 Transmission} *)

let emit_fresh t ~payload ~push ~msg_ends =
  let len = String.length payload in
  let seq = t.snd_nxt in
  t.snd_nxt <- t.snd_nxt + len;
  t.segs_out <- t.segs_out + 1;
  t.bytes_out <- t.bytes_out + len;
  Queue.add
    { r_seq = seq; r_payload = payload; r_push = push; r_msg_ends = msg_ends;
      r_fin = false; r_sacked = false }
    t.retx;
  if E2e.Units.equal t.cfg.unit_mode E2e.Units.Packets then begin
    E2e.Estimator.track_unacked t.estim ~at:(now t) 1;
    Unit_fifo.push t.unacked_fifo ~bytes:len ~units:1
  end;
  if tracing t then
    event t (Sim.Trace.Segment_sent { seq; len; push; retx = false });
  put_on_wire t ~seq ~payload ~push ~msg_ends;
  arm_rto t

let send_pure_ack t = put_on_wire t ~seq:t.snd_nxt ~payload:"" ~push:false ~msg_ends:0

(* Count send()-buffer boundaries completed by the [chunk] bytes that
   are about to leave, consuming them from the queue; the last one
   landing exactly at the segment end sets PSH. *)
let consume_boundaries t ~upto =
  let ends = ref 0 in
  let push = ref false in
  let rec go () =
    match Queue.peek_opt t.boundaries with
    | Some b when b <= upto ->
      ignore (Queue.pop t.boundaries);
      incr ends;
      if b = upto then push := true;
      go ()
    | Some _ | None -> ()
  in
  go ();
  (!ends, !push)

let rec arm_persist t =
  if Option.is_none t.persist_timer && persist_due t then
    t.persist_timer <-
      Some
        (Sim.Engine.schedule t.engine ~after:(current_persist_timeout t)
           (fun () -> on_persist t))

and on_persist t =
  t.persist_timer <- None;
  if persist_due t && t.persist_backoff < max_persist_probes then begin
    t.persist_backoff <- t.persist_backoff + 1;
    t.probes_sent <- t.probes_sent + 1;
    (* The classic BSD window probe: one garbage byte just below the
       window ([snd_una - 1]).  The receiver's duplicate-segment path
       discards the payload wholesale and answers with an immediate ack
       carrying its current window — exactly the response a pure ack
       would never elicit — while no sequence space is consumed and no
       retransmission state is created.  If the window has reopened
       (the lost-update deadlock), that ack revives transmission; if it
       is still shut, we re-arm ourselves with doubled backoff. *)
    let seq = t.snd_una - 1 in
    if tracing t then
      event t (Sim.Trace.Probe_sent { seq; backoff = t.persist_backoff });
    put_on_wire t ~seq ~payload:"?" ~push:false ~msg_ends:0;
    arm_persist t
  end

and try_transmit t =
  maybe_emit_fin t;
  let pending = Bytebuf.length t.sndbuf in
  if pending > 0 then begin
    let window_avail = send_window t - in_flight t in
    (* With TSO the stack hands the NIC super-segments up to tso_max;
       they are cut to MSS on the wire by the transmit path. *)
    let max_chunk =
      match t.cfg.tso_max with
      | Some m -> Stdlib.max t.cfg.mss m
      | None -> t.cfg.mss
    in
    let chunk = Stdlib.min pending (Stdlib.min max_chunk window_avail) in
    if chunk > 0 then begin
      if not (Nagle.should_send t.nagle ~mss:t.cfg.mss ~chunk ~in_flight:(in_flight t))
      then begin
        t.nagle_holds <- t.nagle_holds + 1;
        if tracing t then
          event t (Sim.Trace.Nagle_hold { chunk; in_flight = in_flight t })
      end
      else begin
        match (t.cfg.cork, chunk < t.cfg.mss, t.cork_signal ()) with
        | true, true, Some free_at ->
          (* Auto-cork: transmitter busy and the segment is small; hold
             until the NIC frees and retry. *)
          t.cork_holds <- t.cork_holds + 1;
          if tracing t then event t (Sim.Trace.Cork_hold { chunk });
          if not t.cork_kick_armed then begin
            t.cork_kick_armed <- true;
            ignore
              (Sim.Engine.schedule_at t.engine ~at:free_at (fun () ->
                   t.cork_kick_armed <- false;
                   try_transmit t))
          end
        | _ ->
          let payload = Bytebuf.read t.sndbuf chunk in
          let msg_ends, push = consume_boundaries t ~upto:(t.snd_nxt + chunk) in
          emit_fresh t ~payload ~push ~msg_ends;
          try_transmit t
      end
    end
    else
      (* Data queued but the send window is shut.  If nothing is in
         flight either, no ack or timer is coming: start (or keep) the
         persist timer so a lost window update cannot strand us. *)
      arm_persist t
  end
  else maybe_emit_fin t

(* The FIN leaves once every queued byte has been handed to the wire;
   it consumes one sequence number and is retransmittable. *)
and maybe_emit_fin t =
  if t.fin_pending && Bytebuf.is_empty t.sndbuf && t.fin_sent_seq = None then begin
    let seq = t.snd_nxt in
    t.fin_sent_seq <- Some seq;
    t.fin_pending <- false;
    t.snd_nxt <- t.snd_nxt + 1;
    Queue.add
      { r_seq = seq; r_payload = ""; r_push = false; r_msg_ends = 0; r_fin = true;
        r_sacked = false }
      t.retx;
    put_on_wire t ~fin:true ~seq ~payload:"" ~push:false ~msg_ends:0;
    arm_rto t
  end

let kick = try_transmit

let send t data =
  (match t.conn_state with
  | Established | Close_wait -> ()
  | Fin_wait_1 | Fin_wait_2 | Closing | Last_ack | Time_wait | Closed ->
    invalid_arg "Socket.send: socket is closing or closed");
  let len = String.length data in
  if len > 0 then begin
    t.sends <- t.sends + 1;
    Bytebuf.append t.sndbuf data;
    t.snd_write <- t.snd_write + len;
    Queue.add t.snd_write t.boundaries;
    let at = now t in
    (match t.cfg.unit_mode with
    | E2e.Units.Bytes | E2e.Units.Hinted ->
      E2e.Estimator.track_unacked t.estim ~at len;
      Unit_fifo.push t.unacked_fifo ~bytes:len ~units:len
    | E2e.Units.Syscalls ->
      E2e.Estimator.track_unacked t.estim ~at 1;
      Unit_fifo.push t.unacked_fifo ~bytes:len ~units:1
    | E2e.Units.Packets -> (* tracked at segment transmission *) ());
    try_transmit t
  end

let ensure_delack t =
  match t.delack with
  | Some d -> d
  | None ->
    let d =
      Delayed_ack.create t.engine ~timeout:t.cfg.delack_timeout
        ~max_pending:t.cfg.delack_max_pending
        ~send_ack:(fun () -> send_pure_ack t)
        ()
    in
    (match t.trace with
    | Some tr -> Delayed_ack.set_trace d tr ~id:t.label
    | None -> ());
    t.delack <- Some d;
    d

let rx_units t ~len ~msg_ends =
  match t.cfg.unit_mode with
  | E2e.Units.Bytes | E2e.Units.Hinted -> len
  | E2e.Units.Packets -> 1
  | E2e.Units.Syscalls -> msg_ends

(* {2 Teardown helpers} *)

let enter_time_wait t =
  t.conn_state <- Time_wait;
  (* 2MSL stand-in: twice the RTO floor is plenty at simulation scale *)
  ignore
    (Sim.Engine.schedule t.engine ~after:(2 * Rtt.min_rto) (fun () ->
         if t.conn_state = Time_wait then t.conn_state <- Closed))

(* {2 Acknowledgment processing (sender side)} *)

let drop_acked_retx t =
  let rec go () =
    match Queue.peek_opt t.retx with
    | Some e when e.r_seq + retx_len e <= t.snd_una ->
      ignore (Queue.pop t.retx);
      go ()
    | Some e when e.r_seq < t.snd_una ->
      (* partial coverage: trim the acknowledged prefix *)
      let cut = t.snd_una - e.r_seq in
      e.r_payload <- String.sub e.r_payload cut (String.length e.r_payload - cut);
      e.r_seq <- t.snd_una
    | Some _ | None -> ()
  in
  go ()

(* Go-back-N after a timeout.  A burst loss (blackout, outage) empties
   the pipe: nothing else is in flight, so no duplicate acks arrive and
   fast retransmit never fires.  Without this, each RTO retransmits one
   segment and the ack for it releases nothing — the hole heals at one
   segment per RTO (200ms+), which on any real backlog is a stall.
   Instead, every ack that lands while [snd_una] is still below the
   pre-RTO [recover] mark retransmits the next cwnd's worth of the
   queue, so recovery slow-starts like a fresh connection. *)
let retransmit_hole t =
  if t.snd_una < t.recover && not (Queue.is_empty t.retx) then begin
    (* [retx_next .. recover) is the unsent remainder of the hole;
       [snd_una .. retx_next) is already back in flight, so the budget
       is whatever cwnd has left over it.  Each resend advances
       [retx_next] — no segment is retransmitted twice per episode
       (another RTO resets the pointer if resends are lost too).
       Cwnd-collapsed edge case, pinned by a unit test: right after an
       RTO with cc enabled, cwnd = 1 MSS and the head retransmission
       already consumed it, so the budget here is 0 even though
       [retx_next < recover].  The chosen behaviour is to resend
       nothing now but still [restart_rto] below — the episode can
       never stall, because either the next ack frees budget or the
       timer re-fires. *)
    let from = Stdlib.max t.retx_next t.snd_una in
    let in_flight_retx = from - t.snd_una in
    let budget = ref (Stdlib.max (t.cwnd - in_flight_retx) 0) in
    (try
       Queue.iter
         (fun e ->
           if e.r_seq >= t.recover then raise Exit;
           (* A sacked extent is sitting in the peer's reassembly
              queue; resending it would be pure waste. *)
           if e.r_seq + retx_len e > from && not e.r_sacked then begin
             if !budget <= 0 then raise Exit;
             budget := !budget - String.length e.r_payload;
             t.retransmits <- t.retransmits + 1;
             if tracing t then
               event t
                 (Sim.Trace.Segment_sent
                    { seq = e.r_seq; len = String.length e.r_payload;
                      push = e.r_push; retx = true });
             put_on_wire t ~fin:e.r_fin ~seq:e.r_seq ~payload:e.r_payload
               ~push:e.r_push ~msg_ends:e.r_msg_ends;
             t.retx_next <- e.r_seq + retx_len e
           end)
         t.retx
     with Exit -> ());
    restart_rto t
  end

(* {2 SACK scoreboard (sender side)} *)

(* Mark every retransmission-queue extent fully covered by one of the
   peer's SACK blocks.  Only called with non-empty [blocks], which only
   ever exist under loss — the loss-free ack path never walks the
   queue. *)
let ingest_sack t blocks =
  Queue.iter
    (fun e ->
      if not e.r_sacked then begin
        let s = e.r_seq and en = e.r_seq + retx_len e in
        if List.exists (fun (l, r) -> l <= s && en <= r) blocks then
          e.r_sacked <- true
      end)
    t.retx

let has_sack_info t = Queue.fold (fun acc e -> acc || e.r_sacked) false t.retx

let highest_sacked t =
  Queue.fold
    (fun acc e -> if e.r_sacked then Stdlib.max acc (e.r_seq + retx_len e) else acc)
    (-1) t.retx

(* SACK-driven hole recovery (RFC 6675 in spirit): everything unsacked
   strictly below the highest SACKed byte is deemed lost and resent
   once per episode within the cwnd budget.  Unlike the go-back-N
   sweep this never touches data above the last SACK block — that data
   is still in flight and probably fine, which is exactly why SACK
   beats go-back-N under partial bursty loss. *)
let sack_retransmit_holes t =
  let hs = highest_sacked t in
  if hs >= 0 then begin
    let from = Stdlib.max t.retx_next t.snd_una in
    let in_flight_retx = Stdlib.max 0 (from - t.snd_una) in
    let budget = ref (Stdlib.max (t.cwnd - in_flight_retx) 0) in
    (try
       Queue.iter
         (fun e ->
           if e.r_seq >= hs then raise Exit;
           if e.r_seq + retx_len e > from && not e.r_sacked then begin
             if !budget <= 0 then raise Exit;
             budget := !budget - String.length e.r_payload;
             t.retransmits <- t.retransmits + 1;
             t.sack_retransmits <- t.sack_retransmits + 1;
             if tracing t then
               event t
                 (Sim.Trace.Segment_sent
                    { seq = e.r_seq; len = String.length e.r_payload;
                      push = e.r_push; retx = true });
             put_on_wire t ~fin:e.r_fin ~seq:e.r_seq ~payload:e.r_payload
               ~push:e.r_push ~msg_ends:e.r_msg_ends;
             t.retx_next <- e.r_seq + retx_len e
           end)
         t.retx
     with Exit -> ());
    restart_rto t
  end

(* Keep an open recovery episode moving on every ack: scoreboard-led
   when SACK information exists, go-back-N otherwise.  The scoreboard
   drains naturally as [snd_una] passes it, so a blackout recovery
   falls back to the sweep for the sackless tail. *)
let continue_recovery t =
  if t.snd_una < t.recover && not (Queue.is_empty t.retx) then
    if t.cfg.sack && has_sack_info t then sack_retransmit_holes t
    else retransmit_hole t

let process_ack t (seg : Segment.t) ~at =
  (* Fresh SACK blocks first, so both the fast-retransmit decision and
     any recovery sweep below see the up-to-date scoreboard. *)
  if t.cfg.sack && seg.sack <> [] then ingest_sack t seg.sack;
  let acked = seg.ack - t.snd_una in
  if acked > 0 then begin
    if tracing t then
      event t (Sim.Trace.Ack_received { acked; una = t.snd_una + acked });
    t.snd_una <- t.snd_una + acked;
    t.dup_acks <- 0;
    t.rto_backoff <- 0;
    drop_acked_retx t;
    if in_flight t = 0 then cancel_rto t else restart_rto t;
    (* congestion window growth *)
    if t.cfg.cc_enabled then begin
      if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd + acked (* slow start *)
      else t.cwnd <- t.cwnd + Stdlib.max 1 (t.cfg.mss * t.cfg.mss / t.cwnd);
      t.cwnd <- Stdlib.min t.cwnd (64 * 1024 * 1024)
    end;
    continue_recovery t;
    (* the FIN consumes one sequence number that never entered the
       byte-accounting fifo *)
    let fifo_bytes =
      match t.fin_sent_seq with
      | Some fs when seg.ack > fs && not t.fin_fifo_adjusted ->
        t.fin_fifo_adjusted <- true;
        acked - 1
      | _ -> acked
    in
    let fifo_bytes = Stdlib.min fifo_bytes (Unit_fifo.pending_bytes t.unacked_fifo) in
    let units = Unit_fifo.drain t.unacked_fifo ~bytes:fifo_bytes in
    if units > 0 then E2e.Estimator.track_unacked t.estim ~at (-units);
    (* teardown progress: our FIN is acknowledged *)
    (match t.fin_sent_seq with
    | Some fs when seg.ack > fs -> (
      match t.conn_state with
      | Fin_wait_1 -> t.conn_state <- Fin_wait_2
      | Closing -> enter_time_wait t
      | Last_ack -> t.conn_state <- Closed
      | Established | Fin_wait_2 | Close_wait | Time_wait | Closed -> ())
    | _ -> ());
    (* RTT sample from the echoed timestamp (RFC 7323 resolves Karn's
       retransmission ambiguity because retransmits carry fresh
       timestamps). *)
    match seg.ts_ecr with
    | Some ecr ->
      let sample_ns = Sim.Time.to_ns at - (ecr * 1_000) in
      if sample_ns >= 0 then Rtt.sample t.rtt sample_ns
    | None -> ()
  end
  else if Segment.is_pure_ack seg && seg.ack = t.snd_una && in_flight t > 0 then begin
    (* duplicate ack: the receiver is missing something *)
    t.dup_acks <- t.dup_acks + 1;
    if t.dup_acks = 3 then begin
      if t.cfg.cc_enabled then begin
        t.ssthresh <- Stdlib.max (in_flight t / 2) (2 * t.cfg.mss);
        t.cwnd <- t.ssthresh
      end;
      if t.cfg.sack && has_sack_info t then begin
        (* Scoreboard-led fast recovery: open an episode up to the
           current [snd_nxt] and resend only the holes below the
           highest SACKed byte.  Each later duplicate or partial ack
           continues the episode — no waiting three more dup acks per
           lost segment, and no RTO unless the resends are lost too. *)
        t.fast_retransmits <- t.fast_retransmits + 1;
        t.recover <- Stdlib.max t.recover t.snd_nxt;
        t.retx_next <- t.snd_una;
        sack_retransmit_holes t
      end
      else begin
        retransmit_head t ~counter:(fun t ->
            t.fast_retransmits <- t.fast_retransmits + 1);
        restart_rto t
      end
    end
    else if t.dup_acks > 3 && t.cfg.sack then continue_recovery t
  end;
  t.peer_window <- seg.window;
  if seg.window > t.max_snd_wnd then t.max_snd_wnd <- seg.window;
  if seg.window > 0 then begin
    (* the peer's window opened (or was never shut): any persist
       episode is over *)
    if Option.is_some t.persist_timer then cancel_persist t;
    t.persist_backoff <- 0
  end

(* {2 In-order delivery (receiver side)} *)

let accept_payload t (seg : Segment.t) ~at =
  (* [seg.seq <= t.rcv_nxt < seg.seq + len]: append the new suffix. *)
  let len = Segment.len seg in
  let skip = t.rcv_nxt - seg.seq in
  let fresh = len - skip in
  let payload = if skip = 0 then seg.payload else String.sub seg.payload skip fresh in
  if tracing t then
    event t (Sim.Trace.Segment_received { seq = seg.seq; fresh });
  t.rcv_nxt <- t.rcv_nxt + fresh;
  t.bytes_in <- t.bytes_in + fresh;
  Bytebuf.append t.recvbuf payload;
  let units = rx_units t ~len:fresh ~msg_ends:seg.msg_ends in
  if units > 0 then begin
    E2e.Estimator.track_unread t.estim ~at units;
    E2e.Estimator.track_ackdelay t.estim ~at units
  end;
  Unit_fifo.push t.unread_fifo ~bytes:fresh ~units;
  Unit_fifo.push t.ackdelay_fifo ~bytes:fresh ~units;
  (match seg.ts_val with Some v -> t.ts_recent <- v | None -> ())

let process_fin t =
  if not t.peer_fin then begin
    if tracing t then
      event t (Sim.Trace.Fin_received { rcv_nxt = t.rcv_nxt + 1 });
    t.peer_fin <- true;
    t.rcv_nxt <- t.rcv_nxt + 1;
    (match t.conn_state with
    | Established -> t.conn_state <- Close_wait
    | Fin_wait_1 ->
      (* simultaneous close: our FIN is out but unacked *)
      t.conn_state <- Closing
    | Fin_wait_2 -> enter_time_wait t
    | Close_wait | Closing | Last_ack | Time_wait | Closed -> ())
  end

(* Pull any now-contiguous out-of-order segments into the stream. *)
let rec drain_ooo t ~at =
  match t.ooo with
  | seg :: rest when seg.Segment.seq <= t.rcv_nxt ->
    t.ooo <- rest;
    if seg.Segment.seq + Segment.len seg > t.rcv_nxt then accept_payload t seg ~at;
    if seg.Segment.fin && seg.Segment.seq + Segment.seq_len seg > t.rcv_nxt then
      process_fin t;
    drain_ooo t ~at
  | _ -> ()

let insert_ooo t seg =
  let seq = seg.Segment.seq in
  if not (List.exists (fun (s : Segment.t) -> s.seq = seq) t.ooo) then
    t.ooo <-
      List.sort (fun (a : Segment.t) (b : Segment.t) -> compare a.seq b.seq)
        (seg :: t.ooo)

let process_payload t (seg : Segment.t) ~at =
  let seg_end = seg.seq + Segment.seq_len seg in
  if seg_end <= t.rcv_nxt then
    (* pure duplicate (a retransmission we already have): re-ack so the
       sender can advance *)
    send_pure_ack t
  else if seg.seq > t.rcv_nxt then begin
    (* a hole precedes this segment: buffer and emit an immediate
       duplicate ack (RFC 5681) *)
    insert_ooo t seg;
    send_pure_ack t
  end
  else begin
    accept_payload t seg ~at;
    drain_ooo t ~at;
    if seg.fin then process_fin t;
    Delayed_ack.on_data_segment (ensure_delack t);
    (* Acks must not linger behind a FIN or buffered out-of-order
       data. *)
    if t.ooo <> [] || seg.fin then send_pure_ack t
  end

(* Answer a suspicious segment with a challenge ack (RFC 5961): it
   confirms our current state to a genuine peer without acting on a
   possibly-forged segment. *)
let challenge t ~kind ~seq =
  t.challenges_sent <- t.challenges_sent + 1;
  if tracing t then event t (Sim.Trace.Segment_challenged { seq; kind });
  send_pure_ack t

let rec receive_one t ~notify (seg : Segment.t) =
  let at = now t in
  t.segs_in <- t.segs_in + 1;
  if seg.syn then
    (* §4: a SYN while synchronized is never acted on, only challenged. *)
    (match Rfc5961.check_syn () with
    | Rfc5961.Challenge -> challenge t ~kind:"syn" ~seq:seg.seq
    | Rfc5961.Accept | Rfc5961.Discard -> ())
  else if seg.rst then (
    match
      Rfc5961.check_rst
        ~rcv_nxt:(Seq32.of_int t.rcv_nxt)
        ~rcv_wnd:(advertised_window t)
        ~seq:(Seq32.of_int seg.seq)
    with
    | Rfc5961.Accept ->
      cancel_rto t;
      cancel_persist t;
      t.conn_state <- Closed
    | Rfc5961.Challenge -> challenge t ~kind:"rst" ~seq:seg.seq
    | Rfc5961.Discard -> ())
  else if
    not
      (Rfc5961.ack_acceptable
         ~snd_una:(Seq32.of_int t.snd_una)
         ~snd_nxt:(Seq32.of_int t.snd_nxt)
         ~max_wnd:t.max_snd_wnd
         ~ack:(Seq32.of_int seg.ack))
  then
    (* §5: an ack from far outside anything we ever sent — a blind
       injection attempt, not a stale ack.  Challenge and drop. *)
    challenge t ~kind:"ack" ~seq:seg.ack
  else receive_valid t ~notify seg ~at

and receive_valid t ~notify (seg : Segment.t) ~at =
  (* Metadata first so estimates are fresh for any controller that runs
     from the readable callback. *)
  (match seg.e2e with
  | Some triple -> E2e.Estimator.ingest_remote t.estim ~at:(now t) triple
  | None -> ());
  (match seg.hint with
  | Some share ->
    (* Keep a (baseline, latest) pair: the first share anchors the
       window so consumers can estimate over the whole connection (or
       re-anchor themselves from a snapshot they saved). *)
    if t.hint_prev = None then t.hint_prev <- Some share;
    t.hint_cur <- Some share
  | None -> ());
  process_ack t seg ~at;
  let len = Segment.len seg in
  if len > 0 || seg.fin then process_payload t seg ~at;
  (* An ack may have freed Nagle-, window-, cwnd-held data or a
     pending FIN. *)
  if seg.ack > 0 || seg.window > 0 then try_transmit t;
  (* the readable callback also signals EOF *)
  if notify && (len > 0 || t.peer_fin) then t.readable_cb ()

let receive_segment t seg = receive_one t ~notify:true seg

(* A coalesced (GRO) delivery: the application is woken once, after the
   whole batch has been appended — one epoll event per delivery. *)
let receive_batch t segs =
  let had_payload =
    List.fold_left
      (fun acc seg ->
        receive_one t ~notify:false seg;
        acc || Segment.len seg > 0 || seg.Segment.fin)
      false segs
  in
  if had_payload then t.readable_cb ()

let recv t n =
  let data = Bytebuf.read t.recvbuf n in
  let len = String.length data in
  if len > 0 then begin
    let units = Unit_fifo.drain t.unread_fifo ~bytes:len in
    if units > 0 then E2e.Estimator.track_unread t.estim ~at:(now t) (-units);
    (* Window-update ack when a pinched advertised window reopens, so a
       blocked sender resumes.  The receiver half of silly-window
       avoidance (RFC 1122 4.2.3.3): only announce an opening worth at
       least 2 MSS, and only when the last advertisement was small
       enough (< 2 MSS) that the sender could actually have run out of
       window — a wide-buffer flow whose window merely breathes never
       emits extra acks here.  Without the 2-MSS edge a sender that
       filled an exactly-one-MSS window parks until the delayed-ack
       timer fires: the lone segment stays below the delack pending
       threshold, so the window update rides a 40 ms timer and the
       whole pipeline stalls in lockstep.  [last_advertised] is
       refreshed by the update ack itself, so each reopening announces
       exactly once; the window compared is the one the peer will
       actually see ([wire_window]), so scaling quantization cannot
       fake an opening.  This single ack is also the classic
       zero-window deadlock: if it is lost, only the sender's persist
       timer can revive the connection. *)
    let wnd = wire_window t in
    if t.last_advertised < 2 * t.cfg.mss && wnd - t.last_advertised >= 2 * t.cfg.mss
    then send_pure_ack t
  end;
  data

let recv_available t = Bytebuf.length t.recvbuf

let on_readable t cb = t.readable_cb <- cb
let set_transmit t f = t.transmit <- f
let set_cork_signal t f = t.cork_signal <- f

let nagle t = t.nagle

let set_nagle_enabled t v =
  if Nagle.enabled t.nagle <> v && tracing t then
    event t (Sim.Trace.Nagle_toggle { enabled = v });
  Nagle.set_enabled t.nagle v

(* {2 Teardown API} *)

let close t =
  match t.conn_state with
  | Established ->
    t.conn_state <- Fin_wait_1;
    t.fin_pending <- true;
    try_transmit t
  | Close_wait ->
    t.conn_state <- Last_ack;
    t.fin_pending <- true;
    try_transmit t
  | Fin_wait_1 | Fin_wait_2 | Closing | Last_ack | Time_wait | Closed ->
    (* closing twice is a no-op *)
    ()

(* Hard reset: emit a RST at [snd_nxt] and drop to [Closed].  The peer
   validates it per RFC 5961 — since our [seq] equals its [rcv_nxt]
   whenever the streams are quiescent, a genuine abort is honoured on
   first contact, while an attacker guessing inside the window only
   triggers a challenge. *)
let abort t =
  match t.conn_state with
  | Closed -> ()
  | _ ->
    put_on_wire t ~rst:true ~seq:t.snd_nxt ~payload:"" ~push:false ~msg_ends:0;
    cancel_rto t;
    cancel_persist t;
    t.conn_state <- Closed

let state t = t.conn_state
let state_string t = state_to_string t.conn_state

let eof t = t.peer_fin && Bytebuf.is_empty t.recvbuf

let estimator t = t.estim
let rtt t = t.rtt

let trace t = t.trace

let set_trace t tr =
  t.trace <- Some tr;
  E2e.Estimator.set_trace t.estim tr ~id:t.label;
  match t.delack with
  | Some d -> Delayed_ack.set_trace d tr ~id:t.label
  | None -> ()
let cwnd t = t.cwnd
let ssthresh t = t.ssthresh

let set_hint_provider t f = t.hint_provider <- Some f

let remote_hint_window t =
  match (t.hint_prev, t.hint_cur) with
  | Some prev, Some cur -> Some (prev, cur)
  | _ -> None

let request_exchange t = E2e.Exchange.request t.exchange_sched

let counters t =
  {
    segs_out = t.segs_out;
    pure_acks_out = t.pure_acks_out;
    bytes_out = t.bytes_out;
    segs_in = t.segs_in;
    bytes_in = t.bytes_in;
    sends = t.sends;
    nagle_holds = t.nagle_holds;
    cork_holds = t.cork_holds;
    retransmits = t.retransmits;
    rto_fires = t.rto_fires;
    fast_retransmits = t.fast_retransmits;
    sack_retransmits = t.sack_retransmits;
    probes_sent = t.probes_sent;
    challenges_sent = t.challenges_sent;
  }

let acks_by_timer t =
  match t.delack with Some d -> Delayed_ack.acks_forced_by_timer d | None -> 0

let unacked_bytes t = in_flight t
let unsent_bytes t = Bytebuf.length t.sndbuf
