(** TCP segments as exchanged inside the simulator.

    Byte positions are full-width integers for simulator clarity; the
    wire codec in {!Options} (and {!Seq32}) provides the genuine 32-bit
    representation exercised by tests. *)

type t = {
  seq : int;  (** stream offset of the first payload byte *)
  ack : int;  (** cumulative ack: next byte expected from the peer *)
  payload : string;
  window : int;  (** advertised receive window, bytes *)
  push : bool;  (** PSH: carries the final byte of an app send() *)
  msg_ends : int;
      (** how many application send() buffers end inside this segment —
          the receive-side message-boundary signal for syscall units *)
  e2e : E2e.Exchange.triple option;  (** the 36-byte E2E option, §5 *)
  hint : E2e.Queue_state.share option;
      (** a cooperative application's in-flight-request queue state
          (§3.3), forwarded by the sender's stack *)
  ts_val : int option;
      (** RFC 7323 timestamp: the sender's clock in microseconds *)
  ts_ecr : int option;  (** echo of the most recent peer timestamp *)
  sack : (int * int) list;
      (** RFC 2018 selective-ack blocks: [left, right) byte ranges the
          receiver holds above the cumulative ack.  Empty on every
          segment of a loss-free flow, so loss-free runs pay no wire or
          allocation cost for SACK support. *)
  rst : bool;  (** connection reset (validated per RFC 5961 §3) *)
  syn : bool;
      (** a SYN arriving on an established connection (challenged per
          RFC 5961 §4; the simulator has no handshake, so SYN appears
          only as an attack/fault vector) *)
  fin : bool;  (** sender has no more data; consumes one sequence number *)
}

val make :
  ?payload:string ->
  ?push:bool ->
  ?msg_ends:int ->
  ?e2e:E2e.Exchange.triple ->
  ?hint:E2e.Queue_state.share ->
  ?ts_val:int ->
  ?ts_ecr:int ->
  ?sack:(int * int) list ->
  ?rst:bool ->
  ?syn:bool ->
  ?fin:bool ->
  seq:int ->
  ack:int ->
  window:int ->
  unit ->
  t

val len : t -> int
(** Payload length. *)

val is_pure_ack : t -> bool
(** No payload and no RST/SYN/FIN flag — possibly still carrying SACK
    blocks or a window update. *)

val seq_len : t -> int
(** Sequence space consumed: payload length plus one for FIN. *)

val header_bytes : int
(** Fixed per-segment overhead used by the link's serialization model:
    Ethernet (14) + preamble/IFG (24 equivalent) + IPv4 (20) + TCP (20)
    = 78 bytes. *)

val wire_bytes : t -> int
(** [header_bytes + len + option bytes] — E2E exchange and SACK blocks
    both count toward option bytes. *)

val pp : Format.formatter -> t -> unit
