(** Delayed acknowledgments (RFC 1122 §4.2.3.2).

    Acks are withheld hoping to piggyback on reverse-direction data: an
    ack must go out at latest every second full-sized segment, or when
    the delay timer (Linux default up to 40 ms) fires.  The interaction
    of this policy with Nagle's algorithm is the classic pathology the
    paper's motivating sources describe. *)

type t

val create :
  Sim.Engine.t ->
  ?timeout:Sim.Time.span ->
  ?max_pending:int ->
  send_ack:(unit -> unit) ->
  unit ->
  t
(** [timeout] defaults to 40 ms, [max_pending] to 2 segments.
    [send_ack] must emit an acknowledgment; it may be invoked
    synchronously from {!on_data_segment} or later from the timer. *)

val on_data_segment : t -> unit
(** A payload-carrying segment arrived.  Forces an immediate ack when
    the pending count reaches [max_pending]; otherwise arms the
    timer. *)

val on_ack_sent : t -> unit
(** An ack left (piggybacked or pure): reset the pending count and
    disarm the timer.  The socket must call this from its transmit
    path. *)

val pending : t -> int
val timer_armed : t -> bool

val set_trace : t -> Sim.Trace.t -> id:string -> unit
(** Emit [Delack_fire] when the timer expires with pending segments and
    [Delack_cancel] when an armed timer is disarmed by an outgoing ack,
    labelled [id]. *)

val acks_forced_by_count : t -> int
val acks_forced_by_timer : t -> int
