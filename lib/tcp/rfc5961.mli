(** RFC 5961 blind-attack mitigations as pure decisions over
    {!Seq32} serial arithmetic.

    All three checks are invariant under a uniform 2{^32} shift of
    every sequence-number input (verified by a QCheck property), so the
    socket can feed them truncated full-width stream positions. *)

type verdict = Accept | Challenge | Discard

val pp_verdict : Format.formatter -> verdict -> unit

val check_rst : rcv_nxt:Seq32.t -> rcv_wnd:int -> seq:Seq32.t -> verdict
(** §3.2: [Accept] only when [seq = rcv_nxt]; [Challenge] when [seq]
    falls elsewhere inside [rcv_nxt, rcv_nxt + rcv_wnd); [Discard]
    outside the window.  A zero window accepts only the exact match.
    @raise Invalid_argument on a negative [rcv_wnd]. *)

val check_syn : unit -> verdict
(** §4.2: a SYN on a synchronized connection is always challenged. *)

val ack_acceptable :
  snd_una:Seq32.t -> snd_nxt:Seq32.t -> max_wnd:int -> ack:Seq32.t -> bool
(** §5.2: [snd_una - max_wnd <= ack <= snd_nxt] under serial
    arithmetic, where [max_wnd] is the largest window the peer has
    advertised.  Unacceptable ACKs are challenged and dropped.
    @raise Invalid_argument on a negative [max_wnd]. *)
