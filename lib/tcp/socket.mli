(** A simulated TCP socket endpoint.

    Implements the transmit-side batching machinery the paper studies —
    MSS segmentation, Nagle's algorithm (runtime-toggleable), auto-
    corking — the receive side with delayed acknowledgments and flow
    control, and the paper's instrumentation: every change to the three
    §3.2 queues (sent-unacked, received-unread, delayed-ack) is
    reported to a per-connection {!E2e.Estimator.t} in the configured
    message unit, and queue-state snapshots are exchanged with the peer
    through a TCP option on outgoing segments.

    Reliability: cumulative acks with retransmission (an RFC 6298 RTO
    with exponential backoff, plus triple-duplicate-ack fast
    retransmit), out-of-order reassembly at the receiver, and optional
    Reno-style congestion control ([cc_enabled]; off by default, as the
    paper's benchmarks run on an uncongested lossless LAN — see
    {!Link.set_loss} to inject drops).  Sequence numbers are full-width
    integers (see {!Seq32} for the wire form). *)

type config = {
  mss : int;  (** maximum segment payload, default 1448 *)
  nagle : bool;  (** initial Nagle state *)
  cork : bool;  (** auto-corking: hold sub-MSS data while the NIC
                    transmitter is busy *)
  tso_max : int option;
      (** TCP segmentation offload: hand the transmit path
          super-segments up to this many bytes (split to MSS on the
          wire by {!Conn}); [None] disables TSO *)
  cc_enabled : bool;
      (** Reno-style congestion control: initial window 10 MSS, slow
          start / congestion avoidance, multiplicative decrease on loss
          signals *)
  delack_timeout : Sim.Time.span;  (** delayed-ack timer, default 40 ms *)
  delack_max_pending : int;  (** ack at latest every N data segments *)
  rcv_buf : int;  (** receive buffer / advertised window bound *)
  unit_mode : E2e.Units.t;  (** queue accounting unit (§3.3) *)
  exchange : E2e.Exchange.policy;  (** when to attach the E2E option *)
}

val default_config : config
(** MSS 1448, Nagle on, cork off, TSO off, congestion control off,
    40 ms/2-segment delayed acks, 256 KiB receive buffer, byte units,
    periodic 100 µs exchange. *)

type t

val create : ?label:string -> Sim.Engine.t -> config -> t

val label : t -> string

(** {1 Wiring (done by {!Conn})} *)

val set_transmit : t -> (Segment.t -> unit) -> unit
(** Install the path that puts a finished segment on the wire. *)

val set_cork_signal : t -> (unit -> Sim.Time.t option) -> unit
(** Auto-corking probe: [Some t] when the transmitter is busy until
    [t], [None] when idle. *)

val receive_segment : t -> Segment.t -> unit
(** Deliver a segment from the wire (after link + IRQ delays). *)

val receive_batch : t -> Segment.t list -> unit
(** Deliver a GRO-coalesced run of segments, firing the readable
    callback once at the end — one epoll event per delivery. *)

(** {1 Application interface} *)

val send : t -> string -> unit
(** Queue one application write (a [send(2)] call); triggers
    transmission subject to Nagle/cork/window rules. *)

val recv : t -> int -> string
(** Read up to [n] bytes of in-order received data. *)

val recv_available : t -> int

val on_readable : t -> (unit -> unit) -> unit
(** Callback fired whenever new payload is delivered. *)

val kick : t -> unit
(** Re-attempt transmission (cork release, controller changes). *)

(** {1 Teardown}

    Connections are created established (like a socketpair) and torn
    down with the RFC 793 FIN handshake. *)

type conn_state =
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait
  | Closed

val close : t -> unit
(** Half-close: queued data still drains, then a FIN goes out (it
    consumes one sequence number and is retransmitted like data).
    Subsequent {!send} calls raise; receiving continues until the peer
    closes too.  Idempotent. *)

val state : t -> conn_state
val state_string : t -> string

val eof : t -> bool
(** The peer closed and every delivered byte has been read. *)

(** {1 Batching controls} *)

val nagle : t -> Nagle.t
val set_nagle_enabled : t -> bool -> unit

(** {1 End-to-end estimation} *)

val estimator : t -> E2e.Estimator.t
(** The estimator fed by this socket's queue instrumentation. *)

val cwnd : t -> int
(** Current congestion window in bytes (meaningful with
    [cc_enabled]). *)

val ssthresh : t -> int

val rtt : t -> Rtt.t
(** The RFC 6298 estimator fed by echoed segment timestamps — the
    baseline signal the paper shows is insufficient for end-to-end
    latency (it misses application read delays and is inflated by
    delayed acks). *)

val set_hint_provider : t -> (at:Sim.Time.t -> E2e.Queue_state.share) -> unit
(** §3.3 cooperative-application mode: attach the application's
    in-flight-request queue state to outgoing segments instead of
    relying on stack queues alone. *)

val remote_hint_window :
  t -> (E2e.Queue_state.share * E2e.Queue_state.share) option
(** The first and the most recent hint shares received from the peer —
    the server-side view of client-perceived performance over the
    connection.  For sub-windows, save the latest share as a baseline
    and difference against a later one. *)

val request_exchange : t -> unit
(** Ask for an E2E option on the next transmission (on-demand policy). *)

(** {1 Counters} *)

type counters = {
  segs_out : int;  (** data-carrying segments sent (fresh, not retx) *)
  pure_acks_out : int;
  bytes_out : int;  (** payload bytes sent *)
  segs_in : int;
  bytes_in : int;
  sends : int;  (** application send() calls *)
  nagle_holds : int;  (** transmission opportunities deferred by Nagle *)
  cork_holds : int;
  retransmits : int;  (** segments re-sent (timer or fast retransmit) *)
  rto_fires : int;
  fast_retransmits : int;
}

val counters : t -> counters

val set_trace : t -> Sim.Trace.t -> unit
(** Attach a trace ring: the socket emits typed segment/Nagle/cork/FIN
    events labelled with its [label], and propagates the trace to its
    estimator (share/estimate events) and delayed-ACK state
    (fire/cancel events).  Emission only happens while the trace is
    enabled, and costs one branch when it is not. *)

val trace : t -> Sim.Trace.t option
(** The attached trace ring, if any — lets the application layer emit
    request-lifecycle events labelled with this socket's [label]. *)

val acks_by_timer : t -> int
(** Acks this endpoint sent because the delayed-ack timer expired. *)

val unacked_bytes : t -> int
(** Bytes sent and not yet acknowledged. *)

val unsent_bytes : t -> int
(** Bytes queued but not yet segmented onto the wire. *)
