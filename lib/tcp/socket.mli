(** A simulated TCP socket endpoint.

    Implements the transmit-side batching machinery the paper studies —
    MSS segmentation, Nagle's algorithm (runtime-toggleable), auto-
    corking — the receive side with delayed acknowledgments and flow
    control, and the paper's instrumentation: every change to the three
    §3.2 queues (sent-unacked, received-unread, delayed-ack) is
    reported to a per-connection {!E2e.Estimator.t} in the configured
    message unit, and queue-state snapshots are exchanged with the peer
    through a TCP option on outgoing segments.

    Reliability: cumulative acks with retransmission (an RFC 6298 RTO
    with exponential backoff, plus triple-duplicate-ack fast
    retransmit), SACK-based scoreboard recovery (RFC 2018/6675 in
    spirit; on by default, the RTO sweep remains the backstop),
    out-of-order reassembly at the receiver, zero-window persist
    probing (RFC 9293 §3.8.6.1), RFC 5961 in-window RST/SYN/ACK
    validation, and optional Reno-style congestion control
    ([cc_enabled]; off by default, as the paper's benchmarks run on an
    uncongested lossless LAN — see {!Link.set_loss} to inject drops).
    Sequence numbers are full-width integers (see {!Seq32} for the
    wire form). *)

type wscale = [ `Exact | `Fixed of int | `Auto ]
(** How the advertised window is carried.  [`Exact] keeps the
    simulator's idealized full-width windows (the historical
    behaviour, and the default — loss-free runs stay bit-identical).
    [`Fixed s] and [`Auto] opt into wire-faithful RFC 7323 carriage:
    the window is quantized through a 16-bit field shifted left by
    [s], so it rounds down to a multiple of [2^s] and saturates at
    [65535 lsl s] ([`Fixed 0] is an unscaled classic TCP window,
    capped at 64 KiB).  [`Auto] offers {!Options.wscale_for} of
    [rcv_buf].  Scaling binds only if both sides of a {!Conn} opt in
    (RFC 7323 negotiation); a realist socket facing an idealized peer
    falls back to [`Fixed 0]. *)

type config = {
  mss : int;  (** maximum segment payload, default 1448 *)
  nagle : bool;  (** initial Nagle state *)
  cork : bool;  (** auto-corking: hold sub-MSS data while the NIC
                    transmitter is busy *)
  tso_max : int option;
      (** TCP segmentation offload: hand the transmit path
          super-segments up to this many bytes (split to MSS on the
          wire by {!Conn}); [None] disables TSO *)
  cc_enabled : bool;
      (** Reno-style congestion control: initial window 10 MSS, slow
          start / congestion avoidance, multiplicative decrease on loss
          signals *)
  delack_timeout : Sim.Time.span;  (** delayed-ack timer, default 40 ms *)
  delack_max_pending : int;  (** ack at latest every N data segments *)
  rcv_buf : int;  (** receive buffer / advertised window bound *)
  unit_mode : E2e.Units.t;  (** queue accounting unit (§3.3) *)
  exchange : E2e.Exchange.policy;  (** when to attach the E2E option *)
  sack : bool;
      (** selective acknowledgments: the receiver reports out-of-order
          ranges on its acks and the sender retransmits only the holes.
          On by default — SACK blocks only exist under loss, so
          loss-free runs are unaffected *)
  wscale : wscale;  (** window carriage mode, default [`Exact] *)
  persist : bool;
      (** zero-window persist timer: probe a peer advertising window 0
          with a one-garbage-byte segment below the window at
          exponentially backed-off intervals, so a lost window-update
          ack cannot deadlock the connection.  On by default; the timer
          only arms when the peer window is closed with nothing in
          flight, and each episode's probe budget is bounded so runs
          against a never-reading peer still quiesce *)
}

val default_config : config
(** MSS 1448, Nagle on, cork off, TSO off, congestion control off,
    40 ms/2-segment delayed acks, 256 KiB receive buffer, byte units,
    periodic 100 µs exchange, SACK on, exact windows, persist on. *)

type t

val create : ?label:string -> Sim.Engine.t -> config -> t

val label : t -> string

(** {1 Wiring (done by {!Conn})} *)

val set_transmit : t -> (Segment.t -> unit) -> unit
(** Install the path that puts a finished segment on the wire. *)

val set_cork_signal : t -> (unit -> Sim.Time.t option) -> unit
(** Auto-corking probe: [Some t] when the transmitter is busy until
    [t], [None] when idle. *)

val receive_segment : t -> Segment.t -> unit
(** Deliver a segment from the wire (after link + IRQ delays). *)

val receive_batch : t -> Segment.t list -> unit
(** Deliver a GRO-coalesced run of segments, firing the readable
    callback once at the end — one epoll event per delivery. *)

(** {1 Application interface} *)

val send : t -> string -> unit
(** Queue one application write (a [send(2)] call); triggers
    transmission subject to Nagle/cork/window rules. *)

val recv : t -> int -> string
(** Read up to [n] bytes of in-order received data. *)

val recv_available : t -> int

val on_readable : t -> (unit -> unit) -> unit
(** Callback fired whenever new payload is delivered. *)

val kick : t -> unit
(** Re-attempt transmission (cork release, controller changes). *)

(** {1 Teardown}

    Connections are created established (like a socketpair) and torn
    down with the RFC 793 FIN handshake. *)

type conn_state =
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait
  | Closed

val close : t -> unit
(** Half-close: queued data still drains, then a FIN goes out (it
    consumes one sequence number and is retransmitted like data).
    Subsequent {!send} calls raise; receiving continues until the peer
    closes too.  Idempotent. *)

val state : t -> conn_state
val state_string : t -> string

val abort : t -> unit
(** Hard reset: send a RST at [snd_nxt] and drop straight to [Closed],
    cancelling every timer.  The peer validates the RST per RFC 5961
    (§3.2): it is accepted only if its sequence number is exactly the
    peer's [rcv_nxt], challenged if merely in-window, and silently
    discarded otherwise.  Idempotent once closed. *)

val negotiate_window_scaling : t -> t -> unit
(** RFC 7323 handshake for a freshly created pair (called by {!Conn}
    before any traffic): scaling binds only if both endpoints offered a
    shift ([`Fixed]/[`Auto]); a realist side facing an [`Exact] peer
    falls back to shift 0 (classic 64 KiB-capped windows). *)

val window_shift : t -> int option
(** The negotiated send-direction window shift; [None] means exact
    full-width windows. *)

val eof : t -> bool
(** The peer closed and every delivered byte has been read. *)

(** {1 Batching controls} *)

val nagle : t -> Nagle.t
val set_nagle_enabled : t -> bool -> unit

(** {1 End-to-end estimation} *)

val estimator : t -> E2e.Estimator.t
(** The estimator fed by this socket's queue instrumentation. *)

val cwnd : t -> int
(** Current congestion window in bytes (meaningful with
    [cc_enabled]). *)

val ssthresh : t -> int

val rtt : t -> Rtt.t
(** The RFC 6298 estimator fed by echoed segment timestamps — the
    baseline signal the paper shows is insufficient for end-to-end
    latency (it misses application read delays and is inflated by
    delayed acks). *)

val set_hint_provider : t -> (at:Sim.Time.t -> E2e.Queue_state.share) -> unit
(** §3.3 cooperative-application mode: attach the application's
    in-flight-request queue state to outgoing segments instead of
    relying on stack queues alone. *)

val remote_hint_window :
  t -> (E2e.Queue_state.share * E2e.Queue_state.share) option
(** The first and the most recent hint shares received from the peer —
    the server-side view of client-perceived performance over the
    connection.  For sub-windows, save the latest share as a baseline
    and difference against a later one. *)

val request_exchange : t -> unit
(** Ask for an E2E option on the next transmission (on-demand policy). *)

(** {1 Counters} *)

type counters = {
  segs_out : int;  (** data-carrying segments sent (fresh, not retx) *)
  pure_acks_out : int;
  bytes_out : int;  (** payload bytes sent *)
  segs_in : int;
  bytes_in : int;
  sends : int;  (** application send() calls *)
  nagle_holds : int;  (** transmission opportunities deferred by Nagle *)
  cork_holds : int;
  retransmits : int;  (** segments re-sent (timer or fast retransmit) *)
  rto_fires : int;
  fast_retransmits : int;
  sack_retransmits : int;
      (** hole retransmissions driven by the SACK scoreboard (a subset
          of [retransmits]) *)
  probes_sent : int;  (** zero-window persist probes *)
  challenges_sent : int;  (** RFC 5961 challenge ACKs *)
}

val counters : t -> counters

val set_trace : t -> Sim.Trace.t -> unit
(** Attach a trace ring: the socket emits typed segment/Nagle/cork/FIN
    events labelled with its [label], and propagates the trace to its
    estimator (share/estimate events) and delayed-ACK state
    (fire/cancel events).  Emission only happens while the trace is
    enabled, and costs one branch when it is not. *)

val trace : t -> Sim.Trace.t option
(** The attached trace ring, if any — lets the application layer emit
    request-lifecycle events labelled with this socket's [label]. *)

val acks_by_timer : t -> int
(** Acks this endpoint sent because the delayed-ack timer expired. *)

val unacked_bytes : t -> int
(** Bytes sent and not yet acknowledged. *)

val unsent_bytes : t -> int
(** Bytes queued but not yet segmented onto the wire. *)
