(* RFC 5961 blind-attack mitigations, as pure decision functions over
   Seq32 serial arithmetic.  The socket converts its full-width stream
   positions with [Seq32.of_int] before calling in; because both sides
   truncate consistently, every decision here is invariant under a
   uniform 2^32 shift of all sequence inputs (pinned by a QCheck
   property in the test suite). *)

type verdict = Accept | Challenge | Discard

let pp_verdict ppf = function
  | Accept -> Format.pp_print_string ppf "accept"
  | Challenge -> Format.pp_print_string ppf "challenge"
  | Discard -> Format.pp_print_string ppf "discard"

(* RFC 5961 §3.2: a RST is honoured only when its sequence number is
   exactly RCV.NXT; anywhere else inside the receive window it earns a
   challenge ACK (forcing a genuine peer to re-send an exact RST), and
   outside the window it is dropped silently. *)
let check_rst ~rcv_nxt ~rcv_wnd ~seq =
  if rcv_wnd < 0 then invalid_arg "Rfc5961.check_rst: negative window";
  if Seq32.sub seq rcv_nxt = 0 then Accept
  else if Seq32.between seq ~low:rcv_nxt ~high:(Seq32.add rcv_nxt rcv_wnd) then
    Challenge
  else Discard

(* RFC 5961 §4.2: any SYN received while synchronized elicits a
   challenge ACK, never a reset — a legitimate peer restarting will
   respond with a RST bearing the exact sequence number from the
   challenge, which §3 then accepts. *)
let check_syn () = Challenge

(* RFC 5961 §5.2: SEG.ACK is acceptable iff
   SND.UNA - MAX.SND.WND <= SEG.ACK <= SND.NXT (serial arithmetic).
   Expressed as forward distances from the window's lower edge so the
   comparison survives wraparound. *)
let ack_acceptable ~snd_una ~snd_nxt ~max_wnd ~ack =
  if max_wnd < 0 then invalid_arg "Rfc5961.ack_acceptable: negative window";
  let low = Seq32.add snd_una (-max_wnd) in
  Seq32.sub ack low <= Seq32.sub snd_nxt low
