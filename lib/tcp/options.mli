(** TCP option wire codec.

    The paper proposes carrying the 36-byte queue-state exchange as a
    standard TCP header extension (§5).  This module implements the
    option block codec: kind/length/value items, padded to a 4-byte
    boundary, with the E2E state under the experimental option kind
    254 (RFC 6994 ExID discrimination). *)

type t =
  | Nop
  | Mss of int
  | Window_scale of int
  | Sack_permitted
  | Sack of (int * int) list
      (** Up to four [left, right) received byte ranges, carried as
          32-bit sequence numbers on the wire (RFC 2018). *)
  | Timestamp of { value : int; echo : int }
  | E2e_state of E2e.Exchange.triple
  | Unknown of { kind : int; data : string }

val e2e_kind : int
(** 254, the experimental option kind. *)

val e2e_exid : int
(** The 16-bit experiment identifier distinguishing our option from
    other kind-254 users. *)

val encode : t list -> string
(** Serialize an option list, padded with NOPs to a 4-byte multiple.
    @raise Invalid_argument if the block exceeds the 40-byte TCP
    option-space limit. *)

val decode : string -> (t list, string) result
(** Parse an option block.  Unrecognized kinds are preserved as
    [Unknown]; a malformed length yields [Error]. *)

val find_e2e : t list -> E2e.Exchange.triple option

val max_option_space : int
(** 40 bytes, the TCP header limit; an E2E exchange (2 + 2 + 36 = 40)
    exactly fits, which is why the paper reduces exchange frequency
    rather than piggybacking on segments that carry other options. *)

val max_sack_blocks : int
(** 4 — the most SACK blocks a 40-byte option space can carry
    alongside nothing else (2 + 4×8 = 34 bytes). *)

val wscale_for : rcv_buf:int -> int
(** RFC 7323 negotiation helper: the smallest shift [s] (capped at 14)
    such that [rcv_buf <= 65535 lsl s], i.e. the receive buffer is
    fully advertisable through a shifted 16-bit window field. *)

val scale_window : shift:int -> int -> int
(** Byte window to 16-bit wire field: [min (w lsr shift) 0xFFFF].
    @raise Invalid_argument if [shift] is outside 0-14. *)

val unscale_window : shift:int -> int -> int
(** 16-bit wire field back to a byte window: [w16 lsl shift].
    [unscale_window ~shift (scale_window ~shift w)] quantizes [w] down
    to a multiple of [2^shift], saturating at [65535 lsl shift] — the
    exact information loss a real scaled window experiences.
    @raise Invalid_argument if [shift] is outside 0-14. *)
