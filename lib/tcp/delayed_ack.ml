type t = {
  engine : Sim.Engine.t;
  timeout : Sim.Time.span;
  max_pending : int;
  send_ack : unit -> unit;
  mutable pending : int;
  mutable timer : Sim.Engine.handle option;
  mutable by_count : int;
  mutable by_timer : int;
  mutable trace : (Sim.Trace.t * string) option;
}

let create engine ?(timeout = Sim.Time.ms 40) ?(max_pending = 2) ~send_ack () =
  if timeout <= 0 then invalid_arg "Delayed_ack.create: timeout must be positive";
  if max_pending < 1 then invalid_arg "Delayed_ack.create: max_pending must be >= 1";
  {
    engine;
    timeout;
    max_pending;
    send_ack;
    pending = 0;
    timer = None;
    by_count = 0;
    by_timer = 0;
    trace = None;
  }

let set_trace t tr ~id = t.trace <- Some (tr, id)

(* Call sites construct event payloads only behind [tracing]: this
   module runs once per data segment / outgoing ACK, so an unguarded
   record literal would allocate on the hot path even with tracing
   off. *)
let tracing t =
  match t.trace with Some (tr, _) -> Sim.Trace.enabled tr | None -> false

let emit t ev =
  match t.trace with
  | Some (tr, id) -> Sim.Trace.event tr ~at:(Sim.Engine.now t.engine) ~id ev
  | None -> ()

let disarm t =
  match t.timer with
  | Some h ->
    Sim.Engine.cancel t.engine h;
    t.timer <- None
  | None -> ()

let on_ack_sent t =
  (* An armed timer that never fires: the ack went out another way.
     [Sim.Engine.handle] carries a closure, so only [Option.is_some]
     may touch it — structural comparison would be a trap. *)
  if Option.is_some t.timer && t.pending > 0 && tracing t then
    emit t (Sim.Trace.Delack_cancel { pending = t.pending });
  t.pending <- 0;
  disarm t

let fire t =
  t.timer <- None;
  if t.pending > 0 then begin
    t.by_timer <- t.by_timer + 1;
    if tracing t then emit t (Sim.Trace.Delack_fire { pending = t.pending });
    (* send_ack reaches the socket's transmit path, which calls
       on_ack_sent and resets the state. *)
    t.send_ack ()
  end

let on_data_segment t =
  t.pending <- t.pending + 1;
  if t.pending >= t.max_pending then begin
    t.by_count <- t.by_count + 1;
    t.send_ack ()
  end
  else if Option.is_none t.timer then
    t.timer <- Some (Sim.Engine.schedule t.engine ~after:t.timeout (fun () -> fire t))

let pending t = t.pending
let timer_armed t = Option.is_some t.timer
let acks_forced_by_count t = t.by_count
let acks_forced_by_timer t = t.by_timer
