type t = {
  seq : int;
  ack : int;
  payload : string;
  window : int;
  push : bool;
  msg_ends : int;
  e2e : E2e.Exchange.triple option;
  hint : E2e.Queue_state.share option;
  ts_val : int option;  (* sender clock, us *)
  ts_ecr : int option;  (* echoed peer clock, us *)
  sack : (int * int) list;  (* [left, right) received ranges, RFC 2018 *)
  rst : bool;
  syn : bool;
  fin : bool;
}

let make ?(payload = "") ?(push = false) ?(msg_ends = 0) ?e2e ?hint ?ts_val ?ts_ecr
    ?(sack = []) ?(rst = false) ?(syn = false) ?(fin = false) ~seq ~ack ~window () =
  { seq; ack; payload; window; push; msg_ends; e2e; hint; ts_val; ts_ecr; sack; rst; syn; fin }

let len t = String.length t.payload

let is_pure_ack t = len t = 0 && not t.fin && not t.rst && not t.syn

let seq_len t = len t + if t.fin then 1 else 0

let header_bytes = 78

let wire_bytes t =
  let opt = match t.e2e with None -> 0 | Some _ -> E2e.Exchange.wire_size + 4 in
  let sack_opt =
    match t.sack with [] -> 0 | blocks -> 4 + (8 * List.length blocks)
  in
  header_bytes + len t + opt + sack_opt

let pp ppf t =
  Format.fprintf ppf "seq=%d ack=%d len=%d win=%d%s%s%s%s%s" t.seq t.ack (len t)
    t.window
    (if t.push then " PSH" else "" ^ if t.fin then " FIN" else "")
    (if t.rst then " RST" else "")
    (if t.syn then " SYN" else "")
    (match t.sack with
    | [] -> ""
    | b -> Printf.sprintf " SACK(%d)" (List.length b))
    (match t.e2e with None -> "" | Some _ -> " E2E")
