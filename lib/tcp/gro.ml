type config = {
  enabled : bool;
  max_bytes : int;
  flush_timeout : Sim.Time.span;
  mss : int;
}

let default_config ~mss =
  { enabled = true; max_bytes = 64 * 1024; flush_timeout = Sim.Time.us 12; mss }

type t = {
  engine : Sim.Engine.t;
  cfg : config;
  deliver : Segment.t list -> unit;
  held : Segment.t Queue.t;
  mutable held_bytes : int;
  mutable timer : Sim.Engine.handle option;
  mutable batches : int;
  mutable segments : int;
}

let create engine cfg ~deliver =
  if cfg.max_bytes < cfg.mss then invalid_arg "Gro.create: max_bytes below one MSS";
  if cfg.flush_timeout <= 0 then invalid_arg "Gro.create: flush_timeout must be positive";
  {
    engine;
    cfg;
    deliver;
    held = Queue.create ();
    held_bytes = 0;
    timer = None;
    batches = 0;
    segments = 0;
  }

let disarm t =
  match t.timer with
  | Some h ->
    Sim.Engine.cancel t.engine h;
    t.timer <- None
  | None -> ()

let flush t =
  disarm t;
  if not (Queue.is_empty t.held) then begin
    let batch = List.of_seq (Queue.to_seq t.held) in
    Queue.clear t.held;
    t.held_bytes <- 0;
    t.batches <- t.batches + 1;
    t.deliver batch
  end

let arm t =
  (* handle options hold closures: [Option.is_none], never [= None] *)
  if Option.is_none t.timer then
    t.timer <-
      Some
        (Sim.Engine.schedule t.engine ~after:t.cfg.flush_timeout (fun () ->
             t.timer <- None;
             flush t))

let submit t seg =
  t.segments <- t.segments + 1;
  if not t.cfg.enabled then begin
    t.batches <- t.batches + 1;
    t.deliver [ seg ]
  end
  else begin
    let len = Segment.len seg in
    if t.held_bytes + len > t.cfg.max_bytes then flush t;
    Queue.add seg t.held;
    t.held_bytes <- t.held_bytes + len;
    (* Only a full-sized data segment can keep a batch open; short
       tails and pure acks terminate it. *)
    if len < t.cfg.mss then flush t else arm t
  end

let pending t = Queue.length t.held
let batches t = t.batches
let segments t = t.segments

let merge_ratio t =
  if t.batches = 0 then 0.0 else float_of_int t.segments /. float_of_int t.batches
