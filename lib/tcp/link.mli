(** One-way network link.

    FIFO with per-packet serialization at the configured bandwidth plus
    fixed propagation delay — the point where packet-count overheads
    become visible, and the resource auto-corking watches.

    Adverse conditions attach here: a legacy Bernoulli loss knob
    ({!set_loss}) and a full {!Fault.Injector} hook ({!set_fault}) for
    bursty loss, reordering, duplication and blackouts.  With a trace
    attached ({!set_trace}), every injected fault emits a typed event
    ([Segment_dropped] / [Segment_reordered] / [Segment_duplicated] /
    [Share_corrupted]) so faults are visible to span reconstruction and
    [e2ebench inspect]. *)

type t

val create :
  Sim.Engine.t -> prop_delay:Sim.Time.span -> gbit_per_s:float -> t
(** @raise Invalid_argument on negative delay or non-positive rate. *)

val send : ?seq:int -> t -> wire_bytes:int -> (unit -> unit) -> unit
(** Ship a packet of [wire_bytes]; the callback fires at the receiver
    once serialization (behind any queued packets) and propagation
    complete.  [seq] (default [-1]) only labels fault trace events. *)

val busy : t -> bool
(** Is the transmitter currently serializing (the NIC "tx ring not yet
    reclaimed" condition auto-corking keys on)? *)

val packets : t -> int
val bytes : t -> int
(** Lifetime counters. *)

val tx_busy_ns : t -> Sim.Time.span
(** Cumulative serialization time — link utilization. *)

val set_loss : t -> rng:Sim.Rng.t -> prob:float -> unit
(** Drop each packet independently with the given probability (after
    serialization — the sender still pays the wire time).
    @raise Invalid_argument for probabilities outside [0, 1). *)

val dropped : t -> int

(** {1 Fault injection} *)

val set_fault : t -> Fault.Injector.t -> unit
(** Route every packet through the injector (after the legacy
    {!set_loss} draw, which stays independent).  Dropped packets still
    pay serialization; reordered ones arrive [extra_delay_us] late,
    letting later packets overtake; duplicates are delivered twice. *)

val fault : t -> Fault.Injector.t option

val set_trace : t -> Sim.Trace.t -> id:string -> unit
(** Emit typed fault events into [trace], labelled [id]. *)

val note_share_corrupted : t -> seq:int -> unit
(** Record (and trace) one corrupted exchange option on this link —
    called by {!Conn} where the option payload lives. *)

val corrupted_shares : t -> int

(** {1 Mid-run reconfiguration (fault-plan steps)} *)

val set_gbit_per_s : t -> float -> unit
(** Change the bandwidth; packets already serialized keep their old
    timing.  @raise Invalid_argument on a non-positive rate. *)

val set_prop_delay : t -> Sim.Time.span -> unit
(** Change the propagation delay for subsequent packets.
    @raise Invalid_argument on a negative delay. *)
