type host_params = {
  socket : Socket.config;
  tx_cost : Sim.Time.span;
  rx_seg_cost : Sim.Time.span;
  rx_batch_cost : Sim.Time.span;
  gro : Gro.config;
}

let default_host =
  {
    socket = Socket.default_config;
    tx_cost = Sim.Time.ns 300;
    rx_seg_cost = Sim.Time.ns 150;
    rx_batch_cost = Sim.Time.us 8;
    gro = Gro.default_config ~mss:Socket.default_config.mss;
  }

type link_params = { prop_delay : Sim.Time.span; gbit_per_s : float }

let default_link = { prop_delay = Sim.Time.us 10; gbit_per_s = 100.0 }

type t = {
  a : Socket.t;
  b : Socket.t;
  cpu_a : Sim.Cpu.t;
  cpu_b : Sim.Cpu.t;
  gro_a : Gro.t;
  gro_b : Gro.t;
  ab : Link.t;
  ba : Link.t;
}

(* TSO wire split: a super-segment leaves the stack as one unit (one
   transmit-path cost) but crosses the wire as MSS-sized packets.  The
   metadata options ride the first packet; PSH and the message-boundary
   count ride the last. *)
let split_tso ~mss (seg : Segment.t) =
  let len = Segment.len seg in
  if len <= mss then [ seg ]
  else begin
    let rec go off acc =
      if off >= len then List.rev acc
      else begin
        let n = Stdlib.min mss (len - off) in
        let first = off = 0 and last = off + n >= len in
        let sub =
          {
            seg with
            Segment.seq = seg.seq + off;
            payload = String.sub seg.payload off n;
            push = seg.push && last;
            msg_ends = (if last then seg.msg_ends else 0);
            e2e = (if first then seg.e2e else None);
            hint = (if first then seg.hint else None);
            (* SACK blocks, like the other option metadata, ride the
               first wire packet only (RST/SYN never carry payload, so
               they are never split). *)
            sack = (if first then seg.sack else []);
          }
        in
        go (off + n) (sub :: acc)
      end
    in
    go 0 []
  end

(* Transmit path: sender IRQ CPU per stack segment (one per TSO
   super-segment) -> wire split -> link (serialization + propagation
   per packet) -> GRO coalescing -> receiver IRQ CPU per delivery ->
   peer socket. *)
let wire engine ~src ~dst ~src_cpu ~dst_cpu ~(link : Link.t) ~src_params ~dst_params =
  let gro =
    Gro.create engine dst_params.gro ~deliver:(fun batch ->
        (* Header-only batches (pure acks) skip the full stack
           traversal and wakeup path; only data deliveries pay the
           per-batch cost. *)
        let has_payload = List.exists (fun seg -> Segment.len seg > 0) batch in
        let cost =
          (if has_payload then dst_params.rx_batch_cost else 0)
          + (List.length batch * dst_params.rx_seg_cost)
        in
        Sim.Cpu.run dst_cpu ~cost (fun () -> Socket.receive_batch dst batch))
  in
  Socket.set_transmit src (fun seg ->
      Sim.Cpu.run src_cpu ~cost:src_params.tx_cost (fun () ->
          List.iter
            (fun sub ->
              (* Corruption targets the exchange option bytes, so it
                 has to happen here where the option still rides the
                 segment; the wire size is unchanged (same 36 bytes,
                 different contents — or none, when the mangled payload
                 no longer decodes). *)
              let wire_bytes = Segment.wire_bytes sub in
              let sub =
                match (Link.fault link, sub.Segment.e2e) with
                | Some inj, Some triple -> (
                  match Fault.Injector.corrupt_triple inj triple with
                  | None -> sub
                  | Some garbled ->
                    (* An undecodable option ([garbled = None]) still
                       crossed the wire: bill [wire_bytes] from the
                       original segment. *)
                    Link.note_share_corrupted link ~seq:sub.Segment.seq;
                    { sub with Segment.e2e = garbled })
                | _ -> sub
              in
              Link.send link ~seq:sub.Segment.seq ~wire_bytes (fun () ->
                  Gro.submit gro sub))
            (split_tso ~mss:src_params.socket.Socket.mss seg)));
  Socket.set_cork_signal src (fun () ->
      if Link.busy link then
        (* Approximate the reclaim instant with a short backoff; the
           socket re-checks on the kick. *)
        Some (Sim.Time.add (Sim.Engine.now engine) (Sim.Time.us 1))
      else None);
  gro

let create engine ?(a = default_host) ?(b = default_host) ?(link_ab = default_link)
    ?(link_ba = default_link) ?cpu_a ?cpu_b ?(label_a = "A") ?(label_b = "B") () =
  let sock_a = Socket.create ~label:label_a engine a.socket in
  let sock_b = Socket.create ~label:label_b engine b.socket in
  Socket.negotiate_window_scaling sock_a sock_b;
  let cpu_a = match cpu_a with Some c -> c | None -> Sim.Cpu.create engine in
  let cpu_b = match cpu_b with Some c -> c | None -> Sim.Cpu.create engine in
  let ab = Link.create engine ~prop_delay:link_ab.prop_delay ~gbit_per_s:link_ab.gbit_per_s in
  let ba = Link.create engine ~prop_delay:link_ba.prop_delay ~gbit_per_s:link_ba.gbit_per_s in
  let gro_b =
    wire engine ~src:sock_a ~dst:sock_b ~src_cpu:cpu_a ~dst_cpu:cpu_b ~link:ab
      ~src_params:a ~dst_params:b
  in
  let gro_a =
    wire engine ~src:sock_b ~dst:sock_a ~src_cpu:cpu_b ~dst_cpu:cpu_a ~link:ba
      ~src_params:b ~dst_params:a
  in
  { a = sock_a; b = sock_b; cpu_a; cpu_b; gro_a; gro_b; ab; ba }

let sock_a t = t.a
let sock_b t = t.b
let irq_cpu_a t = t.cpu_a
let irq_cpu_b t = t.cpu_b
let gro_a t = t.gro_a
let gro_b t = t.gro_b
let link_ab t = t.ab
let link_ba t = t.ba

let total_packets t = Link.packets t.ab + Link.packets t.ba
