type t =
  | Nop
  | Mss of int
  | Window_scale of int
  | Sack_permitted
  | Sack of (int * int) list
  | Timestamp of { value : int; echo : int }
  | E2e_state of E2e.Exchange.triple
  | Unknown of { kind : int; data : string }

let e2e_kind = 254
let e2e_exid = 0xE2E0
let max_option_space = 40
let max_sack_blocks = 4

(* RFC 7323 window scaling: the smallest shift under which [rcv_buf]
   fits in a shifted 16-bit field, capped at the protocol maximum 14. *)
let wscale_for ~rcv_buf =
  let rec go s = if s >= 14 || rcv_buf <= 0xFFFF lsl s then s else go (s + 1) in
  go 0

(* Byte window -> 16-bit wire field under [shift] (saturating). *)
let scale_window ~shift w =
  if shift < 0 || shift > 14 then invalid_arg "Options.scale_window: bad shift";
  Stdlib.min (w lsr shift) 0xFFFF

(* 16-bit wire field -> byte window under [shift]. *)
let unscale_window ~shift w16 =
  if shift < 0 || shift > 14 then invalid_arg "Options.unscale_window: bad shift";
  (w16 land 0xFFFF) lsl shift

let put_u16 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let put_u32 buf v =
  put_u16 buf ((v lsr 16) land 0xFFFF);
  put_u16 buf (v land 0xFFFF)

let get_u16 s off = (Char.code s.[off] lsl 8) lor Char.code s.[off + 1]
let get_u32 s off = (get_u16 s off lsl 16) lor get_u16 s (off + 2)

let encode_one buf = function
  | Nop -> Buffer.add_char buf '\001'
  | Mss v ->
    Buffer.add_char buf '\002';
    Buffer.add_char buf '\004';
    put_u16 buf v
  | Window_scale v ->
    Buffer.add_char buf '\003';
    Buffer.add_char buf '\003';
    Buffer.add_char buf (Char.chr (v land 0xFF))
  | Sack_permitted ->
    Buffer.add_char buf '\004';
    Buffer.add_char buf '\002'
  | Sack blocks ->
    let n = List.length blocks in
    if n < 1 || n > max_sack_blocks then
      invalid_arg "Options.encode: SACK carries 1-4 blocks";
    Buffer.add_char buf '\005';
    Buffer.add_char buf (Char.chr (2 + (8 * n)));
    List.iter
      (fun (l, r) ->
        put_u32 buf (l land 0xFFFFFFFF);
        put_u32 buf (r land 0xFFFFFFFF))
      blocks
  | Timestamp { value; echo } ->
    Buffer.add_char buf '\008';
    Buffer.add_char buf '\010';
    put_u32 buf value;
    put_u32 buf echo
  | E2e_state triple ->
    (* kind, len, 16-bit ExID, 36-byte payload: 40 bytes total. *)
    Buffer.add_char buf (Char.chr e2e_kind);
    Buffer.add_char buf (Char.chr (4 + E2e.Exchange.wire_size));
    put_u16 buf e2e_exid;
    Buffer.add_string buf (E2e.Exchange.encode triple)
  | Unknown { kind; data } ->
    Buffer.add_char buf (Char.chr kind);
    Buffer.add_char buf (Char.chr (2 + String.length data));
    Buffer.add_string buf data

let encode opts =
  let buf = Buffer.create 8 in
  List.iter (encode_one buf) opts;
  while Buffer.length buf mod 4 <> 0 do
    Buffer.add_char buf '\001'
  done;
  let s = Buffer.contents buf in
  if String.length s > max_option_space then
    invalid_arg "Options.encode: block exceeds 40-byte TCP option space";
  s

let decode s =
  let n = String.length s in
  let rec go acc off =
    if off >= n then Ok (List.rev acc)
    else begin
      match Char.code s.[off] with
      | 0 -> Ok (List.rev acc) (* end-of-options *)
      | 1 -> go (Nop :: acc) (off + 1)
      | kind ->
        if off + 1 >= n then Error "option truncated before length byte"
        else begin
          let len = Char.code s.[off + 1] in
          if len < 2 || off + len > n then
            Error (Printf.sprintf "option kind %d has bad length %d" kind len)
          else begin
            let body = String.sub s (off + 2) (len - 2) in
            let item =
              match kind with
              | 2 when len = 4 -> Mss (get_u16 s (off + 2))
              | 3 when len = 3 -> Window_scale (Char.code s.[off + 2])
              | 4 when len = 2 -> Sack_permitted
              | 5 when len >= 10 && (len - 2) mod 8 = 0 && len <= 2 + (8 * max_sack_blocks)
                ->
                let n = (len - 2) / 8 in
                Sack
                  (List.init n (fun i ->
                       ( get_u32 s (off + 2 + (8 * i)),
                         get_u32 s (off + 6 + (8 * i)) )))
              | 8 when len = 10 ->
                Timestamp { value = get_u32 s (off + 2); echo = get_u32 s (off + 6) }
              | k
                when k = e2e_kind
                     && len = 4 + E2e.Exchange.wire_size
                     && get_u16 s (off + 2) = e2e_exid -> (
                match
                  E2e.Exchange.decode (String.sub s (off + 4) E2e.Exchange.wire_size)
                with
                | Ok triple -> E2e_state triple
                | Error _ -> Unknown { kind; data = body })
              | _ -> Unknown { kind; data = body }
            in
            go (item :: acc) (off + len)
          end
        end
    end
  in
  go [] 0

let find_e2e opts =
  List.find_map (function E2e_state t -> Some t | _ -> None) opts
