type t = {
  engine : Sim.Engine.t;
  mutable prop_delay : Sim.Time.span;
  mutable ns_per_byte : float;
  mutable tx_free_at : Sim.Time.t;
  mutable packets : int;
  mutable bytes : int;
  mutable tx_busy : Sim.Time.span;
  mutable loss : (Sim.Rng.t * float) option;
  mutable dropped : int;
  mutable fault : Fault.Injector.t option;
  mutable corrupted_shares : int;
  mutable trace : (Sim.Trace.t * string) option;
}

let create engine ~prop_delay ~gbit_per_s =
  if prop_delay < 0 then invalid_arg "Link.create: negative propagation delay";
  if gbit_per_s <= 0.0 then invalid_arg "Link.create: rate must be positive";
  {
    engine;
    prop_delay;
    ns_per_byte = 8.0 /. gbit_per_s;
    tx_free_at = Sim.Time.zero;
    packets = 0;
    bytes = 0;
    tx_busy = 0;
    loss = None;
    dropped = 0;
    fault = None;
    corrupted_shares = 0;
    trace = None;
  }

let set_loss t ~rng ~prob =
  if prob < 0.0 || prob >= 1.0 then invalid_arg "Link.set_loss: prob must be in [0,1)";
  t.loss <- (if prob = 0.0 then None else Some (rng, prob))

let set_fault t inj = t.fault <- Some inj
let fault t = t.fault

let set_trace t tr ~id = t.trace <- Some (tr, id)

let set_gbit_per_s t gbit_per_s =
  if gbit_per_s <= 0.0 then invalid_arg "Link.set_gbit_per_s: rate must be positive";
  t.ns_per_byte <- 8.0 /. gbit_per_s

let set_prop_delay t prop_delay =
  if prop_delay < 0 then invalid_arg "Link.set_prop_delay: negative propagation delay";
  t.prop_delay <- prop_delay

(* Call sites construct event payloads only behind [tracing], so the
   fault/loss paths allocate nothing when tracing is off. *)
let tracing t =
  match t.trace with Some (tr, _) -> Sim.Trace.enabled tr | None -> false

let emit t ~at ev =
  match t.trace with
  | Some (tr, id) -> Sim.Trace.event tr ~at ~id ev
  | None -> ()

let note_share_corrupted t ~seq =
  t.corrupted_shares <- t.corrupted_shares + 1;
  if tracing t then
    emit t ~at:(Sim.Engine.now t.engine) (Sim.Trace.Share_corrupted { seq })

let send ?(seq = -1) t ~wire_bytes k =
  if wire_bytes <= 0 then invalid_arg "Link.send: packet must have positive size";
  let now = Sim.Engine.now t.engine in
  let tx_time =
    int_of_float (Float.round (float_of_int wire_bytes *. t.ns_per_byte))
  in
  let tx_time = Stdlib.max tx_time 1 in
  let start = Sim.Time.max now t.tx_free_at in
  let done_tx = Sim.Time.add start tx_time in
  t.tx_free_at <- done_tx;
  t.tx_busy <- t.tx_busy + tx_time;
  t.packets <- t.packets + 1;
  t.bytes <- t.bytes + wire_bytes;
  (* Loss is decided after serialization: the sender still spent the
     wire time, the receiver just never sees the packet. *)
  let lost =
    match t.loss with
    | Some (rng, prob) -> Sim.Rng.float rng < prob
    | None -> false
  in
  if lost then begin
    t.dropped <- t.dropped + 1;
    if tracing t then
      emit t ~at:now
        (Sim.Trace.Segment_dropped { seq; len = wire_bytes; reason = "loss" })
  end
  else begin
    match t.fault with
    | None ->
      ignore (Sim.Engine.schedule_at t.engine ~at:(Sim.Time.add done_tx t.prop_delay) k)
    | Some inj -> (
      match Fault.Injector.decide inj ~now_us:(Sim.Time.to_us now) with
      | { action = Drop reason; _ } ->
        t.dropped <- t.dropped + 1;
        if tracing t then
          emit t ~at:now
            (Sim.Trace.Segment_dropped { seq; len = wire_bytes; reason })
      | { action = Deliver; extra_delay_us; duplicate } ->
        let arrival = Sim.Time.add done_tx t.prop_delay in
        let arrival =
          if extra_delay_us > 0.0 then begin
            if tracing t then
              emit t ~at:now
                (Sim.Trace.Segment_reordered { seq; delay_us = extra_delay_us });
            Sim.Time.add arrival (Sim.Time.ns (int_of_float (extra_delay_us *. 1e3)))
          end
          else arrival
        in
        ignore (Sim.Engine.schedule_at t.engine ~at:arrival k);
        if duplicate then begin
          if tracing t then emit t ~at:now (Sim.Trace.Segment_duplicated { seq });
          (* The copy trails by a microsecond — far enough apart to be
             two deliveries, close enough to stress duplicate
             detection. *)
          ignore
            (Sim.Engine.schedule_at t.engine ~at:(Sim.Time.add arrival (Sim.Time.us 1)) k)
        end)
  end

let busy t = Sim.Time.compare t.tx_free_at (Sim.Engine.now t.engine) > 0
let packets t = t.packets
let bytes t = t.bytes
let tx_busy_ns t = t.tx_busy
let dropped t = t.dropped
let corrupted_shares t = t.corrupted_shares
