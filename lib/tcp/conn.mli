(** An established connection between two simulated hosts.

    Wires two {!Socket}s through two one-way {!Link}s, charging
    per-segment transmit costs and GRO-batched receive costs to each
    host's dedicated IRQ CPU (the paper pins network-stack processing
    to its own core).  The receive path runs through {!Gro}: the stack
    traversal cost is paid per coalesced delivery, which is where
    sender-side batching translates into receiver capacity. *)

type host_params = {
  socket : Socket.config;
  tx_cost : Sim.Time.span;  (** per-segment transmit-path CPU cost *)
  rx_seg_cost : Sim.Time.span;  (** per-wire-segment receive cost
                                    (DMA/merge work) *)
  rx_batch_cost : Sim.Time.span;
      (** per-GRO-delivery cost (softirq TCP/IP traversal, socket
          wakeup) *)
  gro : Gro.config;
}

val default_host : host_params
(** Default socket config; 300 ns tx, 150 ns per segment, 8 µs per
    data delivery (softirq TCP traversal + socket wakeup + switch to
    the app context), GRO enabled at 64 KiB / 12 µs. *)

type link_params = {
  prop_delay : Sim.Time.span;
  gbit_per_s : float;
}

val default_link : link_params
(** 10 µs propagation at 100 Gbit/s — the paper's testbed NICs. *)

type t

val create :
  Sim.Engine.t ->
  ?a:host_params ->
  ?b:host_params ->
  ?link_ab:link_params ->
  ?link_ba:link_params ->
  ?cpu_a:Sim.Cpu.t ->
  ?cpu_b:Sim.Cpu.t ->
  ?label_a:string ->
  ?label_b:string ->
  unit ->
  t
(** [cpu_a]/[cpu_b] let several connections share one IRQ core per
    host, as multiple flows through one NIC queue would.
    [label_a]/[label_b] (default ["A"]/["B"]) name the sockets in trace
    records. *)

val sock_a : t -> Socket.t
(** By convention the client side. *)

val sock_b : t -> Socket.t
(** By convention the server side. *)

val irq_cpu_a : t -> Sim.Cpu.t
val irq_cpu_b : t -> Sim.Cpu.t

val gro_a : t -> Gro.t
(** The GRO stage in front of socket A (traffic B→A). *)

val gro_b : t -> Gro.t

val link_ab : t -> Link.t
val link_ba : t -> Link.t

val total_packets : t -> int
(** Packets carried in both directions. *)
