(* A miniature Figure-4a: sweep offered load on the Redis-like server
   with Nagle on and off, print measured vs estimated latency and the
   derived headline metrics.

   Run with: dune exec examples/redis_sweep.exe *)

let pf = Printf.printf

let () =
  let base = Loadgen.Runner.default_config ~rate_rps:0.0 ~batching:Loadgen.Runner.Static_off in
  let base = { base with warmup = Sim.Time.ms 50; duration = Sim.Time.ms 200 } in
  let rates = [ 10e3; 40e3; 70e3; 100e3; 130e3 ] in
  pf "Workload: %s\n\n" (Loadgen.Workload.describe base.workload);
  pf "%6s | %10s %10s | %10s %10s\n" "kRPS" "off-meas" "off-est" "on-meas" "on-est";
  pf "%s\n" (String.make 60 '-');
  (* one domain per core: same points as ~domains:1, just faster *)
  let points = Loadgen.Sweep.sweep ~domains:(Par.Pool.default_domains ()) ~base ~rates () in
  List.iter
    (fun (p : Loadgen.Sweep.point) ->
      let est = function None -> "         -" | Some v -> Printf.sprintf "%8.1fus" v in
      pf "%6.0f | %8.1fus %s | %8.1fus %s\n" (p.rate_rps /. 1e3)
        p.off.measured_mean_us (est p.off.estimated_us) p.on.measured_mean_us
        (est p.on.estimated_us))
    points;
  (match Loadgen.Sweep.cutoff_rps points with
  | Some c -> pf "\nBatching starts to win at ~%.0f kRPS (measured)\n" (c /. 1e3)
  | None -> pf "\nNo crossover inside this sweep\n");
  match Loadgen.Sweep.range_extension ~slo_us:500.0 points with
  | Some ext -> pf "Nagle extends the 500us-SLO range by %.2fx\n" ext
  | None -> ()
